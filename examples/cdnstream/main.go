// cdnstream: prioritization across one entity's flows (Section 3.3).
//
// A CDN pushes HD video streams and bulk prefetch transfers through the
// same bottleneck. With autonomous senders, each flow gets a TCP-fair
// share regardless of importance. With the Phi ensemble, the entity
// coordinates: video flows get weight 3, bulk flows weight 1, and the
// ensemble as a whole stays exactly as aggressive as the same number of
// standard flows.
//
// Run with:
//
//	go run ./examples/cdnstream
package main

import (
	"fmt"

	"repro/internal/priority"
	"repro/internal/sim"
	"repro/internal/tcp"
)

func main() {
	const videoFlows, bulkFlows = 2, 2
	const horizon = 60 * sim.Second

	run := func(coordinated bool) (videoMbps, bulkMbps float64) {
		eng := sim.NewEngine()
		d := sim.NewDumbbell(eng, sim.DefaultDumbbell(videoFlows+bulkFlows))

		alloc := priority.NewAllocator([]priority.Class{
			{Name: "video", Share: 3},
			{Name: "bulk", Share: 1},
		}, 0.1)
		ens := priority.NewEnsemble()

		var video, bulk []*tcp.Sender
		mk := func(i int, class string) *tcp.Sender {
			var cc tcp.CongestionControl
			if coordinated {
				cc = ens.Join(alloc.Join(class))
			} else {
				cc = tcp.NewCubic(tcp.DefaultCubicParams())
			}
			s, _ := tcp.Connect(eng, sim.FlowID(i+1), d.Senders[i], d.Receivers[i], 0, cc, tcp.Config{})
			s.Start()
			return s
		}
		for i := 0; i < videoFlows; i++ {
			video = append(video, mk(i, "video"))
		}
		for i := 0; i < bulkFlows; i++ {
			bulk = append(bulk, mk(videoFlows+i, "bulk"))
		}
		eng.RunUntil(horizon)

		sum := func(ss []*tcp.Sender) float64 {
			var bytes int64
			for _, s := range ss {
				bytes += s.Stats().BytesAcked
			}
			return float64(bytes) * 8 / horizon.Seconds() / 1e6
		}
		return sum(video), sum(bulk)
	}

	fmt.Println("cdnstream: 2 HD video + 2 bulk flows, 15 Mbit/s bottleneck, 60 s")
	fmt.Printf("%-28s %14s %14s %10s\n", "", "video Mbit/s", "bulk Mbit/s", "ratio")
	v, b := run(false)
	fmt.Printf("%-28s %14.2f %14.2f %10.2f\n", "autonomous (TCP-fair)", v, b, v/b)
	v, b = run(true)
	fmt.Printf("%-28s %14.2f %14.2f %10.2f\n", "Phi ensemble (3:1 weights)", v, b, v/b)
	fmt.Println("\nThe ensemble shifts bandwidth toward the important flows while its")
	fmt.Println("aggregate stays TCP-friendly (weights sum to the flow count).")
}
