// wirephi: the Phi context server over real TCP.
//
// Everything in the other examples keeps the shared state in-process.
// Here a phiwire server listens on loopback and a fleet of concurrent
// "senders" (goroutines standing in for hosts across a datacenter) run
// the full practical protocol: look up the congestion context at
// connection start, report measurements at connection end. One sender
// then loses the server and demonstrates graceful fallback to defaults.
//
// Run with:
//
//	go run ./examples/wirephi
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/phi"
	"repro/internal/phiwire"
	"repro/internal/sim"
	"repro/internal/tcp"
)

func main() {
	backend := phi.NewServer(
		func() sim.Time { return sim.Time(time.Now().UnixNano()) },
		phi.ServerConfig{Window: 5 * sim.Second},
	)
	backend.RegisterPath("edge/emea", 100_000_000)

	srv := phiwire.NewServer(backend, nil)
	if err := srv.SetPolicy(phi.DefaultPolicy()); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // returns on Close
	addr := ln.Addr().String()
	fmt.Printf("context server on %s\n\n", addr)

	const hosts = 16
	const connsPerHost = 20
	var wg sync.WaitGroup
	var mu sync.Mutex
	contexts := map[int]phi.Context{}

	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(h)))
			client := phiwire.Dial(addr, time.Second)
			defer client.Close()
			// Zero-config bootstrap: the host knows only the server address
			// and fetches the parameter policy from it.
			policy, err := client.FetchPolicy()
			if err != nil {
				log.Fatalf("host %d: fetch policy: %v", h, err)
			}
			pc := &phi.Client{Source: client, Reporter: client,
				Policy: policy, Path: "edge/emea"}
			for c := 0; c < connsPerHost; c++ {
				params := pc.ParamsForNewConnection()
				if !params.Valid() {
					log.Fatalf("host %d got invalid params", h)
				}
				pc.OnStart(sim.FlowID(c))
				// Pretend to have run a transfer and report it back.
				bytes := int64(100_000 + rng.Intn(900_000))
				dur := sim.Time(200+rng.Intn(800)) * sim.Millisecond
				pc.OnEnd(&tcp.FlowStats{
					BytesAcked: bytes,
					Start:      0,
					End:        dur,
					RTTCount:   1,
					RTTSum:     sim.Time(150+rng.Intn(60)) * sim.Millisecond,
					MinRTT:     150 * sim.Millisecond,
				})
			}
			mu.Lock()
			contexts[h] = pc.LastContext
			mu.Unlock()
		}(h)
	}
	wg.Wait()

	handled, rejected := srv.Stats()
	fmt.Printf("server handled %d requests (%d rejected) across %d hosts\n",
		handled, rejected, hosts)
	var sample phi.Context
	for _, c := range contexts {
		sample = c
		break
	}
	fmt.Printf("a host's last context: %v\n", sample)
	fmt.Printf("active senders now registered: %d (all reported back)\n\n",
		backend.ActiveSenders("edge/emea"))

	// Failure injection: kill the server; clients must fall back.
	srv.Close()
	orphan := phiwire.Dial(addr, 200*time.Millisecond)
	defer orphan.Close()
	pc := &phi.Client{Source: orphan, Policy: phi.DefaultPolicy(), Path: "edge/emea"}
	params := pc.ParamsForNewConnection()
	fmt.Printf("after server shutdown: fallback params %v (fallbacks=%d)\n",
		params, pc.Fallbacks)
	fmt.Println("=> a Phi sender degrades to an unmodified sender when the control plane is down")
}
