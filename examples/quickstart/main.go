// Quickstart: the smallest end-to-end Phi demonstration.
//
// It runs the same on/off workload over the Figure 1 dumbbell twice —
// once with default TCP Cubic (every connection flies blind) and once
// with Cubic-Phi (every connection asks the context server for the
// congestion context and picks parameters from the policy) — and prints
// the comparison on the paper's power metric.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/phi"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

func main() {
	base := workload.Scenario{
		Dumbbell:    sim.DefaultDumbbell(3),
		MeanOnBytes: 500_000,        // exp-distributed transfers, mean 500 KB
		MeanOffTime: 2 * sim.Second, // exp-distributed idle periods
		Duration:    60 * sim.Second,
		Warmup:      5 * sim.Second,
		Seed:        42,
	}
	base.Dumbbell.BottleneckRate = 5_000_000

	// Run 1: default Cubic, no shared information.
	vanilla := base
	vanilla.CC = func(int) func() tcp.CongestionControl {
		return func() tcp.CongestionControl {
			return tcp.NewCubic(tcp.DefaultCubicParams())
		}
	}
	vres := workload.Run(vanilla)

	// Run 2: Cubic-Phi. A context server collects connection-boundary
	// reports; each new connection looks up (u, q, n) and picks its
	// parameters from the policy. Everything below is the complete wiring.
	phiRun := base
	var now sim.Time
	server := phi.NewServer(func() sim.Time { return now }, phi.ServerConfig{})
	server.RegisterPath("bottleneck", phiRun.Dumbbell.BottleneckRate)
	client := &phi.Client{
		Source:   server,
		Reporter: server,
		Policy:   phi.DefaultPolicy(),
		Path:     "bottleneck",
	}
	phiRun.CC = func(int) func() tcp.CongestionControl { return client.CC() }
	phiRun.OnStart = func(_ int, flow sim.FlowID) { client.OnStart(flow) }
	phiRun.OnEnd = func(_ int, st *tcp.FlowStats) {
		now = st.End // drive the server clock from the simulation
		client.OnEnd(st)
	}
	pres := workload.Run(phiRun)

	fmt.Println("Phi quickstart: 3 senders, 5 Mbit/s bottleneck, 150 ms RTT, 60 s")
	fmt.Printf("%-22s %12s %12s %9s %9s\n", "", "thr Mbit/s", "qdelay ms", "loss %", "P_l")
	row := func(name string, r *workload.Result) {
		fmt.Printf("%-22s %12.2f %12.1f %9.3f %9.2f\n",
			name, r.AggThroughputMbps(), r.MeanQueueingDelayMs(),
			100*r.LinkLossRate, r.LossPower())
	}
	row("Cubic (default)", &vres)
	row("Cubic-Phi", &pres)
	lookups, reports := server.Stats()
	fmt.Printf("\ncontext server: %d lookups, %d reports, last context %v\n",
		lookups, reports, client.LastContext)
	if pres.LossPower() > vres.LossPower() {
		fmt.Println("=> sharing network state improved the power metric, as in the paper")
	}
}
