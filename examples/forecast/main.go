// forecast: performance prediction (Section 3.5).
//
// A provider accumulates per-cluster performance history from its own
// flows (here: simulated transfers over two different-quality paths) and
// answers, before a transfer or call starts, how it is likely to go.
//
// Run with:
//
//	go run ./examples/forecast
package main

import (
	"fmt"

	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

// collect runs an on/off workload over a dumbbell and feeds every
// finished flow's stats into the history store under the given key.
func collect(store *predict.Store, key predict.Key, rate int64, senders int) {
	db := sim.DefaultDumbbell(senders)
	db.BottleneckRate = rate
	sc := workload.Scenario{
		Dumbbell:    db,
		MeanOnBytes: 500_000,
		MeanOffTime: sim.Second,
		Duration:    60 * sim.Second,
		Warmup:      2 * sim.Second,
		Seed:        7,
		CC: func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl { return tcp.NewCubic(tcp.DefaultCubicParams()) }
		},
		OnEnd: func(_ int, st *tcp.FlowStats) { store.AddFlowStats(key, st) },
	}
	workload.Run(sc)
}

func main() {
	store := predict.NewStore(0)
	good := predict.Key{Cluster: "fiber-metro", Service: "video"}
	bad := predict.Key{Cluster: "congested-isp", Service: "video"}

	// Build history: one well-provisioned path, one congested path.
	collect(store, good, 50_000_000, 2)
	collect(store, bad, 3_000_000, 8)

	fmt.Println("forecast: what will a 25 MB download and a voice call feel like?")
	for _, key := range []predict.Key{good, bad} {
		fmt.Printf("\ncluster %q (%d samples)\n", key.Cluster, store.Count(key))
		tf := store.PredictTransfer(key, 25_000_000)
		fmt.Printf("  25 MB download: expected %v (optimistic %v, pessimistic %v)\n",
			tf.Expected, tf.Optimistic, tf.Pessimistic)
		cf := store.PredictCall(key)
		fmt.Printf("  voice call: MOS %.2f -> %q (median RTT %v, loss %.2f%%)\n",
			cf.MOS, cf.Quality(), cf.RTT, 100*cf.LossRate)
		if cf.Quality() == predict.QualityPoor {
			fmt.Println("  => the application can warn the user before the call")
		}
	}
}
