// interdc: Phi on a provider's inter-DC WAN (Section 3.1).
//
// The paper argues that beyond user-facing networks, "large providers can
// also fruitfully deploy Phi on their inter-DC WANs": coarse-grained
// bandwidth allocation (B4, SWAN) does not eliminate congestion, so
// informed adaptation of transmission rates still pays. Here a 3-hop
// parking-lot WAN carries a 500 KB inter-DC transfer end to end, launched
// either blind (default Cubic) or informed by the per-hop congestion
// contexts (adapting to the worst hop) — once on an idle WAN and once
// with cross traffic saturating the middle hop.
//
// Run with:
//
//	go run ./examples/interdc
package main

import (
	"fmt"

	"repro/internal/phi"
	"repro/internal/sim"
	"repro/internal/tcp"
)

const transferBytes = 500_000

func run(informed, loaded bool) (done sim.Time, rexmits int64, params tcp.CubicParams) {
	eng := sim.NewEngine()
	cfg := sim.DefaultParkingLot(3)
	cfg.HopRate = 20_000_000
	pl := sim.NewParkingLot(eng, cfg)

	// Per-hop utilization probes: one congestion context per hop.
	var probes []*sim.RateProbe
	for _, hop := range pl.Hops {
		probes = append(probes, sim.NewRateProbe(eng, hop.Monitor(), 100*sim.Millisecond, sim.Second))
	}

	if loaded {
		// A bulk replication job saturates hop 1.
		cross, _ := tcp.Connect(eng, 100, pl.CrossSenders[1], pl.CrossReceivers[1], 0,
			tcp.NewCubic(tcp.DefaultCubicParams()), tcp.Config{})
		cross.Start()
	}
	eng.RunUntil(5 * sim.Second) // reach steady state

	params = tcp.DefaultCubicParams()
	if informed {
		worst := phi.Context{}
		for _, p := range probes {
			if u := p.Utilization(); u > worst.U {
				worst.U = u
			}
		}
		params = phi.DefaultPolicy().Params(worst)
	}
	start := eng.Now()
	long, _ := tcp.Connect(eng, 1, pl.LongSender, pl.LongReceiver, transferBytes,
		tcp.NewCubic(params), tcp.Config{})
	long.Start()
	eng.RunUntil(300 * sim.Second)
	st := long.Stats()
	return st.End - start, st.Retransmits, params
}

func main() {
	fmt.Println("interdc: 500 KB transfer across a 3-hop WAN (20 Mbit/s hops, 64 ms RTT)")
	fmt.Printf("\n%-34s %12s %9s   %s\n", "", "completion", "rexmits", "launch params")
	row := func(name string, informed, loaded bool) {
		done, rex, p := run(informed, loaded)
		fmt.Printf("%-34s %12v %9d   %v\n", name, done, rex, p)
	}
	row("idle WAN, blind", false, false)
	row("idle WAN, Phi-informed", true, false)
	row("hop 1 saturated, blind", false, true)
	row("hop 1 saturated, Phi-informed", true, true)
	fmt.Println(`
On the idle WAN the informed launch starts near its fair share instead of
discovering it from two segments, cutting several RTTs off the transfer.
With hop 1 saturated by a blind bulk flow the advantage shrinks — the
paper's own caveat: under FIFO queues and high utilization, a cooperating
minority cannot insulate itself from non-cooperators (Sections 2.2.3, 3.1).
Per-hop path keys are how Phi composes across a multi-hop WAN.`)
}
