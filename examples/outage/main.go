// outage: unreachability detection and localization (Section 3.4 /
// Figure 5).
//
// A cloud provider's request telemetry, sliced by service, client ISP and
// metro, is modeled with seasonal baselines. We inject a two-hour outage
// confined to one ISP in one metro — the Figure 5 event — then let the
// detector find it and the localizer name the culprit.
//
// Run with:
//
//	go run ./examples/outage
package main

import (
	"fmt"

	"repro/internal/diagnosis"
)

func main() {
	cfg := diagnosis.DefaultGenConfig()
	cfg.Outage = &diagnosis.Outage{
		ISP:         "isp-5",
		Metro:       "tokyo",
		StartMinute: 2*24*60 + 14*60 + 30, // day 3, 14:30
		DurationMin: 118,                  // "around 2 hours"
		Severity:    0.85,
	}
	store := diagnosis.Generate(cfg)
	fmt.Printf("telemetry: %d slices x %d minutes (3 days, 1-minute buckets)\n",
		len(store.Slices()), store.Minutes())
	fmt.Printf("injected: %s/%s, minutes [%d, %d), %.0f%% of traffic lost\n\n",
		cfg.Outage.ISP, cfg.Outage.Metro, cfg.Outage.StartMinute,
		cfg.Outage.StartMinute+cfg.Outage.DurationMin, 100*cfg.Outage.Severity)

	findings := diagnosis.Scan(store, diagnosis.DetectConfig{})
	if len(findings) == 0 {
		fmt.Println("no anomalies detected")
		return
	}
	fmt.Printf("detector: %d scoped findings; the narrowest:\n", len(findings))
	best := diagnosis.Narrowest(findings)
	fmt.Printf("  %v\n", *best)
	fmt.Printf("  duration %d minutes, depth %.0f%%\n\n",
		best.Event.Duration(), 100*best.Event.Depth)

	loc := diagnosis.Localize(store, best.Event, diagnosis.LocalizeConfig{})
	fmt.Printf("localizer: %v\n", loc)
	fmt.Printf("  deficit coverage by dimension: service %.2f, isp %.2f, metro %.2f\n",
		loc.Coverage[diagnosis.DimService],
		loc.Coverage[diagnosis.DimISP],
		loc.Coverage[diagnosis.DimMetro])
	fmt.Println("\nService is (correctly) not pinned: all services dropped together,")
	fmt.Println("so this is a network event, not an application event — the kind of")
	fmt.Println("call the paper argues only the provider-side aggregate view can make.")
}
