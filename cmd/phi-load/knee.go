package main

import "fmt"

// The knee detector finds the saturation point of a rate→latency curve
// online, one ramp step at a time: the offered rate past which tail
// latency stops being flat-ish and starts climbing the hockey stick (or
// the server simply stops keeping up with the offered rate). It is a
// ratio test with hysteresis rather than anything fancier, because ramp
// steps are few (tens, not thousands) and each one is already a settled
// multi-second aggregate:
//
//   - The baseline p99 is the minimum p99 over all non-offending steps
//     so far — the flat part of the curve as measured, not an assumed
//     constant, so a curve that drifts downward as caches warm keeps a
//     honest baseline.
//   - A step is "offending" if its p99 exceeds Ratio × baseline
//     (latency knee) or its achieved rate falls below MinAchieved ×
//     offered (throughput saturation: the closed loop cannot push the
//     offered load through, so arrivals queue or drop).
//   - The knee is declared only after Confirm consecutive offending
//     steps (hysteresis: one noisy step — a GC pause, a scheduler
//     hiccup — resets nothing, it just has to be followed by another
//     offending step). A non-offending step resets the count and may
//     lower the baseline.
//
// The reported knee is the last non-offending step: the highest load
// level the server sustained with flat tails, i.e. the max sustainable
// rate. On a curve with no knee (monotone gentle ramp, noisy plateau)
// the detector never fires.
type kneeConfig struct {
	// Ratio is the p99 blowup over baseline that marks a step offending
	// (default 3: the tail tripled).
	Ratio float64
	// Confirm is how many consecutive offending steps declare the knee
	// (default 2).
	Confirm int
	// MinAchieved is the achieved/offered floor below which a step is
	// offending regardless of latency (default 0.9).
	MinAchieved float64
}

func (c kneeConfig) withDefaults() kneeConfig {
	if c.Ratio <= 1 {
		c.Ratio = 3
	}
	if c.Confirm < 1 {
		c.Confirm = 2
	}
	if c.MinAchieved <= 0 || c.MinAchieved > 1 {
		c.MinAchieved = 0.9
	}
	return c
}

// kneePoint is the detector's view of one completed ramp step.
type kneePoint struct {
	Offered  float64 // offered (scheduled) lifecycles/s
	Achieved float64 // completed lifecycles/s
	P99Us    float64 // coordinated-omission-corrected lifecycle p99

	// Efficiency attribution measured over the step (not judged by the
	// detector, but latched with the verdict so the knee's per-op cost
	// model rides along in the result).
	AllocsPerOp      float64 // client heap allocations per lifecycle
	FramesPerSyscall float64 // client frames written per write syscall

	// Context-quality attribution over the step (from the server's
	// /debug/context, when -context-url is set): the fraction of this
	// step's lookups served fresh, and the cumulative paired-RTT p90
	// absolute error (µs) at step end.
	CoverageFreshFrac float64
	RTTAbsErrP90      float64
}

// kneeVerdict is the detector's latched conclusion.
type kneeVerdict struct {
	Found bool `json:"found"`
	// KneeStep indexes the last non-offending step: the max sustainable
	// operating point.
	KneeStep int `json:"knee_step"`
	// DetectedStep indexes the step whose completion confirmed the knee.
	DetectedStep int `json:"detected_step"`
	// Rate is the achieved rate at the knee step (lifecycles/s).
	Rate float64 `json:"rate"`
	// OfferedRate is the offered rate at the knee step.
	OfferedRate float64 `json:"offered_rate"`
	// P99Us is the lifecycle p99 at the knee step.
	P99Us float64 `json:"p99_us"`
	// BaselineP99Us is the flat-region baseline the ratio test compared
	// against.
	BaselineP99Us float64 `json:"baseline_p99_us"`
	// Reason names the test the confirming step failed:
	// "p99-ratio" or "achieved-shortfall".
	Reason string `json:"reason,omitempty"`
	// AllocsPerOp and FramesPerSyscall are the knee step's efficiency
	// attribution: heap allocations per lifecycle and the frames-per-
	// write-syscall batching ratio. phi-bench-diff gates both.
	AllocsPerOp      float64 `json:"allocs_per_op,omitempty"`
	FramesPerSyscall float64 `json:"frames_per_syscall,omitempty"`
	// CoverageFreshFrac and RTTAbsErrP90 are the knee step's context-
	// quality attribution (present only when the ramp ran with
	// -context-url): the fraction of that step's lookups served from
	// fresh evidence, and the cumulative paired-RTT p90 absolute error
	// in µs. phi-bench-diff gates both.
	CoverageFreshFrac float64 `json:"coverage_fresh_frac,omitempty"`
	RTTAbsErrP90      float64 `json:"rtt_abs_err_p90,omitempty"`
}

// kneeDetector consumes ramp steps and latches once the knee is
// confirmed.
type kneeDetector struct {
	cfg       kneeConfig
	points    []kneePoint
	baseP99   float64 // min p99 over non-offending steps (0 = none yet)
	offending int     // consecutive offending steps
	lastGood  int     // index of the newest non-offending step
	reason    string  // reason of the first step in the offending run
	verdict   *kneeVerdict
}

func newKneeDetector(cfg kneeConfig) *kneeDetector {
	return &kneeDetector{cfg: cfg.withDefaults(), lastGood: -1}
}

// offends classifies one step against the current baseline, returning
// the failed test's name ("" = clean).
func (k *kneeDetector) offends(p kneePoint) string {
	if p.Achieved < k.cfg.MinAchieved*p.Offered {
		return "achieved-shortfall"
	}
	if k.baseP99 > 0 && p.P99Us > k.cfg.Ratio*k.baseP99 {
		return "p99-ratio"
	}
	return ""
}

// feed adds a completed step and reports whether the knee is now (or
// was already) confirmed. Once confirmed the detector latches: later
// feeds are recorded but change nothing.
func (k *kneeDetector) feed(p kneePoint) bool {
	k.points = append(k.points, p)
	if k.verdict != nil {
		return true
	}
	idx := len(k.points) - 1
	if why := k.offends(p); why != "" {
		if k.offending == 0 {
			k.reason = why
		}
		k.offending++
		if k.offending >= k.cfg.Confirm && k.lastGood >= 0 {
			good := k.points[k.lastGood]
			k.verdict = &kneeVerdict{
				Found:             true,
				KneeStep:          k.lastGood,
				DetectedStep:      idx,
				Rate:              good.Achieved,
				OfferedRate:       good.Offered,
				P99Us:             good.P99Us,
				BaselineP99Us:     k.baseP99,
				Reason:            k.reason,
				AllocsPerOp:       good.AllocsPerOp,
				FramesPerSyscall:  good.FramesPerSyscall,
				CoverageFreshFrac: good.CoverageFreshFrac,
				RTTAbsErrP90:      good.RTTAbsErrP90,
			}
			return true
		}
		return false
	}
	k.offending = 0
	k.reason = ""
	k.lastGood = idx
	if k.baseP99 == 0 || p.P99Us < k.baseP99 {
		k.baseP99 = p.P99Us
	}
	return false
}

// result returns the latched verdict, or a not-found verdict describing
// the state of the (knee-less) ramp.
func (k *kneeDetector) result() kneeVerdict {
	if k.verdict != nil {
		return *k.verdict
	}
	v := kneeVerdict{Found: false, KneeStep: k.lastGood, DetectedStep: -1, BaselineP99Us: k.baseP99}
	if k.lastGood >= 0 {
		good := k.points[k.lastGood]
		v.Rate = good.Achieved
		v.OfferedRate = good.Offered
		v.P99Us = good.P99Us
		v.AllocsPerOp = good.AllocsPerOp
		v.FramesPerSyscall = good.FramesPerSyscall
		v.CoverageFreshFrac = good.CoverageFreshFrac
		v.RTTAbsErrP90 = good.RTTAbsErrP90
	}
	return v
}

func (v kneeVerdict) String() string {
	if !v.Found {
		return "no knee found"
	}
	return fmt.Sprintf("knee at step %d: %.0f lifecycles/s sustained (offered %.0f), p99 %.0fus (baseline %.0fus), confirmed at step %d by %s",
		v.KneeStep, v.Rate, v.OfferedRate, v.P99Us, v.BaselineP99Us, v.DetectedStep, v.Reason)
}
