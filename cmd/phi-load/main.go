// Command phi-load drives the real Phi wire protocol against a running
// phi-server or phi-cluster and reports throughput and latency
// quantiles as machine-readable JSON — the yardstick for every perf
// change to the context-server data path.
//
// Each generated operation is one connection lifecycle, exactly the
// paper's per-connection protocol: a context lookup at "connection
// start", a start report, and an end report carrying a synthetic
// transfer summary. Two load models are supported:
//
//   - closed (default): N workers, each with its own TCP connection,
//     issue lifecycles back to back. Throughput is limited by server
//     latency; this measures capacity.
//   - open: lifecycles arrive by a Poisson process at -rate per second,
//     independent of completions, served by a bounded in-flight pool
//     over a fixed connection pool. This measures tail latency at a
//     fixed offered load, the number that decides whether a shared
//     control plane is affordable (arrivals do not slow down when the
//     server does). Lifecycle latency is coordinated-omission
//     corrected: measured from the scheduled arrival, not the send.
//   - saturate: the open loop with a closed control loop on top
//     (saturate.go). The offered rate ramps geometrically until the
//     online knee detector (knee.go) confirms the p99 knee; the result
//     (BENCH_saturation.json) carries the full rate→latency curve, the
//     max sustainable rate, per-stage decompositions, and — with
//     -pprof-url — CPU/heap profiles captured at the knee.
//
// Two further modes exercise the passive-ingest path instead of the
// wire protocol (see ipfix.go): -mode ipfix floods a server's
// -ipfix-addr collector with synthetic TCP-template IPFIX over UDP, and
// -mode ipfixbench benchmarks the ingest pipeline in-process, writing
// BENCH_ingest.json.
//
// Path keys are drawn uniformly or Zipf-skewed from -paths distinct
// keys, modelling a few hot inter-datacenter paths among many cold
// ones.
//
// Example, against a 4-shard cluster:
//
//	phi-cluster -listen 127.0.0.1:7731 -shards 4 -metrics-addr 127.0.0.1:7732 &
//	phi-load -addr 127.0.0.1:7731 -mode open -rate 2000 -duration 30s \
//	    -warmup 2s -paths 64 -skew zipf -out BENCH_loadgen.json
//
// The JSON result includes per-op latency quantiles (p50/p90/p99/p999),
// throughput, and error/degrade counts; the warmup window is excluded.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/phi"
	"repro/internal/phiwire"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	tlog "repro/internal/trace/log"
)

// opLifecycle is the root span covering one full connection protocol
// exchange (lookup + start report + end report).
var opLifecycle = trace.Name("loadgen.lifecycle")

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7731", "context server address")
		mode         = flag.String("mode", "closed", "load model: closed (worker pool) or open (Poisson arrivals)")
		workers      = flag.Int("workers", 32, "closed-loop worker count (one connection each)")
		rate         = flag.Float64("rate", 1000, "open-loop arrival rate, lifecycles/s")
		conns        = flag.Int("conns", 64, "open-loop connection pool size")
		maxInflight  = flag.Int("max-inflight", 4096, "open-loop bound on concurrent lifecycles (excess arrivals are dropped and counted)")
		duration     = flag.Duration("duration", 30*time.Second, "measured run length (after warmup)")
		warmup       = flag.Duration("warmup", 2*time.Second, "warmup length excluded from results")
		paths        = flag.Int("paths", 64, "distinct path keys")
		pathPrefix   = flag.String("path-prefix", "path-", "path key prefix")
		grid         = flag.String("grid", "", "structure path keys over a SxIxM service/ISP/metro grid (e.g. 1x4x4): keys become svc-i/isp-j/metro-k/p-n, the slices the server's health monitor localizes over")
		faultMatch   = flag.String("fault-match", "", "mid-run fault injection: suppress lifecycles whose path contains this substring (e.g. isp-1/metro-1)")
		faultAfter   = flag.Duration("fault-after", 10*time.Second, "fault start, measured from run start (warmup included)")
		faultFor     = flag.Duration("fault-for", 15*time.Second, "fault duration (0 = until the run ends)")
		healthURL    = flag.String("health-url", "", "poll this /debug/health URL during the run and summarize detections (and time-to-detect) in the result")
		chaosOn      = flag.Bool("chaos", false, "chaos mode: kill fleet primaries through /debug/fleet mid-run and assert zero lost lifecycles and bounded auto-remediation (exit 1 on violation)")
		chaosURL     = flag.String("chaos-url", "http://127.0.0.1:7732/debug/fleet", "chaos: the target's /debug/fleet URL")
		chaosFirst   = flag.Duration("chaos-first", 3*time.Second, "chaos: first kill, measured from run start (warmup included)")
		chaosEvery   = flag.Duration("chaos-every", 5*time.Second, "chaos: gap between kills")
		chaosKills   = flag.Int("chaos-kills", 3, "chaos: number of primaries to kill")
		chaosBound   = flag.Duration("chaos-bound", 10*time.Second, "chaos: max allowed time from kill to the member reporting healthy")
		skew         = flag.String("skew", "uniform", "path key distribution: uniform or zipf")
		zipfS        = flag.Float64("zipf-s", 1.2, "zipf skew exponent (>1)")
		meanBytes    = flag.Float64("mean-bytes", 1<<20, "mean synthetic transfer size reported at connection end")
		timeout      = flag.Duration("timeout", 2*time.Second, "per-request timeout")
		seed         = flag.Int64("seed", 1, "PRNG seed")
		out          = flag.String("out", "", "write the JSON result here (default stdout)")
		traceOn      = flag.Bool("trace", false, "trace lifecycles end to end (propagated to the server over the wire)")
		traceDump    = flag.String("trace-dump", "", "write retained traces in text form to this file at exit (requires -trace)")
		debugAddr    = flag.String("debug-addr", "", "serve /debug/traces and pprof on this address while running")
		logLevel     = flag.String("log-level", "info", "minimum log level (debug|info|warn|error)")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON lines (default logfmt)")
		satStart     = flag.Float64("sat-start", 2000, "saturate mode: first ramp step's offered rate, lifecycles/s")
		satMax       = flag.Float64("sat-max", 1e6, "saturate mode: safety cap on offered rate (the ramp stops there even without a knee)")
		satFactor    = flag.Float64("sat-factor", 1.5, "saturate mode: geometric offered-rate multiplier per step")
		satStep      = flag.Duration("sat-step", 5*time.Second, "saturate mode: measured window per ramp step")
		satSettle    = flag.Duration("sat-settle", 1*time.Second, "saturate mode: settling time after each rate change, excluded from the step's measurement")
		satRatio     = flag.Float64("sat-ratio", 3, "saturate mode: p99 blowup over the flat-region baseline that marks a step offending")
		satConfirm   = flag.Int("sat-confirm", 2, "saturate mode: consecutive offending steps that confirm the knee")
		satMinAch    = flag.Float64("sat-min-achieved", 0.9, "saturate mode: achieved/offered floor below which a step is offending")
		pprofURL     = flag.String("pprof-url", "", "saturate mode: server debug base URL (e.g. http://127.0.0.1:7732); CPU and heap profiles are captured there at the knee")
		profileDur   = flag.Duration("profile-dur", 5*time.Second, "saturate mode: CPU profile length, captured while holding knee-rate load")
		stagesURL    = flag.String("stages-url", "", "saturate mode: fetch this /debug/stages JSON after the ramp and embed it as the server-side decomposition")
		resourcesURL = flag.String("resources-url", "", "saturate mode: fetch this /debug/resources JSON after the ramp and embed it as the server-side runtime/wire attribution")
		contextURL   = flag.String("context-url", "", "saturate mode: poll this /debug/context JSON per ramp step for coverage/accuracy attribution, and embed the final snapshot in the result")
		profPrefix   = flag.String("profile-prefix", "", "saturate mode: path prefix for the knee profile files (default: the -out path minus .json)")
		ipfixAddr    = flag.String("ipfix-addr", "127.0.0.1:4739", "ipfix mode: collector UDP address to flood")
		ipfixFlows   = flag.Int("ipfix-flows", 256, "ipfix modes: concurrent synthetic TCP flows")
		ipfixPaths   = flag.Int("ipfix-paths", 16, "ipfix modes: distinct destination /24 paths")
		ipfixLoss    = flag.Float64("ipfix-loss", 0.01, "ipfix modes: planted retransmit probability")
		ipfixRate    = flag.Float64("ipfix-rate", 0, "ipfix mode: records/s pacing (0 = unpaced)")
		benchReps    = flag.Int("bench-reps", 5, "ipfixbench mode: best-of repetitions")
	)
	flag.Parse()

	lvl, err := tlog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var lopts []tlog.Option
	if *logJSON {
		lopts = append(lopts, tlog.WithJSON())
	}
	logger := tlog.New(os.Stderr, lvl, lopts...).Component("phi-load")

	// The IPFIX modes share none of the wire-protocol plumbing below
	// (no connections, no probe): dispatch before building runConfig.
	if *mode == "ipfix" || *mode == "ipfixbench" {
		runIPFIXMode(*mode, ipfixConfig{
			Addr:       *ipfixAddr,
			Flows:      *ipfixFlows,
			Paths:      *ipfixPaths,
			LossRate:   *ipfixLoss,
			RatePerSec: *ipfixRate,
			DurationS:  duration.Seconds(),
			Reps:       *benchReps,
			Seed:       *seed,
		}, *out, logger)
		return
	}

	cfg := runConfig{
		Addr:        *addr,
		Mode:        *mode,
		Workers:     *workers,
		RatePerSec:  *rate,
		Conns:       *conns,
		MaxInflight: *maxInflight,
		DurationS:   duration.Seconds(),
		WarmupS:     warmup.Seconds(),
		Paths:       *paths,
		Skew:        *skew,
		ZipfS:       *zipfS,
		MeanBytes:   *meanBytes,
		TimeoutS:    timeout.Seconds(),
		Seed:        *seed,
		Grid:        *grid,
		FaultMatch:  *faultMatch,
		FaultAfterS: faultAfter.Seconds(),
		FaultForS:   faultFor.Seconds(),
		HealthURL:   *healthURL,
	}
	if *chaosOn {
		cfg.ChaosURL = *chaosURL
		cfg.ChaosFirstS = chaosFirst.Seconds()
		cfg.ChaosEveryS = chaosEvery.Seconds()
		cfg.ChaosKills = *chaosKills
		cfg.ChaosBoundS = chaosBound.Seconds()
	}
	var sp satParams
	if cfg.Mode == "saturate" {
		sp = satParams{
			StartRate:       *satStart,
			MaxRate:         *satMax,
			StepFactor:      *satFactor,
			StepS:           satStep.Seconds(),
			SettleS:         satSettle.Seconds(),
			KneeRatio:       *satRatio,
			KneeConfirm:     *satConfirm,
			KneeMinAchieved: *satMinAch,
			PprofURL:        *pprofURL,
			ProfileS:        profileDur.Seconds(),
			StagesURL:       *stagesURL,
			ResourcesURL:    *resourcesURL,
			ContextURL:      *contextURL,
			ProfilePrefix:   *profPrefix,
		}
	}
	errs := cfg.validate()
	if cfg.Mode == "saturate" {
		errs = append(errs, sp.validate()...)
	}
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "phi-load:", e)
		}
		os.Exit(2)
	}
	if *traceDump != "" && !*traceOn {
		fmt.Fprintln(os.Stderr, "phi-load: -trace-dump requires -trace")
		os.Exit(2)
	}

	var tracer *trace.Tracer
	if *traceOn {
		tracer = trace.NewTracer(trace.Config{})
		logger.Info("tracing enabled", "mode", cfg.Mode)
	}
	if *debugAddr != "" {
		// The loadgen watches its own resource footprint too: a saturation
		// verdict is only as honest as the client's headroom.
		sampler := obs.NewSampler(obs.SamplerConfig{})
		defer sampler.Start()()
		ds, err := telemetry.Serve(*debugAddr, nil,
			telemetry.Endpoint{Path: "/debug/traces", Handler: tracer.Collector().Handler(), Desc: "retained lifecycle traces"},
			telemetry.Endpoint{Path: "/debug/resources", Handler: sampler.Handler(), Desc: "loadgen runtime resource snapshot"})
		if err != nil {
			logger.Fatal("debug server", "err", err)
		}
		defer ds.Close()
		logger.Info("debug server up", "addr", ds.Addr().String())
	}

	// Fail fast if the server is unreachable before spinning anything up.
	probe := phiwire.Dial(*addr, *timeout)
	if _, err := probe.Lookup(makeKeys(cfg, *pathPrefix)[0]); err != nil {
		var se phiwire.ServerError
		if !errors.As(err, &se) {
			logger.Fatal("context server unreachable", "addr", *addr, "err", err)
		}
	}
	probe.Close()

	if cfg.Mode == "saturate" {
		sres := runSaturate(cfg, sp, *pathPrefix, *out, tracer, logger)
		if *traceDump != "" {
			if err := dumpTraces(*traceDump, tracer.Collector()); err != nil {
				logger.Error("trace dump", "err", err)
			}
		}
		enc, err := json.MarshalIndent(sres, "", "  ")
		if err != nil {
			logger.Fatal("encode result", "err", err)
		}
		enc = append(enc, '\n')
		if *out == "" {
			os.Stdout.Write(enc)
		} else {
			if err := os.WriteFile(*out, enc, 0o644); err != nil {
				logger.Fatal("write result", "err", err)
			}
			logger.Info("saturation run complete", "out", *out, "verdict", sres.Knee.String())
		}
		return
	}

	res := run(cfg, *pathPrefix, tracer)

	if *traceDump != "" {
		if err := dumpTraces(*traceDump, tracer.Collector()); err != nil {
			logger.Error("trace dump", "err", err)
		} else {
			logger.Info("wrote trace dump", "path", *traceDump)
		}
	}

	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		logger.Fatal("encode result", "err", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			logger.Fatal("write result", "err", err)
		}
		logger.Info("run complete", "out", *out,
			"lifecycles_per_sec", fmt.Sprintf("%.0f", res.LifecyclesPerSec),
			"lookup_p99_us", fmt.Sprintf("%.0f", res.Ops["lookup"].P99Us))
	}

	// Chaos verdict: the whole point of -chaos is an executable
	// assertion, so violations are an exit code, not just JSON.
	if res.Chaos != nil {
		lost := res.ErrorsTotal + res.DegradedTotal
		switch {
		case lost != 0:
			logger.Error("chaos FAILED: lifecycles lost during remediation",
				"errors", res.ErrorsTotal, "degraded", res.DegradedTotal)
			os.Exit(1)
		case !res.Chaos.Passed:
			logger.Error("chaos FAILED", "completed", res.Chaos.Completed,
				"planned", res.Chaos.Planned, "err", res.Chaos.Error)
			os.Exit(1)
		default:
			worst := 0.0
			for _, k := range res.Chaos.Kills {
				if k.RemediateS > worst {
					worst = k.RemediateS
				}
			}
			logger.Info("chaos passed: zero lost lifecycles, remediation bounded",
				"kills", res.Chaos.Completed, "worst_remediate_s", fmt.Sprintf("%.2f", worst))
		}
	}
}

// dumpTraces writes every retained trace (errors first, then slowest,
// then the sampled rest) in the human-readable text form.
func dumpTraces(path string, col *trace.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var all []*trace.Trace
	all = append(all, col.Errors()...)
	all = append(all, col.Slowest()...)
	all = append(all, col.Sampled()...)
	trace.WriteText(f, all)
	return f.Close()
}

// runConfig echoes the knobs into the result for reproducibility.
type runConfig struct {
	Addr        string  `json:"addr"`
	Mode        string  `json:"mode"`
	Workers     int     `json:"workers,omitempty"`
	RatePerSec  float64 `json:"rate_per_sec,omitempty"`
	Conns       int     `json:"conns,omitempty"`
	MaxInflight int     `json:"max_inflight,omitempty"`
	DurationS   float64 `json:"duration_s"`
	WarmupS     float64 `json:"warmup_s"`
	Paths       int     `json:"paths"`
	Skew        string  `json:"skew"`
	ZipfS       float64 `json:"zipf_s,omitempty"`
	MeanBytes   float64 `json:"mean_bytes"`
	TimeoutS    float64 `json:"timeout_s"`
	Seed        int64   `json:"seed"`
	Grid        string  `json:"grid,omitempty"`
	FaultMatch  string  `json:"fault_match,omitempty"`
	FaultAfterS float64 `json:"fault_after_s,omitempty"`
	FaultForS   float64 `json:"fault_for_s,omitempty"`
	HealthURL   string  `json:"health_url,omitempty"`
	ChaosURL    string  `json:"chaos_url,omitempty"`
	ChaosFirstS float64 `json:"chaos_first_s,omitempty"`
	ChaosEveryS float64 `json:"chaos_every_s,omitempty"`
	ChaosKills  int     `json:"chaos_kills,omitempty"`
	ChaosBoundS float64 `json:"chaos_bound_s,omitempty"`
}

// parseGrid parses a SxIxM grid spec ("1x4x4") into its three
// dimension sizes.
func parseGrid(spec string) (dims [3]int, err error) {
	parts := strings.Split(spec, "x")
	if len(parts) != 3 {
		return dims, fmt.Errorf("want SxIxM (e.g. 1x4x4), got %q", spec)
	}
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			return dims, fmt.Errorf("bad grid dimension %q in %q", p, spec)
		}
		dims[i] = n
	}
	return dims, nil
}

// validate checks every knob up front and returns all problems at once,
// so a misconfigured run dies before dialing anything rather than
// producing a garbage benchmark file.
func (c runConfig) validate() []error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if c.Addr == "" {
		fail("-addr must not be empty")
	}
	switch c.Mode {
	case "closed":
		if c.Workers < 1 {
			fail("-workers must be >= 1 (got %d)", c.Workers)
		}
	case "open":
		if c.RatePerSec <= 0 {
			fail("-rate must be > 0 (got %v)", c.RatePerSec)
		}
		if c.Conns < 1 {
			fail("-conns must be >= 1 (got %d)", c.Conns)
		}
		if c.MaxInflight < 1 {
			fail("-max-inflight must be >= 1 (got %d)", c.MaxInflight)
		}
	case "saturate":
		// The ramp schedule itself lives in satParams (validated there);
		// the shared open-loop plumbing knobs are checked here.
		if c.Conns < 1 {
			fail("-conns must be >= 1 (got %d)", c.Conns)
		}
		if c.MaxInflight < 1 {
			fail("-max-inflight must be >= 1 (got %d)", c.MaxInflight)
		}
	default:
		fail("-mode must be closed, open, saturate, ipfix, or ipfixbench (got %q)", c.Mode)
	}
	if c.DurationS <= 0 {
		fail("-duration must be > 0 (got %vs)", c.DurationS)
	}
	if c.WarmupS < 0 {
		fail("-warmup must be >= 0 (got %vs)", c.WarmupS)
	}
	if c.Paths < 1 {
		fail("-paths must be >= 1 (got %d)", c.Paths)
	}
	switch c.Skew {
	case "uniform":
	case "zipf":
		if c.ZipfS <= 1 {
			fail("-zipf-s must be > 1 (got %v)", c.ZipfS)
		}
		if c.Paths < 2 {
			fail("-skew zipf needs -paths >= 2 (got %d)", c.Paths)
		}
	default:
		fail("-skew must be uniform or zipf (got %q)", c.Skew)
	}
	if c.MeanBytes <= 0 {
		fail("-mean-bytes must be > 0 (got %v)", c.MeanBytes)
	}
	if c.TimeoutS <= 0 {
		fail("-timeout must be > 0 (got %vs)", c.TimeoutS)
	}
	if c.Grid != "" {
		if _, err := parseGrid(c.Grid); err != nil {
			fail("-grid: %v", err)
		}
	}
	if c.FaultMatch != "" {
		if c.FaultAfterS < 0 {
			fail("-fault-after must be >= 0 (got %vs)", c.FaultAfterS)
		}
		if c.FaultForS < 0 {
			fail("-fault-for must be >= 0 (got %vs)", c.FaultForS)
		}
		if c.FaultAfterS >= c.WarmupS+c.DurationS {
			fail("-fault-after %vs is past the end of the run (%vs)", c.FaultAfterS, c.WarmupS+c.DurationS)
		}
	}
	if c.ChaosURL != "" {
		if c.ChaosKills < 1 {
			fail("-chaos-kills must be >= 1 (got %d)", c.ChaosKills)
		}
		if c.ChaosFirstS < 0 {
			fail("-chaos-first must be >= 0 (got %vs)", c.ChaosFirstS)
		}
		if c.ChaosEveryS < 0 {
			fail("-chaos-every must be >= 0 (got %vs)", c.ChaosEveryS)
		}
		if c.ChaosBoundS <= 0 {
			fail("-chaos-bound must be > 0 (got %vs)", c.ChaosBoundS)
		}
		if c.ChaosFirstS >= c.WarmupS+c.DurationS {
			fail("-chaos-first %vs is past the end of the run (%vs)", c.ChaosFirstS, c.WarmupS+c.DurationS)
		}
	}
	return errs
}

// opStats accumulates one operation type's outcomes (telemetry
// histograms double as the loadgen's own measurement instrument).
type opStats struct {
	lat       *telemetry.Histogram
	transport atomic.Uint64 // connection/timeout failures
	server    atomic.Uint64 // application-level (degrade) errors
}

func newOpStats() *opStats { return &opStats{lat: telemetry.NewHistogram()} }

func (o *opStats) record(start time.Time, err error) {
	o.lat.Observe(time.Since(start))
	if err == nil {
		return
	}
	var se phiwire.ServerError
	if errors.As(err, &se) {
		o.server.Add(1)
	} else {
		o.transport.Add(1)
	}
}

// runStats is one measurement window's counters; the warmup window gets
// its own instance, discarded at the switch.
type runStats struct {
	lookup, start, end *opStats
	queueWait          *telemetry.Histogram // open loop: arrival -> issue
	// life is the whole-lifecycle latency measured from the *intended*
	// (scheduled) arrival time, not the moment the request finally got a
	// worker — the coordinated-omission correction. When the server
	// stalls, arrivals that waited in the queue carry their wait; the
	// stall cannot hide itself by delaying its own measurement.
	life       *telemetry.Histogram
	lifecycles atomic.Uint64
	dropped    atomic.Uint64 // open loop: arrivals past max-inflight
}

func newRunStats() *runStats {
	return &runStats{
		lookup:    newOpStats(),
		start:     newOpStats(),
		end:       newOpStats(),
		queueWait: telemetry.NewHistogram(),
		life:      telemetry.NewHistogram(),
	}
}

// histResult reduces a bare histogram snapshot to the opResult JSON
// shape (no error counters).
func histResult(s *telemetry.HistSnapshot) opResult {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	return opResult{
		Count:  s.Count,
		MeanUs: s.Mean() / 1e3,
		P50Us:  us(s.Quantile(0.5)),
		P90Us:  us(s.Quantile(0.9)),
		P99Us:  us(s.Quantile(0.99)),
		P999Us: us(s.Quantile(0.999)),
		MaxUs:  us(s.Max()),
	}
}

// coAccountingNote documents the coordinated-omission correction in
// every JSON result that carries schedule-anchored latencies.
const coAccountingNote = "lifecycle latencies are measured from the intended (scheduled) arrival time, not the actual send — queue wait under overload is included (coordinated-omission corrected); per-op latencies remain service time only"

// opResult is the JSON form of one op's latency distribution.
type opResult struct {
	Count           uint64  `json:"count"`
	TransportErrors uint64  `json:"transport_errors"`
	ServerErrors    uint64  `json:"server_errors"`
	MeanUs          float64 `json:"mean_us"`
	P50Us           float64 `json:"p50_us"`
	P90Us           float64 `json:"p90_us"`
	P99Us           float64 `json:"p99_us"`
	P999Us          float64 `json:"p999_us"`
	MaxUs           float64 `json:"max_us"`
}

func (o *opStats) result() opResult {
	s := o.lat.Snapshot()
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	return opResult{
		Count:           s.Count,
		TransportErrors: o.transport.Load(),
		ServerErrors:    o.server.Load(),
		MeanUs:          s.Mean() / 1e3,
		P50Us:           us(s.Quantile(0.50)),
		P90Us:           us(s.Quantile(0.90)),
		P99Us:           us(s.Quantile(0.99)),
		P999Us:          us(s.Quantile(0.999)),
		MaxUs:           us(s.Max()),
	}
}

// result is the machine-readable run summary (BENCH_loadgen.json).
type result struct {
	Tool             string    `json:"tool"`
	Config           runConfig `json:"config"`
	StartedAt        string    `json:"started_at"`
	MeasuredS        float64   `json:"measured_s"`
	Lifecycles       uint64    `json:"lifecycles"`
	LifecyclesPerSec float64   `json:"lifecycles_per_sec"`
	OpsPerSec        float64   `json:"ops_per_sec"`
	ErrorsTotal      uint64    `json:"errors_total"`
	DegradedTotal    uint64    `json:"degraded_total"`
	Dropped          uint64    `json:"dropped_arrivals"`
	// LatencyAccounting documents how the "lifecycle" entry in Ops is
	// measured (open loop only): see coAccountingNote.
	LatencyAccounting string              `json:"latency_accounting,omitempty"`
	Ops               map[string]opResult `json:"ops"`
	Fault             *faultResult        `json:"fault,omitempty"`
	Health            *healthResult       `json:"health,omitempty"`
	Chaos             *chaosResult        `json:"chaos,omitempty"`
}

// makeKeys builds the path key universe. With -grid SxIxM, keys are
// structured as svc-i/isp-j/metro-k/p-n — the slice labels the
// server-side health monitor aggregates over and localizes against
// (internal/health.DefaultSlicer splits on "/"). Keys are spread
// round-robin over the grid cells so every slice carries traffic.
// Without -grid, keys are the flat prefix0..prefixN-1 series.
func makeKeys(cfg runConfig, prefix string) []phi.PathKey {
	keys := make([]phi.PathKey, cfg.Paths)
	if cfg.Grid != "" {
		dims, err := parseGrid(cfg.Grid) // validated before run start
		if err != nil {
			panic(err)
		}
		for i := range keys {
			cell := i % (dims[0] * dims[1] * dims[2])
			svc := cell % dims[0]
			isp := (cell / dims[0]) % dims[1]
			metro := cell / (dims[0] * dims[1]) % dims[2]
			keys[i] = phi.PathKey(fmt.Sprintf("svc-%d/isp-%d/metro-%d/p-%d", svc, isp, metro, i))
		}
		return keys
	}
	for i := range keys {
		keys[i] = phi.PathKey(fmt.Sprintf("%s%d", prefix, i))
	}
	return keys
}

// pathPicker returns a per-goroutine path chooser (rand.Rand and
// rand.Zipf are not concurrency-safe, so each worker gets its own,
// seeded deterministically).
func pathPicker(cfg runConfig, prefix string, workerSeed int64) func() phi.PathKey {
	keys := makeKeys(cfg, prefix)
	rng := rand.New(rand.NewSource(workerSeed))
	if cfg.Skew == "zipf" {
		z := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Paths-1))
		return func() phi.PathKey { return keys[z.Uint64()] }
	}
	return func() phi.PathKey { return keys[rng.Intn(cfg.Paths)] }
}

// lifecycle performs one full connection protocol exchange and records
// each phase into st. With a tracer, the whole exchange becomes one
// trace rooted here: the per-request client spans (and, over the wire,
// the server's handling and routing spans) hang off the lifecycle span.
func lifecycle(tr *trace.Tracer, cl *phiwire.Client, path phi.PathKey, st *runStats, rng *rand.Rand, meanBytes float64) {
	sp := tr.Start(trace.SpanContext{}, opLifecycle)
	sc := sp.Context()
	var firstErr error
	keep := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}

	t0 := time.Now()
	_, err := cl.LookupSpan(sc, path)
	st.lookup.record(t0, err)
	keep(err)

	t1 := time.Now()
	err = cl.ReportStartSpan(sc, path)
	st.start.record(t1, err)
	keep(err)

	// Synthetic transfer: exponential sizes around the mean, plausible
	// RTTs so the server's q estimator has something to chew on.
	bytes := int64(rng.ExpFloat64() * meanBytes)
	minRTT := 20*sim.Millisecond + sim.Time(rng.Int63n(int64(20*sim.Millisecond)))
	avgRTT := minRTT + sim.Time(rng.Int63n(int64(10*sim.Millisecond)))
	rep := phi.Report{
		Bytes:    bytes,
		Duration: sim.Time(float64(bytes) * 8 / 1e9 * float64(sim.Second)),
		AvgRTT:   avgRTT,
		MinRTT:   minRTT,
		LossRate: 0,
	}
	t2 := time.Now()
	err = cl.ReportEndSpan(sc, path, rep)
	st.end.record(t2, err)
	keep(err)

	sp.End(firstErr)
	st.lifecycles.Add(1)
}

// faultCtl injects the mid-run fault: while active, lifecycles whose
// path contains the match substring are suppressed before they reach
// the wire — exactly the silent partial outage (a slice of the
// workload going dark) the server-side health monitor exists to
// detect and localize. drop is nil-safe so the hot loops pay one
// branch when no fault is configured.
type faultCtl struct {
	match      string
	active     atomic.Bool
	suppressed atomic.Uint64
	injectedAt atomic.Int64 // wall clock, unix nanos, set once at activation
}

func (f *faultCtl) drop(path phi.PathKey) bool {
	if f == nil || !f.active.Load() || !strings.Contains(string(path), f.match) {
		return false
	}
	f.suppressed.Add(1)
	return true
}

// schedule arms the fault: after cfg.FaultAfterS (measured from run
// start, warmup included) suppression turns on; after cfg.FaultForS
// more it turns off again (0 = hold until the run ends).
func (f *faultCtl) schedule(cfg runConfig, stop <-chan struct{}, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-stop:
			return
		case <-time.After(time.Duration(cfg.FaultAfterS * float64(time.Second))):
		}
		f.injectedAt.Store(time.Now().UnixNano())
		f.active.Store(true)
		if cfg.FaultForS == 0 {
			return
		}
		select {
		case <-stop:
		case <-time.After(time.Duration(cfg.FaultForS * float64(time.Second))):
		}
		f.active.Store(false)
	}()
}

// faultResult summarizes the injected fault in the JSON output.
type faultResult struct {
	Match                string  `json:"match"`
	InjectedAtS          float64 `json:"injected_at_s"` // offset from run start
	DurationS            float64 `json:"duration_s"`    // 0 = until run end
	SuppressedLifecycles uint64  `json:"suppressed_lifecycles"`
}

// healthAnomaly mirrors the anomaly fields of the server's
// /debug/health JSON that the watcher needs.
type healthAnomaly struct {
	ID           uint64    `json:"id"`
	Scope        string    `json:"scope"`
	StartedAt    time.Time `json:"started_at"`
	Localization string    `json:"localization"`
}

// healthSnapshot is the subset of the /debug/health document we decode.
type healthSnapshot struct {
	Status string          `json:"status"`
	Active []healthAnomaly `json:"active_anomalies"`
	Recent []healthAnomaly `json:"recent_anomalies"`
}

// healthResult is the end-of-run detection summary: did the server's
// monitor notice the fault we injected, how long did it take, and
// where did it localize it.
type healthResult struct {
	URL            string  `json:"url"`
	Polls          uint64  `json:"polls"`
	PollErrors     uint64  `json:"poll_errors"`
	FinalStatus    string  `json:"final_status,omitempty"`
	AnomaliesSeen  int     `json:"anomalies_seen"`
	FaultDetected  bool    `json:"fault_detected"`
	DetectedScope  string  `json:"detected_scope,omitempty"`
	Localization   string  `json:"localization,omitempty"`
	TimeToDetectS  float64 `json:"time_to_detect_s,omitempty"`  // anomaly started_at - fault injection
	TimeToObserveS float64 `json:"time_to_observe_s,omitempty"` // first poll showing it - fault injection
}

// healthWatcher polls /debug/health during the run, tracking every
// distinct anomaly and the first one matching the injected fault.
type healthWatcher struct {
	url   string
	fault *faultCtl

	mu       sync.Mutex
	res      healthResult
	seen     map[uint64]struct{}
	detected *healthAnomaly
	firstObs time.Time // wall clock of the poll that first showed the match
}

func newHealthWatcher(url string, fault *faultCtl) *healthWatcher {
	return &healthWatcher{url: url, fault: fault, seen: make(map[uint64]struct{}), res: healthResult{URL: url}}
}

func (w *healthWatcher) start(stop <-chan struct{}, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				w.poll() // final look so late detections still count
				return
			case <-tick.C:
				w.poll()
			}
		}
	}()
}

func (w *healthWatcher) poll() {
	resp, err := http.Get(w.url)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.res.Polls++
	if err != nil {
		w.res.PollErrors++
		return
	}
	var snap healthSnapshot
	derr := json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if derr != nil {
		w.res.PollErrors++
		return
	}
	w.res.FinalStatus = snap.Status
	for _, a := range append(snap.Active, snap.Recent...) {
		a := a
		w.seen[a.ID] = struct{}{}
		// Credit the detection to the injected fault if the anomaly's
		// scope or localization mentions the suppressed slice.
		if w.fault != nil && w.detected == nil &&
			(strings.Contains(a.Scope, w.fault.match) || strings.Contains(a.Localization, w.fault.match)) {
			w.detected = &a
			w.firstObs = time.Now()
		}
		if w.detected != nil && a.ID == w.detected.ID && a.Localization != "" {
			w.detected.Localization = a.Localization // localization can arrive on a later sweep
		}
	}
}

// summary finalizes the watcher's result once the run is over.
func (w *healthWatcher) summary() *healthResult {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.res.AnomaliesSeen = len(w.seen)
	if w.detected != nil {
		w.res.FaultDetected = true
		w.res.DetectedScope = w.detected.Scope
		w.res.Localization = w.detected.Localization
		if inj := w.fault.injectedAt.Load(); inj != 0 {
			injAt := time.Unix(0, inj)
			w.res.TimeToDetectS = w.detected.StartedAt.Sub(injAt).Seconds()
			w.res.TimeToObserveS = w.firstObs.Sub(injAt).Seconds()
		}
	}
	r := w.res
	return &r
}

func run(cfg runConfig, prefix string, tracer *trace.Tracer) *result {
	warmStats := newRunStats()
	mainStats := newRunStats()
	// Workers read the active window through an atomic pointer; the
	// warmup -> measurement switch is one store.
	var active atomic.Pointer[runStats]
	active.Store(warmStats)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	startedAt := time.Now()

	var fault *faultCtl
	if cfg.FaultMatch != "" {
		fault = &faultCtl{match: cfg.FaultMatch}
		fault.schedule(cfg, stop, &wg)
	}
	var watcher *healthWatcher
	if cfg.HealthURL != "" {
		watcher = newHealthWatcher(cfg.HealthURL, fault)
		watcher.start(stop, &wg)
	}
	var chaos *chaosCtl
	if cfg.ChaosURL != "" {
		chaos = newChaosCtl(cfg)
		chaos.start(stop, &wg)
	}

	switch cfg.Mode {
	case "closed":
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cl := phiwire.Dial(cfg.Addr, time.Duration(cfg.TimeoutS*float64(time.Second)))
				cl.SetTracer(tracer)
				defer cl.Close()
				pick := pathPicker(cfg, prefix, cfg.Seed+int64(w))
				rng := rand.New(rand.NewSource(cfg.Seed ^ int64(w)<<20))
				for {
					select {
					case <-stop:
						return
					default:
					}
					path := pick()
					if fault.drop(path) {
						// Suppressed: the lifecycle never happens. Brief
						// sleep so a worker stuck on a dark slice does
						// not spin redrawing paths.
						time.Sleep(time.Millisecond)
						continue
					}
					lifecycle(tracer, cl, path, active.Load(), rng, cfg.MeanBytes)
				}
			}(w)
		}
	case "open":
		// Fixed connection pool; lifecycles grab connections round-robin.
		pool := make([]*phiwire.Client, cfg.Conns)
		for i := range pool {
			pool[i] = phiwire.Dial(cfg.Addr, time.Duration(cfg.TimeoutS*float64(time.Second)))
			pool[i].SetTracer(tracer)
		}
		defer func() {
			for _, cl := range pool {
				cl.Close()
			}
		}()
		var next atomic.Uint64
		type arrival struct{ at time.Time }
		queue := make(chan arrival, cfg.MaxInflight)
		for w := 0; w < cfg.MaxInflight; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				pick := pathPicker(cfg, prefix, cfg.Seed+int64(w))
				rng := rand.New(rand.NewSource(cfg.Seed ^ int64(w)<<20))
				for a := range queue {
					st := active.Load()
					st.queueWait.Observe(time.Since(a.at))
					path := pick()
					if fault.drop(path) {
						continue // arrival consumed, lifecycle suppressed
					}
					cl := pool[next.Add(1)%uint64(len(pool))]
					lifecycle(tracer, cl, path, st, rng, cfg.MeanBytes)
					// Coordinated-omission correction: the lifecycle is
					// charged from its *scheduled* arrival, so time spent
					// waiting for a worker counts against the server.
					st.life.Observe(time.Since(a.at))
				}
			}(w)
		}
		// Poisson arrival process: exponential inter-arrival gaps at
		// -rate per second, independent of completions (open loop). If
		// the in-flight bound is hit the arrival is dropped and counted,
		// never queued — queuing would silently close the loop.
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(queue)
			rng := rand.New(rand.NewSource(cfg.Seed))
			nextAt := time.Now()
			for {
				gap := time.Duration(rng.ExpFloat64() / cfg.RatePerSec * float64(time.Second))
				nextAt = nextAt.Add(gap)
				if d := time.Until(nextAt); d > 0 {
					select {
					case <-stop:
						return
					case <-time.After(d):
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
				}
				select {
				case queue <- arrival{at: nextAt}:
				default:
					active.Load().dropped.Add(1)
				}
			}
		}()
	}

	warmup := time.Duration(cfg.WarmupS * float64(time.Second))
	duration := time.Duration(cfg.DurationS * float64(time.Second))
	time.Sleep(warmup)
	active.Store(mainStats)
	measureStart := time.Now()
	time.Sleep(duration)
	measured := time.Since(measureStart)
	close(stop)
	wg.Wait()

	st := mainStats
	ops := map[string]opResult{
		"lookup":       st.lookup.result(),
		"report_start": st.start.result(),
		"report_end":   st.end.result(),
	}
	if cfg.Mode == "open" {
		ops["queue_wait"] = histResult(st.queueWait.Snapshot())
		ops["lifecycle"] = histResult(st.life.Snapshot())
	}
	totalOps := st.lookup.lat.Count() + st.start.lat.Count() + st.end.lat.Count()
	var errs, degrades uint64
	for _, o := range []*opStats{st.lookup, st.start, st.end} {
		errs += o.transport.Load()
		degrades += o.server.Load()
	}
	res := &result{
		Tool:             "phi-load",
		Config:           cfg,
		StartedAt:        startedAt.UTC().Format(time.RFC3339),
		MeasuredS:        measured.Seconds(),
		Lifecycles:       st.lifecycles.Load(),
		LifecyclesPerSec: float64(st.lifecycles.Load()) / measured.Seconds(),
		OpsPerSec:        float64(totalOps) / measured.Seconds(),
		ErrorsTotal:      errs,
		DegradedTotal:    degrades,
		Dropped:          st.dropped.Load(),
		Ops:              ops,
	}
	if cfg.Mode == "open" {
		res.LatencyAccounting = coAccountingNote
	}
	if fault != nil {
		res.Fault = &faultResult{
			Match:                fault.match,
			InjectedAtS:          cfg.FaultAfterS,
			DurationS:            cfg.FaultForS,
			SuppressedLifecycles: fault.suppressed.Load(),
		}
	}
	if watcher != nil {
		res.Health = watcher.summary()
	}
	if chaos != nil {
		res.Chaos = chaos.summary()
	}
	return res
}
