package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/phiwire"
	"repro/internal/trace"
	tlog "repro/internal/trace/log"
)

// Saturate mode answers the question the single-rate open loop cannot:
// where is the ceiling? It ramps the offered Poisson rate geometrically,
// one settled multi-second step at a time, feeds each step's
// coordinated-omission-corrected lifecycle p99 to the online knee
// detector (knee.go), and stops once the knee is confirmed — then holds
// the load at the knee rate while capturing CPU and heap profiles from
// the server, so the evidence of *why* the ceiling is where it is lands
// next to the measurement of where it is.
//
// The load plumbing is the open loop's (fixed connection pool, bounded
// in-flight workers, counted drops) with two differences: the target
// rate is a shared atomic the driver retunes between steps, and the
// arrival pacer batches — it only parks on a timer when the schedule is
// more than pacerSlack ahead, because at the rates the ramp reaches a
// timer per arrival would melt before the server does.

// pacerSlack is how far ahead of schedule the arrival generator must be
// before it parks on a timer; closer than this it just spins the loop,
// amortizing timer cost over many arrivals.
const pacerSlack = 500 * time.Microsecond

// satParams is the ramp schedule and knee policy, echoed into the
// result for reproducibility.
type satParams struct {
	StartRate       float64 `json:"start_rate"`
	MaxRate         float64 `json:"max_rate"`
	StepFactor      float64 `json:"step_factor"`
	StepS           float64 `json:"step_s"`
	SettleS         float64 `json:"settle_s"`
	KneeRatio       float64 `json:"knee_ratio"`
	KneeConfirm     int     `json:"knee_confirm"`
	KneeMinAchieved float64 `json:"knee_min_achieved"`
	PprofURL        string  `json:"pprof_url,omitempty"`
	ProfileS        float64 `json:"profile_s,omitempty"`
	StagesURL       string  `json:"stages_url,omitempty"`
	// ResourcesURL, when set, is the server's /debug/resources endpoint;
	// its snapshot is embedded in the result (server-side runtime + wire
	// attribution next to the client-side measurement).
	ResourcesURL string `json:"resources_url,omitempty"`
	// ContextURL, when set, is the server's /debug/context endpoint. It
	// is polled at each ramp step's measurement boundaries so the step
	// (and the knee verdict latched from it) carries context-quality
	// attribution: coverage fresh fraction over the step's lookups and
	// the cumulative paired-RTT p90 absolute error. The final snapshot is
	// embedded in the result verbatim.
	ContextURL string `json:"context_url,omitempty"`
	// ProfilePrefix overrides where knee profiles land (default: derived
	// from the -out path) — how the Makefile keeps BENCH_saturation.json
	// at the repo root while the binary pprofs go under results/.
	ProfilePrefix string `json:"profile_prefix,omitempty"`
}

func (p satParams) validate() []error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if p.StartRate <= 0 {
		fail("-sat-start must be > 0 (got %v)", p.StartRate)
	}
	if p.MaxRate < p.StartRate {
		fail("-sat-max must be >= -sat-start (got %v < %v)", p.MaxRate, p.StartRate)
	}
	if p.StepFactor <= 1 {
		fail("-sat-factor must be > 1 (got %v)", p.StepFactor)
	}
	if p.StepS <= 0 {
		fail("-sat-step must be > 0 (got %vs)", p.StepS)
	}
	if p.SettleS < 0 {
		fail("-sat-settle must be >= 0 (got %vs)", p.SettleS)
	}
	if p.KneeRatio <= 1 {
		fail("-sat-ratio must be > 1 (got %v)", p.KneeRatio)
	}
	if p.KneeConfirm < 1 {
		fail("-sat-confirm must be >= 1 (got %d)", p.KneeConfirm)
	}
	if p.KneeMinAchieved <= 0 || p.KneeMinAchieved > 1 {
		fail("-sat-min-achieved must be in (0, 1] (got %v)", p.KneeMinAchieved)
	}
	if p.PprofURL != "" && p.ProfileS <= 0 {
		fail("-profile-dur must be > 0 with -pprof-url (got %vs)", p.ProfileS)
	}
	return errs
}

// satStepResult is one settled ramp step in the rate→latency curve.
type satStepResult struct {
	Step            int     `json:"step"`
	OfferedRate     float64 `json:"offered_rate"`
	AchievedRate    float64 `json:"achieved_rate"`
	MeasuredS       float64 `json:"measured_s"`
	Lifecycles      uint64  `json:"lifecycles"`
	Dropped         uint64  `json:"dropped_arrivals"`
	TransportErrors uint64  `json:"transport_errors"`
	ServerErrors    uint64  `json:"server_errors"`
	// Lifecycle is the coordinated-omission-corrected whole-lifecycle
	// distribution: measured from scheduled arrival, the knee detector's
	// input.
	Lifecycle opResult `json:"lifecycle"`
	// QueueWaitP99Us and LookupP99Us separate the two halves: time spent
	// waiting for a worker slot vs. pure service time on the wire.
	QueueWaitP99Us float64 `json:"queue_wait_p99_us"`
	LookupP99Us    float64 `json:"lookup_p99_us"`
	// Offending names the knee test this step failed against the
	// baseline in force when it completed ("" = clean).
	Offending string `json:"offending,omitempty"`

	// Efficiency attribution over the measured window, client side:
	// process-wide heap allocations per completed lifecycle (3 wire
	// requests each) and the wire batching ratios from the shared
	// obs.WireCounters deltas.
	AllocsPerOp          float64 `json:"allocs_per_op"`
	AllocBytesPerOp      float64 `json:"alloc_bytes_per_op"`
	FramesPerSyscall     float64 `json:"frames_per_syscall"`
	BytesPerWriteSyscall float64 `json:"bytes_per_write_syscall"`

	// Context-quality attribution over the step (server side, from
	// -context-url): fraction of the step's lookups served from fresh
	// evidence (delta between boundary probes) and the server's
	// cumulative paired-RTT p90 absolute error at step end.
	CoverageFreshFrac float64 `json:"coverage_fresh_frac,omitempty"`
	RTTAbsErrP90Us    float64 `json:"rtt_abs_err_p90_us,omitempty"`
}

// profileCapture records where the knee-time profiles landed.
type profileCapture struct {
	CPUPath  string `json:"cpu_path,omitempty"`
	HeapPath string `json:"heap_path,omitempty"`
	Error    string `json:"error,omitempty"`
	// Ring echoes the server's /debug/prof/ring capture record for the
	// knee-triggered ring entry (best effort).
	Ring json.RawMessage `json:"ring,omitempty"`
}

// satResult is the machine-readable saturation report
// (BENCH_saturation.json): the full curve, the verdict, and the
// decomposition/profile evidence gathered at the knee.
type satResult struct {
	Tool              string          `json:"tool"`
	Config            runConfig       `json:"config"`
	Saturate          satParams       `json:"saturate"`
	StartedAt         string          `json:"started_at"`
	LatencyAccounting string          `json:"latency_accounting"`
	Steps             []satStepResult `json:"steps"`
	Knee              kneeVerdict     `json:"knee"`
	// MaxSustainableRate is the headline number: the achieved rate at
	// the last step the server handled with flat tails.
	MaxSustainableRate float64              `json:"max_sustainable_rate"`
	StagesClient       []trace.StageSummary `json:"stages_client,omitempty"`
	// StagesServer embeds the server's /debug/stages JSON verbatim
	// (cumulative over the whole ramp).
	StagesServer json.RawMessage `json:"stages_server,omitempty"`
	// WireClient is the client-side wire attribution over the whole run.
	WireClient obs.WireSnapshot `json:"wire_client"`
	// ResourcesServer embeds the server's /debug/resources snapshot
	// (runtime sampler + server-side wire counters) verbatim.
	ResourcesServer json.RawMessage `json:"resources_server,omitempty"`
	// Context embeds the server's /debug/context snapshot (freshness,
	// coverage, predictive accuracy) verbatim, fetched after the ramp.
	Context  json.RawMessage `json:"context,omitempty"`
	Profiles *profileCapture `json:"profiles,omitempty"`
}

// contextProbe is the slice of the server's /debug/context JSON the ramp
// consumes: cumulative coverage counters (differenced across a step to
// attribute the step's lookups) and the overall paired-RTT p90 error.
type contextProbe struct {
	Coverage struct {
		Fresh    uint64 `json:"fresh"`
		Stale    uint64 `json:"stale"`
		Fallback uint64 `json:"fallback"`
	} `json:"coverage"`
	Accuracy map[string]struct {
		RTTAbsErrP90Us float64 `json:"rtt_abs_err_p90_us"`
	} `json:"accuracy"`
}

// probeContext fetches and parses url; best effort — a nil return means
// the step simply carries no context attribution.
func probeContext(url string, logger *tlog.Logger) *contextProbe {
	raw, err := fetchJSON(url)
	if err != nil {
		logger.Warn("context probe", "url", url, "err", err)
		return nil
	}
	var p contextProbe
	if err := json.Unmarshal(raw, &p); err != nil {
		logger.Warn("context probe decode", "url", url, "err", err)
		return nil
	}
	return &p
}

// runSaturate drives the ramp. out is the result path (used to derive
// the profile file names); tracer may be nil (no client-side stage
// decomposition, load still flows).
func runSaturate(cfg runConfig, sp satParams, prefix, out string, tracer *trace.Tracer, logger *tlog.Logger) *satResult {
	var clientStages *trace.StageAggregator
	if tracer != nil {
		clientStages = trace.NewStageAggregator()
		tracer.Collector().AttachStages(clientStages)
	}

	// Shared offered-rate knob, retuned by the driver between steps.
	var rateBits atomic.Uint64
	rateBits.Store(math.Float64bits(sp.StartRate))

	var active atomic.Pointer[runStats]
	active.Store(newRunStats())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	startedAt := time.Now()

	// One WireCounters shared by the whole pool: frames and syscalls are
	// attributed to the run, not to a connection, which is what the per-
	// step batching-ratio deltas need.
	wire := obs.NewWireCounters()
	pool := make([]*phiwire.Client, cfg.Conns)
	for i := range pool {
		pool[i] = phiwire.Dial(cfg.Addr, time.Duration(cfg.TimeoutS*float64(time.Second)))
		pool[i].SetTracer(tracer)
		pool[i].SetWire(wire)
	}
	defer func() {
		for _, cl := range pool {
			cl.Close()
		}
	}()

	var next atomic.Uint64
	type arrival struct{ at time.Time }
	queue := make(chan arrival, cfg.MaxInflight)
	for w := 0; w < cfg.MaxInflight; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pick := pathPicker(cfg, prefix, cfg.Seed+int64(w))
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(w)<<20))
			for a := range queue {
				st := active.Load()
				st.queueWait.Observe(time.Since(a.at))
				cl := pool[next.Add(1)%uint64(len(pool))]
				lifecycle(tracer, cl, pick(), st, rng, cfg.MeanBytes)
				st.life.Observe(time.Since(a.at))
			}
		}(w)
	}

	// Arrival generator: Poisson at the current target rate, batched
	// pacing, never blocks on a full queue (drops are counted — queuing
	// would close the loop and hide the overload).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(queue)
		rng := rand.New(rand.NewSource(cfg.Seed))
		nextAt := time.Now()
		for {
			r := math.Float64frombits(rateBits.Load())
			gap := time.Duration(rng.ExpFloat64() / r * float64(time.Second))
			nextAt = nextAt.Add(gap)
			if d := time.Until(nextAt); d > pacerSlack {
				select {
				case <-stop:
					return
				case <-time.After(d):
				}
			} else {
				select {
				case <-stop:
					return
				default:
				}
			}
			select {
			case queue <- arrival{at: nextAt}:
			default:
				active.Load().dropped.Add(1)
			}
		}
	}()

	// The ramp: settle, measure, judge; stop on a confirmed knee or at
	// the safety cap.
	det := newKneeDetector(kneeConfig{Ratio: sp.KneeRatio, Confirm: sp.KneeConfirm, MinAchieved: sp.KneeMinAchieved})
	var steps []satStepResult
	rate := sp.StartRate
	for step := 0; ; step++ {
		rateBits.Store(math.Float64bits(rate))
		active.Store(newRunStats()) // settle scratch, discarded
		time.Sleep(time.Duration(sp.SettleS * float64(time.Second)))
		st := newRunStats()
		active.Store(st)
		t0 := time.Now()
		allocObj0, allocBytes0 := obs.AllocCounts()
		w0 := wire.Snapshot()
		var ctx0 *contextProbe
		if sp.ContextURL != "" {
			ctx0 = probeContext(sp.ContextURL, logger)
		}
		time.Sleep(time.Duration(sp.StepS * float64(time.Second)))
		measured := time.Since(t0).Seconds()
		allocObj1, allocBytes1 := obs.AllocCounts()
		wd := wire.Snapshot().Sub(w0)
		// Context attribution: the coverage counters are cumulative, so
		// the step's own lookup mix is the delta between the boundary
		// probes; the accuracy quantile is cumulative by design (paired
		// predictions accrue over the whole run).
		var covFreshFrac, rttAbsErrP90 float64
		if ctx0 != nil {
			if ctx1 := probeContext(sp.ContextURL, logger); ctx1 != nil {
				dFresh := ctx1.Coverage.Fresh - ctx0.Coverage.Fresh
				dTotal := dFresh + (ctx1.Coverage.Stale - ctx0.Coverage.Stale) +
					(ctx1.Coverage.Fallback - ctx0.Coverage.Fallback)
				if dTotal > 0 {
					covFreshFrac = float64(dFresh) / float64(dTotal)
				}
				rttAbsErrP90 = ctx1.Accuracy["overall"].RTTAbsErrP90Us
			}
		}

		life := histResult(st.life.Snapshot())
		lifecycles := st.lifecycles.Load()
		achieved := float64(lifecycles) / measured
		var terrs, serrs uint64
		for _, o := range []*opStats{st.lookup, st.start, st.end} {
			terrs += o.transport.Load()
			serrs += o.server.Load()
		}
		// Per-op attribution: process-wide heap alloc deltas over the window
		// divided by completed lifecycles (each lifecycle = 3 wire requests),
		// plus the batching ratios over the same window's wire deltas.
		var allocsPerOp, allocBytesPerOp float64
		if lifecycles > 0 {
			allocsPerOp = float64(allocObj1-allocObj0) / float64(lifecycles)
			allocBytesPerOp = float64(allocBytes1-allocBytes0) / float64(lifecycles)
		}
		p := kneePoint{
			Offered: rate, Achieved: achieved, P99Us: life.P99Us,
			AllocsPerOp:       allocsPerOp,
			FramesPerSyscall:  wd.FramesPerWriteSyscall,
			CoverageFreshFrac: covFreshFrac,
			RTTAbsErrP90:      rttAbsErrP90,
		}
		offending := det.offends(p)
		found := det.feed(p)
		steps = append(steps, satStepResult{
			Step:                 step,
			OfferedRate:          rate,
			AchievedRate:         achieved,
			MeasuredS:            measured,
			Lifecycles:           lifecycles,
			Dropped:              st.dropped.Load(),
			TransportErrors:      terrs,
			ServerErrors:         serrs,
			Lifecycle:            life,
			QueueWaitP99Us:       float64(st.queueWait.Snapshot().Quantile(0.99)) / 1e3,
			LookupP99Us:          float64(st.lookup.lat.Snapshot().Quantile(0.99)) / 1e3,
			Offending:            offending,
			AllocsPerOp:          allocsPerOp,
			AllocBytesPerOp:      allocBytesPerOp,
			FramesPerSyscall:     wd.FramesPerWriteSyscall,
			BytesPerWriteSyscall: wd.BytesPerWriteSyscall,
			CoverageFreshFrac:    covFreshFrac,
			RTTAbsErrP90Us:       rttAbsErrP90,
		})
		logger.Info("ramp step", "step", step,
			"offered", fmt.Sprintf("%.0f", rate),
			"achieved", fmt.Sprintf("%.0f", achieved),
			"life_p99_us", fmt.Sprintf("%.0f", life.P99Us),
			"dropped", st.dropped.Load(), "offending", offending)
		if found {
			break
		}
		rate *= sp.StepFactor
		if rate > sp.MaxRate {
			logger.Warn("ramp hit -sat-max without a confirmed knee", "max", sp.MaxRate)
			break
		}
	}
	knee := det.result()

	// Profile at the operating point that matters: hold the knee rate
	// (the load is still flowing) while the server profiles itself.
	var profiles *profileCapture
	if knee.Found && sp.PprofURL != "" {
		rateBits.Store(math.Float64bits(knee.OfferedRate))
		profiles = captureProfiles(sp, out, logger)
	}

	close(stop)
	wg.Wait()

	res := &satResult{
		Tool:               "phi-load",
		Config:             cfg,
		Saturate:           sp,
		StartedAt:          startedAt.UTC().Format(time.RFC3339),
		LatencyAccounting:  coAccountingNote,
		Steps:              steps,
		Knee:               knee,
		MaxSustainableRate: knee.Rate,
		WireClient:         wire.Snapshot(),
		Profiles:           profiles,
	}
	if clientStages != nil {
		res.StagesClient = clientStages.Summaries()
	}
	if sp.StagesURL != "" {
		raw, err := fetchJSON(sp.StagesURL)
		if err != nil {
			logger.Error("fetch server stages", "url", sp.StagesURL, "err", err)
		} else {
			res.StagesServer = raw
		}
	}
	if sp.ResourcesURL != "" {
		raw, err := fetchJSON(sp.ResourcesURL)
		if err != nil {
			logger.Error("fetch server resources", "url", sp.ResourcesURL, "err", err)
		} else {
			res.ResourcesServer = raw
		}
	}
	if sp.ContextURL != "" {
		raw, err := fetchJSON(sp.ContextURL)
		if err != nil {
			logger.Error("fetch server context", "url", sp.ContextURL, "err", err)
		} else {
			res.Context = raw
		}
	}
	logger.Info("saturation ramp done", "steps", len(steps), "verdict", knee.String())
	return res
}

// captureProfiles pulls a CPU profile (ProfileS seconds, while load
// holds at the knee rate) and a heap snapshot from the server's debug
// port, writing them next to the result JSON.
func captureProfiles(sp satParams, out string, logger *tlog.Logger) *profileCapture {
	base := sp.ProfilePrefix
	if base == "" {
		base = strings.TrimSuffix(out, ".json")
	}
	if base == "" {
		base = "BENCH_saturation"
	}
	pc := &profileCapture{}
	secs := int(sp.ProfileS)
	if secs < 1 {
		secs = 1
	}
	cpuURL := fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", strings.TrimSuffix(sp.PprofURL, "/"), secs)
	cpuPath := base + "_cpu.pprof"
	logger.Info("capturing CPU profile at the knee", "url", cpuURL, "out", cpuPath)
	if err := fetchToFile(cpuURL, cpuPath, time.Duration(secs+10)*time.Second); err != nil {
		pc.Error = fmt.Sprintf("cpu profile: %v", err)
		logger.Error("cpu profile", "err", err)
	} else {
		pc.CPUPath = cpuPath
	}
	heapURL := strings.TrimSuffix(sp.PprofURL, "/") + "/debug/pprof/heap"
	heapPath := base + "_heap.pprof"
	if err := fetchToFile(heapURL, heapPath, 10*time.Second); err != nil {
		if pc.Error != "" {
			pc.Error += "; "
		}
		pc.Error += fmt.Sprintf("heap profile: %v", err)
		logger.Error("heap profile", "err", err)
	} else {
		pc.HeapPath = heapPath
	}
	// Best-effort: ask the server to also drop a knee-tagged entry into
	// its on-disk profile ring, so the evidence survives on the server
	// side too. AFTER the pprof fetches — the ring's own StartCPUProfile
	// would conflict with an in-flight /debug/pprof/profile.
	ringURL := strings.TrimSuffix(sp.PprofURL, "/") + "/debug/prof/ring?op=capture&reason=knee"
	if raw, err := fetchJSON(ringURL); err != nil {
		logger.Warn("ring knee capture", "err", err)
	} else {
		pc.Ring = raw
	}
	return pc
}

// fetchToFile GETs url into path.
func fetchToFile(url, path string, timeout time.Duration) error {
	cl := http.Client{Timeout: timeout}
	resp, err := cl.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: %s (%s)", url, resp.Status, strings.TrimSpace(string(body)))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fetchJSON GETs url and returns the body if it parses as JSON.
func fetchJSON(url string) (json.RawMessage, error) {
	cl := http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if !json.Valid(body) {
		return nil, fmt.Errorf("%s: response is not JSON", url)
	}
	return json.RawMessage(body), nil
}
