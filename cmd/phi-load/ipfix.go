// IPFIX load modes. Where the closed/open modes drive the cooperative
// wire protocol, these two exercise the passive-ingest path:
//
//   - ipfix: flood a running server's -ipfix-addr collector with
//     synthetic TCP-template export datagrams over real UDP, optionally
//     paced to a records/s target. The server needs no cooperation from
//     this process beyond the datagrams themselves — that is the point
//     of passive ingest.
//   - ipfixbench: no network at all. Run the ingest pipeline in-process
//     against a real phi.Server and pin two numbers in BENCH_ingest.json:
//     the sustained single-core decode+track+report rate (best of
//     -bench-reps, with per-record allocations), and the counted-drop
//     behavior when offered 2x that rate through the bounded
//     asynchronous queues.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/ingest"
	"repro/internal/ipfix"
	"repro/internal/ipfix/synth"
	"repro/internal/phi"
	"repro/internal/sim"
	tlog "repro/internal/trace/log"
)

// ipfixConfig echoes the IPFIX-mode knobs into the result for
// reproducibility, like runConfig does for the wire modes.
type ipfixConfig struct {
	Addr       string  `json:"addr,omitempty"`
	Flows      int     `json:"flows"`
	Paths      int     `json:"paths"`
	LossRate   float64 `json:"loss_rate"`
	RatePerSec float64 `json:"rate_per_sec,omitempty"` // records/s, 0 = unpaced
	DurationS  float64 `json:"duration_s,omitempty"`
	Reps       int     `json:"reps,omitempty"`
	Seed       int64   `json:"seed"`
}

func (c ipfixConfig) validate(mode string) []error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if c.Flows < 1 {
		fail("-ipfix-flows must be >= 1 (got %d)", c.Flows)
	}
	if c.Paths < 1 || c.Paths > c.Flows {
		fail("-ipfix-paths must be in [1, flows] (got %d with %d flows)", c.Paths, c.Flows)
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		fail("-ipfix-loss must be in [0, 1) (got %v)", c.LossRate)
	}
	switch mode {
	case "ipfix":
		if c.Addr == "" {
			fail("-ipfix-addr must not be empty")
		}
		if c.DurationS <= 0 {
			fail("-duration must be > 0 (got %vs)", c.DurationS)
		}
		if c.RatePerSec < 0 {
			fail("-ipfix-rate must be >= 0 (got %v)", c.RatePerSec)
		}
	case "ipfixbench":
		if c.Reps < 1 {
			fail("-bench-reps must be >= 1 (got %d)", c.Reps)
		}
	}
	return errs
}

// runIPFIXMode validates, runs the chosen IPFIX mode, and writes its
// JSON result — the IPFIX twin of main's wire-mode tail.
func runIPFIXMode(mode string, cfg ipfixConfig, out string, logger *tlog.Logger) {
	if errs := cfg.validate(mode); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "phi-load:", e)
		}
		os.Exit(2)
	}
	var (
		res any
		err error
	)
	switch mode {
	case "ipfix":
		cfg.Reps = 0 // bench-only knob, keep the echoed config honest
		res, err = runIPFIXFlood(cfg, logger)
	case "ipfixbench":
		cfg.Addr, cfg.RatePerSec, cfg.DurationS = "", 0, 0 // flood-only knobs
		res, err = runIngestBench(cfg, logger)
	}
	if err != nil {
		logger.Fatal("ipfix run", "mode", mode, "err", err)
	}
	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		logger.Fatal("encode result", "err", err)
	}
	enc = append(enc, '\n')
	if out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		logger.Fatal("write result", "err", err)
	}
	logger.Info("run complete", "mode", mode, "out", out)
}

// ipfixFloodResult summarizes one UDP flood run.
type ipfixFloodResult struct {
	Tool          string      `json:"tool"`
	Mode          string      `json:"mode"`
	Config        ipfixConfig `json:"config"`
	StartedAt     string      `json:"started_at"`
	MeasuredS     float64     `json:"measured_s"`
	Messages      uint64      `json:"messages"`
	Records       uint64      `json:"records"`
	Retransmits   uint64      `json:"retransmits"`
	RecordsPerSec float64     `json:"records_per_sec"`
}

// runIPFIXFlood streams synthetic export datagrams at the collector for
// -duration. Generation is sliced 100 virtual milliseconds at a time so
// pacing reacts quickly; unpaced (-ipfix-rate 0) it pushes as fast as
// the socket accepts, which on loopback comfortably exceeds millions of
// records per minute.
func runIPFIXFlood(cfg ipfixConfig, logger *tlog.Logger) (*ipfixFloodResult, error) {
	exp, err := ipfix.NewExporter(cfg.Addr, uint32(cfg.Seed)+1)
	if err != nil {
		return nil, err
	}
	defer exp.Close()

	stream := synth.NewStream(synth.StreamConfig{
		Flows: cfg.Flows, Paths: cfg.Paths, LossRate: cfg.LossRate, Seed: cfg.Seed,
	})
	enc := ipfix.NewEncoder(uint32(cfg.Seed) + 1)
	logger.Info("ipfix flood starting", "addr", cfg.Addr,
		"flows", cfg.Flows, "paths", cfg.Paths, "rate", cfg.RatePerSec)

	const stepMillis = 100
	start := time.Now()
	deadline := start.Add(time.Duration(cfg.DurationS * float64(time.Second)))
	var messages, sent uint64
	for time.Now().Before(deadline) {
		batch, err := stream.Messages(enc, stepMillis, 400)
		if err != nil {
			return nil, err
		}
		// Pace per message, not per generation slice: smoothing the burst
		// keeps a paced run inside the collector's socket buffer.
		perMsgRecords := float64(stream.Emitted-sent) / float64(len(batch))
		for i, m := range batch {
			if err := exp.WriteMessage(m); err != nil {
				return nil, err
			}
			messages++
			if cfg.RatePerSec > 0 {
				soFar := float64(sent) + float64(i+1)*perMsgRecords
				if ahead := soFar/cfg.RatePerSec - time.Since(start).Seconds(); ahead > 0 {
					time.Sleep(time.Duration(ahead * float64(time.Second)))
				}
			}
		}
		sent = stream.Emitted
	}
	measured := time.Since(start)
	return &ipfixFloodResult{
		Tool:          "phi-load",
		Mode:          "ipfix",
		Config:        cfg,
		StartedAt:     start.UTC().Format(time.RFC3339),
		MeasuredS:     measured.Seconds(),
		Messages:      messages,
		Records:       stream.Emitted,
		Retransmits:   stream.Retransmits,
		RecordsPerSec: float64(stream.Emitted) / measured.Seconds(),
	}, nil
}

// ingestBenchResult is BENCH_ingest.json.
type ingestBenchResult struct {
	Tool           string            `json:"tool"`
	Benchmark      string            `json:"benchmark"`
	GoVersion      string            `json:"go_version"`
	Config         ipfixConfig       `json:"config"`
	CorpusMessages int               `json:"corpus_messages"`
	CorpusRecords  int               `json:"corpus_records"`
	Sync           ingestSyncArm     `json:"sync"`
	Overload       ingestOverloadArm `json:"overload_2x"`
}

// ingestSyncArm pins the deterministic single-goroutine capacity: every
// record decoded, tracked, and reported inline, best of Reps.
type ingestSyncArm struct {
	Reps            int     `json:"reps"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	NsPerRecord     float64 `json:"ns_per_record"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
	Reports         uint64  `json:"reports"`
}

// ingestOverloadArm pins the bounded-queue shed behavior at 2x the sync
// arm's measured capacity: drops must be nonzero and counted, the
// pipeline must keep delivering the remainder.
type ingestOverloadArm struct {
	TargetRecordsPerSec  float64 `json:"target_records_per_sec"`
	OfferedRecords       uint64  `json:"offered_records"`
	OfferedRecordsPerSec float64 `json:"offered_records_per_sec"`
	DecodedRecords       uint64  `json:"decoded_records"`
	TrackedRecords       uint64  `json:"tracked_records"`
	DroppedDatagrams     uint64  `json:"dropped_datagrams"`
	DroppedRecords       uint64  `json:"dropped_records"`
	ShedFraction         float64 `json:"shed_fraction"`
	Reports              uint64  `json:"reports"`
}

// runIngestBench measures the pipeline in-process. One unmeasured
// warmup rep, then best-of-Reps on the synchronous arm (fresh server
// and pipeline each rep so reps are independent), then a single
// overload pass offering 2x the best sync rate through the
// asynchronous queues for one wall second.
func runIngestBench(cfg ipfixConfig, logger *tlog.Logger) (*ingestBenchResult, error) {
	// Pre-encode the corpus (2000 virtual ms of traffic) so the arms
	// measure the pipeline, not the generator, and count records per
	// message with a throwaway decoder for exact offered-load accounting.
	stream := synth.NewStream(synth.StreamConfig{
		Flows: cfg.Flows, Paths: cfg.Paths, LossRate: cfg.LossRate, Seed: cfg.Seed,
	})
	enc := ipfix.NewEncoder(1)
	msgs, err := stream.Messages(enc, 2000, 400)
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(msgs))
	corpusRecords := 0
	{
		dec := ipfix.NewDecoder()
		for i, m := range msgs {
			recs, err := dec.Decode(m)
			if err != nil {
				return nil, fmt.Errorf("corpus decode: %w", err)
			}
			counts[i] = len(recs)
			corpusRecords += len(recs)
		}
	}
	logger.Info("ingest bench corpus ready",
		"messages", len(msgs), "records", corpusRecords)

	syncRep := func() (elapsed time.Duration, allocs, bytes uint64, reports uint64, err error) {
		var now sim.Time
		server := phi.NewServer(func() sim.Time { return now }, phi.ServerConfig{})
		p, err := ingest.New(ingest.Config{Sink: server, Synchronous: true})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for _, m := range msgs {
			p.Datagram("bench", m)
		}
		p.FlushAll()
		elapsed = time.Since(t0)
		runtime.ReadMemStats(&m1)
		return elapsed, m1.Mallocs - m0.Mallocs, m1.TotalAlloc - m0.TotalAlloc,
			p.Snapshot().Reports, nil
	}

	if _, _, _, _, err := syncRep(); err != nil { // warmup, unmeasured
		return nil, err
	}
	var sync ingestSyncArm
	sync.Reps = cfg.Reps
	best := time.Duration(0)
	for rep := 0; rep < cfg.Reps; rep++ {
		elapsed, allocs, bytes, reports, err := syncRep()
		if err != nil {
			return nil, err
		}
		if best == 0 || elapsed < best {
			best = elapsed
			n := float64(corpusRecords)
			sync.RecordsPerSec = n / elapsed.Seconds()
			sync.NsPerRecord = float64(elapsed.Nanoseconds()) / n
			sync.AllocsPerRecord = float64(allocs) / n
			sync.BytesPerRecord = float64(bytes) / n
			sync.Reports = reports
		}
	}
	logger.Info("sync arm done",
		"records_per_sec", fmt.Sprintf("%.0f", sync.RecordsPerSec),
		"allocs_per_record", fmt.Sprintf("%.2f", sync.AllocsPerRecord))

	// Overload arm: offer the corpus in a loop at 2x the sync capacity
	// for one second. The bounded queues must shed — counted, never
	// unbounded — while the pipeline keeps absorbing what fits.
	target := 2 * sync.RecordsPerSec
	var now sim.Time
	server := phi.NewServer(func() sim.Time { return now }, phi.ServerConfig{})
	p, err := ingest.New(ingest.Config{Sink: server})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var offered uint64
	for i := 0; time.Since(start) < time.Second; i++ {
		j := i % len(msgs)
		p.Datagram("bench", msgs[j])
		offered += uint64(counts[j])
		if ahead := float64(offered)/target - time.Since(start).Seconds(); ahead > 0 {
			time.Sleep(time.Duration(ahead * float64(time.Second)))
		}
	}
	wall := time.Since(start)
	p.Stop()
	s := p.Snapshot()
	tracked := s.Records - s.DroppedTrack
	over := ingestOverloadArm{
		TargetRecordsPerSec:  target,
		OfferedRecords:       offered,
		OfferedRecordsPerSec: float64(offered) / wall.Seconds(),
		DecodedRecords:       s.Records,
		TrackedRecords:       tracked,
		DroppedDatagrams:     s.DroppedDecode,
		DroppedRecords:       s.DroppedTrack,
		ShedFraction:         1 - float64(tracked)/float64(offered),
		Reports:              s.Reports,
	}
	logger.Info("overload arm done",
		"offered_per_sec", fmt.Sprintf("%.0f", over.OfferedRecordsPerSec),
		"shed_fraction", fmt.Sprintf("%.3f", over.ShedFraction),
		"dropped_datagrams", over.DroppedDatagrams)

	return &ingestBenchResult{
		Tool:           "phi-load",
		Benchmark:      "ingest",
		GoVersion:      runtime.Version(),
		Config:         cfg,
		CorpusMessages: len(msgs),
		CorpusRecords:  corpusRecords,
		Sync:           sync,
		Overload:       over,
	}, nil
}
