package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Chaos mode: while the normal load runs, kill fleet primaries through
// the server's /debug/fleet endpoint on a schedule and measure how long
// the remediation controller takes to return each member to healthy.
// The run FAILS (exit 1) if any lifecycle was lost (transport or degrade
// error), if any remediation exceeded -chaos-bound, or if the schedule
// could not complete — the executable assertion behind the fleet's
// "zero lost lifecycles, bounded time-to-remediate" claim.

// fleetMemberView decodes the per-member slice of /debug/fleet we need.
type fleetMemberView struct {
	Index       int    `json:"index"`
	PrimaryUp   bool   `json:"primary_up"`
	BackupUp    bool   `json:"backup_up"`
	BackupLive  bool   `json:"backup_live"`
	Class       string `json:"class"`
	BreakerOpen bool   `json:"breaker_open"`
}

// fleetStatusView is the subset of the /debug/fleet document we decode.
type fleetStatusView struct {
	Members []fleetMemberView `json:"members"`
}

// chaosKill is one scheduled fault and its measured remediation.
type chaosKill struct {
	Shard int `json:"shard"`
	// RemediateS is kill -> member healthy again (controller-driven:
	// promote + resync + breaker reset), as observed by polling.
	RemediateS float64 `json:"remediate_s"`
	Bounded    bool    `json:"bounded"`
}

// chaosResult is the JSON block summarizing the chaos schedule.
type chaosResult struct {
	URL       string      `json:"url"`
	Shards    int         `json:"shards"`
	BoundS    float64     `json:"bound_s"`
	Kills     []chaosKill `json:"kills"`
	Planned   int         `json:"planned_kills"`
	Completed int         `json:"completed_kills"`
	// Passed is the schedule-level verdict: every planned kill executed
	// and remediated inside the bound. (Lost lifecycles are judged in
	// main against the load counters.)
	Passed bool   `json:"passed"`
	Error  string `json:"error,omitempty"`
}

// chaosCtl drives the kill schedule against a /debug/fleet endpoint.
type chaosCtl struct {
	url    string // full /debug/fleet URL
	firstS float64
	everyS float64
	kills  int
	boundS float64

	mu  sync.Mutex
	res chaosResult
}

func newChaosCtl(cfg runConfig) *chaosCtl {
	return &chaosCtl{
		url:    cfg.ChaosURL,
		firstS: cfg.ChaosFirstS,
		everyS: cfg.ChaosEveryS,
		kills:  cfg.ChaosKills,
		boundS: cfg.ChaosBoundS,
		res: chaosResult{
			URL:     cfg.ChaosURL,
			BoundS:  cfg.ChaosBoundS,
			Planned: cfg.ChaosKills,
		},
	}
}

// fetch GETs the fleet status (optionally with an op query).
func (c *chaosCtl) fetch(query string) (*fleetStatusView, error) {
	resp, err := http.Get(c.url + query)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s%s: HTTP %d", c.url, query, resp.StatusCode)
	}
	var st fleetStatusView
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// healthy reports whether member i is fully converged.
func (c *chaosCtl) healthy(i int) bool {
	st, err := c.fetch("")
	if err != nil || i >= len(st.Members) {
		return false
	}
	m := st.Members[i]
	return m.PrimaryUp && m.BackupUp && m.BackupLive && m.Class == "healthy" && !m.BreakerOpen
}

// waitHealthy polls member i until it converges or the deadline passes,
// returning how long it took.
func (c *chaosCtl) waitHealthy(i int, bound time.Duration, stop <-chan struct{}) (time.Duration, bool) {
	start := time.Now()
	for time.Since(start) < bound {
		if c.healthy(i) {
			return time.Since(start), true
		}
		select {
		case <-stop:
			return time.Since(start), false
		case <-time.After(50 * time.Millisecond):
		}
	}
	return time.Since(start), false
}

// fail records a schedule-level failure.
func (c *chaosCtl) fail(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.res.Error == "" {
		c.res.Error = fmt.Sprintf(format, args...)
	}
}

// start launches the kill schedule.
func (c *chaosCtl) start(stop <-chan struct{}, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-stop:
			return
		case <-time.After(time.Duration(c.firstS * float64(time.Second))):
		}

		st, err := c.fetch("")
		if err != nil {
			c.fail("discover fleet: %v", err)
			return
		}
		if len(st.Members) == 0 {
			c.fail("%s reports no members — is the server running with -fleet?", c.url)
			return
		}
		c.mu.Lock()
		c.res.Shards = len(st.Members)
		c.mu.Unlock()

		bound := time.Duration(c.boundS * float64(time.Second))
		for k := 0; k < c.kills; k++ {
			victim := k % len(st.Members)

			// One fault at a time: only kill a converged member, so each
			// measurement isolates one remediation cycle.
			if _, ok := c.waitHealthy(victim, bound, stop); !ok {
				c.fail("member %d did not converge before kill %d", victim, k)
				return
			}
			if _, err := c.fetch(fmt.Sprintf("?op=kill&shard=%d", victim)); err != nil {
				c.fail("kill %d (shard %d): %v", k, victim, err)
				return
			}
			took, ok := c.waitHealthy(victim, bound, stop)
			c.mu.Lock()
			c.res.Kills = append(c.res.Kills, chaosKill{
				Shard: victim, RemediateS: took.Seconds(), Bounded: ok,
			})
			c.res.Completed++
			c.mu.Unlock()
			if !ok {
				c.fail("member %d not remediated within %.1fs after kill %d", victim, c.boundS, k)
				return
			}

			select {
			case <-stop:
				return
			case <-time.After(time.Duration(c.everyS * float64(time.Second))):
			}
		}
	}()
}

// summary finalizes the verdict once the run is over.
func (c *chaosCtl) summary() *chaosResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.res.Passed = c.res.Error == "" && c.res.Completed == c.res.Planned
	for _, k := range c.res.Kills {
		if !k.Bounded {
			c.res.Passed = false
		}
	}
	r := c.res
	return &r
}
