package main

import (
	"strings"
	"testing"
)

// base returns a config that validates cleanly in closed mode.
func base() runConfig {
	return runConfig{
		Addr: "127.0.0.1:7731", Mode: "closed", Workers: 8,
		RatePerSec: 1000, Conns: 16, MaxInflight: 256,
		DurationS: 5, WarmupS: 1, Paths: 16, Skew: "uniform",
		ZipfS: 1.2, MeanBytes: 1 << 20, TimeoutS: 2, Seed: 1,
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if errs := base().validate(); len(errs) != 0 {
		t.Fatalf("clean config rejected: %v", errs)
	}
	open := base()
	open.Mode = "open"
	if errs := open.validate(); len(errs) != 0 {
		t.Fatalf("clean open config rejected: %v", errs)
	}
	zipf := base()
	zipf.Skew = "zipf"
	if errs := zipf.validate(); len(errs) != 0 {
		t.Fatalf("clean zipf config rejected: %v", errs)
	}
}

func TestValidateRejectsBadKnobs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*runConfig)
		want string // substring of the expected complaint
	}{
		{"empty addr", func(c *runConfig) { c.Addr = "" }, "-addr"},
		{"bad mode", func(c *runConfig) { c.Mode = "bursty" }, "-mode"},
		{"zero workers", func(c *runConfig) { c.Workers = 0 }, "-workers"},
		{"negative workers", func(c *runConfig) { c.Workers = -3 }, "-workers"},
		{"negative rate", func(c *runConfig) { c.Mode = "open"; c.RatePerSec = -5 }, "-rate"},
		{"zero rate", func(c *runConfig) { c.Mode = "open"; c.RatePerSec = 0 }, "-rate"},
		{"zero conns", func(c *runConfig) { c.Mode = "open"; c.Conns = 0 }, "-conns"},
		{"zero inflight", func(c *runConfig) { c.Mode = "open"; c.MaxInflight = 0 }, "-max-inflight"},
		{"zero duration", func(c *runConfig) { c.DurationS = 0 }, "-duration"},
		{"negative warmup", func(c *runConfig) { c.WarmupS = -1 }, "-warmup"},
		{"zero paths", func(c *runConfig) { c.Paths = 0 }, "-paths"},
		{"bad skew", func(c *runConfig) { c.Skew = "pareto" }, "-skew"},
		{"zipf exponent at 1", func(c *runConfig) { c.Skew = "zipf"; c.ZipfS = 1 }, "-zipf-s"},
		{"zipf exponent below 1", func(c *runConfig) { c.Skew = "zipf"; c.ZipfS = 0.5 }, "-zipf-s"},
		{"zipf one path", func(c *runConfig) { c.Skew = "zipf"; c.Paths = 1 }, "-paths >= 2"},
		{"zero mean bytes", func(c *runConfig) { c.MeanBytes = 0 }, "-mean-bytes"},
		{"negative timeout", func(c *runConfig) { c.TimeoutS = -2 }, "-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			errs := cfg.validate()
			if len(errs) == 0 {
				t.Fatalf("config accepted: %+v", cfg)
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no complaint mentioning %q in %v", tc.want, errs)
			}
		})
	}
}

func TestValidateReportsAllProblemsAtOnce(t *testing.T) {
	cfg := base()
	cfg.Mode = "open"
	cfg.RatePerSec = -1
	cfg.Conns = 0
	cfg.Paths = 0
	errs := cfg.validate()
	if len(errs) < 3 {
		t.Fatalf("want >= 3 accumulated errors, got %v", errs)
	}
}

func TestValidateModeScoping(t *testing.T) {
	// Open-loop knobs must not be checked in closed mode and vice versa.
	cfg := base()
	cfg.RatePerSec = -1 // irrelevant in closed mode
	cfg.Conns = 0
	cfg.MaxInflight = 0
	if errs := cfg.validate(); len(errs) != 0 {
		t.Fatalf("closed mode rejected open-loop knobs: %v", errs)
	}
	open := base()
	open.Mode = "open"
	open.Workers = 0 // irrelevant in open mode
	if errs := open.validate(); len(errs) != 0 {
		t.Fatalf("open mode rejected closed-loop knobs: %v", errs)
	}
}
