package main

import (
	"fmt"
	"strings"
	"testing"
)

// base returns a config that validates cleanly in closed mode.
func base() runConfig {
	return runConfig{
		Addr: "127.0.0.1:7731", Mode: "closed", Workers: 8,
		RatePerSec: 1000, Conns: 16, MaxInflight: 256,
		DurationS: 5, WarmupS: 1, Paths: 16, Skew: "uniform",
		ZipfS: 1.2, MeanBytes: 1 << 20, TimeoutS: 2, Seed: 1,
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if errs := base().validate(); len(errs) != 0 {
		t.Fatalf("clean config rejected: %v", errs)
	}
	open := base()
	open.Mode = "open"
	if errs := open.validate(); len(errs) != 0 {
		t.Fatalf("clean open config rejected: %v", errs)
	}
	zipf := base()
	zipf.Skew = "zipf"
	if errs := zipf.validate(); len(errs) != 0 {
		t.Fatalf("clean zipf config rejected: %v", errs)
	}
}

func TestValidateRejectsBadKnobs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*runConfig)
		want string // substring of the expected complaint
	}{
		{"empty addr", func(c *runConfig) { c.Addr = "" }, "-addr"},
		{"bad mode", func(c *runConfig) { c.Mode = "bursty" }, "-mode"},
		{"zero workers", func(c *runConfig) { c.Workers = 0 }, "-workers"},
		{"negative workers", func(c *runConfig) { c.Workers = -3 }, "-workers"},
		{"negative rate", func(c *runConfig) { c.Mode = "open"; c.RatePerSec = -5 }, "-rate"},
		{"zero rate", func(c *runConfig) { c.Mode = "open"; c.RatePerSec = 0 }, "-rate"},
		{"zero conns", func(c *runConfig) { c.Mode = "open"; c.Conns = 0 }, "-conns"},
		{"zero inflight", func(c *runConfig) { c.Mode = "open"; c.MaxInflight = 0 }, "-max-inflight"},
		{"zero duration", func(c *runConfig) { c.DurationS = 0 }, "-duration"},
		{"negative warmup", func(c *runConfig) { c.WarmupS = -1 }, "-warmup"},
		{"zero paths", func(c *runConfig) { c.Paths = 0 }, "-paths"},
		{"bad skew", func(c *runConfig) { c.Skew = "pareto" }, "-skew"},
		{"zipf exponent at 1", func(c *runConfig) { c.Skew = "zipf"; c.ZipfS = 1 }, "-zipf-s"},
		{"zipf exponent below 1", func(c *runConfig) { c.Skew = "zipf"; c.ZipfS = 0.5 }, "-zipf-s"},
		{"zipf one path", func(c *runConfig) { c.Skew = "zipf"; c.Paths = 1 }, "-paths >= 2"},
		{"zero mean bytes", func(c *runConfig) { c.MeanBytes = 0 }, "-mean-bytes"},
		{"negative timeout", func(c *runConfig) { c.TimeoutS = -2 }, "-timeout"},
		{"grid too few dims", func(c *runConfig) { c.Grid = "4x4" }, "-grid"},
		{"grid bad dim", func(c *runConfig) { c.Grid = "1xtwox4" }, "-grid"},
		{"grid zero dim", func(c *runConfig) { c.Grid = "1x0x4" }, "-grid"},
		{"fault after negative", func(c *runConfig) { c.FaultMatch = "isp-1"; c.FaultAfterS = -1 }, "-fault-after"},
		{"fault for negative", func(c *runConfig) { c.FaultMatch = "isp-1"; c.FaultForS = -1 }, "-fault-for"},
		{"fault after past run end", func(c *runConfig) { c.FaultMatch = "isp-1"; c.FaultAfterS = 10 }, "past the end"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			errs := cfg.validate()
			if len(errs) == 0 {
				t.Fatalf("config accepted: %+v", cfg)
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no complaint mentioning %q in %v", tc.want, errs)
			}
		})
	}
}

func TestValidateReportsAllProblemsAtOnce(t *testing.T) {
	cfg := base()
	cfg.Mode = "open"
	cfg.RatePerSec = -1
	cfg.Conns = 0
	cfg.Paths = 0
	errs := cfg.validate()
	if len(errs) < 3 {
		t.Fatalf("want >= 3 accumulated errors, got %v", errs)
	}
}

func TestMakeKeysGrid(t *testing.T) {
	cfg := base()
	cfg.Paths = 8
	cfg.Grid = "1x2x2"
	keys := makeKeys(cfg, "path-")
	if len(keys) != 8 {
		t.Fatalf("want 8 keys, got %d", len(keys))
	}
	// Keys round-robin the 4 grid cells, so each isp-j/metro-k slice
	// gets exactly Paths/cells keys.
	slices := map[string]int{}
	for i, k := range keys {
		parts := strings.Split(string(k), "/")
		if len(parts) != 4 {
			t.Fatalf("key %q: want svc/isp/metro/p structure", k)
		}
		if want := fmt.Sprintf("p-%d", i); parts[3] != want {
			t.Fatalf("key %q: want leaf %q", k, want)
		}
		slices[parts[1]+"/"+parts[2]]++
	}
	if len(slices) != 4 {
		t.Fatalf("want 4 distinct isp/metro slices, got %v", slices)
	}
	for s, n := range slices {
		if n != 2 {
			t.Fatalf("slice %s has %d keys, want 2", s, n)
		}
	}
	// Without a grid, keys stay the flat prefix series.
	cfg.Grid = ""
	flat := makeKeys(cfg, "path-")
	if string(flat[3]) != "path-3" {
		t.Fatalf("flat key = %q, want path-3", flat[3])
	}
}

func TestFaultCtlDrop(t *testing.T) {
	var nilFault *faultCtl
	if nilFault.drop("svc-0/isp-1/metro-1/p-5") {
		t.Fatal("nil faultCtl dropped a path")
	}
	f := &faultCtl{match: "isp-1/metro-1"}
	if f.drop("svc-0/isp-1/metro-1/p-5") {
		t.Fatal("inactive fault dropped a path")
	}
	f.active.Store(true)
	if !f.drop("svc-0/isp-1/metro-1/p-5") {
		t.Fatal("active fault did not drop a matching path")
	}
	if f.drop("svc-0/isp-0/metro-1/p-2") {
		t.Fatal("active fault dropped a non-matching path")
	}
	if got := f.suppressed.Load(); got != 1 {
		t.Fatalf("suppressed count = %d, want 1", got)
	}
	f.active.Store(false)
	if f.drop("svc-0/isp-1/metro-1/p-5") {
		t.Fatal("cleared fault still dropping")
	}
}

func TestValidateModeScoping(t *testing.T) {
	// Open-loop knobs must not be checked in closed mode and vice versa.
	cfg := base()
	cfg.RatePerSec = -1 // irrelevant in closed mode
	cfg.Conns = 0
	cfg.MaxInflight = 0
	if errs := cfg.validate(); len(errs) != 0 {
		t.Fatalf("closed mode rejected open-loop knobs: %v", errs)
	}
	open := base()
	open.Mode = "open"
	open.Workers = 0 // irrelevant in open mode
	if errs := open.validate(); len(errs) != 0 {
		t.Fatalf("open mode rejected closed-loop knobs: %v", errs)
	}
}
