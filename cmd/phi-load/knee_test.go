package main

import "testing"

// feedCurve runs a whole synthetic rate→latency curve through a fresh
// detector and returns the verdict.
func feedCurve(cfg kneeConfig, points []kneePoint) kneeVerdict {
	det := newKneeDetector(cfg)
	for _, p := range points {
		if det.feed(p) {
			break
		}
	}
	return det.result()
}

func TestKneeCleanHockeyStick(t *testing.T) {
	// Flat 800us tails up to 16k/s, then the classic blowup.
	curve := []kneePoint{
		{Offered: 2000, Achieved: 2000, P99Us: 900},
		{Offered: 4000, Achieved: 4000, P99Us: 850},
		{Offered: 8000, Achieved: 7990, P99Us: 880},
		{Offered: 16000, Achieved: 15900, P99Us: 920},
		{Offered: 32000, Achieved: 30100, P99Us: 4500},  // 5x baseline
		{Offered: 64000, Achieved: 31000, P99Us: 90000}, // collapse
	}
	v := feedCurve(kneeConfig{}, curve)
	if !v.Found {
		t.Fatalf("no knee found on a clean hockey stick: %+v", v)
	}
	if v.KneeStep != 3 {
		t.Fatalf("knee at step %d, want 3 (the 16k/s step)", v.KneeStep)
	}
	if v.Rate != 15900 {
		t.Fatalf("knee rate %v, want the achieved rate at the knee step (15900)", v.Rate)
	}
	if v.DetectedStep != 5 {
		t.Fatalf("detected at step %d, want 5 (second offending step)", v.DetectedStep)
	}
	if v.Reason != "p99-ratio" {
		t.Fatalf("reason %q, want p99-ratio", v.Reason)
	}
	if v.BaselineP99Us != 850 {
		t.Fatalf("baseline %v, want the min good-step p99 (850)", v.BaselineP99Us)
	}
}

func TestKneeAchievedShortfall(t *testing.T) {
	// Latency stays polite (big timeouts would do this) but the server
	// simply stops completing the offered rate.
	curve := []kneePoint{
		{Offered: 1000, Achieved: 1000, P99Us: 500},
		{Offered: 2000, Achieved: 1990, P99Us: 520},
		{Offered: 4000, Achieved: 2100, P99Us: 800}, // 52% of offered
		{Offered: 8000, Achieved: 2100, P99Us: 900},
	}
	v := feedCurve(kneeConfig{}, curve)
	if !v.Found || v.Reason != "achieved-shortfall" {
		t.Fatalf("want achieved-shortfall knee, got %+v", v)
	}
	if v.KneeStep != 1 || v.Rate != 1990 {
		t.Fatalf("knee step %d rate %v, want step 1 at 1990/s", v.KneeStep, v.Rate)
	}
}

func TestKneeNoisyPlateauDoesNotFire(t *testing.T) {
	// One 4x latency spike (GC pause) in an otherwise flat plateau must
	// not be declared a knee: hysteresis requires Confirm consecutive
	// offending steps.
	curve := []kneePoint{
		{Offered: 1000, Achieved: 1000, P99Us: 700},
		{Offered: 2000, Achieved: 2000, P99Us: 650},
		{Offered: 3000, Achieved: 2990, P99Us: 2800}, // spike: offending
		{Offered: 4000, Achieved: 3980, P99Us: 720},  // back to flat
		{Offered: 5000, Achieved: 4990, P99Us: 700},
	}
	v := feedCurve(kneeConfig{}, curve)
	if v.Found {
		t.Fatalf("noisy plateau declared a knee: %+v", v)
	}
	if v.KneeStep != 4 {
		t.Fatalf("best sustained step %d, want the last clean one (4)", v.KneeStep)
	}
	if v.Rate != 4990 {
		t.Fatalf("best sustained rate %v, want 4990", v.Rate)
	}
}

func TestKneeMonotoneGentleRampNeverFires(t *testing.T) {
	// p99 creeps up 8% per step — 1.08^11 ≈ 2.3x over the whole ramp,
	// never past Ratio x the min baseline, always keeping up with
	// offered load. No knee exists; none may be found.
	curve := make([]kneePoint, 0, 12)
	p99, rate := 500.0, 1000.0
	for i := 0; i < 12; i++ {
		curve = append(curve, kneePoint{Offered: rate, Achieved: rate, P99Us: p99})
		p99 *= 1.08
		rate *= 1.3
	}
	v := feedCurve(kneeConfig{}, curve)
	if v.Found {
		t.Fatalf("monotone gentle ramp declared a knee: %+v", v)
	}
	if v.KneeStep != 11 {
		t.Fatalf("best sustained step %d, want the final step", v.KneeStep)
	}
}

// The baseline creep subtlety the gentle-ramp test depends on: the
// baseline is the MIN over good steps, so a slowly rising curve is
// judged against its flattest point, and a knee whose absolute latency
// would look "fine" is still caught relative to that.
func TestKneeBaselineIsMinOverGoodSteps(t *testing.T) {
	curve := []kneePoint{
		{Offered: 1000, Achieved: 1000, P99Us: 2000}, // cold caches
		{Offered: 2000, Achieved: 2000, P99Us: 400},  // warmed up: new baseline
		{Offered: 4000, Achieved: 4000, P99Us: 1500}, // 3.75x the min baseline
		{Offered: 8000, Achieved: 8000, P99Us: 1600},
	}
	v := feedCurve(kneeConfig{}, curve)
	if !v.Found {
		t.Fatal("knee relative to warmed-up baseline not found")
	}
	if v.BaselineP99Us != 400 {
		t.Fatalf("baseline %v, want the post-warmup min (400)", v.BaselineP99Us)
	}
	if v.KneeStep != 1 {
		t.Fatalf("knee step %d, want 1", v.KneeStep)
	}
}

func TestKneeNeverFiresWithoutAGoodStep(t *testing.T) {
	// Every step offending from the start (e.g. -sat-start already past
	// saturation): there is no sustainable point to report, so the
	// detector must not invent one.
	curve := []kneePoint{
		{Offered: 50000, Achieved: 9000, P99Us: 50000},
		{Offered: 75000, Achieved: 9100, P99Us: 60000},
		{Offered: 112500, Achieved: 9000, P99Us: 70000},
	}
	v := feedCurve(kneeConfig{}, curve)
	if v.Found {
		t.Fatalf("knee declared with no sustainable step: %+v", v)
	}
	if v.KneeStep != -1 {
		t.Fatalf("knee step %d, want -1 (no good step)", v.KneeStep)
	}
}

func TestKneeLatchesContextAttribution(t *testing.T) {
	// The verdict carries the knee STEP's context-quality attribution —
	// the last good step's coverage and accuracy, not the collapsing
	// values measured while the server was past the knee.
	curve := []kneePoint{
		{Offered: 1000, Achieved: 1000, P99Us: 500, CoverageFreshFrac: 0.99, RTTAbsErrP90: 2000},
		{Offered: 2000, Achieved: 2000, P99Us: 520, CoverageFreshFrac: 0.97, RTTAbsErrP90: 2100},
		{Offered: 4000, Achieved: 3900, P99Us: 9000, CoverageFreshFrac: 0.40, RTTAbsErrP90: 50000},
		{Offered: 8000, Achieved: 4000, P99Us: 30000, CoverageFreshFrac: 0.10, RTTAbsErrP90: 90000},
	}
	v := feedCurve(kneeConfig{}, curve)
	if !v.Found {
		t.Fatalf("no knee: %+v", v)
	}
	if v.CoverageFreshFrac != 0.97 || v.RTTAbsErrP90 != 2100 {
		t.Fatalf("verdict context = (%v, %v), want the knee step's (0.97, 2100)",
			v.CoverageFreshFrac, v.RTTAbsErrP90)
	}

	// The knee-less path latches from the last good step too.
	v = feedCurve(kneeConfig{}, curve[:2])
	if v.Found || v.CoverageFreshFrac != 0.97 || v.RTTAbsErrP90 != 2100 {
		t.Fatalf("no-knee verdict context = (%v, %v), want (0.97, 2100)",
			v.CoverageFreshFrac, v.RTTAbsErrP90)
	}
}

func TestKneeConfirmCountHonored(t *testing.T) {
	base := []kneePoint{
		{Offered: 1000, Achieved: 1000, P99Us: 500},
		{Offered: 2000, Achieved: 2000, P99Us: 500},
		{Offered: 4000, Achieved: 3990, P99Us: 5000},
		{Offered: 8000, Achieved: 7800, P99Us: 9000},
		{Offered: 16000, Achieved: 9000, P99Us: 20000},
	}
	if v := feedCurve(kneeConfig{Confirm: 1}, base); !v.Found || v.DetectedStep != 2 {
		t.Fatalf("Confirm=1: want detection at first offending step, got %+v", v)
	}
	if v := feedCurve(kneeConfig{Confirm: 3}, base); !v.Found || v.DetectedStep != 4 {
		t.Fatalf("Confirm=3: want detection at third consecutive offender, got %+v", v)
	}
}
