// Command phi-server runs a standalone Phi context server over TCP: the
// per-domain repository of shared network state of Section 2.2.2. Senders
// (via internal/phiwire.Client) look up the congestion context at
// connection start and report their experience at connection end.
//
// Usage:
//
//	phi-server -listen :7731 -path bottleneck=15000000 \
//	    -metrics-addr 127.0.0.1:7732
//
// With -metrics-addr set, the server exposes Prometheus-text-format
// telemetry (lookup/report counts and latency histograms, wire-level
// request counters, open connections) at /metrics on that address,
// plus /debug/traces (with -trace), /debug/stages (with -stages, the
// per-stage latency decomposition), /debug/exemplars, the standard
// pprof profiles under /debug/pprof/, /debug/resources (runtime sampler
// + wire-level syscall/byte attribution), /debug/prof/ring (a rolling
// on-disk CPU/heap profile ring; ?op=capture to trigger, and health
// anomalies capture automatically), /debug/context (context quality:
// per-source freshness, fresh/stale/fallback coverage, paired RTT/loss
// prediction accuracy, passive-vs-active drift), and a /debug/ index
// listing every mounted endpoint.
//
// With -ipfix-addr set, the server also runs the passive-ingest
// pipeline: IPFIX exports received on that UDP address are decoded,
// per-flow TCP state is reconstructed (RTT from sequence/ack matching,
// loss from retransmissions, throughput from octet deltas), and the
// inferred per-path context is folded into the same server the
// cooperative protocol fills — no sender cooperation required.
// Pipeline state is served at /debug/ingest on -metrics-addr.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/health"
	"repro/internal/ingest"
	"repro/internal/ipfix"
	"repro/internal/obs"
	"repro/internal/phi"
	"repro/internal/phiwire"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	tlog "repro/internal/trace/log"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7731", "listen address")
		window      = flag.Duration("window", 10*time.Second, "utilization estimation window")
		policyPath  = flag.String("policy", "", "publish this JSON policy file to clients (default: the built-in policy)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus metrics on this address (empty = telemetry off)")
		traceOn     = flag.Bool("trace", false, "record request traces (view at /debug/traces on -metrics-addr)")
		stagesOn    = flag.Bool("stages", false, "aggregate per-stage latency histograms from the span stream (view at /debug/stages on -metrics-addr; implies -trace)")
		healthOn    = flag.Bool("health", false, "run the live health monitor (view at /debug/health on -metrics-addr or -health-addr)")
		healthAddr  = flag.String("health-addr", "", "serve /debug/health on a dedicated address (implies -health)")
		healthWin   = flag.Duration("health-bucket", time.Second, "health monitor rollup bucket width")
		profRing    = flag.String("prof-ring-dir", "", "rolling CPU/heap profile ring directory (default: <tmp>/phi-server-profring; requires -metrics-addr)")
		ipfixAddr   = flag.String("ipfix-addr", "", "receive IPFIX exports on this UDP address and ingest passive context (empty = off)")
		ipfixSample = flag.Int("ipfix-sample", 1, "ipfix: exporter packet sampling rate (1-in-N)")
		ipfixWindow = flag.Duration("ipfix-window", 5*time.Second, "ipfix: per-path aggregation window (stream time)")
		passiveWt   = flag.Float64("passive-weight", 0, "weight of passive (IPFIX-inferred) reports relative to cooperative ones (0 = server default of 1)")
		maxPaths    = flag.Int("max-paths", 0, "bound the per-path state table, evicting idle paths (0 = unbounded)")
		freshTTL    = flag.Duration("fresh-ttl", 0, "age beyond which context evidence counts as stale at lookup (0 = the estimation window)")
		logLevel    = flag.String("log-level", "info", "minimum log level (debug|info|warn|error)")
		logJSON     = flag.Bool("log-json", false, "emit logs as JSON lines (default logfmt)")
		paths       pathFlags
	)
	flag.Var(&paths, "path", "register a path capacity as name=bitsPerSecond (repeatable)")
	flag.Parse()

	lvl, err := tlog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var lopts []tlog.Option
	if *logJSON {
		lopts = append(lopts, tlog.WithJSON())
	}
	logger := tlog.New(os.Stderr, lvl, lopts...).Component("phi-server")

	var reg *telemetry.Registry // nil keeps every hot path uninstrumented
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
	}
	if *stagesOn {
		*traceOn = true // stages aggregate the span stream
	}
	var tracer *trace.Tracer // nil likewise keeps tracing a no-op
	if *traceOn {
		tracer = trace.NewTracer(trace.Config{})
		if *stagesOn {
			tracer.Collector().AttachStages(trace.NewStageAggregator())
		}
	}
	var monitor *health.Monitor // nil likewise keeps health hooks no-ops
	if *healthOn || *healthAddr != "" {
		monitor = health.NewMonitor(health.Config{BucketDur: *healthWin})
		monitor.SetLogger(logger.Component("health"))
		monitor.SetTracer(tracer)
		monitor.SetMetrics(health.NewMetrics(reg))
		stop := monitor.Start()
		defer stop()
	}

	backend := phi.NewServer(
		func() sim.Time { return sim.Time(time.Now().UnixNano()) },
		phi.ServerConfig{
			Window:        sim.Time(window.Nanoseconds()),
			PassiveWeight: *passiveWt,
			MaxPaths:      *maxPaths,
			FreshTTL:      sim.Time(freshTTL.Nanoseconds()),
		},
	)
	backend.SetMetrics(phi.NewServerMetrics(reg, nil))
	backend.SetTracer(tracer)
	backend.SetHealth(monitor)
	// Context-quality layer: freshness, coverage, and predictive-accuracy
	// accounting on the lookup/report path, served at /debug/context.
	// Like the other observability layers it only runs instrumented.
	var qtrack *quality.Tracker
	if reg != nil {
		qtrack = quality.New(quality.Config{Registry: reg})
		backend.SetQuality(qtrack)
		qtrack.AddPathSource(backend.Freshness)
		monitor.SetQualitySource(qtrack.HealthCheck)
	}
	for _, p := range paths {
		backend.RegisterPath(phi.PathKey(p.name), p.capacity)
		logger.Info("registered path", "path", p.name, "capacity_bps", p.capacity)
	}

	// Passive ingest: an IPFIX collector feeding the same backend the
	// cooperative wire protocol reports into.
	var (
		ingestPipe *ingest.Pipeline
		ingestCol  *ipfix.Collector
	)
	if *ipfixAddr != "" {
		p, err := ingest.New(ingest.Config{
			Sink:         backend,
			SampleN:      *ipfixSample,
			WindowMillis: uint64(ipfixWindow.Milliseconds()),
			Metrics:      ingest.NewMetrics(reg, nil),
		})
		if err != nil {
			logger.Fatal("ipfix ingest", "err", err)
		}
		col, err := ipfix.NewRawCollector(*ipfixAddr, p.Datagram)
		if err != nil {
			logger.Fatal("ipfix collector", "addr", *ipfixAddr, "err", err)
		}
		ingestPipe, ingestCol = p, col
		// Close the socket before stopping the pipeline: Datagram must
		// not be called after Stop.
		defer func() {
			col.Close()
			p.Stop()
		}()
		logger.Info("ipfix ingest up", "addr", col.Addr(),
			"sample", *ipfixSample, "window", ipfixWindow.String())
	}

	srv := phiwire.NewServer(backend, logger.Component("phiwire").Printf)
	srv.SetMetrics(phiwire.NewServerMetrics(reg))
	srv.SetTracer(tracer)
	srv.SetHealth(monitor)
	if *metricsAddr != "" {
		// Resource observatory: wire-level syscall/byte attribution on the
		// serving path, a runtime sampler snapshotting it at
		// /debug/resources, and a rolling profile ring that health
		// anomalies trigger into.
		wire := obs.NewWireCounters()
		srv.SetWire(wire)
		sampler := obs.NewSampler(obs.SamplerConfig{Registry: reg})
		sampler.SetWire("server", wire)
		sampler.AddCollect(wire.Publish(reg, "phiwire_server_wire"))
		defer sampler.Start()()
		ringDir := *profRing
		if ringDir == "" {
			ringDir = filepath.Join(os.TempDir(), "phi-server-profring")
		}
		ring, err := obs.NewProfileRing(obs.RingConfig{Dir: ringDir, Logf: logger.Component("profring").Printf})
		if err != nil {
			logger.Fatal("profile ring", "dir", ringDir, "err", err)
		}
		monitor.SetProfileTrigger(ring.TriggerAsync)
		endpoints := []telemetry.Endpoint{
			{Path: "/debug/resources", Handler: sampler.Handler(),
				Desc: "runtime + wire resource attribution snapshot"},
			{Path: "/debug/prof/ring", Handler: ring.Handler(),
				Desc: "rolling CPU/heap profile ring (?op=capture to trigger)"},
			{Path: "/debug/traces", Handler: tracer.Collector().Handler(),
				Desc: "retained request traces: slowest, errors, sampled (-trace)"},
			{Path: "/debug/stages", Handler: tracer.Stages().Handler(),
				Desc: "per-stage latency decomposition of the serving path (-stages)"},
			{Path: "/debug/health", Handler: monitor.Handler(),
				Desc: "live health monitor: status, anomalies, localization (-health)"},
			{Path: "/debug/context", Handler: qtrack.Handler(),
				Desc: "context quality: freshness, coverage, predictive accuracy"},
		}
		if ingestPipe != nil {
			endpoints = append(endpoints,
				telemetry.Endpoint{Path: "/debug/ingest", Handler: ingest.Handler(ingestPipe, ingestCol),
					Desc: "passive IPFIX ingest: per-path reconstructed state (-ipfix-addr)"})
		}
		ms, err := telemetry.Serve(*metricsAddr, reg, endpoints...)
		if err != nil {
			logger.Fatal("metrics server", "err", err)
		}
		defer ms.Close()
		logger.Info("metrics server up", "addr", ms.Addr().String(), "tracing", *traceOn, "health", monitor != nil)
	}
	if *healthAddr != "" {
		hs, err := telemetry.Serve(*healthAddr, nil,
			telemetry.Endpoint{Path: "/debug/health", Handler: monitor.Handler()})
		if err != nil {
			logger.Fatal("health server", "err", err)
		}
		defer hs.Close()
		logger.Info("health server up", "addr", hs.Addr().String())
	}
	policy := phi.DefaultPolicy()
	if *policyPath != "" {
		f, err := os.Open(*policyPath)
		if err != nil {
			logger.Fatal("open policy", "path", *policyPath, "err", err)
		}
		policy, err = phi.LoadPolicy(f)
		f.Close()
		if err != nil {
			logger.Fatal("load policy", "path", *policyPath, "err", err)
		}
		logger.Info("publishing policy", "path", *policyPath, "rules", len(policy.Rules))
	} else {
		logger.Info("publishing the built-in policy", "rules", len(policy.Rules))
	}
	if err := srv.SetPolicy(policy); err != nil {
		logger.Fatal("publish policy", "err", err)
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *listen)
		errc <- srv.ListenAndServe(*listen)
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	select {
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
		srv.Close()
	case err := <-errc:
		logger.Fatal("serve", "err", err)
	}
	handled, rejected := srv.Stats()
	logger.Info("served", "requests", handled, "rejected", rejected)
}

// pathFlags collects repeated -path name=capacity flags.
type pathFlags []struct {
	name     string
	capacity int64
}

func (p *pathFlags) String() string {
	var parts []string
	for _, e := range *p {
		parts = append(parts, fmt.Sprintf("%s=%d", e.name, e.capacity))
	}
	return strings.Join(parts, ",")
}

func (p *pathFlags) Set(v string) error {
	name, capStr, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=bitsPerSecond, got %q", v)
	}
	c, err := strconv.ParseInt(capStr, 10, 64)
	if err != nil || c <= 0 {
		return fmt.Errorf("bad capacity in %q", v)
	}
	*p = append(*p, struct {
		name     string
		capacity int64
	}{name, c})
	return nil
}
