// Command phi-server runs a standalone Phi context server over TCP: the
// per-domain repository of shared network state of Section 2.2.2. Senders
// (via internal/phiwire.Client) look up the congestion context at
// connection start and report their experience at connection end.
//
// Usage:
//
//	phi-server -listen :7731 -path bottleneck=15000000 \
//	    -metrics-addr 127.0.0.1:7732
//
// With -metrics-addr set, the server exposes Prometheus-text-format
// telemetry (lookup/report counts and latency histograms, wire-level
// request counters, open connections) at /metrics on that address.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/phi"
	"repro/internal/phiwire"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7731", "listen address")
		window      = flag.Duration("window", 10*time.Second, "utilization estimation window")
		policyPath  = flag.String("policy", "", "publish this JSON policy file to clients (default: the built-in policy)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus metrics on this address (empty = telemetry off)")
		paths       pathFlags
	)
	flag.Var(&paths, "path", "register a path capacity as name=bitsPerSecond (repeatable)")
	flag.Parse()

	var reg *telemetry.Registry // nil keeps every hot path uninstrumented
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
	}

	backend := phi.NewServer(
		func() sim.Time { return sim.Time(time.Now().UnixNano()) },
		phi.ServerConfig{Window: sim.Time(window.Nanoseconds())},
	)
	backend.SetMetrics(phi.NewServerMetrics(reg, nil))
	for _, p := range paths {
		backend.RegisterPath(phi.PathKey(p.name), p.capacity)
		log.Printf("registered path %q at %d bit/s", p.name, p.capacity)
	}

	srv := phiwire.NewServer(backend, log.Printf)
	srv.SetMetrics(phiwire.NewServerMetrics(reg))
	if *metricsAddr != "" {
		ms, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		defer ms.Close()
		log.Printf("serving metrics on http://%s/metrics", ms.Addr())
	}
	policy := phi.DefaultPolicy()
	if *policyPath != "" {
		f, err := os.Open(*policyPath)
		if err != nil {
			log.Fatalf("policy: %v", err)
		}
		policy, err = phi.LoadPolicy(f)
		f.Close()
		if err != nil {
			log.Fatalf("policy: %v", err)
		}
		log.Printf("publishing policy from %s (%d rules)", *policyPath, len(policy.Rules))
	} else {
		log.Printf("publishing the built-in policy (%d rules)", len(policy.Rules))
	}
	if err := srv.SetPolicy(policy); err != nil {
		log.Fatalf("publish policy: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("phi context server listening on %s", *listen)
		errc <- srv.ListenAndServe(*listen)
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	select {
	case sig := <-sigc:
		log.Printf("received %v, shutting down", sig)
		srv.Close()
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	}
	handled, rejected := srv.Stats()
	log.Printf("served %d requests (%d rejected)", handled, rejected)
}

// pathFlags collects repeated -path name=capacity flags.
type pathFlags []struct {
	name     string
	capacity int64
}

func (p *pathFlags) String() string {
	var parts []string
	for _, e := range *p {
		parts = append(parts, fmt.Sprintf("%s=%d", e.name, e.capacity))
	}
	return strings.Join(parts, ",")
}

func (p *pathFlags) Set(v string) error {
	name, capStr, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=bitsPerSecond, got %q", v)
	}
	c, err := strconv.ParseInt(capStr, 10, 64)
	if err != nil || c <= 0 {
		return fmt.Errorf("bad capacity in %q", v)
	}
	*p = append(*p, struct {
		name     string
		capacity int64
	}{name, c})
	return nil
}
