// Command phi-cluster runs a sharded Phi context server: N phi.Server
// shards behind a consistent-hash ring, fronted by a failover-aware
// router, served over the phiwire protocol on one address. Each shard
// periodically snapshots its path state to disk and is rehydrated from
// its snapshot on startup, so a restart does not zero out the domain's
// u/q/n estimates.
//
// Usage:
//
//	phi-cluster -listen :7731 -shards 4 -snapshot-dir /var/lib/phi \
//	    -snapshot-interval 30s -path bottleneck=15000000
//
// Flags:
//
//	-listen addr              frontend listen address (default 127.0.0.1:7731)
//	-shards n                 shard count (default 4)
//	-vnodes n                 virtual nodes per shard on the ring (default 128)
//	-window d                 utilization estimation window (default 10s)
//	-timeout d                per-shard call timeout at the router (default 0:
//	                          in-process shards cannot hang, so no timeout)
//	-down-after n             consecutive failures before a shard is routed
//	                          around (default 3)
//	-cooldown d               how long a down shard is skipped before being
//	                          probed again (default 5s)
//	-replicate                mirror reports to each path's fallback shard so
//	                          failover lands on warm state (default true)
//	-fleet                    run in fleet mode: every shard becomes a
//	                          primary/backup pair kept in sync by report
//	                          mirroring and periodic snapshot transfer, and
//	                          an autonomous remediation controller promotes
//	                          backups over dead primaries, reseeds stale
//	                          backups, and restarts dead members — no
//	                          operator in the loop. Fleet state and chaos
//	                          ops at /debug/fleet (on -metrics-addr and
//	                          -fleet-addr)
//	-fleet-addr addr          also serve /debug/fleet on a dedicated
//	                          address (implies -fleet)
//	-fleet-poll d             remediation controller poll interval
//	                          (default 1s)
//	-fleet-sync d             periodic backup full-sync interval
//	                          (default 30s)
//	-snapshot-dir dir         snapshot directory; empty disables snapshots
//	-snapshot-interval d      time between snapshots (default 30s)
//	-path name=bitsPerSecond  register a path capacity (repeatable)
//	-policy file              publish this JSON policy (default: built-in)
//	-metrics-addr addr        serve Prometheus metrics at /metrics on this
//	                          address (empty = telemetry off). Covers the
//	                          frontend's routing counters, per-shard call
//	                          latency and breaker state, per-shard server
//	                          metrics, snapshot cycles, and the wire layer.
//	                          Also serves /debug/traces (with -trace),
//	                          /debug/exemplars, /debug/pprof/, and
//	                          /debug/shard?id=N&op=crash|restart|status
//	                          for fault injection.
//	-trace                    record request traces end to end (client
//	                          trace headers are joined; routing, retry,
//	                          failover, and degrade decisions land on
//	                          spans at /debug/traces)
//	-stages                   aggregate every span into per-stage latency
//	                          histograms (server decode/handle, frontend
//	                          routing, shard handle, response write) at
//	                          /debug/stages — "where did the microseconds
//	                          go", live, at any load level. Implies -trace
//	                          A /debug/ index on -metrics-addr lists every
//	                          mounted debug endpoint.
//	-health                   run the live health monitor: streaming
//	                          volume-dip detection and localization over
//	                          the serving path, surfaced at /debug/health
//	                          (JSON; ?format=text for a summary)
//	-health-addr addr         also serve /debug/health on a dedicated
//	                          address (implies -health)
//	-health-bucket d          health rollup bucket width (default 1s)
//	-prof-ring-dir dir        rolling CPU/heap profile ring directory
//	                          (default <tmp>/phi-cluster-profring). With
//	                          -metrics-addr the ring is browsable at
//	                          /debug/prof/ring, captures on demand
//	                          (?op=capture), and health anomalies trigger
//	                          captures automatically; /debug/resources
//	                          snapshots the runtime sampler and wire-level
//	                          syscall/byte attribution
//	-ipfix-addr addr          receive IPFIX exports on this UDP address and
//	                          fold passively reconstructed context (RTT,
//	                          loss, throughput per path) into the cluster
//	                          through the frontend, exactly as cooperative
//	                          reports arrive; state at /debug/ingest on
//	                          -metrics-addr (empty = off)
//	-ipfix-sample n           exporter packet sampling rate, 1-in-N (default 1)
//	-ipfix-window d           per-path aggregation window, stream time
//	                          (default 5s)
//	-passive-weight w         weight of passive reports relative to
//	                          cooperative ones (0 = server default of 1)
//	-max-paths n              bound each shard's per-path state table;
//	                          idle paths are evicted when it fills
//	                          (0 = unbounded)
//	-fresh-ttl d              evidence age beyond which a served lookup
//	                          counts as stale in /debug/context coverage
//	                          (default: the estimation window). The
//	                          context-quality layer — per-source freshness
//	                          histograms, fresh/stale/fallback coverage,
//	                          paired RTT/loss prediction accuracy, and
//	                          passive-vs-active drift — runs whenever
//	                          -metrics-addr is set and serves
//	                          /debug/context there
//	-log-level level          minimum log level: debug|info|warn|error
//	-log-json                 emit logs as JSON lines (default logfmt)
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/fleet"
	"repro/internal/health"
	"repro/internal/ingest"
	"repro/internal/ipfix"
	"repro/internal/obs"
	"repro/internal/phi"
	"repro/internal/phiwire"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	tlog "repro/internal/trace/log"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7731", "listen address")
		shards      = flag.Int("shards", 4, "shard count")
		vnodes      = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per shard")
		window      = flag.Duration("window", 10*time.Second, "utilization estimation window")
		timeout     = flag.Duration("timeout", 0, "per-shard call timeout (0 = none)")
		downAfter   = flag.Int("down-after", 3, "consecutive failures before a shard is routed around")
		cooldown    = flag.Duration("cooldown", 5*time.Second, "down-shard reprobe cooldown")
		replicate   = flag.Bool("replicate", true, "mirror reports to the fallback shard")
		fleetOn     = flag.Bool("fleet", false, "run replicated shards with the autonomous remediation controller")
		fleetAddr   = flag.String("fleet-addr", "", "serve /debug/fleet on a dedicated address (implies -fleet)")
		fleetPoll   = flag.Duration("fleet-poll", time.Second, "fleet: remediation controller poll interval")
		fleetSync   = flag.Duration("fleet-sync", 30*time.Second, "fleet: periodic backup full-sync interval")
		snapDir     = flag.String("snapshot-dir", "", "snapshot directory (empty = snapshots off)")
		snapEvery   = flag.Duration("snapshot-interval", 30*time.Second, "time between snapshots")
		policyPath  = flag.String("policy", "", "publish this JSON policy file to clients (default: the built-in policy)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus metrics on this address (empty = telemetry off)")
		traceOn     = flag.Bool("trace", false, "record request traces (view at /debug/traces on -metrics-addr)")
		stagesOn    = flag.Bool("stages", false, "aggregate per-stage latency histograms from the span stream (view at /debug/stages on -metrics-addr; implies -trace)")
		healthOn    = flag.Bool("health", false, "run the live health monitor (view at /debug/health on -metrics-addr or -health-addr)")
		healthAddr  = flag.String("health-addr", "", "serve /debug/health on a dedicated address (implies -health)")
		healthWin   = flag.Duration("health-bucket", time.Second, "health monitor rollup bucket width")
		profRing    = flag.String("prof-ring-dir", "", "rolling CPU/heap profile ring directory (default: <tmp>/phi-cluster-profring; requires -metrics-addr)")
		ipfixAddr   = flag.String("ipfix-addr", "", "receive IPFIX exports on this UDP address and ingest passive context (empty = off)")
		ipfixSample = flag.Int("ipfix-sample", 1, "ipfix: exporter packet sampling rate (1-in-N)")
		ipfixWindow = flag.Duration("ipfix-window", 5*time.Second, "ipfix: per-path aggregation window (stream time)")
		passiveWt   = flag.Float64("passive-weight", 0, "weight of passive (IPFIX-inferred) reports relative to cooperative ones (0 = server default of 1)")
		maxPaths    = flag.Int("max-paths", 0, "bound each shard's per-path state table, evicting idle paths (0 = unbounded)")
		freshTTL    = flag.Duration("fresh-ttl", 0, "age beyond which context evidence counts as stale at lookup (0 = the estimation window)")
		logLevel    = flag.String("log-level", "info", "minimum log level (debug|info|warn|error)")
		logJSON     = flag.Bool("log-json", false, "emit logs as JSON lines (default logfmt)")
		paths       pathFlags
	)
	flag.Var(&paths, "path", "register a path capacity as name=bitsPerSecond (repeatable)")
	flag.Parse()

	lvl, err := tlog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var lopts []tlog.Option
	if *logJSON {
		lopts = append(lopts, tlog.WithJSON())
	}
	logger := tlog.New(os.Stderr, lvl, lopts...).Component("phi-cluster")

	if *shards < 1 {
		logger.Fatal("-shards must be >= 1", "got", *shards)
	}
	if *fleetAddr != "" {
		*fleetOn = true
	}

	clock := func() sim.Time { return sim.Time(time.Now().UnixNano()) }
	serverCfg := phi.ServerConfig{
		Window:        sim.Time(window.Nanoseconds()),
		PassiveWeight: *passiveWt,
		MaxPaths:      *maxPaths,
		FreshTTL:      sim.Time(freshTTL.Nanoseconds()),
	}
	frontendCfg := cluster.FrontendConfig{
		Timeout:          *timeout,
		DownAfter:        *downAfter,
		Cooldown:         *cooldown,
		ReplicateReports: *replicate,
	}

	// Fleet mode wraps every shard in a primary/backup pair with the
	// remediation controller on top; plain mode is the bare cluster. Both
	// expose the same frontend, so everything downstream (wire server,
	// ingest, telemetry) is mode-agnostic.
	var (
		cl *cluster.Cluster
		fl *fleet.Fleet
		fe *cluster.Frontend
	)
	if *fleetOn {
		fl = fleet.New(fleet.Config{
			Shards:   *shards,
			VNodes:   *vnodes,
			Clock:    clock,
			Server:   serverCfg,
			Frontend: frontendCfg,
			Controller: fleet.ControllerConfig{
				Poll:        *fleetPoll,
				SyncEvery:   *fleetSync,
				SnapshotDir: *snapDir,
			},
		})
		fe = fl.Frontend
	} else {
		cl = cluster.New(cluster.Config{
			Shards:   *shards,
			VNodes:   *vnodes,
			Clock:    clock,
			Server:   serverCfg,
			Frontend: frontendCfg,
		})
		fe = cl.Frontend
	}

	var reg *telemetry.Registry // nil keeps every hot path uninstrumented
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		if fl != nil {
			fl.Instrument(reg)
		} else {
			cl.Instrument(reg)
		}
	}
	if *stagesOn {
		*traceOn = true // stages aggregate the span stream
	}
	var tracer *trace.Tracer // nil likewise keeps tracing a no-op
	if *traceOn {
		tracer = trace.NewTracer(trace.Config{})
		if fl != nil {
			fl.Trace(tracer)
		} else {
			cl.Trace(tracer)
		}
		if *stagesOn {
			tracer.Collector().AttachStages(trace.NewStageAggregator())
		}
	}
	// Context-quality layer: one process-wide tracker woven through every
	// shard's lookup/report path (and the frontend's degraded fallbacks),
	// so coverage and accuracy aggregate cluster-wide and survive crash,
	// restore, and promotion. Served at /debug/context; instrumented runs
	// only, like tracing and health.
	var qtrack *quality.Tracker
	if reg != nil {
		qtrack = quality.New(quality.Config{Registry: reg})
		if fl != nil {
			fl.Quality(qtrack)
		} else {
			cl.Quality(qtrack)
		}
	}
	var monitor *health.Monitor // nil likewise keeps health hooks no-ops
	if *healthOn || *healthAddr != "" || fl != nil {
		monitor = health.NewMonitor(health.Config{BucketDur: *healthWin, Shards: *shards})
		monitor.SetLogger(logger.Component("health"))
		monitor.SetTracer(tracer)
		monitor.SetMetrics(health.NewMetrics(reg))
		// Frontend feeds ops, shard calls, routing, breakers; in fleet
		// mode the controller also reads the monitor's global status.
		if fl != nil {
			fl.Health(monitor)
		} else {
			cl.Health(monitor)
		}
		if qtrack != nil {
			// Coverage collapse / accuracy blowout becomes a first-class
			// anomaly with full evidence retention.
			monitor.SetQualitySource(qtrack.HealthCheck)
		}
		stop := monitor.Start()
		defer stop()
	}

	stopSnapshots := func() {}
	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			logger.Fatal("snapshot dir", "err", err)
		}
		var restored int
		if fl != nil {
			restored, err = fl.LoadSnapshots(*snapDir)
		} else {
			restored, err = cl.LoadSnapshots(*snapDir)
		}
		if err != nil {
			logger.Fatal("restore snapshots", "err", err)
		}
		if restored > 0 {
			logger.Info("rehydrated shards from snapshots", "restored", restored, "shards", *shards, "dir", *snapDir)
		}
		if fl != nil {
			stopSnapshots = fl.StartSnapshotters(*snapDir, *snapEvery, logger.Component("snapshot").Printf)
		} else {
			stopSnapshots = cl.StartSnapshotters(*snapDir, *snapEvery, logger.Component("snapshot").Printf)
		}
		logger.Info("snapshotting", "interval", *snapEvery, "dir", *snapDir)
	}

	if fl != nil {
		fl.SetLogger(logger)
		stopFleet := fl.Start()
		defer stopFleet()
		logger.Info("fleet controller up", "poll", *fleetPoll, "sync", *fleetSync, "members", *shards)
	}

	for _, p := range paths {
		fe.RegisterPath(phi.PathKey(p.name), p.capacity)
		logger.Info("registered path", "path", p.name, "capacity_bps", p.capacity)
	}

	// Passive ingest: an IPFIX collector feeding reconstructed context
	// through the frontend, so passive reports shard, replicate, and
	// fail over exactly like cooperative ones.
	var (
		ingestPipe *ingest.Pipeline
		ingestCol  *ipfix.Collector
	)
	if *ipfixAddr != "" {
		p, err := ingest.New(ingest.Config{
			Sink:         fe,
			SampleN:      *ipfixSample,
			WindowMillis: uint64(ipfixWindow.Milliseconds()),
			Metrics:      ingest.NewMetrics(reg, nil),
		})
		if err != nil {
			logger.Fatal("ipfix ingest", "err", err)
		}
		col, err := ipfix.NewRawCollector(*ipfixAddr, p.Datagram)
		if err != nil {
			logger.Fatal("ipfix collector", "addr", *ipfixAddr, "err", err)
		}
		ingestPipe, ingestCol = p, col
		// Close the socket before stopping the pipeline: Datagram must
		// not be called after Stop.
		defer func() {
			col.Close()
			p.Stop()
		}()
		logger.Info("ipfix ingest up", "addr", col.Addr(),
			"sample", *ipfixSample, "window", ipfixWindow.String())
	}

	srv := phiwire.NewServer(fe, logger.Component("phiwire").Printf)
	srv.SetMetrics(phiwire.NewServerMetrics(reg))
	srv.SetTracer(tracer)
	srv.SetHealth(monitor)
	if *metricsAddr != "" {
		// Resource observatory: wire-level syscall/byte attribution on the
		// serving path, a runtime sampler snapshotting it at
		// /debug/resources, and a rolling profile ring that health
		// anomalies trigger into.
		wire := obs.NewWireCounters()
		srv.SetWire(wire)
		sampler := obs.NewSampler(obs.SamplerConfig{Registry: reg})
		sampler.SetWire("server", wire)
		sampler.AddCollect(wire.Publish(reg, "phiwire_server_wire"))
		defer sampler.Start()()
		ringDir := *profRing
		if ringDir == "" {
			ringDir = filepath.Join(os.TempDir(), "phi-cluster-profring")
		}
		ring, err := obs.NewProfileRing(obs.RingConfig{Dir: ringDir, Logf: logger.Component("profring").Printf})
		if err != nil {
			logger.Fatal("profile ring", "dir", ringDir, "err", err)
		}
		monitor.SetProfileTrigger(ring.TriggerAsync)
		endpoints := []telemetry.Endpoint{
			{Path: "/debug/resources", Handler: sampler.Handler(),
				Desc: "runtime + wire resource attribution snapshot"},
			{Path: "/debug/prof/ring", Handler: ring.Handler(),
				Desc: "rolling CPU/heap profile ring (?op=capture to trigger)"},
			{Path: "/debug/traces", Handler: tracer.Collector().Handler(),
				Desc: "retained request traces: slowest, errors, sampled (-trace)"},
			{Path: "/debug/stages", Handler: tracer.Stages().Handler(),
				Desc: "per-stage latency decomposition of the serving path (-stages)"},
			{Path: "/debug/shard", Handler: shardDebugHandler(cl, fl, logger),
				Desc: "shard fault injection: ?id=N&op=crash|restart|status"},
			{Path: "/debug/health", Handler: monitor.Handler(),
				Desc: "live health monitor: status, anomalies, localization (-health)"},
			{Path: "/debug/context", Handler: qtrack.Handler(),
				Desc: "context quality: freshness, coverage, predictive accuracy"},
		}
		if fl != nil {
			endpoints = append(endpoints,
				telemetry.Endpoint{Path: "/debug/fleet", Handler: fl.Handler(),
					Desc: "fleet members, remediation audit, chaos ops (-fleet)"})
		}
		if ingestPipe != nil {
			endpoints = append(endpoints,
				telemetry.Endpoint{Path: "/debug/ingest", Handler: ingest.Handler(ingestPipe, ingestCol),
					Desc: "passive IPFIX ingest: per-path reconstructed state (-ipfix-addr)"})
		}
		ms, err := telemetry.Serve(*metricsAddr, reg, endpoints...)
		if err != nil {
			logger.Fatal("metrics server", "err", err)
		}
		defer ms.Close()
		logger.Info("metrics server up", "addr", ms.Addr().String(), "tracing", *traceOn, "health", monitor != nil)
	}
	if *healthAddr != "" {
		hs, err := telemetry.Serve(*healthAddr, nil,
			telemetry.Endpoint{Path: "/debug/health", Handler: monitor.Handler()})
		if err != nil {
			logger.Fatal("health server", "err", err)
		}
		defer hs.Close()
		logger.Info("health server up", "addr", hs.Addr().String())
	}
	if *fleetAddr != "" {
		fs, err := telemetry.Serve(*fleetAddr, nil,
			telemetry.Endpoint{Path: "/debug/fleet", Handler: fl.Handler()})
		if err != nil {
			logger.Fatal("fleet server", "err", err)
		}
		defer fs.Close()
		logger.Info("fleet server up", "addr", fs.Addr().String())
	}
	policy := phi.DefaultPolicy()
	if *policyPath != "" {
		f, err := os.Open(*policyPath)
		if err != nil {
			logger.Fatal("open policy", "path", *policyPath, "err", err)
		}
		policy, err = phi.LoadPolicy(f)
		f.Close()
		if err != nil {
			logger.Fatal("load policy", "path", *policyPath, "err", err)
		}
		logger.Info("publishing policy", "path", *policyPath, "rules", len(policy.Rules))
	} else {
		logger.Info("publishing the built-in policy", "rules", len(policy.Rules))
	}
	if err := srv.SetPolicy(policy); err != nil {
		logger.Fatal("publish policy", "err", err)
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *listen, "shards", *shards, "vnodes", *vnodes)
		errc <- srv.ListenAndServe(*listen)
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	select {
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
		srv.Close()
	case err := <-errc:
		stopSnapshots()
		logger.Fatal("serve", "err", err)
	}
	stopSnapshots() // takes a final snapshot per shard
	handled, rejected := srv.Stats()
	fs := fe.Stats()
	logger.Info("served", "requests", handled, "rejected", rejected,
		"lookups", fs.Lookups, "reports", fs.Reports, "failovers", fs.Failovers, "degraded", fs.Degraded)
}

// shardDebugHandler serves /debug/shard?id=N&op=crash|restart|status —
// runtime fault injection for failover drills: crash a shard mid-load,
// watch traces at /debug/traces pick up retry/failover notes, restart
// it, watch the breaker close. In fleet mode the ops target the member's
// current primary (crash = KillPrimary, restart = RestartPrimary), so
// the same drill exercises the remediation controller instead of the
// bare breaker; richer fleet ops live at /debug/fleet.
func shardDebugHandler(cl *cluster.Cluster, fl *fleet.Fleet, logger *tlog.Logger) http.Handler {
	n := func() int {
		if fl != nil {
			return len(fl.Members)
		}
		return len(cl.Shards)
	}()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.URL.Query().Get("id"))
		if err != nil || id < 0 || id >= n {
			http.Error(w, fmt.Sprintf("bad shard id (want 0..%d)", n-1), http.StatusBadRequest)
			return
		}
		switch op := r.URL.Query().Get("op"); op {
		case "crash":
			if fl != nil {
				fl.Members[id].KillPrimary()
			} else {
				cl.Shards[id].Crash()
			}
			logger.Warn("shard crashed by debug request", "shard", id)
		case "restart":
			if fl != nil {
				if _, err := fl.Members[id].RestartPrimary(""); err != nil {
					logger.Warn("debug restart", "shard", id, "err", err)
				}
			} else {
				cl.Shards[id].Restart()
			}
			logger.Info("shard restarted by debug request", "shard", id)
		case "", "status":
		default:
			http.Error(w, "op must be crash, restart, or status", http.StatusBadRequest)
			return
		}
		down := false
		if fl != nil {
			down = fl.Members[id].Primary().Down()
		} else {
			down = cl.Shards[id].Down()
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"shard\":%d,\"down\":%v}\n", id, down)
	})
}

// pathFlags collects repeated -path name=capacity flags.
type pathFlags []struct {
	name     string
	capacity int64
}

func (p *pathFlags) String() string {
	var parts []string
	for _, e := range *p {
		parts = append(parts, fmt.Sprintf("%s=%d", e.name, e.capacity))
	}
	return strings.Join(parts, ",")
}

func (p *pathFlags) Set(v string) error {
	name, capStr, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=bitsPerSecond, got %q", v)
	}
	c, err := strconv.ParseInt(capStr, 10, 64)
	if err != nil || c <= 0 {
		return fmt.Errorf("bad capacity in %q", v)
	}
	*p = append(*p, struct {
		name     string
		capacity int64
	}{name, c})
	return nil
}
