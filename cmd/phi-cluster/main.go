// Command phi-cluster runs a sharded Phi context server: N phi.Server
// shards behind a consistent-hash ring, fronted by a failover-aware
// router, served over the phiwire protocol on one address. Each shard
// periodically snapshots its path state to disk and is rehydrated from
// its snapshot on startup, so a restart does not zero out the domain's
// u/q/n estimates.
//
// Usage:
//
//	phi-cluster -listen :7731 -shards 4 -snapshot-dir /var/lib/phi \
//	    -snapshot-interval 30s -path bottleneck=15000000
//
// Flags:
//
//	-listen addr              frontend listen address (default 127.0.0.1:7731)
//	-shards n                 shard count (default 4)
//	-vnodes n                 virtual nodes per shard on the ring (default 128)
//	-window d                 utilization estimation window (default 10s)
//	-timeout d                per-shard call timeout at the router (default 0:
//	                          in-process shards cannot hang, so no timeout)
//	-down-after n             consecutive failures before a shard is routed
//	                          around (default 3)
//	-cooldown d               how long a down shard is skipped before being
//	                          probed again (default 5s)
//	-replicate                mirror reports to each path's fallback shard so
//	                          failover lands on warm state (default true)
//	-snapshot-dir dir         snapshot directory; empty disables snapshots
//	-snapshot-interval d      time between snapshots (default 30s)
//	-path name=bitsPerSecond  register a path capacity (repeatable)
//	-policy file              publish this JSON policy (default: built-in)
//	-metrics-addr addr        serve Prometheus metrics at /metrics on this
//	                          address (empty = telemetry off). Covers the
//	                          frontend's routing counters, per-shard call
//	                          latency and breaker state, per-shard server
//	                          metrics, snapshot cycles, and the wire layer.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/phi"
	"repro/internal/phiwire"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7731", "listen address")
		shards      = flag.Int("shards", 4, "shard count")
		vnodes      = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per shard")
		window      = flag.Duration("window", 10*time.Second, "utilization estimation window")
		timeout     = flag.Duration("timeout", 0, "per-shard call timeout (0 = none)")
		downAfter   = flag.Int("down-after", 3, "consecutive failures before a shard is routed around")
		cooldown    = flag.Duration("cooldown", 5*time.Second, "down-shard reprobe cooldown")
		replicate   = flag.Bool("replicate", true, "mirror reports to the fallback shard")
		snapDir     = flag.String("snapshot-dir", "", "snapshot directory (empty = snapshots off)")
		snapEvery   = flag.Duration("snapshot-interval", 30*time.Second, "time between snapshots")
		policyPath  = flag.String("policy", "", "publish this JSON policy file to clients (default: the built-in policy)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus metrics on this address (empty = telemetry off)")
		paths       pathFlags
	)
	flag.Var(&paths, "path", "register a path capacity as name=bitsPerSecond (repeatable)")
	flag.Parse()
	if *shards < 1 {
		log.Fatalf("-shards must be >= 1 (got %d)", *shards)
	}

	cl := cluster.New(cluster.Config{
		Shards: *shards,
		VNodes: *vnodes,
		Clock:  func() sim.Time { return sim.Time(time.Now().UnixNano()) },
		Server: phi.ServerConfig{Window: sim.Time(window.Nanoseconds())},
		Frontend: cluster.FrontendConfig{
			Timeout:          *timeout,
			DownAfter:        *downAfter,
			Cooldown:         *cooldown,
			ReplicateReports: *replicate,
		},
	})

	var reg *telemetry.Registry // nil keeps every hot path uninstrumented
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		cl.Instrument(reg)
	}

	stopSnapshots := func() {}
	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			log.Fatalf("snapshot dir: %v", err)
		}
		restored, err := cl.LoadSnapshots(*snapDir)
		if err != nil {
			log.Fatalf("restore snapshots: %v", err)
		}
		if restored > 0 {
			log.Printf("rehydrated %d/%d shards from %s", restored, *shards, *snapDir)
		}
		stopSnapshots = cl.StartSnapshotters(*snapDir, *snapEvery, log.Printf)
		log.Printf("snapshotting every %v to %s", *snapEvery, *snapDir)
	}

	for _, p := range paths {
		cl.Frontend.RegisterPath(phi.PathKey(p.name), p.capacity)
		log.Printf("registered path %q at %d bit/s", p.name, p.capacity)
	}

	srv := phiwire.NewServer(cl.Frontend, log.Printf)
	srv.SetMetrics(phiwire.NewServerMetrics(reg))
	if *metricsAddr != "" {
		ms, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		defer ms.Close()
		log.Printf("serving metrics on http://%s/metrics", ms.Addr())
	}
	policy := phi.DefaultPolicy()
	if *policyPath != "" {
		f, err := os.Open(*policyPath)
		if err != nil {
			log.Fatalf("policy: %v", err)
		}
		policy, err = phi.LoadPolicy(f)
		f.Close()
		if err != nil {
			log.Fatalf("policy: %v", err)
		}
		log.Printf("publishing policy from %s (%d rules)", *policyPath, len(policy.Rules))
	} else {
		log.Printf("publishing the built-in policy (%d rules)", len(policy.Rules))
	}
	if err := srv.SetPolicy(policy); err != nil {
		log.Fatalf("publish policy: %v", err)
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("phi cluster listening on %s (%d shards, %d vnodes/shard)", *listen, *shards, *vnodes)
		errc <- srv.ListenAndServe(*listen)
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	select {
	case sig := <-sigc:
		log.Printf("received %v, shutting down", sig)
		srv.Close()
	case err := <-errc:
		stopSnapshots()
		log.Fatalf("serve: %v", err)
	}
	stopSnapshots() // takes a final snapshot per shard
	handled, rejected := srv.Stats()
	fs := cl.Frontend.Stats()
	log.Printf("served %d requests (%d rejected); routed %d lookups / %d reports, %d failovers, %d degraded",
		handled, rejected, fs.Lookups, fs.Reports, fs.Failovers, fs.Degraded)
}

// pathFlags collects repeated -path name=capacity flags.
type pathFlags []struct {
	name     string
	capacity int64
}

func (p *pathFlags) String() string {
	var parts []string
	for _, e := range *p {
		parts = append(parts, fmt.Sprintf("%s=%d", e.name, e.capacity))
	}
	return strings.Join(parts, ",")
}

func (p *pathFlags) Set(v string) error {
	name, capStr, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=bitsPerSecond, got %q", v)
	}
	c, err := strconv.ParseInt(capStr, 10, 64)
	if err != nil || c <= 0 {
		return fmt.Errorf("bad capacity in %q", v)
	}
	*p = append(*p, struct {
		name     string
		capacity int64
	}{name, c})
	return nil
}
