// Command phi-cluster runs a sharded Phi context server: N phi.Server
// shards behind a consistent-hash ring, fronted by a failover-aware
// router, served over the phiwire protocol on one address. Each shard
// periodically snapshots its path state to disk and is rehydrated from
// its snapshot on startup, so a restart does not zero out the domain's
// u/q/n estimates.
//
// Usage:
//
//	phi-cluster -listen :7731 -shards 4 -snapshot-dir /var/lib/phi \
//	    -snapshot-interval 30s -path bottleneck=15000000
//
// Flags:
//
//	-listen addr              frontend listen address (default 127.0.0.1:7731)
//	-shards n                 shard count (default 4)
//	-vnodes n                 virtual nodes per shard on the ring (default 128)
//	-window d                 utilization estimation window (default 10s)
//	-timeout d                per-shard call timeout at the router (default 0:
//	                          in-process shards cannot hang, so no timeout)
//	-down-after n             consecutive failures before a shard is routed
//	                          around (default 3)
//	-cooldown d               how long a down shard is skipped before being
//	                          probed again (default 5s)
//	-replicate                mirror reports to each path's fallback shard so
//	                          failover lands on warm state (default true)
//	-snapshot-dir dir         snapshot directory; empty disables snapshots
//	-snapshot-interval d      time between snapshots (default 30s)
//	-path name=bitsPerSecond  register a path capacity (repeatable)
//	-policy file              publish this JSON policy (default: built-in)
//	-metrics-addr addr        serve Prometheus metrics at /metrics on this
//	                          address (empty = telemetry off). Covers the
//	                          frontend's routing counters, per-shard call
//	                          latency and breaker state, per-shard server
//	                          metrics, snapshot cycles, and the wire layer.
//	                          Also serves /debug/traces (with -trace),
//	                          /debug/exemplars, /debug/pprof/, and
//	                          /debug/shard?id=N&op=crash|restart|status
//	                          for fault injection.
//	-trace                    record request traces end to end (client
//	                          trace headers are joined; routing, retry,
//	                          failover, and degrade decisions land on
//	                          spans at /debug/traces)
//	-health                   run the live health monitor: streaming
//	                          volume-dip detection and localization over
//	                          the serving path, surfaced at /debug/health
//	                          (JSON; ?format=text for a summary)
//	-health-addr addr         also serve /debug/health on a dedicated
//	                          address (implies -health)
//	-health-bucket d          health rollup bucket width (default 1s)
//	-ipfix-addr addr          receive IPFIX exports on this UDP address and
//	                          fold passively reconstructed context (RTT,
//	                          loss, throughput per path) into the cluster
//	                          through the frontend, exactly as cooperative
//	                          reports arrive; state at /debug/ingest on
//	                          -metrics-addr (empty = off)
//	-ipfix-sample n           exporter packet sampling rate, 1-in-N (default 1)
//	-ipfix-window d           per-path aggregation window, stream time
//	                          (default 5s)
//	-passive-weight w         weight of passive reports relative to
//	                          cooperative ones (0 = server default of 1)
//	-log-level level          minimum log level: debug|info|warn|error
//	-log-json                 emit logs as JSON lines (default logfmt)
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/health"
	"repro/internal/ingest"
	"repro/internal/ipfix"
	"repro/internal/phi"
	"repro/internal/phiwire"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	tlog "repro/internal/trace/log"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7731", "listen address")
		shards      = flag.Int("shards", 4, "shard count")
		vnodes      = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per shard")
		window      = flag.Duration("window", 10*time.Second, "utilization estimation window")
		timeout     = flag.Duration("timeout", 0, "per-shard call timeout (0 = none)")
		downAfter   = flag.Int("down-after", 3, "consecutive failures before a shard is routed around")
		cooldown    = flag.Duration("cooldown", 5*time.Second, "down-shard reprobe cooldown")
		replicate   = flag.Bool("replicate", true, "mirror reports to the fallback shard")
		snapDir     = flag.String("snapshot-dir", "", "snapshot directory (empty = snapshots off)")
		snapEvery   = flag.Duration("snapshot-interval", 30*time.Second, "time between snapshots")
		policyPath  = flag.String("policy", "", "publish this JSON policy file to clients (default: the built-in policy)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus metrics on this address (empty = telemetry off)")
		traceOn     = flag.Bool("trace", false, "record request traces (view at /debug/traces on -metrics-addr)")
		healthOn    = flag.Bool("health", false, "run the live health monitor (view at /debug/health on -metrics-addr or -health-addr)")
		healthAddr  = flag.String("health-addr", "", "serve /debug/health on a dedicated address (implies -health)")
		healthWin   = flag.Duration("health-bucket", time.Second, "health monitor rollup bucket width")
		ipfixAddr   = flag.String("ipfix-addr", "", "receive IPFIX exports on this UDP address and ingest passive context (empty = off)")
		ipfixSample = flag.Int("ipfix-sample", 1, "ipfix: exporter packet sampling rate (1-in-N)")
		ipfixWindow = flag.Duration("ipfix-window", 5*time.Second, "ipfix: per-path aggregation window (stream time)")
		passiveWt   = flag.Float64("passive-weight", 0, "weight of passive (IPFIX-inferred) reports relative to cooperative ones (0 = server default of 1)")
		logLevel    = flag.String("log-level", "info", "minimum log level (debug|info|warn|error)")
		logJSON     = flag.Bool("log-json", false, "emit logs as JSON lines (default logfmt)")
		paths       pathFlags
	)
	flag.Var(&paths, "path", "register a path capacity as name=bitsPerSecond (repeatable)")
	flag.Parse()

	lvl, err := tlog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var lopts []tlog.Option
	if *logJSON {
		lopts = append(lopts, tlog.WithJSON())
	}
	logger := tlog.New(os.Stderr, lvl, lopts...).Component("phi-cluster")

	if *shards < 1 {
		logger.Fatal("-shards must be >= 1", "got", *shards)
	}

	cl := cluster.New(cluster.Config{
		Shards: *shards,
		VNodes: *vnodes,
		Clock:  func() sim.Time { return sim.Time(time.Now().UnixNano()) },
		Server: phi.ServerConfig{Window: sim.Time(window.Nanoseconds()), PassiveWeight: *passiveWt},
		Frontend: cluster.FrontendConfig{
			Timeout:          *timeout,
			DownAfter:        *downAfter,
			Cooldown:         *cooldown,
			ReplicateReports: *replicate,
		},
	})

	var reg *telemetry.Registry // nil keeps every hot path uninstrumented
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		cl.Instrument(reg)
	}
	var tracer *trace.Tracer // nil likewise keeps tracing a no-op
	if *traceOn {
		tracer = trace.NewTracer(trace.Config{})
		cl.Trace(tracer)
	}
	var monitor *health.Monitor // nil likewise keeps health hooks no-ops
	if *healthOn || *healthAddr != "" {
		monitor = health.NewMonitor(health.Config{BucketDur: *healthWin, Shards: *shards})
		monitor.SetLogger(logger.Component("health"))
		monitor.SetTracer(tracer)
		monitor.SetMetrics(health.NewMetrics(reg))
		cl.Health(monitor) // frontend feeds ops, shard calls, routing, breakers
		stop := monitor.Start()
		defer stop()
	}

	stopSnapshots := func() {}
	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			logger.Fatal("snapshot dir", "err", err)
		}
		restored, err := cl.LoadSnapshots(*snapDir)
		if err != nil {
			logger.Fatal("restore snapshots", "err", err)
		}
		if restored > 0 {
			logger.Info("rehydrated shards from snapshots", "restored", restored, "shards", *shards, "dir", *snapDir)
		}
		stopSnapshots = cl.StartSnapshotters(*snapDir, *snapEvery, logger.Component("snapshot").Printf)
		logger.Info("snapshotting", "interval", *snapEvery, "dir", *snapDir)
	}

	for _, p := range paths {
		cl.Frontend.RegisterPath(phi.PathKey(p.name), p.capacity)
		logger.Info("registered path", "path", p.name, "capacity_bps", p.capacity)
	}

	// Passive ingest: an IPFIX collector feeding reconstructed context
	// through the frontend, so passive reports shard, replicate, and
	// fail over exactly like cooperative ones.
	var (
		ingestPipe *ingest.Pipeline
		ingestCol  *ipfix.Collector
	)
	if *ipfixAddr != "" {
		p, err := ingest.New(ingest.Config{
			Sink:         cl.Frontend,
			SampleN:      *ipfixSample,
			WindowMillis: uint64(ipfixWindow.Milliseconds()),
			Metrics:      ingest.NewMetrics(reg, nil),
		})
		if err != nil {
			logger.Fatal("ipfix ingest", "err", err)
		}
		col, err := ipfix.NewRawCollector(*ipfixAddr, p.Datagram)
		if err != nil {
			logger.Fatal("ipfix collector", "addr", *ipfixAddr, "err", err)
		}
		ingestPipe, ingestCol = p, col
		// Close the socket before stopping the pipeline: Datagram must
		// not be called after Stop.
		defer func() {
			col.Close()
			p.Stop()
		}()
		logger.Info("ipfix ingest up", "addr", col.Addr(),
			"sample", *ipfixSample, "window", ipfixWindow.String())
	}

	srv := phiwire.NewServer(cl.Frontend, logger.Component("phiwire").Printf)
	srv.SetMetrics(phiwire.NewServerMetrics(reg))
	srv.SetTracer(tracer)
	srv.SetHealth(monitor)
	if *metricsAddr != "" {
		endpoints := []telemetry.Endpoint{
			{Path: "/debug/traces", Handler: tracer.Collector().Handler()},
			{Path: "/debug/shard", Handler: shardDebugHandler(cl, logger)},
			{Path: "/debug/health", Handler: monitor.Handler()},
		}
		if ingestPipe != nil {
			endpoints = append(endpoints,
				telemetry.Endpoint{Path: "/debug/ingest", Handler: ingest.Handler(ingestPipe, ingestCol)})
		}
		ms, err := telemetry.Serve(*metricsAddr, reg, endpoints...)
		if err != nil {
			logger.Fatal("metrics server", "err", err)
		}
		defer ms.Close()
		logger.Info("metrics server up", "addr", ms.Addr().String(), "tracing", *traceOn, "health", monitor != nil)
	}
	if *healthAddr != "" {
		hs, err := telemetry.Serve(*healthAddr, nil,
			telemetry.Endpoint{Path: "/debug/health", Handler: monitor.Handler()})
		if err != nil {
			logger.Fatal("health server", "err", err)
		}
		defer hs.Close()
		logger.Info("health server up", "addr", hs.Addr().String())
	}
	policy := phi.DefaultPolicy()
	if *policyPath != "" {
		f, err := os.Open(*policyPath)
		if err != nil {
			logger.Fatal("open policy", "path", *policyPath, "err", err)
		}
		policy, err = phi.LoadPolicy(f)
		f.Close()
		if err != nil {
			logger.Fatal("load policy", "path", *policyPath, "err", err)
		}
		logger.Info("publishing policy", "path", *policyPath, "rules", len(policy.Rules))
	} else {
		logger.Info("publishing the built-in policy", "rules", len(policy.Rules))
	}
	if err := srv.SetPolicy(policy); err != nil {
		logger.Fatal("publish policy", "err", err)
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *listen, "shards", *shards, "vnodes", *vnodes)
		errc <- srv.ListenAndServe(*listen)
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	select {
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
		srv.Close()
	case err := <-errc:
		stopSnapshots()
		logger.Fatal("serve", "err", err)
	}
	stopSnapshots() // takes a final snapshot per shard
	handled, rejected := srv.Stats()
	fs := cl.Frontend.Stats()
	logger.Info("served", "requests", handled, "rejected", rejected,
		"lookups", fs.Lookups, "reports", fs.Reports, "failovers", fs.Failovers, "degraded", fs.Degraded)
}

// shardDebugHandler serves /debug/shard?id=N&op=crash|restart|status —
// runtime fault injection for failover drills: crash a shard mid-load,
// watch traces at /debug/traces pick up retry/failover notes, restart
// it, watch the breaker close.
func shardDebugHandler(cl *cluster.Cluster, logger *tlog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.URL.Query().Get("id"))
		if err != nil || id < 0 || id >= len(cl.Shards) {
			http.Error(w, fmt.Sprintf("bad shard id (want 0..%d)", len(cl.Shards)-1), http.StatusBadRequest)
			return
		}
		switch op := r.URL.Query().Get("op"); op {
		case "crash":
			cl.Shards[id].Crash()
			logger.Warn("shard crashed by debug request", "shard", id)
		case "restart":
			cl.Shards[id].Restart()
			logger.Info("shard restarted by debug request", "shard", id)
		case "", "status":
		default:
			http.Error(w, "op must be crash, restart, or status", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"shard\":%d,\"down\":%v}\n", id, cl.Shards[id].Down())
	})
}

// pathFlags collects repeated -path name=capacity flags.
type pathFlags []struct {
	name     string
	capacity int64
}

func (p *pathFlags) String() string {
	var parts []string
	for _, e := range *p {
		parts = append(parts, fmt.Sprintf("%s=%d", e.name, e.capacity))
	}
	return strings.Join(parts, ",")
}

func (p *pathFlags) Set(v string) error {
	name, capStr, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=bitsPerSecond, got %q", v)
	}
	c, err := strconv.ParseInt(capStr, 10, 64)
	if err != nil || c <= 0 {
		return fmt.Errorf("bad capacity in %q", v)
	}
	*p = append(*p, struct {
		name     string
		capacity int64
	}{name, c})
	return nil
}
