// Command phi-sim runs one dumbbell simulation and prints its
// measurements: the quickest way to poke at the simulator and compare
// congestion-control schemes, with and without Phi coordination.
//
// Usage:
//
//	phi-sim -senders 8 -cc cubic
//	phi-sim -senders 8 -cc cubic-phi
//	phi-sim -senders 8 -cc remy-phi -duration 120s
//	phi-sim -senders 20 -longrunning -cc cubic -beta 0.8
package main

import (
	"flag"
	"fmt"
	"log"
	mrand "math/rand"
	"os"
	"time"

	"repro/internal/phi"
	"repro/internal/remy"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

func main() {
	var (
		senders     = flag.Int("senders", 8, "sender/receiver pairs")
		rate        = flag.Int64("rate", 15_000_000, "bottleneck rate, bit/s")
		rtt         = flag.Duration("rtt", 150*time.Millisecond, "propagation RTT")
		buffer      = flag.Float64("buffer", 5, "bottleneck buffer, multiples of BDP")
		duration    = flag.Duration("duration", 60*time.Second, "simulated horizon")
		onBytes     = flag.Int64("on", 100_000, "mean transfer size, bytes")
		offTime     = flag.Duration("off", 500*time.Millisecond, "mean idle time")
		longRunning = flag.Bool("longrunning", false, "persistent flows instead of on/off")
		ccName      = flag.String("cc", "cubic", "cubic | cubic-phi | cubic-phi-adaptive | newreno | remy | remy-phi | remy-phi-ideal")
		iw          = flag.Int("iw", 2, "cubic initial window (segments)")
		ssthresh    = flag.Int("ssthresh", 65536, "cubic initial ssthresh (segments)")
		beta        = flag.Float64("beta", 0.2, "cubic beta")
		seed        = flag.Int64("seed", 1, "run seed")
		disc        = flag.String("disc", "droptail", "bottleneck queue discipline: droptail | red | red-ecn")
		delack      = flag.Bool("delack", false, "delayed acknowledgments at receivers")
		ecn         = flag.Bool("ecn", false, "ECN-capable senders (pair with -disc red-ecn)")
		tracePath   = flag.String("trace", "", "write an ns-2-style bottleneck packet trace to this file")
	)
	flag.Parse()

	db := sim.DumbbellConfig{
		Senders:        *senders,
		BottleneckRate: *rate,
		RTT:            sim.Time(rtt.Nanoseconds()),
		BufferBDP:      *buffer,
		AccessRate:     1_000_000_000,
	}
	bufBytes := int(*buffer * float64(*rate) / 8 * rtt.Seconds())
	switch *disc {
	case "droptail":
	case "red", "red-ecn":
		red := sim.NewRED(bufBytes, mrand.New(mrand.NewSource(*seed)))
		red.MarkECT = *disc == "red-ecn"
		db.Discipline = red
	default:
		log.Fatalf("unknown -disc %q", *disc)
	}
	sc := workload.Scenario{
		Dumbbell:    db,
		MeanOnBytes: *onBytes,
		MeanOffTime: sim.Time(offTime.Nanoseconds()),
		LongRunning: *longRunning,
		Duration:    sim.Time(duration.Nanoseconds()),
		Warmup:      sim.Time(duration.Nanoseconds()) / 10,
		Seed:        *seed,
		DelayAcks:   *delack,
		TCP:         tcp.Config{ECN: *ecn},
	}
	var tracer *sim.WriterTracer
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		traceFile = f
		tracer = sim.NewWriterTracer(f)
	}

	var probe *sim.RateProbe
	needProbe := false
	params := tcp.CubicParams{InitialWindow: *iw, InitialSsthresh: *ssthresh, Beta: *beta}
	switch *ccName {
	case "cubic":
		sc.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl { return tcp.NewCubic(params) }
		}
	case "newreno":
		sc.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl { return tcp.NewNewReno() }
		}
	case "cubic-phi":
		// Context-driven parameters from the live oracle + default policy.
		needProbe = true
		policy := phi.DefaultPolicy()
		sc.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl {
				ctx := phi.Context{U: probe.Utilization()}
				return tcp.NewCubic(policy.Params(ctx))
			}
		}
	case "cubic-phi-adaptive":
		// Section 2.2.2's long-connection variant: periodic context
		// refresh within each connection.
		needProbe = true
		sc.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl {
				oracle := phi.Oracle{Fn: func() phi.Context {
					return phi.Context{U: probe.Utilization()}
				}}
				return phi.NewAdaptiveCubic(oracle, phi.DefaultPolicy(), "bn", 5*sim.Second)
			}
		}
	case "remy", "remy-phi", "remy-phi-ideal":
		table := remy.DefaultTable()
		if *ccName != "remy" {
			table = remy.DefaultPhiTable()
			needProbe = true
		}
		mode := *ccName
		sc.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl {
				var util remy.UtilSource
				switch mode {
				case "remy-phi":
					util = remy.StaticUtil(probe.Utilization())
				case "remy-phi-ideal":
					util = remy.UtilFunc(func() float64 { return probe.Utilization() })
				}
				cc := remy.NewCC(table, util)
				cc.PhiInitialWindow = util != nil
				return cc
			}
		}
	default:
		log.Fatalf("unknown -cc %q", *ccName)
	}
	prevTopo := sc.OnTopology
	sc.OnTopology = func(eng *sim.Engine, d *sim.Dumbbell) {
		if prevTopo != nil {
			prevTopo(eng, d)
		}
		if needProbe {
			probe = sim.NewRateProbe(eng, d.Bottleneck.Monitor(), 100*sim.Millisecond, sim.Second)
		}
		if tracer != nil {
			d.Bottleneck.SetTracer(tracer)
		}
	}

	res := workload.Run(sc)
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			log.Fatalf("trace flush: %v", err)
		}
		traceFile.Close()
		fmt.Printf("trace             %s (%d events)\n", *tracePath, tracer.Events)
	}
	fmt.Printf("scheme            %s\n", *ccName)
	fmt.Printf("flows             %d (%d completed)\n", len(res.Flows), res.CompletedFlows())
	fmt.Printf("utilization       %.1f%%\n", 100*res.Utilization)
	fmt.Printf("link loss         %.3f%%\n", 100*res.LinkLossRate)
	fmt.Printf("agg throughput    %.2f Mbit/s\n", res.AggThroughputMbps())
	fmt.Printf("median flow thr   %.2f Mbit/s\n", res.MedianThroughputMbps())
	fmt.Printf("mean queue delay  %.1f ms (flow RTT above propagation)\n", res.MeanQueueingDelayMs())
	fmt.Printf("median qdelay     %.1f ms\n", res.MedianQueueingDelayMs())
	fmt.Printf("power P_l         %.2f\n", res.LossPower())
	fmt.Printf("objective ln(P)   %.2f\n", res.LogPower())
}
