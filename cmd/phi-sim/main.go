// Command phi-sim runs one dumbbell simulation and prints its
// measurements: the quickest way to poke at the simulator and compare
// congestion-control schemes, with and without Phi coordination.
//
// Usage:
//
//	phi-sim -senders 8 -cc cubic
//	phi-sim -senders 8 -cc cubic-phi
//	phi-sim -senders 8 -cc remy-phi -duration 120s
//	phi-sim -senders 20 -longrunning -cc cubic -beta 0.8
//	phi-sim -longrunning -probe-interval 100ms -probe-csv probe.csv
//	phi-sim -bench-out BENCH_sim.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	mrand "math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/phi"
	"repro/internal/remy"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

func main() {
	var (
		senders     = flag.Int("senders", 8, "sender/receiver pairs")
		rate        = flag.Int64("rate", 15_000_000, "bottleneck rate, bit/s")
		rtt         = flag.Duration("rtt", 150*time.Millisecond, "propagation RTT")
		buffer      = flag.Float64("buffer", 5, "bottleneck buffer, multiples of BDP")
		duration    = flag.Duration("duration", 60*time.Second, "simulated horizon")
		onBytes     = flag.Int64("on", 100_000, "mean transfer size, bytes")
		offTime     = flag.Duration("off", 500*time.Millisecond, "mean idle time")
		longRunning = flag.Bool("longrunning", false, "persistent flows instead of on/off")
		ccName      = flag.String("cc", "cubic", "cubic | cubic-phi | cubic-phi-adaptive | newreno | remy | remy-phi | remy-phi-ideal")
		iw          = flag.Int("iw", 2, "cubic initial window (segments)")
		ssthresh    = flag.Int("ssthresh", 65536, "cubic initial ssthresh (segments)")
		beta        = flag.Float64("beta", 0.2, "cubic beta")
		seed        = flag.Int64("seed", 1, "run seed")
		disc        = flag.String("disc", "droptail", "bottleneck queue discipline: droptail | red | red-ecn")
		delack      = flag.Bool("delack", false, "delayed acknowledgments at receivers")
		ecn         = flag.Bool("ecn", false, "ECN-capable senders (pair with -disc red-ecn)")
		tracePath   = flag.String("trace", "", "write an ns-2-style bottleneck packet trace to this file")

		probeEvery = flag.Duration("probe-interval", 0, "sample the bottleneck (and long-running flows) on this virtual-time cadence")
		probeCSV   = flag.String("probe-csv", "", "write the probe time series as CSV to this file (requires -probe-interval)")
		probeJSON  = flag.String("probe-json", "", "write the probe time series as JSON to this file (requires -probe-interval)")
		benchOut   = flag.String("bench-out", "", "benchmark the scenario probe-off vs probe-on, write events/sec JSON to this path, and exit")
		benchReps  = flag.Int("bench-reps", 3, "benchmark repetitions per arm (best rep is reported)")
	)
	flag.Parse()
	if (*probeCSV != "" || *probeJSON != "") && *probeEvery <= 0 {
		log.Fatal("-probe-csv/-probe-json need -probe-interval > 0")
	}
	if *benchOut != "" && *tracePath != "" {
		log.Fatal("-bench-out and -trace are mutually exclusive")
	}

	db := sim.DumbbellConfig{
		Senders:        *senders,
		BottleneckRate: *rate,
		RTT:            sim.Time(rtt.Nanoseconds()),
		BufferBDP:      *buffer,
		AccessRate:     1_000_000_000,
	}
	bufBytes := int(*buffer * float64(*rate) / 8 * rtt.Seconds())
	switch *disc {
	case "droptail":
	case "red", "red-ecn":
		red := sim.NewRED(bufBytes, mrand.New(mrand.NewSource(*seed)))
		red.MarkECT = *disc == "red-ecn"
		db.Discipline = red
	default:
		log.Fatalf("unknown -disc %q", *disc)
	}
	sc := workload.Scenario{
		Dumbbell:    db,
		MeanOnBytes: *onBytes,
		MeanOffTime: sim.Time(offTime.Nanoseconds()),
		LongRunning: *longRunning,
		Duration:    sim.Time(duration.Nanoseconds()),
		Warmup:      sim.Time(duration.Nanoseconds()) / 10,
		Seed:        *seed,
		DelayAcks:   *delack,
		TCP:         tcp.Config{ECN: *ecn},
	}
	var tracer *sim.WriterTracer
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		traceFile = f
		tracer = sim.NewWriterTracer(f)
	}

	var probe *sim.RateProbe
	needProbe := false
	params := tcp.CubicParams{InitialWindow: *iw, InitialSsthresh: *ssthresh, Beta: *beta}
	switch *ccName {
	case "cubic":
		sc.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl { return tcp.NewCubic(params) }
		}
	case "newreno":
		sc.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl { return tcp.NewNewReno() }
		}
	case "cubic-phi":
		// Context-driven parameters from the live oracle + default policy.
		needProbe = true
		policy := phi.DefaultPolicy()
		sc.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl {
				ctx := phi.Context{U: probe.Utilization()}
				return tcp.NewCubic(policy.Params(ctx))
			}
		}
	case "cubic-phi-adaptive":
		// Section 2.2.2's long-connection variant: periodic context
		// refresh within each connection.
		needProbe = true
		sc.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl {
				oracle := phi.Oracle{Fn: func() phi.Context {
					return phi.Context{U: probe.Utilization()}
				}}
				return phi.NewAdaptiveCubic(oracle, phi.DefaultPolicy(), "bn", 5*sim.Second)
			}
		}
	case "remy", "remy-phi", "remy-phi-ideal":
		table := remy.DefaultTable()
		if *ccName != "remy" {
			table = remy.DefaultPhiTable()
			needProbe = true
		}
		mode := *ccName
		sc.CC = func(int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl {
				var util remy.UtilSource
				switch mode {
				case "remy-phi":
					util = remy.StaticUtil(probe.Utilization())
				case "remy-phi-ideal":
					util = remy.UtilFunc(func() float64 { return probe.Utilization() })
				}
				cc := remy.NewCC(table, util)
				cc.PhiInitialWindow = util != nil
				return cc
			}
		}
	default:
		log.Fatalf("unknown -cc %q", *ccName)
	}
	prevTopo := sc.OnTopology
	sc.OnTopology = func(eng *sim.Engine, d *sim.Dumbbell) {
		if prevTopo != nil {
			prevTopo(eng, d)
		}
		if needProbe {
			probe = sim.NewRateProbe(eng, d.Bottleneck.Monitor(), 100*sim.Millisecond, sim.Second)
		}
		if tracer != nil {
			d.Bottleneck.SetTracer(tracer)
		}
	}

	if *benchOut != "" {
		runBench(sc, *benchOut, *benchReps, *probeEvery)
		return
	}
	sc.ProbeInterval = sim.Time(probeEvery.Nanoseconds())

	res := workload.Run(sc)
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			log.Fatalf("trace flush: %v", err)
		}
		traceFile.Close()
		fmt.Printf("trace             %s (%d events)\n", *tracePath, tracer.Events)
	}
	fmt.Printf("scheme            %s\n", *ccName)
	fmt.Printf("flows             %d (%d completed)\n", len(res.Flows), res.CompletedFlows())
	fmt.Printf("utilization       %.1f%%\n", 100*res.Utilization)
	fmt.Printf("link loss         %.3f%%\n", 100*res.LinkLossRate)
	fmt.Printf("agg throughput    %.2f Mbit/s\n", res.AggThroughputMbps())
	fmt.Printf("median flow thr   %.2f Mbit/s\n", res.MedianThroughputMbps())
	fmt.Printf("mean queue delay  %.1f ms (flow RTT above propagation)\n", res.MeanQueueingDelayMs())
	fmt.Printf("median qdelay     %.1f ms\n", res.MedianQueueingDelayMs())
	fmt.Printf("power P_l         %.2f\n", res.LossPower())
	fmt.Printf("objective ln(P)   %.2f\n", res.LogPower())

	if res.Probe != nil {
		dump := res.Probe.Dump()
		fmt.Printf("probe             %d link + %d flow series at %v cadence\n",
			len(dump.Links), len(dump.Flows), *probeEvery)
		write := func(path string, emit func(io.Writer) error) {
			if path == "" {
				return
			}
			f, err := os.Create(path)
			if err != nil {
				log.Fatalf("probe export: %v", err)
			}
			if err := emit(f); err != nil {
				log.Fatalf("probe export %s: %v", path, err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("probe export %s: %v", path, err)
			}
			fmt.Printf("probe export      %s\n", path)
		}
		write(*probeCSV, dump.WriteCSV)
		write(*probeJSON, dump.WriteJSON)
	}
}

// benchArm is one side of the probe-overhead benchmark: the best (fastest)
// repetition of the scenario with the probe detached or attached.
type benchArm struct {
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// runBench executes the configured scenario with and without a probe
// attached and writes an events/sec comparison as JSON — the artifact
// `make bench-sim` publishes as BENCH_sim.json. Simulation results are
// identical either way (the probe is passive); the interesting number is
// the wall-clock overhead of carrying it.
func runBench(sc workload.Scenario, path string, reps int, probeEvery time.Duration) {
	if reps <= 0 {
		reps = 1
	}
	interval := sim.Time(probeEvery.Nanoseconds())
	if interval <= 0 {
		interval = 100 * sim.Millisecond
	}
	runOnce := func(probe sim.Time) benchArm {
		s := sc
		s.ProbeInterval = probe
		var eng *sim.Engine
		prev := s.OnTopology
		s.OnTopology = func(e *sim.Engine, d *sim.Dumbbell) {
			eng = e
			if prev != nil {
				prev(e, d)
			}
		}
		begin := time.Now()
		workload.Run(s)
		wall := time.Since(begin).Seconds()
		return benchArm{Events: eng.Executed, WallSeconds: wall,
			EventsPerSec: float64(eng.Executed) / wall}
	}
	// One unmeasured warmup, then interleave the arms rep by rep so slow
	// background drift (frequency scaling, a neighbor on the core) hits
	// both sides equally instead of biasing whichever block ran second.
	// Best-of-reps per arm damps the remaining one-sided noise.
	runOnce(0)
	var detached, attached benchArm
	for r := 0; r < reps; r++ {
		if d := runOnce(0); r == 0 || d.WallSeconds < detached.WallSeconds {
			detached = d
		}
		if a := runOnce(interval); r == 0 || a.WallSeconds < attached.WallSeconds {
			attached = a
		}
	}
	overhead := attached.WallSeconds/detached.WallSeconds - 1

	out := struct {
		Benchmark       string   `json:"benchmark"`
		GoVersion       string   `json:"go_version"`
		Reps            int      `json:"reps"`
		ProbeIntervalNs int64    `json:"probe_interval_ns"`
		SimSeconds      float64  `json:"sim_seconds"`
		Detached        benchArm `json:"detached"`
		Attached        benchArm `json:"attached"`
		// OverheadFraction is attached/detached wall time minus one; the
		// probe-overhead budget is 0.05.
		OverheadFraction float64 `json:"overhead_fraction"`
	}{
		Benchmark:        "phi-sim probe overhead",
		GoVersion:        runtime.Version(),
		Reps:             reps,
		ProbeIntervalNs:  int64(interval),
		SimSeconds:       sim.Time(sc.Duration).Seconds(),
		Detached:         detached,
		Attached:         attached,
		OverheadFraction: overhead,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		log.Fatalf("bench: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("bench: %v", err)
	}
	fmt.Printf("bench             detached %.2fM events/s, attached %.2fM events/s, overhead %+.1f%%\n",
		detached.EventsPerSec/1e6, attached.EventsPerSec/1e6, 100*overhead)
	fmt.Printf("bench export      %s\n", path)
}
