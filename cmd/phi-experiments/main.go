// Command phi-experiments regenerates the tables and figures of
// "Rethinking Networking for 'Five Computers'" (HotNets 2018).
//
// Usage:
//
//	phi-experiments -run all
//	phi-experiments -run table3 -retrain
//	phi-experiments -run fig2a,fig2b -full -csv out/
//	phi-experiments -run all -status-addr :9100   # live /debug/experiments
//	phi-experiments -compare results/manifest_golden_coarse.json
//
// By default experiments run in a coarse configuration that preserves the
// paper's qualitative shapes in minutes; -full selects the paper-scale
// grid (full Table 2 sweep, n = 8 runs, 100 long-running flows), which
// takes considerably longer. With -csv, each experiment also writes the
// series it plots as a CSV file for external plotting.
//
// Every run writes a manifest (results/manifest_<run>.json) recording
// the configuration, toolchain, wall time, and each experiment's summary
// metrics. -compare re-runs the configuration an archived manifest
// records and exits non-zero if any metric drifts beyond -tolerance —
// the regression check CI applies against a committed golden manifest.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

type flags struct {
	runList    string
	full       bool
	seed       int64
	retrain    bool
	csvDir     string
	workers    int
	statusAddr string
	resultsDir string
	manifest   string
	compare    string
	tolerance  float64
}

func parseFlags() flags {
	var fl flags
	flag.StringVar(&fl.runList, "run", "all",
		"comma-separated experiments (see names below) or 'all'/'ablations'")
	flag.BoolVar(&fl.full, "full", false, "paper-scale configuration (much slower)")
	flag.Int64Var(&fl.seed, "seed", 0, "seed offset for all runs")
	flag.BoolVar(&fl.retrain, "retrain", false, "retrain the Remy tables before Table 3 (slow)")
	flag.StringVar(&fl.csvDir, "csv", "", "also write each experiment's series as CSV into this directory")
	flag.IntVar(&fl.workers, "workers", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial; results are identical)")
	flag.StringVar(&fl.statusAddr, "status-addr", "",
		"serve /metrics and /debug/experiments (live phase, grid progress, ETA) on this address while running")
	flag.StringVar(&fl.resultsDir, "results", "results", "directory for run manifests")
	flag.StringVar(&fl.manifest, "manifest", "", "write the run manifest to this exact path (overrides -results)")
	flag.StringVar(&fl.compare, "compare", "",
		"re-run the configuration recorded in this manifest and fail on metric regressions (ignores -run/-full/-seed/-retrain)")
	flag.Float64Var(&fl.tolerance, "tolerance", 0.05, "relative tolerance for -compare metric checks")
	flag.Parse()
	return fl
}

// validate checks every flag, collecting all errors so a misconfigured
// invocation reports everything wrong at once, then exits 2.
func validate(fl flags) ([]experiments.Experiment, experiments.Manifest) {
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	var exps []experiments.Experiment
	var archived experiments.Manifest
	if fl.compare != "" {
		m, err := experiments.ReadManifest(fl.compare)
		if err != nil {
			fail("-compare: %v", err)
		} else if len(m.Results) == 0 {
			fail("-compare: %s records no experiment results", fl.compare)
		} else {
			archived = m
			exps, err = experiments.Resolve(strings.Join(m.Experiments, ","))
			if err != nil {
				fail("-compare: manifest %s: %v (was it written by an older build?)", fl.compare, err)
			}
		}
	} else {
		var err error
		exps, err = experiments.Resolve(fl.runList)
		if err != nil {
			fail("-run: %v\n  valid names: %s", err, strings.Join(experiments.Names(), ", "))
		}
	}
	if fl.workers < 0 {
		fail("-workers must be >= 0, got %d", fl.workers)
	}
	if fl.tolerance < 0 || fl.tolerance >= 1 {
		fail("-tolerance must be in [0, 1), got %g", fl.tolerance)
	}
	if flag.NArg() > 0 {
		fail("unexpected arguments: %s", strings.Join(flag.Args(), " "))
	}

	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "phi-experiments: %s\n", e)
		}
		fmt.Fprintf(os.Stderr, "run 'phi-experiments -h' for usage\n")
		os.Exit(2)
	}
	return exps, archived
}

// manifestPath derives results/manifest_<run>.json from the -run list.
func manifestPath(fl flags) string {
	if fl.manifest != "" {
		return fl.manifest
	}
	name := strings.ToLower(fl.runList)
	clean := strings.Map(func(r rune) rune {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			return r
		}
		return '-'
	}, name)
	clean = strings.Trim(clean, "-")
	if clean == "" {
		clean = "run"
	}
	return filepath.Join(fl.resultsDir, "manifest_"+clean+".json")
}

func main() {
	fl := parseFlags()
	exps, archived := validate(fl)

	o := experiments.Options{Full: fl.full, Seed: fl.seed, Retrain: fl.retrain, Workers: fl.workers}
	if fl.compare != "" {
		o = archived.Options()
		o.Workers = fl.workers
	}

	// Progress is always attached; -status-addr additionally exposes it
	// (with the phi_experiments_* metrics) over HTTP while the run lasts.
	var reg *telemetry.Registry
	if fl.statusAddr != "" {
		reg = telemetry.NewRegistry()
	}
	o.Progress = experiments.NewProgress(reg)
	if fl.statusAddr != "" {
		srv, err := telemetry.Serve(fl.statusAddr, reg, telemetry.Endpoint{
			Path: "/debug/experiments", Handler: o.Progress.Handler(),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "phi-experiments: -status-addr: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "status: http://%s/debug/experiments\n", srv.Addr())
	}

	h := &experiments.Harness{Opts: o, Out: os.Stdout, CSVDir: fl.csvDir, Log: os.Stderr}
	begin := time.Now()
	reports := h.Run(exps)
	wall := time.Since(begin)
	fresh := experiments.NewManifest(o, reports, wall)

	if fl.compare != "" {
		mismatches := experiments.CompareManifests(archived, fresh, fl.tolerance)
		if len(mismatches) > 0 {
			fmt.Fprintf(os.Stderr, "phi-experiments: %d metric(s) drifted beyond %.1f%% of %s:\n",
				len(mismatches), 100*fl.tolerance, fl.compare)
			for _, mm := range mismatches {
				fmt.Fprintf(os.Stderr, "  %s\n", mm)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "compare: fresh run matches %s (%d experiments, tolerance %.1f%%)\n",
			fl.compare, len(fresh.Results), 100*fl.tolerance)
		return
	}

	path := manifestPath(fl)
	if err := fresh.WriteFile(path); err != nil {
		fmt.Fprintf(os.Stderr, "phi-experiments: manifest: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
