// Command phi-experiments regenerates the tables and figures of
// "Rethinking Networking for 'Five Computers'" (HotNets 2018).
//
// Usage:
//
//	phi-experiments -run all
//	phi-experiments -run table3 -retrain
//	phi-experiments -run fig2a,fig2b -full -csv out/
//
// By default experiments run in a coarse configuration that preserves the
// paper's qualitative shapes in minutes; -full selects the paper-scale
// grid (full Table 2 sweep, n = 8 runs, 100 long-running flows), which
// takes considerably longer. With -csv, each experiment also writes the
// series it plots as a CSV file for external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiments: table1,table2,fig2a,fig2b,fig2c,fig3,fig4,deployment,table3,fig5,sharing,policy,ablations or 'all'")
		full    = flag.Bool("full", false, "paper-scale configuration (much slower)")
		seed    = flag.Int64("seed", 0, "seed offset for all runs")
		retrain = flag.Bool("retrain", false, "retrain the Remy tables before Table 3 (slow)")
		csvDir  = flag.String("csv", "", "also write each experiment's series as CSV into this directory")
	)
	flag.Parse()

	o := experiments.Options{Full: *full, Seed: *seed}
	all := []string{"table1", "table2", "fig2a", "fig2b", "fig2c", "fig3", "fig4", "table3", "fig5", "sharing", "ablations"}
	var selected []string
	if *runList == "all" {
		selected = all
	} else {
		for _, name := range strings.Split(*runList, ",") {
			selected = append(selected, strings.TrimSpace(strings.ToLower(name)))
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "csv dir: %v\n", err)
			os.Exit(1)
		}
	}
	exportCSV := func(name string, out fmt.Stringer) {
		if *csvDir == "" {
			return
		}
		cw, ok := out.(experiments.CSVWriter)
		if !ok {
			return
		}
		path := filepath.Join(*csvDir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csv %s: %v\n", name, err)
			return
		}
		defer f.Close()
		if err := cw.WriteCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "csv %s: %v\n", name, err)
			return
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	for _, name := range selected {
		var out fmt.Stringer
		switch name {
		case "table1":
			out = experiments.Table1()
		case "table2":
			out = experiments.Table2(o)
		case "fig2a":
			out = experiments.Fig2a(o)
		case "fig2b":
			out = experiments.Fig2b(o)
		case "fig2c":
			out = experiments.Fig2c(o)
		case "fig3":
			out = experiments.Fig3(o)
		case "fig4":
			out = experiments.Fig4(o)
		case "deployment":
			out = experiments.DeploymentCurve(o)
		case "table3":
			out = experiments.Table3(o, *retrain)
		case "fig5":
			out = experiments.Fig5(o)
		case "sharing":
			out = experiments.Sharing(o)
		case "policy":
			out = experiments.BuildPolicy(o)
		case "ablations":
			cad := experiments.AblationCadence(o)
			fmt.Println(cad)
			exportCSV("ablation_cadence", cad)
			buck := experiments.AblationBuckets(o)
			fmt.Println(buck)
			exportCSV("ablation_buckets", buck)
			qd := experiments.AblationQueueDiscipline(o)
			fmt.Println(qd)
			exportCSV("ablation_queue_discipline", qd)
			out = experiments.AblationTraining(o)
			exportCSV("ablation_training", out)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		exportCSV(name, out)
		fmt.Println(out)
	}
}
