// Command phi-flows runs the Section 2.1 flow-sharing analysis: it
// synthesizes a cloud-egress workload (or reads IPFIX messages from a
// file), applies 1-in-N packet sampling, and reports how many flows share
// each destination /24 x minute path slice.
//
// Usage:
//
//	phi-flows                          # synthetic egress, paper settings
//	phi-flows -flows 1000000 -zipf 1.2
//	phi-flows -export flows.ipfix      # also write the IPFIX messages
//	phi-flows -import flows.ipfix      # analyze a capture instead
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/ipfix"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

func main() {
	var (
		flows      = flag.Int("flows", 0, "flows to synthesize (0 = calibrated default)")
		subnets    = flag.Int("subnets", 0, "destination /24 count (0 = default)")
		zipf       = flag.Float64("zipf", 0, "Zipf exponent (0 = default)")
		sample     = flag.Int("sample", ipfix.DefaultSamplingRate, "1-in-N packet sampling")
		seed       = flag.Int64("seed", 1, "generator seed")
		exportPath = flag.String("export", "", "write IPFIX messages to this file")
		importPath = flag.String("import", "", "read IPFIX messages from this file instead of synthesizing")
		replayN    = flag.Int("replay", 0, "also replay the first N flows through a dumbbell simulation")
		listenAddr = flag.String("listen", "", "run as a live UDP IPFIX collector on this address (e.g. :4739) and analyze on SIGINT")
	)
	flag.Parse()

	if *listenAddr != "" {
		collectLive(*listenAddr)
		return
	}

	var records []ipfix.FlowRecord
	if *importPath != "" {
		var err error
		records, err = readIPFIX(*importPath)
		if err != nil {
			log.Fatalf("import: %v", err)
		}
		fmt.Printf("imported %d flow records from %s\n", len(records), *importPath)
	} else {
		cfg := ipfix.DefaultSynthConfig()
		cfg.Seed = *seed
		if *flows > 0 {
			cfg.Flows = *flows
		}
		if *subnets > 0 {
			cfg.Subnets = *subnets
		}
		if *zipf > 0 {
			cfg.ZipfS = *zipf
		}
		records = ipfix.Generate(cfg, *sample)
		fmt.Printf("synthesized %d exported flows (%d offered, 1-in-%d sampling)\n",
			len(records), cfg.Flows, *sample)
	}

	if *exportPath != "" {
		if err := writeIPFIX(*exportPath, records); err != nil {
			log.Fatalf("export: %v", err)
		}
		fmt.Printf("wrote IPFIX messages to %s\n", *exportPath)
	}

	a := ipfix.AnalyzeSharing(records)
	fmt.Printf("path slices (/24 x minute): %d\n", a.Slices)
	fmt.Printf("flows sharing with >= 5 others:   %5.1f%%  (paper: 50%%)\n",
		100*a.FractionSharingAtLeast(5))
	fmt.Printf("flows sharing with >= 100 others: %5.1f%%  (paper: 12%%)\n",
		100*a.FractionSharingAtLeast(100))
	cdf := metrics.NewCDF(a.OthersPerFlow)
	fmt.Println("sharing CDF:")
	for _, p := range cdf.Points(10) {
		fmt.Printf("  P(others <= %6.0f) = %.2f\n", p.X, p.P)
	}

	if *replayN > 0 {
		fmt.Printf("\nreplaying first %d flows over a dumbbell (sampling-corrected)...\n", *replayN)
		res := workload.Replay(workload.ReplayConfig{
			Dumbbell: sim.DefaultDumbbell(8),
			Records:  records,
			SampleN:  *sample,
			MaxFlows: *replayN,
			CC: func() tcp.CongestionControl {
				return tcp.NewCubic(tcp.DefaultCubicParams())
			},
		})
		fmt.Printf("  flows completed:  %d/%d\n", res.CompletedFlows(), len(res.Flows))
		fmt.Printf("  utilization:      %.1f%%\n", 100*res.Utilization)
		fmt.Printf("  agg throughput:   %.2f Mbit/s\n", res.AggThroughputMbps())
		fmt.Printf("  mean queue delay: %.1f ms\n", res.MeanQueueingDelayMs())
	}
}

// collectLive runs a UDP collector until interrupted, then analyzes what
// arrived — a minimal live replacement for the paper's centralized
// collector service.
func collectLive(addr string) {
	col, err := ipfix.NewCollector(addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("collecting IPFIX over UDP on %s (Ctrl-C to analyze)\n", col.Addr())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	tick := time.NewTicker(10 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			fmt.Printf("  %d records collected (%d undecodable datagrams)\n", col.Count(), col.Errors())
		case <-sigc:
			col.Close()
			records := col.Records()
			fmt.Printf("\ncollected %d records\n", len(records))
			if len(records) == 0 {
				return
			}
			a := ipfix.AnalyzeSharing(records)
			fmt.Printf("path slices: %d\n", a.Slices)
			fmt.Printf("flows sharing with >= 5 others:   %5.1f%%\n", 100*a.FractionSharingAtLeast(5))
			fmt.Printf("flows sharing with >= 100 others: %5.1f%%\n", 100*a.FractionSharingAtLeast(100))
			return
		}
	}
}

// writeIPFIX streams records as length-delimited IPFIX messages (each
// message is self-describing per RFC 7011, so plain concatenation works).
func writeIPFIX(path string, records []ipfix.FlowRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := ipfix.NewEncoder(1)
	const batch = 400
	for i := 0; i < len(records); i += batch {
		end := i + batch
		if end > len(records) {
			end = len(records)
		}
		msg, err := enc.Encode(uint32(i/batch), records[i:end])
		if err != nil {
			return err
		}
		if _, err := f.Write(msg); err != nil {
			return err
		}
	}
	return nil
}

// readIPFIX parses concatenated IPFIX messages from a file.
func readIPFIX(path string) ([]ipfix.FlowRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := ipfix.NewDecoder()
	var out []ipfix.FlowRecord
	for len(data) >= 4 {
		msgLen := int(binary.BigEndian.Uint16(data[2:]))
		if msgLen < 16 || msgLen > len(data) {
			return nil, fmt.Errorf("corrupt message length %d", msgLen)
		}
		recs, err := dec.Decode(data[:msgLen])
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
		data = data[msgLen:]
	}
	if len(data) != 0 {
		return nil, io.ErrUnexpectedEOF
	}
	return out, nil
}
