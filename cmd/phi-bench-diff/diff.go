package main

import (
	"fmt"
	"io"
)

// direction says which way a metric is allowed to move.
type direction int

const (
	higherBetter direction = iota // throughput: regression = drop
	lowerBetter                   // latency/errors: regression = rise
)

// toleranceClass buckets metrics by how noisy they are, so one flag per
// bucket: throughput rates, latency quantiles, per-op efficiency
// (allocs/op, frames/syscall — near-deterministic, so their tolerance
// can be much tighter than latency's), and context quality (coverage
// fraction and prediction error at the knee).
type toleranceClass int

const (
	rateClass toleranceClass = iota
	latencyClass
	effClass
	qualityClass
)

// options are the gate's tolerances and extra requirements.
type options struct {
	TolRate     float64 // allowed fractional drop for rate-class metrics
	TolLatency  float64 // allowed fractional rise for latency-class metrics
	TolEff      float64 // allowed fractional worsening for efficiency-class metrics
	TolQuality  float64 // allowed fractional worsening for context-quality metrics
	RequireKnee bool
	MinRate     float64
}

// tol picks the class's tolerance.
func (o options) tol(c toleranceClass) float64 {
	switch c {
	case rateClass:
		return o.TolRate
	case effClass:
		return o.TolEff
	case qualityClass:
		return o.TolQuality
	default:
		return o.TolLatency
	}
}

// row is one compared metric.
type row struct {
	Name      string
	Old, New  float64
	Better    direction
	Tol       float64
	Regressed bool
}

// delta is the signed fractional change, new relative to old.
func (r row) delta() float64 {
	if r.Old == 0 {
		if r.New == 0 {
			return 0
		}
		return 1 // any growth from zero reads as +100%
	}
	return (r.New - r.Old) / r.Old
}

// report is the full comparison outcome.
type report struct {
	Kind       string // "loadgen", "saturation", or "ingest"
	Rows       []row
	Violations []string // -require-knee / -min-rate failures
}

func (r *report) failed() bool {
	if len(r.Violations) > 0 {
		return true
	}
	for _, m := range r.Rows {
		if m.Regressed {
			return true
		}
	}
	return false
}

func (r *report) write(w io.Writer, oldPath, newPath string) {
	fmt.Fprintf(w, "phi-bench-diff: %s result, %s -> %s\n\n", r.Kind, oldPath, newPath)
	fmt.Fprintf(w, "%-36s %14s %14s %8s  %s\n", "metric", "old", "new", "delta", "verdict")
	for _, m := range r.Rows {
		verdict := "ok"
		switch {
		case m.Regressed:
			verdict = fmt.Sprintf("REGRESSED (tol %+.0f%%)", tolSign(m)*m.Tol*100)
		case m.Better == higherBetter && m.delta() > 0,
			m.Better == lowerBetter && m.delta() < 0:
			verdict = "improved"
		}
		fmt.Fprintf(w, "%-36s %14.1f %14.1f %+7.1f%%  %s\n", m.Name, m.Old, m.New, m.delta()*100, verdict)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "\nVIOLATION: %s\n", v)
	}
	if r.failed() {
		fmt.Fprintln(w, "\nverdict: FAIL")
	} else {
		fmt.Fprintln(w, "\nverdict: pass")
	}
}

func tolSign(m row) float64 {
	if m.Better == higherBetter {
		return -1
	}
	return 1
}

// compare classifies both documents, extracts the comparable metric set,
// and applies the tolerances. The two files must be the same kind of
// result — diffing a saturation curve against a fixed-rate run is a
// category error, not a regression.
func compare(oldDoc, newDoc map[string]any, opts options) (*report, error) {
	oldKind := classify(oldDoc)
	newKind := classify(newDoc)
	if oldKind == "" || newKind == "" {
		return nil, fmt.Errorf("unrecognized benchmark document (want phi-load loadgen, saturation, or ingest JSON)")
	}
	if oldKind != newKind {
		return nil, fmt.Errorf("cannot diff a %s result against a %s result", newKind, oldKind)
	}
	rep := &report{Kind: oldKind}
	for _, spec := range metricSpecs(oldKind) {
		ov, okOld := num(oldDoc, spec.path...)
		nv, okNew := num(newDoc, spec.path...)
		if !okOld || !okNew {
			continue // metric absent on one side: nothing to gate
		}
		tol := opts.tol(spec.class)
		rep.Rows = append(rep.Rows, row{
			Name:      spec.name,
			Old:       ov,
			New:       nv,
			Better:    spec.better,
			Tol:       tol,
			Regressed: regressed(ov, nv, spec.better, tol),
		})
	}
	if len(rep.Rows) == 0 {
		return nil, fmt.Errorf("no comparable metrics found in the two %s results", oldKind)
	}
	if opts.RequireKnee {
		if oldKind != "saturation" {
			return nil, fmt.Errorf("-require-knee only applies to saturation results (got %s)", oldKind)
		}
		if found, ok := boolAt(newDoc, "knee", "found"); !ok || !found {
			rep.Violations = append(rep.Violations, "candidate found no saturation knee (-require-knee)")
		}
	}
	if opts.MinRate > 0 {
		name, path := headlineRate(oldKind)
		if nv, ok := num(newDoc, path...); ok && nv < opts.MinRate {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("candidate %s %.1f is below the -min-rate floor %.1f", name, nv, opts.MinRate))
		}
	}
	return rep, nil
}

// regressed applies the tolerance in the metric's bad direction.
func regressed(old, new float64, better direction, tol float64) bool {
	if better == higherBetter {
		return new < old*(1-tol)
	}
	return new > old*(1+tol)
}

// classify names the document kind by its distinguishing fields.
func classify(doc map[string]any) string {
	if _, ok := doc["knee"]; ok {
		return "saturation"
	}
	if _, ok := doc["lifecycles_per_sec"]; ok {
		return "loadgen"
	}
	if _, ok := doc["sync"]; ok {
		if b, _ := doc["benchmark"].(string); b == "ingest" {
			return "ingest"
		}
	}
	return ""
}

// metricSpec is one gated metric: a JSON path, its good direction, and
// the tolerance class whose flag bounds its bad-direction movement.
type metricSpec struct {
	name   string
	path   []string
	better direction
	class  toleranceClass
}

// metricSpecs lists what gets gated per document kind. Paths that are
// absent on either side are skipped, so older baselines keep working as
// results grow fields.
func metricSpecs(kind string) []metricSpec {
	switch kind {
	case "saturation":
		return []metricSpec{
			{"max_sustainable_rate", []string{"max_sustainable_rate"}, higherBetter, rateClass},
			{"knee.p99_us", []string{"knee", "p99_us"}, lowerBetter, latencyClass},
			{"knee.baseline_p99_us", []string{"knee", "baseline_p99_us"}, lowerBetter, latencyClass},
			// Efficiency attribution at the knee: heap allocations per
			// lifecycle may not rise, and the frames-per-write-syscall
			// batching ratio may not fall, past -tol-eff. Both are
			// near-deterministic per build, so the class default is tight.
			{"knee.allocs_per_op", []string{"knee", "allocs_per_op"}, lowerBetter, effClass},
			{"knee.frames_per_syscall", []string{"knee", "frames_per_syscall"}, higherBetter, effClass},
			// Context quality at the knee (present when the ramp ran with
			// -context-url): the fraction of knee-step lookups served from
			// fresh evidence may not fall, and the paired-RTT p90 absolute
			// error may not rise, past -tol-quality. Absent on either side
			// (pre-quality baselines, ramps run without the endpoint) they
			// are skipped like any other missing metric.
			{"knee.coverage_fresh_frac", []string{"knee", "coverage_fresh_frac"}, higherBetter, qualityClass},
			{"knee.rtt_abs_err_p90", []string{"knee", "rtt_abs_err_p90"}, lowerBetter, qualityClass},
		}
	case "loadgen":
		return []metricSpec{
			{"lifecycles_per_sec", []string{"lifecycles_per_sec"}, higherBetter, rateClass},
			{"errors_total", []string{"errors_total"}, lowerBetter, latencyClass},
			{"ops.lookup.p99_us", []string{"ops", "lookup", "p99_us"}, lowerBetter, latencyClass},
			{"ops.report_start.p99_us", []string{"ops", "report_start", "p99_us"}, lowerBetter, latencyClass},
			{"ops.report_end.p99_us", []string{"ops", "report_end", "p99_us"}, lowerBetter, latencyClass},
			{"ops.lifecycle.p99_us", []string{"ops", "lifecycle", "p99_us"}, lowerBetter, latencyClass},
		}
	case "ingest":
		return []metricSpec{
			{"sync.records_per_sec", []string{"sync", "records_per_sec"}, higherBetter, rateClass},
			{"sync.ns_per_record", []string{"sync", "ns_per_record"}, lowerBetter, latencyClass},
			{"sync.allocs_per_record", []string{"sync", "allocs_per_record"}, lowerBetter, effClass},
		}
	}
	return nil
}

// headlineRate names the kind's single most important throughput metric
// (the -min-rate target).
func headlineRate(kind string) (string, []string) {
	switch kind {
	case "saturation":
		return "max_sustainable_rate", []string{"max_sustainable_rate"}
	case "loadgen":
		return "lifecycles_per_sec", []string{"lifecycles_per_sec"}
	default:
		return "sync.records_per_sec", []string{"sync", "records_per_sec"}
	}
}

// num walks a path of object keys and returns the float at the end.
func num(doc map[string]any, path ...string) (float64, bool) {
	cur := any(doc)
	for _, key := range path {
		m, ok := cur.(map[string]any)
		if !ok {
			return 0, false
		}
		cur, ok = m[key]
		if !ok {
			return 0, false
		}
	}
	f, ok := cur.(float64)
	return f, ok
}

// boolAt walks a path of object keys and returns the bool at the end.
func boolAt(doc map[string]any, path ...string) (bool, bool) {
	cur := any(doc)
	for _, key := range path {
		m, ok := cur.(map[string]any)
		if !ok {
			return false, false
		}
		cur, ok = m[key]
		if !ok {
			return false, false
		}
	}
	b, ok := cur.(bool)
	return b, ok
}
