package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// doc parses a JSON literal into the generic document form main uses,
// so tests exercise exactly the float64/bool types real files decode to.
func doc(t *testing.T, s string) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(s), &m); err != nil {
		t.Fatalf("bad test doc: %v", err)
	}
	return m
}

const satFixture = `{
	"tool": "phi-load",
	"max_sustainable_rate": 20000,
	"knee": {"found": true, "rate": 20000, "p99_us": 1500, "baseline_p99_us": 900,
		"allocs_per_op": 40, "frames_per_syscall": 0.5,
		"coverage_fresh_frac": 0.95, "rtt_abs_err_p90": 2500}
}`

const loadFixture = `{
	"tool": "phi-load",
	"lifecycles_per_sec": 2002,
	"errors_total": 0,
	"ops": {
		"lookup": {"p99_us": 1900},
		"report_start": {"p99_us": 1800},
		"report_end": {"p99_us": 1850},
		"lifecycle": {"p99_us": 5200}
	}
}`

func defaults() options {
	return options{TolRate: 0.10, TolLatency: 0.25, TolEff: 0.25, TolQuality: 0.5}
}

func TestIdenticalDocsPass(t *testing.T) {
	for _, s := range []string{satFixture, loadFixture} {
		rep, err := compare(doc(t, s), doc(t, s), defaults())
		if err != nil {
			t.Fatal(err)
		}
		if rep.failed() {
			t.Fatalf("identical documents reported as regression: %+v", rep.Rows)
		}
	}
}

func TestRateRegressionFails(t *testing.T) {
	cand := doc(t, satFixture)
	cand["max_sustainable_rate"] = 15000.0 // -25% against a 10% tolerance
	rep, err := compare(doc(t, satFixture), cand, defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.failed() {
		t.Fatal("25% throughput drop passed a 10% gate")
	}
}

func TestRateDropWithinTolerancePasses(t *testing.T) {
	cand := doc(t, satFixture)
	cand["max_sustainable_rate"] = 18500.0 // -7.5%
	rep, err := compare(doc(t, satFixture), cand, defaults())
	if err != nil {
		t.Fatal(err)
	}
	if rep.failed() {
		t.Fatal("7.5% drop failed a 10% gate")
	}
}

func TestLatencyRegressionFails(t *testing.T) {
	cand := doc(t, loadFixture)
	cand["ops"].(map[string]any)["lookup"].(map[string]any)["p99_us"] = 3000.0 // +58%
	rep, err := compare(doc(t, loadFixture), cand, defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.failed() {
		t.Fatal("58% p99 rise passed a 25% gate")
	}
}

func TestImprovementNeverFails(t *testing.T) {
	cand := doc(t, loadFixture)
	cand["lifecycles_per_sec"] = 50000.0
	cand["ops"].(map[string]any)["lookup"].(map[string]any)["p99_us"] = 100.0
	rep, err := compare(doc(t, loadFixture), cand, defaults())
	if err != nil {
		t.Fatal(err)
	}
	if rep.failed() {
		t.Fatal("improvement reported as regression")
	}
}

func TestErrorGrowthFromZeroFails(t *testing.T) {
	cand := doc(t, loadFixture)
	cand["errors_total"] = 7.0
	rep, err := compare(doc(t, loadFixture), cand, defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.failed() {
		t.Fatal("errors appearing from zero passed the gate")
	}
}

func TestEfficiencyRegressionFails(t *testing.T) {
	// Injected efficiency regressions: allocs/op blowing up and the
	// frames-per-syscall batching ratio collapsing must each trip the
	// -tol-eff gate even when rate and latency are untouched.
	alloc := doc(t, satFixture)
	alloc["knee"].(map[string]any)["allocs_per_op"] = 400.0 // 10x
	rep, err := compare(doc(t, satFixture), alloc, defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.failed() {
		t.Fatal("10x allocs/op passed a 25% efficiency gate")
	}

	batch := doc(t, satFixture)
	batch["knee"].(map[string]any)["frames_per_syscall"] = 0.25 // halved
	rep, err = compare(doc(t, satFixture), batch, defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.failed() {
		t.Fatal("halved frames/syscall passed a 25% efficiency gate")
	}
}

func TestEfficiencyWithinTolerancePasses(t *testing.T) {
	cand := doc(t, satFixture)
	cand["knee"].(map[string]any)["allocs_per_op"] = 44.0      // +10%
	cand["knee"].(map[string]any)["frames_per_syscall"] = 0.45 // -10%
	rep, err := compare(doc(t, satFixture), cand, defaults())
	if err != nil {
		t.Fatal(err)
	}
	if rep.failed() {
		t.Fatalf("10%% efficiency drift failed a 25%% gate: %+v", rep.Rows)
	}
}

func TestEfficiencyUsesOwnTolerance(t *testing.T) {
	// A tight -tol-eff must bite without the latency tolerance moving:
	// the classes are independent knobs.
	opts := defaults()
	opts.TolEff = 0.01
	cand := doc(t, satFixture)
	cand["knee"].(map[string]any)["allocs_per_op"] = 44.0 // +10% vs 1% eff tol
	rep, err := compare(doc(t, satFixture), cand, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.failed() {
		t.Fatal("10% allocs/op rise passed a 1% -tol-eff gate")
	}
	for _, r := range rep.Rows {
		if r.Name == "knee.p99_us" && r.Regressed {
			t.Fatal("latency metric judged by the efficiency tolerance")
		}
	}
}

func TestQualityRegressionFails(t *testing.T) {
	// Injected context-quality regressions: coverage collapsing to zero
	// (the classic wiring break — quality hooks disconnected) and the
	// paired-RTT error blowing up must each trip the -tol-quality gate
	// even with rate, latency, and efficiency untouched.
	cov := doc(t, satFixture)
	cov["knee"].(map[string]any)["coverage_fresh_frac"] = 0.0
	rep, err := compare(doc(t, satFixture), cov, defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.failed() {
		t.Fatal("zeroed coverage fresh fraction passed a 50% quality gate")
	}

	acc := doc(t, satFixture)
	acc["knee"].(map[string]any)["rtt_abs_err_p90"] = 25000.0 // 10x
	rep, err = compare(doc(t, satFixture), acc, defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.failed() {
		t.Fatal("10x RTT p90 error passed a 50% quality gate")
	}
}

func TestQualityUsesOwnToleranceAndSkipsWhenAbsent(t *testing.T) {
	// The class is an independent knob: a tight -tol-quality must bite
	// without the efficiency tolerance moving.
	opts := defaults()
	opts.TolQuality = 0.01
	cand := doc(t, satFixture)
	cand["knee"].(map[string]any)["coverage_fresh_frac"] = 0.85 // -10.5% vs 1% tol
	rep, err := compare(doc(t, satFixture), cand, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.failed() {
		t.Fatal("10% coverage drop passed a 1% -tol-quality gate")
	}
	for _, r := range rep.Rows {
		if r.Name == "knee.allocs_per_op" && r.Regressed {
			t.Fatal("efficiency metric judged by the quality tolerance")
		}
	}

	// Pre-quality baselines (no coverage fields) keep gating everything
	// else: the quality rows are skipped, not failed.
	old := doc(t, satFixture)
	delete(old["knee"].(map[string]any), "coverage_fresh_frac")
	delete(old["knee"].(map[string]any), "rtt_abs_err_p90")
	rep, err = compare(old, doc(t, satFixture), defaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.Name == "knee.coverage_fresh_frac" || r.Name == "knee.rtt_abs_err_p90" {
			t.Fatalf("gated a quality metric absent from the baseline: %s", r.Name)
		}
	}
	if rep.failed() {
		t.Fatal("absent quality metrics caused a failure")
	}
}

func TestRequireKnee(t *testing.T) {
	opts := defaults()
	opts.RequireKnee = true
	cand := doc(t, satFixture)
	cand["knee"].(map[string]any)["found"] = false
	rep, err := compare(doc(t, satFixture), cand, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.failed() || len(rep.Violations) == 0 {
		t.Fatal("-require-knee did not fail a knee-less candidate")
	}
	// And on a loadgen doc it is a usage error, not a silent pass.
	if _, err := compare(doc(t, loadFixture), doc(t, loadFixture), opts); err == nil {
		t.Fatal("-require-knee accepted a non-saturation document")
	}
}

func TestMinRateFloor(t *testing.T) {
	opts := defaults()
	opts.MinRate = 25000
	rep, err := compare(doc(t, satFixture), doc(t, satFixture), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.failed() {
		t.Fatal("candidate below the -min-rate floor passed")
	}
}

func TestKindMismatchIsAnError(t *testing.T) {
	if _, err := compare(doc(t, satFixture), doc(t, loadFixture), defaults()); err == nil {
		t.Fatal("diffing saturation against loadgen did not error")
	}
	if _, err := compare(doc(t, `{"what": 1}`), doc(t, satFixture), defaults()); err == nil {
		t.Fatal("unrecognized document did not error")
	}
}

func TestMissingMetricOnOneSideIsSkipped(t *testing.T) {
	// Baselines grown before ops.lifecycle existed must keep gating the
	// metrics they do have.
	old := doc(t, loadFixture)
	delete(old["ops"].(map[string]any), "lifecycle")
	rep, err := compare(old, doc(t, loadFixture), defaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.Name == "ops.lifecycle.p99_us" {
			t.Fatalf("gated a metric absent from the baseline: %s", r.Name)
		}
	}
	if rep.failed() {
		t.Fatal("skipped metric caused a failure")
	}
}

func TestReportWriteSmoke(t *testing.T) {
	cand := doc(t, satFixture)
	cand["max_sustainable_rate"] = 10000.0
	rep, err := compare(doc(t, satFixture), cand, defaults())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	rep.write(&b, "old.json", "new.json")
	out := b.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "verdict: FAIL") {
		t.Fatalf("report text missing regression verdict:\n%s", out)
	}
}
