// Command phi-bench-diff compares two BENCH_*.json files produced by
// phi-load (loadgen, saturation, or ingest results) metric by metric
// and exits non-zero when the new file regresses past per-metric
// tolerances — the executable contract that turns committed benchmark
// baselines into a CI gate instead of documentation.
//
// Throughput metrics (rates) regress when the new value falls more than
// -tol-rate below the old; latency metrics regress when the new value
// climbs more than -tol-latency above the old; per-op efficiency
// metrics (allocs/op, frames per write syscall) regress when they
// worsen past -tol-eff; context-quality metrics (knee coverage fresh
// fraction, paired-RTT p90 error) regress when they worsen past
// -tol-quality. Error counts regress on any increase beyond the
// latency tolerance. Improvements are reported but never fail the run.
//
// Usage:
//
//	phi-bench-diff -old BENCH_saturation.json -new /tmp/sat.json \
//	    -tol-rate 0.25 -tol-latency 1.0 -require-knee -min-rate 2000
//
// Exit status: 0 all metrics within tolerance, 1 regression (or a
// -require-knee / -min-rate violation), 2 usage or file errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		oldPath     = flag.String("old", "", "baseline BENCH_*.json")
		newPath     = flag.String("new", "", "candidate BENCH_*.json")
		tolRate     = flag.Float64("tol-rate", 0.10, "allowed fractional drop in throughput metrics (0.10 = -10%)")
		tolLatency  = flag.Float64("tol-latency", 0.25, "allowed fractional rise in latency metrics (0.25 = +25%)")
		tolEff      = flag.Float64("tol-eff", 0.25, "allowed fractional worsening in per-op efficiency metrics (allocs/op, frames/syscall)")
		tolQuality  = flag.Float64("tol-quality", 0.5, "allowed fractional worsening in context-quality metrics (coverage fresh fraction, RTT p90 error)")
		requireKnee = flag.Bool("require-knee", false, "fail unless the candidate saturation result found a knee")
		minRate     = flag.Float64("min-rate", 0, "fail if the candidate's headline rate is below this floor (0 = off)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "phi-bench-diff: -old and -new are both required")
		os.Exit(2)
	}
	if *tolRate < 0 || *tolLatency < 0 || *tolEff < 0 || *tolQuality < 0 {
		fmt.Fprintln(os.Stderr, "phi-bench-diff: tolerances must be >= 0")
		os.Exit(2)
	}
	oldDoc, err := loadDoc(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phi-bench-diff:", err)
		os.Exit(2)
	}
	newDoc, err := loadDoc(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phi-bench-diff:", err)
		os.Exit(2)
	}

	rep, err := compare(oldDoc, newDoc, options{
		TolRate:     *tolRate,
		TolLatency:  *tolLatency,
		TolEff:      *tolEff,
		TolQuality:  *tolQuality,
		RequireKnee: *requireKnee,
		MinRate:     *minRate,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "phi-bench-diff:", err)
		os.Exit(2)
	}
	rep.write(os.Stdout, *oldPath, *newPath)
	if rep.failed() {
		os.Exit(1)
	}
}

func loadDoc(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}
