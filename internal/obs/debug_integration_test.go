package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestObservatoryEndpointsOnTelemetryMux mounts the real sampler and
// ring handlers the way the daemons do and asserts the /debug/ index
// advertises them and both serve real content — the integration half of
// telemetry's index-completeness invariant.
func TestObservatoryEndpointsOnTelemetryMux(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewSampler(SamplerConfig{Interval: time.Hour, Registry: reg})
	ring, err := NewProfileRing(RingConfig{Dir: t.TempDir(), CPUSeconds: 0.05, MinGap: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := telemetry.Serve("127.0.0.1:0", reg,
		telemetry.Endpoint{Path: "/debug/resources", Handler: s.Handler(), Desc: "runtime + wire resource snapshot"},
		telemetry.Endpoint{Path: "/debug/prof/ring", Handler: ring.Handler(), Desc: "rolling CPU/heap profile ring"},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	base := "http://" + ms.Addr().String()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	idx := get("/debug/?format=text")
	for _, want := range []string{"/debug/resources", "/debug/prof/ring"} {
		if !strings.Contains(idx, want) {
			t.Errorf("/debug/ index missing %s:\n%s", want, idx)
		}
	}
	if body := get("/debug/resources"); !strings.Contains(body, "goroutines") {
		t.Errorf("/debug/resources body:\n%s", body)
	}
	if body := get("/debug/prof/ring"); !strings.Contains(body, "captures") {
		t.Errorf("/debug/prof/ring body:\n%s", body)
	}
}
