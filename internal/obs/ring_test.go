package obs

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func newTestRing(t *testing.T, max int) *ProfileRing {
	t.Helper()
	r, err := NewProfileRing(RingConfig{
		Dir:        t.TempDir(),
		Max:        max,
		CPUSeconds: 0.05,
		MinGap:     time.Nanosecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingTriggerAndEvict(t *testing.T) {
	r := newTestRing(t, 2)
	for i, reason := range []string{"first", "second", "third"} {
		c, err := r.Trigger(reason)
		if err != nil {
			t.Fatalf("trigger %d: %v", i, err)
		}
		if c.HeapFile == "" {
			t.Fatalf("trigger %d: no heap profile: %+v", i, c)
		}
	}
	caps := r.Captures()
	if len(caps) != 2 {
		t.Fatalf("retained %d captures, want 2 (evicted oldest)", len(caps))
	}
	if caps[0].Reason != "second" || caps[1].Reason != "third" {
		t.Fatalf("retained wrong captures: %+v", caps)
	}
	// The evicted capture's files must be gone from disk.
	left, _ := filepath.Glob(filepath.Join(r.Dir(), "ring-000000-*"))
	if len(left) != 0 {
		t.Fatalf("evicted files still on disk: %v", left)
	}
}

func TestRingRateLimit(t *testing.T) {
	r, err := NewProfileRing(RingConfig{Dir: t.TempDir(), CPUSeconds: 0.05, MinGap: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Trigger("one"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Trigger("two"); err == nil || !strings.Contains(err.Error(), "rate-limited") {
		t.Fatalf("second trigger err = %v, want rate-limited", err)
	}
}

func TestRingAdoptsExisting(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"ring-000004-old.cpu.pprof", "ring-000004-old.heap.pprof"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewProfileRing(RingConfig{Dir: dir, CPUSeconds: 0.05, MinGap: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	caps := r.Captures()
	if len(caps) != 1 || caps[0].Seq != 4 || caps[0].Reason != "old" {
		t.Fatalf("adopted = %+v, want one capture seq=4 reason=old", caps)
	}
	c, err := r.Trigger("fresh")
	if err != nil {
		t.Fatal(err)
	}
	if c.Seq != 5 {
		t.Fatalf("next seq = %d, want 5 (continues after adopted)", c.Seq)
	}
}

func TestRingHandler(t *testing.T) {
	r := newTestRing(t, 4)

	// op=capture triggers synchronously and returns the capture.
	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/prof/ring?op=capture&reason=Knee+Hold", nil))
	if rr.Code != 200 {
		t.Fatalf("capture status = %d: %s", rr.Code, rr.Body.String())
	}
	var c Capture
	if err := json.Unmarshal(rr.Body.Bytes(), &c); err != nil {
		t.Fatal(err)
	}
	if c.Reason != "knee-hold" {
		t.Fatalf("reason = %q, want sanitized knee-hold", c.Reason)
	}

	// Index lists it.
	rr = httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/prof/ring", nil))
	if !strings.Contains(rr.Body.String(), "knee-hold") {
		t.Fatalf("index missing capture:\n%s", rr.Body.String())
	}
	rr = httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/prof/ring?format=text", nil))
	if !strings.Contains(rr.Body.String(), "profile ring:") {
		t.Fatalf("text index:\n%s", rr.Body.String())
	}

	// Download a retained file; refuse unknown names.
	rr = httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/prof/ring?get="+c.HeapFile, nil))
	if rr.Code != 200 || rr.Body.Len() == 0 {
		t.Fatalf("download status = %d, len %d", rr.Code, rr.Body.Len())
	}
	rr = httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/prof/ring?get=../../etc/passwd", nil))
	if rr.Code != 404 {
		t.Fatalf("traversal status = %d, want 404", rr.Code)
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *ProfileRing
	r.TriggerAsync("x")
	r.Start()()
	if caps := r.Captures(); caps != nil {
		t.Fatalf("nil captures = %v", caps)
	}
	if _, err := r.Trigger("x"); err == nil {
		t.Fatal("nil Trigger should error")
	}
	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/prof/ring", nil))
	if rr.Code != 404 {
		t.Fatalf("nil handler status = %d", rr.Code)
	}
}

func TestSanitizeReason(t *testing.T) {
	cases := map[string]string{
		"":                       "manual",
		"Knee Hold":              "knee-hold",
		"anomaly svc/isp":        "anomaly-svc-isp",
		"---":                    "manual",
		strings.Repeat("a", 100): strings.Repeat("a", 40),
	}
	for in, want := range cases {
		if got := sanitizeReason(in); got != want {
			t.Errorf("sanitizeReason(%q) = %q, want %q", in, got, want)
		}
	}
}
