package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// Handler serves the sampler's latest snapshot at /debug/resources:
//
//	GET /debug/resources              JSON ResourceSnapshot
//	GET /debug/resources?format=text  aligned human-readable summary
//
// Nil-safe: a nil sampler answers with a "sampler off" placeholder so
// the endpoint can be mounted unconditionally.
func (s *Sampler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if s == nil {
			if req.URL.Query().Get("format") == "text" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				fmt.Fprintln(w, "resource sampler off")
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"sampler":"off"}`)
			return
		}
		snap := s.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeResourcesText(w, snap)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}

func writeResourcesText(w http.ResponseWriter, s ResourceSnapshot) {
	fmt.Fprintf(w, "resources @ %s  (up %.1fs, %s, %d cpu, sampling every %.0fs)\n",
		s.At, s.UptimeS, s.GoVersion, s.NumCPU, s.IntervalS)
	fmt.Fprintf(w, "  goroutines     %d\n", s.Goroutines)
	fmt.Fprintf(w, "  heap live      %d bytes in %d objects\n", s.HeapLiveBytes, s.HeapObjects)
	fmt.Fprintf(w, "  alloc rate     %.0f objs/s, %.0f bytes/s (last interval)\n", s.AllocsPerSec, s.AllocBytesPerSec)
	fmt.Fprintf(w, "  gc             %d cycles; pause p50 %.3gs p99 %.3gs max %.3gs (%d pauses)\n",
		s.GCCycles, s.GCPause.P50, s.GCPause.P99, s.GCPause.Max, s.GCPause.Count)
	fmt.Fprintf(w, "  sched latency  p50 %.3gs p99 %.3gs max %.3gs (%d samples)\n",
		s.SchedLatency.P50, s.SchedLatency.P99, s.SchedLatency.Max, s.SchedLatency.Count)
	fmt.Fprintf(w, "  mutex wait     %.3fs total\n", s.MutexWaitSeconds)
	if len(s.Wire) > 0 {
		names := make([]string, 0, len(s.Wire))
		for n := range s.Wire {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			ws := s.Wire[n]
			fmt.Fprintf(w, "  wire[%s]  frames r/w %d/%d  syscalls r/w %d/%d  bytes r/w %d/%d  frames/wr-syscall %.3f  bytes/wr-syscall %.1f\n",
				n, ws.FramesRead, ws.FramesWritten, ws.ReadSyscalls, ws.WriteSyscalls,
				ws.BytesRead, ws.BytesWritten, ws.FramesPerWriteSyscall, ws.BytesPerWriteSyscall)
		}
	}
}
