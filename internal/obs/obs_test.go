package obs

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestWireCountersNilSafe(t *testing.T) {
	var w *WireCounters
	w.FrameRead()
	w.FrameWritten()
	if s := w.Snapshot(); s != (WireSnapshot{}) {
		t.Fatalf("nil snapshot = %+v, want zero", s)
	}
	if got := CountConn(nil, nil); got != nil {
		t.Fatalf("CountConn(nil, nil) = %v, want nil", got)
	}
	w.Publish(nil, "x")() // no-op collect
}

func TestCountingConn(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	w := NewWireCounters()
	wrapped := CountConn(c1, w)
	defer wrapped.Close()

	go func() {
		buf := make([]byte, 16)
		c2.Read(buf)
		c2.Write([]byte("pong"))
	}()

	if _, err := wrapped.Write([]byte("ping!")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := wrapped.Read(buf); err != nil {
		t.Fatal(err)
	}
	w.FrameWritten()
	w.FrameRead()

	s := w.Snapshot()
	if s.WriteSyscalls != 1 || s.BytesWritten != 5 {
		t.Errorf("writes: got %d calls / %d bytes, want 1/5", s.WriteSyscalls, s.BytesWritten)
	}
	if s.ReadSyscalls != 1 || s.BytesRead != 4 {
		t.Errorf("reads: got %d calls / %d bytes, want 1/4", s.ReadSyscalls, s.BytesRead)
	}
	if s.FramesPerWriteSyscall != 1.0 {
		t.Errorf("frames/write-syscall = %v, want 1.0", s.FramesPerWriteSyscall)
	}
	if s.BytesPerWriteSyscall != 5.0 {
		t.Errorf("bytes/write-syscall = %v, want 5.0", s.BytesPerWriteSyscall)
	}
}

func TestWireSnapshotSub(t *testing.T) {
	w := NewWireCounters()
	w.WriteCalls.Add(10)
	w.FramesWritten.Add(5)
	before := w.Snapshot()
	w.WriteCalls.Add(4)
	w.FramesWritten.Add(8)
	d := w.Snapshot().Sub(before)
	if d.WriteSyscalls != 4 || d.FramesWritten != 8 {
		t.Fatalf("delta = %+v", d)
	}
	if d.FramesPerWriteSyscall != 2.0 {
		t.Fatalf("delta ratio = %v, want 2.0 (recomputed over the delta)", d.FramesPerWriteSyscall)
	}
}

func TestWirePublish(t *testing.T) {
	reg := telemetry.NewRegistry()
	w := NewWireCounters()
	collect := w.Publish(reg, "test_wire")

	w.FramesWritten.Add(3)
	w.WriteCalls.Add(6)
	w.BytesWritten.Add(60)
	collect()
	w.FramesWritten.Add(1)
	w.WriteCalls.Add(2)
	collect() // deltas must accumulate, not double-count

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"test_wire_frames_written_total 4",
		"test_wire_write_syscalls_total 8",
		"test_wire_written_bytes_total 60",
		"test_wire_frames_per_write_syscall 0.5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q in:\n%s", want, body)
		}
	}
}

func TestSamplerSnapshot(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewSampler(SamplerConfig{Interval: 10 * time.Millisecond, Registry: reg})
	w := NewWireCounters()
	w.FramesWritten.Add(7)
	s.SetWire("server", w)
	collected := make(chan struct{}, 8)
	s.AddCollect(func() {
		select {
		case collected <- struct{}{}:
		default:
		}
	})
	stop := s.Start()
	defer stop()

	// Allocate a little so rates have something to see.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink

	select {
	case <-collected:
	case <-time.After(2 * time.Second):
		t.Fatal("collect hook never ran")
	}
	time.Sleep(25 * time.Millisecond)

	snap := s.Snapshot()
	if snap.Goroutines <= 0 {
		t.Errorf("goroutines = %d, want > 0", snap.Goroutines)
	}
	if snap.HeapLiveBytes == 0 || snap.TotalAllocObjs == 0 {
		t.Errorf("heap accounting empty: %+v", snap)
	}
	if snap.Wire["server"].FramesWritten != 7 {
		t.Errorf("wire snapshot = %+v, want frames_written 7", snap.Wire["server"])
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "phi_runtime_goroutines") {
		t.Error("phi_runtime_goroutines missing from exposition")
	}
}

func TestSamplerNilSafe(t *testing.T) {
	var s *Sampler
	s.SetWire("x", NewWireCounters())
	s.AddCollect(func() {})
	s.Start()()
	if snap := s.Snapshot(); snap.Goroutines != 0 {
		t.Fatalf("nil sampler snapshot = %+v", snap)
	}
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/resources", nil))
	if !strings.Contains(rr.Body.String(), "off") {
		t.Fatalf("nil handler body = %q", rr.Body.String())
	}
}

func TestResourcesHandler(t *testing.T) {
	s := NewSampler(SamplerConfig{Interval: time.Hour}) // on-demand sampling only
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/resources", nil))
	var snap ResourceSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON decode: %v\n%s", err, rr.Body.String())
	}
	if snap.GoVersion == "" || snap.NumCPU == 0 {
		t.Errorf("snapshot missing runtime identity: %+v", snap)
	}
	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/resources?format=text", nil))
	if !strings.Contains(rr.Body.String(), "goroutines") {
		t.Errorf("text form missing goroutines line:\n%s", rr.Body.String())
	}
}

func TestAllocCounts(t *testing.T) {
	obj1, b1 := AllocCounts()
	sink := make([][]byte, 0, 1000)
	for i := 0; i < 1000; i++ {
		sink = append(sink, make([]byte, 128))
	}
	_ = sink
	obj2, b2 := AllocCounts()
	if obj2 <= obj1 || b2 <= b1 {
		t.Fatalf("alloc counters did not advance: objs %d->%d bytes %d->%d", obj1, obj2, b1, b2)
	}
}

func TestHistQuantilesEmpty(t *testing.T) {
	if q := histQuantiles(nil, nil); q.Count != 0 {
		t.Fatalf("nil hist quantiles = %+v", q)
	}
}
