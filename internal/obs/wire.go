// Package obs is the resource-attribution layer: it makes *efficiency*
// a first-class observable next to latency. Three instruments share the
// package:
//
//   - WireCounters: all-atomic per-wire accounting (frames, conn-level
//     read/write calls, bytes) whose frames-per-write-call "batching
//     ratio" directly quantifies the syscall-amortization opportunity
//     on the serving path.
//   - Sampler: a periodic reader of runtime/metrics (GC pauses,
//     scheduler latency, allocation rates, goroutines, mutex wait)
//     exported as phi_runtime_* gauges and snapshotted at
//     /debug/resources.
//   - ProfileRing: a bounded on-disk ring of short CPU/heap captures,
//     triggered periodically, on demand, or by health anomalies and
//     knee detection, browsable at /debug/prof/ring.
//
// The paper's production stance is that measurement is on all the
// time, not attached for a profiling session; the cost discipline here
// matches the telemetry package's — atomics and nil-safe handles on
// every hot path, so the instruments measuring overhead cost (almost)
// nothing themselves.
package obs

import (
	"net"
	"sync/atomic"

	"repro/internal/telemetry"
)

// WireCounters attributes work on one wire endpoint (a phiwire client's
// connection pool, or a phiwire server across all its connections):
// protocol frames read and written, conn-level Read/Write calls (on an
// unbuffered TCP connection each is one read(2)/write(2) syscall), and
// bytes moved. All fields are atomics; every method is nil-safe, so an
// uninstrumented endpoint pays one nil check per touch.
type WireCounters struct {
	FramesRead    atomic.Uint64
	FramesWritten atomic.Uint64
	ReadCalls     atomic.Uint64
	WriteCalls    atomic.Uint64
	BytesRead     atomic.Uint64
	BytesWritten  atomic.Uint64
}

// NewWireCounters returns a zeroed counter set.
func NewWireCounters() *WireCounters { return &WireCounters{} }

// FrameRead bumps the frames-read counter (nil-safe).
func (w *WireCounters) FrameRead() {
	if w == nil {
		return
	}
	w.FramesRead.Add(1)
}

// FrameWritten bumps the frames-written counter (nil-safe).
func (w *WireCounters) FrameWritten() {
	if w == nil {
		return
	}
	w.FramesWritten.Add(1)
}

// WireSnapshot is a consistent-enough point-in-time read of the
// counters plus the derived per-syscall ratios. FramesPerWriteSyscall
// is the batching ratio: 0.5 means two write syscalls per frame (header
// + payload written separately), 1.0 means one write per frame, N > 1
// means N frames amortized per syscall — the pipelining headroom.
type WireSnapshot struct {
	FramesRead    uint64 `json:"frames_read"`
	FramesWritten uint64 `json:"frames_written"`
	ReadSyscalls  uint64 `json:"read_syscalls"`
	WriteSyscalls uint64 `json:"write_syscalls"`
	BytesRead     uint64 `json:"bytes_read"`
	BytesWritten  uint64 `json:"bytes_written"`

	FramesPerWriteSyscall float64 `json:"frames_per_write_syscall"`
	BytesPerWriteSyscall  float64 `json:"bytes_per_write_syscall"`
	BytesPerReadSyscall   float64 `json:"bytes_per_read_syscall"`
}

// Snapshot reads the counters and computes the ratios. Nil-safe (a nil
// receiver yields a zero snapshot).
func (w *WireCounters) Snapshot() WireSnapshot {
	if w == nil {
		return WireSnapshot{}
	}
	s := WireSnapshot{
		FramesRead:    w.FramesRead.Load(),
		FramesWritten: w.FramesWritten.Load(),
		ReadSyscalls:  w.ReadCalls.Load(),
		WriteSyscalls: w.WriteCalls.Load(),
		BytesRead:     w.BytesRead.Load(),
		BytesWritten:  w.BytesWritten.Load(),
	}
	s.derive()
	return s
}

// Sub returns the delta snapshot s - prev with ratios recomputed over
// the delta — the form a measurement window (a saturation ramp step)
// wants.
func (s WireSnapshot) Sub(prev WireSnapshot) WireSnapshot {
	d := WireSnapshot{
		FramesRead:    s.FramesRead - prev.FramesRead,
		FramesWritten: s.FramesWritten - prev.FramesWritten,
		ReadSyscalls:  s.ReadSyscalls - prev.ReadSyscalls,
		WriteSyscalls: s.WriteSyscalls - prev.WriteSyscalls,
		BytesRead:     s.BytesRead - prev.BytesRead,
		BytesWritten:  s.BytesWritten - prev.BytesWritten,
	}
	d.derive()
	return d
}

func (s *WireSnapshot) derive() {
	if s.WriteSyscalls > 0 {
		s.FramesPerWriteSyscall = float64(s.FramesWritten) / float64(s.WriteSyscalls)
		s.BytesPerWriteSyscall = float64(s.BytesWritten) / float64(s.WriteSyscalls)
	}
	if s.ReadSyscalls > 0 {
		s.BytesPerReadSyscall = float64(s.BytesRead) / float64(s.ReadSyscalls)
	}
}

// countingConn wraps a net.Conn, attributing every Read/Write call and
// its bytes to a WireCounters. On an unbuffered TCP conn each call maps
// to one syscall, so the call counters are the syscall attribution the
// batching ratio divides by.
type countingConn struct {
	net.Conn
	w *WireCounters
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.w.ReadCalls.Add(1)
	c.w.BytesRead.Add(uint64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.w.WriteCalls.Add(1)
	c.w.BytesWritten.Add(uint64(n))
	return n, err
}

// CountConn wraps conn so its Read/Write calls are attributed to w.
// With a nil w (or conn) the conn is returned unwrapped, so callers can
// wire unconditionally.
func CountConn(conn net.Conn, w *WireCounters) net.Conn {
	if w == nil || conn == nil {
		return conn
	}
	return countingConn{Conn: conn, w: w}
}

// Publish registers the counter set on reg under prefix (e.g.
// "phiwire_server_wire" yields phiwire_server_wire_frames_read_total
// ... plus the two ratio gauges) and returns a collect function that
// refreshes the registered series from the live atomics — hand it to
// Sampler.AddCollect so exposition tracks the wire at the sampling
// cadence. A nil registry returns a no-op collect.
func (w *WireCounters) Publish(reg *telemetry.Registry, prefix string) func() {
	if reg == nil || w == nil {
		return func() {}
	}
	var (
		framesRead    = reg.Counter(prefix+"_frames_read_total", "protocol frames read", nil)
		framesWritten = reg.Counter(prefix+"_frames_written_total", "protocol frames written", nil)
		readCalls     = reg.Counter(prefix+"_read_syscalls_total", "conn-level read calls (≈ read(2) syscalls)", nil)
		writeCalls    = reg.Counter(prefix+"_write_syscalls_total", "conn-level write calls (≈ write(2) syscalls)", nil)
		bytesRead     = reg.Counter(prefix+"_read_bytes_total", "bytes read off the wire", nil)
		bytesWritten  = reg.Counter(prefix+"_written_bytes_total", "bytes written to the wire", nil)
		framesPer     = reg.Gauge(prefix+"_frames_per_write_syscall", "batching ratio: frames written per write syscall (1/N syscalls per frame)", nil)
		bytesPer      = reg.Gauge(prefix+"_bytes_per_write_syscall", "mean payload per write syscall", nil)
	)
	var last WireSnapshot
	return func() {
		cur := w.Snapshot()
		d := cur.Sub(last)
		last = cur
		framesRead.Add(d.FramesRead)
		framesWritten.Add(d.FramesWritten)
		readCalls.Add(d.ReadSyscalls)
		writeCalls.Add(d.WriteSyscalls)
		bytesRead.Add(d.BytesRead)
		bytesWritten.Add(d.BytesWritten)
		framesPer.Set(cur.FramesPerWriteSyscall)
		bytesPer.Set(cur.BytesPerWriteSyscall)
	}
}
