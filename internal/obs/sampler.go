package obs

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// The runtime/metrics series the sampler reads each tick. One
// metrics.Read over this set costs on the order of a microsecond, so at
// the default 1 Hz cadence the sampler's duty cycle is ~1e-6 — the
// overhead budget DESIGN.md §15 commits to.
const (
	mAllocBytes   = "/gc/heap/allocs:bytes"
	mAllocObjects = "/gc/heap/allocs:objects"
	mHeapLive     = "/memory/classes/heap/objects:bytes"
	mHeapObjects  = "/gc/heap/objects:objects"
	mGoroutines   = "/sched/goroutines:goroutines"
	mGCCycles     = "/gc/cycles/total:gc-cycles"
	mMutexWait    = "/sync/mutex/wait/total:seconds"
	mGCPauses     = "/gc/pauses:seconds"
	mSchedLat     = "/sched/latencies:seconds"
)

// SamplerConfig configures a Sampler. The zero value is usable: 1s
// interval, no registry (snapshot-only).
type SamplerConfig struct {
	// Interval between samples; default 1s.
	Interval time.Duration
	// Registry, when non-nil, receives the phi_runtime_* gauge family.
	Registry *telemetry.Registry
}

// Quantiles summarizes one runtime histogram over the last sampling
// interval (delta, not process-lifetime cumulative — the operator wants
// "is GC hurting *now*").
type Quantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_s"`
	P90   float64 `json:"p90_s"`
	P99   float64 `json:"p99_s"`
	Max   float64 `json:"max_s"`
}

// ResourceSnapshot is what /debug/resources serves: the most recent
// sample of runtime health plus any attached wire counter sets.
type ResourceSnapshot struct {
	At        string  `json:"at"`
	UptimeS   float64 `json:"uptime_s"`
	IntervalS float64 `json:"interval_s"`
	GoVersion string  `json:"go_version"`
	NumCPU    int     `json:"num_cpu"`

	Goroutines       int64   `json:"goroutines"`
	HeapLiveBytes    uint64  `json:"heap_live_bytes"`
	HeapObjects      uint64  `json:"heap_objects"`
	TotalAllocBytes  uint64  `json:"total_alloc_bytes"`
	TotalAllocObjs   uint64  `json:"total_alloc_objects"`
	GCCycles         uint64  `json:"gc_cycles"`
	MutexWaitSeconds float64 `json:"mutex_wait_seconds"`

	// Rates over the last interval.
	AllocsPerSec     float64 `json:"allocs_per_sec"`
	AllocBytesPerSec float64 `json:"alloc_bytes_per_sec"`

	GCPause      Quantiles `json:"gc_pause"`
	SchedLatency Quantiles `json:"sched_latency"`

	// Wire holds named WireCounters snapshots (e.g. "server").
	Wire map[string]WireSnapshot `json:"wire,omitempty"`
}

// Sampler periodically reads runtime/metrics, publishes phi_runtime_*
// gauges, retains the latest ResourceSnapshot for /debug/resources, and
// runs registered collect hooks (e.g. WireCounters.Publish refreshers)
// at the same cadence. All methods are nil-safe.
type Sampler struct {
	cfg       SamplerConfig
	startedAt time.Time

	mu       sync.Mutex
	wires    []namedWire
	collects []func()
	prev     rawSample
	havePrev bool
	stopCh   chan struct{}
	stopOnce sync.Once

	snap atomic.Pointer[ResourceSnapshot]

	g struct {
		goroutines, heapLive, heapObjects     *telemetry.Gauge
		allocsPerSec, allocBytesPerSec        *telemetry.Gauge
		gcCycles, mutexWait                   *telemetry.Gauge
		gcPauseP50, gcPauseP99, gcPauseMax    *telemetry.Gauge
		schedLatP50, schedLatP99, schedLatMax *telemetry.Gauge
	}
}

type namedWire struct {
	name string
	w    *WireCounters
}

type rawSample struct {
	at          time.Time
	allocBytes  uint64
	allocObjs   uint64
	heapLive    uint64
	heapObjects uint64
	goroutines  int64
	gcCycles    uint64
	mutexWait   float64
	gcPauses    *metrics.Float64Histogram
	schedLat    *metrics.Float64Histogram
}

// NewSampler builds a sampler (not yet running; Start it, or rely on
// Snapshot's on-demand sampling).
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	s := &Sampler{cfg: cfg, startedAt: time.Now(), stopCh: make(chan struct{})}
	if reg := cfg.Registry; reg != nil {
		s.g.goroutines = reg.Gauge("phi_runtime_goroutines", "live goroutines", nil)
		s.g.heapLive = reg.Gauge("phi_runtime_heap_live_bytes", "bytes of live heap objects", nil)
		s.g.heapObjects = reg.Gauge("phi_runtime_heap_objects", "live heap objects", nil)
		s.g.allocsPerSec = reg.Gauge("phi_runtime_allocs_per_sec", "heap objects allocated per second (last interval)", nil)
		s.g.allocBytesPerSec = reg.Gauge("phi_runtime_alloc_bytes_per_sec", "heap bytes allocated per second (last interval)", nil)
		s.g.gcCycles = reg.Gauge("phi_runtime_gc_cycles_total", "completed GC cycles", nil)
		s.g.mutexWait = reg.Gauge("phi_runtime_mutex_wait_seconds_total", "cumulative time goroutines have blocked on mutexes", nil)
		s.g.gcPauseP50 = reg.Gauge("phi_runtime_gc_pause_p50_seconds", "median GC stop-the-world pause (last interval)", nil)
		s.g.gcPauseP99 = reg.Gauge("phi_runtime_gc_pause_p99_seconds", "p99 GC stop-the-world pause (last interval)", nil)
		s.g.gcPauseMax = reg.Gauge("phi_runtime_gc_pause_max_seconds", "max GC stop-the-world pause (last interval)", nil)
		s.g.schedLatP50 = reg.Gauge("phi_runtime_sched_latency_p50_seconds", "median goroutine scheduling latency (last interval)", nil)
		s.g.schedLatP99 = reg.Gauge("phi_runtime_sched_latency_p99_seconds", "p99 goroutine scheduling latency (last interval)", nil)
		s.g.schedLatMax = reg.Gauge("phi_runtime_sched_latency_max_seconds", "max goroutine scheduling latency (last interval)", nil)
	}
	return s
}

// SetWire attaches a named wire counter set; its snapshot is embedded in
// every ResourceSnapshot under that name.
func (s *Sampler) SetWire(name string, w *WireCounters) {
	if s == nil || w == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.wires {
		if s.wires[i].name == name {
			s.wires[i].w = w
			return
		}
	}
	s.wires = append(s.wires, namedWire{name, w})
}

// AddCollect registers fn to run after each sample — the hook
// WireCounters.Publish refreshers (and any other cheap periodic
// exposition work) hang off.
func (s *Sampler) AddCollect(fn func()) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.collects = append(s.collects, fn)
	s.mu.Unlock()
}

// Start launches the sampling loop and returns a stop function
// (idempotent). On a nil sampler it returns a no-op.
func (s *Sampler) Start() func() {
	if s == nil {
		return func() {}
	}
	s.sample() // prime so the first tick has a delta base
	go func() {
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.sample()
			case <-s.stopCh:
				return
			}
		}
	}()
	return func() { s.stopOnce.Do(func() { close(s.stopCh) }) }
}

// Snapshot returns the latest sample, taking one on demand if the loop
// has not produced one yet. Nil-safe (returns a zero snapshot).
func (s *Sampler) Snapshot() ResourceSnapshot {
	if s == nil {
		return ResourceSnapshot{}
	}
	if p := s.snap.Load(); p != nil {
		return *p
	}
	s.sample()
	if p := s.snap.Load(); p != nil {
		return *p
	}
	return ResourceSnapshot{}
}

// sample reads the runtime, computes interval deltas, publishes gauges,
// stores the snapshot, and runs collect hooks.
func (s *Sampler) sample() {
	s.mu.Lock()
	defer s.mu.Unlock()

	cur := readRaw()
	snap := ResourceSnapshot{
		At:               cur.at.UTC().Format(time.RFC3339Nano),
		UptimeS:          cur.at.Sub(s.startedAt).Seconds(),
		IntervalS:        s.cfg.Interval.Seconds(),
		GoVersion:        runtime.Version(),
		NumCPU:           runtime.NumCPU(),
		Goroutines:       cur.goroutines,
		HeapLiveBytes:    cur.heapLive,
		HeapObjects:      cur.heapObjects,
		TotalAllocBytes:  cur.allocBytes,
		TotalAllocObjs:   cur.allocObjs,
		GCCycles:         cur.gcCycles,
		MutexWaitSeconds: cur.mutexWait,
	}
	if s.havePrev {
		dt := cur.at.Sub(s.prev.at).Seconds()
		if dt > 0 {
			snap.AllocsPerSec = float64(cur.allocObjs-s.prev.allocObjs) / dt
			snap.AllocBytesPerSec = float64(cur.allocBytes-s.prev.allocBytes) / dt
		}
		snap.GCPause = histQuantiles(cur.gcPauses, s.prev.gcPauses)
		snap.SchedLatency = histQuantiles(cur.schedLat, s.prev.schedLat)
	}
	if len(s.wires) > 0 {
		snap.Wire = make(map[string]WireSnapshot, len(s.wires))
		for _, nw := range s.wires {
			snap.Wire[nw.name] = nw.w.Snapshot()
		}
	}
	s.prev, s.havePrev = cur, true
	s.snap.Store(&snap)

	s.g.goroutines.Set(float64(snap.Goroutines))
	s.g.heapLive.Set(float64(snap.HeapLiveBytes))
	s.g.heapObjects.Set(float64(snap.HeapObjects))
	s.g.allocsPerSec.Set(snap.AllocsPerSec)
	s.g.allocBytesPerSec.Set(snap.AllocBytesPerSec)
	s.g.gcCycles.Set(float64(snap.GCCycles))
	s.g.mutexWait.Set(snap.MutexWaitSeconds)
	s.g.gcPauseP50.Set(snap.GCPause.P50)
	s.g.gcPauseP99.Set(snap.GCPause.P99)
	s.g.gcPauseMax.Set(snap.GCPause.Max)
	s.g.schedLatP50.Set(snap.SchedLatency.P50)
	s.g.schedLatP99.Set(snap.SchedLatency.P99)
	s.g.schedLatMax.Set(snap.SchedLatency.Max)

	for _, fn := range s.collects {
		fn()
	}
}

// readRaw performs one batched runtime/metrics read.
func readRaw() rawSample {
	samples := []metrics.Sample{
		{Name: mAllocBytes},
		{Name: mAllocObjects},
		{Name: mHeapLive},
		{Name: mHeapObjects},
		{Name: mGoroutines},
		{Name: mGCCycles},
		{Name: mMutexWait},
		{Name: mGCPauses},
		{Name: mSchedLat},
	}
	metrics.Read(samples)
	r := rawSample{at: time.Now()}
	for _, sm := range samples {
		switch sm.Name {
		case mAllocBytes:
			r.allocBytes = u64(sm.Value)
		case mAllocObjects:
			r.allocObjs = u64(sm.Value)
		case mHeapLive:
			r.heapLive = u64(sm.Value)
		case mHeapObjects:
			r.heapObjects = u64(sm.Value)
		case mGoroutines:
			r.goroutines = int64(u64(sm.Value))
		case mGCCycles:
			r.gcCycles = u64(sm.Value)
		case mMutexWait:
			r.mutexWait = f64(sm.Value)
		case mGCPauses:
			r.gcPauses = cloneHist(sm.Value)
		case mSchedLat:
			r.schedLat = cloneHist(sm.Value)
		}
	}
	return r
}

func u64(v metrics.Value) uint64 {
	if v.Kind() == metrics.KindUint64 {
		return v.Uint64()
	}
	return 0
}

func f64(v metrics.Value) float64 {
	switch v.Kind() {
	case metrics.KindFloat64:
		return v.Float64()
	case metrics.KindUint64:
		return float64(v.Uint64())
	}
	return 0
}

// cloneHist copies a runtime histogram (the runtime reuses the buffers
// between Read calls, so a retained previous sample must own its data).
func cloneHist(v metrics.Value) *metrics.Float64Histogram {
	if v.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	h := v.Float64Histogram()
	if h == nil {
		return nil
	}
	return &metrics.Float64Histogram{
		Counts:  append([]uint64(nil), h.Counts...),
		Buckets: append([]float64(nil), h.Buckets...),
	}
}

// histQuantiles summarizes cur-prev (prev may be nil: cumulative).
// Quantile positions resolve to their bucket's upper bound (lower bound
// for the +Inf bucket), matching the histogram's resolution.
func histQuantiles(cur, prev *metrics.Float64Histogram) Quantiles {
	var q Quantiles
	if cur == nil {
		return q
	}
	n := len(cur.Counts)
	delta := make([]uint64, n)
	copy(delta, cur.Counts)
	if prev != nil && len(prev.Counts) == n {
		for i := range delta {
			delta[i] -= prev.Counts[i]
		}
	}
	var total uint64
	for _, c := range delta {
		total += c
	}
	q.Count = total
	if total == 0 {
		return q
	}
	edge := func(i int) float64 {
		// Buckets has len(Counts)+1 boundaries; bucket i spans
		// [Buckets[i], Buckets[i+1]).
		up := cur.Buckets[i+1]
		if up > 1e300 || up != up { // +Inf or NaN upper edge
			return cur.Buckets[i]
		}
		return up
	}
	at := func(p float64) float64 {
		target := uint64(p * float64(total))
		if target == 0 {
			target = 1
		}
		var cum uint64
		for i, c := range delta {
			cum += c
			if cum >= target {
				return edge(i)
			}
		}
		return edge(n - 1)
	}
	q.P50 = at(0.50)
	q.P90 = at(0.90)
	q.P99 = at(0.99)
	for i := n - 1; i >= 0; i-- {
		if delta[i] > 0 {
			q.Max = edge(i)
			break
		}
	}
	return q
}

// AllocCounts reads the process-lifetime heap allocation counters in one
// batched runtime/metrics read — the primitive a measurement window uses
// to compute allocs/op as a delta around its run.
func AllocCounts() (objects, bytes uint64) {
	samples := []metrics.Sample{{Name: mAllocObjects}, {Name: mAllocBytes}}
	metrics.Read(samples)
	return u64(samples[0].Value), u64(samples[1].Value)
}
