package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// RingConfig configures a ProfileRing. Zero values get defaults.
type RingConfig struct {
	// Dir holds the capture files; created if missing. Required.
	Dir string
	// Max is the number of captures retained (a capture is a CPU+heap
	// pair); oldest are evicted. Default 16.
	Max int
	// CPUSeconds is the CPU profile duration per capture. Default 1s.
	CPUSeconds float64
	// MinGap rate-limits triggers: a Trigger inside the gap since the
	// previous capture is refused. Default 30s.
	MinGap time.Duration
	// Every, when > 0, enables periodic background captures at that
	// cadence (reason "periodic") once Start is called.
	Every time.Duration
	// Logf receives one line per capture/eviction; nil discards.
	Logf func(format string, args ...any)
}

// Capture describes one retained profile pair.
type Capture struct {
	Seq      int    `json:"seq"`
	Reason   string `json:"reason"`
	At       string `json:"at"`
	CPUFile  string `json:"cpu_file,omitempty"`
	HeapFile string `json:"heap_file,omitempty"`
	Err      string `json:"err,omitempty"`
}

// ProfileRing is a bounded on-disk ring of short CPU+heap profile
// captures — the "flight recorder" half of the resource observatory.
// Captures are triggered periodically (RingConfig.Every), on demand
// (Trigger, or /debug/prof/ring?op=capture), or by hooks: health wires
// anomaly promotion to TriggerAsync, and the saturation ramp fires one
// at the knee. Retention is bounded by Max captures and triggers are
// rate-limited by MinGap, so an anomaly storm cannot fill the disk or
// turn the profiler into its own overload. All methods are nil-safe.
type ProfileRing struct {
	cfg RingConfig

	mu     sync.Mutex
	seq    int
	caps   []*Capture
	lastAt time.Time
	busy   bool

	stopCh   chan struct{}
	stopOnce sync.Once
}

// NewProfileRing creates the ring, making Dir and adopting any captures
// a previous process left there (so retention spans restarts).
func NewProfileRing(cfg RingConfig) (*ProfileRing, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: profile ring needs a directory")
	}
	if cfg.Max <= 0 {
		cfg.Max = 16
	}
	if cfg.CPUSeconds <= 0 {
		cfg.CPUSeconds = 1
	}
	if cfg.MinGap <= 0 {
		cfg.MinGap = 30 * time.Second
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	r := &ProfileRing{cfg: cfg, stopCh: make(chan struct{})}
	r.adoptExisting()
	return r, nil
}

// adoptExisting scans Dir for ring-*.pprof files from an earlier run and
// rebuilds the index, so eviction keeps working across restarts.
func (r *ProfileRing) adoptExisting() {
	matches, _ := filepath.Glob(filepath.Join(r.cfg.Dir, "ring-*.pprof"))
	bySeq := make(map[int]*Capture)
	for _, path := range matches {
		base := filepath.Base(path)
		// ring-<seq>-<reason>.<kind>.pprof
		parts := strings.SplitN(strings.TrimSuffix(base, ".pprof"), "-", 3)
		if len(parts) != 3 {
			continue
		}
		seq, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		rest := parts[2]
		kind := ""
		if i := strings.LastIndex(rest, "."); i >= 0 {
			kind = rest[i+1:]
			rest = rest[:i]
		}
		c := bySeq[seq]
		if c == nil {
			info, _ := os.Stat(path)
			at := ""
			if info != nil {
				at = info.ModTime().UTC().Format(time.RFC3339)
			}
			c = &Capture{Seq: seq, Reason: rest, At: at}
			bySeq[seq] = c
		}
		switch kind {
		case "cpu":
			c.CPUFile = base
		case "heap":
			c.HeapFile = base
		}
		if seq >= r.seq {
			r.seq = seq + 1
		}
	}
	for _, c := range bySeq {
		r.caps = append(r.caps, c)
	}
	sort.Slice(r.caps, func(i, j int) bool { return r.caps[i].Seq < r.caps[j].Seq })
	r.evictLocked()
}

// Start launches the periodic capture loop (if Every > 0) and returns a
// stop function. Nil-safe.
func (r *ProfileRing) Start() func() {
	if r == nil {
		return func() {}
	}
	if r.cfg.Every > 0 {
		go func() {
			t := time.NewTicker(r.cfg.Every)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if _, err := r.Trigger("periodic"); err != nil {
						r.logf("profile ring: periodic capture skipped: %v", err)
					}
				case <-r.stopCh:
					return
				}
			}
		}()
	}
	return func() { r.stopOnce.Do(func() { close(r.stopCh) }) }
}

// Trigger synchronously captures one CPU+heap pair (blocking for
// CPUSeconds) under the given reason. It refuses when rate-limited,
// when a capture is already in flight, or on a nil ring.
func (r *ProfileRing) Trigger(reason string) (*Capture, error) {
	if r == nil {
		return nil, fmt.Errorf("obs: profile ring off")
	}
	reason = sanitizeReason(reason)
	r.mu.Lock()
	if r.busy {
		r.mu.Unlock()
		return nil, fmt.Errorf("obs: capture already in progress")
	}
	if !r.lastAt.IsZero() && time.Since(r.lastAt) < r.cfg.MinGap {
		r.mu.Unlock()
		return nil, fmt.Errorf("obs: rate-limited (min gap %s)", r.cfg.MinGap)
	}
	r.busy = true
	seq := r.seq
	r.seq++
	r.mu.Unlock()

	c := &Capture{Seq: seq, Reason: reason, At: time.Now().UTC().Format(time.RFC3339)}
	var errs []string

	cpuBase := fmt.Sprintf("ring-%06d-%s.cpu.pprof", seq, reason)
	if f, err := os.Create(filepath.Join(r.cfg.Dir, cpuBase)); err != nil {
		errs = append(errs, err.Error())
	} else {
		// StartCPUProfile fails if any CPU profile (ours or a
		// /debug/pprof/profile fetch) is already running; the heap half
		// still proceeds.
		if err := pprof.StartCPUProfile(f); err != nil {
			errs = append(errs, err.Error())
			f.Close()
			os.Remove(f.Name())
		} else {
			time.Sleep(time.Duration(r.cfg.CPUSeconds * float64(time.Second)))
			pprof.StopCPUProfile()
			f.Close()
			c.CPUFile = cpuBase
		}
	}

	heapBase := fmt.Sprintf("ring-%06d-%s.heap.pprof", seq, reason)
	if f, err := os.Create(filepath.Join(r.cfg.Dir, heapBase)); err != nil {
		errs = append(errs, err.Error())
	} else {
		if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
			errs = append(errs, err.Error())
			f.Close()
			os.Remove(f.Name())
		} else {
			f.Close()
			c.HeapFile = heapBase
		}
	}
	c.Err = strings.Join(errs, "; ")

	r.mu.Lock()
	r.caps = append(r.caps, c)
	r.lastAt = time.Now()
	r.busy = false
	r.evictLocked()
	r.mu.Unlock()

	r.logf("profile ring: captured #%d reason=%s cpu=%q heap=%q err=%q", seq, reason, c.CPUFile, c.HeapFile, c.Err)
	if c.CPUFile == "" && c.HeapFile == "" {
		return c, fmt.Errorf("obs: capture #%d produced no profiles: %s", seq, c.Err)
	}
	return c, nil
}

// TriggerAsync fires Trigger on its own goroutine, logging (not
// returning) refusals — the shape the health anomaly hook wants, since
// anomaly promotion must never block on a 1s CPU capture.
func (r *ProfileRing) TriggerAsync(reason string) {
	if r == nil {
		return
	}
	go func() {
		if _, err := r.Trigger(reason); err != nil {
			r.logf("profile ring: %s capture skipped: %v", reason, err)
		}
	}()
}

// evictLocked drops oldest captures beyond Max, deleting their files.
func (r *ProfileRing) evictLocked() {
	for len(r.caps) > r.cfg.Max {
		old := r.caps[0]
		r.caps = r.caps[1:]
		for _, base := range []string{old.CPUFile, old.HeapFile} {
			if base != "" {
				os.Remove(filepath.Join(r.cfg.Dir, base))
			}
		}
		r.logf("profile ring: evicted #%d (%s)", old.Seq, old.Reason)
	}
}

// Captures returns the retained captures, oldest first. Nil-safe.
func (r *ProfileRing) Captures() []Capture {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Capture, len(r.caps))
	for i, c := range r.caps {
		out[i] = *c
	}
	return out
}

// Dir returns the ring directory ("" on nil).
func (r *ProfileRing) Dir() string {
	if r == nil {
		return ""
	}
	return r.cfg.Dir
}

// Handler serves the ring at /debug/prof/ring:
//
//	GET ?                        JSON {dir, max, captures: [...]}
//	GET ?format=text             aligned table
//	GET ?op=capture&reason=R     trigger a capture now (blocks ~CPUSeconds)
//	GET ?get=<file>              download a retained profile
//
// Nil-safe: a nil ring answers "profile ring off".
func (r *ProfileRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "profile ring off", http.StatusNotFound)
			return
		}
		q := req.URL.Query()
		if name := q.Get("get"); name != "" {
			r.serveFile(w, req, name)
			return
		}
		if q.Get("op") == "capture" {
			reason := q.Get("reason")
			if reason == "" {
				reason = "manual"
			}
			c, err := r.Trigger(reason)
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(c)
			return
		}
		caps := r.Captures()
		if q.Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "profile ring: %d/%d captures in %s\n", len(caps), r.cfg.Max, r.cfg.Dir)
			for _, c := range caps {
				fmt.Fprintf(w, "  #%06d  %-20s  %s  cpu=%s heap=%s", c.Seq, c.Reason, c.At, orDash(c.CPUFile), orDash(c.HeapFile))
				if c.Err != "" {
					fmt.Fprintf(w, "  err=%s", c.Err)
				}
				fmt.Fprintln(w)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"dir": r.cfg.Dir, "max": r.cfg.Max, "captures": caps})
	})
}

// serveFile downloads a retained capture file. Only basenames that
// appear in the index are served — no path traversal surface.
func (r *ProfileRing) serveFile(w http.ResponseWriter, req *http.Request, name string) {
	r.mu.Lock()
	known := false
	for _, c := range r.caps {
		if name == c.CPUFile || name == c.HeapFile {
			known = true
			break
		}
	}
	r.mu.Unlock()
	if !known {
		http.Error(w, "unknown capture file", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, req, filepath.Join(r.cfg.Dir, name))
}

func (r *ProfileRing) logf(format string, args ...any) {
	if r != nil && r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// sanitizeReason maps a free-form reason into the filename-safe charset
// [a-z0-9-], truncated to 40 bytes.
func sanitizeReason(s string) string {
	if s == "" {
		return "manual"
	}
	var b strings.Builder
	for _, c := range strings.ToLower(s) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b.WriteRune(c)
		default:
			b.WriteByte('-')
		}
		if b.Len() >= 40 {
			break
		}
	}
	out := strings.Trim(b.String(), "-")
	if out == "" {
		return "manual"
	}
	return out
}
