// Package telemetry is a dependency-free metrics layer for the context
// server's data path: atomic counters and gauges, log-linear latency
// histograms with mergeable snapshots and quantile estimation, and
// Prometheus-text-format exposition over an opt-in HTTP endpoint.
//
// The design constraint comes straight from the paper: the whole point of
// the connection-boundary protocol is that per-connection overhead is one
// lookup and one report, so the instruments measuring that overhead must
// cost (almost) nothing themselves. Two rules follow:
//
//  1. The record path is lock-free — counters and histogram buckets are
//     plain atomics, no maps, no allocation, no formatting.
//  2. Every handle is nil-safe: methods on a nil *Counter, *Gauge, or
//     *Histogram are no-ops, so uninstrumented deployments pay exactly
//     one nil check per metric touch and need no conditional wiring.
//
// Metric names follow Prometheus conventions (snake_case, `_total` for
// counters, `_seconds` for latency histograms); constant labels are fixed
// at registration, so the hot path never renders a label.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; a nil *Counter ignores all writes.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns an unregistered counter (useful standalone, e.g. in
// a load generator that reads its own metrics instead of exposing them).
func NewCounter() *Counter { return new(Counter) }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. The zero value is ready to
// use; a nil *Gauge ignores all writes.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// NewGauge returns an unregistered gauge.
func NewGauge() *Gauge { return new(Gauge) }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Add adds d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(floatFrom(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFrom(g.bits.Load())
}

// Labels are constant key/value pairs attached to a metric at
// registration. They become part of the metric's identity.
type Labels map[string]string

// render serializes labels in sorted-key order as a Prometheus label
// block without braces: `k1="v1",k2="v2"`. Empty labels render as "".
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

// registered is one metric plus its exposition identity.
type registered struct {
	name   string
	help   string
	labels string // rendered, "" if none
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics for exposition. A nil *Registry is valid:
// all lookups return nil handles, which in turn no-op, so an entire
// subsystem is instrumented or not via one value.
//
// Registration is for the setup path (it takes a lock and renders
// labels); the returned handles are the hot-path interface.
type Registry struct {
	mu      sync.Mutex
	metrics []*registered
	index   map[string]*registered
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*registered)}
}

// lookup finds or stores a metric under name+labels, enforcing kind
// consistency. Re-registering the same name/labels/kind returns the
// existing metric, so wiring code may be run twice harmlessly.
func (r *Registry) lookup(name, help string, labels Labels, kind metricKind, make func() *registered) *registered {
	if err := checkName(name); err != nil {
		panic(err)
	}
	key := name + "{" + labels.render() + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as a different kind", key))
		}
		return m
	}
	m := make()
	m.name, m.help, m.labels, m.kind = name, help, labels.render(), kind
	r.metrics = append(r.metrics, m)
	r.index[key] = m
	return m
}

// Counter registers (or finds) a counter. A nil registry returns nil.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, labels, counterKind, func() *registered {
		return &registered{counter: NewCounter()}
	}).counter
}

// Gauge registers (or finds) a gauge. A nil registry returns nil.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, labels, gaugeKind, func() *registered {
		return &registered{gauge: NewGauge()}
	}).gauge
}

// Histogram registers (or finds) a latency histogram. A nil registry
// returns nil.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, labels, histogramKind, func() *registered {
		return &registered{hist: NewHistogram()}
	}).hist
}

// snapshot returns the registered metrics slice (copied under the lock;
// the metrics themselves are read via atomics).
func (r *Registry) snapshot() []*registered {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*registered, len(r.metrics))
	copy(out, r.metrics)
	return out
}

// checkName enforces the Prometheus metric-name charset.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("telemetry: empty metric name")
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return fmt.Errorf("telemetry: metric name %q starts with a digit", name)
			}
		default:
			return fmt.Errorf("telemetry: metric name %q contains %q", name, c)
		}
	}
	return nil
}
