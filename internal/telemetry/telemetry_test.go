package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	g := NewGauge()
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	h.Record(5)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil handles returned non-zero values")
	}
	if h.Snapshot().Count != 0 {
		t.Error("nil histogram snapshot not empty")
	}
	if r.Counter("x", "", nil) != nil || r.Gauge("x", "", nil) != nil || r.Histogram("x", "", nil) != nil {
		t.Error("nil registry returned non-nil metrics")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Errorf("nil registry write: %v", err)
	}
}

func TestRegistryIdempotentAndKindChecked(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("phi_test_total", "help", Labels{"shard": "0"})
	b := r.Counter("phi_test_total", "help", Labels{"shard": "0"})
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	if r.Counter("phi_test_total", "", Labels{"shard": "1"}) == a {
		t.Error("different labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("phi_test_total", "", Labels{"shard": "0"})
}

func TestBadMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lives", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "", nil)
		}()
	}
}

func TestConcurrentRecordAndExpose(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("phi_ops_total", "ops", nil)
	h := r.Histogram("phi_op_seconds", "latency", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Record(int64(w*1000 + i))
			}
		}(w)
	}
	// Expose concurrently with the writers; must not race or corrupt.
	for i := 0; i < 10; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Snapshot().Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Snapshot().Count)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("phi_lookups_total", "total lookups", nil).Add(7)
	r.Gauge("phi_paths", "live paths", Labels{"shard": "2"}).Set(3)
	h := r.Histogram("phi_lookup_seconds", "lookup latency", nil)
	h.Observe(1 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP phi_lookups_total total lookups",
		"# TYPE phi_lookups_total counter",
		"phi_lookups_total 7",
		"# TYPE phi_paths gauge",
		`phi_paths{shard="2"} 3`,
		"# TYPE phi_lookup_seconds histogram",
		`phi_lookup_seconds_bucket{le="+Inf"} 2`,
		"phi_lookup_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Bucket counts must be cumulative and end at the total.
	if !strings.Contains(out, "phi_lookup_seconds_bucket") {
		t.Fatalf("no bucket lines:\n%s", out)
	}
	// _sum in seconds: 3ms = 0.003, allow float formatting.
	if !strings.Contains(out, "phi_lookup_seconds_sum 0.003") {
		t.Errorf("sum not in seconds:\n%s", out)
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("phi_up_total", "", nil).Inc()
	ms, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", ms.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "phi_up_total 1") {
		t.Errorf("body = %s", body)
	}
}

func TestHistogramSnapshotSub(t *testing.T) {
	h := NewHistogram()
	h.Record(10)
	h.Record(100)
	warm := h.Snapshot()
	h.Record(1000)
	h.Record(10000)
	run := h.Snapshot().Sub(warm)
	if run.Count != 2 {
		t.Errorf("post-warmup count = %d, want 2", run.Count)
	}
	if run.Sum != 11000 {
		t.Errorf("post-warmup sum = %d, want 11000", run.Sum)
	}
	if q := run.Quantile(1); q < 10000 {
		t.Errorf("max quantile %d below recorded max", q)
	}
}
