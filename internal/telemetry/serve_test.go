package telemetry

// HTTP-level tests for Serve: every endpoint the daemons rely on
// (/metrics, /, /debug/exemplars, the pprof index) must answer on the
// bound address, with and without a registry (the dedicated
// /debug/health server passes reg == nil).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// get fetches a path from the server and returns status, content type,
// and body.
func get(t *testing.T, ms *MetricsServer, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", ms.Addr(), path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("phi_test_requests_total", "test counter", nil).Add(7)
	h := reg.Histogram("phi_test_latency_seconds", "test histogram", nil)
	h.ObserveExemplar(3*time.Millisecond, 0xabcd)

	ms, err := Serve("127.0.0.1:0", reg,
		Endpoint{Path: "/debug/extra", Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "extra ok")
		})})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	t.Run("metrics", func(t *testing.T) {
		code, ct, body := get(t, ms, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
			t.Fatalf("content type %q: want Prometheus text format", ct)
		}
		if !strings.Contains(body, "phi_test_requests_total 7") {
			t.Fatalf("counter missing from exposition:\n%s", body)
		}
		if !strings.Contains(body, "phi_test_latency_seconds_count 1") {
			t.Fatalf("histogram missing from exposition:\n%s", body)
		}
	})

	t.Run("root serves the same exposition", func(t *testing.T) {
		code, _, body := get(t, ms, "/")
		if code != http.StatusOK || !strings.Contains(body, "phi_test_requests_total 7") {
			t.Fatalf("status %d, body:\n%s", code, body)
		}
	})

	t.Run("exemplars", func(t *testing.T) {
		code, ct, body := get(t, ms, "/debug/exemplars")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.Contains(ct, "application/json") {
			t.Fatalf("content type %q", ct)
		}
		var out map[string][]struct {
			UpperNs int64  `json:"upper_ns"`
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, body)
		}
		exs, ok := out["phi_test_latency_seconds"]
		if !ok || len(exs) == 0 {
			t.Fatalf("no exemplars for the histogram: %s", body)
		}
		if exs[0].TraceID != fmt.Sprintf("%016x", 0xabcd) {
			t.Fatalf("exemplar trace ID %q", exs[0].TraceID)
		}
	})

	t.Run("pprof index", func(t *testing.T) {
		code, _, body := get(t, ms, "/debug/pprof/")
		if code != http.StatusOK || !strings.Contains(body, "goroutine") {
			t.Fatalf("status %d, body:\n%.200s", code, body)
		}
	})

	t.Run("extra endpoint", func(t *testing.T) {
		code, _, body := get(t, ms, "/debug/extra")
		if code != http.StatusOK || body != "extra ok" {
			t.Fatalf("status %d, body %q", code, body)
		}
	})
}

func TestServeNilRegistry(t *testing.T) {
	// The dedicated -health-addr server mounts only its extra endpoint;
	// the registry endpoints must still answer (empty) rather than
	// panic on the nil receiver.
	ms, err := Serve("127.0.0.1:0", nil,
		Endpoint{Path: "/debug/health", Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, `{"status":"ok"}`)
		})})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	for _, path := range []string{"/metrics", "/", "/debug/exemplars"} {
		code, _, body := get(t, ms, path)
		if code != http.StatusOK {
			t.Fatalf("GET %s with nil registry: status %d, body %q", path, code, body)
		}
	}
	code, _, body := get(t, ms, "/debug/health")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("extra endpoint: status %d, body %q", code, body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bogus", nil); err == nil {
		t.Fatal("want an error for an unbindable address")
	}
}
