package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Histograms are exposed with
// `_bucket{le=...}` series in seconds (only non-empty buckets, which is
// valid: cumulative counts over any increasing subset of bounds), plus
// `_sum` (seconds) and `_count`. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	seen := make(map[string]bool)
	for _, m := range r.snapshot() {
		if !seen[m.name] {
			seen[m.name] = true
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, typeString(m.kind))
		}
		switch m.kind {
		case counterKind:
			fmt.Fprintf(bw, "%s %d\n", series(m.name, m.labels, ""), m.counter.Value())
		case gaugeKind:
			fmt.Fprintf(bw, "%s %s\n", series(m.name, m.labels, ""), formatFloat(m.gauge.Value()))
		case histogramKind:
			writeHistogram(bw, m)
		}
	}
	return bw.Flush()
}

func typeString(k metricKind) string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series renders `name{labels,extra}`, omitting empty braces.
func series(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeHistogram emits the cumulative bucket series. Recorded values are
// nanoseconds; bounds and sum are converted to seconds per Prometheus
// convention (names should end in _seconds).
func writeHistogram(w io.Writer, m *registered) {
	s := m.hist.Snapshot()
	var cum uint64
	for i := range s.Buckets {
		if s.Buckets[i] == 0 {
			continue
		}
		cum += s.Buckets[i]
		le := formatFloat(float64(bucketUpper(i)) / 1e9)
		fmt.Fprintf(w, "%s %d\n", series(m.name+"_bucket", m.labels, `le="`+le+`"`), cum)
	}
	fmt.Fprintf(w, "%s %d\n", series(m.name+"_bucket", m.labels, `le="+Inf"`), s.Count)
	fmt.Fprintf(w, "%s %s\n", series(m.name+"_sum", m.labels, ""), formatFloat(float64(s.Sum)/1e9))
	fmt.Fprintf(w, "%s %d\n", series(m.name+"_count", m.labels, ""), s.Count)
}

// Handler returns an http.Handler serving the exposition (any path).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Headers are gone; nothing to do but drop the conn.
			return
		}
	})
}

// ExemplarsHandler serves the registry's histogram exemplars as JSON:
// metric series name to a list of {upper_ns, trace_id} pairs. The
// Prometheus 0.0.4 text format cannot carry exemplars, so they get
// their own debug endpoint; the trace IDs are the hex form /debug/traces
// reports.
func (r *Registry) ExemplarsHandler() http.Handler {
	type jsonExemplar struct {
		UpperNs int64  `json:"upper_ns"`
		TraceID string `json:"trace_id"`
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out := make(map[string][]jsonExemplar)
		if r != nil {
			for _, m := range r.snapshot() {
				if m.kind != histogramKind {
					continue
				}
				exs := m.hist.Exemplars()
				if len(exs) == 0 {
					continue
				}
				js := make([]jsonExemplar, len(exs))
				for i, e := range exs {
					js[i] = jsonExemplar{UpperNs: e.UpperNs, TraceID: fmt.Sprintf("%016x", e.TraceID)}
				}
				out[series(m.name, m.labels, "")] = js
			}
		}
		json.NewEncoder(w).Encode(out)
	})
}

// MetricsServer is a running exposition endpoint.
type MetricsServer struct {
	ln     net.Listener
	srv    *http.Server
	routes []string
}

// Endpoint mounts an extra handler on the metrics server — how the
// daemons hang /debug/traces and friends off the same port they already
// expose for scraping.
type Endpoint struct {
	Path    string
	Handler http.Handler
	// Desc is the one-line purpose shown on the /debug/ index page.
	Desc string
}

// Serve starts an HTTP server on addr exposing reg at /metrics (and at
// /, for curl convenience), histogram exemplars at /debug/exemplars,
// the standard pprof profiles under /debug/pprof/, and any extra
// endpoints. It returns once the listener is bound, so the caller knows
// scrapes can succeed; the accept loop runs in the background until
// Close.
func Serve(addr string, reg *Registry, extra ...Endpoint) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// One table drives BOTH mux registration and the /debug/ index, so a
	// route cannot be mounted without being listed (and the index-
	// completeness test holds by construction for built-ins and extras
	// alike).
	routes := []Endpoint{
		{Path: "/metrics", Handler: reg.Handler(), Desc: "Prometheus text exposition of every registered metric"},
		{Path: "/debug/exemplars", Handler: reg.ExemplarsHandler(), Desc: "histogram bucket → newest trace ID links"},
		{Path: "/debug/pprof/", Handler: http.HandlerFunc(pprof.Index), Desc: "CPU, heap, goroutine, and runtime profiles"},
		{Path: "/debug/pprof/cmdline", Handler: http.HandlerFunc(pprof.Cmdline), Desc: "process command line"},
		{Path: "/debug/pprof/profile", Handler: http.HandlerFunc(pprof.Profile), Desc: "CPU profile (?seconds=N)"},
		{Path: "/debug/pprof/symbol", Handler: http.HandlerFunc(pprof.Symbol), Desc: "symbol lookup for profile addresses"},
		{Path: "/debug/pprof/trace", Handler: http.HandlerFunc(pprof.Trace), Desc: "runtime execution trace (?seconds=N)"},
	}
	routes = append(routes, extra...)
	mux := http.NewServeMux()
	entries := make([]debugEntry, 0, len(routes))
	paths := make([]string, 0, len(routes))
	indexFree := true
	for _, e := range routes {
		mux.Handle(e.Path, e.Handler)
		entries = append(entries, debugEntry{Path: e.Path, Desc: e.Desc})
		paths = append(paths, e.Path)
		if e.Path == "/debug/" {
			indexFree = false
		}
	}
	// The /debug/ index lists everything mounted here, so an operator
	// needs to remember one URL, not eight. Registered last and only if
	// no extra endpoint claimed the path; specific /debug/* routes above
	// still win in the mux.
	if indexFree {
		mux.Handle("/debug/", debugIndexHandler(entries))
	}
	mux.Handle("/", reg.Handler())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &MetricsServer{ln: ln, srv: srv, routes: paths}, nil
}

// Addr returns the bound address.
func (m *MetricsServer) Addr() net.Addr { return m.ln.Addr() }

// Routes returns every path explicitly mounted on the metrics mux — by
// construction, exactly the set the /debug/ index lists (the "/" and
// "/debug/" catch-alls are implementation detail, not routes).
func (m *MetricsServer) Routes() []string {
	return append([]string(nil), m.routes...)
}

// Close stops the endpoint.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// debugEntry is one row of the /debug/ index.
type debugEntry struct {
	Path string `json:"path"`
	Desc string `json:"desc,omitempty"`
}

// debugIndexHandler serves the endpoint directory:
//
//	GET /debug/              JSON {endpoints: [{path, desc}, ...]}
//	GET /debug/?format=text  one aligned "path  desc" line each
//
// It also catches unknown /debug/* paths, answering 404 with the index
// in text form — a typo lands on the map instead of an empty page.
func debugIndexHandler(entries []debugEntry) http.Handler {
	sorted := append([]debugEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	width := 0
	for _, e := range sorted {
		if len(e.Path) > width {
			width = len(e.Path)
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/debug/" && req.URL.Path != "/debug" {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintf(w, "no handler for %s; registered debug endpoints:\n\n", req.URL.Path)
			writeDebugIndexText(w, sorted, width)
			return
		}
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeDebugIndexText(w, sorted, width)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"endpoints": sorted})
	})
}

func writeDebugIndexText(w io.Writer, entries []debugEntry, width int) {
	for _, e := range entries {
		fmt.Fprintf(w, "%-*s  %s\n", width, e.Path, e.Desc)
	}
}
