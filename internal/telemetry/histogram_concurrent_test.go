package telemetry

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestSnapshotMergeSubUnderConcurrentRecord hammers one histogram from
// many writers while the reader repeatedly snapshots, subtracts the
// previous snapshot, and merges the deltas back together — the exact
// access pattern of the saturation ramp (per-step windows cut out of a
// continuously recording histogram). Run under -race, it is also the
// regression test that Record/Snapshot need no locks.
func TestSnapshotMergeSubUnderConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const writers = 8
	const perWriter = 20000

	var wrote atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Record(int64(w*1000 + i%997))
				wrote.Add(1)
			}
		}(w)
	}

	// Reader: cut [prev, cur) windows while writers run, accumulate them
	// by Merge, and check every invariant that must hold even mid-race.
	merged := &HistSnapshot{}
	prev := &HistSnapshot{}
	for wrote.Load() < writers*perWriter {
		cur := h.Snapshot()
		if cur.Count < prev.Count {
			t.Fatalf("snapshot count went backwards: %d -> %d", prev.Count, cur.Count)
		}
		delta := *cur // value copy: Sub mutates the delta, cur stays intact
		delta.Sub(prev)
		var bucketSum uint64
		for _, b := range delta.Buckets {
			bucketSum += b
		}
		if bucketSum != delta.Count {
			t.Fatalf("delta buckets sum %d != delta count %d", bucketSum, delta.Count)
		}
		merged.Merge(&delta)
		prev = cur
	}
	wg.Wait()

	// One final window catches anything recorded after the last cut.
	merged.Merge(h.Snapshot().Sub(prev))

	if got, want := merged.Count, uint64(writers*perWriter); got != want {
		t.Fatalf("merged windows lost samples: got %d, want %d", got, want)
	}
	direct := h.Snapshot()
	if merged.Sum != direct.Sum {
		t.Fatalf("merged sum %d != direct sum %d", merged.Sum, direct.Sum)
	}
	if merged.Buckets != direct.Buckets {
		t.Fatalf("merged buckets differ from direct snapshot")
	}
	if q50, q99 := merged.Quantile(0.5), merged.Quantile(0.99); q50 > q99 {
		t.Fatalf("quantiles not monotone after merge: p50 %d > p99 %d", q50, q99)
	}
}
