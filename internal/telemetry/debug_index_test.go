package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestDebugIndex exercises the /debug/ directory page: every mounted
// endpoint (built-in and extra) listed with its description, text form
// on request, and a helpful 404 for typos.
func TestDebugIndex(t *testing.T) {
	extra := Endpoint{
		Path:    "/debug/custom",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		Desc:    "a custom endpoint for the test",
	}
	ms, err := Serve("127.0.0.1:0", NewRegistry(), extra)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	base := "http://" + ms.Addr().String()

	resp, err := http.Get(base + "/debug/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Endpoints []struct {
			Path string `json:"path"`
			Desc string `json:"desc"`
		} `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("index is not JSON: %v", err)
	}
	got := map[string]string{}
	for _, e := range doc.Endpoints {
		got[e.Path] = e.Desc
	}
	for _, want := range []string{"/metrics", "/debug/exemplars", "/debug/pprof/", "/debug/custom"} {
		if _, ok := got[want]; !ok {
			t.Fatalf("index missing %s: %v", want, got)
		}
	}
	if got["/debug/custom"] != extra.Desc {
		t.Fatalf("extra endpoint desc not carried: %q", got["/debug/custom"])
	}
	for i := 1; i < len(doc.Endpoints); i++ {
		if doc.Endpoints[i-1].Path > doc.Endpoints[i].Path {
			t.Fatalf("index not sorted: %v before %v", doc.Endpoints[i-1].Path, doc.Endpoints[i].Path)
		}
	}

	// Text form.
	text := httpGet(t, base+"/debug/?format=text", http.StatusOK)
	if !strings.Contains(text, "/debug/custom") || !strings.Contains(text, extra.Desc) {
		t.Fatalf("text index missing the extra endpoint:\n%s", text)
	}

	// A typo under /debug/ answers 404 with the directory, not an empty
	// page.
	typo := httpGet(t, base+"/debug/tracez", http.StatusNotFound)
	if !strings.Contains(typo, "/debug/exemplars") {
		t.Fatalf("404 page does not show the directory:\n%s", typo)
	}

	// Specific routes still win over the index catch-all.
	httpGet(t, base+"/debug/custom", http.StatusOK)
}

// TestDebugIndexComplete pins the no-unlisted-routes invariant: the
// /debug/ index must list EXACTLY the set of routes mounted on the mux
// (Serve's single route table feeds both, so a new endpoint cannot
// silently go unlisted), and every listed route must actually answer.
// The extras mirror the daemons' observatory endpoints.
func TestDebugIndexComplete(t *testing.T) {
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) })
	ms, err := Serve("127.0.0.1:0", NewRegistry(),
		Endpoint{Path: "/debug/resources", Handler: ok, Desc: "runtime + wire resource snapshot"},
		Endpoint{Path: "/debug/prof/ring", Handler: ok, Desc: "rolling CPU/heap profile ring"},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	base := "http://" + ms.Addr().String()

	resp, err := http.Get(base + "/debug/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Endpoints []struct {
			Path string `json:"path"`
		} `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	listed := map[string]bool{}
	for _, e := range doc.Endpoints {
		listed[e.Path] = true
	}
	mounted := ms.Routes()
	if len(listed) != len(mounted) {
		t.Fatalf("index lists %d routes, mux mounts %d: %v vs %v", len(listed), len(mounted), listed, mounted)
	}
	for _, route := range mounted {
		if !listed[route] {
			t.Errorf("mounted route %s missing from /debug/ index", route)
		}
	}
	for _, want := range []string{"/debug/resources", "/debug/prof/ring"} {
		if !listed[want] {
			t.Errorf("observatory endpoint %s not listed", want)
		}
	}
	// Every listed route answers something other than the index's 404.
	// (/debug/pprof/profile and /trace block for a sampling window, so
	// probe everything else.)
	for _, route := range mounted {
		if route == "/debug/pprof/profile" || route == "/debug/pprof/trace" {
			continue
		}
		r2, err := http.Get(base + route)
		if err != nil {
			t.Fatalf("GET %s: %v", route, err)
		}
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		if r2.StatusCode == http.StatusNotFound {
			t.Errorf("listed route %s answers 404", route)
		}
	}
}

// httpGet fetches url, asserts the status, and returns the body.
func httpGet(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s: got status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	return string(body)
}
