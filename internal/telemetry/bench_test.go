package telemetry

// Microbenchmarks backing the subsystem's overhead claim: the
// instrumented record path (histogram Record + counter Inc) must stay
// well under 100ns per operation, and the uninstrumented (nil-handle)
// path must be a single branch.

import (
	"sync/atomic"
	"testing"
	"time"
)

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	d := 137 * time.Microsecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(d)
	}
}

func BenchmarkHistogramRecordParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			v++
			h.Record(v)
		}
	})
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkInstrumentedTimestampedOp is the full per-op instrumentation
// cost as hot paths pay it: two clock reads plus one histogram record
// plus one counter increment.
func BenchmarkInstrumentedTimestampedOp(b *testing.B) {
	h := NewHistogram()
	c := NewCounter()
	var sink atomic.Uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		sink.Add(1) // stand-in for the op itself
		c.Inc()
		h.Observe(time.Since(start))
	}
}

func BenchmarkSnapshotAndQuantiles(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 100000; i++ {
		h.Record(int64(i * 37))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		_ = s.Quantile(0.5)
		_ = s.Quantile(0.99)
		_ = s.Quantile(0.999)
	}
}
