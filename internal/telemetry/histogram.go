package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear over non-negative int64 values (by
// convention, latencies in nanoseconds): each power-of-two octave is
// split into 2^subBucketBits linear sub-buckets, so the relative
// quantile error is bounded by 1/2^subBucketBits (~3.1%) while the whole
// int64 range fits in a fixed array — no locks, no allocation, no
// rebucketing on the record path. The same layout is used by HdrHistogram
// and the Go runtime's internal time histogram.
const (
	subBucketBits = 5
	subBuckets    = 1 << subBucketBits // 32 linear sub-buckets per octave

	// NumBuckets covers values 0..2^63-1: one linear region below
	// subBuckets plus (63-subBucketBits+1) octaves of subBuckets each.
	NumBuckets = (64 - subBucketBits + 1) * subBuckets
)

// bucketIndex maps a non-negative value to its bucket. Values below
// subBuckets map exactly (index == value); above, the index is the
// octave (position of the leading bit) concatenated with the top
// subBucketBits bits of the mantissa.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= subBucketBits
	mantissa := (u >> (uint(exp) - subBucketBits)) & (subBuckets - 1)
	return subBuckets + (exp-subBucketBits)*subBuckets + int(mantissa)
}

// bucketLower returns the smallest value mapping to bucket i.
func bucketLower(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	block := (i - subBuckets) / subBuckets
	m := (i - subBuckets) % subBuckets
	exp := uint(subBucketBits + block)
	return int64(uint64(1)<<exp + uint64(m)<<(exp-subBucketBits))
}

// bucketUpper returns the largest value mapping to bucket i (the
// inclusive `le` bound in Prometheus terms).
func bucketUpper(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	block := (i - subBuckets) / subBuckets
	exp := uint(subBucketBits + block)
	width := int64(1) << (exp - subBucketBits)
	return bucketLower(i) + width - 1
}

// Histogram is a lock-free log-linear histogram of int64 samples
// (canonically nanoseconds). The zero value is ready to use; a nil
// *Histogram ignores all records, so an uninstrumented path costs one
// branch.
//
// Record and Observe are safe for unlimited concurrency: three atomic
// adds, no locks. Snapshot is not a point-in-time cut — buckets are read
// individually while writers proceed — but every recorded sample lands
// in exactly one snapshot-visible bucket, which is all a monitoring read
// needs.
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Int64
	// exemplars holds the latest trace ID observed per bucket, allocated
	// lazily on the first traced observation so untraced histograms pay
	// one pointer load.
	exemplars atomic.Pointer[exemplarSet]
	buckets   [NumBuckets]atomic.Uint64
}

type exemplarSet struct {
	ids [NumBuckets]atomic.Uint64
}

// NewHistogram returns an unregistered histogram.
func NewHistogram() *Histogram { return new(Histogram) }

// Record adds one sample. Negative samples clamp to zero.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Observe records a duration in nanoseconds — the canonical use.
func (h *Histogram) Observe(d time.Duration) { h.Record(int64(d)) }

// ObserveExemplar is Observe plus an exemplar: the trace ID of the
// request that produced the sample is remembered for the sample's
// bucket (newest wins), linking the latency distribution back to
// concrete traces at /debug/exemplars. A zero trace ID (untraced
// request) records the sample alone.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID uint64) {
	if h == nil {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	if traceID != 0 {
		es := h.exemplars.Load()
		if es == nil {
			es = new(exemplarSet)
			if !h.exemplars.CompareAndSwap(nil, es) {
				es = h.exemplars.Load()
			}
		}
		es.ids[bucketIndex(v)].Store(traceID)
	}
	h.Record(v)
}

// Exemplar links a histogram bucket to the most recent trace that
// landed in it.
type Exemplar struct {
	// UpperNs is the bucket's inclusive upper bound in nanoseconds.
	UpperNs int64 `json:"upper_ns"`
	// TraceID identifies the trace (hex form is what /debug/traces
	// accepts).
	TraceID uint64 `json:"-"`
}

// Exemplars returns the per-bucket exemplars recorded so far, lowest
// bucket first. Nil histograms and histograms that never saw a traced
// sample return nil.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	es := h.exemplars.Load()
	if es == nil {
		return nil
	}
	var out []Exemplar
	for i := range es.ids {
		if id := es.ids[i].Load(); id != 0 {
			out = append(out, Exemplar{UpperNs: bucketUpper(i), TraceID: id})
		}
	}
	return out
}

// Count returns the number of recorded samples (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures the histogram's current contents for analysis or
// merging. A nil histogram yields an empty snapshot.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{}
	if h == nil {
		return s
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is an immutable copy of a histogram's buckets. Count is
// the bucket total (internally consistent even when the snapshot raced
// with writers). Snapshots merge by addition, so per-shard or per-worker
// histograms aggregate into one distribution.
type HistSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets [NumBuckets]uint64
}

// Merge adds other's samples into s and returns s.
func (s *HistSnapshot) Merge(other *HistSnapshot) *HistSnapshot {
	if other == nil {
		return s
	}
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
	return s
}

// Sub subtracts an earlier snapshot of the same histogram, yielding the
// distribution recorded in between (the warmup-exclusion primitive).
func (s *HistSnapshot) Sub(earlier *HistSnapshot) *HistSnapshot {
	if earlier == nil {
		return s
	}
	for i := range s.Buckets {
		s.Buckets[i] -= earlier.Buckets[i]
	}
	s.Count -= earlier.Count
	s.Sum -= earlier.Sum
	return s
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of the
// recorded samples: the inclusive upper bound of the bucket holding the
// ceil(q*count)-th smallest sample. The estimate is monotone in q,
// never below the exact quantile, and within a relative error of
// 1/2^subBucketBits (~3.1%) above it. Returns 0 on an empty snapshot.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(NumBuckets - 1)
}

// Mean returns the exact mean of recorded samples (sum is tracked
// exactly, not from buckets). Returns 0 on an empty snapshot.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Max returns an upper bound on the largest recorded sample (the upper
// bound of the highest non-empty bucket).
func (s *HistSnapshot) Max() int64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return bucketUpper(i)
		}
	}
	return 0
}

// float <-> bits helpers for Gauge.
func floatBits(f float64) uint64 { return math.Float64bits(f) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }
