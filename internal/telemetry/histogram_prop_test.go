package telemetry

// Property-based tests for the log-linear histogram: bucket-layout
// invariants, merge commutativity/associativity, quantile monotonicity,
// and the bucket-bound error contract checked against exact quantiles
// from a sorted copy of the samples.

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestBucketLayoutInvariants: buckets tile the non-negative int64 line
// contiguously, indices are monotone in the value, and every value lies
// within its own bucket's bounds.
func TestBucketLayoutInvariants(t *testing.T) {
	// Contiguity across every bucket boundary that int64 can reach.
	for i := 0; i < NumBuckets-1; i++ {
		lo, up := bucketLower(i), bucketUpper(i)
		if lo > up {
			t.Fatalf("bucket %d: lower %d > upper %d", i, lo, up)
		}
		nextLo := bucketLower(i + 1)
		if up+1 != nextLo && nextLo > 0 { // nextLo overflows past int64 max at the very top
			t.Fatalf("gap between bucket %d (upper %d) and %d (lower %d)", i, up, i+1, nextLo)
		}
	}
	rng := rand.New(rand.NewSource(1))
	prevIdx := -1
	// Sorted random values must produce non-decreasing indices.
	var vals []int64
	for i := 0; i < 5000; i++ {
		vals = append(vals, rng.Int63())
		vals = append(vals, rng.Int63n(1<<20)) // dense small values too
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < prevIdx {
			t.Fatalf("index not monotone: value %d -> bucket %d after bucket %d", v, idx, prevIdx)
		}
		prevIdx = idx
		if v < bucketLower(idx) || v > bucketUpper(idx) {
			t.Fatalf("value %d outside bucket %d bounds [%d, %d]", v, idx, bucketLower(idx), bucketUpper(idx))
		}
		// Relative width bound: (upper - lower) <= lower / subBuckets for
		// values beyond the linear region.
		if v >= subBuckets {
			lo, up := bucketLower(idx), bucketUpper(idx)
			if up-lo > lo/subBuckets {
				t.Fatalf("bucket %d too wide: [%d, %d]", idx, lo, up)
			}
		}
	}
}

// sampleSets returns named random sample distributions exercising very
// different shapes (uniform, heavy-tailed, constant, tiny-n).
func sampleSets(rng *rand.Rand) map[string][]int64 {
	exp := make([]int64, 2000)
	for i := range exp {
		exp[i] = int64(rng.ExpFloat64() * 1e6)
	}
	uni := make([]int64, 1777)
	for i := range uni {
		uni[i] = rng.Int63n(1 << 40)
	}
	pareto := make([]int64, 999)
	for i := range pareto {
		pareto[i] = int64(1e3 * math.Pow(1-rng.Float64(), -2))
	}
	konst := make([]int64, 100)
	for i := range konst {
		konst[i] = 123456
	}
	return map[string][]int64{
		"exponential": exp,
		"uniform":     uni,
		"pareto":      pareto,
		"constant":    konst,
		"single":      {42},
		"two":         {7, 1 << 30},
	}
}

func histOf(samples []int64) *Histogram {
	h := NewHistogram()
	for _, v := range samples {
		h.Record(v)
	}
	return h
}

// TestMergeCommutativeAssociative: A+B == B+A and (A+B)+C == A+(B+C),
// bucket for bucket.
func TestMergeCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sets := sampleSets(rng)
	a := histOf(sets["exponential"]).Snapshot()
	b := histOf(sets["uniform"]).Snapshot()
	c := histOf(sets["pareto"]).Snapshot()

	ab := histOf(sets["exponential"]).Snapshot().Merge(b)
	ba := histOf(sets["uniform"]).Snapshot().Merge(a)
	if *ab != *ba {
		t.Fatal("merge is not commutative")
	}
	abc1 := histOf(sets["exponential"]).Snapshot().Merge(b).Merge(c)
	bc := histOf(sets["uniform"]).Snapshot().Merge(c)
	abc2 := histOf(sets["exponential"]).Snapshot().Merge(bc)
	if *abc1 != *abc2 {
		t.Fatal("merge is not associative")
	}
	if abc1.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count %d != %d", abc1.Count, a.Count+b.Count+c.Count)
	}
	if abc1.Sum != a.Sum+b.Sum+c.Sum {
		t.Fatalf("merged sum %d != %d", abc1.Sum, a.Sum+b.Sum+c.Sum)
	}
}

// TestQuantileMonotone: for any sample set, Quantile must be
// non-decreasing in q.
func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for name, samples := range sampleSets(rng) {
		s := histOf(samples).Snapshot()
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.001 {
			v := s.Quantile(q)
			if v < prev {
				t.Fatalf("%s: quantile(%v) = %d < quantile at lower q = %d", name, q, v, prev)
			}
			prev = v
		}
	}
}

// TestQuantileErrorBoundVsExactSort: the histogram quantile must bracket
// the exact (sorted-sample) quantile from above, within one bucket's
// relative width: exact <= est <= exact*(1+1/subBuckets) + 1.
func TestQuantileErrorBoundVsExactSort(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	quantiles := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	for name, samples := range sampleSets(rng) {
		s := histOf(samples).Snapshot()
		sorted := append([]int64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range quantiles {
			rank := int(math.Ceil(q * float64(len(sorted))))
			if rank < 1 {
				rank = 1
			}
			exact := sorted[rank-1]
			est := s.Quantile(q)
			if est < exact {
				t.Errorf("%s: quantile(%v) = %d below exact %d", name, q, est, exact)
			}
			bound := exact + exact/subBuckets + 1
			if est > bound {
				t.Errorf("%s: quantile(%v) = %d exceeds error bound %d (exact %d)", name, q, est, bound, exact)
			}
		}
	}
}

// TestMergeQuantileEquivalence: quantiles of a merged snapshot equal
// quantiles of one histogram fed both sample sets (sharded recording is
// lossless).
func TestMergeQuantileEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sets := sampleSets(rng)
	merged := histOf(sets["exponential"]).Snapshot().Merge(histOf(sets["pareto"]).Snapshot())
	combined := histOf(append(append([]int64(nil), sets["exponential"]...), sets["pareto"]...)).Snapshot()
	if *merged != *combined {
		t.Fatal("merged snapshot differs from combined recording")
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if merged.Quantile(q) != combined.Quantile(q) {
			t.Fatalf("quantile(%v) differs: %d vs %d", q, merged.Quantile(q), combined.Quantile(q))
		}
	}
}
