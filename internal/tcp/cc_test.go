package tcp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func ackAt(now sim.Time, rtt sim.Time) AckInfo {
	return AckInfo{Now: now, RTT: rtt, AckedBytes: DefaultMSS, AckedSegments: 1}
}

func TestCubicInitRespectsParams(t *testing.T) {
	c := NewCubic(CubicParams{InitialWindow: 8, InitialSsthresh: 64, Beta: 0.3})
	c.Init(0)
	if c.Window() != 8 {
		t.Errorf("initial window = %v, want 8", c.Window())
	}
	if c.Ssthresh() != 64 {
		t.Errorf("initial ssthresh = %v, want 64", c.Ssthresh())
	}
}

func TestCubicSlowStartDoublesPerRTT(t *testing.T) {
	c := NewCubic(DefaultCubicParams())
	c.Init(0)
	w0 := c.Window()
	// One RTT's worth of acks: w0 acks, each growing cwnd by 1.
	now := sim.Time(0)
	for i := 0; i < int(w0); i++ {
		c.OnAck(ackAt(now, 100*sim.Millisecond))
	}
	if got := c.Window(); got != 2*w0 {
		t.Errorf("after 1 RTT of acks window = %v, want %v", got, 2*w0)
	}
}

func TestCubicSlowStartCapsAtSsthresh(t *testing.T) {
	c := NewCubic(CubicParams{InitialWindow: 2, InitialSsthresh: 16, Beta: 0.2})
	c.Init(0)
	for i := 0; i < 100; i++ {
		c.OnAck(ackAt(sim.Time(i)*sim.Millisecond, 100*sim.Millisecond))
	}
	// Once past ssthresh, growth is congestion avoidance (slow); window
	// must not blow past ssthresh in a handful of acks.
	if c.Window() > 32 {
		t.Errorf("window %v raced past ssthresh=16", c.Window())
	}
	if c.Window() < 16 {
		t.Errorf("window %v should have reached ssthresh=16", c.Window())
	}
}

func TestCubicLossAppliesBetaDecrease(t *testing.T) {
	for _, beta := range []float64{0.1, 0.2, 0.5, 0.9} {
		c := NewCubic(CubicParams{InitialWindow: 2, InitialSsthresh: 65536, Beta: beta})
		c.Init(0)
		for i := 0; i < 98; i++ {
			c.OnAck(ackAt(0, 100*sim.Millisecond))
		}
		w := c.Window()
		c.OnLoss(sim.Second)
		want := w * (1 - beta)
		if math.Abs(c.Window()-want) > 1e-9 {
			t.Errorf("beta=%v: window after loss = %v, want %v", beta, c.Window(), want)
		}
		if c.Ssthresh() != math.Max(want, 2) {
			t.Errorf("beta=%v: ssthresh after loss = %v, want %v", beta, c.Ssthresh(), want)
		}
	}
}

func TestCubicTimeoutCollapsesWindow(t *testing.T) {
	c := NewCubic(DefaultCubicParams())
	c.Init(0)
	for i := 0; i < 100; i++ {
		c.OnAck(ackAt(0, 100*sim.Millisecond))
	}
	c.OnTimeout(sim.Second)
	if c.Window() != 1 {
		t.Errorf("window after timeout = %v, want 1", c.Window())
	}
	if c.Ssthresh() < 2 {
		t.Errorf("ssthresh after timeout = %v, want >= 2", c.Ssthresh())
	}
}

func TestCubicConcaveGrowthTowardWmax(t *testing.T) {
	c := NewCubic(DefaultCubicParams())
	c.Init(0)
	// Grow, lose, then recover: window should climb back toward wMax.
	for i := 0; i < 198; i++ {
		c.OnAck(ackAt(0, 100*sim.Millisecond))
	}
	wMax := c.Window()
	c.OnLoss(sim.Second)
	afterLoss := c.Window()
	now := sim.Second
	for i := 0; i < 2000; i++ {
		now += 10 * sim.Millisecond
		c.OnAck(ackAt(now, 100*sim.Millisecond))
	}
	if c.Window() <= afterLoss {
		t.Errorf("window did not grow after loss: %v <= %v", c.Window(), afterLoss)
	}
	if c.Window() < 0.9*wMax {
		t.Errorf("window %v did not approach wMax %v after 20s", c.Window(), wMax)
	}
}

func TestCubicWindowNeverBelowOne(t *testing.T) {
	f := func(events []bool) bool {
		c := NewCubic(CubicParams{InitialWindow: 1, InitialSsthresh: 4, Beta: 0.9})
		c.Init(0)
		now := sim.Time(0)
		for _, isLoss := range events {
			now += sim.Millisecond
			if isLoss {
				c.OnLoss(now)
			} else {
				c.OnTimeout(now)
			}
			if c.Window() < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCubicMonotoneGrowthBetweenLosses(t *testing.T) {
	c := NewCubic(DefaultCubicParams())
	c.Init(0)
	prev := c.Window()
	now := sim.Time(0)
	for i := 0; i < 5000; i++ {
		now += sim.Millisecond
		c.OnAck(ackAt(now, 100*sim.Millisecond))
		if c.Window() < prev {
			t.Fatalf("window shrank without loss at ack %d: %v -> %v", i, prev, c.Window())
		}
		prev = c.Window()
	}
}

func TestCubicParamsValidation(t *testing.T) {
	bad := []CubicParams{
		{InitialWindow: 0, InitialSsthresh: 64, Beta: 0.2},
		{InitialWindow: 2, InitialSsthresh: 1, Beta: 0.2},
		{InitialWindow: 2, InitialSsthresh: 64, Beta: 0},
		{InitialWindow: 2, InitialSsthresh: 64, Beta: 1},
	}
	for _, p := range bad {
		if p.Valid() {
			t.Errorf("params %v should be invalid", p)
		}
	}
	if !DefaultCubicParams().Valid() {
		t.Error("defaults invalid")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewCubic with invalid params did not panic")
			}
		}()
		NewCubic(CubicParams{})
	}()
}

func TestCubicParamsString(t *testing.T) {
	if got := DefaultCubicParams().String(); got != "iw=2 ssthresh=65536 beta=0.2" {
		t.Errorf("String() = %q", got)
	}
}

func TestNewRenoAIMD(t *testing.T) {
	n := NewNewReno()
	n.InitialSsthresh = 10
	n.Init(0)
	for i := 0; i < 200; i++ {
		n.OnAck(ackAt(0, 100*sim.Millisecond))
	}
	w := n.Window()
	// Congestion avoidance: ~1 segment per RTT; with 200 acks from cwnd 10,
	// window should have grown but stayed modest.
	if w <= 10 || w > 40 {
		t.Errorf("CA window = %v, want in (10, 40]", w)
	}
	n.OnLoss(0)
	if math.Abs(n.Window()-w/2) > 1e-9 {
		t.Errorf("halving: %v -> %v", w, n.Window())
	}
	n.OnTimeout(0)
	if n.Window() != 1 {
		t.Errorf("timeout window = %v, want 1", n.Window())
	}
}

func TestNewRenoZeroValueDefaults(t *testing.T) {
	var n NewReno
	n.Init(0)
	if n.Window() != 2 || n.Ssthresh() != 65536 {
		t.Errorf("zero-value defaults = %v/%v, want 2/65536", n.Window(), n.Ssthresh())
	}
	if n.Name() != "newreno" || n.PacingInterval() != 0 {
		t.Error("name/pacing wrong")
	}
}

func TestRTOEstimatorFirstSample(t *testing.T) {
	r := newRTOEstimator(sim.Second, 200*sim.Millisecond, 60*sim.Second)
	if r.RTO() != sim.Second {
		t.Errorf("initial RTO = %v, want 1s", r.RTO())
	}
	r.Sample(100 * sim.Millisecond)
	// SRTT=100ms, RTTVAR=50ms, RTO=100+200=300ms.
	if r.SRTT() != 100*sim.Millisecond {
		t.Errorf("SRTT = %v, want 100ms", r.SRTT())
	}
	if r.RTO() != 300*sim.Millisecond {
		t.Errorf("RTO = %v, want 300ms", r.RTO())
	}
}

func TestRTOEstimatorClampsToMin(t *testing.T) {
	r := newRTOEstimator(sim.Second, 200*sim.Millisecond, 60*sim.Second)
	for i := 0; i < 50; i++ {
		r.Sample(10 * sim.Millisecond)
	}
	if r.RTO() != 200*sim.Millisecond {
		t.Errorf("RTO = %v, want clamped to 200ms", r.RTO())
	}
}

func TestRTOEstimatorBackoffDoubles(t *testing.T) {
	r := newRTOEstimator(sim.Second, 200*sim.Millisecond, 60*sim.Second)
	r.Sample(100 * sim.Millisecond) // RTO 300ms
	r.Backoff()
	if r.RTO() != 600*sim.Millisecond {
		t.Errorf("after 1 backoff RTO = %v, want 600ms", r.RTO())
	}
	r.Backoff()
	if r.RTO() != 1200*sim.Millisecond {
		t.Errorf("after 2 backoffs RTO = %v, want 1.2s", r.RTO())
	}
	// A fresh sample resets the backoff.
	r.Sample(100 * sim.Millisecond)
	if r.RTO() > 400*sim.Millisecond {
		t.Errorf("sample did not reset backoff: RTO = %v", r.RTO())
	}
}

func TestRTOEstimatorCapsAtMax(t *testing.T) {
	r := newRTOEstimator(sim.Second, 200*sim.Millisecond, 5*sim.Second)
	for i := 0; i < 30; i++ {
		r.Backoff()
	}
	if r.RTO() != 5*sim.Second {
		t.Errorf("RTO = %v, want capped at 5s", r.RTO())
	}
	r.Sample(sim.Second)
	for i := 0; i < 30; i++ {
		r.Backoff()
	}
	if r.RTO() != 5*sim.Second {
		t.Errorf("post-sample RTO = %v, want capped at 5s", r.RTO())
	}
}

// Property: the RTO never leaves [min, max] under any sample/backoff mix.
func TestRTOBoundsProperty(t *testing.T) {
	min, max := 200*sim.Millisecond, 60*sim.Second
	f := func(ops []int16) bool {
		r := newRTOEstimator(sim.Second, min, max)
		for _, op := range ops {
			if op%5 == 0 {
				r.Backoff()
			} else {
				d := sim.Time(op)
				if d < 0 {
					d = -d
				}
				r.Sample(d * sim.Millisecond / 10)
			}
			if r.RTO() < min || r.RTO() > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
