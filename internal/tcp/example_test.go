package tcp_test

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/tcp"
)

// One CUBIC transfer across the Figure 1 dumbbell.
func Example() {
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, sim.DefaultDumbbell(1))

	snd, _ := tcp.Connect(eng, 1, d.Senders[0], d.Receivers[0], 500_000,
		tcp.NewCubic(tcp.DefaultCubicParams()), tcp.Config{})
	snd.Start()
	eng.RunUntil(60 * sim.Second)

	st := snd.Stats()
	fmt.Println("completed:", st.Completed)
	fmt.Println("bytes:", st.BytesAcked)
	fmt.Println("min RTT ~150ms:", st.MinRTT >= 150*sim.Millisecond && st.MinRTT < 160*sim.Millisecond)
	// Output:
	// completed: true
	// bytes: 500000
	// min RTT ~150ms: true
}

// The three Cubic parameters the paper tunes.
func ExampleCubicParams() {
	def := tcp.DefaultCubicParams()
	tuned := tcp.CubicParams{InitialWindow: 16, InitialSsthresh: 64, Beta: 0.2}
	fmt.Println("default:", def)
	fmt.Println("tuned:  ", tuned)
	// Output:
	// default: iw=2 ssthresh=65536 beta=0.2
	// tuned:   iw=16 ssthresh=64 beta=0.2
}
