package tcp

import (
	"math"

	"repro/internal/sim"
)

// NewReno implements RFC 5681/6582 congestion control: slow start,
// additive-increase congestion avoidance, and a half-window multiplicative
// decrease on loss. It serves as the classical baseline alongside CUBIC.
type NewReno struct {
	// InitialWindow is the initial congestion window in segments (default 2).
	InitialWindow int
	// InitialSsthresh is the initial slow-start threshold (default 65536).
	InitialSsthresh int

	cwnd     float64
	ssthresh float64
}

// NewNewReno returns a NewReno controller with RFC defaults.
func NewNewReno() *NewReno {
	return &NewReno{InitialWindow: 2, InitialSsthresh: 65536}
}

// Name implements CongestionControl.
func (n *NewReno) Name() string { return "newreno" }

// Init implements CongestionControl.
func (n *NewReno) Init(now sim.Time) {
	iw := n.InitialWindow
	if iw == 0 {
		iw = 2
	}
	ss := n.InitialSsthresh
	if ss == 0 {
		ss = 65536
	}
	n.cwnd = float64(iw)
	n.ssthresh = float64(ss)
}

// Window implements CongestionControl.
func (n *NewReno) Window() float64 { return n.cwnd }

// Ssthresh implements CongestionControl.
func (n *NewReno) Ssthresh() float64 { return n.ssthresh }

// PacingInterval implements CongestionControl.
func (n *NewReno) PacingInterval() sim.Time { return 0 }

// OnAck implements CongestionControl.
func (n *NewReno) OnAck(info AckInfo) {
	if n.cwnd < n.ssthresh {
		n.cwnd += info.AckedSegments
		if n.cwnd > n.ssthresh {
			n.cwnd = n.ssthresh
		}
		return
	}
	n.cwnd += info.AckedSegments / n.cwnd
}

// OnLoss implements CongestionControl.
func (n *NewReno) OnLoss(now sim.Time) {
	n.ssthresh = math.Max(n.cwnd/2, 2)
	n.cwnd = n.ssthresh
}

// OnTimeout implements CongestionControl.
func (n *NewReno) OnTimeout(now sim.Time) {
	n.ssthresh = math.Max(n.cwnd/2, 2)
	n.cwnd = 1
}
