package tcp

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// ecnDumbbell builds a dumbbell whose bottleneck runs marking RED.
func ecnDumbbell(senders int) (*sim.Engine, *sim.Dumbbell, *sim.RED) {
	eng := sim.NewEngine()
	cfg := sim.DefaultDumbbell(senders)
	bufBytes := int(cfg.BufferBDP * float64(cfg.BottleneckRate) / 8 * cfg.RTT.Seconds())
	red := sim.NewRED(bufBytes, rand.New(rand.NewSource(1)))
	red.MarkECT = true
	cfg.Discipline = red
	d := sim.NewDumbbell(eng, cfg)
	return eng, d, red
}

func TestECNFlowGetsMarkedNotDropped(t *testing.T) {
	eng, d, red := ecnDumbbell(2)
	mon := d.Bottleneck.Monitor()
	var senders []*Sender
	var receivers []*Receiver
	for i := 0; i < 2; i++ {
		s, r := Connect(eng, sim.FlowID(i+1), d.Senders[i], d.Receivers[i], 0,
			NewCubic(DefaultCubicParams()), Config{ECN: true})
		s.Start()
		senders = append(senders, s)
		receivers = append(receivers, r)
	}
	eng.RunUntil(60 * sim.Second)

	var marks, reductions, rexmits int64
	for i := range senders {
		marks += receivers[i].CongestionMarks
		reductions += senders[i].Stats().ECNReductions
		rexmits += senders[i].Stats().Retransmits
	}
	if red.Marked == 0 || marks == 0 {
		t.Fatalf("no CE marks (red=%d rcv=%d)", red.Marked, marks)
	}
	if reductions == 0 {
		t.Error("ECN echoes triggered no window reductions")
	}
	// ECN converts early drops into marks: the link should see (almost)
	// no drops and the senders should rarely retransmit.
	if mon.DroppedPackets > red.Marked/10 {
		t.Errorf("drops %d should be far below marks %d", mon.DroppedPackets, red.Marked)
	}
	if rexmits > reductions {
		t.Errorf("retransmits %d exceed ECN reductions %d: marking not doing its job", rexmits, reductions)
	}
	if mon.Utilization() < 0.8 {
		t.Errorf("utilization %.2f too low under ECN", mon.Utilization())
	}
}

func TestECNKeepsQueueShorterThanDropTail(t *testing.T) {
	run := func(ecn bool) sim.Time {
		var eng *sim.Engine
		var d *sim.Dumbbell
		if ecn {
			eng, d, _ = ecnDumbbell(2)
		} else {
			eng = sim.NewEngine()
			d = sim.NewDumbbell(eng, sim.DefaultDumbbell(2))
		}
		mon := d.Bottleneck.Monitor()
		for i := 0; i < 2; i++ {
			s, _ := Connect(eng, sim.FlowID(i+1), d.Senders[i], d.Receivers[i], 0,
				NewCubic(DefaultCubicParams()), Config{ECN: ecn})
			s.Start()
		}
		eng.RunUntil(60 * sim.Second)
		return mon.MeanQueueDelay()
	}
	ecnDelay := run(true)
	dropTailDelay := run(false)
	t.Logf("mean queue delay: ECN/RED %v vs drop-tail %v", ecnDelay, dropTailDelay)
	if ecnDelay >= dropTailDelay {
		t.Errorf("ECN queue delay %v not below drop-tail %v", ecnDelay, dropTailDelay)
	}
}

func TestNonECTFlowStillDroppedByMarkingRED(t *testing.T) {
	eng, d, red := ecnDumbbell(1)
	s, rcv := Connect(eng, 1, d.Senders[0], d.Receivers[0], 0,
		NewCubic(DefaultCubicParams()), Config{ECN: false})
	s.Start()
	eng.RunUntil(30 * sim.Second)
	if red.EarlyDrops == 0 {
		t.Error("non-ECT traffic should still be early-dropped")
	}
	if rcv.CongestionMarks != 0 {
		t.Error("non-ECT packets must not be marked")
	}
	if red.Marked != 0 {
		t.Errorf("marked %d non-ECT packets", red.Marked)
	}
}

func TestECEEchoLatchesUntilAcked(t *testing.T) {
	r, col, eng := newLoopReceiver(t)
	p := data(0, 100)
	p.CE = true
	r.Receive(p)
	eng.Run()
	if len(col.acks) != 1 || !col.acks[0].ECE {
		t.Fatal("CE not echoed as ECE")
	}
	// Next ack without new CE carries no echo.
	r.Receive(data(100, 100))
	eng.Run()
	if col.acks[1].ECE {
		t.Error("ECE echoed without a new mark")
	}
	if r.CongestionMarks != 1 {
		t.Errorf("marks = %d", r.CongestionMarks)
	}
}
