package tcp

import (
	"testing"

	"repro/internal/sim"
)

// runTransfer runs one bounded transfer over a fresh dumbbell and returns
// the final stats plus the dumbbell for link inspection.
func runTransfer(t *testing.T, bytes int64, cfg sim.DumbbellConfig, cc CongestionControl) (*FlowStats, *sim.Dumbbell) {
	t.Helper()
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, cfg)
	d.Bottleneck.Monitor()
	var got *FlowStats
	snd, _ := Connect(eng, 1, d.Senders[0], d.Receivers[0], bytes,
		cc, Config{OnComplete: func(st *FlowStats) { got = st }})
	snd.Start()
	eng.RunUntil(600 * sim.Second)
	if got == nil {
		t.Fatalf("transfer of %d bytes did not complete; sent=%d acked=%d timeouts=%d",
			bytes, snd.Stats().PacketsSent, snd.Stats().BytesAcked, snd.Stats().Timeouts)
	}
	return got, d
}

func TestTransferCompletesLossless(t *testing.T) {
	st, _ := runTransfer(t, 500_000, sim.DefaultDumbbell(1), NewCubic(DefaultCubicParams()))
	if st.BytesAcked != 500_000 {
		t.Errorf("acked %d bytes, want 500000", st.BytesAcked)
	}
	if !st.Completed {
		t.Error("transfer not marked completed")
	}
	if st.Timeouts != 0 {
		t.Errorf("unexpected timeouts: %d", st.Timeouts)
	}
}

func TestTransferSmallerThanOneSegment(t *testing.T) {
	st, _ := runTransfer(t, 100, sim.DefaultDumbbell(1), NewCubic(DefaultCubicParams()))
	if st.BytesAcked != 100 {
		t.Errorf("acked %d, want 100", st.BytesAcked)
	}
	// One RTT plus serialization.
	if d := st.Duration(); d < 150*sim.Millisecond || d > 160*sim.Millisecond {
		t.Errorf("1-segment transfer took %v, want ~150ms", d)
	}
}

func TestTransferExactlyMultipleSegments(t *testing.T) {
	st, _ := runTransfer(t, int64(3*DefaultMSS), sim.DefaultDumbbell(1), NewCubic(DefaultCubicParams()))
	if st.BytesAcked != int64(3*DefaultMSS) {
		t.Errorf("acked %d, want %d", st.BytesAcked, 3*DefaultMSS)
	}
}

func TestRTTSamplesNearPropagation(t *testing.T) {
	st, _ := runTransfer(t, 200_000, sim.DefaultDumbbell(1), NewCubic(DefaultCubicParams()))
	if st.RTTCount == 0 {
		t.Fatal("no RTT samples")
	}
	if st.MinRTT < 150*sim.Millisecond || st.MinRTT > 155*sim.Millisecond {
		t.Errorf("min RTT %v, want ~150ms", st.MinRTT)
	}
	if st.AvgRTT() < st.MinRTT {
		t.Error("avg RTT below min RTT")
	}
}

func TestLongTransferSaturatesBottleneck(t *testing.T) {
	// 100 MB at 15 Mbps: tens of seconds of steady state dominate the
	// slow-start transient.
	st, d := runTransfer(t, 100_000_000, sim.DefaultDumbbell(1), NewCubic(DefaultCubicParams()))
	thr := st.ThroughputBps()
	if thr < 0.65*15e6 {
		t.Errorf("throughput %.2f Mbps, want > 9.75 Mbps", thr/1e6)
	}
	if thr > 15e6 {
		t.Errorf("throughput %.2f Mbps exceeds line rate", thr/1e6)
	}
	// Utilization over the transfer lifetime (not the idle tail).
	mon := d.Bottleneck.Monitor()
	util := float64(mon.ForwardedBytes) * 8 / (15e6 * st.Duration().Seconds())
	if util < 0.65 {
		t.Errorf("bottleneck utilization %.2f, want > 0.65", util)
	}
}

func TestLossRecoveryWithTinyBuffer(t *testing.T) {
	cfg := sim.DefaultDumbbell(1)
	cfg.BufferBDP = 0.1 // force drops during slow start
	st, d := runTransfer(t, 5_000_000, cfg, NewCubic(DefaultCubicParams()))
	if d.Bottleneck.Monitor().DroppedPackets == 0 {
		t.Fatal("expected drops with a 0.1 BDP buffer")
	}
	if st.Retransmits == 0 {
		t.Error("drops occurred but nothing was retransmitted")
	}
	if st.BytesAcked != 5_000_000 {
		t.Errorf("acked %d, want 5000000 despite losses", st.BytesAcked)
	}
}

func TestCompetingFlowsShareBottleneck(t *testing.T) {
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, sim.DefaultDumbbell(2))
	var stats []*FlowStats
	for i := 0; i < 2; i++ {
		snd, _ := Connect(eng, sim.FlowID(i+1), d.Senders[i], d.Receivers[i], 10_000_000,
			NewCubic(DefaultCubicParams()), Config{OnComplete: func(st *FlowStats) { stats = append(stats, st) }})
		snd.Start()
	}
	eng.RunUntil(300 * sim.Second)
	if len(stats) != 2 {
		t.Fatalf("%d flows completed, want 2", len(stats))
	}
	for _, st := range stats {
		thr := st.ThroughputBps()
		if thr < 0.2*15e6 || thr > 0.95*15e6 {
			t.Errorf("flow %d throughput %.2f Mbps outside plausible sharing range", st.Flow, thr/1e6)
		}
	}
}

func TestTimeoutOnBlackhole(t *testing.T) {
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, sim.DefaultDumbbell(1))
	snd, _ := Connect(eng, 1, d.Senders[0], d.Receivers[0], 1_000_000,
		NewCubic(DefaultCubicParams()), Config{})
	snd.Start()
	// Take the bottleneck down mid-transfer, then restore it.
	eng.At(200*sim.Millisecond, func() { d.Bottleneck.SetDown(true) })
	eng.At(3*sim.Second, func() { d.Bottleneck.SetDown(false) })
	eng.RunUntil(300 * sim.Second)
	st := snd.Stats()
	if st.Timeouts == 0 {
		t.Error("no RTO fired across a 2.8s blackhole")
	}
	if !snd.Done() || st.BytesAcked != 1_000_000 {
		t.Errorf("transfer did not recover: done=%v acked=%d", snd.Done(), st.BytesAcked)
	}
}

func TestUnboundedFlowStop(t *testing.T) {
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, sim.DefaultDumbbell(1))
	var done *FlowStats
	snd, rcv := Connect(eng, 1, d.Senders[0], d.Receivers[0], 0,
		NewCubic(DefaultCubicParams()), Config{OnComplete: func(st *FlowStats) { done = st }})
	snd.Start()
	eng.At(10*sim.Second, snd.Stop)
	eng.RunUntil(11 * sim.Second)
	if done == nil {
		t.Fatal("Stop did not complete the flow")
	}
	if done.Completed {
		t.Error("unbounded flow marked Completed")
	}
	if done.BytesAcked == 0 {
		t.Error("unbounded flow moved no data")
	}
	if rcv.BytesReceived < done.BytesAcked {
		t.Errorf("receiver got %d < acked %d", rcv.BytesReceived, done.BytesAcked)
	}
}

func TestSenderStartIsIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, sim.DefaultDumbbell(1))
	snd, _ := Connect(eng, 1, d.Senders[0], d.Receivers[0], 10_000, NewCubic(DefaultCubicParams()), Config{})
	snd.Start()
	snd.Start()
	eng.RunUntil(10 * sim.Second)
	if !snd.Done() {
		t.Error("transfer incomplete")
	}
	snd.Stop() // after done: no-op
}

func TestNewRenoTransferCompletes(t *testing.T) {
	st, _ := runTransfer(t, 2_000_000, sim.DefaultDumbbell(1), NewNewReno())
	if st.BytesAcked != 2_000_000 {
		t.Errorf("acked %d, want 2000000", st.BytesAcked)
	}
}

func TestFlowStatsDerivedMetrics(t *testing.T) {
	st := &FlowStats{Start: 0, End: 2 * sim.Second, BytesAcked: 250_000,
		PacketsSent: 100, Retransmits: 5}
	if got := st.ThroughputBps(); got != 1e6 {
		t.Errorf("throughput = %v, want 1e6", got)
	}
	if got := st.LossRate(); got != 0.05 {
		t.Errorf("loss rate = %v, want 0.05", got)
	}
	st.addRTTSample(100 * sim.Millisecond)
	st.addRTTSample(200 * sim.Millisecond)
	if st.AvgRTT() != 150*sim.Millisecond {
		t.Errorf("avg RTT = %v", st.AvgRTT())
	}
	if st.MinRTT != 100*sim.Millisecond || st.MaxRTT != 200*sim.Millisecond {
		t.Errorf("min/max RTT = %v/%v", st.MinRTT, st.MaxRTT)
	}
	if q := st.QueueingDelay(100 * sim.Millisecond); q != 50*sim.Millisecond {
		t.Errorf("queueing delay = %v, want 50ms", q)
	}
	if q := st.QueueingDelay(sim.Second); q != 0 {
		t.Errorf("queueing delay clamped = %v, want 0", q)
	}
	empty := &FlowStats{}
	if empty.ThroughputBps() != 0 || empty.AvgRTT() != 0 || empty.LossRate() != 0 {
		t.Error("zero-value stats should yield zero metrics")
	}
}
