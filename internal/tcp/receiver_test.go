package tcp

import (
	"testing"

	"repro/internal/sim"
)

// ackCollector captures acks emitted by a receiver under test.
type ackCollector struct {
	acks []*sim.Packet
}

func (a *ackCollector) Receive(p *sim.Packet) { a.acks = append(a.acks, p) }

// newLoopReceiver wires a Receiver whose acks are captured locally.
func newLoopReceiver(t *testing.T) (*Receiver, *ackCollector, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	rnode := sim.NewNode(eng, 2, "rcv")
	snode := sim.NewNode(eng, 1, "snd")
	col := &ackCollector{}
	snode.Attach(1, col)
	l := sim.NewLink(eng, "loop", 1_000_000_000, 0, 0, snode)
	rnode.SetDefaultRoute(l)
	r := NewReceiver(eng, 1, rnode, 1)
	return r, col, eng
}

func data(seq int64, payload int) *sim.Packet {
	return &sim.Packet{Flow: 1, Src: 1, Dst: 2, Kind: sim.KindData,
		Seq: seq, Payload: payload, Size: payload + HeaderBytes, SentAt: 1}
}

func TestReceiverInOrderDelivery(t *testing.T) {
	r, col, eng := newLoopReceiver(t)
	r.Receive(data(0, 100))
	r.Receive(data(100, 100))
	eng.Run()
	if r.RcvNxt() != 200 {
		t.Errorf("rcvNxt = %d, want 200", r.RcvNxt())
	}
	if r.BytesReceived != 200 {
		t.Errorf("bytes = %d, want 200", r.BytesReceived)
	}
	if len(col.acks) != 2 {
		t.Fatalf("%d acks, want 2", len(col.acks))
	}
	if col.acks[1].Ack != 200 {
		t.Errorf("last ack = %d, want 200", col.acks[1].Ack)
	}
}

func TestReceiverOutOfOrderBuffering(t *testing.T) {
	r, col, eng := newLoopReceiver(t)
	r.Receive(data(100, 100)) // hole at 0
	r.Receive(data(200, 100))
	eng.Run()
	if r.RcvNxt() != 0 {
		t.Errorf("rcvNxt = %d, want 0 while hole open", r.RcvNxt())
	}
	// Duplicate acks for the hole.
	for _, a := range col.acks {
		if a.Ack != 0 {
			t.Errorf("ack = %d, want 0", a.Ack)
		}
	}
	r.Receive(data(0, 100)) // fill the hole
	eng.Run()
	if r.RcvNxt() != 300 {
		t.Errorf("rcvNxt = %d, want 300 after fill", r.RcvNxt())
	}
	if r.BytesReceived != 300 {
		t.Errorf("bytes = %d, want 300", r.BytesReceived)
	}
}

func TestReceiverCountsDuplicates(t *testing.T) {
	r, _, eng := newLoopReceiver(t)
	r.Receive(data(0, 100))
	r.Receive(data(0, 100))
	eng.Run()
	if r.Duplicates != 1 {
		t.Errorf("duplicates = %d, want 1", r.Duplicates)
	}
	if r.BytesReceived != 100 {
		t.Errorf("bytes = %d, want 100 (no double count)", r.BytesReceived)
	}
}

func TestReceiverOverlappingSegment(t *testing.T) {
	r, _, eng := newLoopReceiver(t)
	r.Receive(data(0, 100))
	r.Receive(data(50, 100)) // overlaps [50,150): only 50 new bytes
	eng.Run()
	if r.RcvNxt() != 150 {
		t.Errorf("rcvNxt = %d, want 150", r.RcvNxt())
	}
	if r.BytesReceived != 150 {
		t.Errorf("bytes = %d, want 150", r.BytesReceived)
	}
}

func TestReceiverEchoesKarnMetadata(t *testing.T) {
	r, col, eng := newLoopReceiver(t)
	p := data(0, 100)
	p.SentAt = 42 * sim.Millisecond
	p.Retransmit = true
	r.Receive(p)
	eng.Run()
	if len(col.acks) != 1 {
		t.Fatal("no ack")
	}
	a := col.acks[0]
	if a.EchoSentAt != 42*sim.Millisecond || !a.Retransmit {
		t.Errorf("ack echo = (%v, %v), want (42ms, true)", a.EchoSentAt, a.Retransmit)
	}
	if a.Size != HeaderBytes {
		t.Errorf("ack size = %d, want %d", a.Size, HeaderBytes)
	}
}

func TestReceiverIgnoresAcks(t *testing.T) {
	r, col, eng := newLoopReceiver(t)
	r.Receive(&sim.Packet{Flow: 1, Kind: sim.KindAck, Ack: 500})
	eng.Run()
	if len(col.acks) != 0 || r.RcvNxt() != 0 {
		t.Error("receiver reacted to an ack packet")
	}
}

func TestReceiverManyOutOfOrderSegmentsDrainInOnePass(t *testing.T) {
	r, _, eng := newLoopReceiver(t)
	// Deliver segments 1..9 out of order, then segment 0.
	for i := 9; i >= 1; i-- {
		r.Receive(data(int64(i*100), 100))
	}
	r.Receive(data(0, 100))
	eng.Run()
	if r.RcvNxt() != 1000 {
		t.Errorf("rcvNxt = %d, want 1000", r.RcvNxt())
	}
	if r.BytesReceived != 1000 {
		t.Errorf("bytes = %d, want 1000", r.BytesReceived)
	}
}

func TestSenderIgnoresDataPackets(t *testing.T) {
	eng := sim.NewEngine()
	n := sim.NewNode(eng, 1, "n")
	s := NewSender(eng, 1, n, 2, 1000, NewCubic(DefaultCubicParams()), Config{})
	s.Start()
	s.Receive(data(0, 100)) // must not panic or corrupt state
	if s.Done() {
		t.Error("sender completed on a data packet")
	}
}

func TestDelayedAcksHalveAckCount(t *testing.T) {
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, sim.DefaultDumbbell(2))
	// Flow 1: immediate acks. Flow 2: delayed acks.
	s1, r1 := Connect(eng, 1, d.Senders[0], d.Receivers[0], 2_000_000,
		NewCubic(DefaultCubicParams()), Config{})
	s2, r2 := Connect(eng, 2, d.Senders[1], d.Receivers[1], 2_000_000,
		NewCubic(DefaultCubicParams()), Config{})
	r2.DelayAcks = true
	s1.Start()
	s2.Start()
	eng.RunUntil(120 * sim.Second)
	if !s1.Done() || !s2.Done() {
		t.Fatalf("transfers incomplete: %v %v", s1.Done(), s2.Done())
	}
	if s2.Stats().BytesAcked != 2_000_000 {
		t.Errorf("delayed-ack flow acked %d bytes", s2.Stats().BytesAcked)
	}
	// The delayed-ack receiver sends noticeably fewer acks.
	if float64(r2.AcksSent) > 0.75*float64(r1.AcksSent) {
		t.Errorf("delayed acks = %d vs immediate %d, want clearly fewer", r2.AcksSent, r1.AcksSent)
	}
}

func TestDelayedAckTimerFiresForOddSegment(t *testing.T) {
	r, col, eng := newLoopReceiver(t)
	r.DelayAcks = true
	r.AckDelay = 40 * sim.Millisecond
	r.Receive(data(0, 100)) // one in-order segment: ack is deferred
	eng.RunUntil(10 * sim.Millisecond)
	if len(col.acks) != 0 {
		t.Fatalf("ack sent before delay: %d", len(col.acks))
	}
	eng.RunUntil(100 * sim.Millisecond)
	if len(col.acks) != 1 {
		t.Fatalf("delayed ack not sent: %d", len(col.acks))
	}
	if col.acks[0].Ack != 100 {
		t.Errorf("delayed ack = %d, want 100", col.acks[0].Ack)
	}
	if r.DelayedAcks != 1 {
		t.Errorf("DelayedAcks = %d", r.DelayedAcks)
	}
}

func TestDelayedAckImmediateOnOutOfOrder(t *testing.T) {
	r, col, eng := newLoopReceiver(t)
	r.DelayAcks = true
	r.Receive(data(100, 100)) // out of order: ack immediately
	eng.RunUntil(sim.Millisecond)
	if len(col.acks) != 1 {
		t.Fatalf("OOO data not acked immediately: %d acks", len(col.acks))
	}
	// Hole fill also acks immediately (it changes the cumulative point).
	r.Receive(data(0, 100))
	eng.RunUntil(2 * sim.Millisecond)
	if len(col.acks) != 2 {
		t.Fatalf("hole fill not acked immediately: %d acks", len(col.acks))
	}
	if col.acks[1].Ack != 200 {
		t.Errorf("cumulative ack = %d, want 200", col.acks[1].Ack)
	}
}

func TestDelayedAckSecondSegmentAcksAtOnce(t *testing.T) {
	r, col, eng := newLoopReceiver(t)
	r.DelayAcks = true
	r.Receive(data(0, 100))
	r.Receive(data(100, 100))
	eng.RunUntil(sim.Millisecond)
	if len(col.acks) != 1 {
		t.Fatalf("second segment should flush the ack: %d acks", len(col.acks))
	}
	if col.acks[0].Ack != 200 {
		t.Errorf("ack = %d, want 200", col.acks[0].Ack)
	}
	if r.DelayedAcks != 0 {
		t.Error("timer should not have fired")
	}
}

// TestEndToEndConservation: at completion, the receiver holds exactly the
// bytes the sender believes were delivered, for several loss regimes.
func TestEndToEndConservation(t *testing.T) {
	for _, buf := range []float64{5, 0.5, 0.1} {
		cfg := sim.DefaultDumbbell(1)
		cfg.BufferBDP = buf
		eng := sim.NewEngine()
		d := sim.NewDumbbell(eng, cfg)
		snd, rcv := Connect(eng, 1, d.Senders[0], d.Receivers[0], 3_000_000,
			NewCubic(DefaultCubicParams()), Config{})
		snd.Start()
		eng.RunUntil(600 * sim.Second)
		if !snd.Done() {
			t.Fatalf("buf=%v: incomplete", buf)
		}
		st := snd.Stats()
		if st.BytesAcked != 3_000_000 {
			t.Errorf("buf=%v: acked %d", buf, st.BytesAcked)
		}
		if rcv.BytesReceived != 3_000_000 {
			t.Errorf("buf=%v: receiver got %d in-order bytes", buf, rcv.BytesReceived)
		}
		if rcv.RcvNxt() != 3_000_000 {
			t.Errorf("buf=%v: rcvNxt %d", buf, rcv.RcvNxt())
		}
	}
}
