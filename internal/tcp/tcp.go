// Package tcp implements packet-level TCP endpoints for the simulator:
// a sender with slow start, fast retransmit/recovery and RTO, a cumulative-
// ACK receiver, and pluggable congestion control. CUBIC — with the three
// parameters the Phi paper tunes (windowInit_, initial_ssthresh, beta) —
// and NewReno are provided; package remy plugs in its learned controller
// through the same interface.
package tcp

import (
	"repro/internal/sim"
)

// Default sizing constants. MSS is the payload per segment; a full-sized
// data packet occupies MSS+HeaderBytes on the wire, an ACK HeaderBytes.
const (
	DefaultMSS  = 1448
	HeaderBytes = 52
)

// AckInfo carries everything a congestion controller may want to know about
// a (new, non-duplicate) cumulative acknowledgment.
type AckInfo struct {
	// Now is the virtual time the ack arrived.
	Now sim.Time
	// SentAt is when the acked data packet entered the network.
	SentAt sim.Time
	// RTT is the sampled round-trip time (zero if the sample was suppressed
	// by Karn's rule because the data was a retransmission).
	RTT sim.Time
	// AckedBytes is the number of new bytes this ack covers.
	AckedBytes int
	// AckedSegments is AckedBytes expressed in MSS units.
	AckedSegments float64
	// FlightBytes is the number of bytes still outstanding after this ack.
	FlightBytes int
}

// CongestionControl is the strategy interface the sender drives. Windows
// are expressed in segments (MSS units) and may be fractional.
//
// Implementations are per-connection and need not be safe for concurrent
// use; the simulator is single-threaded.
type CongestionControl interface {
	// Name identifies the scheme in results, e.g. "cubic".
	Name() string
	// Init is called once when the connection starts.
	Init(now sim.Time)
	// OnAck is called for every ack that advances the window.
	OnAck(info AckInfo)
	// OnLoss is called when a loss is detected by triple duplicate ack
	// (entering fast recovery). It is not called again until recovery ends.
	OnLoss(now sim.Time)
	// OnTimeout is called on retransmission timeout.
	OnTimeout(now sim.Time)
	// Window returns the congestion window in segments (>= 1).
	Window() float64
	// Ssthresh returns the slow-start threshold in segments.
	Ssthresh() float64
	// PacingInterval returns the minimum spacing between data packet
	// transmissions; zero disables pacing. Rate-based schemes (Remy) use
	// this, window-based schemes return 0.
	PacingInterval() sim.Time
}

// Config holds per-connection tunables independent of congestion control.
// The zero value selects sane defaults.
type Config struct {
	// MSS is the segment payload size in bytes (default DefaultMSS).
	MSS int
	// RTOMin, RTOInit, RTOMax bound the retransmission timeout
	// (defaults 200 ms, 1 s, 60 s).
	RTOMin  sim.Time
	RTOInit sim.Time
	RTOMax  sim.Time
	// DupAckThreshold is the duplicate-ack (and SACK-gap) count treated
	// as loss (default 3). Section 3.2: raising it on paths where shared
	// experience shows prevalent reordering avoids spurious retransmits.
	DupAckThreshold int
	// ECN enables RFC 3168 explicit congestion notification: data packets
	// are sent ECN-capable, and an echoed congestion mark triggers one
	// window reduction per round trip with no retransmission.
	ECN bool
	// OnComplete, if set, fires when the transfer finishes (bounded flows)
	// or when Stop is called (unbounded flows).
	OnComplete func(*FlowStats)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MSS == 0 {
		out.MSS = DefaultMSS
	}
	if out.RTOMin == 0 {
		out.RTOMin = 200 * sim.Millisecond
	}
	if out.RTOInit == 0 {
		out.RTOInit = sim.Second
	}
	if out.RTOMax == 0 {
		out.RTOMax = 60 * sim.Second
	}
	if out.DupAckThreshold == 0 {
		out.DupAckThreshold = 3
	}
	return out
}

// FlowStats summarizes one connection, the raw material for the power
// metric computations in package metrics.
type FlowStats struct {
	Flow  sim.FlowID
	Start sim.Time
	End   sim.Time

	// BytesAcked is the number of payload bytes delivered (cumulatively
	// acknowledged).
	BytesAcked int64
	// PacketsSent counts data packet transmissions, including retransmits.
	PacketsSent int64
	// Retransmits counts retransmitted data packets.
	Retransmits int64
	// Timeouts counts RTO firings.
	Timeouts int64
	// FastRecoveries counts entries into fast recovery.
	FastRecoveries int64
	// ECNReductions counts window reductions triggered by ECN echoes.
	ECNReductions int64

	// RTT aggregation over Karn-valid samples.
	RTTCount int64
	RTTSum   sim.Time
	MinRTT   sim.Time
	MaxRTT   sim.Time

	// Completed reports whether the transfer delivered all requested bytes.
	Completed bool
}

// Duration is the connection's lifetime ("on time" in the paper's terms).
func (f *FlowStats) Duration() sim.Time { return f.End - f.Start }

// ThroughputBps is delivered payload bits over the on-time.
func (f *FlowStats) ThroughputBps() float64 {
	d := f.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(f.BytesAcked) * 8 / d
}

// AvgRTT is the mean of the RTT samples, or zero if there were none.
func (f *FlowStats) AvgRTT() sim.Time {
	if f.RTTCount == 0 {
		return 0
	}
	return f.RTTSum / sim.Time(f.RTTCount)
}

// QueueingDelay estimates the queueing component of delay as the average
// RTT in excess of the propagation RTT.
func (f *FlowStats) QueueingDelay(propRTT sim.Time) sim.Time {
	q := f.AvgRTT() - propRTT
	if q < 0 {
		return 0
	}
	return q
}

// LossRate returns retransmitted / sent data packets, the sender-side loss
// estimate used when link counters are unavailable.
func (f *FlowStats) LossRate() float64 {
	if f.PacketsSent == 0 {
		return 0
	}
	return float64(f.Retransmits) / float64(f.PacketsSent)
}

func (f *FlowStats) addRTTSample(rtt sim.Time) {
	f.RTTCount++
	f.RTTSum += rtt
	if f.MinRTT == 0 || rtt < f.MinRTT {
		f.MinRTT = rtt
	}
	if rtt > f.MaxRTT {
		f.MaxRTT = rtt
	}
}
