package tcp

import (
	"fmt"

	"repro/internal/sim"
)

// segState tracks a sent-but-unacked segment on the SACK scoreboard.
type segState struct {
	length    int
	sacked    bool
	lost      bool
	rexmitted bool
	// rexmitHS and rexmitAt snapshot highestSacked and the clock at
	// retransmission time; once the sacked frontier advances 3 segments
	// past rexmitHS and at least a smoothed RTT has elapsed without this
	// segment being sacked, the retransmission itself is deemed lost.
	rexmitHS int64
	rexmitAt sim.Time
}

// Sender is a packet-level TCP sender with SACK-based loss recovery
// (RFC 2018/6675 style, at segment granularity). It transmits TotalBytes
// (or streams forever if TotalBytes <= 0), detects loss via SACK/dupacks
// and via retransmission timeout, and delegates window evolution to the
// CongestionControl.
type Sender struct {
	eng  *sim.Engine
	node *sim.Node
	peer sim.NodeID
	flow sim.FlowID
	cc   CongestionControl
	cfg  Config

	// TotalBytes is the transfer length; <= 0 streams indefinitely.
	TotalBytes int64

	started bool
	done    bool

	sndUna int64 // lowest unacknowledged byte
	sndNxt int64 // next new byte to transmit

	// SACK scoreboard, keyed by segment start sequence.
	board         map[int64]*segState
	sackedBytes   int64
	lostUnrex     int64 // bytes marked lost and not yet retransmitted
	highestSacked int64 // highest sacked segment start + length, 0 if none
	lossScan      int64 // lowest sequence not yet classified for loss

	dupAcks     int
	inRecovery  bool
	recover     int64 // snd.nxt when recovery began
	lostQueue   []int64
	rexmitWatch []int64  // outstanding retransmissions, for re-loss detection
	lastDecr    sim.Time // last congestion-window decrease

	rto      *rtoEstimator
	rtoTimer sim.EventHandle

	// Pacing state for rate-based controllers.
	nextSendAt sim.Time
	paceTimer  sim.EventHandle

	stats FlowStats
}

// NewSender creates a sender for flow on node, addressed to peer, and
// attaches it to the node. Call Start to begin transmitting.
func NewSender(eng *sim.Engine, flow sim.FlowID, node *sim.Node, peer sim.NodeID, totalBytes int64, cc CongestionControl, cfg Config) *Sender {
	c := cfg.withDefaults()
	s := &Sender{
		eng: eng, node: node, peer: peer, flow: flow, cc: cc, cfg: c,
		TotalBytes: totalBytes,
		board:      make(map[int64]*segState),
		rto:        newRTOEstimator(c.RTOInit, c.RTOMin, c.RTOMax),
	}
	node.Attach(flow, s)
	return s
}

// Stats returns a snapshot of the connection statistics so far.
func (s *Sender) Stats() FlowStats { return s.stats }

// CC exposes the congestion controller (for tests and instrumentation).
func (s *Sender) CC() CongestionControl { return s.cc }

// FlowProbeID implements sim.FlowProbe.
func (s *Sender) FlowProbeID() sim.FlowID { return s.flow }

// FlowProbeSample implements sim.FlowProbe, exposing the instantaneous
// congestion state (cwnd, smoothed RTT, bytes delivered) to a sim.Probe.
func (s *Sender) FlowProbeSample() sim.FlowProbeSample {
	return sim.FlowProbeSample{
		CwndBytes:  s.cwndBytes(),
		SRTT:       s.rto.SRTT(),
		BytesAcked: s.stats.BytesAcked,
	}
}

// Done reports whether the transfer has completed or been stopped.
func (s *Sender) Done() bool { return s.done }

// InRecovery reports whether the sender is in fast recovery.
func (s *Sender) InRecovery() bool { return s.inRecovery }

// Start begins the transfer at the current virtual time.
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.stats.Flow = s.flow
	s.stats.Start = s.eng.Now()
	s.cc.Init(s.eng.Now())
	s.trySend()
}

// Stop ends an unbounded transfer (or aborts a bounded one), finalizing
// statistics and firing OnComplete.
func (s *Sender) Stop() {
	if s.done {
		return
	}
	s.finish(s.TotalBytes > 0 && s.sndUna >= s.TotalBytes)
}

func (s *Sender) finish(completed bool) {
	s.done = true
	s.rtoTimer.Cancel()
	s.paceTimer.Cancel()
	s.stats.End = s.eng.Now()
	s.stats.Completed = completed
	s.node.Detach(s.flow)
	if s.cfg.OnComplete != nil {
		s.cfg.OnComplete(&s.stats)
	}
}

// cwndBytes returns the usable window in bytes (at least one segment).
func (s *Sender) cwndBytes() int64 {
	w := s.cc.Window()
	if w < 1 {
		w = 1
	}
	return int64(w * float64(s.cfg.MSS))
}

// pipeBytes estimates the bytes currently in flight: everything sent but
// unacked, minus what the receiver holds (sacked) and what is known lost
// and not yet retransmitted.
func (s *Sender) pipeBytes() int64 {
	p := s.sndNxt - s.sndUna - s.sackedBytes - s.lostUnrex
	if p < 0 {
		p = 0
	}
	return p
}

// trySend transmits retransmissions first, then new segments, as the
// window (and pacing) allows.
func (s *Sender) trySend() {
	if s.done || !s.started {
		return
	}
	for {
		if s.pipeBytes()+int64(s.cfg.MSS) > s.cwndBytes() {
			return // window full
		}
		if pace := s.cc.PacingInterval(); pace > 0 {
			now := s.eng.Now()
			if now < s.nextSendAt {
				if !s.paceTimer.Pending() {
					s.paceTimer = s.eng.At(s.nextSendAt, s.trySend)
				}
				return
			}
			s.nextSendAt = now + pace
		}
		if seq, st, ok := s.popLost(); ok {
			st.rexmitted = true
			st.rexmitHS = s.highestSacked
			st.rexmitAt = s.eng.Now()
			s.lostUnrex -= int64(st.length)
			s.rexmitWatch = append(s.rexmitWatch, seq)
			s.transmit(seq, st.length, true)
			continue
		}
		if s.TotalBytes > 0 && s.sndNxt >= s.TotalBytes {
			return // everything transmitted, waiting for acks
		}
		payload := int64(s.cfg.MSS)
		if s.TotalBytes > 0 && s.sndNxt+payload > s.TotalBytes {
			payload = s.TotalBytes - s.sndNxt
		}
		s.board[s.sndNxt] = &segState{length: int(payload)}
		s.transmit(s.sndNxt, int(payload), false)
		s.sndNxt += payload
	}
}

// popLost returns the next lost, unretransmitted segment, skipping stale
// queue entries.
func (s *Sender) popLost() (int64, *segState, bool) {
	for len(s.lostQueue) > 0 {
		seq := s.lostQueue[0]
		s.lostQueue = s.lostQueue[1:]
		st := s.board[seq]
		if st == nil || st.sacked || st.rexmitted || seq < s.sndUna {
			continue
		}
		return seq, st, true
	}
	return 0, nil, false
}

// transmit sends one data segment.
func (s *Sender) transmit(seq int64, payload int, retransmit bool) {
	p := &sim.Packet{
		Flow: s.flow, Src: s.node.ID, Dst: s.peer, Kind: sim.KindData,
		Seq: seq, Payload: payload, Size: payload + HeaderBytes,
		SentAt: s.eng.Now(), Retransmit: retransmit,
		ECT: s.cfg.ECN,
	}
	s.stats.PacketsSent++
	if retransmit {
		s.stats.Retransmits++
	}
	s.node.Send(p)
	// RFC 6298 (5.1): start the timer when data is sent and it is not
	// already running. It is restarted only when an ack advances snd.una,
	// so it measures time since the oldest outstanding data.
	if !s.rtoTimer.Pending() {
		s.armRTO()
	}
}

func (s *Sender) armRTO() {
	s.rtoTimer.Cancel()
	s.rtoTimer = s.eng.After(s.rto.RTO(), s.onTimeout)
}

// Receive handles incoming acks.
func (s *Sender) Receive(p *sim.Packet) {
	if s.done || p.Kind != sim.KindAck {
		return
	}
	if p.ECE {
		// RFC 3168: react to an echoed congestion mark at most once per
		// round trip, with a window reduction but no retransmission.
		wait := s.rto.SRTT()
		if wait <= 0 {
			wait = s.rto.RTO() / 2
		}
		if now := s.eng.Now(); now-s.lastDecr >= wait {
			s.lastDecr = now
			s.stats.ECNReductions++
			s.cc.OnLoss(now)
		}
	}
	prevSacked := s.sackedBytes
	s.mergeSack(p.Sack)
	if p.Ack > s.sndUna {
		s.onNewAck(p)
	} else if p.Ack == s.sndUna && s.sndNxt > s.sndUna {
		s.onDupAck()
		// New SACK information is forward progress: the peer is still
		// receiving. Restarting the timer here prevents spurious RTOs when
		// queueing suddenly inflates the RTT beyond a stale RTO.
		if s.sackedBytes > prevSacked && s.sndNxt > s.sndUna {
			s.armRTO()
		}
	}
	s.detectLoss()
	s.trySend()
}

// mergeSack folds the receiver's SACK ranges into the scoreboard.
func (s *Sender) mergeSack(blocks [][2]int64) {
	for _, b := range blocks {
		// Mark whole segments covered by [b[0], b[1]).
		start := b[0]
		if rem := start % int64(s.cfg.MSS); rem != 0 {
			start += int64(s.cfg.MSS) - rem
		}
		for seq := start; seq < b[1]; {
			st := s.board[seq]
			if st == nil {
				// Unknown alignment (shortened tail segment); scan by MSS.
				seq += int64(s.cfg.MSS)
				continue
			}
			if seq+int64(st.length) <= b[1] && !st.sacked && seq >= s.sndUna {
				st.sacked = true
				s.sackedBytes += int64(st.length)
				if st.lost && !st.rexmitted {
					// No longer a hole: keep the pipe accounting tight.
					s.lostUnrex -= int64(st.length)
				}
				if end := seq + int64(st.length); end > s.highestSacked {
					s.highestSacked = end
				}
			}
			seq += int64(st.length)
		}
	}
}

// detectLoss classifies segments well below the highest SACK as lost
// (the SACK analogue of three duplicate acks) and enters recovery.
func (s *Sender) detectLoss() {
	if s.highestSacked == 0 {
		return
	}
	threshold := s.highestSacked - int64(s.cfg.DupAckThreshold)*int64(s.cfg.MSS)
	if s.lossScan < s.sndUna {
		s.lossScan = s.sndUna
	}
	newlyLost := false
	reLost := false
	for seq := s.lossScan; seq < threshold; {
		st := s.board[seq]
		if st == nil {
			seq += int64(s.cfg.MSS)
			continue
		}
		if !st.sacked && !st.lost {
			st.lost = true
			s.lostUnrex += int64(st.length)
			s.lostQueue = append(s.lostQueue, seq)
			newlyLost = true
		}
		seq += int64(st.length)
	}
	if threshold > s.lossScan {
		s.lossScan = threshold
	}
	// Re-loss: a retransmission is presumed dropped once the sacked
	// frontier has advanced 3 segments past where it stood when the
	// retransmission went out AND a smoothed RTT has elapsed (so we do not
	// re-declare loss before the retransmission could possibly be acked).
	// Requeue it so recovery cannot deadlock on a dropped retransmission.
	wait := s.rto.SRTT()
	if wait <= 0 {
		wait = s.rto.RTO() / 2
	}
	now := s.eng.Now()
	kept := s.rexmitWatch[:0]
	for _, seq := range s.rexmitWatch {
		st := s.board[seq]
		if st == nil || st.sacked || seq < s.sndUna || !st.rexmitted {
			continue
		}
		if s.highestSacked >= st.rexmitHS+int64(s.cfg.DupAckThreshold)*int64(s.cfg.MSS) && now-st.rexmitAt >= wait {
			st.rexmitted = false
			st.lost = true
			s.lostUnrex += int64(st.length)
			s.lostQueue = append(s.lostQueue, seq)
			reLost = true
			continue
		}
		kept = append(kept, seq)
	}
	s.rexmitWatch = kept
	if newlyLost && !s.inRecovery {
		s.enterRecovery()
	} else if reLost && now-s.lastDecr >= wait {
		// A dropped retransmission means the loss event is still in
		// progress: apply a further once-per-round-trip window decrease
		// (in the spirit of PRR/rate-halving) so a window far above the
		// pipe cannot jam recovery indefinitely.
		s.lastDecr = now
		s.cc.OnLoss(now)
	}
}

func (s *Sender) enterRecovery() {
	s.inRecovery = true
	s.recover = s.sndNxt
	s.stats.FastRecoveries++
	s.lastDecr = s.eng.Now()
	s.cc.OnLoss(s.eng.Now())
}

func (s *Sender) onNewAck(p *sim.Packet) {
	now := s.eng.Now()
	acked := p.Ack - s.sndUna
	// Prune the scoreboard below the new left edge.
	for seq := s.sndUna; seq < p.Ack; {
		st := s.board[seq]
		if st == nil {
			seq += int64(s.cfg.MSS)
			continue
		}
		if st.sacked {
			s.sackedBytes -= int64(st.length)
		} else if st.lost && !st.rexmitted {
			s.lostUnrex -= int64(st.length)
		}
		delete(s.board, seq)
		seq += int64(st.length)
	}
	s.sndUna = p.Ack
	s.stats.BytesAcked += acked
	s.dupAcks = 0

	var rtt sim.Time
	if !p.Retransmit && p.EchoSentAt > 0 {
		rtt = now - p.EchoSentAt
		s.rto.Sample(rtt)
		s.stats.addRTTSample(rtt)
	}

	if s.inRecovery && p.Ack >= s.recover {
		// Exit recovery. Queued lost segments (losses from what is now the
		// next epoch) stay queued: clearing them would leak permanently
		// un-retransmitted holes, since lossScan never revisits them.
		s.inRecovery = false
	}

	if !s.inRecovery {
		s.cc.OnAck(AckInfo{
			Now: now, SentAt: p.EchoSentAt, RTT: rtt,
			AckedBytes: int(acked), AckedSegments: float64(acked) / float64(s.cfg.MSS),
			FlightBytes: int(s.pipeBytes()),
		})
	}

	if s.TotalBytes > 0 && s.sndUna >= s.TotalBytes {
		s.finish(true)
		return
	}
	if s.sndNxt > s.sndUna {
		s.armRTO()
	} else {
		s.rtoTimer.Cancel()
	}
}

func (s *Sender) onDupAck() {
	s.dupAcks++
	if s.dupAcks == s.cfg.DupAckThreshold && !s.inRecovery {
		// Classic triple-dupack entry (covers SACK-less corner cases):
		// treat the first unacked segment as lost.
		if st := s.board[s.sndUna]; st != nil && !st.lost && !st.sacked {
			st.lost = true
			s.lostUnrex += int64(st.length)
			s.lostQueue = append(s.lostQueue, s.sndUna)
		}
		s.enterRecovery()
	}
}

func (s *Sender) onTimeout() {
	if s.done {
		return
	}
	s.stats.Timeouts++
	s.dupAcks = 0
	s.inRecovery = false
	s.rto.Backoff()
	s.cc.OnTimeout(s.eng.Now())
	// Everything outstanding and unsacked is presumed lost and will be
	// retransmitted under the collapsed window. SACK knowledge is kept so
	// data the receiver already holds is not resent.
	s.lostQueue = s.lostQueue[:0]
	s.rexmitWatch = s.rexmitWatch[:0]
	s.lostUnrex = 0
	for seq := s.sndUna; seq < s.sndNxt; {
		st := s.board[seq]
		if st == nil {
			seq += int64(s.cfg.MSS)
			continue
		}
		if !st.sacked {
			st.lost = true
			st.rexmitted = false
			s.lostUnrex += int64(st.length)
			s.lostQueue = append(s.lostQueue, seq)
		}
		seq += int64(st.length)
	}
	s.armRTO() // restart for the retransmission about to go out
	s.trySend()
}

// segmentLenAt returns the payload length of the segment starting at seq.
func (s *Sender) segmentLenAt(seq int64) int {
	l := int64(s.cfg.MSS)
	if s.TotalBytes > 0 && seq+l > s.TotalBytes {
		l = s.TotalBytes - seq
	}
	if l < 1 {
		l = 1
	}
	return int(l)
}

// DebugState summarizes internal reliability state for debugging tools.
func (s *Sender) DebugState() string {
	return fmt.Sprintf("una=%d nxt=%d recover=%d pipe=%d sacked=%d lostUnrex=%d lq=%d watch=%d",
		s.sndUna/int64(s.cfg.MSS), s.sndNxt/int64(s.cfg.MSS), s.recover/int64(s.cfg.MSS),
		s.pipeBytes()/int64(s.cfg.MSS), s.sackedBytes/int64(s.cfg.MSS),
		s.lostUnrex/int64(s.cfg.MSS), len(s.lostQueue), len(s.rexmitWatch))
}
