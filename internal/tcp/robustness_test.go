package tcp

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestTransferSurvivesArbitraryImpairments is the transport's central
// robustness property: under any combination of random loss (up to 20%),
// jitter, and reordering on the data path, a bounded transfer still
// completes and delivers exactly its bytes.
func TestTransferSurvivesArbitraryImpairments(t *testing.T) {
	f := func(seed int64, lossRaw, reorderRaw, jitterRaw uint8) bool {
		imp := sim.Impairments{
			LossRate:     float64(lossRaw%21) / 100,    // 0..20%
			ReorderRate:  float64(reorderRaw%16) / 100, // 0..15%
			ReorderDelay: 8 * sim.Millisecond,
			JitterMax:    sim.Time(jitterRaw%20) * sim.Millisecond,
		}
		eng := sim.NewEngine()
		rng := sim.NewRNG(seed)
		snd := sim.NewNode(eng, 1, "snd")
		rcv := sim.NewNode(eng, 2, "rcv")
		wrapped := sim.NewImpairedLink(eng, rng, rcv, imp)
		fwd := sim.NewLink(eng, "fwd", 8_000_000, 20*sim.Millisecond, 1<<19, wrapped)
		rev := sim.NewLink(eng, "rev", 8_000_000, 20*sim.Millisecond, 1<<19, snd)
		snd.SetDefaultRoute(fwd)
		rcv.SetDefaultRoute(rev)

		const bytes = 400_000
		sender, receiver := Connect(eng, 1, snd, rcv, bytes,
			NewCubic(DefaultCubicParams()), Config{})
		sender.Start()
		eng.RunUntil(30 * 60 * sim.Second) // generous horizon for 20% loss
		if !sender.Done() {
			t.Logf("seed=%d imp=%+v: incomplete after 30min: %+v", seed, imp, sender.Stats())
			return false
		}
		st := sender.Stats()
		return st.BytesAcked == bytes && st.Completed &&
			receiver.RcvNxt() == bytes && receiver.BytesReceived == bytes
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestTransferSurvivesAckPathLoss: impairing the reverse (ack) path must
// not break reliability either.
func TestTransferSurvivesAckPathLoss(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(77)
	snd := sim.NewNode(eng, 1, "snd")
	rcv := sim.NewNode(eng, 2, "rcv")
	fwd := sim.NewLink(eng, "fwd", 8_000_000, 20*sim.Millisecond, 1<<19, rcv)
	ackImp := sim.NewImpairedLink(eng, rng, snd, sim.Impairments{LossRate: 0.3})
	rev := sim.NewLink(eng, "rev", 8_000_000, 20*sim.Millisecond, 1<<19, ackImp)
	snd.SetDefaultRoute(fwd)
	rcv.SetDefaultRoute(rev)

	sender, _ := Connect(eng, 1, snd, rcv, 500_000, NewCubic(DefaultCubicParams()), Config{})
	sender.Start()
	eng.RunUntil(10 * 60 * sim.Second)
	if !sender.Done() || sender.Stats().BytesAcked != 500_000 {
		t.Fatalf("transfer with 30%% ack loss incomplete: %+v", sender.Stats())
	}
}

// TestManyShortFlowsUnderLoss: the workload pattern of the paper (many
// short connections) under random loss — every connection must finish.
func TestManyShortFlowsUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(5)
	snd := sim.NewNode(eng, 1, "snd")
	rcv := sim.NewNode(eng, 2, "rcv")
	imp := sim.NewImpairedLink(eng, rng, rcv, sim.Impairments{LossRate: 0.05})
	fwd := sim.NewLink(eng, "fwd", 8_000_000, 20*sim.Millisecond, 1<<19, imp)
	rev := sim.NewLink(eng, "rev", 8_000_000, 20*sim.Millisecond, 1<<19, snd)
	snd.SetDefaultRoute(fwd)
	rev.Monitor()
	rcv.SetDefaultRoute(rev)

	completed := 0
	var launch func(i int)
	launch = func(i int) {
		if i >= 50 {
			return
		}
		s, _ := Connect(eng, sim.FlowID(i+1), snd, rcv, 30_000,
			NewCubic(DefaultCubicParams()), Config{OnComplete: func(st *FlowStats) {
				if st.Completed {
					completed++
				}
				launch(i + 1)
			}})
		s.Start()
	}
	launch(0)
	eng.RunUntil(20 * 60 * sim.Second)
	if completed != 50 {
		t.Errorf("completed %d/50 short flows under 5%% loss", completed)
	}
}
