package tcp

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// CubicParams are the three TCP Cubic knobs the Phi paper tunes from shared
// network state (Table 1 / Table 2):
//
//   - InitialWindow   (ns-2 windowInit_): the initial congestion window.
//   - InitialSsthresh (ns-2 initial_ssthresh): the initial slow-start
//     threshold. RFC 5681 recommends "arbitrarily high"; the default of
//     65536 segments matches the paper's default.
//   - Beta: (1-Beta) is the multiplicative decrease factor applied on
//     packet loss (the paper's default 0.2 gives a 0.8 decrease factor).
type CubicParams struct {
	InitialWindow   int
	InitialSsthresh int
	Beta            float64
}

// DefaultCubicParams returns the paper's Table 1 defaults.
func DefaultCubicParams() CubicParams {
	return CubicParams{InitialWindow: 2, InitialSsthresh: 65536, Beta: 0.2}
}

// String renders the parameters compactly, e.g. "iw=2 ssthresh=65536 beta=0.2".
func (p CubicParams) String() string {
	return fmt.Sprintf("iw=%d ssthresh=%d beta=%.2g", p.InitialWindow, p.InitialSsthresh, p.Beta)
}

// Valid reports whether the parameters are in sensible ranges.
func (p CubicParams) Valid() bool {
	return p.InitialWindow >= 1 && p.InitialSsthresh >= 2 && p.Beta > 0 && p.Beta < 1
}

// cubicC is the CUBIC scaling constant (Ha, Rhee, Xu 2008).
const cubicC = 0.4

// Cubic implements CUBIC congestion control: cubic window growth around the
// last loss point W_max, with a TCP-friendly lower envelope. The growth
// function is W(t) = C*(t-K)^3 + W_max with K = cbrt(W_max*Beta/C).
type Cubic struct {
	Params CubicParams

	cwnd     float64
	ssthresh float64

	wMax       float64
	epochStart sim.Time
	k          float64
	originW    float64
	srttEst    sim.Time
	lastDecr   sim.Time
}

// NewCubic returns a CUBIC controller with the given parameters.
func NewCubic(p CubicParams) *Cubic {
	if !p.Valid() {
		panic(fmt.Sprintf("tcp: invalid cubic params %v", p))
	}
	return &Cubic{Params: p}
}

// Name implements CongestionControl.
func (c *Cubic) Name() string { return "cubic" }

// Init implements CongestionControl.
func (c *Cubic) Init(now sim.Time) {
	c.cwnd = float64(c.Params.InitialWindow)
	c.ssthresh = float64(c.Params.InitialSsthresh)
	c.epochStart = 0
	c.wMax = 0
}

// Window implements CongestionControl.
func (c *Cubic) Window() float64 { return c.cwnd }

// Ssthresh implements CongestionControl.
func (c *Cubic) Ssthresh() float64 { return c.ssthresh }

// PacingInterval implements CongestionControl (CUBIC is purely window based).
func (c *Cubic) PacingInterval() sim.Time { return 0 }

// OnAck implements CongestionControl.
func (c *Cubic) OnAck(info AckInfo) {
	if info.RTT > 0 {
		if c.srttEst == 0 {
			c.srttEst = info.RTT
		} else {
			c.srttEst = (7*c.srttEst + info.RTT) / 8
		}
	}
	if c.cwnd < c.ssthresh {
		// Slow start: one segment per acked segment.
		c.cwnd += info.AckedSegments
		if c.cwnd > c.ssthresh {
			c.cwnd = c.ssthresh
		}
		return
	}
	c.congestionAvoidance(info.Now)
}

func (c *Cubic) congestionAvoidance(now sim.Time) {
	if c.epochStart == 0 {
		c.epochStart = now
		if c.cwnd < c.wMax {
			c.k = math.Cbrt(c.wMax * c.Params.Beta / cubicC)
			c.originW = c.wMax
		} else {
			c.k = 0
			c.originW = c.cwnd
		}
	}
	rtt := c.srttEst
	if rtt <= 0 {
		rtt = 100 * sim.Millisecond
	}
	t := (now - c.epochStart).Seconds() + rtt.Seconds()
	target := c.originW + cubicC*math.Pow(t-c.k, 3)

	// TCP-friendly region (standard TCP estimate since the epoch).
	wEst := c.originW*(1-c.Params.Beta) +
		3*(c.Params.Beta/(2-c.Params.Beta))*((now-c.epochStart).Seconds()/rtt.Seconds())
	if target < wEst {
		target = wEst
	}

	if target > c.cwnd {
		// Converge over roughly one RTT's worth of acks.
		c.cwnd += (target - c.cwnd) / c.cwnd
	} else {
		c.cwnd += 0.01 / c.cwnd // minimal probing growth
	}
}

// OnLoss implements CongestionControl (triple-dupack loss).
func (c *Cubic) OnLoss(now sim.Time) {
	// Fast convergence: if the new W_max is below the previous one, release
	// bandwidth faster.
	if c.cwnd < c.wMax {
		c.wMax = c.cwnd * (2 - c.Params.Beta) / 2
	} else {
		c.wMax = c.cwnd
	}
	c.cwnd *= 1 - c.Params.Beta
	if c.cwnd < 1 {
		c.cwnd = 1
	}
	c.ssthresh = math.Max(c.cwnd, 2)
	c.epochStart = 0
	c.lastDecr = now
}

// OnTimeout implements CongestionControl.
func (c *Cubic) OnTimeout(now sim.Time) {
	c.wMax = c.cwnd
	c.ssthresh = math.Max(c.cwnd*(1-c.Params.Beta), 2)
	c.cwnd = 1
	c.epochStart = 0
	c.lastDecr = now
}
