package tcp

import "repro/internal/sim"

// rtoEstimator implements the RFC 6298 retransmission timeout computation
// (SRTT/RTTVAR smoothing with the standard gains) with exponential backoff.
type rtoEstimator struct {
	srtt    sim.Time
	rttvar  sim.Time
	hasRTT  bool
	rto     sim.Time
	backoff uint

	min, max sim.Time
}

func newRTOEstimator(initial, min, max sim.Time) *rtoEstimator {
	return &rtoEstimator{rto: initial, min: min, max: max}
}

// Sample folds a new RTT measurement in and resets the backoff.
func (r *rtoEstimator) Sample(rtt sim.Time) {
	if !r.hasRTT {
		r.srtt = rtt
		r.rttvar = rtt / 2
		r.hasRTT = true
	} else {
		diff := r.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		r.rttvar = (3*r.rttvar + diff) / 4
		r.srtt = (7*r.srtt + rtt) / 8
	}
	r.backoff = 0
	r.update()
}

func (r *rtoEstimator) update() {
	rto := r.srtt + 4*r.rttvar
	if rto < r.min {
		rto = r.min
	}
	for i := uint(0); i < r.backoff; i++ {
		rto *= 2
		if rto >= r.max {
			break
		}
	}
	if rto > r.max {
		rto = r.max
	}
	r.rto = rto
}

// Backoff doubles the timeout after an expiry (Karn's algorithm).
func (r *rtoEstimator) Backoff() {
	if r.backoff < 16 {
		r.backoff++
	}
	if !r.hasRTT {
		r.rto *= 2
		if r.rto > r.max {
			r.rto = r.max
		}
		return
	}
	r.update()
}

// RTO returns the current timeout value.
func (r *rtoEstimator) RTO() sim.Time { return r.rto }

// SRTT returns the smoothed RTT (zero before the first sample).
func (r *rtoEstimator) SRTT() sim.Time { return r.srtt }
