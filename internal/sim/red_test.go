package sim

import (
	"math/rand"
	"testing"
)

func TestREDBelowMinThAcceptsAll(t *testing.T) {
	red := NewRED(60000, rand.New(rand.NewSource(1)))
	p := mkPkt(1500)
	for i := 0; i < 100; i++ {
		if !red.Accept(0, 60000, p) {
			t.Fatal("RED dropped with an empty queue")
		}
	}
	if red.EarlyDrops != 0 {
		t.Errorf("early drops = %d", red.EarlyDrops)
	}
}

func TestREDAboveMaxThDropsAll(t *testing.T) {
	red := NewRED(60000, rand.New(rand.NewSource(1)))
	red.avg = float64(red.MaxTh) + 1 // force the average up
	p := mkPkt(100)
	drops := 0
	for i := 0; i < 50; i++ {
		red.avg = float64(red.MaxTh) + 1
		if !red.Accept(red.MaxTh+1000, 60000, p) {
			drops++
		}
	}
	if drops != 50 {
		t.Errorf("dropped %d/50 above MaxTh", drops)
	}
}

func TestREDProbabilisticRegion(t *testing.T) {
	red := NewRED(60000, rand.New(rand.NewSource(1)))
	red.Wq = 1 // track the instantaneous queue for the test
	p := mkPkt(100)
	mid := (red.MinTh + red.MaxTh) / 2
	drops := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if !red.Accept(mid, 60000, p) {
			drops++
		}
	}
	// Expected drop probability ~ MaxP/2 = 0.05.
	frac := float64(drops) / trials
	if frac < 0.02 || frac > 0.09 {
		t.Errorf("mid-region drop fraction = %v, want ~0.05", frac)
	}
}

func TestREDHardOverflowAlwaysDrops(t *testing.T) {
	red := NewRED(1000, rand.New(rand.NewSource(1)))
	if red.Accept(900, 1000, mkPkt(200)) {
		t.Error("RED accepted past hard capacity")
	}
}

func TestREDOnLinkEndToEnd(t *testing.T) {
	eng := NewEngine()
	s := &sink{eng: eng}
	l := NewLink(eng, "red", 1_000_000, Millisecond, 30000, s)
	l.Discipline = NewRED(30000, rand.New(rand.NewSource(7)))
	mon := l.Monitor()
	for i := 0; i < 200; i++ {
		l.Send(mkPkt(1500))
	}
	eng.Run()
	if mon.DroppedPackets == 0 {
		t.Error("RED link dropped nothing under a 200-packet burst into a 20-packet buffer")
	}
	if len(s.pkts) == 0 {
		t.Error("RED link delivered nothing")
	}
}

func TestImpairedLinkLoss(t *testing.T) {
	eng := NewEngine()
	s := &sink{eng: eng}
	imp := NewImpairedLink(eng, NewRNG(1), s, Impairments{LossRate: 0.5})
	for i := 0; i < 2000; i++ {
		imp.Receive(mkPkt(100))
	}
	eng.Run()
	frac := float64(len(s.pkts)) / 2000
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("delivered fraction = %v, want ~0.5", frac)
	}
	if imp.Dropped == 0 {
		t.Error("drop counter zero")
	}
}

func TestImpairedLinkJitterPreservesOrder(t *testing.T) {
	eng := NewEngine()
	s := &sink{eng: eng}
	imp := NewImpairedLink(eng, NewRNG(2), s, Impairments{JitterMax: 10 * Millisecond})
	for i := 0; i < 100; i++ {
		p := mkPkt(100)
		p.Seq = int64(i)
		eng.At(Time(i)*Millisecond, func() { imp.Receive(p) })
	}
	eng.Run()
	if len(s.pkts) != 100 {
		t.Fatalf("delivered %d", len(s.pkts))
	}
	for i := 1; i < len(s.pkts); i++ {
		if s.pkts[i].Seq < s.pkts[i-1].Seq {
			t.Fatal("jitter-only impairment reordered packets")
		}
		if s.at[i] < s.at[i-1] {
			t.Fatal("delivery times not monotone")
		}
	}
	if imp.Jittered == 0 {
		t.Error("jitter counter zero")
	}
}

func TestImpairedLinkReorders(t *testing.T) {
	eng := NewEngine()
	s := &sink{eng: eng}
	imp := NewImpairedLink(eng, NewRNG(3), s, Impairments{ReorderRate: 0.2, ReorderDelay: 5 * Millisecond})
	for i := 0; i < 500; i++ {
		p := mkPkt(100)
		p.Seq = int64(i)
		eng.At(Time(i)*Millisecond, func() { imp.Receive(p) })
	}
	eng.Run()
	if len(s.pkts) != 500 {
		t.Fatalf("delivered %d", len(s.pkts))
	}
	inversions := 0
	for i := 1; i < len(s.pkts); i++ {
		if s.pkts[i].Seq < s.pkts[i-1].Seq {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("no reordering observed at 20% reorder rate")
	}
	if imp.Reordered == 0 {
		t.Error("reorder counter zero")
	}
}

func TestImpairedLinkDefaultReorderDelay(t *testing.T) {
	imp := NewImpairedLink(NewEngine(), NewRNG(1), &sink{}, Impairments{ReorderRate: 0.5})
	if imp.imp.ReorderDelay != 5*Millisecond {
		t.Errorf("default reorder delay = %v", imp.imp.ReorderDelay)
	}
}

func TestRateProbeTrailingWindow(t *testing.T) {
	eng := NewEngine()
	s := &sink{eng: eng}
	l := NewLink(eng, "l", 12_000_000, 0, 1<<20, s)
	mon := l.Monitor()
	probe := NewRateProbe(eng, mon, 100*Millisecond, Second)
	// Saturate for 2 seconds: 1500B at 12 Mbps = 1ms per packet.
	for i := 0; i < 2000; i++ {
		i := i
		eng.At(Time(i)*Millisecond, func() { l.Send(mkPkt(1500)) })
	}
	eng.RunUntil(2 * Second)
	if u := probe.Utilization(); u < 0.95 || u > 1.0 {
		t.Errorf("utilization while saturated = %v, want ~1", u)
	}
	// Go idle: the trailing window forgets the past.
	eng.RunUntil(4 * Second)
	if u := probe.Utilization(); u > 0.05 {
		t.Errorf("utilization after idle = %v, want ~0", u)
	}
}

func TestRateProbeHistoryBounded(t *testing.T) {
	eng := NewEngine()
	l := NewLink(eng, "l", 1_000_000, 0, 0, &sink{eng: eng})
	probe := NewRateProbe(eng, l.Monitor(), 10*Millisecond, 100*Millisecond)
	eng.RunUntil(10 * Second)
	if n := len(probe.times); n > 20 {
		t.Errorf("probe retained %d samples for a 10-sample window", n)
	}
}

func TestLinkTracing(t *testing.T) {
	eng := NewEngine()
	s := &sink{eng: eng}
	l := NewLink(eng, "traced", 12_000_000, Millisecond, 3000, s)
	col := &CollectTracer{}
	l.SetTracer(col)
	for i := 0; i < 5; i++ { // 2 fit in buffer + 1 transmitting, 2 drop
		l.Send(mkPkt(1500))
	}
	eng.Run()
	var enq, deq, del, drop int
	for _, ev := range col.Events() {
		switch ev.Op {
		case TraceEnqueue:
			enq++
		case TraceDequeue:
			deq++
		case TraceDeliver:
			del++
		case TraceDrop:
			drop++
		}
		if ev.Link != "traced" || ev.Pkt.Size != 1500 {
			t.Fatalf("bad event %+v", ev)
		}
	}
	if enq != 3 || deq != 3 || del != 3 || drop != 2 {
		t.Errorf("enq/deq/del/drop = %d/%d/%d/%d, want 3/3/3/2", enq, deq, del, drop)
	}
	// Chronological order.
	evs := col.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("trace not chronological")
		}
	}
	if col.Count() != len(evs) {
		t.Error("count mismatch")
	}
}

func TestWriterTracerFormat(t *testing.T) {
	var buf deterministicBuffer
	tr := NewWriterTracer(&buf)
	tr.Trace(TraceEvent{
		At: 1234567 * Microsecond, Op: TraceEnqueue, Link: "bottleneck",
		Pkt: PacketInfo{Flow: 3, Src: 100, Dst: 10000, Kind: KindData,
			Seq: 2896, Size: 1500, Rexmit: true, CEMark: true},
		QueueBytes: 42000,
	})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	want := "+ 1.234567 bottleneck flow=3 data 100->10000 seq=2896 ack=0 size=1500 q=42000 rexmit ce\n"
	if line != want {
		t.Errorf("trace line:\n got %q\nwant %q", line, want)
	}
	if tr.Events != 1 {
		t.Errorf("events = %d", tr.Events)
	}
}

func TestCollectTracerCap(t *testing.T) {
	col := &CollectTracer{Cap: 3}
	for i := 0; i < 10; i++ {
		col.Trace(TraceEvent{At: Time(i)})
	}
	if col.Count() != 3 {
		t.Errorf("count = %d, want capped 3", col.Count())
	}
	if col.Events()[0].At != 7 {
		t.Error("cap did not keep the newest events")
	}
}

// deterministicBuffer is a minimal strings.Builder-alike for trace tests.
type deterministicBuffer struct{ b []byte }

func (d *deterministicBuffer) Write(p []byte) (int, error) {
	d.b = append(d.b, p...)
	return len(p), nil
}
func (d *deterministicBuffer) String() string { return string(d.b) }
