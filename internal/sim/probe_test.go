package sim

import (
	"bytes"
	"reflect"
	"testing"
)

// probeHarness builds a two-node topology with a bounded link and a
// deterministic packet schedule: a burst that overflows the buffer (so
// drops and queue occupancy appear in the series), then a steady trickle.
func probeHarness(t testing.TB, probed bool, cfg ProbeConfig) (*Engine, *Probe, *LinkSeries) {
	t.Helper()
	eng := NewEngine()
	sink := NewNode(eng, 99, "sink")
	link := NewLink(eng, "l", 8_000_000, 10*Millisecond, 3000, sink)
	var probe *Probe
	var series *LinkSeries
	if probed {
		probe = NewProbe(eng, cfg)
		series = probe.WatchLink("l", link)
	} else {
		link.Monitor()
	}
	send := func(at Time, n int) {
		eng.At(at, func() {
			for i := 0; i < n; i++ {
				link.Send(&Packet{Size: 1000, Dst: 99})
			}
		})
	}
	send(5*Millisecond, 10) // burst: queue fills, some dropped
	for ms := 50; ms < 2000; ms += 25 {
		send(Time(ms)*Millisecond, 1)
	}
	return eng, probe, series
}

func TestProbeDeterministicSeries(t *testing.T) {
	run := func() ProbeDump {
		eng, probe, _ := probeHarness(t, true, ProbeConfig{Interval: 100 * Millisecond})
		eng.RunUntil(2 * Second)
		return probe.Dump()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical runs produced different dumps:\n%+v\nvs\n%+v", a, b)
	}
	if len(a.Links) != 1 {
		t.Fatalf("want 1 link series, got %d", len(a.Links))
	}
	s := a.Links[0]
	if len(s.Samples) != 20 {
		t.Fatalf("2s at 100ms cadence: want 20 samples, got %d", len(s.Samples))
	}
	// The burst lands in the first interval: utilization, queueing, and
	// loss must all register there.
	first := s.Samples[0]
	if first.At != 100*Millisecond {
		t.Errorf("first sample at %v, want 100ms", first.At)
	}
	if first.Utilization <= 0 || first.LossRate <= 0 || first.DroppedPackets == 0 {
		t.Errorf("burst interval should show utilization, loss, drops: %+v", first)
	}
	// Later trickle intervals: some utilization, no loss.
	last := s.Samples[len(s.Samples)-1]
	if last.LossRate != 0 || last.Utilization <= 0 {
		t.Errorf("trickle interval should show loss-free utilization: %+v", last)
	}
}

func TestProbeRingEvictionAtCap(t *testing.T) {
	eng, _, series := probeHarness(t, true, ProbeConfig{Interval: 100 * Millisecond, MaxSamples: 7})
	eng.RunUntil(2 * Second) // 20 ticks into a 7-slot ring
	got := series.Samples()
	if len(got) != 7 {
		t.Fatalf("ring cap 7: got %d samples", len(got))
	}
	if ev := series.Evicted(); ev != 13 {
		t.Fatalf("want 13 evicted, got %d", ev)
	}
	// Oldest retained sample is tick 14 of 20.
	if got[0].At != 1400*Millisecond {
		t.Errorf("oldest retained sample at %v, want 1.4s", got[0].At)
	}
	if got[6].At != 2*Second {
		t.Errorf("newest sample at %v, want 2s", got[6].At)
	}
	for i := 1; i < len(got); i++ {
		if got[i].At <= got[i-1].At {
			t.Fatalf("samples out of order after eviction: %v then %v", got[i-1].At, got[i].At)
		}
	}
}

func TestProbeStop(t *testing.T) {
	eng, probe, series := probeHarness(t, true, ProbeConfig{Interval: 100 * Millisecond})
	eng.At(500*Millisecond, probe.Stop)
	eng.RunUntil(2 * Second)
	// Ticks at 100..400ms fire; the 500ms tick is scheduled before Stop
	// runs in the same instant, so at most 5 samples survive.
	if n := len(series.Samples()); n > 5 {
		t.Fatalf("probe kept sampling after Stop: %d samples", n)
	}
}

// fakeFlow is a scripted FlowProbe.
type fakeFlow struct {
	id    FlowID
	cwnd  int64
	srtt  Time
	acked int64
}

func (f *fakeFlow) FlowProbeID() FlowID { return f.id }
func (f *fakeFlow) FlowProbeSample() FlowProbeSample {
	return FlowProbeSample{CwndBytes: f.cwnd, SRTT: f.srtt, BytesAcked: f.acked}
}

func TestProbeFlowSeriesDeltas(t *testing.T) {
	eng := NewEngine()
	probe := NewProbe(eng, ProbeConfig{Interval: 1 * Second})
	fl := &fakeFlow{id: 7, cwnd: 14480, srtt: 150 * Millisecond, acked: 1_000_000}
	series := probe.WatchFlow("f7", fl)
	// +125000 bytes per second = 1 Mbit/s.
	var grow func()
	grow = func() {
		fl.acked += 125_000
		eng.After(1*Second, grow)
	}
	eng.At(0, grow)
	eng.RunUntil(3 * Second)
	got := series.Samples()
	if len(got) != 3 {
		t.Fatalf("want 3 samples, got %d", len(got))
	}
	for i, s := range got {
		if s.ThroughputMbps != 1.0 {
			t.Errorf("sample %d throughput %v, want 1.0 Mbps", i, s.ThroughputMbps)
		}
		if s.CwndBytes != 14480 || s.SRTT != 150*Millisecond {
			t.Errorf("sample %d state %+v", i, s)
		}
	}
}

func TestProbeDumpJSONRoundTrip(t *testing.T) {
	eng, probe, _ := probeHarness(t, true, ProbeConfig{Interval: 100 * Millisecond})
	fl := &fakeFlow{id: 3, cwnd: 2896, srtt: 80 * Millisecond}
	probe.WatchFlow("flow-3", fl)
	eng.RunUntil(2 * Second)
	want := probe.Dump()

	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDumpJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("JSON round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestProbeDumpCSVRoundTrip(t *testing.T) {
	eng, probe, _ := probeHarness(t, true, ProbeConfig{Interval: 100 * Millisecond})
	fl := &fakeFlow{id: 3, cwnd: 2896, srtt: 80 * Millisecond}
	probe.WatchFlow("flow-3", fl)
	eng.RunUntil(2 * Second)
	want := probe.Dump()

	var buf bytes.Buffer
	if err := want.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDumpCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// CSV does not carry eviction counters; zero them on the reference.
	ref := want
	ref.Links = append([]LinkSeriesDump(nil), want.Links...)
	for i := range ref.Links {
		ref.Links[i].Evicted = 0
	}
	ref.Flows = append([]FlowSeriesDump(nil), want.Flows...)
	for i := range ref.Flows {
		ref.Flows[i].Evicted = 0
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("CSV round trip mismatch:\nwant %+v\ngot  %+v", ref, got)
	}
}

func TestReadDumpCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadDumpCSV(bytes.NewBufferString("a,b\n1,2\n")); err == nil {
		t.Fatal("want error for non-probe CSV")
	}
}

// BenchmarkProbeOverhead pins the cost of an attached probe against the
// identical unprobed simulation. The probe adds one event per interval —
// a fixed, workload-independent cost — so probed throughput must stay
// within 5% of unprobed (measured end-to-end by `make bench-sim` into
// BENCH_sim.json; zero behavioral perturbation is pinned by
// internal/workload's TestScenarioProbePassive).
func BenchmarkProbeOverhead(b *testing.B) {
	for _, probed := range []bool{false, true} {
		name := "detached"
		if probed {
			name = "attached"
		}
		b.Run(name, func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				eng, _, _ := probeHarness(b, probed, ProbeConfig{Interval: 100 * Millisecond})
				eng.RunUntil(2 * Second)
				events += eng.Executed
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
		})
	}
}
