package sim

import "fmt"

// NodeID identifies a node in the simulated topology.
type NodeID int32

// FlowID identifies an end-to-end flow (one transport connection).
type FlowID uint64

// PacketKind distinguishes the transport roles a simulated packet can play.
type PacketKind uint8

// Packet kinds.
const (
	KindData PacketKind = iota
	KindAck
)

func (k PacketKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Packet is the unit of transmission. Transport protocols stash their
// headers in the exported transport fields (Seq, Ack); the simulator itself
// only inspects Src, Dst, Size, and Flow.
type Packet struct {
	Flow FlowID
	Src  NodeID
	Dst  NodeID
	Kind PacketKind

	// Size is the wire size in bytes, including headers.
	Size int

	// Seq is the first payload byte carried (data) or echoed (ack).
	Seq int64
	// Ack is the cumulative acknowledgment: the next byte expected.
	Ack int64
	// Payload is the number of payload bytes carried by a data packet.
	Payload int

	// SentAt is stamped by the sender when the packet enters the network,
	// enabling RTT measurement when echoed in EchoSentAt of the ack.
	SentAt Time
	// EchoSentAt echoes the SentAt of the data packet an ack acknowledges.
	EchoSentAt Time
	// Retransmit marks a retransmitted data packet; receivers echo acks
	// normally, monitors may count them separately.
	Retransmit bool

	// Sack carries selective-acknowledgment ranges [start, end) of bytes
	// the receiver holds above the cumulative ack, lowest ranges first.
	Sack [][2]int64

	// ECT marks the packet ECN-capable (RFC 3168); CE is set by a marking
	// queue that would otherwise have dropped it; ECE is the receiver's
	// echo of CE back to the sender on acks.
	ECT bool
	CE  bool
	ECE bool
}

func (p *Packet) String() string {
	return fmt.Sprintf("%s flow=%d %d->%d seq=%d ack=%d size=%d", p.Kind, p.Flow, p.Src, p.Dst, p.Seq, p.Ack, p.Size)
}
