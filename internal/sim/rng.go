package sim

import "math/rand"

// RNG wraps a seeded PRNG with the distributions the Phi evaluation uses
// (exponential on/off workloads, Zipf destination popularity). Every
// stochastic component of a simulation should draw from an RNG derived from
// the run seed so experiments are exactly reproducible.
type RNG struct {
	*rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child RNG. Components (each sender, each
// generator) should get their own fork so adding one component does not
// perturb the random sequence seen by the others.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Int63())
}

// Exponential draws from an exponential distribution with the given mean.
// A non-positive mean yields 0.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.ExpFloat64() * mean
}

// ExpDuration draws an exponentially distributed virtual duration.
func (r *RNG) ExpDuration(mean Time) Time {
	return Time(r.Exponential(float64(mean)))
}

// ExpBytes draws an exponentially distributed transfer size, at least 1 byte.
func (r *RNG) ExpBytes(mean int64) int64 {
	b := int64(r.Exponential(float64(mean)))
	if b < 1 {
		b = 1
	}
	return b
}

// Jitter returns a uniform duration in [0, max), used to desynchronize
// otherwise identical senders at startup.
func (r *RNG) Jitter(max Time) Time {
	if max <= 0 {
		return 0
	}
	return Time(r.Int63n(int64(max)))
}
