// Package sim implements a deterministic, packet-level discrete-event
// network simulator in the spirit of ns-2. It provides virtual time, an
// event scheduler, nodes, drop-tail links, topology builders (notably the
// dumbbell used throughout the Phi paper's evaluation), and monitors that
// record link utilization, queueing, and loss.
//
// All simulations are deterministic given a seed: virtual time is an int64
// nanosecond counter and simultaneous events fire in scheduling order.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in nanoseconds since the start
// of the simulation. It is deliberately distinct from time.Time: simulated
// clocks share nothing with the wall clock.
type Time int64

// Duration constants expressed in virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. It is used as the
// horizon for "never" deadlines.
const MaxTime = Time(math.MaxInt64)

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Milliseconds converts a floating-point number of milliseconds to a Time.
func Milliseconds(ms float64) Time { return Time(ms * float64(Millisecond)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with adaptive units, e.g. "150ms" or "2.5s".
func (t Time) String() string {
	switch {
	case t == MaxTime:
		return "never"
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// TxTime returns the serialization delay of sizeBytes at rateBps bits/s.
func TxTime(sizeBytes int, rateBps int64) Time {
	if rateBps <= 0 {
		return 0
	}
	return Time(float64(sizeBytes) * 8 / float64(rateBps) * float64(Second))
}
