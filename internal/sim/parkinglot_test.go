package sim

import (
	"testing"
	"testing/quick"
)

func TestParkingLotEndToEndDelivery(t *testing.T) {
	eng := NewEngine()
	pl := NewParkingLot(eng, DefaultParkingLot(3))
	s := &sink{eng: eng}
	pl.LongReceiver.Attach(1, s)
	pl.LongSender.Send(&Packet{Flow: 1, Src: PLLongSenderID(), Dst: PLLongReceiverID(), Size: 1500})
	eng.Run()
	if len(s.pkts) != 1 {
		t.Fatal("long path broken")
	}
	// One-way: 2 access + 3 hops = 2ms + 30ms plus serialization.
	if s.at[0] < 32*Millisecond || s.at[0] > 34*Millisecond {
		t.Errorf("one-way delay %v, want ~32ms", s.at[0])
	}
}

func TestParkingLotReversePath(t *testing.T) {
	eng := NewEngine()
	pl := NewParkingLot(eng, DefaultParkingLot(3))
	s := &sink{eng: eng}
	pl.LongSender.Attach(1, s)
	pl.LongReceiver.Send(&Packet{Flow: 1, Src: PLLongReceiverID(), Dst: PLLongSenderID(), Size: 40})
	eng.Run()
	if len(s.pkts) != 1 {
		t.Fatal("reverse long path broken")
	}
}

func TestParkingLotCrossPaths(t *testing.T) {
	eng := NewEngine()
	pl := NewParkingLot(eng, DefaultParkingLot(3))
	for i := 0; i < 3; i++ {
		s := &sink{eng: eng}
		pl.CrossReceivers[i].Attach(FlowID(i+1), s)
		pl.CrossSenders[i].Send(&Packet{Flow: FlowID(i + 1),
			Src: PLCrossSenderID(i), Dst: PLCrossRecvID(i), Size: 1500})
		eng.Run()
		if len(s.pkts) != 1 {
			t.Fatalf("cross path %d broken", i)
		}
		// Cross ack path too.
		back := &sink{eng: eng}
		pl.CrossSenders[i].Attach(FlowID(100+i), back)
		pl.CrossReceivers[i].Send(&Packet{Flow: FlowID(100 + i),
			Src: PLCrossRecvID(i), Dst: PLCrossSenderID(i), Size: 40})
		eng.Run()
		if len(back.pkts) != 1 {
			t.Fatalf("cross reverse path %d broken", i)
		}
	}
}

func TestParkingLotLongRTT(t *testing.T) {
	pl := NewParkingLot(NewEngine(), DefaultParkingLot(3))
	// 2 * (3*10ms + 2*1ms) = 64ms.
	if got := pl.LongRTT(); got != 64*Millisecond {
		t.Errorf("long RTT = %v, want 64ms", got)
	}
	if pl.HopPathKey(1) != "wan/hop1" {
		t.Errorf("path key = %q", pl.HopPathKey(1))
	}
}

func TestParkingLotPanicsWithoutHops(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero hops")
		}
	}()
	NewParkingLot(NewEngine(), ParkingLotConfig{})
}

// Property: a drop-tail link never reorders — delivery order equals send
// order for any arrival pattern (the FIFO guarantee the paper's incentive
// argument rests on).
func TestLinkFIFOProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := NewEngine()
		s := &sink{eng: eng}
		l := NewLink(eng, "l", 5_000_000, 2*Millisecond, 1<<20, s)
		var sendOrder []int64
		for i, raw := range sizes {
			p := mkPkt(int(raw%1400) + 60)
			p.Seq = int64(i)
			jitteredAt := Time(i) * Time(raw%500) * Microsecond / 7
			eng.At(jitteredAt, func() {
				sendOrder = append(sendOrder, p.Seq)
				l.Send(p)
			})
		}
		eng.Run()
		if len(s.pkts) != len(sendOrder) {
			return false
		}
		for i := range s.pkts {
			if s.pkts[i].Seq != sendOrder[i] {
				return false // delivery order must equal send order
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
