package sim

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// TraceEvent is one packet-level event in a simulation trace, in the
// spirit of ns-2's trace files: every enqueue (+), dequeue/transmit (-),
// drop (d), and delivery (r) on a traced link.
type TraceEvent struct {
	At   Time
	Op   TraceOp
	Link string
	Pkt  PacketInfo
	// QueueBytes is the buffer occupancy after the event.
	QueueBytes int
}

// PacketInfo is the subset of packet fields recorded in traces.
type PacketInfo struct {
	Flow   FlowID
	Src    NodeID
	Dst    NodeID
	Kind   PacketKind
	Seq    int64
	Ack    int64
	Size   int
	Rexmit bool
	CEMark bool
}

// TraceOp identifies the event type.
type TraceOp byte

// Trace operations, matching ns-2's single-letter convention.
const (
	TraceEnqueue TraceOp = '+'
	TraceDequeue TraceOp = '-'
	TraceDrop    TraceOp = 'd'
	TraceDeliver TraceOp = 'r'
)

// Tracer receives trace events from instrumented links.
type Tracer interface {
	Trace(ev TraceEvent)
}

// WriterTracer renders events as ns-2-style text lines:
//
//   - 1.234567 bottleneck flow=3 data 100->10000 seq=2896 size=1500 q=42000
//
// It buffers internally; call Flush (or Close the underlying writer side)
// when done. Safe for use from a single simulation goroutine.
type WriterTracer struct {
	w *bufio.Writer
	// Events counts traced events.
	Events uint64
}

// NewWriterTracer wraps w.
func NewWriterTracer(w io.Writer) *WriterTracer {
	return &WriterTracer{w: bufio.NewWriter(w)}
}

// Trace implements Tracer.
func (t *WriterTracer) Trace(ev TraceEvent) {
	t.Events++
	extra := ""
	if ev.Pkt.Rexmit {
		extra += " rexmit"
	}
	if ev.Pkt.CEMark {
		extra += " ce"
	}
	fmt.Fprintf(t.w, "%c %.6f %s flow=%d %s %d->%d seq=%d ack=%d size=%d q=%d%s\n",
		ev.Op, ev.At.Seconds(), ev.Link, ev.Pkt.Flow, ev.Pkt.Kind,
		ev.Pkt.Src, ev.Pkt.Dst, ev.Pkt.Seq, ev.Pkt.Ack, ev.Pkt.Size,
		ev.QueueBytes, extra)
}

// Flush drains buffered output.
func (t *WriterTracer) Flush() error { return t.w.Flush() }

// CollectTracer retains events in memory (tests, programmatic analysis).
// Safe for concurrent use.
type CollectTracer struct {
	mu     sync.Mutex
	events []TraceEvent
	// Cap bounds retention (0 = unbounded).
	Cap int
}

// Trace implements Tracer.
func (c *CollectTracer) Trace(ev TraceEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
	if c.Cap > 0 && len(c.events) > c.Cap {
		c.events = c.events[len(c.events)-c.Cap:]
	}
}

// Events returns a copy of the retained events.
func (c *CollectTracer) Events() []TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TraceEvent(nil), c.events...)
}

// Count returns the number of retained events.
func (c *CollectTracer) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

func packetInfo(p *Packet) PacketInfo {
	return PacketInfo{
		Flow: p.Flow, Src: p.Src, Dst: p.Dst, Kind: p.Kind,
		Seq: p.Seq, Ack: p.Ack, Size: p.Size,
		Rexmit: p.Retransmit, CEMark: p.CE,
	}
}
