package sim

// DumbbellConfig parameterizes the Figure 1 topology: N senders and N
// receivers joined by a single bottleneck link between two routers, with
// the bottleneck buffer sized as a multiple of the bandwidth-delay product.
type DumbbellConfig struct {
	// Senders is the number of sender/receiver pairs.
	Senders int
	// BottleneckRate is the bottleneck line rate in bits per second.
	BottleneckRate int64
	// RTT is the two-way propagation delay between a sender and its
	// receiver when queues are empty.
	RTT Time
	// BufferBDP sizes the bottleneck buffer as this multiple of the
	// bandwidth-delay product (the paper uses 5).
	BufferBDP float64
	// AccessRate is the per-host access link rate; it must exceed the
	// bottleneck so the bottleneck is the bottleneck. Default 1 Gbit/s.
	AccessRate int64
	// Discipline optionally overrides the bottleneck queue discipline.
	Discipline QueueDiscipline
}

// DefaultDumbbell returns the configuration used for Table 3: 15 Mbit/s
// bottleneck, 150 ms RTT, buffer 5 x BDP.
func DefaultDumbbell(senders int) DumbbellConfig {
	return DumbbellConfig{
		Senders:        senders,
		BottleneckRate: 15_000_000,
		RTT:            150 * Millisecond,
		BufferBDP:      5,
		AccessRate:     1_000_000_000,
	}
}

// Dumbbell is the constructed topology. Sender i talks to Receiver i; the
// forward bottleneck (data direction) is monitored.
type Dumbbell struct {
	Eng *Engine

	Senders   []*Node
	Receivers []*Node
	LeftRtr   *Node
	RightRtr  *Node

	// Bottleneck carries data left-to-right; BottleneckRev carries acks.
	Bottleneck    *Link
	BottleneckRev *Link

	cfg DumbbellConfig
}

// NodeID allocation inside a dumbbell: routers get 1 and 2, senders
// 100+i, receivers 200+i.
const (
	leftRouterID  NodeID = 1
	rightRouterID NodeID = 2
	senderBaseID  NodeID = 100
	recvBaseID    NodeID = 10000
)

// SenderID returns the NodeID of sender i.
func SenderID(i int) NodeID { return senderBaseID + NodeID(i) }

// ReceiverID returns the NodeID of receiver i.
func ReceiverID(i int) NodeID { return recvBaseID + NodeID(i) }

// NewDumbbell builds the topology on the given engine.
func NewDumbbell(eng *Engine, cfg DumbbellConfig) *Dumbbell {
	if cfg.Senders <= 0 {
		panic("sim: dumbbell needs at least one sender")
	}
	if cfg.AccessRate == 0 {
		cfg.AccessRate = 1_000_000_000
	}
	if cfg.BufferBDP == 0 {
		cfg.BufferBDP = 5
	}
	d := &Dumbbell{Eng: eng, cfg: cfg}

	d.LeftRtr = NewNode(eng, leftRouterID, "left-router")
	d.RightRtr = NewNode(eng, rightRouterID, "right-router")

	// Propagation split: each access hop RTT/8, bottleneck RTT/4, so the
	// round trip sums to RTT.
	accessDelay := cfg.RTT / 8
	bnDelay := cfg.RTT / 4

	bdp := int(float64(cfg.BottleneckRate) / 8 * cfg.RTT.Seconds())
	bufBytes := int(cfg.BufferBDP * float64(bdp))

	d.Bottleneck = NewLink(eng, "bottleneck", cfg.BottleneckRate, bnDelay, bufBytes, d.RightRtr)
	d.Bottleneck.Discipline = cfg.Discipline
	d.BottleneckRev = NewLink(eng, "bottleneck-rev", cfg.BottleneckRate, bnDelay, bufBytes, d.LeftRtr)
	d.BottleneckRev.Discipline = cfg.Discipline
	d.LeftRtr.SetDefaultRoute(d.Bottleneck)
	d.RightRtr.SetDefaultRoute(d.BottleneckRev)

	for i := 0; i < cfg.Senders; i++ {
		s := NewNode(eng, SenderID(i), "sender")
		r := NewNode(eng, ReceiverID(i), "receiver")
		d.Senders = append(d.Senders, s)
		d.Receivers = append(d.Receivers, r)

		// Access links are generously buffered; they are not the bottleneck.
		accessBuf := int(float64(cfg.AccessRate) / 8 * cfg.RTT.Seconds())
		up := NewLink(eng, "access-up", cfg.AccessRate, accessDelay, accessBuf, d.LeftRtr)
		down := NewLink(eng, "access-down", cfg.AccessRate, accessDelay, accessBuf, s)
		s.SetDefaultRoute(up)
		d.LeftRtr.AddRoute(s.ID, down)

		rup := NewLink(eng, "raccess-up", cfg.AccessRate, accessDelay, accessBuf, d.RightRtr)
		rdown := NewLink(eng, "raccess-down", cfg.AccessRate, accessDelay, accessBuf, r)
		r.SetDefaultRoute(rup)
		d.RightRtr.AddRoute(r.ID, rdown)
	}
	return d
}

// Config returns the configuration the dumbbell was built with.
func (d *Dumbbell) Config() DumbbellConfig { return d.cfg }

// BufferBytes returns the bottleneck buffer size in bytes.
func (d *Dumbbell) BufferBytes() int { return d.Bottleneck.Capacity }

// BDPBytes returns the bottleneck bandwidth-delay product in bytes.
func (d *Dumbbell) BDPBytes() int {
	return int(float64(d.cfg.BottleneckRate) / 8 * d.cfg.RTT.Seconds())
}
