package sim

import "math/rand"

// RED is Random Early Detection queue management. The paper's incentive
// argument (Sections 2.2.3 and 3.1) hinges on the prevalence of FIFO
// drop-tail queues — "FIFO queueing is not incentive compatible" — so the
// queue discipline is pluggable and RED exists as the counterfactual: an
// ablation can show how the Phi deployment story changes when the network
// polices early instead.
//
// This is the classic Floyd/Jacobson design: an EWMA of the queue size is
// compared against min/max thresholds; between them packets are dropped
// with a probability rising to MaxP, above MaxTh everything is dropped.
type RED struct {
	// MinTh and MaxTh are thresholds on the average queue size in bytes.
	MinTh, MaxTh int
	// MaxP is the drop probability at MaxTh (default 0.1).
	MaxP float64
	// Wq is the EWMA weight for the average queue size (default 0.002).
	Wq float64
	// Rand supplies randomness; it must be set (use the run's seeded RNG)
	// so simulations stay deterministic.
	Rand *rand.Rand
	// MarkECT enables RFC 3168 behaviour: ECN-capable packets are marked
	// CE instead of being early-dropped.
	MarkECT bool

	avg float64
	// EarlyDrops counts probabilistic (early) drops separately from
	// overflow; Marked counts CE markings in ECN mode.
	EarlyDrops uint64
	Marked     uint64
}

// NewRED returns a RED discipline with thresholds derived from the buffer
// capacity: MinTh = cap/6, MaxTh = cap/2, per common guidance.
func NewRED(capacityBytes int, rng *rand.Rand) *RED {
	return &RED{
		MinTh: capacityBytes / 6,
		MaxTh: capacityBytes / 2,
		MaxP:  0.1,
		Wq:    0.002,
		Rand:  rng,
	}
}

// Accept implements QueueDiscipline.
func (r *RED) Accept(queuedBytes, capacityBytes int, p *Packet) bool {
	if queuedBytes+p.Size > capacityBytes {
		return false // hard overflow
	}
	r.avg = (1-r.Wq)*r.avg + r.Wq*float64(queuedBytes)
	switch {
	case r.avg < float64(r.MinTh):
		return true
	case r.avg >= float64(r.MaxTh):
		return r.congested(p)
	default:
		pr := r.MaxP * (r.avg - float64(r.MinTh)) / float64(r.MaxTh-r.MinTh)
		if r.Rand.Float64() < pr {
			return r.congested(p)
		}
		return true
	}
}

// congested handles an early-drop decision: mark instead when both sides
// are ECN-capable.
func (r *RED) congested(p *Packet) bool {
	if r.MarkECT && p.ECT {
		p.CE = true
		r.Marked++
		return true
	}
	r.EarlyDrops++
	return false
}
