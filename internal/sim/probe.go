package sim

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Probe samples attached link monitors and flows on a fixed virtual-time
// cadence into bounded, ring-buffered time series — the live form of the
// paper's Figure 2/3 dynamics: bottleneck utilization u and queue q over
// time, plus per-flow congestion state. Samples are taken on the engine's
// virtual clock, so a probed run is deterministic: the same seed yields
// bit-identical series regardless of wall-clock speed or parallelism.
//
// A Probe is passive with respect to the traffic it observes: it reads
// the monitor's counters, never touches the queue, and schedules exactly
// one event per interval, so its overhead is a fixed, tiny fraction of
// the event budget (pinned by BenchmarkProbeOverhead).
type Probe struct {
	eng    *Engine
	cfg    ProbeConfig
	handle EventHandle

	links []*LinkSeries
	flows []*FlowSeries
}

// ProbeConfig parameterizes a Probe.
type ProbeConfig struct {
	// Interval is the sampling cadence in virtual time. Default 100ms.
	Interval Time
	// MaxSamples bounds each series; when full, the oldest sample is
	// evicted (the series keeps the trailing window). Default 4096.
	MaxSamples int
}

func (c *ProbeConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = 100 * Millisecond
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 4096
	}
}

// FlowProbeSample is the instantaneous congestion state a transport
// endpoint exposes to a Probe.
type FlowProbeSample struct {
	// CwndBytes is the current congestion window in bytes.
	CwndBytes int64
	// SRTT is the smoothed round-trip time estimate (0 before the first
	// sample).
	SRTT Time
	// BytesAcked is the cumulative payload delivered so far; the probe
	// differentiates it into per-interval throughput.
	BytesAcked int64
}

// FlowProbe is implemented by transport senders (notably *tcp.Sender)
// that can report their congestion state to a Probe.
type FlowProbe interface {
	FlowProbeID() FlowID
	FlowProbeSample() FlowProbeSample
}

// LinkSample is one cadence tick of a link series. Rates are computed
// over the interval since the previous sample, not cumulatively, so the
// series shows dynamics (the sawtooth, the standing queue), not the
// long-run average a LinkMonitor reports.
type LinkSample struct {
	// At is the virtual sample time.
	At Time `json:"at_ns"`
	// Utilization is forwarded bits over capacity for this interval.
	Utilization float64 `json:"utilization"`
	// QueueBytes / QueuePackets are the instantaneous buffer occupancy.
	QueueBytes   int `json:"queue_bytes"`
	QueuePackets int `json:"queue_packets"`
	// LossRate is interval drops over interval arrivals (0 when idle).
	LossRate float64 `json:"loss_rate"`
	// ForwardedBytes / DroppedPackets are interval deltas.
	ForwardedBytes uint64 `json:"forwarded_bytes"`
	DroppedPackets uint64 `json:"dropped_packets"`
}

// FlowSample is one cadence tick of a flow series.
type FlowSample struct {
	At Time `json:"at_ns"`
	// CwndBytes is the congestion window at the sample instant.
	CwndBytes int64 `json:"cwnd_bytes"`
	// SRTT is the smoothed RTT estimate at the sample instant.
	SRTT Time `json:"srtt_ns"`
	// ThroughputMbps is delivered payload over this interval.
	ThroughputMbps float64 `json:"throughput_mbps"`
}

// ring is a bounded FIFO of samples; at capacity the oldest is evicted.
type ring[T any] struct {
	buf     []T
	start   int // index of the oldest element
	n       int
	evicted uint64
}

func newRing[T any](capacity int) ring[T] { return ring[T]{buf: make([]T, capacity)} }

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.buf[r.start] = v
		r.start = (r.start + 1) % len(r.buf)
		r.evicted++
		return
	}
	r.buf[(r.start+r.n)%len(r.buf)] = v
	r.n++
}

// slice returns the samples oldest-first.
func (r *ring[T]) slice() []T {
	out := make([]T, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// LinkSeries is the bounded time series of one watched link.
type LinkSeries struct {
	Name string
	mon  *LinkMonitor
	link *Link
	ring ring[LinkSample]

	// previous cumulative monitor readings, for interval deltas
	lastForwarded uint64
	lastArrived   uint64
	lastDropped   uint64
}

// Samples returns the retained samples, oldest first.
func (s *LinkSeries) Samples() []LinkSample { return s.ring.slice() }

// Evicted returns how many samples were dropped at the ring cap.
func (s *LinkSeries) Evicted() uint64 { return s.ring.evicted }

// FlowSeries is the bounded time series of one watched flow.
type FlowSeries struct {
	Name string
	flow FlowProbe
	ring ring[FlowSample]

	lastAcked int64
}

// Samples returns the retained samples, oldest first.
func (s *FlowSeries) Samples() []FlowSample { return s.ring.slice() }

// Evicted returns how many samples were dropped at the ring cap.
func (s *FlowSeries) Evicted() uint64 { return s.ring.evicted }

// NewProbe creates a probe on eng and starts its sampling clock: the
// first tick fires one interval from now, so series attached at t=0 get
// their first sample at t=Interval.
func NewProbe(eng *Engine, cfg ProbeConfig) *Probe {
	cfg.defaults()
	p := &Probe{eng: eng, cfg: cfg}
	p.handle = eng.After(cfg.Interval, p.tick)
	return p
}

// Interval returns the sampling cadence.
func (p *Probe) Interval() Time { return p.cfg.Interval }

// WatchLink attaches a link under the given name (attaching the link's
// monitor if needed) and returns its series. A nil probe returns nil, so
// wiring code can attach unconditionally.
func (p *Probe) WatchLink(name string, l *Link) *LinkSeries {
	if p == nil {
		return nil
	}
	mon := l.Monitor()
	s := &LinkSeries{Name: name, mon: mon, link: l, ring: newRing[LinkSample](p.cfg.MaxSamples),
		lastForwarded: mon.ForwardedBytes, lastArrived: mon.ArrivedPackets, lastDropped: mon.DroppedPackets}
	p.links = append(p.links, s)
	return s
}

// WatchFlow attaches a flow under the given name and returns its series.
// A nil probe returns nil.
func (p *Probe) WatchFlow(name string, f FlowProbe) *FlowSeries {
	if p == nil {
		return nil
	}
	s := &FlowSeries{Name: name, flow: f, ring: newRing[FlowSample](p.cfg.MaxSamples)}
	s.lastAcked = f.FlowProbeSample().BytesAcked
	p.flows = append(p.flows, s)
	return s
}

// Stop cancels the sampling clock. Attached series keep their samples.
func (p *Probe) Stop() {
	if p == nil {
		return
	}
	p.handle.Cancel()
}

func (p *Probe) tick() {
	now := p.eng.Now()
	dt := p.cfg.Interval.Seconds()
	for _, s := range p.links {
		fwd := s.mon.ForwardedBytes - s.lastForwarded
		arr := s.mon.ArrivedPackets - s.lastArrived
		drop := s.mon.DroppedPackets - s.lastDropped
		s.lastForwarded, s.lastArrived, s.lastDropped =
			s.mon.ForwardedBytes, s.mon.ArrivedPackets, s.mon.DroppedPackets
		var loss float64
		if arr > 0 {
			loss = float64(drop) / float64(arr)
		}
		s.ring.push(LinkSample{
			At:             now,
			Utilization:    float64(fwd) * 8 / (float64(s.link.Rate) * dt),
			QueueBytes:     s.link.QueuedBytes(),
			QueuePackets:   s.link.QueuedPackets(),
			LossRate:       loss,
			ForwardedBytes: fwd,
			DroppedPackets: drop,
		})
	}
	for _, s := range p.flows {
		st := s.flow.FlowProbeSample()
		acked := st.BytesAcked - s.lastAcked
		s.lastAcked = st.BytesAcked
		s.ring.push(FlowSample{
			At:             now,
			CwndBytes:      st.CwndBytes,
			SRTT:           st.SRTT,
			ThroughputMbps: float64(acked) * 8 / dt / 1e6,
		})
	}
	p.handle = p.eng.After(p.cfg.Interval, p.tick)
}

// ProbeDump is the exportable snapshot of every series a probe holds.
// It round-trips exactly through both JSON and CSV (see ReadDumpJSON /
// ReadDumpCSV), which is what lets an archived run's dynamics be
// re-plotted or diffed later.
type ProbeDump struct {
	// IntervalNs is the sampling cadence in virtual nanoseconds.
	IntervalNs int64            `json:"interval_ns"`
	Links      []LinkSeriesDump `json:"links,omitempty"`
	Flows      []FlowSeriesDump `json:"flows,omitempty"`
}

// LinkSeriesDump is one link series in export form.
type LinkSeriesDump struct {
	Name    string       `json:"name"`
	Evicted uint64       `json:"evicted"`
	Samples []LinkSample `json:"samples"`
}

// FlowSeriesDump is one flow series in export form.
type FlowSeriesDump struct {
	Name    string       `json:"name"`
	Evicted uint64       `json:"evicted"`
	Samples []FlowSample `json:"samples"`
}

// Dump snapshots every series, links then flows, each in attach order.
func (p *Probe) Dump() ProbeDump {
	d := ProbeDump{IntervalNs: int64(p.cfg.Interval)}
	for _, s := range p.links {
		d.Links = append(d.Links, LinkSeriesDump{Name: s.Name, Evicted: s.ring.evicted, Samples: s.Samples()})
	}
	for _, s := range p.flows {
		d.Flows = append(d.Flows, FlowSeriesDump{Name: s.Name, Evicted: s.ring.evicted, Samples: s.Samples()})
	}
	return d
}

// WriteJSON writes the dump as indented JSON.
func (d ProbeDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadDumpJSON parses a dump written by WriteJSON.
func ReadDumpJSON(r io.Reader) (ProbeDump, error) {
	var d ProbeDump
	err := json.NewDecoder(r).Decode(&d)
	return d, err
}

// probeCSVHeader is the unified CSV schema: one row per sample, link and
// flow series distinguished by the kind column, inapplicable cells empty.
var probeCSVHeader = []string{
	"kind", "series", "t_ns",
	"utilization", "queue_bytes", "queue_packets", "loss_rate", "forwarded_bytes", "dropped_packets",
	"cwnd_bytes", "srtt_ns", "throughput_mbps",
}

func fg(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV writes every series as one flat CSV table (schema in the
// header row). Row order is deterministic: links then flows, attach
// order, samples oldest-first.
func (d ProbeDump) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(probeCSVHeader); err != nil {
		return err
	}
	// The interval rides along in a pseudo row so the CSV alone
	// reconstructs the dump.
	if err := cw.Write([]string{"interval", "", strconv.FormatInt(d.IntervalNs, 10), "", "", "", "", "", "", "", "", ""}); err != nil {
		return err
	}
	for _, s := range d.Links {
		for _, x := range s.Samples {
			if err := cw.Write([]string{
				"link", s.Name, strconv.FormatInt(int64(x.At), 10),
				fg(x.Utilization), strconv.Itoa(x.QueueBytes), strconv.Itoa(x.QueuePackets),
				fg(x.LossRate), strconv.FormatUint(x.ForwardedBytes, 10), strconv.FormatUint(x.DroppedPackets, 10),
				"", "", "",
			}); err != nil {
				return err
			}
		}
	}
	for _, s := range d.Flows {
		for _, x := range s.Samples {
			if err := cw.Write([]string{
				"flow", s.Name, strconv.FormatInt(int64(x.At), 10),
				"", "", "", "", "", "",
				strconv.FormatInt(x.CwndBytes, 10), strconv.FormatInt(int64(x.SRTT), 10), fg(x.ThroughputMbps),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadDumpCSV parses a dump written by WriteCSV. Evicted counts are not
// carried by the CSV form and read back as zero.
func ReadDumpCSV(r io.Reader) (ProbeDump, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return ProbeDump{}, err
	}
	if len(rows) == 0 || len(rows[0]) != len(probeCSVHeader) {
		return ProbeDump{}, fmt.Errorf("sim: not a probe CSV")
	}
	var d ProbeDump
	links := map[string]*LinkSeriesDump{}
	flows := map[string]*FlowSeriesDump{}
	var linkOrder, flowOrder []string
	pf := func(s string) float64 { v, _ := strconv.ParseFloat(s, 64); return v }
	pi := func(s string) int { v, _ := strconv.Atoi(s); return v }
	pu := func(s string) uint64 { v, _ := strconv.ParseUint(s, 10, 64); return v }
	pt := func(s string) Time { v, _ := strconv.ParseInt(s, 10, 64); return Time(v) }
	for _, row := range rows[1:] {
		switch row[0] {
		case "interval":
			d.IntervalNs = int64(pt(row[2]))
		case "link":
			s, ok := links[row[1]]
			if !ok {
				s = &LinkSeriesDump{Name: row[1]}
				links[row[1]] = s
				linkOrder = append(linkOrder, row[1])
			}
			s.Samples = append(s.Samples, LinkSample{
				At: pt(row[2]), Utilization: pf(row[3]),
				QueueBytes: pi(row[4]), QueuePackets: pi(row[5]), LossRate: pf(row[6]),
				ForwardedBytes: pu(row[7]), DroppedPackets: pu(row[8]),
			})
		case "flow":
			s, ok := flows[row[1]]
			if !ok {
				s = &FlowSeriesDump{Name: row[1]}
				flows[row[1]] = s
				flowOrder = append(flowOrder, row[1])
			}
			v, _ := strconv.ParseInt(row[9], 10, 64)
			s.Samples = append(s.Samples, FlowSample{
				At: pt(row[2]), CwndBytes: v,
				SRTT: pt(row[10]), ThroughputMbps: pf(row[11]),
			})
		default:
			return ProbeDump{}, fmt.Errorf("sim: unknown probe CSV row kind %q", row[0])
		}
	}
	for _, n := range linkOrder {
		d.Links = append(d.Links, *links[n])
	}
	for _, n := range flowOrder {
		d.Flows = append(d.Flows, *flows[n])
	}
	return d, nil
}

// MaxQueueBytes returns the largest sampled queue occupancy.
func (s LinkSeriesDump) MaxQueueBytes() int {
	max := 0
	for _, x := range s.Samples {
		if x.QueueBytes > max {
			max = x.QueueBytes
		}
	}
	return max
}

// UtilizationQuantile returns the q-quantile (0..1) of the sampled
// per-interval utilization, 0 for an empty series.
func (s LinkSeriesDump) UtilizationQuantile(q float64) float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	xs := make([]float64, len(s.Samples))
	for i, x := range s.Samples {
		xs[i] = x.Utilization
	}
	sort.Float64s(xs)
	i := int(q * float64(len(xs)-1))
	return xs[i]
}
