package sim

// LinkMonitor accumulates the per-link statistics the Phi context server
// and the experiment harness consume: bytes forwarded (for utilization),
// drops (for loss rate), and a time-weighted average of queue occupancy.
type LinkMonitor struct {
	link *Link
	eng  *Engine

	start Time

	// Arrivals.
	ArrivedPackets uint64
	ArrivedBytes   uint64

	// Successfully serialized onto the wire.
	ForwardedPackets uint64
	ForwardedBytes   uint64

	// Dropped at the buffer (or while down).
	DroppedPackets uint64
	DroppedBytes   uint64

	// Queue occupancy integral for time-weighted averages.
	lastChange     Time
	lastBytes      int
	lastPackets    int
	byteSeconds    float64 // integral of queuedBytes dt (seconds)
	packetSeconds  float64 // integral of queuedPackets dt (seconds)
	MaxQueueBytes  int
	MaxQueuePacket int
}

func newLinkMonitor(l *Link) *LinkMonitor {
	return &LinkMonitor{link: l, eng: l.eng, start: l.eng.Now(), lastChange: l.eng.Now()}
}

func (m *LinkMonitor) onArrive(p *Packet) {
	m.ArrivedPackets++
	m.ArrivedBytes += uint64(p.Size)
}

func (m *LinkMonitor) onForward(p *Packet, _ Time) {
	m.ForwardedPackets++
	m.ForwardedBytes += uint64(p.Size)
}

func (m *LinkMonitor) onDrop(p *Packet) {
	m.DroppedPackets++
	m.DroppedBytes += uint64(p.Size)
}

func (m *LinkMonitor) onQueueChange(bytes, packets int) {
	now := m.eng.Now()
	dt := (now - m.lastChange).Seconds()
	m.byteSeconds += float64(m.lastBytes) * dt
	m.packetSeconds += float64(m.lastPackets) * dt
	m.lastChange = now
	m.lastBytes = bytes
	m.lastPackets = packets
	if bytes > m.MaxQueueBytes {
		m.MaxQueueBytes = bytes
	}
	if packets > m.MaxQueuePacket {
		m.MaxQueuePacket = packets
	}
}

// Reset zeroes the counters and restarts the measurement interval at the
// current virtual time. Used to discard warm-up transients.
func (m *LinkMonitor) Reset() {
	now := m.eng.Now()
	*m = LinkMonitor{link: m.link, eng: m.eng, start: now, lastChange: now,
		lastBytes: m.link.QueuedBytes(), lastPackets: m.link.QueuedPackets()}
}

// Elapsed returns the length of the measurement interval so far.
func (m *LinkMonitor) Elapsed() Time { return m.eng.Now() - m.start }

// Utilization returns the fraction of link capacity used over the
// measurement interval, in [0, ~1].
func (m *LinkMonitor) Utilization() float64 {
	el := m.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.ForwardedBytes) * 8 / (float64(m.link.Rate) * el)
}

// LossRate returns dropped packets / arrived packets over the interval.
func (m *LinkMonitor) LossRate() float64 {
	if m.ArrivedPackets == 0 {
		return 0
	}
	return float64(m.DroppedPackets) / float64(m.ArrivedPackets)
}

// MeanQueueBytes returns the time-weighted average buffer occupancy in bytes.
func (m *LinkMonitor) MeanQueueBytes() float64 {
	el := m.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	dt := (m.eng.Now() - m.lastChange).Seconds()
	return (m.byteSeconds + float64(m.lastBytes)*dt) / el
}

// MeanQueueDelay converts the average occupancy into the average queueing
// delay a packet would see at the link rate (occupancy / rate).
func (m *LinkMonitor) MeanQueueDelay() Time {
	return Seconds(m.MeanQueueBytes() * 8 / float64(m.link.Rate))
}
