package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5 * Second, Second, 3 * Second, 2 * Second} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events, want 4", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events out of order: %v", fired)
		}
	}
	if e.Now() != 5*Second {
		t.Errorf("Now() = %v, want 5s", e.Now())
	}
}

func TestEngineTiesFireInSchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order = %v, want ascending", order)
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(2*Second, func() {
		e.After(500*Millisecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 2*Second+500*Millisecond {
		t.Errorf("fired at %v, want 2.5s", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.At(Second, func() { fired = true })
	h.Cancel()
	if h.Pending() {
		t.Error("cancelled handle still pending")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancel of zero handle must not panic.
	var zero EventHandle
	zero.Cancel()
}

func TestEngineCancelIsIdempotentAcrossFiring(t *testing.T) {
	e := NewEngine()
	n := 0
	h := e.At(Second, func() { n++ })
	e.Run()
	h.Cancel() // after firing: no-op
	if n != 1 {
		t.Errorf("event fired %d times, want 1", n)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Second, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("ran %d events after Stop, want 3", count)
	}
	// Run may be resumed afterwards.
	e.Run()
	if count != 10 {
		t.Errorf("resume ran to %d events, want 10", count)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Second, func() { count++ })
	}
	e.RunUntil(5 * Second)
	if count != 5 {
		t.Errorf("RunUntil(5s) ran %d events, want 5", count)
	}
	if e.Now() != 5*Second {
		t.Errorf("Now() = %v, want 5s", e.Now())
	}
	e.RunUntil(20 * Second)
	if count != 10 {
		t.Errorf("second RunUntil ran to %d, want 10", count)
	}
	if e.Now() != 20*Second {
		t.Errorf("Now() = %v, want 20s (advance to deadline)", e.Now())
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := NewEngine()
	e.At(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

// Property: for any multiset of schedule times, dispatch order is the
// sorted order.
func TestEngineDispatchOrderProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		e := NewEngine()
		var want []Time
		var got []Time
		for _, r := range raw {
			at := Time(r)
			want = append(want, at)
			e.At(at, func() { got = append(got, at) })
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		e.Run()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: nested scheduling never observes time running backwards.
func TestEngineMonotonicTimeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEngine()
	last := Time(-1)
	var schedule func(depth int)
	schedule = func(depth int) {
		if e.Now() < last {
			t.Fatalf("time went backwards: %v after %v", e.Now(), last)
		}
		last = e.Now()
		if depth > 0 {
			for i := 0; i < 3; i++ {
				d := Time(rng.Intn(1000)) * Millisecond
				e.After(d, func() { schedule(depth - 1) })
			}
		}
	}
	e.At(0, func() { schedule(5) })
	e.Run()
	if e.Executed == 0 {
		t.Fatal("no events executed")
	}
}

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		in   Time
		secs float64
	}{
		{Second, 1}, {500 * Millisecond, 0.5}, {150 * Millisecond, 0.15}, {0, 0},
	}
	for _, c := range cases {
		if got := c.in.Seconds(); got != c.secs {
			t.Errorf("%v.Seconds() = %v, want %v", c.in, got, c.secs)
		}
		if got := Seconds(c.secs); got != c.in {
			t.Errorf("Seconds(%v) = %v, want %v", c.secs, got, c.in)
		}
	}
	if Milliseconds(150).Seconds() != 0.15 {
		t.Error("Milliseconds(150) != 0.15s")
	}
}

func TestTxTime(t *testing.T) {
	// 1500 bytes at 12 Mbps = 1 ms.
	if got := TxTime(1500, 12_000_000); got != Millisecond {
		t.Errorf("TxTime = %v, want 1ms", got)
	}
	if got := TxTime(1500, 0); got != 0 {
		t.Errorf("TxTime at zero rate = %v, want 0", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		150 * Millisecond: "150ms",
		2 * Second:        "2s",
		MaxTime:           "never",
		500 * Nanosecond:  "500ns",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Exponential(10) != b.Exponential(10) {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGExponentialMean(t *testing.T) {
	r := NewRNG(1)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exponential(2.0)
	}
	mean := sum / n
	if mean < 1.95 || mean > 2.05 {
		t.Errorf("exponential mean = %v, want ~2.0", mean)
	}
}

func TestRNGExpBytesAtLeastOne(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		if b := r.ExpBytes(3); b < 1 {
			t.Fatalf("ExpBytes returned %d < 1", b)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(5)
	f1 := parent.Fork()
	f2 := parent.Fork()
	if f1.Float64() == f2.Float64() {
		// A single collision is astronomically unlikely.
		t.Error("forked RNGs produced identical first draw")
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		j := r.Jitter(Second)
		if j < 0 || j >= Second {
			t.Fatalf("jitter %v out of [0, 1s)", j)
		}
	}
	if r.Jitter(0) != 0 {
		t.Error("Jitter(0) != 0")
	}
}

func TestEngineRunUntilZeroAndEmpty(t *testing.T) {
	e := NewEngine()
	e.RunUntil(0) // empty calendar: just advances to deadline
	if e.Now() != 0 {
		t.Errorf("Now = %v", e.Now())
	}
	e.RunUntil(5 * Second)
	if e.Now() != 5*Second {
		t.Errorf("empty RunUntil did not advance: %v", e.Now())
	}
	if e.Len() != 0 || e.Executed != 0 {
		t.Error("phantom events")
	}
}

func TestEngineAfterNegativeDelay(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(Second, func() {
		e.After(-5*Second, func() { fired = true }) // clamps to now
	})
	e.Run()
	if !fired {
		t.Error("negative After never fired")
	}
}
