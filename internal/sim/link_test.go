package sim

import (
	"testing"
	"testing/quick"
)

// sink records received packets with their arrival times.
type sink struct {
	eng  *Engine
	pkts []*Packet
	at   []Time
}

func (s *sink) Receive(p *Packet) {
	s.pkts = append(s.pkts, p)
	s.at = append(s.at, s.eng.Now())
}

func mkPkt(size int) *Packet {
	return &Packet{Flow: 1, Src: 100, Dst: 200, Size: size, Kind: KindData}
}

func TestLinkDeliversAfterTxPlusPropagation(t *testing.T) {
	e := NewEngine()
	s := &sink{eng: e}
	// 1500B at 12 Mbps = 1 ms tx; 10 ms propagation.
	l := NewLink(e, "l", 12_000_000, 10*Millisecond, 100000, s)
	l.Send(mkPkt(1500))
	e.Run()
	if len(s.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(s.pkts))
	}
	if want := 11 * Millisecond; s.at[0] != want {
		t.Errorf("delivered at %v, want %v", s.at[0], want)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	e := NewEngine()
	s := &sink{eng: e}
	l := NewLink(e, "l", 12_000_000, 0, 1_000_000, s)
	for i := 0; i < 5; i++ {
		l.Send(mkPkt(1500))
	}
	e.Run()
	if len(s.pkts) != 5 {
		t.Fatalf("delivered %d, want 5", len(s.pkts))
	}
	for i, at := range s.at {
		want := Time(i+1) * Millisecond
		if at != want {
			t.Errorf("packet %d delivered at %v, want %v", i, at, want)
		}
	}
}

func TestLinkDropTailOverflow(t *testing.T) {
	e := NewEngine()
	s := &sink{eng: e}
	// Buffer holds exactly 2 queued packets (plus 1 in the transmitter).
	l := NewLink(e, "l", 12_000_000, 0, 3000, s)
	mon := l.Monitor()
	for i := 0; i < 5; i++ {
		l.Send(mkPkt(1500))
	}
	e.Run()
	if len(s.pkts) != 3 {
		t.Fatalf("delivered %d, want 3 (1 transmitting + 2 buffered)", len(s.pkts))
	}
	if mon.DroppedPackets != 2 {
		t.Errorf("dropped %d, want 2", mon.DroppedPackets)
	}
	if mon.ForwardedPackets != 3 {
		t.Errorf("forwarded %d, want 3", mon.ForwardedPackets)
	}
	if got := mon.LossRate(); got != 2.0/5.0 {
		t.Errorf("loss rate %v, want 0.4", got)
	}
}

func TestLinkUnboundedBufferNeverDrops(t *testing.T) {
	e := NewEngine()
	s := &sink{eng: e}
	l := NewLink(e, "l", 1_000_000, 0, 0, s)
	mon := l.Monitor()
	for i := 0; i < 200; i++ {
		l.Send(mkPkt(1500))
	}
	e.Run()
	if mon.DroppedPackets != 0 {
		t.Errorf("unbounded buffer dropped %d packets", mon.DroppedPackets)
	}
	if len(s.pkts) != 200 {
		t.Errorf("delivered %d, want 200", len(s.pkts))
	}
}

func TestLinkDownDropsEverything(t *testing.T) {
	e := NewEngine()
	s := &sink{eng: e}
	l := NewLink(e, "l", 1_000_000, 0, 0, s)
	mon := l.Monitor()
	l.SetDown(true)
	l.Send(mkPkt(100))
	e.Run()
	if len(s.pkts) != 0 || mon.DroppedPackets != 1 {
		t.Errorf("down link delivered=%d dropped=%d, want 0/1", len(s.pkts), mon.DroppedPackets)
	}
	l.SetDown(false)
	l.Send(mkPkt(100))
	e.Run()
	if len(s.pkts) != 1 {
		t.Errorf("restored link delivered %d, want 1", len(s.pkts))
	}
}

func TestLinkUtilization(t *testing.T) {
	e := NewEngine()
	s := &sink{eng: e}
	l := NewLink(e, "l", 12_000_000, 0, 1_000_000, s)
	mon := l.Monitor()
	// 5 x 1500B = 5 ms busy; run for 10 ms => 50% utilization.
	for i := 0; i < 5; i++ {
		l.Send(mkPkt(1500))
	}
	e.RunUntil(10 * Millisecond)
	got := mon.Utilization()
	if got < 0.49 || got > 0.51 {
		t.Errorf("utilization = %v, want ~0.5", got)
	}
}

func TestLinkMeanQueueDelay(t *testing.T) {
	e := NewEngine()
	s := &sink{eng: e}
	l := NewLink(e, "l", 12_000_000, 0, 1_000_000, s)
	mon := l.Monitor()
	for i := 0; i < 10; i++ {
		l.Send(mkPkt(1500))
	}
	e.Run()
	// With 9 packets initially queued, the mean queue is positive and the
	// max queue must be exactly 9 packets.
	if mon.MaxQueuePacket != 9 {
		t.Errorf("max queue = %d packets, want 9", mon.MaxQueuePacket)
	}
	if mon.MeanQueueDelay() <= 0 {
		t.Error("mean queue delay should be positive")
	}
}

func TestLinkMonitorReset(t *testing.T) {
	e := NewEngine()
	s := &sink{eng: e}
	l := NewLink(e, "l", 12_000_000, 0, 1_000_000, s)
	mon := l.Monitor()
	l.Send(mkPkt(1500))
	e.Run()
	mon.Reset()
	if mon.ForwardedPackets != 0 || mon.ArrivedPackets != 0 {
		t.Error("Reset did not clear counters")
	}
	if mon.Utilization() != 0 {
		t.Error("utilization after reset should be 0")
	}
}

func TestLinkMonitorIsSingleton(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "l", 1, 0, 0, &sink{eng: e})
	if l.Monitor() != l.Monitor() {
		t.Error("Monitor() returned different instances")
	}
}

func TestLinkBDP(t *testing.T) {
	l := &Link{Rate: 15_000_000}
	// 15 Mbps x 150 ms = 281250 bytes.
	if got := l.BDP(150 * Millisecond); got != 281250 {
		t.Errorf("BDP = %d, want 281250", got)
	}
}

// Property: conservation — arrived == forwarded + dropped + still queued,
// for any arrival pattern.
func TestLinkConservationProperty(t *testing.T) {
	f := func(sizes []uint16, capKB uint8) bool {
		e := NewEngine()
		s := &sink{eng: e}
		l := NewLink(e, "l", 1_000_000, Millisecond, int(capKB)*1024+100, s)
		mon := l.Monitor()
		for _, sz := range sizes {
			l.Send(mkPkt(int(sz%2000) + 40))
		}
		e.RunUntil(100 * Millisecond) // partial drain is fine
		inFlightOrQueued := mon.ArrivedPackets - mon.ForwardedPackets - mon.DroppedPackets
		return inFlightOrQueued == uint64(l.QueuedPackets())+busyCount(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func busyCount(l *Link) uint64 {
	if l.busy {
		return 1
	}
	return 0
}

func TestDropTailAccept(t *testing.T) {
	d := DropTail{}
	p := mkPkt(100)
	if !d.Accept(0, 100, p) {
		t.Error("empty queue with exact room should accept")
	}
	if d.Accept(1, 100, p) {
		t.Error("overfull queue should reject")
	}
}
