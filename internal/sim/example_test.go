package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// A minimal simulation: two events and a link delivering one packet.
func Example() {
	eng := sim.NewEngine()

	eng.At(100*sim.Millisecond, func() {
		fmt.Println("tick at", eng.Now())
	})

	var arrival sim.Time
	link := sim.NewLink(eng, "wire", 8_000_000, 10*sim.Millisecond, 0,
		receiverFunc(func(p *sim.Packet) { arrival = eng.Now() }))
	link.Send(&sim.Packet{Size: 1000}) // 1 ms serialization at 8 Mbit/s

	eng.Run()
	fmt.Println("packet delivered at", arrival)
	// Output:
	// tick at 100ms
	// packet delivered at 11ms
}

// The Figure 1 dumbbell: build it, inspect its buffer sizing.
func ExampleNewDumbbell() {
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, sim.DefaultDumbbell(8))
	fmt.Println("senders:", len(d.Senders))
	fmt.Println("BDP bytes:", d.BDPBytes())
	fmt.Println("buffer bytes (5xBDP):", d.BufferBytes())
	// Output:
	// senders: 8
	// BDP bytes: 281250
	// buffer bytes (5xBDP): 1406250
}

type receiverFunc func(p *sim.Packet)

func (f receiverFunc) Receive(p *sim.Packet) { f(p) }
