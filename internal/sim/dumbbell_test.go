package sim

import "testing"

func TestNodeDeliversToAttachedAgent(t *testing.T) {
	e := NewEngine()
	n := NewNode(e, 5, "n")
	s := &sink{eng: e}
	n.Attach(7, s)
	n.Receive(&Packet{Flow: 7, Dst: 5, Size: 40})
	if len(s.pkts) != 1 {
		t.Fatal("agent did not receive packet")
	}
	n.Detach(7)
	n.Receive(&Packet{Flow: 7, Dst: 5, Size: 40})
	if len(s.pkts) != 1 {
		t.Error("detached agent received packet")
	}
}

func TestNodeForwardsViaRoute(t *testing.T) {
	e := NewEngine()
	dst := NewNode(e, 9, "dst")
	s := &sink{eng: e}
	dst.Attach(1, s)
	n := NewNode(e, 5, "n")
	l := NewLink(e, "l", 1_000_000, 0, 0, dst)
	n.AddRoute(9, l)
	n.Receive(&Packet{Flow: 1, Dst: 9, Size: 40})
	e.Run()
	if len(s.pkts) != 1 {
		t.Fatal("packet not forwarded via route")
	}
	if n.Forwarded != 1 {
		t.Errorf("Forwarded = %d, want 1", n.Forwarded)
	}
}

func TestNodeCountsUnroutedDrops(t *testing.T) {
	e := NewEngine()
	n := NewNode(e, 5, "n")
	n.Send(&Packet{Flow: 1, Dst: 42, Size: 40})
	if n.Unrouted != 1 {
		t.Errorf("Unrouted = %d, want 1", n.Unrouted)
	}
}

func TestNodeDefaultRoute(t *testing.T) {
	e := NewEngine()
	dst := NewNode(e, 9, "dst")
	s := &sink{eng: e}
	dst.Attach(1, s)
	n := NewNode(e, 5, "n")
	n.SetDefaultRoute(NewLink(e, "l", 1_000_000, 0, 0, dst))
	n.Send(&Packet{Flow: 1, Dst: 9, Size: 40})
	e.Run()
	if len(s.pkts) != 1 {
		t.Fatal("default route not used")
	}
}

func TestDumbbellEndToEndDelivery(t *testing.T) {
	e := NewEngine()
	d := NewDumbbell(e, DefaultDumbbell(3))
	s := &sink{eng: e}
	d.Receivers[2].Attach(77, s)
	d.Senders[2].Send(&Packet{Flow: 77, Src: SenderID(2), Dst: ReceiverID(2), Size: 1500})
	e.Run()
	if len(s.pkts) != 1 {
		t.Fatal("packet did not cross the dumbbell")
	}
	// One-way delay should be ~RTT/2 plus serialization.
	if s.at[0] < 75*Millisecond || s.at[0] > 80*Millisecond {
		t.Errorf("one-way delay %v, want ~75ms", s.at[0])
	}
}

func TestDumbbellReversePath(t *testing.T) {
	e := NewEngine()
	d := NewDumbbell(e, DefaultDumbbell(2))
	s := &sink{eng: e}
	d.Senders[0].Attach(5, s)
	d.Receivers[0].Send(&Packet{Flow: 5, Src: ReceiverID(0), Dst: SenderID(0), Size: 40})
	e.Run()
	if len(s.pkts) != 1 {
		t.Fatal("ack path broken")
	}
}

func TestDumbbellRTT(t *testing.T) {
	e := NewEngine()
	cfg := DefaultDumbbell(1)
	d := NewDumbbell(e, cfg)
	s := &sink{eng: e}
	var rtt Time
	// Echo agent at the receiver.
	d.Receivers[0].Attach(1, receiverFunc(func(p *Packet) {
		d.Receivers[0].Send(&Packet{Flow: 1, Src: ReceiverID(0), Dst: SenderID(0), Size: 40})
	}))
	d.Senders[0].Attach(1, receiverFunc(func(p *Packet) {
		rtt = e.Now()
		_ = s
	}))
	d.Senders[0].Send(&Packet{Flow: 1, Src: SenderID(0), Dst: ReceiverID(0), Size: 40})
	e.Run()
	// Propagation RTT is 150ms; allow a little serialization on top.
	if rtt < cfg.RTT || rtt > cfg.RTT+Millisecond {
		t.Errorf("measured RTT %v, want ~%v", rtt, cfg.RTT)
	}
}

type receiverFunc func(p *Packet)

func (f receiverFunc) Receive(p *Packet) { f(p) }

func TestDumbbellBufferSizing(t *testing.T) {
	e := NewEngine()
	cfg := DefaultDumbbell(1)
	d := NewDumbbell(e, cfg)
	// BDP at 15 Mbps x 150 ms = 281250 B; buffer is 5x.
	if d.BDPBytes() != 281250 {
		t.Errorf("BDP = %d, want 281250", d.BDPBytes())
	}
	if d.BufferBytes() != 5*281250 {
		t.Errorf("buffer = %d, want %d", d.BufferBytes(), 5*281250)
	}
}

func TestDumbbellPanicsWithoutSenders(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero senders")
		}
	}()
	NewDumbbell(NewEngine(), DumbbellConfig{})
}

func TestDumbbellIsolatedSenderReceiverPairs(t *testing.T) {
	e := NewEngine()
	d := NewDumbbell(e, DefaultDumbbell(2))
	s0 := &sink{eng: e}
	s1 := &sink{eng: e}
	d.Receivers[0].Attach(1, s0)
	d.Receivers[1].Attach(2, s1)
	d.Senders[0].Send(&Packet{Flow: 1, Src: SenderID(0), Dst: ReceiverID(0), Size: 100})
	d.Senders[1].Send(&Packet{Flow: 2, Src: SenderID(1), Dst: ReceiverID(1), Size: 100})
	e.Run()
	if len(s0.pkts) != 1 || len(s1.pkts) != 1 {
		t.Errorf("cross-delivery: s0=%d s1=%d, want 1/1", len(s0.pkts), len(s1.pkts))
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Flow: 3, Src: 1, Dst: 2, Seq: 100, Size: 1500}
	if got := p.String(); got == "" {
		t.Error("empty packet string")
	}
	if KindData.String() != "data" || KindAck.String() != "ack" {
		t.Error("kind strings wrong")
	}
	if PacketKind(9).String() != "kind(9)" {
		t.Error("unknown kind string wrong")
	}
}
