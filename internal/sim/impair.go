package sim

// Impairments model path pathologies the Phi applications react to:
// random loss, delay jitter, and packet reordering (Section 3.2's
// informed-adaptation examples — jitter buffer sizing, dupack-threshold
// tuning under prevalent reordering).

// ImpairedLink wraps a link's delivery with random loss, jitter, and
// reordering. It implements Receiver and is inserted in front of a
// downstream receiver:
//
//	imp := sim.NewImpairedLink(eng, rng, downstream, sim.Impairments{...})
//	link := sim.NewLink(eng, "l", rate, delay, buf, imp)
type ImpairedLink struct {
	eng  *Engine
	rng  *RNG
	to   Receiver
	imp  Impairments
	base Time // monotone delivery floor for non-reordered packets

	// Dropped, Jittered, and Reordered count affected packets.
	Dropped   uint64
	Jittered  uint64
	Reordered uint64
}

// Impairments configures an ImpairedLink.
type Impairments struct {
	// LossRate drops packets uniformly at random.
	LossRate float64
	// JitterMax adds a uniform extra delay in [0, JitterMax) to every
	// packet (delivery order is preserved unless ReorderRate also set).
	JitterMax Time
	// ReorderRate delays the affected packet by ReorderDelay, letting
	// later packets overtake it.
	ReorderRate  float64
	ReorderDelay Time
}

// NewImpairedLink creates the wrapper.
func NewImpairedLink(eng *Engine, rng *RNG, to Receiver, imp Impairments) *ImpairedLink {
	if imp.ReorderRate > 0 && imp.ReorderDelay == 0 {
		imp.ReorderDelay = 5 * Millisecond
	}
	return &ImpairedLink{eng: eng, rng: rng, to: to, imp: imp}
}

// Receive implements Receiver.
func (l *ImpairedLink) Receive(p *Packet) {
	if l.imp.LossRate > 0 && l.rng.Float64() < l.imp.LossRate {
		l.Dropped++
		return
	}
	delay := Time(0)
	if l.imp.JitterMax > 0 {
		delay += l.rng.Jitter(l.imp.JitterMax)
		l.Jittered++
	}
	if l.imp.ReorderRate > 0 && l.rng.Float64() < l.imp.ReorderRate {
		delay += l.imp.ReorderDelay
		l.Reordered++
		// Reordered packets escape the monotone floor deliberately.
		l.eng.After(delay, func() { l.to.Receive(p) })
		return
	}
	// Keep non-reordered deliveries in order despite jitter: never
	// deliver before a previously scheduled packet.
	at := l.eng.Now() + delay
	if at < l.base {
		at = l.base
	}
	l.base = at
	l.eng.At(at, func() { l.to.Receive(p) })
}
