package sim

import "fmt"

// Node is a host or router. Packets destined to the node are delivered to
// the agent registered for their flow; packets for other nodes are
// forwarded along the routing table.
type Node struct {
	ID   NodeID
	Name string

	eng          *Engine
	routes       map[NodeID]*Link
	defaultRoute *Link
	agents       map[FlowID]Receiver

	// Forwarded and Delivered count packets for tests and debugging.
	Forwarded uint64
	Delivered uint64
	// Unrouted counts packets with no route; they are dropped.
	Unrouted uint64
}

// NewNode creates a node with the given ID.
func NewNode(eng *Engine, id NodeID, name string) *Node {
	return &Node{ID: id, Name: name, eng: eng,
		routes: make(map[NodeID]*Link), agents: make(map[FlowID]Receiver)}
}

// AddRoute installs a next-hop link for the destination.
func (n *Node) AddRoute(dst NodeID, via *Link) { n.routes[dst] = via }

// SetDefaultRoute installs the link used for destinations without a
// specific route.
func (n *Node) SetDefaultRoute(via *Link) { n.defaultRoute = via }

// Attach registers agent to receive packets of the given flow addressed to
// this node. A flow may be detached by attaching nil.
func (n *Node) Attach(flow FlowID, agent Receiver) {
	if agent == nil {
		delete(n.agents, flow)
		return
	}
	n.agents[flow] = agent
}

// Detach removes the agent registered for the flow.
func (n *Node) Detach(flow FlowID) { delete(n.agents, flow) }

// Receive implements Receiver: deliver locally or forward.
func (n *Node) Receive(p *Packet) {
	if p.Dst == n.ID {
		if a, ok := n.agents[p.Flow]; ok {
			n.Delivered++
			a.Receive(p)
		}
		return
	}
	n.Send(p)
}

// Send routes a packet toward its destination. Packets with no matching
// route and no default route are counted and dropped.
func (n *Node) Send(p *Packet) {
	link := n.routes[p.Dst]
	if link == nil {
		link = n.defaultRoute
	}
	if link == nil {
		n.Unrouted++
		return
	}
	n.Forwarded++
	link.Send(p)
}

func (n *Node) String() string { return fmt.Sprintf("node(%d %s)", n.ID, n.Name) }
