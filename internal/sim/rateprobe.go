package sim

// RateProbe measures a link's utilization over a trailing window by
// sampling its monitor on a fixed period. It provides the "up-to-the-
// minute" utilization the Remy-Phi-ideal senders read, as opposed to the
// cumulative average a LinkMonitor reports since its last reset.
//
// The probe schedules itself forever; drive the engine with RunUntil.
type RateProbe struct {
	eng *Engine
	mon *LinkMonitor

	interval Time
	window   Time

	times []Time
	bytes []uint64
}

// NewRateProbe starts probing mon every interval, retaining window worth
// of history. Typical: interval 100ms, window 1s.
func NewRateProbe(eng *Engine, mon *LinkMonitor, interval, window Time) *RateProbe {
	if interval <= 0 {
		interval = 100 * Millisecond
	}
	if window < interval {
		window = interval
	}
	p := &RateProbe{eng: eng, mon: mon, interval: interval, window: window}
	p.sample()
	return p
}

func (p *RateProbe) sample() {
	now := p.eng.Now()
	p.times = append(p.times, now)
	p.bytes = append(p.bytes, p.mon.ForwardedBytes)
	// Trim history older than the window (keep one sample at/just beyond
	// the boundary so interpolation stays possible).
	cutoff := now - p.window
	i := 0
	for i+1 < len(p.times) && p.times[i+1] <= cutoff {
		i++
	}
	if i > 0 {
		p.times = append(p.times[:0], p.times[i:]...)
		p.bytes = append(p.bytes[:0], p.bytes[i:]...)
	}
	p.eng.After(p.interval, p.sample)
}

// Utilization returns the link utilization over the trailing window
// (current bytes vs the oldest retained sample).
func (p *RateProbe) Utilization() float64 {
	now := p.eng.Now()
	oldestT, oldestB := p.times[0], p.bytes[0]
	dt := (now - oldestT).Seconds()
	if dt <= 0 {
		return 0
	}
	delta := float64(p.mon.ForwardedBytes - oldestB)
	u := delta * 8 / (float64(p.mon.link.Rate) * dt)
	if u > 1 {
		u = 1
	}
	return u
}
