package sim

import "fmt"

// Receiver is anything that can accept a packet: a node, or a transport
// agent attached to one.
type Receiver interface {
	Receive(p *Packet)
}

// QueueDiscipline decides, given the current queue depth in bytes and the
// arriving packet, whether to accept it. The Phi paper's incentive argument
// (Sections 2.2.3, 3.1) rests on FIFO drop-tail queues, which is the
// default; the discipline is pluggable so that dependence can be shown.
type QueueDiscipline interface {
	// Accept reports whether a packet of size bytes may join a queue that
	// currently holds queuedBytes of a capacityBytes buffer.
	Accept(queuedBytes, capacityBytes int, p *Packet) bool
}

// DropTail is the classic FIFO drop-tail discipline: accept while the
// buffer has room, drop otherwise.
type DropTail struct{}

// Accept implements QueueDiscipline.
func (DropTail) Accept(queuedBytes, capacityBytes int, p *Packet) bool {
	return queuedBytes+p.Size <= capacityBytes
}

// Link is a simplex link with a fixed rate, propagation delay, and a finite
// FIFO buffer. Packets are serialized one at a time at Rate, then delivered
// to the downstream receiver after Delay. Arrivals that do not fit in the
// buffer are dropped (drop-tail by default).
type Link struct {
	// Name labels the link in monitors and errors, e.g. "bottleneck".
	Name string
	// Rate is the line rate in bits per second.
	Rate int64
	// Delay is the one-way propagation delay.
	Delay Time
	// Capacity is the buffer size in bytes (queued packets, excluding the
	// one being serialized). Zero means an unbounded buffer.
	Capacity int
	// Discipline decides drops; nil means DropTail.
	Discipline QueueDiscipline

	eng  *Engine
	to   Receiver
	down bool

	queue       []*Packet
	queuedBytes int
	busy        bool

	monitor *LinkMonitor
	tracer  Tracer
}

// NewLink creates a link delivering into to.
func NewLink(eng *Engine, name string, rate int64, delay Time, capacityBytes int, to Receiver) *Link {
	if rate <= 0 {
		panic("sim: link rate must be positive")
	}
	return &Link{Name: name, Rate: rate, Delay: delay, Capacity: capacityBytes, eng: eng, to: to}
}

// Monitor attaches (and returns) a LinkMonitor recording utilization,
// queueing, and drops. Attaching twice returns the same monitor.
func (l *Link) Monitor() *LinkMonitor {
	if l.monitor == nil {
		l.monitor = newLinkMonitor(l)
	}
	return l.monitor
}

// SetDown takes the link administratively down (packets are dropped) or
// back up. Used for failure injection.
func (l *Link) SetDown(down bool) { l.down = down }

// SetTracer attaches a packet-event tracer (nil detaches).
func (l *Link) SetTracer(t Tracer) { l.tracer = t }

func (l *Link) trace(op TraceOp, p *Packet) {
	if l.tracer != nil {
		l.tracer.Trace(TraceEvent{
			At: l.eng.Now(), Op: op, Link: l.Name,
			Pkt: packetInfo(p), QueueBytes: l.queuedBytes,
		})
	}
}

// QueuedBytes returns the bytes currently waiting in the buffer.
func (l *Link) QueuedBytes() int { return l.queuedBytes }

// QueuedPackets returns the number of packets waiting in the buffer.
func (l *Link) QueuedPackets() int { return len(l.queue) }

// BDP returns the bandwidth-delay product in bytes for a given round-trip
// time, the unit the paper sizes buffers in (buffer = 5 x BDP).
func (l *Link) BDP(rtt Time) int {
	return int(float64(l.Rate) / 8 * rtt.Seconds())
}

// Send enqueues a packet on the link, dropping it if the buffer is full or
// the link is down.
func (l *Link) Send(p *Packet) {
	if l.down {
		if l.monitor != nil {
			l.monitor.onDrop(p)
		}
		l.trace(TraceDrop, p)
		return
	}
	if l.monitor != nil {
		l.monitor.onArrive(p)
	}
	disc := l.Discipline
	if disc == nil {
		disc = DropTail{}
	}
	// The packet being serialized occupies the transmitter, not the buffer,
	// so an idle link always accepts.
	if !l.busy {
		l.busy = true
		l.trace(TraceEnqueue, p)
		l.transmit(p)
		return
	}
	if l.Capacity > 0 && !disc.Accept(l.queuedBytes, l.Capacity, p) {
		if l.monitor != nil {
			l.monitor.onDrop(p)
		}
		l.trace(TraceDrop, p)
		return
	}
	l.queue = append(l.queue, p)
	l.queuedBytes += p.Size
	l.trace(TraceEnqueue, p)
	if l.monitor != nil {
		l.monitor.onQueueChange(l.queuedBytes, len(l.queue))
	}
}

// transmit serializes p, schedules its delivery, and then starts on the
// next queued packet.
func (l *Link) transmit(p *Packet) {
	tx := TxTime(p.Size, l.Rate)
	done := l.eng.Now() + tx
	l.eng.At(done, func() {
		if l.monitor != nil {
			l.monitor.onForward(p, done)
		}
		l.trace(TraceDequeue, p)
		// Deliver after propagation.
		l.eng.At(done+l.Delay, func() {
			if !l.down {
				l.trace(TraceDeliver, p)
				l.to.Receive(p)
			}
		})
		l.next()
	})
}

func (l *Link) next() {
	if len(l.queue) == 0 {
		l.busy = false
		return
	}
	p := l.queue[0]
	l.queue[0] = nil
	l.queue = l.queue[1:]
	l.queuedBytes -= p.Size
	if l.monitor != nil {
		l.monitor.onQueueChange(l.queuedBytes, len(l.queue))
	}
	l.transmit(p)
}

func (l *Link) String() string {
	return fmt.Sprintf("link(%s %dbps %v cap=%dB)", l.Name, l.Rate, l.Delay, l.Capacity)
}
