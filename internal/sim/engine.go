package sim

import (
	"container/heap"
	"fmt"
)

// Engine is the discrete-event scheduler at the heart of the simulator.
// Events are callbacks scheduled at virtual times; Run dispatches them in
// time order, breaking ties by scheduling order so runs are reproducible.
//
// An Engine is not safe for concurrent use: a simulation is a single
// logical thread of control, as in ns-2.
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	stopped bool

	// Executed counts dispatched events, for instrumentation and tests.
	Executed uint64
}

// NewEngine returns an Engine with virtual time 0 and an empty calendar.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventHandle identifies a scheduled event so it can be cancelled.
// The zero value is an invalid handle.
type EventHandle struct {
	ev *event
}

// Cancel prevents a pending event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op. Cancel on the zero handle is a
// no-op as well, so callers can unconditionally cancel their timers.
func (h EventHandle) Cancel() {
	if h.ev != nil {
		h.ev.fn = nil
	}
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h EventHandle) Pending() bool { return h.ev != nil && h.ev.fn != nil }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it would silently corrupt causality, which is always a caller bug.
func (e *Engine) At(t Time, fn func()) EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.nextSeq, fn: fn}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return EventHandle{ev}
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (e *Engine) After(d Time, fn func()) EventHandle {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently dispatching event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events until the calendar is empty or Stop is called.
func (e *Engine) Run() {
	e.runWhile(func() bool { return true })
}

// RunUntil dispatches events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.runWhile(func() bool { return e.queue[0].at <= deadline })
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

func (e *Engine) runWhile(cond func() bool) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped && cond() {
		ev := heap.Pop(&e.queue).(*event)
		if ev.fn == nil { // cancelled
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		fn()
		e.Executed++
	}
}

// Len returns the number of queued (possibly cancelled) events.
func (e *Engine) Len() int { return len(e.queue) }
