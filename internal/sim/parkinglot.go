package sim

import "fmt"

// ParkingLot is the classic multi-bottleneck WAN topology: H hops in
// series, with one "long" path crossing every hop and per-hop "cross"
// paths each crossing exactly one hop. Section 3.1 argues large providers
// can deploy Phi on their inter-DC WANs; this topology is the standard
// testbed for that setting — each hop is a separate PathKey with its own
// congestion context.
//
//	long sender ──▶ R0 ═══ R1 ═══ R2 ═══ ... ═══ RH ──▶ long receiver
//	                 ▲      ▲      ▲
//	          cross0─┘ cross1      cross2 ...   (one per hop)
type ParkingLot struct {
	Eng *Engine

	// Routers R0..RH (H+1 of them for H hops).
	Routers []*Node
	// Hops[i] carries traffic from R_i to R_{i+1}; HopsRev the reverse.
	Hops    []*Link
	HopsRev []*Link

	// LongSender / LongReceiver terminate the end-to-end path.
	LongSender   *Node
	LongReceiver *Node
	// CrossSenders[i] / CrossReceivers[i] terminate the path crossing
	// only hop i.
	CrossSenders   []*Node
	CrossReceivers []*Node

	cfg ParkingLotConfig
}

// ParkingLotConfig parameterizes the topology.
type ParkingLotConfig struct {
	// Hops is the number of serial bottleneck links (>= 1).
	Hops int
	// HopRate and HopDelay apply to every bottleneck hop.
	HopRate  int64
	HopDelay Time
	// BufferBDP sizes each hop's buffer as a multiple of its own
	// bandwidth-delay product at the long path's RTT.
	BufferBDP float64
	// AccessRate and AccessDelay apply to all host attachments.
	AccessRate  int64
	AccessDelay Time
}

// DefaultParkingLot returns a 3-hop inter-DC-like configuration:
// 100 Mbit/s hops, 10 ms per hop.
func DefaultParkingLot(hops int) ParkingLotConfig {
	return ParkingLotConfig{
		Hops:        hops,
		HopRate:     100_000_000,
		HopDelay:    10 * Millisecond,
		BufferBDP:   1,
		AccessRate:  1_000_000_000,
		AccessDelay: Millisecond,
	}
}

// Node ID allocation for parking lots (distinct from dumbbell ranges).
const (
	plRouterBase NodeID = 20000
	plHostBase   NodeID = 30000
)

// PLLongSenderID and friends expose the assigned node IDs.
func PLLongSenderID() NodeID         { return plHostBase }
func PLLongReceiverID() NodeID       { return plHostBase + 1 }
func PLCrossSenderID(hop int) NodeID { return plHostBase + 10 + NodeID(2*hop) }
func PLCrossRecvID(hop int) NodeID   { return plHostBase + 11 + NodeID(2*hop) }

// NewParkingLot builds the topology.
func NewParkingLot(eng *Engine, cfg ParkingLotConfig) *ParkingLot {
	if cfg.Hops < 1 {
		panic("sim: parking lot needs at least one hop")
	}
	if cfg.BufferBDP == 0 {
		cfg.BufferBDP = 1
	}
	pl := &ParkingLot{Eng: eng, cfg: cfg}

	for i := 0; i <= cfg.Hops; i++ {
		pl.Routers = append(pl.Routers, NewNode(eng, plRouterBase+NodeID(i), fmt.Sprintf("R%d", i)))
	}
	// The long path's RTT sizes every buffer.
	longRTT := 2 * (Time(cfg.Hops)*cfg.HopDelay + 2*cfg.AccessDelay)
	bufBytes := int(cfg.BufferBDP * float64(cfg.HopRate) / 8 * longRTT.Seconds())
	for i := 0; i < cfg.Hops; i++ {
		fwd := NewLink(eng, fmt.Sprintf("hop%d", i), cfg.HopRate, cfg.HopDelay, bufBytes, pl.Routers[i+1])
		rev := NewLink(eng, fmt.Sprintf("hop%d-rev", i), cfg.HopRate, cfg.HopDelay, bufBytes, pl.Routers[i])
		pl.Hops = append(pl.Hops, fwd)
		pl.HopsRev = append(pl.HopsRev, rev)
	}

	attach := func(id NodeID, name string, router *Node) *Node {
		n := NewNode(eng, id, name)
		accessBuf := int(float64(cfg.AccessRate) / 8 * longRTT.Seconds())
		up := NewLink(eng, name+"-up", cfg.AccessRate, cfg.AccessDelay, accessBuf, router)
		down := NewLink(eng, name+"-down", cfg.AccessRate, cfg.AccessDelay, accessBuf, n)
		n.SetDefaultRoute(up)
		router.AddRoute(n.ID, down)
		return n
	}

	pl.LongSender = attach(PLLongSenderID(), "long-snd", pl.Routers[0])
	pl.LongReceiver = attach(PLLongReceiverID(), "long-rcv", pl.Routers[cfg.Hops])
	for i := 0; i < cfg.Hops; i++ {
		pl.CrossSenders = append(pl.CrossSenders,
			attach(PLCrossSenderID(i), fmt.Sprintf("cross%d-snd", i), pl.Routers[i]))
		pl.CrossReceivers = append(pl.CrossReceivers,
			attach(PLCrossRecvID(i), fmt.Sprintf("cross%d-rcv", i), pl.Routers[i+1]))
	}

	// Routing: each router forwards "rightward" by default and knows the
	// leftward chain explicitly.
	for i := 0; i < cfg.Hops; i++ {
		pl.Routers[i].SetDefaultRoute(pl.Hops[i])
	}
	// The last router's default points back (it has no rightward hop).
	pl.Routers[cfg.Hops].SetDefaultRoute(pl.HopsRev[cfg.Hops-1])
	// Leftward routes: every router must reach hosts attached to earlier
	// routers (the long sender, cross senders) via the reverse chain.
	for i := cfg.Hops; i > 0; i-- {
		r := pl.Routers[i]
		r.AddRoute(PLLongSenderID(), pl.HopsRev[i-1])
		for h := 0; h < i; h++ {
			r.AddRoute(PLCrossSenderID(h), pl.HopsRev[i-1])
			if h < i-1 {
				r.AddRoute(PLCrossRecvID(h), pl.HopsRev[i-1])
			}
		}
	}
	return pl
}

// LongRTT returns the propagation round trip of the end-to-end path.
func (pl *ParkingLot) LongRTT() Time {
	return 2 * (Time(pl.cfg.Hops)*pl.cfg.HopDelay + 2*pl.cfg.AccessDelay)
}

// HopPathKey names hop i for use as a Phi path key.
func (pl *ParkingLot) HopPathKey(i int) string { return fmt.Sprintf("wan/hop%d", i) }
