// Package cctest holds the congestion-control conformance suite: every
// controller in the repository — classic, learned, weighted, ensemble —
// must uphold the same invariants under arbitrary event sequences, and
// must actually move data end to end through the simulator.
package cctest

import (
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/priority"
	"repro/internal/remy"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// controllers enumerates every CongestionControl implementation.
func controllers() map[string]func() tcp.CongestionControl {
	return map[string]func() tcp.CongestionControl{
		"cubic":   func() tcp.CongestionControl { return tcp.NewCubic(tcp.DefaultCubicParams()) },
		"newreno": func() tcp.CongestionControl { return tcp.NewNewReno() },
		"remy":    func() tcp.CongestionControl { return remy.NewCC(remy.DefaultTable(), nil) },
		"remy-phi": func() tcp.CongestionControl {
			return remy.NewCC(remy.DefaultPhiTable(), remy.StaticUtil(0.5))
		},
		"multcp-w2": func() tcp.CongestionControl { return priority.NewWeighted(2) },
		"ensemble": func() tcp.CongestionControl {
			return priority.NewEnsemble().Join(1)
		},
	}
}

// TestControllersSatisfyInvariants drives every controller through random
// event sequences: the window must stay in [1, 65536+], the ssthresh
// positive, and the pacing interval non-negative, no matter the order of
// acks, losses, and timeouts.
func TestControllersSatisfyInvariants(t *testing.T) {
	for name, mk := range controllers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			f := func(events []uint8) bool {
				cc := mk()
				cc.Init(0)
				now := sim.Time(0)
				for _, e := range events {
					now += sim.Time(e%50) * sim.Millisecond
					switch e % 5 {
					case 0, 1, 2: // mostly acks
						cc.OnAck(tcp.AckInfo{
							Now: now, SentAt: now - 100*sim.Millisecond,
							RTT:        sim.Time(100+int(e%7)*30) * sim.Millisecond,
							AckedBytes: 1448, AckedSegments: 1,
						})
					case 3:
						cc.OnLoss(now)
					case 4:
						cc.OnTimeout(now)
					}
					if w := cc.Window(); w < 1 || w > 1<<17 {
						t.Logf("%s: window %v out of range", name, w)
						return false
					}
					if cc.Ssthresh() <= 0 {
						t.Logf("%s: non-positive ssthresh", name)
						return false
					}
					if cc.PacingInterval() < 0 {
						t.Logf("%s: negative pacing interval", name)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestControllersCompleteTransfers: every controller completes the same
// bounded transfer over the lossy (0.5 BDP buffer) dumbbell.
func TestControllersCompleteTransfers(t *testing.T) {
	for name, mk := range controllers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			cfg := sim.DefaultDumbbell(1)
			cfg.BufferBDP = 0.5
			eng := sim.NewEngine()
			d := sim.NewDumbbell(eng, cfg)
			snd, rcv := tcp.Connect(eng, 1, d.Senders[0], d.Receivers[0], 1_500_000, mk(), tcp.Config{})
			snd.Start()
			eng.RunUntil(600 * sim.Second)
			if !snd.Done() {
				t.Fatalf("%s did not complete: %+v", name, snd.Stats())
			}
			if got := snd.Stats().BytesAcked; got != 1_500_000 {
				t.Errorf("%s acked %d bytes", name, got)
			}
			if rcv.BytesReceived != 1_500_000 {
				t.Errorf("%s receiver got %d bytes", name, rcv.BytesReceived)
			}
		})
	}
}

// TestControllersNamed: names are stable identifiers used in results.
func TestControllersNamed(t *testing.T) {
	want := map[string]string{
		"cubic": "cubic", "newreno": "newreno", "remy": "remy",
		"remy-phi": "remy-phi", "multcp-w2": "multcp-w2", "ensemble": "ensemble",
	}
	for key, mk := range controllers() {
		if got := mk().Name(); got != want[key] {
			t.Errorf("%s: Name() = %q, want %q", key, got, want[key])
		}
	}
}

// TestCubicFairness: four identical long-running Cubic flows share the
// bottleneck equitably (Jain index well above the 0.25 single-hog floor).
func TestCubicFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, sim.DefaultDumbbell(4))
	var senders []*tcp.Sender
	for i := 0; i < 4; i++ {
		s, _ := tcp.Connect(eng, sim.FlowID(i+1), d.Senders[i], d.Receivers[i], 0,
			tcp.NewCubic(tcp.DefaultCubicParams()), tcp.Config{})
		s.Start()
		senders = append(senders, s)
	}
	eng.RunUntil(180 * sim.Second)
	var shares []float64
	for _, s := range senders {
		shares = append(shares, float64(s.Stats().BytesAcked))
	}
	idx := metrics.JainFairness(shares)
	t.Logf("Jain fairness = %.3f (shares %v)", idx, shares)
	if idx < 0.75 {
		t.Errorf("fairness index %.3f too low for identical flows", idx)
	}
}
