package synth

import (
	"net/netip"
	"testing"

	"repro/internal/ipfix"
	"repro/internal/sim"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestStreamDeterministic(t *testing.T) {
	cfg := StreamConfig{Flows: 8, Paths: 2, LossRate: 0.05, Seed: 3}
	a := NewStream(cfg).Next(50)
	b := NewStream(cfg).Next(50)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("stream not deterministic")
		}
	}
}

func TestStreamOrderedAndAcked(t *testing.T) {
	s := NewStream(StreamConfig{Flows: 4, Paths: 2, RTTMillisBase: 10, RTTMillisStep: 5, Seed: 1})
	recs := s.Next(100)
	var last uint64
	data, acks := 0, 0
	for _, r := range recs {
		if r.ObsMillis < last {
			t.Fatal("records not ordered by ObsMillis")
		}
		last = r.ObsMillis
		if !r.HasTCP {
			t.Fatal("stream emitted a non-TCP record")
		}
		if r.Octets > 0 {
			data++
		} else if r.Flags&ipfix.FlagACK != 0 {
			acks++
		}
	}
	// 4 flows x 100 ms = 400 data packets; acks lag one RTT (10-15 ms) so
	// most of them have come due within the horizon.
	if data != 400 {
		t.Errorf("data packets = %d, want 400", data)
	}
	if acks < 300 {
		t.Errorf("acks = %d, want most of %d", acks, data)
	}
}

func TestStreamSamplingThins(t *testing.T) {
	full := NewStream(StreamConfig{Flows: 8, Seed: 1})
	thin := NewStream(StreamConfig{Flows: 8, SampleN: 8, Seed: 1})
	nFull := len(full.Next(200))
	nThin := len(thin.Next(200))
	if nThin*4 > nFull {
		t.Errorf("1-in-8 sampling barely thinned: %d vs %d", nThin, nFull)
	}
}

func TestStreamTruthCoversPaths(t *testing.T) {
	s := NewStream(StreamConfig{Flows: 6, Paths: 3, RTTMillisBase: 20, RTTMillisStep: 10, LossRate: 0.01})
	truths := s.Truth()
	keys := s.PathKeys()
	if len(truths) != 3 || len(keys) != 3 {
		t.Fatalf("want 3 paths, got %d truths, %d keys", len(truths), len(keys))
	}
	if truths[2].RTTMillis != 40 {
		t.Errorf("path 2 RTT = %v, want 40", truths[2].RTTMillis)
	}
	recs := s.Next(10)
	seen := make(map[string]bool)
	for i := range recs {
		if recs[i].Octets > 0 {
			seen[recs[i].DstSubnet24().String()] = true
		}
	}
	for _, k := range keys {
		if !seen[k] {
			t.Errorf("no data record for path %s", k)
		}
	}
}

func TestMessagesRoundTrip(t *testing.T) {
	s := NewStream(StreamConfig{Flows: 4, Seed: 2})
	enc := ipfix.NewEncoder(1)
	msgs, err := s.Messages(enc, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	dec := ipfix.NewDecoder()
	total := 0
	for _, m := range msgs {
		recs, err := dec.Decode(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if !r.HasTCP {
				t.Fatal("TCP fields lost across the wire")
			}
		}
		total += len(recs)
	}
	if uint64(total) != s.Emitted {
		t.Errorf("decoded %d records, stream emitted %d", total, s.Emitted)
	}
}

func TestRecordsFromFlowSamples(t *testing.T) {
	key := ipfix.FlowKey{
		Src: mustAddr("10.0.0.1"), Dst: mustAddr("100.1.2.3"), SrcPort: 443, DstPort: 50000,
	}
	samples := []sim.FlowSample{
		{At: 1 * sim.Second, SRTT: 30 * sim.Millisecond},
		{At: 2 * sim.Second, SRTT: 40 * sim.Millisecond},
		{At: 3 * sim.Second, SRTT: 0}, // skipped: no SRTT yet
	}
	recs := RecordsFromFlowSamples(key, samples, 0, 1460, 1)
	if len(recs) != 4 { // 2 usable samples x (data + ack)
		t.Fatalf("got %d records, want 4", len(recs))
	}
	// First pair: data at 1000 ms, ack 30 ms later acknowledging it.
	if recs[0].ObsMillis != 1000 || recs[1].ObsMillis != 1030 {
		t.Errorf("timing: %d, %d", recs[0].ObsMillis, recs[1].ObsMillis)
	}
	if recs[1].Ack != recs[0].Seq+1460 {
		t.Errorf("ack %d does not acknowledge seq %d", recs[1].Ack, recs[0].Seq)
	}
	if recs[1].Key != (ipfix.FlowKey{Src: key.Dst, Dst: key.Src, SrcPort: key.DstPort, DstPort: key.SrcPort}) {
		t.Errorf("ack key not reversed: %+v", recs[1].Key)
	}
	// With loss planted, some sequence numbers repeat.
	lossy := RecordsFromFlowSamples(key, manySamples(500), 0.2, 1460, 1)
	seqs := make(map[uint32]int)
	dups := 0
	for _, r := range lossy {
		if r.Octets > 0 {
			seqs[r.Seq]++
			if seqs[r.Seq] == 2 {
				dups++
			}
		}
	}
	if dups < 50 {
		t.Errorf("planted 20%% loss over 500 samples but saw %d duplicate seqs", dups)
	}
}

func manySamples(n int) []sim.FlowSample {
	out := make([]sim.FlowSample, n)
	for i := range out {
		out[i] = sim.FlowSample{At: sim.Time(i+1) * sim.Second, SRTT: 25 * sim.Millisecond}
	}
	return out
}
