// Package synth generates IPFIX record streams that look like sampled
// TCP traffic: data records carrying sequence numbers and matching ack
// records one RTT later, with controllable loss. It is the load side of
// the passive-ingest pipeline — phi-load's -mode ipfix floods a
// collector with these streams, and the ingest tests check that the
// tracker recovers the RTT and loss rate that were planted here.
//
// Everything is deterministic: the same config and seed produce the
// same byte stream, so benchmarks and tests are reproducible.
package synth

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"repro/internal/ipfix"
)

// StreamConfig shapes one synthetic export stream.
type StreamConfig struct {
	// Flows is the number of concurrent TCP flows.
	Flows int
	// Paths is the number of distinct destination /24s the flows spread
	// over (each flow is pinned to one path, round-robin).
	Paths int
	// RTTMillisBase is the path RTT for path 0; each subsequent path
	// adds RTTMillisStep, so per-path ground truth is distinguishable.
	RTTMillisBase float64
	RTTMillisStep float64
	// LossRate is the probability that a data packet needs a retransmit
	// (emitted as a duplicate sequence number).
	LossRate float64
	// PacketBytes is the payload carried per sampled data packet
	// (default 1460).
	PacketBytes int
	// SampleN is the 1-in-N packet sampling the exporter applies; the
	// generator emits only the sampled packets but advances sequence
	// numbers as if the unsampled ones existed (default 1: unsampled).
	SampleN int
	// Seed drives all randomness.
	Seed int64
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Flows == 0 {
		c.Flows = 64
	}
	if c.Paths == 0 {
		c.Paths = 4
	}
	if c.RTTMillisBase == 0 {
		c.RTTMillisBase = 20
	}
	if c.PacketBytes == 0 {
		c.PacketBytes = 1460
	}
	if c.SampleN <= 0 {
		c.SampleN = 1
	}
	return c
}

// PathTruth is the ground truth planted for one path.
type PathTruth struct {
	// Subnet is the destination /24 (the ingest default path key).
	Subnet netip.Prefix
	// RTTMillis is the path RTT every ack is delayed by.
	RTTMillis float64
	// LossRate is the configured retransmit probability.
	LossRate float64
}

// flowState is one synthetic TCP flow.
type flowState struct {
	key     ipfix.FlowKey
	path    int
	seq     uint32 // next sequence number to send
	sampled int    // deterministic 1-in-N counter
}

// pendingAck is a data packet in flight, acked one RTT later.
type pendingAck struct {
	due     uint64 // virtual millis the ack is observed
	ack     uint32 // cumulative ack value it will carry
	sampled bool   // whether the data packet was sampled (ack mirrors it)
}

// Stream deterministically generates TCP-template flow records. Call
// Next for batches; records within a batch are ordered by ObsMillis.
type Stream struct {
	cfg    StreamConfig
	rng    *rand.Rand
	flows  []*flowState
	acks   [][]pendingAck // per flow FIFO
	nowMs  uint64
	truths []PathTruth

	// Emitted counts records produced; Retransmits counts planted
	// retransmissions (sampled duplicates).
	Emitted     uint64
	Retransmits uint64
}

// NewStream builds a stream at virtual time zero.
func NewStream(cfg StreamConfig) *Stream {
	cfg = cfg.withDefaults()
	s := &Stream{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		nowMs: 60_000, // start at t=60s so Start/Minute fields look sane
	}
	for i := 0; i < cfg.Flows; i++ {
		path := i % cfg.Paths
		f := &flowState{
			// Servers in 10/8 (one per flow), clients spread over
			// cfg.Paths distinct 100.66.x/24 destinations.
			key: ipfix.FlowKey{
				Src:     netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1}),
				Dst:     netip.AddrFrom4([4]byte{100, 66, byte(path), byte(2 + i>>8)}),
				SrcPort: 443,
				DstPort: uint16(40000 + i),
			},
			path: path,
			seq:  uint32(1000 * (i + 1)),
		}
		s.flows = append(s.flows, f)
		s.acks = append(s.acks, nil)
	}
	for p := 0; p < cfg.Paths; p++ {
		s.truths = append(s.truths, PathTruth{
			Subnet:    netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 66, byte(p), 0}), 24),
			RTTMillis: cfg.RTTMillisBase + float64(p)*cfg.RTTMillisStep,
			LossRate:  cfg.LossRate,
		})
	}
	return s
}

// Truth returns the per-path ground truth, indexed by path.
func (s *Stream) Truth() []PathTruth { return s.truths }

// PathKeys returns the ingest-default path key (destination /24 string)
// for each path, aligned with Truth.
func (s *Stream) PathKeys() []string {
	keys := make([]string, len(s.truths))
	for i, t := range s.truths {
		keys[i] = t.Subnet.String()
	}
	return keys
}

// Next advances virtual time by stepMillis and returns the records
// observed in that step: one sampled data packet per flow per step,
// plus any acks that came due. Records are sorted by ObsMillis.
func (s *Stream) Next(stepMillis int) []ipfix.FlowRecord {
	var out []ipfix.FlowRecord
	for step := 0; step < stepMillis; step++ {
		s.nowMs++
		for i, f := range s.flows {
			// Emit acks that have come due.
			for len(s.acks[i]) > 0 && s.acks[i][0].due <= s.nowMs {
				p := s.acks[i][0]
				s.acks[i] = s.acks[i][1:]
				if p.sampled {
					out = append(out, s.ackRecord(f, p.ack))
				}
			}
			// One data packet per flow per millisecond.
			out = append(out, s.dataPackets(i, f)...)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].ObsMillis < out[b].ObsMillis })
	s.Emitted += uint64(len(out))
	return out
}

// dataPackets emits this flow's packet for the current millisecond: a
// fresh segment, or a retransmit (duplicate seq) with probability
// LossRate. The exporter's 1-in-N sampling decides whether the packet
// (and its eventual ack) appear in the export at all.
func (s *Stream) dataPackets(i int, f *flowState) []ipfix.FlowRecord {
	lost := s.cfg.LossRate > 0 && s.rng.Float64() < s.cfg.LossRate
	seq := f.seq
	if !lost {
		f.seq += uint32(s.cfg.PacketBytes)
	}
	f.sampled++
	sampled := f.sampled%s.cfg.SampleN == 0
	rtt := s.truths[f.path].RTTMillis
	if !lost {
		// Cumulative ack for this segment arrives one RTT later; the ack
		// is observable only if its data packet was sampled (the sampler
		// keys on the flow, so both directions thin together).
		s.acks[i] = append(s.acks[i], pendingAck{
			due: s.nowMs + uint64(rtt), ack: seq + uint32(s.cfg.PacketBytes), sampled: sampled,
		})
	}
	if !sampled {
		return nil
	}
	if lost {
		s.Retransmits++
	}
	r := ipfix.FlowRecord{
		Key:       f.key,
		Octets:    uint64(s.cfg.PacketBytes),
		Packets:   1,
		Start:     uint32(s.nowMs / 1000),
		End:       uint32(s.nowMs / 1000),
		Seq:       seq,
		Flags:     ipfix.FlagACK | ipfix.FlagPSH,
		ObsMillis: s.nowMs,
		HasTCP:    true,
	}
	return []ipfix.FlowRecord{r}
}

// ackRecord builds the reverse-direction pure ack.
func (s *Stream) ackRecord(f *flowState, ack uint32) ipfix.FlowRecord {
	return ipfix.FlowRecord{
		Key: ipfix.FlowKey{
			Src: f.key.Dst, Dst: f.key.Src,
			SrcPort: f.key.DstPort, DstPort: f.key.SrcPort,
		},
		Octets:    0,
		Packets:   1,
		Start:     uint32(s.nowMs / 1000),
		End:       uint32(s.nowMs / 1000),
		Ack:       ack,
		Flags:     ipfix.FlagACK,
		ObsMillis: s.nowMs,
		HasTCP:    true,
	}
}

// Messages encodes count milliseconds of stream into IPFIX messages of
// at most perMsg records each, ready to blast at a collector.
func (s *Stream) Messages(enc *ipfix.Encoder, stepMillis, perMsg int) ([][]byte, error) {
	records := s.Next(stepMillis)
	var msgs [][]byte
	for len(records) > 0 {
		n := len(records)
		if n > perMsg {
			n = perMsg
		}
		msg, err := enc.EncodeTCP(uint32(s.nowMs/1000), records[:n])
		if err != nil {
			return nil, fmt.Errorf("synth: encode: %w", err)
		}
		msgs = append(msgs, msg)
		records = records[n:]
	}
	return msgs, nil
}
