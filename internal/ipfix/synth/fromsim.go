package synth

import (
	"math/rand"
	"sort"

	"repro/internal/ipfix"
	"repro/internal/sim"
)

// RecordsFromFlowSamples turns one simulated flow's probe samples into
// the IPFIX TCP records an egress exporter would have produced while
// watching it: a sampled data packet per probe interval and the
// matching ack one (instantaneous) SRTT later, with retransmissions
// planted at lossRate. This is the bridge between the simulator's
// ground truth and the passive-ingest tracker — a tracker fed these
// records should reconstruct each interval's SRTT and the planted loss
// rate without ever seeing the simulator.
//
// Records are returned sorted by ObsMillis. packetBytes spaces the
// sequence numbers (1460 if zero).
func RecordsFromFlowSamples(key ipfix.FlowKey, samples []sim.FlowSample, lossRate float64, packetBytes int, seed int64) []ipfix.FlowRecord {
	if packetBytes <= 0 {
		packetBytes = 1460
	}
	rng := rand.New(rand.NewSource(seed))
	rev := ipfix.FlowKey{
		Src: key.Dst, Dst: key.Src, SrcPort: key.DstPort, DstPort: key.SrcPort,
	}
	var out []ipfix.FlowRecord
	seq := uint32(1000)
	emit := func(atMs uint64, s uint32, srtt sim.Time) {
		data := ipfix.FlowRecord{
			Key: key, Octets: uint64(packetBytes), Packets: 1,
			Start: uint32(atMs / 1000), End: uint32(atMs / 1000),
			Seq: s, Flags: ipfix.FlagACK | ipfix.FlagPSH,
			ObsMillis: atMs, HasTCP: true,
		}
		ackAt := atMs + uint64(srtt.Milliseconds())
		ack := ipfix.FlowRecord{
			Key: rev, Octets: 0, Packets: 1,
			Start: uint32(ackAt / 1000), End: uint32(ackAt / 1000),
			Ack: s + uint32(packetBytes), Flags: ipfix.FlagACK,
			ObsMillis: ackAt, HasTCP: true,
		}
		out = append(out, data, ack)
	}
	for _, s := range samples {
		if s.SRTT <= 0 {
			continue
		}
		atMs := uint64(s.At / sim.Millisecond)
		if lossRate > 0 && rng.Float64() < lossRate {
			// Send the segment, then its retransmit 2 ms later (the same
			// sequence number, which is what the tracker keys loss on);
			// only the retransmit is acked.
			out = append(out, ipfix.FlowRecord{
				Key: key, Octets: uint64(packetBytes), Packets: 1,
				Start: uint32(atMs / 1000), End: uint32(atMs / 1000),
				Seq: seq, Flags: ipfix.FlagACK | ipfix.FlagPSH,
				ObsMillis: atMs, HasTCP: true,
			})
			emit(atMs+2, seq, s.SRTT)
		} else {
			emit(atMs, seq, s.SRTT)
		}
		seq += uint32(packetBytes)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].ObsMillis < out[b].ObsMillis })
	return out
}
