package ipfix

import (
	"testing"
	"time"
)

func waitForCount(t *testing.T, c *Collector, want int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for c.Count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("collector has %d records, want %d", c.Count(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestUDPExportCollectRoundTrip(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	exp, err := NewExporter(col.Addr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	cfg := DefaultSynthConfig()
	cfg.Flows = 3000
	records := Generate(cfg, 1)[:1000]
	if err := exp.Export(100, records); err != nil {
		t.Fatal(err)
	}
	if exp.Sent != 3 { // 1000 records split into 400+400+200
		t.Errorf("sent %d datagrams, want 3", exp.Sent)
	}
	waitForCount(t, col, len(records))
	got := col.Records()
	if len(got) != len(records) {
		t.Fatalf("collected %d, want %d", len(got), len(records))
	}
	for i := range got {
		if got[i] != records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if col.Errors() != 0 {
		t.Errorf("decode errors: %d", col.Errors())
	}
}

func TestUDPCollectorMultipleExporters(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	cfg := DefaultSynthConfig()
	cfg.Flows = 1000
	records := Generate(cfg, 1)[:100]
	for i := 0; i < 3; i++ {
		exp, err := NewExporter(col.Addr(), uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := exp.Export(uint32(i), records); err != nil {
			t.Fatal(err)
		}
		exp.Close()
	}
	waitForCount(t, col, 300)
	// The analysis runs straight off the live feed.
	a := AnalyzeSharing(col.Records())
	if a.Slices == 0 {
		t.Error("no slices from collected feed")
	}
}

func TestUDPCollectorIgnoresGarbage(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	exp, err := NewExporter(col.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	// Raw garbage datagram from the same socket: must count as an error,
	// not crash or pollute.
	if _, err := exp.conn.Write([]byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for col.Errors() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("garbage never counted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if col.Count() != 0 {
		t.Errorf("garbage produced %d records", col.Count())
	}
	// Closing twice errors but does not panic.
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	if err := col.Close(); err == nil {
		t.Error("second close should error")
	}
}
