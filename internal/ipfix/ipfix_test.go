package ipfix

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func rec(src, dst string, sport, dport uint16, start uint32) FlowRecord {
	return FlowRecord{
		Key: FlowKey{
			Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst),
			SrcPort: sport, DstPort: dport,
		},
		Octets: 1500, Packets: 1, Start: start, End: start + 10,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	records := []FlowRecord{
		rec("10.0.0.1", "100.1.2.3", 443, 50000, 60),
		rec("10.0.0.2", "100.1.2.4", 443, 50001, 125),
		rec("10.9.9.9", "100.200.1.77", 8443, 1024, 3599),
	}
	enc := NewEncoder(7)
	msg, err := enc.Encode(1000, records)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	got, err := dec.Decode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("decoded %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if got[i] != records[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], records[i])
		}
	}
	if dec.Decoded != 3 {
		t.Errorf("Decoded = %d", dec.Decoded)
	}
}

func TestEncoderSendsTemplateOnceUntilReset(t *testing.T) {
	enc := NewEncoder(1)
	records := []FlowRecord{rec("10.0.0.1", "100.1.2.3", 443, 50000, 60)}
	m1, _ := enc.Encode(0, records)
	m2, _ := enc.Encode(1, records)
	if len(m1) <= len(m2) {
		t.Error("first message should carry the template and be longer")
	}
	// A fresh decoder buffers a data-only message (no error, no records
	// yet) and recovers it when the template arrives.
	fresh := NewDecoder()
	got, err := fresh.Decode(m2)
	if err != nil || len(got) != 0 {
		t.Errorf("data-only decode = %d records, %v; want buffered (0, nil)", len(got), err)
	}
	if fresh.OrphanBuffered != 1 {
		t.Errorf("OrphanBuffered = %d, want 1", fresh.OrphanBuffered)
	}
	got, err = fresh.Decode(m1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || fresh.OrphanRecovered != 1 {
		t.Errorf("template arrival recovered %d records (OrphanRecovered=%d), want 2 (1)",
			len(got), fresh.OrphanRecovered)
	}
	// A decoder that saw the template decodes directly.
	dec := NewDecoder()
	if _, err := dec.Decode(m1); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(m2); err != nil {
		t.Errorf("decode after template: %v", err)
	}
	// Reset re-emits.
	enc.Reset()
	m3, _ := enc.Encode(2, records)
	if len(m3) != len(m1) {
		t.Error("Reset did not re-emit template")
	}
}

func TestEncoderSequenceNumbers(t *testing.T) {
	enc := NewEncoder(1)
	records := []FlowRecord{
		rec("10.0.0.1", "100.1.2.3", 443, 1, 0),
		rec("10.0.0.1", "100.1.2.3", 443, 2, 0),
	}
	m1, _ := enc.Encode(0, records)
	m2, _ := enc.Encode(0, records)
	// Sequence number lives at offset 8.
	if m1[8] != 0 || m2[11] != 2 {
		t.Errorf("sequence numbers: msg1[8..]=%v msg2[8..]=%v", m1[8:12], m2[8:12])
	}
}

func TestEncodeRejectsIPv6(t *testing.T) {
	enc := NewEncoder(1)
	bad := FlowRecord{Key: FlowKey{
		Src: netip.MustParseAddr("2001:db8::1"), Dst: netip.MustParseAddr("100.1.2.3")}}
	if _, err := enc.Encode(0, []FlowRecord{bad}); err == nil {
		t.Error("IPv6 record accepted by IPv4 template")
	}
}

func TestDecodeMalformed(t *testing.T) {
	dec := NewDecoder()
	cases := map[string][]byte{
		"empty":       {},
		"short":       {0, 10, 0, 4},
		"bad version": {0, 9, 0, 16, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"length lies": {0, 10, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, msg := range cases {
		if _, err := dec.Decode(msg); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
	// Truncated set header inside a valid envelope.
	msg := []byte{0, 10, 0, 18, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0}
	if _, err := dec.Decode(msg); err == nil {
		t.Error("truncated set accepted")
	}
}

func tcpRec(src, dst string, sport, dport uint16, seq, ack uint32, flags uint16, at uint64) FlowRecord {
	r := rec(src, dst, sport, dport, uint32(at/1000))
	r.Seq, r.Ack, r.Flags, r.ObsMillis, r.HasTCP = seq, ack, flags, at, true
	return r
}

func TestEncodeDecodeTCPRoundTrip(t *testing.T) {
	records := []FlowRecord{
		tcpRec("10.0.0.1", "100.1.2.3", 443, 50000, 1000, 0, FlagACK|FlagPSH, 61_500),
		tcpRec("100.1.2.3", "10.0.0.1", 50000, 443, 0, 2460, FlagACK, 61_540),
	}
	enc := NewEncoder(7)
	msg, err := enc.EncodeTCP(61, records)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder().Decode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("decoded %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if got[i] != records[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], records[i])
		}
		if !got[i].HasTCP {
			t.Errorf("record %d lost HasTCP", i)
		}
	}
}

func TestEncoderTemplatesIndependent(t *testing.T) {
	// Flow and TCP templates are announced independently, and a single
	// decoder handles an interleaved stream of both.
	enc := NewEncoder(1)
	flow := []FlowRecord{rec("10.0.0.1", "100.1.2.3", 443, 50000, 60)}
	tcp := []FlowRecord{tcpRec("10.0.0.1", "100.1.2.3", 443, 50000, 9, 0, FlagACK, 60_000)}
	m1, _ := enc.Encode(0, flow)
	m2, _ := enc.EncodeTCP(0, tcp)
	m3, _ := enc.EncodeTCP(1, tcp)
	if len(m2) <= len(m3) {
		t.Error("first TCP message should carry its template")
	}
	dec := NewDecoder()
	var all []FlowRecord
	for _, m := range [][]byte{m1, m2, m3} {
		got, err := dec.Decode(m)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, got...)
	}
	if len(all) != 3 || all[0].HasTCP || !all[1].HasTCP || !all[2].HasTCP {
		t.Errorf("interleaved decode = %+v", all)
	}
}

func TestDecoderOrphanBounds(t *testing.T) {
	// Flood a fresh decoder with more template-less data sets than the
	// buffer holds: oldest are dropped, counted, and memory stays bounded.
	enc := NewEncoder(1)
	records := []FlowRecord{rec("10.0.0.1", "100.1.2.3", 443, 50000, 60)}
	enc.Encode(0, records) // swallow the template message
	dataOnly, _ := enc.Encode(1, records)
	dec := NewDecoder()
	for i := 0; i < maxOrphanSets+10; i++ {
		if _, err := dec.Decode(dataOnly); err != nil {
			t.Fatal(err)
		}
	}
	if dec.OrphanDropped != 10 {
		t.Errorf("OrphanDropped = %d, want 10", dec.OrphanDropped)
	}
	if dec.orphanBytes > maxOrphanBytes {
		t.Errorf("orphanBytes = %d exceeds bound %d", dec.orphanBytes, maxOrphanBytes)
	}
	// Template arrival drains what is still buffered.
	enc2 := NewEncoder(1)
	withTmpl, _ := enc2.Encode(2, records)
	got, err := dec.Decode(withTmpl)
	if err != nil {
		t.Fatal(err)
	}
	want := maxOrphanSets + 1 // buffered sets + the record in withTmpl itself
	if len(got) != want {
		t.Errorf("drained %d records, want %d", len(got), want)
	}
}

func TestDecoderTemplateEviction(t *testing.T) {
	dec := NewDecoder()
	// Announce more templates than the cache holds (each a minimal
	// 1-field template): the oldest must be evicted.
	for i := 0; i < maxTemplates+5; i++ {
		id := uint16(300 + i)
		msg := []byte{
			0, 10, 0, 28, // version, length
			0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, // export time, seq, domain
			0, 2, 0, 12, // template set header
			byte(id >> 8), byte(id), 0, 1, // template id, field count
			0, 1, 0, 8, // one IE: octetDeltaCount(1), 8 bytes
		}
		if _, err := dec.Decode(msg); err != nil {
			t.Fatal(err)
		}
	}
	if len(dec.templates) > maxTemplates {
		t.Errorf("template cache grew to %d, cap %d", len(dec.templates), maxTemplates)
	}
	if dec.EvictedTemplates != 5 {
		t.Errorf("EvictedTemplates = %d, want 5", dec.EvictedTemplates)
	}
}

func TestDecoderMalformedTemplateSkipped(t *testing.T) {
	// A truncated template entry is counted and skipped; a following
	// well-formed data set (for a known template) still decodes.
	enc := NewEncoder(1)
	records := []FlowRecord{rec("10.0.0.1", "100.1.2.3", 443, 50000, 60)}
	withTmpl, _ := enc.Encode(0, records)
	dataOnly, _ := enc.Encode(1, records)
	dec := NewDecoder()
	if _, err := dec.Decode(withTmpl); err != nil {
		t.Fatal(err)
	}
	// Craft a message with a malformed template set then the data set.
	badTmpl := []byte{0, 2, 0, 8, 1, 5, 0, 9} // claims 9 fields, has none
	body := append(badTmpl, dataOnly[messageHeaderLen:]...)
	msg := make([]byte, messageHeaderLen+len(body))
	msg[0], msg[1] = 0, 10
	msg[2] = byte((messageHeaderLen + len(body)) >> 8)
	msg[3] = byte(messageHeaderLen + len(body))
	copy(msg[messageHeaderLen:], body)
	got, err := dec.Decode(msg)
	if err != nil {
		t.Fatalf("malformed template failed the datagram: %v", err)
	}
	if dec.Malformed != 1 {
		t.Errorf("Malformed = %d, want 1", dec.Malformed)
	}
	if len(got) != 1 || got[0] != records[0] {
		t.Errorf("data after malformed template = %+v", got)
	}
}

// Property: any batch of valid IPv4 records round-trips bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seeds []uint32, domain uint32) bool {
		if len(seeds) > 50 {
			seeds = seeds[:50]
		}
		var records []FlowRecord
		for _, s := range seeds {
			records = append(records, FlowRecord{
				Key: FlowKey{
					Src:     netip.AddrFrom4([4]byte{10, byte(s >> 16), byte(s >> 8), byte(s)}),
					Dst:     netip.AddrFrom4([4]byte{100, byte(s >> 8), byte(s), byte(s >> 24)}),
					SrcPort: uint16(s), DstPort: uint16(s >> 16),
				},
				Octets: uint64(s) * 3, Packets: uint64(s % 100),
				Start: s % 86400, End: s%86400 + 5,
			})
		}
		enc := NewEncoder(domain)
		msg, err := enc.Encode(123, records)
		if err != nil {
			return false
		}
		got, err := NewDecoder().Decode(msg)
		if err != nil {
			return false
		}
		if len(got) != len(records) {
			return false
		}
		for i := range got {
			if got[i] != records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSamplerExactRate(t *testing.T) {
	s := NewSampler(4096)
	count := 0
	for i := 0; i < 4096*10; i++ {
		if s.Sample() {
			count++
		}
	}
	if count != 10 {
		t.Errorf("sampled %d of 40960 at 1:4096, want 10", count)
	}
	if s.Seen != 40960 || s.Sampled != 10 {
		t.Errorf("counters %d/%d", s.Seen, s.Sampled)
	}
	all := NewSampler(0)
	if !all.Sample() {
		t.Error("1:1 sampler rejected a packet")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, lambda := range []float64{0.5, 3, 50} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, lambda))
		}
		mean := sum / n
		if mean < lambda*0.95 || mean > lambda*1.05 {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive lambda should yield 0")
	}
}

func TestDstSubnetAndMinute(t *testing.T) {
	r := rec("10.0.0.1", "100.1.2.3", 443, 50000, 125)
	if got := r.DstSubnet24().String(); got != "100.1.2.0/24" {
		t.Errorf("subnet = %s", got)
	}
	if r.Minute() != 2 {
		t.Errorf("minute = %d", r.Minute())
	}
	s := SliceOf(&r)
	if s.Minute != 2 || s.Subnet.String() != "100.1.2.0/24" {
		t.Errorf("slice = %+v", s)
	}
}

func TestAnalyzeSharingCounts(t *testing.T) {
	// Three flows in one slice, one alone in another.
	records := []FlowRecord{
		rec("10.0.0.1", "100.1.2.3", 443, 1, 60),
		rec("10.0.0.1", "100.1.2.4", 443, 2, 70),
		rec("10.0.0.2", "100.1.2.5", 443, 3, 80),
		rec("10.0.0.1", "100.9.9.9", 443, 4, 60),
	}
	a := AnalyzeSharing(records)
	if a.Slices != 2 {
		t.Fatalf("slices = %d, want 2", a.Slices)
	}
	if got := a.FractionSharingAtLeast(2); got != 0.75 {
		t.Errorf("P(>=2 others) = %v, want 0.75", got)
	}
	if got := a.FractionSharingAtLeast(1); got != 0.75 {
		t.Errorf("P(>=1 other) = %v, want 0.75", got)
	}
	if got := a.FractionSharingAtLeast(0); got != 1 {
		t.Errorf("P(>=0) = %v, want 1", got)
	}
	// Duplicate 4-tuples in a slice count once.
	dup := append(records, records[0])
	if got := AnalyzeSharing(dup).Slices; got != 2 {
		t.Errorf("slices with dup = %d", got)
	}
	empty := AnalyzeSharing(nil)
	if empty.FractionSharingAtLeast(1) != 0 {
		t.Error("empty analysis should be 0")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.Flows = 5000
	a := Generate(cfg, DefaultSamplingRate)
	b := Generate(cfg, DefaultSamplingRate)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGenerateSamplingThins(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.Flows = 20000
	sampled := Generate(cfg, DefaultSamplingRate)
	full := Generate(cfg, 1)
	if len(sampled) >= len(full) {
		t.Errorf("sampling did not thin: %d vs %d", len(sampled), len(full))
	}
	if len(full) != cfg.Flows {
		t.Errorf("unsampled export = %d flows, want %d", len(full), cfg.Flows)
	}
}

// TestSharingMatchesPaperAnchors is the Section 2.1 reproduction: under
// 1-in-4096 sampling, ~50% of exported flows share their /24-minute slice
// with at least 5 other flows and ~12% with at least 100.
func TestSharingMatchesPaperAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	a := AnalyzeSharing(Generate(DefaultSynthConfig(), DefaultSamplingRate))
	p5 := a.FractionSharingAtLeast(5)
	p100 := a.FractionSharingAtLeast(100)
	t.Logf("P(>=5 others) = %.3f (paper 0.50), P(>=100) = %.3f (paper 0.12)", p5, p100)
	if p5 < 0.40 || p5 > 0.62 {
		t.Errorf("P(>=5) = %v, want near 0.50", p5)
	}
	if p100 < 0.06 || p100 > 0.20 {
		t.Errorf("P(>=100) = %v, want near 0.12", p100)
	}
}

func TestFullPipelineEncodeAnalyze(t *testing.T) {
	// Generate -> encode in batches -> decode -> analyze; the analysis
	// must be identical to analyzing the records directly.
	cfg := DefaultSynthConfig()
	cfg.Flows = 30000
	records := Generate(cfg, DefaultSamplingRate)
	enc := NewEncoder(1)
	dec := NewDecoder()
	var decoded []FlowRecord
	for i := 0; i < len(records); i += 100 {
		end := i + 100
		if end > len(records) {
			end = len(records)
		}
		msg, err := enc.Encode(uint32(i), records[i:end])
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(msg)
		if err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, got...)
	}
	direct := AnalyzeSharing(records)
	viaWire := AnalyzeSharing(decoded)
	if direct.Slices != viaWire.Slices {
		t.Errorf("slices differ: %d vs %d", direct.Slices, viaWire.Slices)
	}
	if direct.FractionSharingAtLeast(5) != viaWire.FractionSharingAtLeast(5) {
		t.Error("sharing fractions differ across the wire")
	}
}

// Property: the decoder never panics on arbitrary bytes — it either
// errors or returns records.
func TestDecoderNeverPanicsProperty(t *testing.T) {
	dec := NewDecoder()
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decoder panicked on %x: %v", raw, r)
			}
		}()
		_, _ = dec.Decode(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	// And on a valid envelope with garbage sets.
	g := func(body []byte) bool {
		if len(body) > 200 {
			body = body[:200]
		}
		msg := make([]byte, 16+len(body))
		msg[0], msg[1] = 0, 10
		msg[2] = byte((16 + len(body)) >> 8)
		msg[3] = byte(16 + len(body))
		copy(msg[16:], body)
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decoder panicked on envelope %x: %v", body, r)
			}
		}()
		_, _ = dec.Decode(msg)
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
