// Package ipfix implements the measurement substrate of Section 2.1: an
// RFC 7011-subset IPFIX (IP Flow Information Export) codec, the 1-in-4096
// packet sampler the paper's routers used, a synthetic cloud-egress
// traffic model, and the flow-sharing analysis ("50% of flows share the
// WAN path with at least 5 other flows; 12% with at least 100").
package ipfix

import (
	"fmt"
	"net/netip"
)

// DefaultSamplingRate is the paper's router sampling rate: one packet in
// 4096 is sampled and exported.
const DefaultSamplingRate = 4096

// FlowKey is the 4-tuple the paper counts distinct flows by.
type FlowKey struct {
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d->%s:%d", k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// TCP control bits (RFC 9293 flags) as carried by ieTCPControlBits.
const (
	FlagFIN uint16 = 1 << 0
	FlagSYN uint16 = 1 << 1
	FlagRST uint16 = 1 << 2
	FlagPSH uint16 = 1 << 3
	FlagACK uint16 = 1 << 4
)

// FlowRecord is one exported flow record (the subset of IANA information
// elements this package encodes).
//
// Two template shapes share this struct. The aggregate template
// (Encoder.Encode) carries only the 4-tuple, delta counts, and
// start/end seconds. The TCP template (Encoder.EncodeTCP) additionally
// carries one sampled packet's sequence/ack numbers, control bits, and
// a millisecond observation timestamp — the raw material for passive
// RTT/loss reconstruction. HasTCP distinguishes the two after decode.
type FlowRecord struct {
	Key FlowKey
	// Octets and Packets are the sampled delta counts.
	Octets  uint64
	Packets uint64
	// Start and End are flow start/end in Unix seconds.
	Start uint32
	End   uint32

	// Seq and Ack are the sampled packet's TCP sequence and
	// acknowledgment numbers; Flags its control bits; ObsMillis the
	// observation timestamp in milliseconds. Only meaningful when
	// HasTCP is set (records decoded from the TCP template).
	Seq       uint32
	Ack       uint32
	Flags     uint16
	ObsMillis uint64
	HasTCP    bool
}

// DstSubnet24 returns the record's destination /24 prefix, the spatial
// aggregation granularity of the paper's analysis.
func (r *FlowRecord) DstSubnet24() netip.Prefix {
	return netip.PrefixFrom(r.Key.Dst, 24).Masked()
}

// Minute returns the record's start minute (temporal granularity).
func (r *FlowRecord) Minute() uint32 { return r.Start / 60 }

// PathSlice is the paper's spatio-temporal sharing unit: one destination
// /24 within a one-minute slice ("given this compact spatio-temporal
// granularity, we can reasonably expect all the flows to follow the same
// WAN path").
type PathSlice struct {
	Subnet netip.Prefix
	Minute uint32
}

// SliceOf returns the record's path slice.
func SliceOf(r *FlowRecord) PathSlice {
	return PathSlice{Subnet: r.DstSubnet24(), Minute: r.Minute()}
}
