// Package ipfix implements the measurement substrate of Section 2.1: an
// RFC 7011-subset IPFIX (IP Flow Information Export) codec, the 1-in-4096
// packet sampler the paper's routers used, a synthetic cloud-egress
// traffic model, and the flow-sharing analysis ("50% of flows share the
// WAN path with at least 5 other flows; 12% with at least 100").
package ipfix

import (
	"fmt"
	"net/netip"
)

// DefaultSamplingRate is the paper's router sampling rate: one packet in
// 4096 is sampled and exported.
const DefaultSamplingRate = 4096

// FlowKey is the 4-tuple the paper counts distinct flows by.
type FlowKey struct {
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d->%s:%d", k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// FlowRecord is one exported flow record (the subset of IANA information
// elements this package encodes).
type FlowRecord struct {
	Key FlowKey
	// Octets and Packets are the sampled delta counts.
	Octets  uint64
	Packets uint64
	// Start and End are flow start/end in Unix seconds.
	Start uint32
	End   uint32
}

// DstSubnet24 returns the record's destination /24 prefix, the spatial
// aggregation granularity of the paper's analysis.
func (r *FlowRecord) DstSubnet24() netip.Prefix {
	return netip.PrefixFrom(r.Key.Dst, 24).Masked()
}

// Minute returns the record's start minute (temporal granularity).
func (r *FlowRecord) Minute() uint32 { return r.Start / 60 }

// PathSlice is the paper's spatio-temporal sharing unit: one destination
// /24 within a one-minute slice ("given this compact spatio-temporal
// granularity, we can reasonably expect all the flows to follow the same
// WAN path").
type PathSlice struct {
	Subnet netip.Prefix
	Minute uint32
}

// SliceOf returns the record's path slice.
func SliceOf(r *FlowRecord) PathSlice {
	return PathSlice{Subnet: r.DstSubnet24(), Minute: r.Minute()}
}
