package ipfix

import (
	"math"
	"math/rand"
	"net/netip"
	"sort"
)

// Sampler is the router-side 1-in-N packet sampler: a deterministic
// counter sampler (every Nth packet across the aggregate, as IPFIX
// deployments commonly configure).
type Sampler struct {
	N       int
	counter int

	// Seen and Sampled count packets offered and selected.
	Seen    uint64
	Sampled uint64
}

// NewSampler returns a 1-in-n sampler; n <= 1 samples everything.
func NewSampler(n int) *Sampler {
	if n < 1 {
		n = 1
	}
	return &Sampler{N: n}
}

// Sample reports whether this packet is selected.
func (s *Sampler) Sample() bool {
	s.Seen++
	s.counter++
	if s.counter >= s.N {
		s.counter = 0
		s.Sampled++
		return true
	}
	return false
}

// SynthConfig parameterizes the synthetic cloud-egress model used in place
// of the paper's production IPFIX feed. Destinations (/24 client subnets)
// are drawn from a Zipf popularity distribution — a small number of
// popular eyeball subnets receive most flows, as CDN egress does — which
// is what produces the heavy-tailed path sharing of Section 2.1.
type SynthConfig struct {
	// Servers is the number of egress servers (the paper notes ~4669 for
	// Netflix).
	Servers int
	// Subnets is the number of distinct destination /24s.
	Subnets int
	// ZipfS is the Zipf exponent (> 1) of subnet popularity; ZipfV (>= 1)
	// flattens the head of the distribution.
	ZipfS float64
	ZipfV float64
	// Flows is the number of flows to generate.
	Flows int
	// Minutes is the observation span.
	Minutes int
	// MeanPackets is the mean packets per flow (exponential).
	MeanPackets float64
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultSynthConfig returns a configuration calibrated so the sharing
// CDF, observed through 1-in-4096 sampling, lands near the paper's
// anchors (~50% of flows sharing a slice with >= 5 others, ~12% with
// >= 100).
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		Servers:     4669,
		Subnets:     80000,
		ZipfS:       1.15,
		ZipfV:       8,
		Flows:       150000,
		Minutes:     10,
		MeanPackets: 4000,
		Seed:        1,
	}
}

// Generate produces the sampled flow records a collector would hold:
// flows are generated per the model, each packet passes the sampler, and
// flows with at least one sampled packet are exported with their sampled
// delta counts.
//
// Packet-level sampling is applied analytically: with mean packet count
// lambda/N per flow tiny, the sampled packet count is Poisson — this is
// exact in the limit of interleaved aggregates and keeps generation fast.
func Generate(cfg SynthConfig, sampleN int) []FlowRecord {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Servers < 1 {
		cfg.Servers = 1
	}
	if cfg.Subnets < 1 {
		cfg.Subnets = 1
	}
	v := cfg.ZipfV
	if v < 1 {
		v = 1
	}
	zipf := rand.NewZipf(rng, cfg.ZipfS, v, uint64(cfg.Subnets-1))

	var out []FlowRecord
	for i := 0; i < cfg.Flows; i++ {
		subnet := int(zipf.Uint64())
		server := rng.Intn(cfg.Servers)
		minute := rng.Intn(cfg.Minutes)
		packets := rng.ExpFloat64() * cfg.MeanPackets
		if packets < 1 {
			packets = 1
		}
		sampled := int(packets)
		if sampleN > 1 {
			sampled = poisson(rng, packets/float64(sampleN))
		}
		if sampled == 0 {
			continue
		}
		start := uint32(minute*60 + rng.Intn(60))
		out = append(out, FlowRecord{
			Key: FlowKey{
				Src:     serverAddr(server),
				Dst:     clientAddr(subnet, rng.Intn(254)+1),
				SrcPort: 443,
				DstPort: uint16(1024 + rng.Intn(60000)),
			},
			Octets:  uint64(sampled) * 1500,
			Packets: uint64(sampled),
			Start:   start,
			End:     start + uint32(rng.Intn(30)),
		})
	}
	return out
}

// poisson draws from Poisson(lambda) (Knuth for small lambda, normal
// approximation above 30 — sampling rates make lambda almost always < 5).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := int(math.Round(rng.NormFloat64()*math.Sqrt(lambda) + lambda))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// serverAddr maps a server index into 10.0.0.0/8.
func serverAddr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
}

// clientAddr maps (subnet index, host) into 100.64.0.0/10-ish space, one
// /24 per subnet index.
func clientAddr(subnet, host int) netip.Addr {
	return netip.AddrFrom4([4]byte{100, byte(subnet >> 8), byte(subnet), byte(host)})
}

// SharingAnalysis is the Section 2.1 result: for every exported flow, how
// many other flows shared its path slice (destination /24 x minute).
type SharingAnalysis struct {
	// OthersPerFlow has one entry per flow: the number of other flows in
	// its slice.
	OthersPerFlow []float64
	// Slices is the number of distinct path slices observed.
	Slices int
}

// AnalyzeSharing groups records into path slices and counts distinct
// 4-tuples per slice.
func AnalyzeSharing(records []FlowRecord) SharingAnalysis {
	type sliceKey struct {
		subnet netip.Prefix
		minute uint32
	}
	counts := make(map[sliceKey]map[FlowKey]struct{})
	for i := range records {
		k := sliceKey{records[i].DstSubnet24(), records[i].Minute()}
		m, ok := counts[k]
		if !ok {
			m = make(map[FlowKey]struct{})
			counts[k] = m
		}
		m[records[i].Key] = struct{}{}
	}
	var out SharingAnalysis
	out.Slices = len(counts)
	for _, m := range counts {
		n := len(m)
		for range m {
			out.OthersPerFlow = append(out.OthersPerFlow, float64(n-1))
		}
	}
	sort.Float64s(out.OthersPerFlow)
	return out
}

// FractionSharingAtLeast returns the fraction of flows that share their
// slice with at least k other flows (the paper's headline statistics).
func (a *SharingAnalysis) FractionSharingAtLeast(k int) float64 {
	if len(a.OthersPerFlow) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(a.OthersPerFlow, float64(k))
	return float64(len(a.OthersPerFlow)-idx) / float64(len(a.OthersPerFlow))
}
