package ipfix

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// RFC 7011 constants.
const (
	// Version is the IPFIX protocol version number.
	Version = 10
	// TemplateSetID identifies a template set.
	TemplateSetID = 2
	// flowTemplateID is the template this package exports (must be >= 256).
	flowTemplateID = 256
	// messageHeaderLen and setHeaderLen are fixed RFC 7011 sizes.
	messageHeaderLen = 16
	setHeaderLen     = 4
)

// IANA information element IDs used by the flow template.
const (
	ieOctetDeltaCount    = 1 // 8 bytes
	iePacketDeltaCount   = 2 // 8 bytes
	ieSourceIPv4         = 8 // 4 bytes
	ieSourcePort         = 7 // 2 bytes
	ieDestinationPort    = 11
	ieDestinationIPv4    = 12
	ieFlowStartSeconds   = 150 // 4 bytes
	ieFlowEndSeconds     = 151 // 4 bytes
	flowRecordWireLength = 8 + 8 + 4 + 2 + 2 + 4 + 4 + 4
)

// templateFields is the exported template, in wire order.
var templateFields = []struct {
	id  uint16
	len uint16
}{
	{ieSourceIPv4, 4},
	{ieDestinationIPv4, 4},
	{ieSourcePort, 2},
	{ieDestinationPort, 2},
	{ieOctetDeltaCount, 8},
	{iePacketDeltaCount, 8},
	{ieFlowStartSeconds, 4},
	{ieFlowEndSeconds, 4},
}

// Codec errors.
var (
	ErrShortMessage    = errors.New("ipfix: truncated message")
	ErrBadVersion      = errors.New("ipfix: unsupported version")
	ErrUnknownTemplate = errors.New("ipfix: data set references unknown template")
)

// Encoder builds IPFIX messages from flow records. The first message (and
// every message after Reset) carries the template set, as exporters do on
// template refresh.
type Encoder struct {
	domainID     uint32
	seq          uint32
	sentTemplate bool
}

// NewEncoder creates an encoder for the given observation domain.
func NewEncoder(domainID uint32) *Encoder {
	return &Encoder{domainID: domainID}
}

// Reset forces the next message to carry the template again.
func (e *Encoder) Reset() { e.sentTemplate = false }

// Encode renders records into one IPFIX message with the given export
// time. Only IPv4 flows are supported by this template.
func (e *Encoder) Encode(exportTime uint32, records []FlowRecord) ([]byte, error) {
	for i := range records {
		if !records[i].Key.Src.Is4() || !records[i].Key.Dst.Is4() {
			return nil, fmt.Errorf("ipfix: record %d is not IPv4", i)
		}
	}
	msg := make([]byte, messageHeaderLen, messageHeaderLen+64+len(records)*flowRecordWireLength)

	if !e.sentTemplate {
		msg = e.appendTemplateSet(msg)
		e.sentTemplate = true
	}
	if len(records) > 0 {
		setStart := len(msg)
		msg = binary.BigEndian.AppendUint16(msg, flowTemplateID)
		msg = binary.BigEndian.AppendUint16(msg, 0) // set length, patched below
		for i := range records {
			msg = appendRecord(msg, &records[i])
		}
		binary.BigEndian.PutUint16(msg[setStart+2:], uint16(len(msg)-setStart))
	}

	binary.BigEndian.PutUint16(msg[0:], Version)
	binary.BigEndian.PutUint16(msg[2:], uint16(len(msg)))
	binary.BigEndian.PutUint32(msg[4:], exportTime)
	binary.BigEndian.PutUint32(msg[8:], e.seq)
	binary.BigEndian.PutUint32(msg[12:], e.domainID)
	e.seq += uint32(len(records))
	return msg, nil
}

func (e *Encoder) appendTemplateSet(msg []byte) []byte {
	start := len(msg)
	msg = binary.BigEndian.AppendUint16(msg, TemplateSetID)
	msg = binary.BigEndian.AppendUint16(msg, 0) // patched below
	msg = binary.BigEndian.AppendUint16(msg, flowTemplateID)
	msg = binary.BigEndian.AppendUint16(msg, uint16(len(templateFields)))
	for _, f := range templateFields {
		msg = binary.BigEndian.AppendUint16(msg, f.id)
		msg = binary.BigEndian.AppendUint16(msg, f.len)
	}
	binary.BigEndian.PutUint16(msg[start+2:], uint16(len(msg)-start))
	return msg
}

func appendRecord(msg []byte, r *FlowRecord) []byte {
	src := r.Key.Src.As4()
	dst := r.Key.Dst.As4()
	msg = append(msg, src[:]...)
	msg = append(msg, dst[:]...)
	msg = binary.BigEndian.AppendUint16(msg, r.Key.SrcPort)
	msg = binary.BigEndian.AppendUint16(msg, r.Key.DstPort)
	msg = binary.BigEndian.AppendUint64(msg, r.Octets)
	msg = binary.BigEndian.AppendUint64(msg, r.Packets)
	msg = binary.BigEndian.AppendUint32(msg, r.Start)
	msg = binary.BigEndian.AppendUint32(msg, r.End)
	return msg
}

// Decoder parses IPFIX messages, learning templates as they arrive (as a
// collector does). Only the flow template above is decoded into records;
// other data sets are skipped.
type Decoder struct {
	// templates maps template ID to field layout (id, len pairs).
	templates map[uint16][]uint16 // flattened [id, len, id, len...]
	// Decoded counts records decoded; SkippedSets counts unknown sets.
	Decoded     uint64
	SkippedSets uint64
}

// NewDecoder creates an empty-template-cache decoder.
func NewDecoder() *Decoder {
	return &Decoder{templates: make(map[uint16][]uint16)}
}

// Decode parses one message and returns its flow records.
func (d *Decoder) Decode(msg []byte) ([]FlowRecord, error) {
	if len(msg) < messageHeaderLen {
		return nil, ErrShortMessage
	}
	if binary.BigEndian.Uint16(msg[0:]) != Version {
		return nil, ErrBadVersion
	}
	total := int(binary.BigEndian.Uint16(msg[2:]))
	if total > len(msg) || total < messageHeaderLen {
		return nil, ErrShortMessage
	}
	var out []FlowRecord
	body := msg[messageHeaderLen:total]
	for len(body) > 0 {
		if len(body) < setHeaderLen {
			return nil, ErrShortMessage
		}
		setID := binary.BigEndian.Uint16(body[0:])
		setLen := int(binary.BigEndian.Uint16(body[2:]))
		if setLen < setHeaderLen || setLen > len(body) {
			return nil, ErrShortMessage
		}
		content := body[setHeaderLen:setLen]
		switch {
		case setID == TemplateSetID:
			if err := d.parseTemplates(content); err != nil {
				return nil, err
			}
		case setID >= 256:
			recs, err := d.parseData(setID, content)
			if err != nil {
				return nil, err
			}
			out = append(out, recs...)
		default:
			d.SkippedSets++
		}
		body = body[setLen:]
	}
	return out, nil
}

func (d *Decoder) parseTemplates(b []byte) error {
	for len(b) >= 4 {
		id := binary.BigEndian.Uint16(b[0:])
		count := int(binary.BigEndian.Uint16(b[2:]))
		b = b[4:]
		if len(b) < count*4 {
			return ErrShortMessage
		}
		layout := make([]uint16, 0, count*2)
		for i := 0; i < count; i++ {
			layout = append(layout,
				binary.BigEndian.Uint16(b[i*4:]), binary.BigEndian.Uint16(b[i*4+2:]))
		}
		d.templates[id] = layout
		b = b[count*4:]
	}
	return nil
}

func (d *Decoder) parseData(templateID uint16, b []byte) ([]FlowRecord, error) {
	layout, ok := d.templates[templateID]
	if !ok {
		return nil, ErrUnknownTemplate
	}
	recLen := 0
	for i := 1; i < len(layout); i += 2 {
		recLen += int(layout[i])
	}
	if recLen == 0 {
		return nil, ErrShortMessage
	}
	var out []FlowRecord
	for len(b) >= recLen {
		rec := b[:recLen]
		b = b[recLen:]
		var r FlowRecord
		known := 0
		off := 0
		for i := 0; i < len(layout); i += 2 {
			id, flen := layout[i], int(layout[i+1])
			field := rec[off : off+flen]
			off += flen
			switch {
			case id == ieSourceIPv4 && flen == 4:
				r.Key.Src = netip.AddrFrom4([4]byte(field))
				known++
			case id == ieDestinationIPv4 && flen == 4:
				r.Key.Dst = netip.AddrFrom4([4]byte(field))
				known++
			case id == ieSourcePort && flen == 2:
				r.Key.SrcPort = binary.BigEndian.Uint16(field)
				known++
			case id == ieDestinationPort && flen == 2:
				r.Key.DstPort = binary.BigEndian.Uint16(field)
				known++
			case id == ieOctetDeltaCount && flen == 8:
				r.Octets = binary.BigEndian.Uint64(field)
				known++
			case id == iePacketDeltaCount && flen == 8:
				r.Packets = binary.BigEndian.Uint64(field)
				known++
			case id == ieFlowStartSeconds && flen == 4:
				r.Start = binary.BigEndian.Uint32(field)
				known++
			case id == ieFlowEndSeconds && flen == 4:
				r.End = binary.BigEndian.Uint32(field)
				known++
			}
		}
		if known == len(layout)/2 {
			d.Decoded++
			out = append(out, r)
		} else {
			d.SkippedSets++
		}
	}
	return out, nil
}
