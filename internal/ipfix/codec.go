package ipfix

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// RFC 7011 constants.
const (
	// Version is the IPFIX protocol version number.
	Version = 10
	// TemplateSetID identifies a template set.
	TemplateSetID = 2
	// flowTemplateID is the aggregate-flow template this package exports
	// (must be >= 256); tcpTemplateID is the per-sampled-packet template
	// carrying the TCP fields passive state reconstruction needs.
	flowTemplateID = 256
	tcpTemplateID  = 257
	// messageHeaderLen and setHeaderLen are fixed RFC 7011 sizes.
	messageHeaderLen = 16
	setHeaderLen     = 4
)

// IANA information element IDs used by the flow templates.
const (
	ieOctetDeltaCount    = 1   // 8 bytes
	iePacketDeltaCount   = 2   // 8 bytes
	ieTCPControlBits     = 6   // 2 bytes (RFC 7125 widened it to 16 bits)
	ieSourceIPv4         = 8   // 4 bytes
	ieSourcePort         = 7   // 2 bytes
	ieDestinationPort    = 11  // 2 bytes
	ieDestinationIPv4    = 12  // 4 bytes
	ieFlowStartSeconds   = 150 // 4 bytes
	ieFlowEndSeconds     = 151 // 4 bytes
	ieTCPSequenceNumber  = 184 // 4 bytes
	ieTCPAckNumber       = 185 // 4 bytes
	ieObsTimeMillis      = 323 // 8 bytes, dateTimeMilliseconds
	flowRecordWireLength = 8 + 8 + 4 + 2 + 2 + 4 + 4 + 4
	tcpRecordWireLength  = flowRecordWireLength + 4 + 4 + 2 + 8
)

// Decoder resource bounds: templates per session and pending
// template-less data sets buffered while waiting for the template.
const (
	maxTemplates    = 64
	maxOrphanSets   = 64
	maxOrphanBytes  = 256 << 10
	orphanRecordCap = 1 << 16 // records recovered from one drained set list
)

// templateFields is the exported aggregate-flow template, in wire order.
var templateFields = []struct {
	id  uint16
	len uint16
}{
	{ieSourceIPv4, 4},
	{ieDestinationIPv4, 4},
	{ieSourcePort, 2},
	{ieDestinationPort, 2},
	{ieOctetDeltaCount, 8},
	{iePacketDeltaCount, 8},
	{ieFlowStartSeconds, 4},
	{ieFlowEndSeconds, 4},
}

// tcpTemplateFields extends the flow template with the sampled packet's
// TCP header fields and a millisecond observation timestamp — what the
// passive seq/ack tracker (internal/ingest) matches on.
var tcpTemplateFields = append(append([]struct {
	id  uint16
	len uint16
}(nil), templateFields...), []struct {
	id  uint16
	len uint16
}{
	{ieTCPSequenceNumber, 4},
	{ieTCPAckNumber, 4},
	{ieTCPControlBits, 2},
	{ieObsTimeMillis, 8},
}...)

// Codec errors.
var (
	ErrShortMessage = errors.New("ipfix: truncated message")
	ErrBadVersion   = errors.New("ipfix: unsupported version")
	// ErrUnknownTemplate is retained for API compatibility. Since the
	// collector-hardening change, a data set referencing an unknown
	// template is buffered (bounded) until the template arrives instead
	// of failing the whole datagram; Decode no longer returns this error.
	ErrUnknownTemplate = errors.New("ipfix: data set references unknown template")
)

// Encoder builds IPFIX messages from flow records. The first message (and
// every message after Reset) for each template carries that template set,
// as exporters do on template refresh.
type Encoder struct {
	domainID uint32
	seq      uint32
	sentFlow bool
	sentTCP  bool
}

// NewEncoder creates an encoder for the given observation domain.
func NewEncoder(domainID uint32) *Encoder {
	return &Encoder{domainID: domainID}
}

// Reset forces the next message to carry its template again.
func (e *Encoder) Reset() { e.sentFlow, e.sentTCP = false, false }

// Encode renders records into one IPFIX message with the given export
// time, using the aggregate-flow template. Only IPv4 flows are supported.
func (e *Encoder) Encode(exportTime uint32, records []FlowRecord) ([]byte, error) {
	return e.encode(exportTime, records, false)
}

// EncodeTCP renders per-sampled-packet records (Seq/Ack/Flags/ObsMillis
// populated) into one IPFIX message using the TCP template. Only IPv4
// flows are supported.
func (e *Encoder) EncodeTCP(exportTime uint32, records []FlowRecord) ([]byte, error) {
	return e.encode(exportTime, records, true)
}

func (e *Encoder) encode(exportTime uint32, records []FlowRecord, tcp bool) ([]byte, error) {
	for i := range records {
		if !records[i].Key.Src.Is4() || !records[i].Key.Dst.Is4() {
			return nil, fmt.Errorf("ipfix: record %d is not IPv4", i)
		}
	}
	recLen, setID := flowRecordWireLength, uint16(flowTemplateID)
	if tcp {
		recLen, setID = tcpRecordWireLength, tcpTemplateID
	}
	msg := make([]byte, messageHeaderLen, messageHeaderLen+64+len(records)*recLen)

	sent := &e.sentFlow
	if tcp {
		sent = &e.sentTCP
	}
	if !*sent {
		msg = appendTemplateSet(msg, setID)
		*sent = true
	}
	if len(records) > 0 {
		setStart := len(msg)
		msg = binary.BigEndian.AppendUint16(msg, setID)
		msg = binary.BigEndian.AppendUint16(msg, 0) // set length, patched below
		for i := range records {
			msg = appendRecord(msg, &records[i], tcp)
		}
		binary.BigEndian.PutUint16(msg[setStart+2:], uint16(len(msg)-setStart))
	}

	binary.BigEndian.PutUint16(msg[0:], Version)
	binary.BigEndian.PutUint16(msg[2:], uint16(len(msg)))
	binary.BigEndian.PutUint32(msg[4:], exportTime)
	binary.BigEndian.PutUint32(msg[8:], e.seq)
	binary.BigEndian.PutUint32(msg[12:], e.domainID)
	e.seq += uint32(len(records))
	return msg, nil
}

func appendTemplateSet(msg []byte, templateID uint16) []byte {
	fields := templateFields
	if templateID == tcpTemplateID {
		fields = tcpTemplateFields
	}
	start := len(msg)
	msg = binary.BigEndian.AppendUint16(msg, TemplateSetID)
	msg = binary.BigEndian.AppendUint16(msg, 0) // patched below
	msg = binary.BigEndian.AppendUint16(msg, templateID)
	msg = binary.BigEndian.AppendUint16(msg, uint16(len(fields)))
	for _, f := range fields {
		msg = binary.BigEndian.AppendUint16(msg, f.id)
		msg = binary.BigEndian.AppendUint16(msg, f.len)
	}
	binary.BigEndian.PutUint16(msg[start+2:], uint16(len(msg)-start))
	return msg
}

func appendRecord(msg []byte, r *FlowRecord, tcp bool) []byte {
	src := r.Key.Src.As4()
	dst := r.Key.Dst.As4()
	msg = append(msg, src[:]...)
	msg = append(msg, dst[:]...)
	msg = binary.BigEndian.AppendUint16(msg, r.Key.SrcPort)
	msg = binary.BigEndian.AppendUint16(msg, r.Key.DstPort)
	msg = binary.BigEndian.AppendUint64(msg, r.Octets)
	msg = binary.BigEndian.AppendUint64(msg, r.Packets)
	msg = binary.BigEndian.AppendUint32(msg, r.Start)
	msg = binary.BigEndian.AppendUint32(msg, r.End)
	if tcp {
		msg = binary.BigEndian.AppendUint32(msg, r.Seq)
		msg = binary.BigEndian.AppendUint32(msg, r.Ack)
		msg = binary.BigEndian.AppendUint16(msg, r.Flags)
		msg = binary.BigEndian.AppendUint64(msg, r.ObsMillis)
	}
	return msg
}

// Decoder parses IPFIX messages, learning templates as they arrive (as a
// collector does). Only the two flow templates above are decoded into
// records; other data sets are skipped.
//
// The decoder survives the two realities of UDP export:
//
//   - Template-after-data arrival: UDP reorders, so a data set can land
//     before the template that describes it. Such sets are buffered
//     (bounded by maxOrphanSets/maxOrphanBytes, oldest dropped first)
//     and decoded the moment the template arrives — the records come
//     back from that Decode call. OrphanBuffered/OrphanRecovered/
//     OrphanDropped count the traffic through this path.
//   - Malformed templates: a template set whose entries are truncated is
//     counted in Malformed and skipped; the rest of the message still
//     decodes. Only structural damage to the message envelope or a set
//     header (lengths that lie) fails the datagram.
type Decoder struct {
	// templates maps template ID to field layout (id, len pairs),
	// flattened [id, len, id, len...]. Insertion order is kept in
	// tmplOrder so the cache can evict FIFO at maxTemplates — a hostile
	// or churning exporter cannot grow the cache without bound.
	templates map[uint16][]uint16
	tmplOrder []uint16

	// orphans holds data sets waiting for their template, FIFO.
	orphans     []orphanSet
	orphanBytes int

	// Decoded counts records decoded; SkippedSets counts unknown sets.
	Decoded     uint64
	SkippedSets uint64
	// Malformed counts template sets skipped for structural damage.
	Malformed uint64
	// OrphanBuffered counts data sets buffered to wait for a template;
	// OrphanRecovered counts records decoded from such sets once the
	// template arrived; OrphanDropped counts sets evicted at the bound.
	OrphanBuffered  uint64
	OrphanRecovered uint64
	OrphanDropped   uint64
	// EvictedTemplates counts templates dropped at the cache cap.
	EvictedTemplates uint64
}

type orphanSet struct {
	templateID uint16
	data       []byte // copied: the datagram buffer is reused by callers
}

// NewDecoder creates an empty-template-cache decoder.
func NewDecoder() *Decoder {
	return &Decoder{templates: make(map[uint16][]uint16)}
}

// Decode parses one message and returns its flow records, including any
// previously buffered records whose template arrived in this message.
func (d *Decoder) Decode(msg []byte) ([]FlowRecord, error) {
	if len(msg) < messageHeaderLen {
		return nil, ErrShortMessage
	}
	if binary.BigEndian.Uint16(msg[0:]) != Version {
		return nil, ErrBadVersion
	}
	total := int(binary.BigEndian.Uint16(msg[2:]))
	if total > len(msg) || total < messageHeaderLen {
		return nil, ErrShortMessage
	}
	var out []FlowRecord
	body := msg[messageHeaderLen:total]
	for len(body) > 0 {
		if len(body) < setHeaderLen {
			return out, ErrShortMessage
		}
		setID := binary.BigEndian.Uint16(body[0:])
		setLen := int(binary.BigEndian.Uint16(body[2:]))
		if setLen < setHeaderLen || setLen > len(body) {
			return out, ErrShortMessage
		}
		content := body[setHeaderLen:setLen]
		switch {
		case setID == TemplateSetID:
			out = d.parseTemplates(content, out)
		case setID >= 256:
			layout, ok := d.templates[setID]
			if !ok {
				d.bufferOrphan(setID, content)
				break
			}
			out = d.parseData(layout, content, out)
		default:
			d.SkippedSets++
		}
		body = body[setLen:]
	}
	return out, nil
}

// parseTemplates learns every well-formed template in the set, skipping
// the rest of the set on the first truncated entry (counted, not fatal).
// Newly learned templates immediately drain any matching orphaned data
// sets into out.
func (d *Decoder) parseTemplates(b []byte, out []FlowRecord) []FlowRecord {
	for len(b) >= 4 {
		id := binary.BigEndian.Uint16(b[0:])
		count := int(binary.BigEndian.Uint16(b[2:]))
		b = b[4:]
		if len(b) < count*4 {
			d.Malformed++
			return out
		}
		layout := make([]uint16, 0, count*2)
		for i := 0; i < count; i++ {
			layout = append(layout,
				binary.BigEndian.Uint16(b[i*4:]), binary.BigEndian.Uint16(b[i*4+2:]))
		}
		d.storeTemplate(id, layout)
		out = d.drainOrphans(id, layout, out)
		b = b[count*4:]
	}
	return out
}

// storeTemplate caches the layout, evicting the oldest template when the
// cache is full (and any orphans still waiting on the evicted id).
func (d *Decoder) storeTemplate(id uint16, layout []uint16) {
	if _, exists := d.templates[id]; !exists {
		for len(d.tmplOrder) >= maxTemplates {
			old := d.tmplOrder[0]
			d.tmplOrder = d.tmplOrder[1:]
			delete(d.templates, old)
			d.EvictedTemplates++
		}
		d.tmplOrder = append(d.tmplOrder, id)
	}
	d.templates[id] = layout
}

// bufferOrphan copies a template-less data set into the bounded wait
// queue, evicting the oldest buffered set when full.
func (d *Decoder) bufferOrphan(templateID uint16, content []byte) {
	if len(content) == 0 {
		return
	}
	for len(d.orphans) >= maxOrphanSets || d.orphanBytes+len(content) > maxOrphanBytes {
		if len(d.orphans) == 0 {
			// A single set larger than the byte budget: drop it outright.
			d.OrphanDropped++
			return
		}
		d.orphanBytes -= len(d.orphans[0].data)
		d.orphans = d.orphans[1:]
		d.OrphanDropped++
	}
	d.orphans = append(d.orphans, orphanSet{templateID: templateID, data: append([]byte(nil), content...)})
	d.orphanBytes += len(content)
	d.OrphanBuffered++
}

// drainOrphans decodes every buffered set that was waiting for this
// template, in arrival order.
func (d *Decoder) drainOrphans(id uint16, layout []uint16, out []FlowRecord) []FlowRecord {
	if len(d.orphans) == 0 {
		return out
	}
	kept := d.orphans[:0]
	for _, o := range d.orphans {
		if o.templateID != id || len(out) > orphanRecordCap {
			kept = append(kept, o)
			continue
		}
		before := len(out)
		out = d.parseData(layout, o.data, out)
		d.OrphanRecovered += uint64(len(out) - before)
		d.orphanBytes -= len(o.data)
	}
	d.orphans = kept
	return out
}

func (d *Decoder) parseData(layout []uint16, b []byte, out []FlowRecord) []FlowRecord {
	recLen := 0
	for i := 1; i < len(layout); i += 2 {
		recLen += int(layout[i])
	}
	if recLen == 0 {
		d.SkippedSets++
		return out
	}
	for len(b) >= recLen {
		rec := b[:recLen]
		b = b[recLen:]
		var r FlowRecord
		known := 0
		off := 0
		for i := 0; i < len(layout); i += 2 {
			id, flen := layout[i], int(layout[i+1])
			field := rec[off : off+flen]
			off += flen
			switch {
			case id == ieSourceIPv4 && flen == 4:
				r.Key.Src = netip.AddrFrom4([4]byte(field))
				known++
			case id == ieDestinationIPv4 && flen == 4:
				r.Key.Dst = netip.AddrFrom4([4]byte(field))
				known++
			case id == ieSourcePort && flen == 2:
				r.Key.SrcPort = binary.BigEndian.Uint16(field)
				known++
			case id == ieDestinationPort && flen == 2:
				r.Key.DstPort = binary.BigEndian.Uint16(field)
				known++
			case id == ieOctetDeltaCount && flen == 8:
				r.Octets = binary.BigEndian.Uint64(field)
				known++
			case id == iePacketDeltaCount && flen == 8:
				r.Packets = binary.BigEndian.Uint64(field)
				known++
			case id == ieFlowStartSeconds && flen == 4:
				r.Start = binary.BigEndian.Uint32(field)
				known++
			case id == ieFlowEndSeconds && flen == 4:
				r.End = binary.BigEndian.Uint32(field)
				known++
			case id == ieTCPSequenceNumber && flen == 4:
				r.Seq = binary.BigEndian.Uint32(field)
				r.HasTCP = true
				known++
			case id == ieTCPAckNumber && flen == 4:
				r.Ack = binary.BigEndian.Uint32(field)
				r.HasTCP = true
				known++
			case id == ieTCPControlBits && flen == 2:
				r.Flags = binary.BigEndian.Uint16(field)
				r.HasTCP = true
				known++
			case id == ieObsTimeMillis && flen == 8:
				r.ObsMillis = binary.BigEndian.Uint64(field)
				known++
			}
		}
		if known == len(layout)/2 {
			d.Decoded++
			out = append(out, r)
		} else {
			d.SkippedSets++
		}
	}
	return out
}
