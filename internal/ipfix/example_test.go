package ipfix_test

import (
	"fmt"
	"net/netip"

	"repro/internal/ipfix"
)

// Encode flow records into an RFC 7011 message and decode them back, as a
// router exporting to a collector would.
func Example() {
	records := []ipfix.FlowRecord{{
		Key: ipfix.FlowKey{
			Src:     netip.MustParseAddr("10.0.0.1"),
			Dst:     netip.MustParseAddr("100.1.2.3"),
			SrcPort: 443, DstPort: 51000,
		},
		Octets: 4500, Packets: 3, Start: 120, End: 125,
	}}

	enc := ipfix.NewEncoder(1)
	msg, _ := enc.Encode(1000, records)

	dec := ipfix.NewDecoder()
	got, _ := dec.Decode(msg)
	fmt.Println(got[0].Key)
	fmt.Println("slice:", got[0].DstSubnet24(), "minute", got[0].Minute())
	// Output:
	// 10.0.0.1:443->100.1.2.3:51000
	// slice: 100.1.2.0/24 minute 2
}

// The Section 2.1 analysis: how many flows share each /24-minute slice.
func ExampleAnalyzeSharing() {
	mk := func(dst string, port uint16) ipfix.FlowRecord {
		return ipfix.FlowRecord{Key: ipfix.FlowKey{
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr(dst),
			SrcPort: 443, DstPort: port}, Start: 60}
	}
	records := []ipfix.FlowRecord{
		mk("100.1.2.3", 1), mk("100.1.2.4", 2), mk("100.1.2.5", 3), // same /24
		mk("100.9.9.9", 4), // alone
	}
	a := ipfix.AnalyzeSharing(records)
	fmt.Printf("P(share with >= 2 others) = %.2f\n", a.FractionSharingAtLeast(2))
	// Output:
	// P(share with >= 2 others) = 0.75
}
