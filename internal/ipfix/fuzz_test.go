package ipfix

import (
	"net/netip"
	"testing"
)

// FuzzDecodeIPFIX throws arbitrary datagrams at a long-lived decoder (as
// a collector holds one per transport session). Whatever arrives, the
// decoder must not panic, must keep its orphan buffer inside its bounds,
// and must still decode a well-formed message afterward — hostile input
// can poison at most its own datagram, never the session.
func FuzzDecodeIPFIX(f *testing.F) {
	flow := []FlowRecord{{
		Key: FlowKey{
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("100.1.2.3"),
			SrcPort: 443, DstPort: 50000,
		},
		Octets: 14600, Packets: 10, Start: 60, End: 70,
	}}
	tcp := []FlowRecord{{
		Key: FlowKey{
			Src: netip.MustParseAddr("100.1.2.3"), Dst: netip.MustParseAddr("10.0.0.1"),
			SrcPort: 50000, DstPort: 443,
		},
		Octets: 0, Packets: 1, Start: 60, End: 60,
		Seq: 0, Ack: 15600, Flags: FlagACK, ObsMillis: 60_040, HasTCP: true,
	}}

	// Seed the corpus with every interesting message shape: template+data
	// for both templates, data-only (the orphan path), template-only, a
	// malformed template set, and raw garbage.
	enc := NewEncoder(7)
	withFlowTmpl, _ := enc.Encode(0, flow)
	flowDataOnly, _ := enc.Encode(1, flow)
	withTCPTmpl, _ := enc.EncodeTCP(0, tcp)
	tcpDataOnly, _ := enc.EncodeTCP(1, tcp)
	f.Add(withFlowTmpl)
	f.Add(flowDataOnly)
	f.Add(withTCPTmpl)
	f.Add(tcpDataOnly)
	f.Add(withFlowTmpl[:messageHeaderLen]) // bare envelope
	f.Add([]byte{0, 10, 0, 24, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
		0, 2, 0, 8, 1, 5, 0, 9}) // template claiming 9 fields with none
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	dec := NewDecoder()
	probeEnc := NewEncoder(9)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = dec.Decode(data)

		if len(dec.orphans) > maxOrphanSets || dec.orphanBytes > maxOrphanBytes {
			t.Fatalf("orphan buffer out of bounds: %d sets, %d bytes",
				len(dec.orphans), dec.orphanBytes)
		}
		if len(dec.templates) > maxTemplates {
			t.Fatalf("template cache grew to %d", len(dec.templates))
		}

		// The session must still work: a fresh template+data message
		// decodes (possibly alongside drained orphans — the probe record
		// must be among the results).
		probeEnc.Reset()
		probe, err := probeEnc.Encode(2, flow)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(probe)
		if err != nil {
			t.Fatalf("decoder poisoned by %x: %v", data, err)
		}
		found := false
		for _, r := range got {
			if r == flow[0] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("well-formed probe lost after %x: got %d records", data, len(got))
		}
	})
}
