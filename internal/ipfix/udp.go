package ipfix

import (
	"errors"
	"net"
	"sync"
)

// UDP transport: RFC 7011's most common deployment has routers exporting
// IPFIX messages as UDP datagrams to a collector. Exporter and Collector
// below run that path over real sockets, so the Section 2.1 pipeline can
// consume a live feed instead of a file.

// Exporter sends IPFIX messages as UDP datagrams.
type Exporter struct {
	conn net.Conn
	enc  *Encoder

	// Sent counts exported messages.
	Sent uint64
}

// NewExporter dials the collector address (e.g. "127.0.0.1:4739", the
// IANA IPFIX port) for the given observation domain.
func NewExporter(addr string, domainID uint32) (*Exporter, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &Exporter{conn: conn, enc: NewEncoder(domainID)}, nil
}

// Export encodes and sends one message. Records must fit one datagram
// (about 400 records at this template's record size); larger batches are
// split automatically.
func (e *Exporter) Export(exportTime uint32, records []FlowRecord) error {
	const perMsg = 400
	for len(records) > 0 {
		n := len(records)
		if n > perMsg {
			n = perMsg
		}
		msg, err := e.enc.Encode(exportTime, records[:n])
		if err != nil {
			return err
		}
		if _, err := e.conn.Write(msg); err != nil {
			return err
		}
		e.Sent++
		records = records[n:]
	}
	return nil
}

// Close releases the socket.
func (e *Exporter) Close() error { return e.conn.Close() }

// Collector receives IPFIX datagrams and accumulates decoded flow
// records. Because UDP may reorder, each remote exporter gets its own
// decoder (templates are per transport session, RFC 7011 §8).
type Collector struct {
	pc net.PacketConn

	mu       sync.Mutex
	decoders map[string]*Decoder
	records  []FlowRecord
	errs     uint64
	closed   bool
	done     chan struct{}
}

// NewCollector listens for datagrams on addr ("127.0.0.1:0" for an
// ephemeral port) and starts receiving in the background.
func NewCollector(addr string) (*Collector, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	c := &Collector{pc: pc, decoders: make(map[string]*Decoder), done: make(chan struct{})}
	go c.loop()
	return c, nil
}

// Addr returns the bound address to point exporters at.
func (c *Collector) Addr() string { return c.pc.LocalAddr().String() }

func (c *Collector) loop() {
	defer close(c.done)
	buf := make([]byte, 65536)
	for {
		n, from, err := c.pc.ReadFrom(buf)
		if err != nil {
			return // socket closed
		}
		c.ingest(from.String(), buf[:n])
	}
}

func (c *Collector) ingest(from string, msg []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dec, ok := c.decoders[from]
	if !ok {
		dec = NewDecoder()
		c.decoders[from] = dec
	}
	recs, err := dec.Decode(msg)
	if err != nil {
		c.errs++
		return
	}
	c.records = append(c.records, recs...)
}

// Records returns a copy of everything collected so far.
func (c *Collector) Records() []FlowRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]FlowRecord(nil), c.records...)
}

// Count returns the number of collected records.
func (c *Collector) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// Errors returns the number of undecodable datagrams.
func (c *Collector) Errors() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errs
}

// Close stops receiving and waits for the loop to exit.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("ipfix: collector already closed")
	}
	c.closed = true
	c.mu.Unlock()
	err := c.pc.Close()
	<-c.done
	return err
}
