package ipfix

import (
	"errors"
	"net"
	"sync"
)

// UDP transport: RFC 7011's most common deployment has routers exporting
// IPFIX messages as UDP datagrams to a collector. Exporter and Collector
// below run that path over real sockets, so the Section 2.1 pipeline can
// consume a live feed instead of a file.

// Exporter sends IPFIX messages as UDP datagrams.
type Exporter struct {
	conn net.Conn
	enc  *Encoder

	// Sent counts exported messages.
	Sent uint64
}

// NewExporter dials the collector address (e.g. "127.0.0.1:4739", the
// IANA IPFIX port) for the given observation domain.
func NewExporter(addr string, domainID uint32) (*Exporter, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &Exporter{conn: conn, enc: NewEncoder(domainID)}, nil
}

// Export encodes and sends one message. Records must fit one datagram
// (about 400 records at this template's record size); larger batches are
// split automatically.
func (e *Exporter) Export(exportTime uint32, records []FlowRecord) error {
	const perMsg = 400
	for len(records) > 0 {
		n := len(records)
		if n > perMsg {
			n = perMsg
		}
		msg, err := e.enc.Encode(exportTime, records[:n])
		if err != nil {
			return err
		}
		if _, err := e.conn.Write(msg); err != nil {
			return err
		}
		e.Sent++
		records = records[n:]
	}
	return nil
}

// WriteMessage sends one pre-encoded IPFIX message as a datagram —
// the path for load generators that encode batches up front.
func (e *Exporter) WriteMessage(msg []byte) error {
	if _, err := e.conn.Write(msg); err != nil {
		return err
	}
	e.Sent++
	return nil
}

// Close releases the socket.
func (e *Exporter) Close() error { return e.conn.Close() }

// maxSessions caps the number of concurrent transport sessions (remote
// exporter addresses) a collector keeps decoder state for. Beyond it the
// stalest session is evicted — a spoofed-source flood cannot grow the
// session map without bound.
const maxSessions = 256

// CollectorStats aggregates a collector's counters across all transport
// sessions, including the per-decoder hardening counters.
type CollectorStats struct {
	// Datagrams counts datagrams received; Records counts flow records
	// decoded (including recovered orphans); Errors counts datagrams
	// whose envelope was undecodable.
	Datagrams uint64 `json:"datagrams"`
	Records   uint64 `json:"records"`
	Errors    uint64 `json:"errors"`
	// Orphan* and Malformed sum the decoder hardening counters: data
	// sets buffered while awaiting their template, records recovered
	// when it arrived, sets dropped at the buffer bound, and template
	// sets skipped as structurally damaged.
	OrphanBuffered  uint64 `json:"orphan_buffered"`
	OrphanRecovered uint64 `json:"orphan_recovered"`
	OrphanDropped   uint64 `json:"orphan_dropped"`
	Malformed       uint64 `json:"malformed"`
	// Sessions is the live transport-session count; EvictedSessions
	// counts sessions dropped at the maxSessions cap.
	Sessions        int    `json:"sessions"`
	EvictedSessions uint64 `json:"evicted_sessions"`
}

// Collector receives IPFIX datagrams and accumulates decoded flow
// records. Because UDP may reorder, each remote exporter gets its own
// decoder (templates are per transport session, RFC 7011 §8).
//
// In raw mode (NewRawCollector) the collector does not decode: each
// datagram is copied and handed to the raw handler, so a pipeline can
// move parsing off the socket goroutine.
type Collector struct {
	pc  net.PacketConn
	raw func(session string, datagram []byte)

	mu        sync.Mutex
	decoders  map[string]*session
	records   []FlowRecord
	datagrams uint64
	decoded   uint64
	errs      uint64
	evicted   uint64
	closed    bool
	done      chan struct{}
}

// session pairs a per-exporter decoder with a logical last-seen stamp
// (the datagram counter) used for staleness eviction.
type session struct {
	dec      *Decoder
	lastSeen uint64
}

// NewCollector listens for datagrams on addr ("127.0.0.1:0" for an
// ephemeral port) and starts receiving in the background.
func NewCollector(addr string) (*Collector, error) {
	return newCollector(addr, nil)
}

// NewRawCollector listens like NewCollector but skips decoding: every
// datagram is copied and passed to h with its transport-session key.
// The handler runs on the receive goroutine and must not block long, or
// the kernel socket buffer will overflow and drop (which is the
// intended overload behavior — drops happen at the edge, counted by the
// kernel, instead of unbounded queueing here).
func NewRawCollector(addr string, h func(session string, datagram []byte)) (*Collector, error) {
	if h == nil {
		return nil, errors.New("ipfix: raw collector needs a handler")
	}
	return newCollector(addr, h)
}

func newCollector(addr string, raw func(string, []byte)) (*Collector, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	// Exporters send in bursts (a whole batch of messages back to back);
	// the default socket buffer sheds most of such a burst. Ask for a
	// few MB — best effort, the kernel clamps to rmem_max.
	if uc, ok := pc.(*net.UDPConn); ok {
		_ = uc.SetReadBuffer(4 << 20)
	}
	c := &Collector{pc: pc, raw: raw, decoders: make(map[string]*session), done: make(chan struct{})}
	go c.loop()
	return c, nil
}

// Addr returns the bound address to point exporters at.
func (c *Collector) Addr() string { return c.pc.LocalAddr().String() }

func (c *Collector) loop() {
	defer close(c.done)
	buf := make([]byte, 65536)
	for {
		n, from, err := c.pc.ReadFrom(buf)
		if err != nil {
			return // socket closed
		}
		if c.raw != nil {
			c.mu.Lock()
			c.datagrams++
			c.mu.Unlock()
			c.raw(from.String(), append([]byte(nil), buf[:n]...))
			continue
		}
		c.ingest(from.String(), buf[:n])
	}
}

func (c *Collector) ingest(from string, msg []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.datagrams++
	s, ok := c.decoders[from]
	if !ok {
		c.evictStalest()
		s = &session{dec: NewDecoder()}
		c.decoders[from] = s
	}
	s.lastSeen = c.datagrams
	recs, err := s.dec.Decode(msg)
	// Partial decodes still yield records: keep what survived, then count
	// the envelope error.
	c.decoded += uint64(len(recs))
	c.records = append(c.records, recs...)
	if err != nil {
		c.errs++
	}
}

// evictStalest makes room for a new session by dropping the one whose
// last datagram is oldest. Caller holds c.mu.
func (c *Collector) evictStalest() {
	for len(c.decoders) >= maxSessions {
		var stalest string
		var oldest uint64 = ^uint64(0)
		for k, s := range c.decoders {
			if s.lastSeen < oldest {
				oldest = s.lastSeen
				stalest = k
			}
		}
		delete(c.decoders, stalest)
		c.evicted++
	}
}

// Records returns a copy of everything collected so far.
func (c *Collector) Records() []FlowRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]FlowRecord(nil), c.records...)
}

// Count returns the number of collected records.
func (c *Collector) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// Errors returns the number of undecodable datagrams.
func (c *Collector) Errors() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errs
}

// Stats aggregates counters across all transport sessions.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CollectorStats{
		Datagrams:       c.datagrams,
		Records:         c.decoded,
		Errors:          c.errs,
		Sessions:        len(c.decoders),
		EvictedSessions: c.evicted,
	}
	for _, s := range c.decoders {
		st.OrphanBuffered += s.dec.OrphanBuffered
		st.OrphanRecovered += s.dec.OrphanRecovered
		st.OrphanDropped += s.dec.OrphanDropped
		st.Malformed += s.dec.Malformed
	}
	return st
}

// Close stops receiving and waits for the loop to exit.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("ipfix: collector already closed")
	}
	c.closed = true
	c.mu.Unlock()
	err := c.pc.Close()
	<-c.done
	return err
}
