package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/phi"
	"repro/internal/sim"
)

// fakeConn is a controllable shard connection for routing tests.
type fakeConn struct {
	mu      sync.Mutex
	fail    bool
	hang    time.Duration // >0 sleeps before answering
	ctx     phi.Context
	lookups int
	reports int
}

var errInjected = errors.New("injected failure")

func (f *fakeConn) do() error {
	f.mu.Lock()
	fail, hang := f.fail, f.hang
	f.mu.Unlock()
	if hang > 0 {
		time.Sleep(hang)
	}
	if fail {
		return errInjected
	}
	return nil
}

func (f *fakeConn) Lookup(phi.PathKey) (phi.Context, error) {
	f.mu.Lock()
	f.lookups++
	ctx := f.ctx
	f.mu.Unlock()
	if err := f.do(); err != nil {
		return phi.Context{}, err
	}
	return ctx, nil
}

func (f *fakeConn) report() error {
	f.mu.Lock()
	f.reports++
	f.mu.Unlock()
	return f.do()
}

func (f *fakeConn) ReportStart(phi.PathKey) error                { return f.report() }
func (f *fakeConn) ReportEnd(phi.PathKey, phi.Report) error      { return f.report() }
func (f *fakeConn) ReportProgress(phi.PathKey, phi.Report) error { return f.report() }

func (f *fakeConn) setFail(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

func (f *fakeConn) counts() (lookups, reports int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lookups, f.reports
}

// testFrontend builds a frontend over fake conns and returns both.
func testFrontend(t *testing.T, shards int, cfg FrontendConfig) (*Frontend, []*fakeConn) {
	t.Helper()
	fakes := make([]*fakeConn, shards)
	conns := make([]Conn, shards)
	for i := range fakes {
		fakes[i] = &fakeConn{ctx: phi.Context{U: 0.1 * float64(i+1), N: i}}
		conns[i] = fakes[i]
	}
	return NewFrontend(NewRing(shards, 0), conns, cfg), fakes
}

func TestFrontendRoutesToOwner(t *testing.T) {
	f, fakes := testFrontend(t, 4, FrontendConfig{})
	path := phi.PathKey("some-path")
	owner := f.Ring().Owner(path)
	ctx, err := f.Lookup(path)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if want := fakes[owner].ctx; ctx != want {
		t.Errorf("context %v, want owner %d's %v", ctx, owner, want)
	}
	for i, fc := range fakes {
		l, _ := fc.counts()
		if i == owner && l != 1 {
			t.Errorf("owner shard saw %d lookups, want 1", l)
		}
		if i != owner && l != 0 {
			t.Errorf("non-owner shard %d saw %d lookups, want 0", i, l)
		}
	}
}

func TestFrontendFailoverToFallback(t *testing.T) {
	f, fakes := testFrontend(t, 4, FrontendConfig{})
	path := phi.PathKey("some-path")
	owner, fb := f.Ring().OwnerAndFallback(path)
	fakes[owner].setFail(true)
	ctx, err := f.Lookup(path)
	if err != nil {
		t.Fatalf("Lookup should fail over, got %v", err)
	}
	if want := fakes[fb].ctx; ctx != want {
		t.Errorf("context %v, want fallback %d's %v", ctx, fb, want)
	}
	if st := f.Stats(); st.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1", st.Failovers)
	}
}

func TestFrontendDegradesWhenBothDown(t *testing.T) {
	f, fakes := testFrontend(t, 4, FrontendConfig{})
	path := phi.PathKey("some-path")
	owner, fb := f.Ring().OwnerAndFallback(path)
	fakes[owner].setFail(true)
	fakes[fb].setFail(true)
	if _, err := f.Lookup(path); !errors.Is(err, ErrAllReplicasDown) {
		t.Fatalf("err = %v, want ErrAllReplicasDown", err)
	}
	if st := f.Stats(); st.Degraded != 1 {
		t.Errorf("Degraded = %d, want 1", st.Degraded)
	}

	// The phi.Client contract on top of that error: defaults, no panic.
	client := &phi.Client{Source: f, Policy: phi.DefaultPolicy(), Path: path}
	params := client.ParamsForNewConnection()
	if params != phi.DefaultPolicy().Default {
		t.Errorf("degraded client params = %v, want policy default", params)
	}
	if client.Fallbacks != 1 {
		t.Errorf("client.Fallbacks = %d, want 1", client.Fallbacks)
	}
}

func TestFrontendBreakerSkipsAndRecovers(t *testing.T) {
	f, fakes := testFrontend(t, 4, FrontendConfig{DownAfter: 3, Cooldown: time.Minute})
	now := time.Unix(1000, 0)
	f.now = func() time.Time { return now }

	path := phi.PathKey("some-path")
	owner, _ := f.Ring().OwnerAndFallback(path)
	fakes[owner].setFail(true)

	for i := 0; i < 5; i++ {
		f.Lookup(path) // served by fallback; owner fails accrue
	}
	if !f.ShardDown(owner) {
		t.Fatal("owner should be marked down after repeated failures")
	}
	calls, _ := fakes[owner].counts()
	if calls != 3 {
		t.Errorf("owner called %d times, want exactly DownAfter=3 before the breaker opens", calls)
	}

	// Heal the shard; before the cooldown expires it must stay skipped.
	fakes[owner].setFail(false)
	f.Lookup(path)
	if got, _ := fakes[owner].counts(); got != 3 {
		t.Errorf("owner probed during cooldown (%d calls)", got)
	}

	// After the cooldown a probe goes through and the breaker closes.
	now = now.Add(2 * time.Minute)
	if _, err := f.Lookup(path); err != nil {
		t.Fatalf("post-cooldown lookup: %v", err)
	}
	if f.ShardDown(owner) {
		t.Error("breaker should close after a successful probe")
	}
	if got, _ := fakes[owner].counts(); got != 4 {
		t.Errorf("owner calls = %d, want 4 (one probe)", got)
	}
}

func TestFrontendReplicatesReports(t *testing.T) {
	f, fakes := testFrontend(t, 4, FrontendConfig{ReplicateReports: true})
	path := phi.PathKey("some-path")
	owner, fb := f.Ring().OwnerAndFallback(path)
	if err := f.ReportStart(path); err != nil {
		t.Fatalf("ReportStart: %v", err)
	}
	if err := f.ReportEnd(path, phi.Report{Bytes: 1}); err != nil {
		t.Fatalf("ReportEnd: %v", err)
	}
	if _, r := fakes[owner].counts(); r != 2 {
		t.Errorf("owner reports = %d, want 2", r)
	}
	if _, r := fakes[fb].counts(); r != 2 {
		t.Errorf("fallback reports = %d, want 2 (mirrored)", r)
	}
	if st := f.Stats(); st.Mirrored != 2 {
		t.Errorf("Mirrored = %d, want 2", st.Mirrored)
	}
}

func TestFrontendTimeout(t *testing.T) {
	f, fakes := testFrontend(t, 2, FrontendConfig{Timeout: 10 * time.Millisecond})
	path := phi.PathKey("p")
	owner, fb := f.Ring().OwnerAndFallback(path)
	fakes[owner].mu.Lock()
	fakes[owner].hang = 200 * time.Millisecond
	fakes[owner].mu.Unlock()

	start := time.Now()
	ctx, err := f.Lookup(path)
	if err != nil {
		t.Fatalf("Lookup should time out on the owner and fail over: %v", err)
	}
	if want := fakes[fb].ctx; ctx != want {
		t.Errorf("context %v, want fallback's %v", ctx, want)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("lookup took %v; the timeout did not cut the hung shard off", elapsed)
	}
}

func TestFrontendReportFailover(t *testing.T) {
	f, fakes := testFrontend(t, 4, FrontendConfig{})
	path := phi.PathKey("some-path")
	owner, fb := f.Ring().OwnerAndFallback(path)
	fakes[owner].setFail(true)
	if err := f.ReportEnd(path, phi.Report{Bytes: 9, Duration: sim.Second}); err != nil {
		t.Fatalf("ReportEnd should fail over: %v", err)
	}
	if _, r := fakes[fb].counts(); r != 1 {
		t.Errorf("fallback reports = %d, want 1", r)
	}
	fakes[fb].setFail(true)
	if err := f.ReportEnd(path, phi.Report{}); !errors.Is(err, ErrAllReplicasDown) {
		t.Errorf("err = %v, want ErrAllReplicasDown", err)
	}
}
