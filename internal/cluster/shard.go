package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/phi"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrShardDown is returned by every operation against a crashed shard.
var ErrShardDown = errors.New("cluster: shard down")

// Conn is what the frontend needs from one shard: the full station
// interface plus mid-connection progress reports. *Shard implements it
// in-process; a wire-backed client implementing the same methods can
// stand in for a remote shard process.
type Conn interface {
	Lookup(path phi.PathKey) (phi.Context, error)
	ReportStart(path phi.PathKey) error
	ReportEnd(path phi.PathKey, r phi.Report) error
	ReportProgress(path phi.PathKey, r phi.Report) error
}

// Shard is one partition of the context-server keyspace: a phi.Server of
// its own (and therefore a lock of its own — hot paths on different
// shards never contend), plus crash/restart/restore controls used by the
// failover machinery and by fault-injection tests.
type Shard struct {
	// ID is the shard's index in the ring, fixed at construction.
	ID int

	clock func() sim.Time
	cfg   phi.ServerConfig

	mu   sync.Mutex
	srv  *phi.Server // replaced wholesale on crash/restart
	down bool

	// srvMetrics is re-applied to every replacement phi.Server, so the
	// registry-level counters survive crash/restore cycles even though
	// the server instance (and its internal counters) does not.
	srvMetrics *phi.ServerMetrics
	// snapMetrics times the snapshot cycle (shared across shards).
	snapMetrics *SnapshotMetrics
	// tracer is likewise re-applied across crash/restore replacements.
	tracer *trace.Tracer
	// quality is likewise re-applied, so context-quality measurement
	// survives crash/restore cycles (the tracker is process-wide and
	// outlives any single server instance).
	quality *quality.Tracker

	// lastSnap is the wall-clock time (unix nanos) of the last successful
	// SaveSnapshot, 0 if none yet. An atomic so health endpoints can read
	// staleness without contending with the snapshotter or the data path.
	lastSnap atomic.Int64
}

// NewShard creates shard id with its own backing phi.Server.
func NewShard(id int, clock func() sim.Time, cfg phi.ServerConfig) *Shard {
	return &Shard{ID: id, clock: clock, cfg: cfg, srv: phi.NewServer(clock, cfg)}
}

// server returns the live backend, or nil if the shard is down.
func (s *Shard) server() *phi.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return nil
	}
	return s.srv
}

// Lookup implements Conn.
func (s *Shard) Lookup(path phi.PathKey) (phi.Context, error) {
	srv := s.server()
	if srv == nil {
		return phi.Context{}, ErrShardDown
	}
	return srv.Lookup(path)
}

// ReportStart implements Conn.
func (s *Shard) ReportStart(path phi.PathKey) error {
	srv := s.server()
	if srv == nil {
		return ErrShardDown
	}
	return srv.ReportStart(path)
}

// ReportEnd implements Conn.
func (s *Shard) ReportEnd(path phi.PathKey, r phi.Report) error {
	srv := s.server()
	if srv == nil {
		return ErrShardDown
	}
	return srv.ReportEnd(path, r)
}

// ReportProgress implements Conn.
func (s *Shard) ReportProgress(path phi.PathKey, r phi.Report) error {
	srv := s.server()
	if srv == nil {
		return ErrShardDown
	}
	return srv.ReportProgress(path, r)
}

// RegisterPath forwards to the backing server (no-op while down).
func (s *Shard) RegisterPath(path phi.PathKey, capacityBps int64) {
	if srv := s.server(); srv != nil {
		srv.RegisterPath(path, capacityBps)
	}
}

// SetServerMetrics attaches the context-server metric set to the
// backing server, now and across every future crash/restore replacement.
// Call before the shard starts serving.
func (s *Shard) SetServerMetrics(m *phi.ServerMetrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.srvMetrics = m
	s.srv.SetMetrics(m)
}

// SetSnapshotMetrics attaches snapshot-cycle telemetry. Call before the
// snapshotter starts.
func (s *Shard) SetSnapshotMetrics(m *SnapshotMetrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapMetrics = m
}

// SetTracer attaches the span tracer to the backing server, now and
// across every future crash/restore replacement. Call before the shard
// starts serving.
func (s *Shard) SetTracer(t *trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
	s.srv.SetTracer(t)
}

// SetQuality attaches (or detaches, with nil) the context-quality
// tracker to the backing server, now and across every future
// crash/restore replacement. Call before the shard starts serving.
func (s *Shard) SetQuality(q *quality.Tracker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quality = q
	s.srv.SetQuality(q)
}

// Freshness enumerates the shard's per-path evidence ages for the
// quality tracker's stalest-paths list (nil while down).
func (s *Shard) Freshness() []quality.PathFreshness {
	srv := s.server()
	if srv == nil {
		return nil
	}
	return srv.Freshness()
}

// LookupSpan implements TracedConn.
func (s *Shard) LookupSpan(sc trace.SpanContext, path phi.PathKey) (phi.Context, error) {
	srv := s.server()
	if srv == nil {
		return phi.Context{}, ErrShardDown
	}
	return srv.LookupSpan(sc, path)
}

// ReportStartSpan implements TracedConn.
func (s *Shard) ReportStartSpan(sc trace.SpanContext, path phi.PathKey) error {
	srv := s.server()
	if srv == nil {
		return ErrShardDown
	}
	return srv.ReportStartSpan(sc, path)
}

// ReportEndSpan implements TracedConn.
func (s *Shard) ReportEndSpan(sc trace.SpanContext, path phi.PathKey, r phi.Report) error {
	srv := s.server()
	if srv == nil {
		return ErrShardDown
	}
	return srv.ReportEndSpan(sc, path, r)
}

// ReportProgressSpan implements TracedConn.
func (s *Shard) ReportProgressSpan(sc trace.SpanContext, path phi.PathKey, r phi.Report) error {
	srv := s.server()
	if srv == nil {
		return ErrShardDown
	}
	return srv.ReportProgressSpan(sc, path, r)
}

// Crash simulates process loss: the shard goes down and all in-memory
// path state is discarded. Only a Restart (empty) or RestoreSnapshot
// (rehydrated) brings it back.
func (s *Shard) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.down = true
	s.srv = phi.NewServer(s.clock, s.cfg)
	s.srv.SetMetrics(s.srvMetrics)
	s.srv.SetTracer(s.tracer)
	s.srv.SetQuality(s.quality)
}

// Down reports whether the shard is crashed.
func (s *Shard) Down() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

// Restart brings a crashed shard back with empty state.
func (s *Shard) Restart() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.down = false
}

// Export snapshots the shard's path state (see phi.Server.ExportState).
// A down shard exports nothing.
func (s *Shard) Export() []phi.PathSnapshot {
	srv := s.server()
	if srv == nil {
		return nil
	}
	return srv.ExportState()
}

// LastSnapshotAt returns the wall-clock time of the last successful
// SaveSnapshot; ok is false if no snapshot has succeeded yet. Exposed so
// /debug/health can surface snapshot staleness before a crash proves it.
func (s *Shard) LastSnapshotAt() (t time.Time, ok bool) {
	ns := s.lastSnap.Load()
	if ns == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// Stats returns the backing server's lookup/report counters (zero while
// down — the counters died with the process).
func (s *Shard) Stats() (lookups, reports uint64) {
	srv := s.server()
	if srv == nil {
		return 0, 0
	}
	return srv.Stats()
}

// PathCount returns the number of paths with state on this shard.
func (s *Shard) PathCount() int {
	srv := s.server()
	if srv == nil {
		return 0
	}
	return srv.PathCount()
}
