package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/phi"
)

// Ring is a consistent-hash ring that shards path keys across N shards.
// Each shard contributes VNodes virtual points so load spreads evenly and
// resizing the cluster moves only ~1/N of the keyspace. The ring is
// immutable after construction and therefore safe for concurrent use.
type Ring struct {
	points []ringPoint // sorted by hash, clockwise
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// DefaultVNodes is the virtual-node count per shard used when NewRing is
// given zero: enough that the max/min keyspace share stays within a few
// percent for small clusters.
const DefaultVNodes = 128

// NewRing builds a ring over `shards` shards with `vnodes` virtual points
// each (0 = DefaultVNodes). It panics on shards < 1; a cluster without
// shards has no meaning.
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		panic("cluster: NewRing needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := hashKey(fmt.Sprintf("shard-%d/vnode-%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 finalizer. Raw FNV-1a of strings that differ
// only in a trailing counter ("path-1", "path-2", …) differs only in the
// low bits, which clusters ring points and keys into contiguous runs and
// ruins the shard balance; the finalizer avalanches every input bit
// across the whole word.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the shard owning the path: the first virtual point at or
// clockwise of the key's hash.
func (r *Ring) Owner(path phi.PathKey) int {
	owner, _ := r.OwnerAndFallback(path)
	return owner
}

// OwnerAndFallback returns the owning shard and the failover replica: the
// next distinct shard clockwise from the owner, which is also where the
// frontend mirrors reports. Fallback is -1 in a single-shard ring.
func (r *Ring) OwnerAndFallback(path phi.PathKey) (owner, fallback int) {
	h := hashKey(string(path))
	n := len(r.points)
	i := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	if i == n {
		i = 0
	}
	owner = r.points[i].shard
	if r.shards == 1 {
		return owner, -1
	}
	for j := 1; j < n; j++ {
		if s := r.points[(i+j)%n].shard; s != owner {
			return owner, s
		}
	}
	return owner, -1 // unreachable with shards > 1, but keep it total
}
