package cluster

import (
	"strconv"

	"repro/internal/phi"
	"repro/internal/telemetry"
)

// FrontendMetrics is the telemetry surface of the routing layer:
// operation and failure-handling counters plus per-shard call latency
// and breaker state. A nil *FrontendMetrics disables instrumentation
// (one branch on the hot path); individual handles are nil-safe too.
type FrontendMetrics struct {
	Lookups   *telemetry.Counter
	Reports   *telemetry.Counter
	Failovers *telemetry.Counter
	Degraded  *telemetry.Counter
	Mirrored  *telemetry.Counter
	// Retries counts fallback attempts after an owner failure (whether
	// or not the fallback succeeded; successes are Failovers).
	Retries *telemetry.Counter

	// Per-shard series, indexed by shard id.
	CallSeconds []*telemetry.Histogram
	CallErrors  []*telemetry.Counter
	// Down is 1 while the breaker routes around the shard, else 0.
	Down []*telemetry.Gauge
}

// NewFrontendMetrics registers the frontend metric set for a cluster of
// the given shard count. A nil registry yields nil.
func NewFrontendMetrics(reg *telemetry.Registry, shards int) *FrontendMetrics {
	if reg == nil {
		return nil
	}
	m := &FrontendMetrics{
		Lookups:   reg.Counter("phi_cluster_lookups_total", "lookups accepted by the frontend", nil),
		Reports:   reg.Counter("phi_cluster_reports_total", "reports accepted by the frontend", nil),
		Failovers: reg.Counter("phi_cluster_failovers_total", "operations served by the fallback replica", nil),
		Degraded:  reg.Counter("phi_cluster_degraded_total", "operations failed on owner and fallback", nil),
		Mirrored:  reg.Counter("phi_cluster_mirrored_total", "reports replicated to fallback shards", nil),
		Retries:   reg.Counter("phi_cluster_retries_total", "fallback attempts after owner failure", nil),
	}
	for i := 0; i < shards; i++ {
		l := telemetry.Labels{"shard": strconv.Itoa(i)}
		m.CallSeconds = append(m.CallSeconds, reg.Histogram("phi_cluster_shard_call_seconds", "latency of calls into each shard", l))
		m.CallErrors = append(m.CallErrors, reg.Counter("phi_cluster_shard_call_errors_total", "failed calls into each shard", l))
		m.Down = append(m.Down, reg.Gauge("phi_cluster_shard_down", "1 while the breaker routes around the shard", l))
	}
	return m
}

// SnapshotMetrics times the shard snapshot cycle. One set is shared by
// every shard's snapshotter (cycles are infrequent; per-shard latency
// separation is not worth the cardinality).
type SnapshotMetrics struct {
	Cycles  *telemetry.Counter
	Errors  *telemetry.Counter
	Seconds *telemetry.Histogram
}

// NewSnapshotMetrics registers the snapshot metric set. A nil registry
// yields nil.
func NewSnapshotMetrics(reg *telemetry.Registry) *SnapshotMetrics {
	if reg == nil {
		return nil
	}
	return &SnapshotMetrics{
		Cycles:  reg.Counter("phi_cluster_snapshots_total", "shard snapshots written", nil),
		Errors:  reg.Counter("phi_cluster_snapshot_errors_total", "shard snapshot failures", nil),
		Seconds: reg.Histogram("phi_cluster_snapshot_seconds", "time to capture and persist one shard snapshot", nil),
	}
}

// Instrument wires the whole cluster into reg: the frontend's routing
// metrics, each shard's context-server metrics (labelled shard=i), and
// the shared snapshot metrics. A nil registry is a no-op, so callers
// can wire unconditionally. Call before the cluster starts serving.
func (c *Cluster) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.Frontend.SetMetrics(NewFrontendMetrics(reg, len(c.Shards)))
	snap := NewSnapshotMetrics(reg)
	for i, s := range c.Shards {
		s.SetSnapshotMetrics(snap)
		s.SetServerMetrics(phi.NewServerMetrics(reg, telemetry.Labels{"shard": strconv.Itoa(i)}))
	}
}
