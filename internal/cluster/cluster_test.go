package cluster

import (
	"fmt"
	"testing"

	"repro/internal/phi"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

// TestClusterMatchesMonolithManyPaths drives identical synthetic traffic
// over many paths into a monolithic phi.Server and a 4-shard cluster and
// demands bit-identical contexts: sharding is exact, because all state
// for one path lives on exactly one shard.
func TestClusterMatchesMonolithManyPaths(t *testing.T) {
	var now sim.Time
	clock := func() sim.Time { return now }
	mono := phi.NewServer(clock, phi.ServerConfig{})
	cl := New(Config{Shards: 4, Clock: clock})

	const paths = 64
	key := func(i int) phi.PathKey { return phi.PathKey(fmt.Sprintf("dst-/24-%d", i)) }
	for i := 0; i < paths; i++ {
		mono.RegisterPath(key(i), 10_000_000)
		cl.Frontend.RegisterPath(key(i), 10_000_000)
	}

	// Deterministic traffic: staggered starts, varying sizes and RTTs.
	for round := 0; round < 8; round++ {
		for i := 0; i < paths; i++ {
			p := key(i)
			now += 13 * sim.Millisecond
			mono.ReportStart(p)
			cl.Frontend.ReportStart(p)
			if round%2 == 0 {
				r := phi.Report{
					Bytes:  int64(10_000 * (i + round + 1)),
					AvgRTT: sim.Time(100+i) * sim.Millisecond,
					MinRTT: 90 * sim.Millisecond,
				}
				now += 7 * sim.Millisecond
				mono.ReportEnd(p, r)
				cl.Frontend.ReportEnd(p, r)
			}
		}
	}

	for i := 0; i < paths; i++ {
		want, err1 := mono.Lookup(key(i))
		got, err2 := cl.Frontend.Lookup(key(i))
		if err1 != nil || err2 != nil {
			t.Fatalf("lookup errs: %v / %v", err1, err2)
		}
		if got != want {
			t.Errorf("path %d: cluster %v != monolith %v", i, got, want)
		}
	}
	if st := cl.Frontend.Stats(); st.Degraded != 0 || st.Failovers != 0 {
		t.Errorf("healthy run should not degrade or fail over: %+v", st)
	}

	// The keyspace actually spread: no shard holds everything.
	for _, s := range cl.Shards {
		if n := s.PathCount(); n == paths {
			t.Errorf("shard %d owns all %d paths — ring did not shard", s.ID, n)
		}
	}
	lookups, _ := cl.Stats()
	if lookups == 0 {
		t.Error("shard-level counters never moved")
	}
}

// TestClusterMatchesMonolithInSimulator is the acceptance experiment: the
// same seeded workload, once against the monolithic server and once
// against a 4-shard cluster frontend, must produce identical simulation
// results — context quality is unchanged by sharding.
func TestClusterMatchesMonolithInSimulator(t *testing.T) {
	run := func(station interface {
		phi.ContextSource
		phi.Reporter
	}, register func(phi.PathKey, int64), now *sim.Time) workload.Result {
		sc := workload.Scenario{
			Dumbbell:    sim.DefaultDumbbell(6),
			MeanOnBytes: 200_000,
			MeanOffTime: sim.Second,
			Duration:    30 * sim.Second,
			Warmup:      2 * sim.Second,
			Seed:        99,
		}
		register("bottleneck", sc.Dumbbell.BottleneckRate)
		client := &phi.Client{
			Source:   station,
			Reporter: station,
			Policy:   phi.DefaultPolicy(),
			Path:     "bottleneck",
		}
		sc.CC = func(int) func() tcp.CongestionControl { return client.CC() }
		sc.OnStart = func(_ int, flow sim.FlowID) { client.OnStart(flow) }
		sc.OnEnd = func(_ int, st *tcp.FlowStats) {
			*now = st.End
			client.OnEnd(st)
		}
		res := workload.Run(sc)
		if client.Fallbacks != 0 {
			t.Fatalf("unexpected client fallbacks: %d", client.Fallbacks)
		}
		return res
	}

	var nowMono sim.Time
	mono := phi.NewServer(func() sim.Time { return nowMono }, phi.ServerConfig{})
	mres := run(mono, mono.RegisterPath, &nowMono)

	var nowCl sim.Time
	cl := New(Config{Shards: 4, Clock: func() sim.Time { return nowCl }})
	cres := run(cl.Frontend, cl.Frontend.RegisterPath, &nowCl)

	if len(mres.Flows) == 0 || len(mres.Flows) != len(cres.Flows) {
		t.Fatalf("flow counts differ: %d vs %d", len(mres.Flows), len(cres.Flows))
	}
	if mres.AggThroughputMbps() != cres.AggThroughputMbps() {
		t.Errorf("throughput: monolith %.4f, cluster %.4f Mbit/s",
			mres.AggThroughputMbps(), cres.AggThroughputMbps())
	}
	if mres.MeanQueueingDelayMs() != cres.MeanQueueingDelayMs() {
		t.Errorf("queueing delay: monolith %.4f, cluster %.4f ms",
			mres.MeanQueueingDelayMs(), cres.MeanQueueingDelayMs())
	}
	if mres.LinkLossRate != cres.LinkLossRate {
		t.Errorf("loss: monolith %v, cluster %v", mres.LinkLossRate, cres.LinkLossRate)
	}
}

// TestClusterFailoverMidRun kills the owning shard mid-run and checks the
// layered degradation story end to end: warm failover via the replica,
// degradation to policy defaults when the replica dies too, and full
// recovery after a snapshot restore.
func TestClusterFailoverMidRun(t *testing.T) {
	var now sim.Time
	cl := New(Config{
		Shards:   4,
		Clock:    func() sim.Time { return now },
		Frontend: FrontendConfig{ReplicateReports: true, DownAfter: 1000}, // no breaker: observe raw failover
	})
	path := phi.PathKey("bottleneck")
	owner, fb := cl.Ring.OwnerAndFallback(path)
	cl.Frontend.RegisterPath(path, 10_000_000)

	for i := 0; i < 10; i++ {
		now += 50 * sim.Millisecond
		cl.Frontend.ReportStart(path)
		now += 50 * sim.Millisecond
		cl.Frontend.ReportEnd(path, phi.Report{
			Bytes:  100_000,
			AvgRTT: 110 * sim.Millisecond,
			MinRTT: 100 * sim.Millisecond,
		})
	}
	healthy, err := cl.Frontend.Lookup(path)
	if err != nil {
		t.Fatalf("healthy lookup: %v", err)
	}

	dir := t.TempDir()
	if err := cl.Shards[owner].SaveSnapshot(dir); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	// Kill the owner mid-run: lookups must keep succeeding, served warm
	// from the replica (report replication mirrored all state there).
	cl.Shards[owner].Crash()
	failedOver, err := cl.Frontend.Lookup(path)
	if err != nil {
		t.Fatalf("lookup with owner down must not fail: %v", err)
	}
	if failedOver != healthy {
		t.Errorf("replica served %v, want the mirrored %v", failedOver, healthy)
	}
	if st := cl.Frontend.Stats(); st.Failovers == 0 {
		t.Error("failover counter never moved")
	}

	// Kill the replica too: now the frontend degrades and a phi.Client
	// quietly falls back to policy defaults.
	cl.Shards[fb].Crash()
	client := &phi.Client{Source: cl.Frontend, Policy: phi.DefaultPolicy(), Path: path}
	if params := client.ParamsForNewConnection(); params != phi.DefaultPolicy().Default {
		t.Errorf("degraded params = %v, want policy default", params)
	}
	if client.Fallbacks != 1 {
		t.Errorf("client fallbacks = %d, want 1", client.Fallbacks)
	}

	// Restore the owner from its snapshot: lookups recover the pre-crash
	// estimates exactly.
	if ok, err := cl.Shards[owner].LoadSnapshot(dir); err != nil || !ok {
		t.Fatalf("restore: ok=%v err=%v", ok, err)
	}
	restored, err := cl.Frontend.Lookup(path)
	if err != nil {
		t.Fatalf("post-restore lookup: %v", err)
	}
	if restored != healthy {
		t.Errorf("restored context %v, want %v", restored, healthy)
	}
}
