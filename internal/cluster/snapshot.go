package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/phi"
	"repro/internal/sim"
)

// SnapshotVersion is the current on-disk snapshot format version. Readers
// reject other versions with ErrSnapshotVersion rather than guessing.
const SnapshotVersion = 1

// ErrSnapshotVersion is returned when a snapshot file's version does not
// match SnapshotVersion.
var ErrSnapshotVersion = fmt.Errorf("cluster: unsupported snapshot version (want %d)", SnapshotVersion)

// Snapshot is the serialized state of one shard at one instant. The
// format is versioned JSON: small enough for the per-domain path counts
// the paper contemplates, diffable when debugging, and forward-portable
// behind the Version gate.
type Snapshot struct {
	Version int                `json:"version"`
	Shard   int                `json:"shard"`
	TakenAt sim.Time           `json:"taken_at"`
	Paths   []phi.PathSnapshot `json:"paths"`
}

// TakeSnapshot captures the shard's current state. A down shard yields a
// snapshot with no paths.
func (s *Shard) TakeSnapshot() *Snapshot {
	return &Snapshot{
		Version: SnapshotVersion,
		Shard:   s.ID,
		TakenAt: s.clock(),
		Paths:   s.Export(),
	}
}

// RestoreSnapshot rehydrates the shard from snap and brings it up: the
// crash-recovery half of the snapshotter. Estimates resume from the
// snapshot instant; anything outside the estimation window is pruned by
// the server's normal expiry on first use.
func (s *Shard) RestoreSnapshot(snap *Snapshot) error {
	if snap.Version != SnapshotVersion {
		return ErrSnapshotVersion
	}
	if snap.Shard != s.ID {
		return fmt.Errorf("cluster: snapshot is for shard %d, not %d", snap.Shard, s.ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.srv = phi.NewServer(s.clock, s.cfg)
	s.srv.SetMetrics(s.srvMetrics)
	s.srv.SetTracer(s.tracer)
	s.srv.SetQuality(s.quality)
	s.srv.ImportState(snap.Paths)
	s.down = false
	return nil
}

// SnapshotPath returns the canonical snapshot file name for a shard
// within dir.
func SnapshotPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.snapshot.json", shard))
}

// WriteSnapshotFile persists snap atomically (temp file + rename), so a
// crash mid-write never corrupts the previous good snapshot.
func WriteSnapshotFile(path string, snap *Snapshot) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadSnapshotFile loads and version-checks a snapshot file.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("cluster: corrupt snapshot %s: %w", path, err)
	}
	if snap.Version != SnapshotVersion {
		return nil, ErrSnapshotVersion
	}
	return &snap, nil
}

// SaveSnapshot captures the shard's state and writes it under dir.
func (s *Shard) SaveSnapshot(dir string) error {
	s.mu.Lock()
	m := s.snapMetrics
	s.mu.Unlock()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	err := WriteSnapshotFile(SnapshotPath(dir, s.ID), s.TakeSnapshot())
	if err == nil {
		s.lastSnap.Store(time.Now().UnixNano())
	}
	if m != nil {
		m.Seconds.Observe(time.Since(start))
		if err != nil {
			m.Errors.Inc()
		} else {
			m.Cycles.Inc()
		}
	}
	return err
}

// LoadSnapshot rehydrates the shard from its file under dir, if one
// exists. It returns false (and no error) when there is nothing to load.
func (s *Shard) LoadSnapshot(dir string) (bool, error) {
	snap, err := ReadSnapshotFile(SnapshotPath(dir, s.ID))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, s.RestoreSnapshot(snap)
}

// StartSnapshotter writes the shard's snapshot to dir every interval
// until the returned stop function is called; stop takes a final
// snapshot before returning. Write errors go to logf (nil discards).
func (s *Shard) StartSnapshotter(dir string, interval time.Duration, logf func(string, ...any)) (stop func()) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := s.SaveSnapshot(dir); err != nil {
					logf("cluster: snapshot shard %d: %v", s.ID, err)
				}
			case <-done:
				if err := s.SaveSnapshot(dir); err != nil {
					logf("cluster: final snapshot shard %d: %v", s.ID, err)
				}
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}
