package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/phi"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestClusterInstrumentationMatchesStats drives traffic through an
// instrumented cluster and checks the telemetry counters agree with the
// frontend's own Stats and with per-shard op counts.
func TestClusterInstrumentationMatchesStats(t *testing.T) {
	var now sim.Time
	c := New(Config{Shards: 4, Clock: func() sim.Time { now += sim.Millisecond; return now }})
	reg := telemetry.NewRegistry()
	c.Instrument(reg)

	paths := []phi.PathKey{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i, p := range paths {
		if err := c.Frontend.ReportStart(p); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Frontend.Lookup(p); err != nil {
			t.Fatal(err)
		}
		if err := c.Frontend.ReportEnd(p, phi.Report{Bytes: int64(1000 * (i + 1))}); err != nil {
			t.Fatal(err)
		}
	}

	st := c.Frontend.Stats()
	fm := c.Frontend.metrics
	if got := fm.Lookups.Value(); got != st.Lookups || got != uint64(len(paths)) {
		t.Errorf("telemetry lookups = %d, stats = %d, want %d", got, st.Lookups, len(paths))
	}
	if got := fm.Reports.Value(); got != st.Reports || got != uint64(2*len(paths)) {
		t.Errorf("telemetry reports = %d, stats = %d, want %d", got, st.Reports, 2*len(paths))
	}
	// Shard-level op counters must sum to the frontend totals (no
	// replication configured, so each op lands on exactly one shard).
	l, r := c.Stats()
	if l != st.Lookups || r != st.Reports {
		t.Errorf("shard sums (%d, %d) != frontend (%d, %d)", l, r, st.Lookups, st.Reports)
	}
	// Latency histograms saw every shard call.
	var calls uint64
	for _, h := range fm.CallSeconds {
		calls += h.Count()
	}
	if want := st.Lookups + st.Reports; calls != want {
		t.Errorf("shard call histogram count = %d, want %d", calls, want)
	}

	// The exposition carries the same numbers.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"phi_cluster_lookups_total 5",
		"phi_cluster_reports_total 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestClusterMetricsSurviveCrashRestore: registry-level counters are
// cumulative across a shard crash/restore cycle, and the breaker gauge
// tracks routing state.
func TestClusterMetricsSurviveCrashRestore(t *testing.T) {
	var now sim.Time
	c := New(Config{
		Shards:   2,
		Clock:    func() sim.Time { now += sim.Millisecond; return now },
		Frontend: FrontendConfig{DownAfter: 1, Cooldown: time.Hour},
	})
	reg := telemetry.NewRegistry()
	c.Instrument(reg)

	path := phi.PathKey("the-path")
	owner, _ := c.Ring.OwnerAndFallback(path)
	if _, err := c.Frontend.Lookup(path); err != nil {
		t.Fatal(err)
	}
	before := c.Frontend.metrics.Lookups.Value()

	snap := c.Shards[owner].TakeSnapshot()
	c.Shards[owner].Crash()
	if _, err := c.Frontend.Lookup(path); err != nil {
		t.Fatal(err) // fallback serves
	}
	if got := c.Frontend.metrics.Failovers.Value(); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
	if got := c.Frontend.metrics.Down[owner].Value(); got != 1 {
		t.Errorf("down gauge = %v, want 1 after breaker trip", got)
	}
	if err := c.Shards[owner].RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	// Restored server reuses the same registered metrics.
	if err := c.Frontend.ReportStart(path); err == nil {
		// The breaker may still route around the owner (cooldown), which
		// is fine; what matters is the counters kept accumulating.
		_ = err
	}
	if got := c.Frontend.metrics.Lookups.Value(); got != before+1 {
		t.Errorf("cumulative lookups = %d, want %d", got, before+1)
	}
}
