package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/phi"
)

// Errors surfaced by the frontend. A caller that sees ErrAllReplicasDown
// should degrade to its policy defaults — exactly the ContextSource
// contract, which phi.Client already honors.
var (
	ErrAllReplicasDown = errors.New("cluster: owner and fallback shard both unavailable")
	ErrShardTimeout    = errors.New("cluster: shard call timed out")
)

// FrontendConfig tunes routing and failure handling.
type FrontendConfig struct {
	// Timeout bounds each shard call. Zero calls synchronously with no
	// timeout — right for in-process shards, which cannot hang; set it
	// when shards are remote.
	Timeout time.Duration
	// DownAfter marks a shard down after this many consecutive failures
	// (default 3). While down it is skipped without being called.
	DownAfter int
	// Cooldown is how long a down shard is skipped before the next call
	// probes it again (default 5s). Uses the wall clock: shard health is
	// an operational property, not simulated state.
	Cooldown time.Duration
	// ReplicateReports mirrors every report to the path's fallback shard
	// so failover lands on warm state instead of empty estimates, at the
	// cost of doubling report writes. Lookups still read only the owner,
	// so estimates are unchanged while the owner is healthy.
	ReplicateReports bool
}

func (c FrontendConfig) withDefaults() FrontendConfig {
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// shardHealth is the frontend's per-shard circuit breaker.
type shardHealth struct {
	mu          sync.Mutex
	consecFails int
	downUntil   time.Time
}

// FrontendStats counts routing outcomes.
type FrontendStats struct {
	// Lookups and Reports are operations accepted by the frontend.
	Lookups uint64
	Reports uint64
	// Failovers are operations the owner failed and the fallback served.
	Failovers uint64
	// Degraded are operations where owner and fallback both failed and
	// the caller was told to fall back to policy defaults.
	Degraded uint64
	// Mirrored counts successful report replications to fallbacks.
	Mirrored uint64
	// Retries are fallback attempts after an owner failure (successful
	// or not; the successful ones are Failovers).
	Retries uint64
}

// Frontend routes context-server operations to the owning shard, with
// per-shard health tracking, a single retry against the path's fallback
// replica, and graceful degradation (an error, which phi.Client turns
// into policy defaults) when both are unavailable.
//
// It implements phi.ContextSource, phi.Reporter, and ReportProgress, so
// it drops in anywhere a *phi.Server does — including behind
// phiwire.Server.
type Frontend struct {
	ring   *Ring
	shards []Conn
	cfg    FrontendConfig
	health []shardHealth
	now    func() time.Time // wall clock, swappable in tests

	lookups   atomic.Uint64
	reports   atomic.Uint64
	failovers atomic.Uint64
	degraded  atomic.Uint64
	mirrored  atomic.Uint64
	retries   atomic.Uint64

	// metrics is the optional telemetry surface (nil = uninstrumented).
	// Set before serving: the field is read without synchronization.
	metrics *FrontendMetrics
}

// SetMetrics attaches (or detaches, with nil) the telemetry surface.
// The metric set's per-shard slices must cover every shard id. Call
// before the frontend starts serving.
func (f *Frontend) SetMetrics(m *FrontendMetrics) { f.metrics = m }

// NewFrontend builds a frontend over the given shard connections; the
// ring must have exactly len(shards) shards.
func NewFrontend(ring *Ring, shards []Conn, cfg FrontendConfig) *Frontend {
	if ring.Shards() != len(shards) {
		panic("cluster: ring size does not match shard count")
	}
	return &Frontend{
		ring:   ring,
		shards: shards,
		cfg:    cfg.withDefaults(),
		health: make([]shardHealth, len(shards)),
		now:    time.Now,
	}
}

// Ring exposes the routing ring (read-only by construction).
func (f *Frontend) Ring() *Ring { return f.ring }

// Stats returns a snapshot of the routing counters.
func (f *Frontend) Stats() FrontendStats {
	return FrontendStats{
		Lookups:   f.lookups.Load(),
		Reports:   f.reports.Load(),
		Failovers: f.failovers.Load(),
		Degraded:  f.degraded.Load(),
		Mirrored:  f.mirrored.Load(),
		Retries:   f.retries.Load(),
	}
}

// markResult updates shard i's breaker after a call.
func (f *Frontend) markResult(i int, err error) {
	m := f.metrics
	h := &f.health[i]
	h.mu.Lock()
	defer h.mu.Unlock()
	if err == nil {
		h.consecFails = 0
		h.downUntil = time.Time{}
		if m != nil {
			m.Down[i].Set(0)
		}
		return
	}
	h.consecFails++
	if h.consecFails >= f.cfg.DownAfter {
		h.downUntil = f.now().Add(f.cfg.Cooldown)
		if m != nil {
			m.Down[i].Set(1)
		}
	}
}

// skippable reports whether shard i is marked down and still cooling off.
func (f *Frontend) skippable(i int) bool {
	h := &f.health[i]
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.downUntil.IsZero() && f.now().Before(h.downUntil)
}

// ShardDown reports whether the frontend currently routes around shard i.
func (f *Frontend) ShardDown(i int) bool { return f.skippable(i) }

// call runs op against shard i under the configured timeout, updating
// the shard's breaker. A shard in cooldown is skipped outright.
func (f *Frontend) call(i int, op func(Conn) error) error {
	if f.skippable(i) {
		return ErrShardDown
	}
	m := f.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	var err error
	if f.cfg.Timeout <= 0 {
		err = op(f.shards[i])
	} else {
		done := make(chan error, 1)
		go func() { done <- op(f.shards[i]) }()
		select {
		case err = <-done:
		case <-time.After(f.cfg.Timeout):
			err = ErrShardTimeout
		}
	}
	f.markResult(i, err)
	if m != nil {
		m.CallSeconds[i].Observe(time.Since(start))
		if err != nil {
			m.CallErrors[i].Inc()
		}
	}
	return err
}

// Lookup implements phi.ContextSource: owner first, one retry on the
// fallback replica, then degrade.
func (f *Frontend) Lookup(path phi.PathKey) (phi.Context, error) {
	m := f.metrics
	f.lookups.Add(1)
	if m != nil {
		m.Lookups.Inc()
	}
	owner, fb := f.ring.OwnerAndFallback(path)
	var ctx phi.Context
	get := func(c Conn) error {
		var err error
		ctx, err = c.Lookup(path)
		return err
	}
	if err := f.call(owner, get); err == nil {
		return ctx, nil
	}
	if fb >= 0 {
		f.retries.Add(1)
		if m != nil {
			m.Retries.Inc()
		}
		if err := f.call(fb, get); err == nil {
			f.failovers.Add(1)
			if m != nil {
				m.Failovers.Inc()
			}
			return ctx, nil
		}
	}
	f.degraded.Add(1)
	if m != nil {
		m.Degraded.Inc()
	}
	return phi.Context{}, ErrAllReplicasDown
}

// ReportStart implements phi.Reporter.
func (f *Frontend) ReportStart(path phi.PathKey) error {
	return f.deliverReport(path, func(c Conn) error { return c.ReportStart(path) })
}

// ReportEnd implements phi.Reporter.
func (f *Frontend) ReportEnd(path phi.PathKey, r phi.Report) error {
	return f.deliverReport(path, func(c Conn) error { return c.ReportEnd(path, r) })
}

// ReportProgress forwards a mid-connection report.
func (f *Frontend) ReportProgress(path phi.PathKey, r phi.Report) error {
	return f.deliverReport(path, func(c Conn) error { return c.ReportProgress(path, r) })
}

// deliverReport routes a report to the owner (failing over once to the
// fallback) and, when replication is on, mirrors it to the fallback so a
// later failover finds warm state. Mirror failures are best-effort: they
// feed the breaker but never fail the report.
func (f *Frontend) deliverReport(path phi.PathKey, op func(Conn) error) error {
	m := f.metrics
	f.reports.Add(1)
	if m != nil {
		m.Reports.Inc()
	}
	owner, fb := f.ring.OwnerAndFallback(path)
	err := f.call(owner, op)
	switch {
	case err == nil:
		if f.cfg.ReplicateReports && fb >= 0 {
			if f.call(fb, op) == nil {
				f.mirrored.Add(1)
				if m != nil {
					m.Mirrored.Inc()
				}
			}
		}
		return nil
	case fb >= 0:
		f.retries.Add(1)
		if m != nil {
			m.Retries.Inc()
		}
		if f.call(fb, op) == nil {
			f.failovers.Add(1)
			if m != nil {
				m.Failovers.Inc()
			}
			return nil
		}
		f.degraded.Add(1)
		if m != nil {
			m.Degraded.Inc()
		}
		return ErrAllReplicasDown
	default:
		return err
	}
}

// pathRegistrar is the optional capacity-registration facet of a shard
// connection. In-process shards implement it; wire-backed ones need not
// (capacities are then registered on the shard processes directly).
type pathRegistrar interface {
	RegisterPath(path phi.PathKey, capacityBps int64)
}

// RegisterPath declares a path capacity on its owner and fallback shards,
// mirroring phi.Server.RegisterPath for a sharded deployment.
func (f *Frontend) RegisterPath(path phi.PathKey, capacityBps int64) {
	owner, fb := f.ring.OwnerAndFallback(path)
	if s, ok := f.shards[owner].(pathRegistrar); ok {
		s.RegisterPath(path, capacityBps)
	}
	if fb >= 0 {
		if s, ok := f.shards[fb].(pathRegistrar); ok {
			s.RegisterPath(path, capacityBps)
		}
	}
}
