package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	healthmon "repro/internal/health"
	"repro/internal/phi"
	"repro/internal/quality"
	"repro/internal/trace"
)

// TracedConn is the optional span-propagating facet of a shard Conn.
// In-process *Shard implements it (spans go straight to the shared
// tracer); so does phiwire.Client, which forwards the span context on
// the wire to a remote shard process.
type TracedConn interface {
	LookupSpan(sc trace.SpanContext, path phi.PathKey) (phi.Context, error)
	ReportStartSpan(sc trace.SpanContext, path phi.PathKey) error
	ReportEndSpan(sc trace.SpanContext, path phi.PathKey, r phi.Report) error
	ReportProgressSpan(sc trace.SpanContext, path phi.PathKey, r phi.Report) error
}

// Frontend span names and decision notes. The notes mark the routing
// decisions worth keeping a trace for: the tail-based collector retains
// every trace that failed over, degraded, or hit an open breaker.
var (
	opFrontLookup   = trace.Name("frontend.lookup")
	opFrontStart    = trace.Name("frontend.report_start")
	opFrontEnd      = trace.Name("frontend.report_end")
	opFrontProgress = trace.Name("frontend.report_progress")
	opShardCall     = trace.Name("shard.call")

	noteRetry       = trace.Name("retry")
	noteFailover    = trace.Name("failover")
	noteBreakerOpen = trace.Name("breaker-open")
)

// degradedNotes caches the per-(owner,fallback) degraded notes so the
// (rare) degraded path interns each distinct pair once. The note names
// the shard indices that were tried and failed, letting fleet audit
// logs correlate client-visible degradation with controller actions.
var degradedNotes sync.Map // uint64(owner)<<32|uint32(fallback) -> trace.Ref

// degradedTriedNote returns the interned note "degraded tried=[o f]"
// (or "degraded tried=[o]" with no fallback). The intern table bounds
// total entries, so even a pathological shard count degrades to the
// overflow ref rather than growing without bound.
func degradedTriedNote(owner, fallback int) trace.Ref {
	key := uint64(owner)<<32 | uint64(uint32(fallback))
	if r, ok := degradedNotes.Load(key); ok {
		return r.(trace.Ref)
	}
	var r trace.Ref
	if fallback < 0 {
		r = trace.Name(fmt.Sprintf("degraded tried=[%d]", owner))
	} else {
		r = trace.Name(fmt.Sprintf("degraded tried=[%d %d]", owner, fallback))
	}
	degradedNotes.Store(key, r)
	return r
}

// Errors surfaced by the frontend. A caller that sees ErrAllReplicasDown
// should degrade to its policy defaults — exactly the ContextSource
// contract, which phi.Client already honors.
var (
	ErrAllReplicasDown = errors.New("cluster: owner and fallback shard both unavailable")
	ErrShardTimeout    = errors.New("cluster: shard call timed out")
)

// FrontendConfig tunes routing and failure handling.
type FrontendConfig struct {
	// Timeout bounds each shard call. Zero calls synchronously with no
	// timeout — right for in-process shards, which cannot hang; set it
	// when shards are remote.
	Timeout time.Duration
	// DownAfter marks a shard down after this many consecutive failures
	// (default 3). While down it is skipped without being called.
	DownAfter int
	// Cooldown is how long a down shard is skipped before the next call
	// probes it again (default 5s). Uses the wall clock: shard health is
	// an operational property, not simulated state.
	Cooldown time.Duration
	// ReplicateReports mirrors every report to the path's fallback shard
	// so failover lands on warm state instead of empty estimates, at the
	// cost of doubling report writes. Lookups still read only the owner,
	// so estimates are unchanged while the owner is healthy.
	ReplicateReports bool
}

func (c FrontendConfig) withDefaults() FrontendConfig {
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// shardHealth is the frontend's per-shard circuit breaker.
type shardHealth struct {
	mu          sync.Mutex
	consecFails int
	downUntil   time.Time
}

// FrontendStats counts routing outcomes.
type FrontendStats struct {
	// Lookups and Reports are operations accepted by the frontend.
	Lookups uint64
	Reports uint64
	// Failovers are operations the owner failed and the fallback served.
	Failovers uint64
	// Degraded are operations where owner and fallback both failed and
	// the caller was told to fall back to policy defaults.
	Degraded uint64
	// Mirrored counts successful report replications to fallbacks.
	Mirrored uint64
	// Retries are fallback attempts after an owner failure (successful
	// or not; the successful ones are Failovers).
	Retries uint64
}

// Frontend routes context-server operations to the owning shard, with
// per-shard health tracking, a single retry against the path's fallback
// replica, and graceful degradation (an error, which phi.Client turns
// into policy defaults) when both are unavailable.
//
// It implements phi.ContextSource, phi.Reporter, and ReportProgress, so
// it drops in anywhere a *phi.Server does — including behind
// phiwire.Server.
type Frontend struct {
	ring   *Ring
	shards []Conn
	// tconns[i] is shards[i]'s traced facet, resolved once at
	// construction (nil if unimplemented).
	tconns []TracedConn
	cfg    FrontendConfig
	health []shardHealth
	now    func() time.Time // wall clock, swappable in tests

	lookups   atomic.Uint64
	reports   atomic.Uint64
	failovers atomic.Uint64
	degraded  atomic.Uint64
	mirrored  atomic.Uint64
	retries   atomic.Uint64

	// metrics is the optional telemetry surface (nil = uninstrumented).
	// Set before serving: the field is read without synchronization.
	metrics *FrontendMetrics

	// tracer records routing spans (nil = untraced). Set before serving:
	// the field is read without synchronization.
	tracer *trace.Tracer

	// hmon feeds the live health monitor (nil = unmonitored; Record
	// methods are nil-safe). Set before serving.
	hmon *healthmon.Monitor

	// quality records degraded lookups as fallback coverage — the one
	// outcome no shard-level hook can see, because no shard was reached
	// (nil = unmeasured). Set before serving.
	quality *quality.Tracker
}

// SetMetrics attaches (or detaches, with nil) the telemetry surface.
// The metric set's per-shard slices must cover every shard id. Call
// before the frontend starts serving.
func (f *Frontend) SetMetrics(m *FrontendMetrics) { f.metrics = m }

// SetTracer attaches (or detaches, with nil) the span tracer. Call
// before the frontend starts serving.
func (f *Frontend) SetTracer(t *trace.Tracer) { f.tracer = t }

// SetHealth attaches (or detaches, with nil) the live health monitor
// and installs the frontend's breaker view as its shard-status source.
// Call before the frontend starts serving.
func (f *Frontend) SetHealth(m *healthmon.Monitor) {
	f.hmon = m
	if m == nil {
		return
	}
	m.SetShardStatus(func() []bool {
		down := make([]bool, len(f.shards))
		for i := range down {
			down[i] = f.ShardDown(i)
		}
		return down
	})
}

// SetQuality attaches (or detaches, with nil) the context-quality
// tracker. Only lookups that degrade (owner and fallback both
// unavailable) are recorded here — every served lookup is classified by
// the shard's own phi.Server, so the frontend adds exactly the outcomes
// the shards cannot observe. Call before the frontend starts serving.
func (f *Frontend) SetQuality(q *quality.Tracker) { f.quality = q }

// NewFrontend builds a frontend over the given shard connections; the
// ring must have exactly len(shards) shards.
func NewFrontend(ring *Ring, shards []Conn, cfg FrontendConfig) *Frontend {
	if ring.Shards() != len(shards) {
		panic("cluster: ring size does not match shard count")
	}
	tconns := make([]TracedConn, len(shards))
	for i, s := range shards {
		tconns[i], _ = s.(TracedConn)
	}
	return &Frontend{
		ring:   ring,
		shards: shards,
		tconns: tconns,
		cfg:    cfg.withDefaults(),
		health: make([]shardHealth, len(shards)),
		now:    time.Now,
	}
}

// Ring exposes the routing ring (read-only by construction).
func (f *Frontend) Ring() *Ring { return f.ring }

// Stats returns a snapshot of the routing counters.
func (f *Frontend) Stats() FrontendStats {
	return FrontendStats{
		Lookups:   f.lookups.Load(),
		Reports:   f.reports.Load(),
		Failovers: f.failovers.Load(),
		Degraded:  f.degraded.Load(),
		Mirrored:  f.mirrored.Load(),
		Retries:   f.retries.Load(),
	}
}

// markResult updates shard i's breaker after a call.
func (f *Frontend) markResult(i int, err error) {
	m := f.metrics
	h := &f.health[i]
	h.mu.Lock()
	defer h.mu.Unlock()
	if err == nil {
		h.consecFails = 0
		h.downUntil = time.Time{}
		if m != nil {
			m.Down[i].Set(0)
		}
		return
	}
	h.consecFails++
	if h.consecFails >= f.cfg.DownAfter {
		h.downUntil = f.now().Add(f.cfg.Cooldown)
		if m != nil {
			m.Down[i].Set(1)
		}
	}
}

// skippable reports whether shard i is marked down and still cooling off.
func (f *Frontend) skippable(i int) bool {
	h := &f.health[i]
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.downUntil.IsZero() && f.now().Before(h.downUntil)
}

// ShardDown reports whether the frontend currently routes around shard i.
func (f *Frontend) ShardDown(i int) bool { return f.skippable(i) }

// Quarantine routes around shard i for d, regardless of its breaker
// history — the drain half of a remediation: while a controller is
// repairing a shard, traffic goes straight to fallbacks instead of
// paying a failed owner call first. A successful probe after the window
// (or ResetShard) returns the shard to service.
func (f *Frontend) Quarantine(i int, d time.Duration) {
	h := &f.health[i]
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecFails = f.cfg.DownAfter
	h.downUntil = f.now().Add(d)
	if m := f.metrics; m != nil {
		m.Down[i].Set(1)
	}
}

// ResetShard clears shard i's breaker so the next operation calls it
// immediately — promotion awareness: after a fleet controller promotes
// a backup or restarts a shard, the replica behind index i is healthy
// and traffic should return now, not after the cooldown expires.
func (f *Frontend) ResetShard(i int) {
	h := &f.health[i]
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecFails = 0
	h.downUntil = time.Time{}
	if m := f.metrics; m != nil {
		m.Down[i].Set(0)
	}
}

// call runs op against shard i under the configured timeout, updating
// the shard's breaker and recording a shard.call span under parent. A
// shard in cooldown is skipped outright (noted as breaker-open on the
// span). op receives the shard index and the span context to forward to
// the shard connection.
func (f *Frontend) call(i int, parent trace.SpanContext, op func(i int, sc trace.SpanContext) error) error {
	csp := f.tracer.Start(parent, opShardCall)
	csp.SetShard(i)
	if f.skippable(i) {
		csp.Note(noteBreakerOpen)
		csp.End(ErrShardDown)
		f.hmon.RecordRouting(healthmon.RouteBreakerOpen)
		return ErrShardDown
	}
	sc := csp.Context()
	if !sc.Valid() {
		sc = parent // no local tracer: still forward the caller's trace
	}
	m := f.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	var err error
	if f.cfg.Timeout <= 0 {
		err = op(i, sc)
	} else {
		done := make(chan error, 1)
		go func() { done <- op(i, sc) }()
		select {
		case err = <-done:
		case <-time.After(f.cfg.Timeout):
			err = ErrShardTimeout
		}
	}
	f.markResult(i, err)
	f.hmon.RecordShardCall(i, err != nil)
	if m != nil {
		m.CallSeconds[i].Observe(time.Since(start))
		if err != nil {
			m.CallErrors[i].Inc()
		}
	}
	csp.End(err)
	return err
}

// connLookup and friends dispatch one shard operation, through the
// traced facet when the shard supports it and a span context exists.
func (f *Frontend) connLookup(i int, sc trace.SpanContext, path phi.PathKey) (phi.Context, error) {
	if tc := f.tconns[i]; tc != nil && sc.Valid() {
		return tc.LookupSpan(sc, path)
	}
	return f.shards[i].Lookup(path)
}

func (f *Frontend) connReportStart(i int, sc trace.SpanContext, path phi.PathKey) error {
	if tc := f.tconns[i]; tc != nil && sc.Valid() {
		return tc.ReportStartSpan(sc, path)
	}
	return f.shards[i].ReportStart(path)
}

func (f *Frontend) connReportEnd(i int, sc trace.SpanContext, path phi.PathKey, r phi.Report) error {
	if tc := f.tconns[i]; tc != nil && sc.Valid() {
		return tc.ReportEndSpan(sc, path, r)
	}
	return f.shards[i].ReportEnd(path, r)
}

func (f *Frontend) connReportProgress(i int, sc trace.SpanContext, path phi.PathKey, r phi.Report) error {
	if tc := f.tconns[i]; tc != nil && sc.Valid() {
		return tc.ReportProgressSpan(sc, path, r)
	}
	return f.shards[i].ReportProgress(path, r)
}

// spanOrParent picks the context child calls should hang off: the
// frontend's own span when tracing is on, the caller's otherwise.
func spanOrParent(sp trace.Span, parent trace.SpanContext) trace.SpanContext {
	if sc := sp.Context(); sc.Valid() {
		return sc
	}
	return parent
}

// Lookup implements phi.ContextSource: owner first, one retry on the
// fallback replica, then degrade.
func (f *Frontend) Lookup(path phi.PathKey) (phi.Context, error) {
	return f.LookupSpan(trace.SpanContext{}, path)
}

// LookupSpan is Lookup joined to a caller's trace: the routing span it
// records (and every shard-call span under it) becomes a child of
// parent, so a wire request traced at the client shows owner attempts,
// retries, and failovers as nested spans.
func (f *Frontend) LookupSpan(parent trace.SpanContext, path phi.PathKey) (phi.Context, error) {
	m := f.metrics
	f.lookups.Add(1)
	if m != nil {
		m.Lookups.Inc()
	}
	f.hmon.RecordLookup(string(path))
	f.hmon.RecordTrace(string(path), uint64(parent.Trace))
	sp := f.tracer.Start(parent, opFrontLookup)
	sc := spanOrParent(sp, parent)
	owner, fb := f.ring.OwnerAndFallback(path)
	var ctx phi.Context
	get := func(i int, csc trace.SpanContext) error {
		var err error
		ctx, err = f.connLookup(i, csc, path)
		return err
	}
	if err := f.call(owner, sc, get); err == nil {
		sp.End(nil)
		return ctx, nil
	}
	if fb >= 0 {
		f.retries.Add(1)
		if m != nil {
			m.Retries.Inc()
		}
		f.hmon.RecordRouting(healthmon.RouteRetry)
		sp.Note(noteRetry)
		if err := f.call(fb, sc, get); err == nil {
			f.failovers.Add(1)
			if m != nil {
				m.Failovers.Inc()
			}
			f.hmon.RecordRouting(healthmon.RouteFailover)
			sp.Note(noteFailover)
			sp.End(nil)
			return ctx, nil
		}
	}
	f.degraded.Add(1)
	if m != nil {
		m.Degraded.Inc()
	}
	f.hmon.RecordRouting(healthmon.RouteDegraded)
	f.quality.ObserveFallback(string(path))
	sp.Note(degradedTriedNote(owner, fb))
	sp.End(ErrAllReplicasDown)
	return phi.Context{}, ErrAllReplicasDown
}

// ReportStart implements phi.Reporter.
func (f *Frontend) ReportStart(path phi.PathKey) error {
	return f.ReportStartSpan(trace.SpanContext{}, path)
}

// ReportStartSpan is ReportStart joined to a caller's trace.
func (f *Frontend) ReportStartSpan(parent trace.SpanContext, path phi.PathKey) error {
	return f.deliverReport(parent, opFrontStart, path, func(i int, sc trace.SpanContext) error {
		return f.connReportStart(i, sc, path)
	})
}

// ReportEnd implements phi.Reporter.
func (f *Frontend) ReportEnd(path phi.PathKey, r phi.Report) error {
	return f.ReportEndSpan(trace.SpanContext{}, path, r)
}

// ReportEndSpan is ReportEnd joined to a caller's trace.
func (f *Frontend) ReportEndSpan(parent trace.SpanContext, path phi.PathKey, r phi.Report) error {
	return f.deliverReport(parent, opFrontEnd, path, func(i int, sc trace.SpanContext) error {
		return f.connReportEnd(i, sc, path, r)
	})
}

// ReportProgress forwards a mid-connection report.
func (f *Frontend) ReportProgress(path phi.PathKey, r phi.Report) error {
	return f.ReportProgressSpan(trace.SpanContext{}, path, r)
}

// ReportProgressSpan is ReportProgress joined to a caller's trace.
func (f *Frontend) ReportProgressSpan(parent trace.SpanContext, path phi.PathKey, r phi.Report) error {
	return f.deliverReport(parent, opFrontProgress, path, func(i int, sc trace.SpanContext) error {
		return f.connReportProgress(i, sc, path, r)
	})
}

// deliverReport routes a report to the owner (failing over once to the
// fallback) and, when replication is on, mirrors it to the fallback so a
// later failover finds warm state. Mirror failures are best-effort: they
// feed the breaker but never fail the report. Routing decisions are
// recorded on a span under parent (mirrors are deliberately not noted —
// replication is routine, not interesting).
func (f *Frontend) deliverReport(parent trace.SpanContext, name trace.Ref, path phi.PathKey, op func(i int, sc trace.SpanContext) error) error {
	m := f.metrics
	f.reports.Add(1)
	if m != nil {
		m.Reports.Inc()
	}
	f.hmon.RecordReport(string(path))
	f.hmon.RecordTrace(string(path), uint64(parent.Trace))
	sp := f.tracer.Start(parent, name)
	sc := spanOrParent(sp, parent)
	owner, fb := f.ring.OwnerAndFallback(path)
	err := f.call(owner, sc, op)
	switch {
	case err == nil:
		if f.cfg.ReplicateReports && fb >= 0 {
			if f.call(fb, sc, op) == nil {
				f.mirrored.Add(1)
				if m != nil {
					m.Mirrored.Inc()
				}
			}
		}
		sp.End(nil)
		return nil
	case fb >= 0:
		f.retries.Add(1)
		if m != nil {
			m.Retries.Inc()
		}
		f.hmon.RecordRouting(healthmon.RouteRetry)
		sp.Note(noteRetry)
		if f.call(fb, sc, op) == nil {
			f.failovers.Add(1)
			if m != nil {
				m.Failovers.Inc()
			}
			f.hmon.RecordRouting(healthmon.RouteFailover)
			sp.Note(noteFailover)
			sp.End(nil)
			return nil
		}
		f.degraded.Add(1)
		if m != nil {
			m.Degraded.Inc()
		}
		f.hmon.RecordRouting(healthmon.RouteDegraded)
		sp.Note(degradedTriedNote(owner, fb))
		sp.End(ErrAllReplicasDown)
		return ErrAllReplicasDown
	default:
		sp.End(err)
		return err
	}
}

// pathRegistrar is the optional capacity-registration facet of a shard
// connection. In-process shards implement it; wire-backed ones need not
// (capacities are then registered on the shard processes directly).
type pathRegistrar interface {
	RegisterPath(path phi.PathKey, capacityBps int64)
}

// RegisterPath declares a path capacity on its owner and fallback shards,
// mirroring phi.Server.RegisterPath for a sharded deployment.
func (f *Frontend) RegisterPath(path phi.PathKey, capacityBps int64) {
	owner, fb := f.ring.OwnerAndFallback(path)
	if s, ok := f.shards[owner].(pathRegistrar); ok {
		s.RegisterPath(path, capacityBps)
	}
	if fb >= 0 {
		if s, ok := f.shards[fb].(pathRegistrar); ok {
			s.RegisterPath(path, capacityBps)
		}
	}
}
