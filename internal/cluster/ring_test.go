package cluster

import (
	"fmt"
	"testing"

	"repro/internal/phi"
)

func TestRingDeterministicAndTotal(t *testing.T) {
	a := NewRing(4, 0)
	b := NewRing(4, 0)
	for i := 0; i < 1000; i++ {
		key := phi.PathKey(fmt.Sprintf("path-%d", i))
		oa, fa := a.OwnerAndFallback(key)
		ob, fb := b.OwnerAndFallback(key)
		if oa != ob || fa != fb {
			t.Fatalf("ring not deterministic for %q: (%d,%d) vs (%d,%d)", key, oa, fa, ob, fb)
		}
		if oa < 0 || oa >= 4 {
			t.Fatalf("owner %d out of range", oa)
		}
		if fa < 0 || fa >= 4 {
			t.Fatalf("fallback %d out of range", fa)
		}
		if oa == fa {
			t.Fatalf("fallback equals owner for %q", key)
		}
	}
}

func TestRingBalance(t *testing.T) {
	const shards, keys = 4, 20000
	r := NewRing(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Owner(phi.PathKey(fmt.Sprintf("dst-24-%d", i)))]++
	}
	want := keys / shards
	for s, c := range counts {
		// With 128 vnodes the spread stays well inside ±50% of even.
		if c < want/2 || c > want*3/2 {
			t.Errorf("shard %d owns %d keys, want within [%d, %d]", s, c, want/2, want*3/2)
		}
	}
}

func TestRingSingleShard(t *testing.T) {
	r := NewRing(1, 8)
	owner, fb := r.OwnerAndFallback("anything")
	if owner != 0 {
		t.Fatalf("owner = %d, want 0", owner)
	}
	if fb != -1 {
		t.Fatalf("fallback = %d, want -1 in a single-shard ring", fb)
	}
}

func TestRingResizeMovesFewKeys(t *testing.T) {
	// Consistent hashing's point: growing 4 -> 5 shards should move only
	// roughly 1/5 of the keyspace, not reshuffle everything.
	const keys = 10000
	r4, r5 := NewRing(4, 0), NewRing(5, 0)
	moved := 0
	for i := 0; i < keys; i++ {
		key := phi.PathKey(fmt.Sprintf("path-%d", i))
		if r4.Owner(key) != r5.Owner(key) {
			moved++
		}
	}
	if moved > keys*35/100 {
		t.Errorf("resize moved %d/%d keys; consistent hashing should move ~1/5", moved, keys)
	}
	if moved == 0 {
		t.Error("resize moved no keys at all — ring is suspiciously static")
	}
}
