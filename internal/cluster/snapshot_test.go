package cluster

import (
	"encoding/json"
	"errors"
	"os"
	"testing"

	"repro/internal/phi"
	"repro/internal/sim"
)

// feedShard pushes a deterministic little workload at one path.
func feedShard(s *Shard, path phi.PathKey, now *sim.Time) {
	s.RegisterPath(path, 10_000_000)
	for i := 0; i < 5; i++ {
		*now += 100 * sim.Millisecond
		s.ReportStart(path)
		*now += 200 * sim.Millisecond
		s.ReportEnd(path, phi.Report{
			Bytes:  50_000,
			AvgRTT: 120 * sim.Millisecond,
			MinRTT: 100 * sim.Millisecond,
		})
	}
	s.ReportStart(path) // leave one active so N survives the roundtrip
}

func TestSnapshotRoundtripRestoresEstimates(t *testing.T) {
	var now sim.Time
	clock := func() sim.Time { return now }
	s := NewShard(0, clock, phi.ServerConfig{})
	path := phi.PathKey("bottleneck")
	feedShard(s, path, &now)

	before, err := s.Lookup(path)
	if err != nil {
		t.Fatalf("Lookup before: %v", err)
	}
	if before.U == 0 || before.Q == 0 || before.N != 1 {
		t.Fatalf("precondition: context should be non-trivial, got %v", before)
	}

	dir := t.TempDir()
	if err := s.SaveSnapshot(dir); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}

	// Crash wipes everything...
	s.Crash()
	if _, err := s.Lookup(path); !errors.Is(err, ErrShardDown) {
		t.Fatalf("crashed shard lookup err = %v, want ErrShardDown", err)
	}

	// ...restart without the snapshot would zero the estimates...
	s.Restart()
	zeroed, _ := s.Lookup(path)
	if zeroed == before {
		t.Fatal("restart alone should not have preserved state")
	}

	// ...but restoring the snapshot brings them back exactly.
	ok, err := s.LoadSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("LoadSnapshot: ok=%v err=%v", ok, err)
	}
	after, err := s.Lookup(path)
	if err != nil {
		t.Fatalf("Lookup after: %v", err)
	}
	if after != before {
		t.Errorf("restored context %v != pre-crash %v", after, before)
	}
}

func TestSnapshotVersionGate(t *testing.T) {
	dir := t.TempDir()
	snap := &Snapshot{Version: SnapshotVersion + 1, Shard: 0}
	data, _ := json.Marshal(snap)
	if err := os.WriteFile(SnapshotPath(dir, 0), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(SnapshotPath(dir, 0)); !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("err = %v, want ErrSnapshotVersion", err)
	}
}

func TestSnapshotShardMismatch(t *testing.T) {
	var now sim.Time
	s := NewShard(3, func() sim.Time { return now }, phi.ServerConfig{})
	snap := &Snapshot{Version: SnapshotVersion, Shard: 1}
	if err := s.RestoreSnapshot(snap); err == nil {
		t.Error("restoring shard 1's snapshot into shard 3 should fail")
	}
}

func TestSnapshotMissingFile(t *testing.T) {
	var now sim.Time
	s := NewShard(0, func() sim.Time { return now }, phi.ServerConfig{})
	ok, err := s.LoadSnapshot(t.TempDir())
	if ok || err != nil {
		t.Errorf("missing snapshot: ok=%v err=%v, want false/nil", ok, err)
	}
}

func TestSnapshotCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(SnapshotPath(dir, 0), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(SnapshotPath(dir, 0)); err == nil {
		t.Error("corrupt snapshot should not parse")
	}
}

func TestWriteSnapshotFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := SnapshotPath(dir, 0)
	for gen := 0; gen < 3; gen++ {
		snap := &Snapshot{Version: SnapshotVersion, Shard: 0, TakenAt: sim.Time(gen)}
		if err := WriteSnapshotFile(path, snap); err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		got, err := ReadSnapshotFile(path)
		if err != nil {
			t.Fatalf("gen %d read: %v", gen, err)
		}
		if got.TakenAt != sim.Time(gen) {
			t.Fatalf("gen %d: read TakenAt %d", gen, got.TakenAt)
		}
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("%d files left in snapshot dir, want 1 (no temp litter)", len(entries))
	}
}
