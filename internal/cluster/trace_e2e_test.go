package cluster

import (
	"net"
	"testing"
	"time"

	"repro/internal/phi"
	"repro/internal/phiwire"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestEndToEndFailoverTrace runs the full wire stack — traced client,
// wire server, frontend, shards — crashes the owning shard, and checks
// that the failed-over lookup produced one cross-process trace telling
// the whole story: the client span's trace ID joins the server, the
// frontend span carries the failover note, and shard.call spans name
// the shards that were tried.
func TestEndToEndFailoverTrace(t *testing.T) {
	cl := New(Config{
		Shards: 4,
		Clock:  func() sim.Time { return sim.Time(time.Now().UnixNano()) },
		// High DownAfter keeps the breaker out of the way: the owner is
		// tried (and fails) on every lookup, so the failover is visible.
		Frontend: FrontendConfig{ReplicateReports: true, DownAfter: 1000},
	})
	tracer := trace.NewTracer(trace.Config{SampleEvery: 1})
	cl.Trace(tracer)

	srv := phiwire.NewServer(cl.Frontend, nil)
	srv.SetTracer(tracer)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // returns on Close
	defer srv.Close()

	ctr := trace.NewTracer(trace.Config{SampleEvery: 1})
	c := phiwire.Dial(ln.Addr().String(), time.Second)
	defer c.Close()
	c.SetTracer(ctr)

	path := phi.PathKey("bottleneck")
	owner, _ := cl.Ring.OwnerAndFallback(path)
	cl.Frontend.RegisterPath(path, 10_000_000)

	// Warm both replicas through the wire, then kill the owner.
	if err := c.ReportStart(path); err != nil {
		t.Fatalf("report-start: %v", err)
	}
	if err := c.ReportEnd(path, phi.Report{
		Bytes: 100_000, Duration: 50 * sim.Millisecond,
		AvgRTT: 110 * sim.Millisecond, MinRTT: 100 * sim.Millisecond,
	}); err != nil {
		t.Fatalf("report-end: %v", err)
	}
	cl.Shards[owner].Crash()

	if _, err := c.Lookup(path); err != nil {
		t.Fatalf("failed-over lookup must succeed: %v", err)
	}

	// Client side: find the trace ID of the client.lookup span.
	lookupIDs := make(map[string]bool)
	for _, tc := range retainedTraces(ctr.Collector()) {
		for _, sp := range tc.Spans {
			if sp.Name == "client.lookup" {
				lookupIDs[tc.ID] = true
			}
		}
	}
	if len(lookupIDs) == 0 {
		t.Fatal("client recorded no lookup trace")
	}

	// Server side: the same trace must exist and cover every layer.
	var joined *trace.Trace
	for _, tc := range retainedTraces(tracer.Collector()) {
		if lookupIDs[tc.ID] && hasSpan(tc, "frontend.lookup") {
			joined = tc
			break
		}
	}
	if joined == nil {
		t.Fatalf("no server trace joined the client lookup (client IDs %v)", lookupIDs)
	}
	if !hasSpan(joined, "server.lookup") {
		t.Fatalf("trace missing the wire-server span: %+v", joined)
	}
	var sawFailover, sawOwnerCall, sawOtherCall bool
	for _, sp := range joined.Spans {
		switch sp.Name {
		case "frontend.lookup":
			if sp.Note == "failover" {
				sawFailover = true
			}
		case "shard.call":
			if sp.Shard == owner {
				sawOwnerCall = true
				if sp.Err == "" {
					t.Errorf("call to the crashed owner recorded no error")
				}
			} else {
				sawOtherCall = true
			}
		}
	}
	if !sawFailover {
		t.Errorf("frontend.lookup span lost the failover note: %+v", joined.Spans)
	}
	if !sawOwnerCall || !sawOtherCall {
		t.Errorf("shard.call spans incomplete (owner tried: %v, replica tried: %v): %+v",
			sawOwnerCall, sawOtherCall, joined.Spans)
	}
	// The trace carries a failover note, which marks it interesting: it
	// must be retained in the error class, where operators look first.
	if joined.Kept != "error" {
		t.Errorf("failover trace retained as %q, want error class", joined.Kept)
	}
}

func retainedTraces(c *trace.Collector) []*trace.Trace {
	var all []*trace.Trace
	all = append(all, c.Errors()...)
	all = append(all, c.Slowest()...)
	all = append(all, c.Sampled()...)
	return all
}

func hasSpan(tc *trace.Trace, name string) bool {
	for _, sp := range tc.Spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}
