package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/phi"
	"repro/internal/sim"
)

// The snapshot cycle must be safe against live traffic: reports keep
// flowing while snapshots are taken, written, and restored. Run under
// -race this exercises the locking between the data path (phi.Server's
// mutex), TakeSnapshot/ExportState, and RestoreSnapshot's wholesale
// server replacement. Functionally it asserts that a snapshot taken
// mid-stream is internally consistent (restorable, version-gated, right
// shard) and that concurrent restores never corrupt the serving state.
func TestSnapshotUnderConcurrentReports(t *testing.T) {
	clock := func() sim.Time { return sim.Time(time.Now().UnixNano()) }
	// Short window: the estimation window bounds per-path state, and the
	// writers below produce reports far faster than real traffic would —
	// without this, snapshots grow with every cycle and the test drags.
	s := NewShard(0, clock, phi.ServerConfig{Window: 50 * sim.Millisecond})
	dir := t.TempDir()

	const (
		writers = 4
		paths   = 8
		cycles  = 25
	)
	for p := 0; p < paths; p++ {
		s.RegisterPath(phi.PathKey(fmt.Sprintf("path-%d", p)), 10_000_000)
	}

	var (
		stop    atomic.Bool
		reports atomic.Uint64
		wg      sync.WaitGroup
	)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				path := phi.PathKey(fmt.Sprintf("path-%d", (w+i)%paths))
				// ErrShardDown windows during a concurrent restore are
				// expected; the test is about data races and snapshot
				// integrity, not availability.
				_ = s.ReportStart(path)
				_ = s.ReportEnd(path, phi.Report{
					Bytes:  50_000,
					AvgRTT: 120 * sim.Millisecond,
					MinRTT: 100 * sim.Millisecond,
				})
				reports.Add(2)
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}

	// Wait for the writers to actually start before cycling: on a loaded
	// machine the 25 snapshot cycles below can complete before the
	// scheduler ever runs a writer goroutine, and then the no-progress
	// assertion at the bottom fails without any race having occurred.
	for reports.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}

	// Snapshot cycle racing the writers: save to disk, reload, restore
	// in-memory — every combination the snapshotter and the fleet's
	// backup sync perform in production.
	for c := 0; c < cycles; c++ {
		if err := s.SaveSnapshot(dir); err != nil {
			t.Fatalf("cycle %d SaveSnapshot: %v", c, err)
		}
		snap, err := ReadSnapshotFile(SnapshotPath(dir, 0))
		if err != nil {
			t.Fatalf("cycle %d read back: %v", c, err)
		}
		if snap.Version != SnapshotVersion || snap.Shard != 0 {
			t.Fatalf("cycle %d: snapshot header %d/%d corrupt", c, snap.Version, snap.Shard)
		}
		// Each path's sample lists must be internally consistent — a torn
		// read would show, e.g., a reports slice mid-append.
		for _, ps := range snap.Paths {
			if ps.Path == "" {
				t.Fatalf("cycle %d: snapshot contains empty path key", c)
			}
			for _, r := range ps.Reports {
				if r.Bytes != 50_000 {
					t.Fatalf("cycle %d: torn report sample %+v", c, r)
				}
			}
		}
		if c%5 == 4 {
			// Restore mid-stream: the server is replaced wholesale while
			// writers hammer it.
			if err := s.RestoreSnapshot(snap); err != nil {
				t.Fatalf("cycle %d RestoreSnapshot: %v", c, err)
			}
		}
	}

	stop.Store(true)
	wg.Wait()
	if reports.Load() == 0 {
		t.Fatal("writers made no progress")
	}

	// The shard still serves coherently after the churn.
	if _, err := s.Lookup("path-0"); err != nil {
		t.Fatalf("Lookup after churn: %v", err)
	}
	if ok, err := s.LoadSnapshot(dir); err != nil || !ok {
		t.Fatalf("final LoadSnapshot: ok=%v err=%v", ok, err)
	}
}
