// Package cluster scales the Phi context server horizontally: a
// consistent-hash ring shards path keys across N independent phi.Server
// partitions, a failover-aware frontend routes lookups and reports to
// the owning shard (retrying once against the path's fallback replica),
// and a versioned snapshot/restore cycle lets a crashed shard come back
// with its u/q/n estimates intact instead of zeroed.
//
// The paper's design is one context server per administrative domain —
// but the domain is a "mega-computer" sourcing traffic for millions of
// users, so the repository of shared state must itself be distributed
// and survive node loss. The sharding is exact, not approximate: all
// state for one path lives on one shard, so a sharded cluster computes
// bit-identical congestion contexts to the monolithic server on the
// same traffic (cluster_test.go proves it against the simulator).
//
// Degradation is layered, mirroring Section 2.2.3's incremental-
// deployability argument: owner down → the fallback replica answers
// (warm if report replication is on); both down → the frontend returns
// an error and phi.Client silently falls back to policy defaults. A Phi
// sender is never worse off because the control plane is sick.
package cluster

import (
	"time"

	healthmon "repro/internal/health"
	"repro/internal/phi"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config assembles a cluster.
type Config struct {
	// Shards is the partition count (default 4).
	Shards int
	// VNodes is the virtual-node count per shard (default
	// DefaultVNodes).
	VNodes int
	// Clock feeds every shard's estimators; defaults to the wall clock.
	// All shards must share one clock or cross-shard estimates skew.
	Clock func() sim.Time
	// Server configures each shard's phi.Server.
	Server phi.ServerConfig
	// Frontend configures routing and failure handling.
	Frontend FrontendConfig
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Clock == nil {
		c.Clock = func() sim.Time { return sim.Time(time.Now().UnixNano()) }
	}
	return c
}

// Cluster is an assembled sharded context server: ring, shards, and the
// frontend that clients actually talk to.
type Cluster struct {
	Ring     *Ring
	Shards   []*Shard
	Frontend *Frontend
}

// New builds a cluster of in-process shards per cfg.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	ring := NewRing(cfg.Shards, cfg.VNodes)
	shards := make([]*Shard, cfg.Shards)
	conns := make([]Conn, cfg.Shards)
	for i := range shards {
		shards[i] = NewShard(i, cfg.Clock, cfg.Server)
		conns[i] = shards[i]
	}
	return &Cluster{
		Ring:     ring,
		Shards:   shards,
		Frontend: NewFrontend(ring, conns, cfg.Frontend),
	}
}

// Trace attaches one tracer to the frontend and every shard, so a
// request's routing span and its per-shard handling spans land in the
// same collector. Call before the cluster starts serving.
func (c *Cluster) Trace(t *trace.Tracer) {
	c.Frontend.SetTracer(t)
	for _, s := range c.Shards {
		s.SetTracer(t)
	}
}

// Health attaches the live health monitor to the frontend, which feeds
// it accepted operations, per-shard call results, routing decisions,
// and its breaker view. The monitor attaches at the frontend only —
// shard-level phi.Servers see the same operations and would double
// count. Call before the cluster starts serving.
func (c *Cluster) Health(m *healthmon.Monitor) {
	c.Frontend.SetHealth(m)
}

// Quality attaches one context-quality tracker to the frontend (which
// records degraded lookups as fallback coverage) and to every shard
// (which classify served lookups and pair predictions against reports),
// and registers each shard's path table as a freshness source for the
// stalest-paths list. Coverage therefore aggregates across the whole
// cluster. Call before the cluster starts serving.
func (c *Cluster) Quality(q *quality.Tracker) {
	c.Frontend.SetQuality(q)
	for _, s := range c.Shards {
		s.SetQuality(q)
		q.AddPathSource(s.Freshness)
	}
}

// SaveSnapshots writes every shard's snapshot under dir; the first error
// aborts (remaining shards keep their previous snapshots).
func (c *Cluster) SaveSnapshots(dir string) error {
	for _, s := range c.Shards {
		if err := s.SaveSnapshot(dir); err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshots rehydrates every shard that has a snapshot file under
// dir, returning how many were restored.
func (c *Cluster) LoadSnapshots(dir string) (restored int, err error) {
	for _, s := range c.Shards {
		ok, err := s.LoadSnapshot(dir)
		if err != nil {
			return restored, err
		}
		if ok {
			restored++
		}
	}
	return restored, nil
}

// StartSnapshotters starts a periodic snapshotter per shard; the
// returned stop function stops them all, each taking a final snapshot.
func (c *Cluster) StartSnapshotters(dir string, interval time.Duration, logf func(string, ...any)) (stop func()) {
	stops := make([]func(), len(c.Shards))
	for i, s := range c.Shards {
		stops[i] = s.StartSnapshotter(dir, interval, logf)
	}
	return func() {
		for _, st := range stops {
			st()
		}
	}
}

// SnapshotAges returns, per shard, the seconds since the last successful
// SaveSnapshot, or -1 for shards that have never snapshotted. The health
// monitor surfaces these at /debug/health so snapshot staleness is
// visible before a crash proves it.
func (c *Cluster) SnapshotAges() []float64 {
	ages := make([]float64, len(c.Shards))
	now := time.Now()
	for i, s := range c.Shards {
		at, ok := s.LastSnapshotAt()
		if !ok {
			ages[i] = -1
			continue
		}
		ages[i] = now.Sub(at).Seconds()
	}
	return ages
}

// Stats sums shard-level operation counters (lookups, reports) across
// live shards.
func (c *Cluster) Stats() (lookups, reports uint64) {
	for _, s := range c.Shards {
		l, r := s.Stats()
		lookups += l
		reports += r
	}
	return lookups, reports
}
