// Package fleet runs the sharded context server as a replicated,
// self-healing fleet: every ring shard becomes a primary/backup pair
// (Member) fed by synchronous report mirroring and periodic full-state
// snapshot sync, and an autonomous remediation controller polls health,
// classifies members, and repairs failures — promoting live backups over
// dead primaries, reseeding stale backups, and restarting members with
// no replica left.
//
// The paper's control plane serves one administrative domain's worth of
// shared congestion context, so losing it degrades every sender in the
// domain at once. cluster gives the data path layered degradation
// (fallback replicas, breakers, policy defaults); fleet closes the loop
// by making the degraded state transient without an operator: the same
// signals /debug/health exposes to humans drive the controller's
// promote/resync/restart decisions, rate-limited and audited.
package fleet

import (
	"strconv"
	"time"

	"repro/internal/cluster"
	healthmon "repro/internal/health"
	"repro/internal/phi"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	tlog "repro/internal/trace/log"
)

// Config assembles a fleet. The embedded cluster knobs mean a fleet is
// configured exactly like a cluster plus a Controller section.
type Config struct {
	// Shards is the member count (default 4).
	Shards int
	// VNodes is the virtual-node count per member (default
	// cluster.DefaultVNodes).
	VNodes int
	// Clock feeds every replica's estimators; defaults to the wall clock.
	Clock func() sim.Time
	// Server configures each replica's phi.Server. Primary and backup use
	// the same config — they must, or mirrored reports would produce
	// different estimates.
	Server phi.ServerConfig
	// Frontend configures routing and failure handling, unchanged from
	// plain clusters. ReplicateReports still works and layers under the
	// member-level backup: ring-fallback mirroring warms a *different*
	// member for the both-replicas-down case.
	Frontend cluster.FrontendConfig
	// Controller tunes the remediation loop.
	Controller ControllerConfig
	// ReplayBuffer bounds each member's mirrored-report catch-up buffer
	// (default DefaultReplayBuffer).
	ReplayBuffer int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Clock == nil {
		c.Clock = func() sim.Time { return sim.Time(time.Now().UnixNano()) }
	}
	return c
}

// Fleet is the assembled replicated cluster: ring, members, the frontend
// clients talk to, and the remediation controller.
type Fleet struct {
	Ring       *cluster.Ring
	Members    []*Member
	Frontend   *cluster.Frontend
	Controller *Controller
}

// New builds a fleet per cfg. Backups start live (empty mirrors of empty
// primaries), so replication is in force from the first report. The
// controller is constructed but not started — call Start.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	ring := cluster.NewRing(cfg.Shards, cfg.VNodes)
	members := make([]*Member, cfg.Shards)
	conns := make([]cluster.Conn, cfg.Shards)
	for i := range members {
		members[i] = NewMember(i, cfg.Clock, cfg.Server, cfg.ReplayBuffer)
		conns[i] = members[i]
	}
	fe := cluster.NewFrontend(ring, conns, cfg.Frontend)
	f := &Fleet{
		Ring:       ring,
		Members:    members,
		Frontend:   fe,
		Controller: NewController(members, fe, nil, cfg.Controller),
	}
	return f
}

// Start launches the remediation controller; the returned stop function
// halts it.
func (f *Fleet) Start() (stop func()) { return f.Controller.Start() }

// Instrument wires the fleet into reg: the frontend's routing metrics,
// per-replica context-server metrics, the shared snapshot metrics, and
// the phi_fleet_* set. Replicas are labelled {shard=i, replica=a|b} by
// physical object — the labels are stable across promotions, so a
// promotion shows as traffic moving from one replica series to the
// other, which is exactly what happened. A nil registry is a no-op.
func (f *Fleet) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	f.Frontend.SetMetrics(cluster.NewFrontendMetrics(reg, len(f.Members)))
	fm := NewMetrics(reg, len(f.Members))
	snap := cluster.NewSnapshotMetrics(reg)
	f.Controller.SetMetrics(fm)
	for i, m := range f.Members {
		m.metrics = fm
		// Primary() is replica "a" only at construction; the label
		// follows the object, not the role.
		a, b := m.Primary(), m.Backup()
		a.SetServerMetrics(phi.NewServerMetrics(reg,
			telemetry.Labels{"shard": strconv.Itoa(i), "replica": "a"}))
		a.SetSnapshotMetrics(snap)
		b.SetServerMetrics(phi.NewServerMetrics(reg,
			telemetry.Labels{"shard": strconv.Itoa(i), "replica": "b"}))
		b.SetSnapshotMetrics(snap)
	}
}

// Trace attaches one tracer to the frontend and every replica, so a
// request's routing span and its shard handling span land in the same
// collector whichever replica answered.
func (f *Fleet) Trace(t *trace.Tracer) {
	f.Frontend.SetTracer(t)
	for _, m := range f.Members {
		m.Primary().SetTracer(t)
		m.Backup().SetTracer(t)
	}
}

// Quality attaches one context-quality tracker across the fleet: the
// frontend records degraded lookups, each member's serving replica
// classifies lookups and pairs predictions, and each member's current
// primary is a freshness source for the stalest-paths list. Member
// wiring follows the role, not the object — a promotion moves the
// hooks to the new primary — so quality measurement survives failover.
// Call before the fleet starts serving.
func (f *Fleet) Quality(q *quality.Tracker) {
	f.Frontend.SetQuality(q)
	for _, m := range f.Members {
		m.SetQuality(q)
		m := m
		q.AddPathSource(func() []quality.PathFreshness { return m.Primary().Freshness() })
	}
}

// Health attaches the live health monitor: the frontend feeds it
// operations and breaker state (as in plain clusters), the fleet feeds
// it per-member snapshot ages, and the controller reads it for global
// context in /debug/fleet.
func (f *Fleet) Health(m *healthmon.Monitor) {
	f.Frontend.SetHealth(m)
	if m != nil {
		m.SetSnapshotAges(f.SnapshotAges)
	}
	f.Controller.monitor = m
}

// SetLogger attaches structured logging to the controller.
func (f *Fleet) SetLogger(l *tlog.Logger) { f.Controller.SetLogger(l) }

// SaveSnapshots writes every member's primary snapshot under dir (same
// file layout as a plain cluster, so fleet and non-fleet deployments
// share snapshot dirs).
func (f *Fleet) SaveSnapshots(dir string) error {
	for _, m := range f.Members {
		if err := m.SaveSnapshot(dir); err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshots rehydrates every member that has a snapshot file under
// dir (primary restored, backup reseeded), returning how many restored.
func (f *Fleet) LoadSnapshots(dir string) (restored int, err error) {
	for _, m := range f.Members {
		ok, err := m.LoadSnapshot(dir)
		if err != nil {
			return restored, err
		}
		if ok {
			restored++
		}
	}
	return restored, nil
}

// StartSnapshotters starts one periodic snapshotter goroutine per member.
// Unlike cluster's per-shard snapshotters this runs at the member level:
// the primary identity changes on promotion, so the ticker must resolve
// which replica to persist at each cycle, not bind one at start.
func (f *Fleet) StartSnapshotters(dir string, interval time.Duration, logf func(string, ...any)) (stop func()) {
	done := make(chan struct{})
	stops := make([]func(), 0, len(f.Members))
	for _, m := range f.Members {
		m := m
		ticker := time.NewTicker(interval)
		go func() {
			for {
				select {
				case <-done:
					return
				case <-ticker.C:
					if err := m.SaveSnapshot(dir); err != nil && logf != nil {
						logf("fleet: snapshot member %d: %v", m.Index, err)
					}
				}
			}
		}()
		stops = append(stops, ticker.Stop)
	}
	return func() {
		close(done)
		for _, s := range stops {
			s()
		}
		// Final snapshot on the way out, mirroring cluster's snapshotter.
		for _, m := range f.Members {
			if err := m.SaveSnapshot(dir); err != nil && logf != nil {
				logf("fleet: final snapshot member %d: %v", m.Index, err)
			}
		}
	}
}

// SnapshotAges returns, per member, the seconds since the last
// successful primary snapshot (-1 if never) — the fleet analogue of
// Cluster.SnapshotAges, feeding the same /debug/health field.
func (f *Fleet) SnapshotAges() []float64 {
	ages := make([]float64, len(f.Members))
	now := time.Now()
	for i, m := range f.Members {
		// Either replica may have taken the slot's newest snapshot (roles
		// swap on promotion); report the fresher of the two.
		at, ok := m.Primary().LastSnapshotAt()
		if bt, bok := m.Backup().LastSnapshotAt(); bok && (!ok || bt.After(at)) {
			at, ok = bt, true
		}
		if !ok {
			ages[i] = -1
			continue
		}
		ages[i] = now.Sub(at).Seconds()
	}
	return ages
}

// Stats sums lookup/report counters across member primaries.
func (f *Fleet) Stats() (lookups, reports uint64) {
	for _, m := range f.Members {
		l, r := m.Primary().Stats()
		lookups += l
		reports += r
	}
	return lookups, reports
}
