package fleet

import (
	"sync"
	"time"

	"repro/internal/cluster"
	healthmon "repro/internal/health"
	tlog "repro/internal/trace/log"
)

// Class is a member's health classification, in increasing severity.
type Class int

const (
	// ClassHealthy: primary up, backup live, frontend breaker closed.
	ClassHealthy Class = iota
	// ClassDegraded: serving but one fault away from an outage — primary
	// down with the backup answering, a backup that is down or behind, or
	// a frontend breaker held open against a healthy member.
	ClassDegraded
	// ClassDead: primary and backup both unable to serve.
	ClassDead
)

// String renders the class for audit entries and /debug/fleet.
func (c Class) String() string {
	switch c {
	case ClassHealthy:
		return "healthy"
	case ClassDegraded:
		return "degraded"
	default:
		return "dead"
	}
}

// ControllerConfig tunes the remediation control loop.
type ControllerConfig struct {
	// Poll is the loop interval for Start (default 1s). pollOnce can also
	// be driven directly (tests, or an external scheduler).
	Poll time.Duration
	// DegradedPolls is how many consecutive polls a member must look
	// unhealthy before the controller acts (default 2) — hysteresis, so a
	// single slow poll never triggers a promotion.
	DegradedPolls int
	// HealthyPolls is how many consecutive healthy polls close out an
	// outage (default 2) — the other half of the hysteresis, so the
	// remediation timer doesn't stop on one lucky poll.
	HealthyPolls int
	// MinActionGap is the per-member cool-down between remediation
	// actions (default 5s). Actions wanted sooner are deferred (audited,
	// counted, retried next poll).
	MinActionGap time.Duration
	// MaxActionsPerMinute bounds fleet-wide remediation rate (default 30)
	// so a correlated failure cannot turn the controller into a restart
	// storm.
	MaxActionsPerMinute int
	// SyncEvery is the periodic anti-drift full-sync interval per member
	// (default 30s; 0 disables periodic sync, syncs still happen as part
	// of remediation).
	SyncEvery time.Duration
	// SnapshotDir, when set, lets a restart rehydrate a member from its
	// newest on-disk snapshot instead of starting empty.
	SnapshotDir string
	// AuditCap bounds the in-memory audit ring (default 256).
	AuditCap int
	// Clock is the controller's time source (default time.Now); tests
	// inject a frozen clock to step hysteresis deterministically.
	Clock func() time.Time
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.Poll <= 0 {
		c.Poll = time.Second
	}
	if c.DegradedPolls <= 0 {
		c.DegradedPolls = 2
	}
	if c.HealthyPolls <= 0 {
		c.HealthyPolls = 2
	}
	if c.MinActionGap <= 0 {
		c.MinActionGap = 5 * time.Second
	}
	if c.MaxActionsPerMinute <= 0 {
		c.MaxActionsPerMinute = 30
	}
	if c.SyncEvery < 0 {
		c.SyncEvery = 0
	} else if c.SyncEvery == 0 {
		c.SyncEvery = 30 * time.Second
	}
	if c.AuditCap <= 0 {
		c.AuditCap = 256
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// AuditEntry is one controller decision, kept in the audit ring and
// served at /debug/fleet.
type AuditEntry struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Shard   int       `json:"shard"`
	Class   string    `json:"class"`
	Action  string    `json:"action"`
	Reason  string    `json:"reason"`
	Outcome string    `json:"outcome"` // ok | error: ... | deferred: ...
	DurMs   float64   `json:"dur_ms,omitempty"`
}

// memberState is the controller's per-member bookkeeping.
type memberState struct {
	class Class
	// consecutive polls observing the (raw) classification, for hysteresis.
	unhealthyPolls int
	healthyPolls   int
	lastAction     time.Time
	lastSync       time.Time
	// outageStart is when the member was first classified (debounced)
	// non-healthy; zero while healthy. Feeds the remediation timer.
	outageStart time.Time
}

// Controller is the autonomous remediation loop: it polls member and
// frontend state, classifies every member, and repairs what it can —
// promote a live backup over a dead primary, reseed stale backups,
// restart members with no replica left, and release frontend breakers
// that outlived the fault. All actions are rate-limited and audited.
type Controller struct {
	cfg      ControllerConfig
	members  []*Member
	frontend *cluster.Frontend
	monitor  *healthmon.Monitor // optional; adds global context to status
	metrics  *Metrics
	logger   *tlog.Logger

	mu       sync.Mutex
	states   []memberState
	audit    []AuditEntry
	auditSeq uint64
	// actionTimes holds the timestamps of recent actions for the global
	// rate limit (pruned to the trailing minute).
	actionTimes []time.Time

	polls       uint64
	actionsOK   uint64
	actionsErr  uint64
	actionsDefr uint64
}

// NewController builds a controller over a fleet's members and frontend.
// monitor may be nil.
func NewController(members []*Member, fe *cluster.Frontend, monitor *healthmon.Monitor, cfg ControllerConfig) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:      cfg,
		members:  members,
		frontend: fe,
		monitor:  monitor,
		states:   make([]memberState, len(members)),
	}
}

// SetMetrics attaches the fleet metric set. Call before Start.
func (c *Controller) SetMetrics(m *Metrics) { c.metrics = m }

// SetLogger attaches a structured logger (component "fleet").
func (c *Controller) SetLogger(l *tlog.Logger) {
	if l != nil {
		l = l.Component("fleet")
	}
	c.logger = l
}

// Start runs the poll loop in a goroutine until the returned stop
// function is called.
func (c *Controller) Start() (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(c.cfg.Poll)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.pollOnce()
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// classify computes a member's raw classification from its own status
// and the frontend's breaker view. Caller holds no locks.
func (c *Controller) classify(i int, st MemberStatus) (Class, string) {
	switch {
	case !st.PrimaryUp && !(st.BackupUp && st.BackupLive):
		return ClassDead, "primary and backup both unavailable"
	case !st.PrimaryUp:
		return ClassDegraded, "primary down, backup serving"
	case !st.BackupUp:
		return ClassDegraded, "backup down"
	case !st.BackupLive:
		return ClassDegraded, "backup behind (catch-up pending)"
	case c.frontend != nil && c.frontend.ShardDown(i):
		return ClassDegraded, "frontend breaker open on healthy member"
	default:
		return ClassHealthy, ""
	}
}

// pollOnce runs one full observe-classify-remediate cycle synchronously.
// Exposed (package-internal) as the unit the tests drive; Start just
// calls it on a ticker.
func (c *Controller) pollOnce() {
	now := c.cfg.Clock()
	c.mu.Lock()
	c.polls++
	c.mu.Unlock()
	if m := c.metrics; m != nil {
		m.Polls.Inc()
	}

	for i, mem := range c.members {
		st := mem.Status()
		raw, reason := c.classify(i, st)

		c.mu.Lock()
		ms := &c.states[i]
		// Debounce: the effective class only changes after the raw
		// observation repeats for the configured number of polls.
		if raw == ClassHealthy {
			ms.healthyPolls++
			ms.unhealthyPolls = 0
		} else {
			ms.unhealthyPolls++
			ms.healthyPolls = 0
		}
		prev := ms.class
		switch {
		case raw != ClassHealthy && ms.unhealthyPolls >= c.cfg.DegradedPolls:
			ms.class = raw
		case raw == ClassHealthy && ms.healthyPolls >= c.cfg.HealthyPolls:
			ms.class = ClassHealthy
		case raw == ClassDead:
			// A dead member is never debounced upward: both replicas
			// down means every request is failing right now.
			ms.class = ClassDead
		}
		class := ms.class

		if prev == ClassHealthy && class != ClassHealthy {
			ms.outageStart = now
		}
		if prev != ClassHealthy && class == ClassHealthy && !ms.outageStart.IsZero() {
			d := now.Sub(ms.outageStart)
			ms.outageStart = time.Time{}
			if m := c.metrics; m != nil {
				m.RemediateSeconds.Observe(d)
			}
			if l := c.logger; l != nil {
				l.Info("member remediated", "shard", i, "outage_s", d.Seconds())
			}
		}
		if m := c.metrics; m != nil && i < len(m.ClassGauge) {
			m.ClassGauge[i].Set(float64(class))
		}
		c.mu.Unlock()

		if class == ClassHealthy {
			c.maybePeriodicSync(i, mem, now)
			continue
		}
		c.remediate(i, mem, st, class, reason, now)
	}
}

// maybePeriodicSync runs the anti-drift full sync when a healthy member's
// last sync is older than SyncEvery.
func (c *Controller) maybePeriodicSync(i int, mem *Member, now time.Time) {
	if c.cfg.SyncEvery <= 0 {
		return
	}
	c.mu.Lock()
	due := now.Sub(c.states[i].lastSync) >= c.cfg.SyncEvery
	c.mu.Unlock()
	if !due {
		return
	}
	// Periodic syncs bypass MinActionGap (they are maintenance, not
	// remediation) but still count against the global rate limit — at
	// maintenance priority, so an aggressive sync cadence can never
	// starve fault remediation of action budget.
	if !c.admitGlobal(now, true) {
		return
	}
	start := time.Now()
	err := mem.SyncBackup()
	c.mu.Lock()
	c.states[i].lastSync = now
	c.mu.Unlock()
	c.record(i, ClassHealthy, "resync", "periodic anti-drift sync", err, start, now)
}

// remediate picks and executes the repair for a non-healthy member.
func (c *Controller) remediate(i int, mem *Member, st MemberStatus, class Class, reason string, now time.Time) {
	var action string
	switch {
	case class == ClassDead:
		action = "restart"
	case !st.PrimaryUp:
		action = "promote"
	case !st.BackupUp || !st.BackupLive:
		action = "resync"
	default:
		action = "reset_breaker"
	}

	// Hysteresis reached; now the rate limits decide whether to act.
	c.mu.Lock()
	ms := &c.states[i]
	if gap := now.Sub(ms.lastAction); gap < c.cfg.MinActionGap {
		c.actionsDefr++
		c.mu.Unlock()
		if m := c.metrics; m != nil {
			m.Deferred.Inc()
		}
		c.auditDeferred(i, class, action, reason, "per-member action gap", now)
		return
	}
	c.mu.Unlock()
	if !c.admitGlobal(now, false) {
		c.mu.Lock()
		c.actionsDefr++
		c.mu.Unlock()
		if m := c.metrics; m != nil {
			m.Deferred.Inc()
		}
		c.auditDeferred(i, class, action, reason, "global rate limit", now)
		return
	}

	c.mu.Lock()
	ms.lastAction = now
	c.mu.Unlock()

	start := time.Now()
	var err error
	switch action {
	case "restart":
		// Drain first: hold the frontend breaker open while the member
		// restarts so requests fail fast to ring-level degradation
		// instead of timing out against a rebuilding shard.
		if c.frontend != nil {
			c.frontend.Quarantine(i, c.cfg.Poll*time.Duration(c.cfg.DegradedPolls+1))
		}
		_, err = mem.RestartPrimary(c.cfg.SnapshotDir)
		if err == nil {
			err = mem.SyncBackup()
		}
		if err == nil && c.frontend != nil {
			c.frontend.ResetShard(i)
		}
	case "promote":
		err = mem.Promote()
		if err == nil {
			// Reseed the new backup (the dead ex-primary) behind the
			// promoted replica; RestoreSnapshot revives a down shard, so
			// the sync is the whole repair.
			err = mem.SyncBackup()
		}
		if err == nil && c.frontend != nil {
			// The breaker tripped against the dead primary; the promoted
			// backup serves the same slot, so reopen the fast path.
			c.frontend.ResetShard(i)
		}
	case "resync":
		err = mem.SyncBackup()
	case "reset_breaker":
		if c.frontend != nil {
			c.frontend.ResetShard(i)
		}
	}

	c.mu.Lock()
	c.states[i].lastSync = now // every action above ends in a fresh sync
	c.mu.Unlock()
	c.record(i, class, action, reason, err, start, now)
}

// admitGlobal enforces MaxActionsPerMinute; true means the caller may
// act (the slot is consumed). Maintenance work (periodic anti-drift
// syncs) is only admitted while under half the budget, so fault
// remediation — which may use the full budget — always has headroom
// even when the sync cadence alone would exceed the cap.
func (c *Controller) admitGlobal(now time.Time, maintenance bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cutoff := now.Add(-time.Minute)
	keep := c.actionTimes[:0]
	for _, t := range c.actionTimes {
		if t.After(cutoff) {
			keep = append(keep, t)
		}
	}
	c.actionTimes = keep
	limit := c.cfg.MaxActionsPerMinute
	if maintenance {
		limit = (limit + 1) / 2
	}
	if len(c.actionTimes) >= limit {
		return false
	}
	c.actionTimes = append(c.actionTimes, now)
	return true
}

// record audits one executed action and updates counters/metrics/logs.
func (c *Controller) record(i int, class Class, action, reason string, err error, start time.Time, now time.Time) {
	outcome := "ok"
	if err != nil {
		outcome = "error: " + err.Error()
	}
	dur := time.Since(start)

	c.mu.Lock()
	if err != nil {
		c.actionsErr++
	} else {
		c.actionsOK++
	}
	c.auditSeq++
	c.appendAudit(AuditEntry{
		Seq: c.auditSeq, Time: now, Shard: i, Class: class.String(),
		Action: action, Reason: reason, Outcome: outcome,
		DurMs: float64(dur) / float64(time.Millisecond),
	})
	c.mu.Unlock()

	if m := c.metrics; m != nil {
		m.action(action)
		if err != nil {
			m.ActionErrors.Inc()
		}
	}
	if l := c.logger; l != nil {
		if err != nil {
			l.Error("remediation failed", "shard", i, "class", class.String(),
				"action", action, "reason", reason, "err", err)
		} else {
			l.Info("remediation", "shard", i, "class", class.String(),
				"action", action, "reason", reason, "dur_ms", dur.Milliseconds())
		}
	}
}

// auditDeferred audits a rate-limited (not executed) action.
func (c *Controller) auditDeferred(i int, class Class, action, reason, why string, now time.Time) {
	c.mu.Lock()
	c.auditSeq++
	c.appendAudit(AuditEntry{
		Seq: c.auditSeq, Time: now, Shard: i, Class: class.String(),
		Action: action, Reason: reason, Outcome: "deferred: " + why,
	})
	c.mu.Unlock()
	if l := c.logger; l != nil {
		l.Warn("remediation deferred", "shard", i, "action", action, "why", why)
	}
}

// appendAudit adds to the bounded ring. Caller holds c.mu.
func (c *Controller) appendAudit(e AuditEntry) {
	if len(c.audit) >= c.cfg.AuditCap {
		copy(c.audit, c.audit[1:])
		c.audit = c.audit[:len(c.audit)-1]
	}
	c.audit = append(c.audit, e)
}

// ControllerStatus is the controller's view for /debug/fleet.
type ControllerStatus struct {
	Polls           uint64   `json:"polls"`
	ActionsOK       uint64   `json:"actions_ok"`
	ActionsFailed   uint64   `json:"actions_failed"`
	ActionsDeferred uint64   `json:"actions_deferred"`
	Classes         []string `json:"classes"`
	// Health is the attached live monitor's overall status ("ok",
	// "degraded", ...; empty when no monitor is attached) — the same
	// signal /debug/health serves, echoed here so one endpoint answers
	// "is the fleet converged AND is the workload healthy".
	Health string       `json:"health,omitempty"`
	Audit  []AuditEntry `json:"audit"`
}

// Status snapshots the controller: counters, debounced per-member
// classes, and the audit tail (newest last, up to n entries; n <= 0
// means the whole ring).
func (c *Controller) Status(n int) ControllerStatus {
	var health string
	if c.monitor != nil {
		health = c.monitor.Snapshot().Status
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ControllerStatus{
		Health:          health,
		Polls:           c.polls,
		ActionsOK:       c.actionsOK,
		ActionsFailed:   c.actionsErr,
		ActionsDeferred: c.actionsDefr,
	}
	for i := range c.states {
		st.Classes = append(st.Classes, c.states[i].class.String())
	}
	audit := c.audit
	if n > 0 && len(audit) > n {
		audit = audit[len(audit)-n:]
	}
	st.Audit = append([]AuditEntry(nil), audit...)
	return st
}

// Class returns member i's current debounced classification.
func (c *Controller) Class(i int) Class {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.states) {
		return ClassDead
	}
	return c.states[i].class
}
