package fleet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/phi"
)

// EquivalentStates checks whether two exported server states agree — the
// acceptance criterion for the promotion protocol: a backup that caught
// up via snapshot + mirrored-report replay must hold the same learned
// context as the primary it replaces.
//
// With exact set, every estimator field must match bit-for-bit; that is
// the frozen-clock (simulated time) contract, where primary and backup
// see identical report sequences at identical timestamps. With exact
// unset, report timestamps are allowed to differ (under the wall clock a
// mirrored report lands microseconds after the original, so timedReport
// times — and thus sub-millisecond qEWMA noise — can't match exactly)
// while the order-dependent structure still must: the same path set, the
// same start and report counts, the same byte totals, the same
// capacities, and minRTT/qEWMA within 5ms.
//
// Returns nil when equivalent, else an error naming the first
// divergence.
func EquivalentStates(a, b []phi.PathSnapshot, exact bool) error {
	if len(a) != len(b) {
		return fmt.Errorf("path count: %d vs %d", len(a), len(b))
	}
	byPath := func(s []phi.PathSnapshot) []phi.PathSnapshot {
		out := append([]phi.PathSnapshot(nil), s...)
		sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
		return out
	}
	as, bs := byPath(a), byPath(b)
	const tol = 5e6 // 5ms in sim.Time nanoseconds
	for i := range as {
		pa, pb := &as[i], &bs[i]
		if pa.Path != pb.Path {
			return fmt.Errorf("path set diverges at #%d: %v vs %v", i, pa.Path, pb.Path)
		}
		name := fmt.Sprintf("path %v", pa.Path)
		if pa.CapacityBps != pb.CapacityBps {
			return fmt.Errorf("%s: capacity %d vs %d", name, pa.CapacityBps, pb.CapacityBps)
		}
		if len(pa.Starts) != len(pb.Starts) {
			return fmt.Errorf("%s: %d vs %d starts", name, len(pa.Starts), len(pb.Starts))
		}
		if len(pa.Reports) != len(pb.Reports) {
			return fmt.Errorf("%s: %d vs %d reports", name, len(pa.Reports), len(pb.Reports))
		}
		var bytesA, bytesB int64
		for j := range pa.Reports {
			bytesA += pa.Reports[j].Bytes
			bytesB += pb.Reports[j].Bytes
		}
		if bytesA != bytesB {
			return fmt.Errorf("%s: report bytes %d vs %d", name, bytesA, bytesB)
		}
		if pa.QInit != pb.QInit {
			return fmt.Errorf("%s: qInit %v vs %v", name, pa.QInit, pb.QInit)
		}
		if exact {
			if pa.MinRTT != pb.MinRTT {
				return fmt.Errorf("%s: minRTT %d vs %d", name, pa.MinRTT, pb.MinRTT)
			}
			if pa.QEWMA != pb.QEWMA {
				return fmt.Errorf("%s: qEWMA %d vs %d", name, pa.QEWMA, pb.QEWMA)
			}
			if pa.MaxRateBps != pb.MaxRateBps {
				return fmt.Errorf("%s: maxRate %f vs %f", name, pa.MaxRateBps, pb.MaxRateBps)
			}
			for j := range pa.Starts {
				if pa.Starts[j] != pb.Starts[j] {
					return fmt.Errorf("%s: start[%d] %d vs %d", name, j, pa.Starts[j], pb.Starts[j])
				}
			}
			for j := range pa.Reports {
				if pa.Reports[j] != pb.Reports[j] {
					return fmt.Errorf("%s: report[%d] %+v vs %+v", name, j, pa.Reports[j], pb.Reports[j])
				}
			}
			continue
		}
		if d := float64(pa.MinRTT - pb.MinRTT); math.Abs(d) > tol {
			return fmt.Errorf("%s: minRTT differs by %.1fms", name, math.Abs(d)/1e6)
		}
		if d := float64(pa.QEWMA - pb.QEWMA); math.Abs(d) > tol {
			return fmt.Errorf("%s: qEWMA differs by %.1fms", name, math.Abs(d)/1e6)
		}
	}
	return nil
}
