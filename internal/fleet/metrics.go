package fleet

import (
	"strconv"

	"repro/internal/telemetry"
)

// Metrics is the fleet's telemetry set, shared by every member and the
// controller. All counters are process-cumulative; the per-member class
// gauges carry a shard label.
type Metrics struct {
	// Controller loop.
	Polls        *telemetry.Counter
	Actions      map[string]*telemetry.Counter // keyed by action name
	ActionErrors *telemetry.Counter
	Deferred     *telemetry.Counter // actions suppressed by rate limiting

	// Replication data path.
	Promotions    *telemetry.Counter
	BackupServed  *telemetry.Counter
	Mirrored      *telemetry.Counter
	MirrorErrors  *telemetry.Counter
	Replayed      *telemetry.Counter
	ReplayDropped *telemetry.Counter
	Syncs         *telemetry.Counter

	// Latency distributions.
	SyncSeconds      *telemetry.Histogram // full-state backup sync duration
	RemediateSeconds *telemetry.Histogram // outage detected -> member healthy again

	// ClassGauge[i] is member i's current classification as a number
	// (0 healthy, 1 degraded, 2 dead), so a dashboard can plot the fleet
	// state as a heat strip.
	ClassGauge []*telemetry.Gauge
}

// actionNames are the controller's remediation verbs, fixed so the
// phi_fleet_actions_total label set is stable.
var actionNames = []string{"promote", "resync", "restart", "reset_breaker"}

// NewMetrics registers the phi_fleet_* metric set for a fleet of n
// members on reg.
func NewMetrics(reg *telemetry.Registry, n int) *Metrics {
	m := &Metrics{
		Polls: reg.Counter("phi_fleet_polls_total",
			"Remediation controller poll cycles.", nil),
		Actions: make(map[string]*telemetry.Counter, len(actionNames)),
		ActionErrors: reg.Counter("phi_fleet_action_errors_total",
			"Remediation actions that failed.", nil),
		Deferred: reg.Counter("phi_fleet_actions_deferred_total",
			"Remediation actions suppressed by rate limiting.", nil),
		Promotions: reg.Counter("phi_fleet_promotions_total",
			"Backup shards promoted to primary.", nil),
		BackupServed: reg.Counter("phi_fleet_backup_served_total",
			"Operations answered by a backup while its primary was down.", nil),
		Mirrored: reg.Counter("phi_fleet_mirrored_reports_total",
			"Reports synchronously mirrored to live backups.", nil),
		MirrorErrors: reg.Counter("phi_fleet_mirror_errors_total",
			"Mirror attempts that failed (backup demoted to catch-up).", nil),
		Replayed: reg.Counter("phi_fleet_replayed_reports_total",
			"Buffered reports replayed into backups during catch-up.", nil),
		ReplayDropped: reg.Counter("phi_fleet_replay_dropped_total",
			"Buffered reports dropped to the replay-buffer cap.", nil),
		Syncs: reg.Counter("phi_fleet_syncs_total",
			"Completed full-state backup syncs.", nil),
		SyncSeconds: reg.Histogram("phi_fleet_sync_seconds",
			"Duration of full-state backup syncs.", nil),
		RemediateSeconds: reg.Histogram("phi_fleet_remediate_seconds",
			"Time from outage detection to the member classified healthy again.", nil),
	}
	for _, a := range actionNames {
		m.Actions[a] = reg.Counter("phi_fleet_actions_total",
			"Remediation actions taken, by action.", telemetry.Labels{"action": a})
	}
	m.ClassGauge = make([]*telemetry.Gauge, n)
	for i := range m.ClassGauge {
		m.ClassGauge[i] = reg.Gauge("phi_fleet_member_class",
			"Member classification: 0 healthy, 1 degraded, 2 dead.",
			telemetry.Labels{"shard": strconv.Itoa(i)})
	}
	return m
}

// action increments the counter for a named action; unknown names (never
// expected) fall through silently rather than panicking the controller.
func (m *Metrics) action(name string) {
	if m == nil {
		return
	}
	if c, ok := m.Actions[name]; ok {
		c.Inc()
	}
}
