package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/phi"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Errors surfaced by member operations (controller actions report them
// in the audit log; they never reach the data path).
var (
	// ErrNoLiveBackup means a promotion was requested but the backup is
	// down or has not caught up; the only remediation left is a restart.
	ErrNoLiveBackup = errors.New("fleet: no live backup to promote")
	// ErrPrimaryDown means a state sync was requested while the primary
	// (the copy of record) is down.
	ErrPrimaryDown = errors.New("fleet: primary down, nothing to sync from")
)

// reportKind discriminates the three replayable report operations.
type reportKind uint8

const (
	reportStart reportKind = iota
	reportEnd
	reportProgress
)

// reportRecord is one mirrored report in the catch-up buffer: everything
// needed to replay the operation into a backup that was being reseeded
// while the report arrived.
type reportRecord struct {
	seq  uint64
	kind reportKind
	path phi.PathKey
	rep  phi.Report
}

// DefaultReplayBuffer bounds the mirrored-report catch-up buffer. Past
// it the oldest entries are dropped and counted; a full resync (which
// starts from a fresh snapshot anyway) clears the debt.
const DefaultReplayBuffer = 8192

// Member is one replicated slot of the fleet: a primary shard serving
// the slot's keyspace and a live backup shadowing it. It implements
// cluster.Conn (and the traced facet), so the frontend routes to it
// exactly as it would to a bare shard — the replication is invisible to
// the routing layer until it saves a request.
//
// Replication protocol:
//
//   - Every report delivered to the primary is synchronously mirrored to
//     the backup — the same mirroring discipline as the frontend's
//     ReplicateReports, applied to a dedicated whole-keyspace replica
//     instead of the per-path ring fallback.
//   - While the backup is down or being reseeded, mirrored reports are
//     buffered (bounded, counted drops) and replayed during catch-up.
//   - Periodic full-state sync transfers the primary's versioned
//     Snapshot into the backup and replays the reports that arrived
//     mid-transfer, so drift from missed mirrors is bounded by the sync
//     interval.
//   - If the primary dies, lookups and reports are served by the live
//     backup immediately (no request is lost waiting for the
//     controller); the controller then promotes the backup to primary
//     and reseeds a fresh backup behind it.
type Member struct {
	// Index is the member's slot in the ring, fixed at construction.
	Index int

	mu      sync.Mutex
	primary *cluster.Shard
	backup  *cluster.Shard
	// backupLive is true while the backup is caught up and receiving
	// synchronous mirrors; false from the moment a mirror fails (or a
	// reseed starts) until the next successful sync.
	backupLive bool
	// seq numbers every report accepted by the member, so catch-up can
	// replay exactly the records a snapshot transfer did not cover.
	seq uint64
	// pending buffers mirrored reports while the backup is not live.
	pending    []reportRecord
	pendingCap int

	// Counters are atomics so Status never blocks the data path.
	backupServed  atomic.Uint64 // operations the backup answered while the primary was down
	mirrored      atomic.Uint64 // reports applied to the live backup
	mirrorErrs    atomic.Uint64 // mirror attempts that failed (backup demoted to not-live)
	replayed      atomic.Uint64 // buffered reports replayed during catch-up
	replayDropped atomic.Uint64 // buffered reports lost to the cap
	promotions    atomic.Uint64
	syncs         atomic.Uint64
	lastSync      atomic.Int64 // unix nanos of the last successful full sync

	metrics *Metrics // shared fleet metric set (nil = uninstrumented)

	// quality is the context-quality tracker attached to whichever
	// replica is serving as primary (nil = unmeasured). Only the primary
	// carries the hooks: mirrored reports reaching the backup are copies
	// of evidence the primary already scored, and double-observing them
	// would skew pairing and drift counts.
	quality *quality.Tracker
}

// NewMember builds slot index with a primary and an (empty) backup. The
// backup starts live: both replicas are empty, so they are trivially in
// sync and mirroring begins with the first report.
func NewMember(index int, clock func() sim.Time, cfg phi.ServerConfig, replayBuffer int) *Member {
	if replayBuffer <= 0 {
		replayBuffer = DefaultReplayBuffer
	}
	m := &Member{
		Index:      index,
		primary:    cluster.NewShard(index, clock, cfg),
		backup:     cluster.NewShard(index, clock, cfg),
		backupLive: true,
		pendingCap: replayBuffer,
	}
	return m
}

// replicas returns the current primary/backup pair and the backup's
// liveness under a consistent read.
func (m *Member) replicas() (primary, backup *cluster.Shard, live bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.primary, m.backup, m.backupLive
}

// Primary returns the shard currently serving as primary (it changes on
// promotion). Exposed for snapshotters and debug handlers.
func (m *Member) Primary() *cluster.Shard {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.primary
}

// Backup returns the shard currently standing by as backup.
func (m *Member) Backup() *cluster.Shard {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.backup
}

// SetQuality attaches (or detaches, with nil) the context-quality
// tracker to the member's current primary. Promotions re-apply it to
// the new primary and detach it from the demoted replica, so the
// measurement follows the serving role across failovers.
func (m *Member) SetQuality(q *quality.Tracker) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.quality = q
	m.primary.SetQuality(q)
	m.backup.SetQuality(nil)
}

// Lookup implements cluster.Conn: the primary answers; if it is down and
// the backup is live, the backup answers instead — a crashed primary
// costs zero failed lookups, not a failover round trip at the frontend.
func (m *Member) Lookup(path phi.PathKey) (phi.Context, error) {
	p, b, live := m.replicas()
	ctx, err := p.Lookup(path)
	if err == nil {
		return ctx, nil
	}
	if errors.Is(err, cluster.ErrShardDown) && live {
		if bctx, berr := b.Lookup(path); berr == nil {
			m.backupServed.Add(1)
			if mt := m.metrics; mt != nil {
				mt.BackupServed.Inc()
			}
			return bctx, nil
		}
	}
	return ctx, err
}

// LookupSpan implements cluster.TracedConn with the same failover.
func (m *Member) LookupSpan(sc trace.SpanContext, path phi.PathKey) (phi.Context, error) {
	p, b, live := m.replicas()
	ctx, err := p.LookupSpan(sc, path)
	if err == nil {
		return ctx, nil
	}
	if errors.Is(err, cluster.ErrShardDown) && live {
		if bctx, berr := b.LookupSpan(sc, path); berr == nil {
			m.backupServed.Add(1)
			if mt := m.metrics; mt != nil {
				mt.BackupServed.Inc()
			}
			return bctx, nil
		}
	}
	return ctx, err
}

// applyReport dispatches one report operation to a shard.
func applyReport(s *cluster.Shard, kind reportKind, path phi.PathKey, rep phi.Report) error {
	switch kind {
	case reportStart:
		return s.ReportStart(path)
	case reportEnd:
		return s.ReportEnd(path, rep)
	default:
		return s.ReportProgress(path, rep)
	}
}

// applyReportSpan is applyReport through the traced facet.
func applyReportSpan(s *cluster.Shard, sc trace.SpanContext, kind reportKind, path phi.PathKey, rep phi.Report) error {
	switch kind {
	case reportStart:
		return s.ReportStartSpan(sc, path)
	case reportEnd:
		return s.ReportEndSpan(sc, path, rep)
	default:
		return s.ReportProgressSpan(sc, path, rep)
	}
}

// deliver routes one report: primary first (mirroring to the backup),
// live backup if the primary is down. The whole operation holds m.mu so
// the mirror stream reaching the backup is the exact sequence the
// primary applied — order is what makes the replicas equivalent.
func (m *Member) deliver(sc trace.SpanContext, kind reportKind, path phi.PathKey, rep phi.Report) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++

	apply := func(s *cluster.Shard) error {
		if sc.Valid() {
			return applyReportSpan(s, sc, kind, path, rep)
		}
		return applyReport(s, kind, path, rep)
	}

	if err := apply(m.primary); err != nil {
		if !errors.Is(err, cluster.ErrShardDown) {
			return err
		}
		// Primary down: the live backup is the copy of record until the
		// controller promotes it. No mirroring — it IS the only copy.
		if !m.backupLive {
			return err
		}
		if berr := apply(m.backup); berr != nil {
			return err // report the primary's error; the backup just died too
		}
		m.backupServed.Add(1)
		if mt := m.metrics; mt != nil {
			mt.BackupServed.Inc()
		}
		return nil
	}

	// Mirror to the backup; failures demote it to not-live (buffering
	// starts) but never fail the report — replication is best-effort
	// between syncs, exactly like the frontend's report mirroring.
	if m.backupLive {
		if merr := apply(m.backup); merr != nil {
			m.mirrorErrs.Add(1)
			m.backupLive = false
			if mt := m.metrics; mt != nil {
				mt.MirrorErrors.Inc()
			}
			m.buffer(kind, path, rep)
		} else {
			m.mirrored.Add(1)
			if mt := m.metrics; mt != nil {
				mt.Mirrored.Inc()
			}
		}
		return nil
	}
	m.buffer(kind, path, rep)
	return nil
}

// buffer queues one mirrored report for catch-up replay. Caller holds m.mu.
func (m *Member) buffer(kind reportKind, path phi.PathKey, rep phi.Report) {
	if len(m.pending) >= m.pendingCap {
		// Drop oldest: catch-up starts from a fresh snapshot, so losing
		// old buffered entries only matters if the snapshot predates
		// them — and a resync always snapshots at current seq.
		copy(m.pending, m.pending[1:])
		m.pending = m.pending[:len(m.pending)-1]
		m.replayDropped.Add(1)
		if mt := m.metrics; mt != nil {
			mt.ReplayDropped.Inc()
		}
	}
	m.pending = append(m.pending, reportRecord{seq: m.seq, kind: kind, path: path, rep: rep})
}

// ReportStart implements cluster.Conn.
func (m *Member) ReportStart(path phi.PathKey) error {
	return m.deliver(trace.SpanContext{}, reportStart, path, phi.Report{})
}

// ReportEnd implements cluster.Conn.
func (m *Member) ReportEnd(path phi.PathKey, r phi.Report) error {
	return m.deliver(trace.SpanContext{}, reportEnd, path, r)
}

// ReportProgress implements cluster.Conn.
func (m *Member) ReportProgress(path phi.PathKey, r phi.Report) error {
	return m.deliver(trace.SpanContext{}, reportProgress, path, r)
}

// ReportStartSpan implements cluster.TracedConn.
func (m *Member) ReportStartSpan(sc trace.SpanContext, path phi.PathKey) error {
	return m.deliver(sc, reportStart, path, phi.Report{})
}

// ReportEndSpan implements cluster.TracedConn.
func (m *Member) ReportEndSpan(sc trace.SpanContext, path phi.PathKey, r phi.Report) error {
	return m.deliver(sc, reportEnd, path, r)
}

// ReportProgressSpan implements cluster.TracedConn.
func (m *Member) ReportProgressSpan(sc trace.SpanContext, path phi.PathKey, r phi.Report) error {
	return m.deliver(sc, reportProgress, path, r)
}

// RegisterPath declares a path capacity on both replicas, so a promoted
// backup computes calibrated utilization exactly like the primary did.
func (m *Member) RegisterPath(path phi.PathKey, capacityBps int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.primary.RegisterPath(path, capacityBps)
	m.backup.RegisterPath(path, capacityBps)
}

// Promote swaps the live backup in as primary — the failover half of the
// promotion protocol. The dead ex-primary becomes the (down) backup
// slot; SyncBackup reseeds it from the new primary. Fails if the backup
// is down or was not caught up (promoting a stale replica would serve
// wrong context silently, which is worse than degrading loudly).
func (m *Member) Promote() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.backup.Down() || !m.backupLive {
		return ErrNoLiveBackup
	}
	m.primary, m.backup = m.backup, m.primary
	// The new backup (the dead ex-primary) has nothing; buffered entries
	// were destined for the promoted replica, which already has them.
	m.backupLive = false
	m.pending = m.pending[:0]
	// Quality hooks follow the serving role.
	m.primary.SetQuality(m.quality)
	m.backup.SetQuality(nil)
	m.promotions.Add(1)
	if mt := m.metrics; mt != nil {
		mt.Promotions.Inc()
	}
	return nil
}

// SyncBackup is the full-state catch-up: transfer the primary's
// versioned snapshot into the backup (restarting it if it was down),
// then replay the reports that arrived while the transfer ran. On
// return the backup is live and mirroring resumes. This one routine
// serves three roles: the periodic anti-drift sync, the reseed after a
// promotion, and the rebuild after a backup crash.
func (m *Member) SyncBackup() error {
	m.mu.Lock()
	if m.primary.Down() {
		m.mu.Unlock()
		return ErrPrimaryDown
	}
	// Snapshot at the current seq: every buffered entry at or below it
	// is inside the snapshot already, so only records buffered after
	// this instant need replay.
	snap := m.primary.TakeSnapshot()
	m.pending = m.pending[:0]
	m.backupLive = false // mirrors buffer into pending from here on
	backup := m.backup
	m.mu.Unlock()

	start := time.Now()
	// Restore outside the lock: a large keyspace transfer must not stall
	// the data path (reports keep flowing, buffering into pending).
	if err := backup.RestoreSnapshot(snap); err != nil {
		return fmt.Errorf("fleet: reseed backup %d: %w", m.Index, err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range m.pending {
		if err := applyReport(backup, r.kind, r.path, r.rep); err != nil {
			// The backup died mid-replay; leave it not-live for the
			// controller's next pass.
			return fmt.Errorf("fleet: replay into backup %d: %w", m.Index, err)
		}
		m.replayed.Add(1)
		if mt := m.metrics; mt != nil {
			mt.Replayed.Inc()
		}
	}
	m.pending = m.pending[:0]
	m.backupLive = true
	m.syncs.Add(1)
	m.lastSync.Store(time.Now().UnixNano())
	if mt := m.metrics; mt != nil {
		mt.Syncs.Inc()
		mt.SyncSeconds.Observe(time.Since(start))
	}
	return nil
}

// RestartPrimary brings a dead primary back — the last-resort
// remediation when backup and primary are both gone. State comes from
// the newest on-disk snapshot under snapDir when one exists ("" or a
// missing/corrupt file restarts empty; losing the window of state since
// the last snapshot beats staying down). Returns whether disk state was
// restored.
func (m *Member) RestartPrimary(snapDir string) (restored bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.primary.Down() {
		return false, nil
	}
	if snapDir != "" {
		ok, lerr := m.primary.LoadSnapshot(snapDir)
		if lerr == nil && ok {
			restored = true
		}
		err = lerr // reported to the audit log; empty restart continues
	}
	if m.primary.Down() {
		m.primary.Restart()
	}
	// Whatever the backup held predates the outage decision; reseed.
	m.backupLive = false
	m.pending = m.pending[:0]
	return restored, err
}

// KillPrimary crashes the current primary (chaos injection).
func (m *Member) KillPrimary() { m.Primary().Crash() }

// KillBackup crashes the current backup (chaos injection). The next
// mirror attempt demotes it to not-live and buffering starts.
func (m *Member) KillBackup() { m.Backup().Crash() }

// SaveSnapshot persists the current primary's state under dir in the
// standard per-shard snapshot format (the same file a plain cluster
// writes, so fleet and non-fleet deployments share snapshot dirs).
func (m *Member) SaveSnapshot(dir string) error { return m.Primary().SaveSnapshot(dir) }

// LoadSnapshot rehydrates the primary from its file under dir, then
// reseeds the backup so both replicas restart warm.
func (m *Member) LoadSnapshot(dir string) (bool, error) {
	ok, err := m.Primary().LoadSnapshot(dir)
	if err != nil || !ok {
		return ok, err
	}
	return true, m.SyncBackup()
}

// MemberStatus is one member's instantaneous view, served at /debug/fleet.
type MemberStatus struct {
	Index        int  `json:"index"`
	PrimaryUp    bool `json:"primary_up"`
	BackupUp     bool `json:"backup_up"`
	BackupLive   bool `json:"backup_live"` // caught up + receiving mirrors
	PrimaryPaths int  `json:"primary_paths"`
	BackupPaths  int  `json:"backup_paths"`

	Promotions    uint64 `json:"promotions"`
	BackupServed  uint64 `json:"backup_served"`
	Mirrored      uint64 `json:"mirrored_reports"`
	MirrorErrors  uint64 `json:"mirror_errors"`
	Replayed      uint64 `json:"replayed_reports"`
	PendingReplay int    `json:"pending_replay"`
	ReplayDropped uint64 `json:"replay_dropped"`
	Syncs         uint64 `json:"syncs"`
	// LastSyncAgeS is seconds since the last successful full sync, -1 if
	// none yet.
	LastSyncAgeS float64 `json:"last_sync_age_s"`
}

// Status snapshots the member.
func (m *Member) Status() MemberStatus {
	m.mu.Lock()
	primary, backup, live := m.primary, m.backup, m.backupLive
	pending := len(m.pending)
	m.mu.Unlock()

	st := MemberStatus{
		Index:         m.Index,
		PrimaryUp:     !primary.Down(),
		BackupUp:      !backup.Down(),
		BackupLive:    live,
		PrimaryPaths:  primary.PathCount(),
		BackupPaths:   backup.PathCount(),
		Promotions:    m.promotions.Load(),
		BackupServed:  m.backupServed.Load(),
		Mirrored:      m.mirrored.Load(),
		MirrorErrors:  m.mirrorErrs.Load(),
		Replayed:      m.replayed.Load(),
		PendingReplay: pending,
		ReplayDropped: m.replayDropped.Load(),
		Syncs:         m.syncs.Load(),
		LastSyncAgeS:  -1,
	}
	if ns := m.lastSync.Load(); ns != 0 {
		st.LastSyncAgeS = time.Since(time.Unix(0, ns)).Seconds()
	}
	return st
}
