package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/phi"
	"repro/internal/quality"
	"repro/internal/sim"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) time.Duration {
	t.Helper()
	start := time.Now()
	deadline := start.Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return time.Since(start)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
	return 0
}

// memberHealthy is the chaos harness's convergence predicate: both
// replicas up, backup caught up, controller class healthy, breaker
// closed.
func memberHealthy(f *Fleet, i int) bool {
	st := f.Members[i].Status()
	return st.PrimaryUp && st.BackupUp && st.BackupLive &&
		f.Controller.Class(i) == ClassHealthy && !f.Frontend.ShardDown(i)
}

// TestChaosRemediation is the package-level chaos drill the phi-load
// -chaos harness reproduces over the wire: concurrent lifecycles flow
// through the frontend while primaries are killed on a schedule, the
// controller alone repairs each failure, and afterwards we assert the
// acceptance criteria — zero lost lifecycles, every remediation inside
// the bound, and promoted replicas state-equivalent to their backups.
func TestChaosRemediation(t *testing.T) {
	const (
		shards       = 4
		workers      = 8
		kills        = 3
		killEvery    = 150 * time.Millisecond
		remediateMax = 5 * time.Second
	)
	f := New(Config{
		Shards: shards,
		Controller: ControllerConfig{
			Poll:                5 * time.Millisecond,
			DegradedPolls:       2,
			HealthyPolls:        2,
			MinActionGap:        20 * time.Millisecond,
			MaxActionsPerMinute: 1000,
			SyncEvery:           200 * time.Millisecond,
		},
	})
	stop := f.Start()
	var stopOnce sync.Once
	stopCtl := func() { stopOnce.Do(stop) }
	defer stopCtl()

	// Concurrent lifecycles: each worker owns one path and loops
	// lookup -> report_start -> report_end. Any error is a lost
	// lifecycle.
	var (
		errs   atomic.Uint64
		ops    atomic.Uint64
		stopLd = make(chan struct{})
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		path := phi.PathKey(fmt.Sprintf("chaos-path-%d", w))
		f.Frontend.RegisterPath(path, 10_000_000)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopLd:
					return
				default:
				}
				if _, err := f.Frontend.Lookup(path); err != nil {
					errs.Add(1)
				}
				if err := f.Frontend.ReportStart(path); err != nil {
					errs.Add(1)
				}
				if err := f.Frontend.ReportEnd(path, phi.Report{
					Bytes: 50_000, AvgRTT: 120 * sim.Millisecond, MinRTT: 100 * sim.Millisecond,
				}); err != nil {
					errs.Add(1)
				}
				ops.Add(3)
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// Kill schedule: round-robin primaries, one fault at a time, only
	// against converged members (single-fault tolerance is the contract;
	// overlapping faults degrade gracefully but are the frontend's
	// fallback layer's job, exercised elsewhere).
	for k := 0; k < kills; k++ {
		victim := k % shards
		waitFor(t, remediateMax, fmt.Sprintf("member %d converged pre-kill", victim),
			func() bool { return memberHealthy(f, victim) })
		f.Members[victim].KillPrimary()
		took := waitFor(t, remediateMax, fmt.Sprintf("member %d remediated", victim),
			func() bool { return memberHealthy(f, victim) })
		t.Logf("kill %d: member %d auto-remediated in %v", k, victim, took)
		time.Sleep(killEvery)
	}

	close(stopLd)
	wg.Wait()

	if got := errs.Load(); got != 0 {
		t.Fatalf("%d lost lifecycles out of %d ops (want 0)", got, ops.Load())
	}
	if st := f.Frontend.Stats(); st.Degraded != 0 {
		t.Fatalf("frontend degraded %d operations to policy defaults", st.Degraded)
	}

	// State equivalence after catch-up: with load stopped, every member's
	// promoted/reseeded backup must hold the same learned context as its
	// primary (relaxed comparison: mirrored report timestamps differ by
	// the wall-clock mirror latency).
	for i := range f.Members {
		waitFor(t, remediateMax, fmt.Sprintf("member %d final convergence", i),
			func() bool { return memberHealthy(f, i) })
	}
	stopCtl() // freeze the controller so syncs stop racing the comparison
	for i, m := range f.Members {
		if !m.Status().BackupLive {
			continue // backup mid-reseed when the controller froze
		}
		if err := EquivalentStates(m.Primary().Export(), m.Backup().Export(), false); err != nil {
			t.Errorf("member %d replicas diverged after chaos: %v", i, err)
		}
	}

	// Every kill shows up in the audit trail with a successful action.
	promotes := 0
	for _, e := range f.Controller.Status(0).Audit {
		if e.Action == "promote" && e.Outcome == "ok" {
			promotes++
		}
	}
	if promotes < kills {
		t.Errorf("audit shows %d promotions, want >= %d", promotes, kills)
	}
}

// freshnessFor pulls one path's per-source freshness out of the quality
// tracker's aggregated view (the same poll /debug/context serves). A
// replicated path appears once per member holding it — the fallback
// replica legitimately reports "never updated" — so entries are merged
// field-wise, keeping the freshest evidence per source.
func freshnessFor(q *quality.Tracker, path string) (quality.PathFreshness, bool) {
	merged := quality.PathFreshness{Path: path, AgeActiveNs: -1, AgePassiveNs: -1}
	found := false
	for _, pf := range q.Snapshot().StalestPaths {
		if pf.Path != path {
			continue
		}
		found = true
		if a := int64(pf.AgeActiveS * 1e9); a >= 0 && (merged.AgeActiveNs < 0 || a < merged.AgeActiveNs) {
			merged.AgeActiveNs = a
		}
		if p := int64(pf.AgePassiveS * 1e9); p >= 0 && (merged.AgePassiveNs < 0 || p < merged.AgePassiveNs) {
			merged.AgePassiveNs = p
		}
	}
	return merged, found
}

// seedQualityPath drives lifecycles carrying both evidence sources
// through the frontend and returns the member that owns the path.
func seedQualityPath(t *testing.T, f *Fleet, path phi.PathKey) *Member {
	t.Helper()
	f.Frontend.RegisterPath(path, 10_000_000)
	for i := 0; i < 6; i++ {
		if _, err := f.Frontend.Lookup(path); err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if err := f.Frontend.ReportStart(path); err != nil {
			t.Fatalf("report start %d: %v", i, err)
		}
		rep := phi.Report{
			Bytes:  50_000,
			AvgRTT: 120 * sim.Millisecond,
			MinRTT: 100 * sim.Millisecond,
		}
		if i%2 == 1 {
			rep.Source = phi.SourcePassive
		}
		if err := f.Frontend.ReportEnd(path, rep); err != nil {
			t.Fatalf("report end %d: %v", i, err)
		}
	}
	// The owner actually received the reports; the fallback replica also
	// registered the path but has never-updated freshness.
	for _, m := range f.Members {
		for _, pf := range m.Primary().Freshness() {
			if pf.Path == string(path) && pf.AgeActiveNs >= 0 {
				return m
			}
		}
	}
	t.Fatalf("no member owns %q", path)
	return nil
}

// TestQualityMetadataSurvivesPromotion kills a primary and promotes its
// backup, then asserts the quality layer's view is unbroken: the
// promoted replica still carries per-source freshness for the path
// (mirrored via snapshot+replay), the tracker's aggregated freshness
// poll agrees with what it reported before the failover, and coverage
// hooks keep firing on the new primary.
func TestQualityMetadataSurvivesPromotion(t *testing.T) {
	f := New(Config{Shards: 2})
	q := quality.New(quality.Config{})
	f.Quality(q)

	path := phi.PathKey("quality-chaos-path")
	m := seedQualityPath(t, f, path)
	if err := m.SyncBackup(); err != nil {
		t.Fatalf("SyncBackup: %v", err)
	}

	before, ok := freshnessFor(q, string(path))
	if !ok {
		t.Fatalf("tracker has no freshness for %q before failover", path)
	}
	if before.AgeActiveNs < 0 || before.AgePassiveNs < 0 {
		t.Fatalf("expected both sources seen before failover, got %+v", before)
	}

	m.KillPrimary()
	if err := m.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}

	after, ok := freshnessFor(q, string(path))
	if !ok {
		t.Fatalf("tracker lost freshness for %q after promotion", path)
	}
	// Ages are wall-clock relative; allow generous slack for test runtime
	// but both sources must still be known and recent on the promoted
	// replica — a dropped lastActive/lastPassive would read as "never".
	const slack = int64(5 * time.Second)
	if after.AgeActiveNs < 0 || after.AgeActiveNs > before.AgeActiveNs+slack {
		t.Errorf("active freshness diverged across promotion: before %d ns, after %d ns",
			before.AgeActiveNs, after.AgeActiveNs)
	}
	if after.AgePassiveNs < 0 || after.AgePassiveNs > before.AgePassiveNs+slack {
		t.Errorf("passive freshness diverged across promotion: before %d ns, after %d ns",
			before.AgePassiveNs, after.AgePassiveNs)
	}

	// The promoted primary must classify lookups (quality hooks follow
	// the serving role — a promoted replica that stopped reporting
	// coverage would silently blind the observability layer).
	f0, s0, fb0 := q.CoverageCounts()
	if _, err := m.Lookup(path); err != nil {
		t.Fatalf("lookup after promotion: %v", err)
	}
	f1, s1, fb1 := q.CoverageCounts()
	if f1+s1+fb1 != f0+s0+fb0+1 {
		t.Errorf("promoted primary did not classify the lookup: before %d/%d/%d after %d/%d/%d",
			f0, s0, fb0, f1, s1, fb1)
	}
}

// TestQualityMetadataSurvivesCrashRestore snapshots a primary to disk,
// crashes it, and restores from the snapshot — the crash/restore leg of
// the same guarantee: per-path freshness and source metadata round-trip
// through the on-disk format, and the tracker's poll sees the restored
// state.
func TestQualityMetadataSurvivesCrashRestore(t *testing.T) {
	f := New(Config{Shards: 2})
	q := quality.New(quality.Config{})
	f.Quality(q)

	path := phi.PathKey("quality-restore-path")
	m := seedQualityPath(t, f, path)

	dir := t.TempDir()
	if err := m.SaveSnapshot(dir); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	before, ok := freshnessFor(q, string(path))
	if !ok || before.AgeActiveNs < 0 || before.AgePassiveNs < 0 {
		t.Fatalf("incomplete freshness before crash: %+v (ok=%v)", before, ok)
	}

	m.KillPrimary()
	restored, err := m.RestartPrimary(dir)
	if err != nil || !restored {
		t.Fatalf("RestartPrimary: restored=%v err=%v", restored, err)
	}

	after, ok := freshnessFor(q, string(path))
	if !ok {
		t.Fatalf("tracker lost freshness for %q after restore", path)
	}
	const slack = int64(5 * time.Second)
	if after.AgeActiveNs < 0 || after.AgeActiveNs > before.AgeActiveNs+slack {
		t.Errorf("active freshness diverged across restore: before %d ns, after %d ns",
			before.AgeActiveNs, after.AgeActiveNs)
	}
	if after.AgePassiveNs < 0 || after.AgePassiveNs > before.AgePassiveNs+slack {
		t.Errorf("passive freshness diverged across restore: before %d ns, after %d ns",
			before.AgePassiveNs, after.AgePassiveNs)
	}

	// Restored primary still classifies lookups.
	f0, s0, fb0 := q.CoverageCounts()
	if _, err := m.Lookup(path); err != nil {
		t.Fatalf("lookup after restore: %v", err)
	}
	f1, s1, fb1 := q.CoverageCounts()
	if f1+s1+fb1 != f0+s0+fb0+1 {
		t.Errorf("restored primary did not classify the lookup: before %d/%d/%d after %d/%d/%d",
			f0, s0, fb0, f1, s1, fb1)
	}
}
