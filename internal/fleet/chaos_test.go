package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/phi"
	"repro/internal/sim"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) time.Duration {
	t.Helper()
	start := time.Now()
	deadline := start.Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return time.Since(start)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
	return 0
}

// memberHealthy is the chaos harness's convergence predicate: both
// replicas up, backup caught up, controller class healthy, breaker
// closed.
func memberHealthy(f *Fleet, i int) bool {
	st := f.Members[i].Status()
	return st.PrimaryUp && st.BackupUp && st.BackupLive &&
		f.Controller.Class(i) == ClassHealthy && !f.Frontend.ShardDown(i)
}

// TestChaosRemediation is the package-level chaos drill the phi-load
// -chaos harness reproduces over the wire: concurrent lifecycles flow
// through the frontend while primaries are killed on a schedule, the
// controller alone repairs each failure, and afterwards we assert the
// acceptance criteria — zero lost lifecycles, every remediation inside
// the bound, and promoted replicas state-equivalent to their backups.
func TestChaosRemediation(t *testing.T) {
	const (
		shards       = 4
		workers      = 8
		kills        = 3
		killEvery    = 150 * time.Millisecond
		remediateMax = 5 * time.Second
	)
	f := New(Config{
		Shards: shards,
		Controller: ControllerConfig{
			Poll:                5 * time.Millisecond,
			DegradedPolls:       2,
			HealthyPolls:        2,
			MinActionGap:        20 * time.Millisecond,
			MaxActionsPerMinute: 1000,
			SyncEvery:           200 * time.Millisecond,
		},
	})
	stop := f.Start()
	var stopOnce sync.Once
	stopCtl := func() { stopOnce.Do(stop) }
	defer stopCtl()

	// Concurrent lifecycles: each worker owns one path and loops
	// lookup -> report_start -> report_end. Any error is a lost
	// lifecycle.
	var (
		errs   atomic.Uint64
		ops    atomic.Uint64
		stopLd = make(chan struct{})
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		path := phi.PathKey(fmt.Sprintf("chaos-path-%d", w))
		f.Frontend.RegisterPath(path, 10_000_000)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopLd:
					return
				default:
				}
				if _, err := f.Frontend.Lookup(path); err != nil {
					errs.Add(1)
				}
				if err := f.Frontend.ReportStart(path); err != nil {
					errs.Add(1)
				}
				if err := f.Frontend.ReportEnd(path, phi.Report{
					Bytes: 50_000, AvgRTT: 120 * sim.Millisecond, MinRTT: 100 * sim.Millisecond,
				}); err != nil {
					errs.Add(1)
				}
				ops.Add(3)
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// Kill schedule: round-robin primaries, one fault at a time, only
	// against converged members (single-fault tolerance is the contract;
	// overlapping faults degrade gracefully but are the frontend's
	// fallback layer's job, exercised elsewhere).
	for k := 0; k < kills; k++ {
		victim := k % shards
		waitFor(t, remediateMax, fmt.Sprintf("member %d converged pre-kill", victim),
			func() bool { return memberHealthy(f, victim) })
		f.Members[victim].KillPrimary()
		took := waitFor(t, remediateMax, fmt.Sprintf("member %d remediated", victim),
			func() bool { return memberHealthy(f, victim) })
		t.Logf("kill %d: member %d auto-remediated in %v", k, victim, took)
		time.Sleep(killEvery)
	}

	close(stopLd)
	wg.Wait()

	if got := errs.Load(); got != 0 {
		t.Fatalf("%d lost lifecycles out of %d ops (want 0)", got, ops.Load())
	}
	if st := f.Frontend.Stats(); st.Degraded != 0 {
		t.Fatalf("frontend degraded %d operations to policy defaults", st.Degraded)
	}

	// State equivalence after catch-up: with load stopped, every member's
	// promoted/reseeded backup must hold the same learned context as its
	// primary (relaxed comparison: mirrored report timestamps differ by
	// the wall-clock mirror latency).
	for i := range f.Members {
		waitFor(t, remediateMax, fmt.Sprintf("member %d final convergence", i),
			func() bool { return memberHealthy(f, i) })
	}
	stopCtl() // freeze the controller so syncs stop racing the comparison
	for i, m := range f.Members {
		if !m.Status().BackupLive {
			continue // backup mid-reseed when the controller froze
		}
		if err := EquivalentStates(m.Primary().Export(), m.Backup().Export(), false); err != nil {
			t.Errorf("member %d replicas diverged after chaos: %v", i, err)
		}
	}

	// Every kill shows up in the audit trail with a successful action.
	promotes := 0
	for _, e := range f.Controller.Status(0).Audit {
		if e.Action == "promote" && e.Outcome == "ok" {
			promotes++
		}
	}
	if promotes < kills {
		t.Errorf("audit shows %d promotions, want >= %d", promotes, kills)
	}
}
