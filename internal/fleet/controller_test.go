package fleet

import (
	"testing"
	"time"

	"repro/internal/phi"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// testFleet builds a small fleet with a frozen controller clock the test
// advances by hand, driving pollOnce synchronously.
func testFleet(t *testing.T, shards int, ctl ControllerConfig) (*Fleet, *time.Time, *sim.Time) {
	t.Helper()
	simNow := new(sim.Time)
	wall := new(time.Time)
	*wall = time.Unix(1_000_000, 0)
	ctl.Clock = func() time.Time { return *wall }
	f := New(Config{
		Shards:     shards,
		Clock:      func() sim.Time { return *simNow },
		Controller: ctl,
	})
	return f, wall, simNow
}

// feedFleet pushes a workload through the frontend so every member holds
// some state.
func feedFleet(t *testing.T, f *Fleet, simNow *sim.Time, paths ...phi.PathKey) {
	t.Helper()
	for _, p := range paths {
		f.Frontend.RegisterPath(p, 10_000_000)
		for i := 0; i < 3; i++ {
			*simNow += 100 * sim.Millisecond
			if err := f.Frontend.ReportStart(p); err != nil {
				t.Fatalf("ReportStart(%s): %v", p, err)
			}
			*simNow += 200 * sim.Millisecond
			if err := f.Frontend.ReportEnd(p, phi.Report{
				Bytes: 50_000, AvgRTT: 120 * sim.Millisecond, MinRTT: 100 * sim.Millisecond,
			}); err != nil {
				t.Fatalf("ReportEnd(%s): %v", p, err)
			}
		}
	}
}

// auditActions collects the executed (non-deferred) actions for a shard.
func auditActions(c *Controller, shard int) []string {
	var out []string
	for _, e := range c.Status(0).Audit {
		if e.Shard == shard && e.Outcome == "ok" {
			out = append(out, e.Action)
		}
	}
	return out
}

// A dead primary is promoted over — but only after the hysteresis
// threshold, so one bad poll never triggers a failover.
func TestControllerPromotesAfterHysteresis(t *testing.T) {
	f, wall, simNow := testFleet(t, 2, ControllerConfig{
		DegradedPolls: 2, HealthyPolls: 2, SyncEvery: -1, MinActionGap: time.Millisecond,
	})
	feedFleet(t, f, simNow, "path-a", "path-b", "path-c", "path-d")

	victim := 0
	f.Members[victim].KillPrimary()
	want := f.Members[victim].Backup().Export()

	f.Controller.pollOnce() // first unhealthy observation: debounced, no action
	if got := auditActions(f.Controller, victim); len(got) != 0 {
		t.Fatalf("acted after one poll (hysteresis broken): %v", got)
	}

	*wall = wall.Add(time.Second)
	f.Controller.pollOnce() // second observation crosses DegradedPolls
	if got := auditActions(f.Controller, victim); len(got) != 1 || got[0] != "promote" {
		t.Fatalf("actions after threshold = %v, want [promote]", got)
	}

	// The promoted primary carries the backup's state and the reseeded
	// backup matches it exactly.
	m := f.Members[victim]
	if m.Primary().Down() {
		t.Fatal("promoted primary should be up")
	}
	if err := EquivalentStates(m.Primary().Export(), want, true); err != nil {
		t.Fatalf("promoted state: %v", err)
	}
	if err := EquivalentStates(m.Primary().Export(), m.Backup().Export(), true); err != nil {
		t.Fatalf("reseeded backup: %v", err)
	}

	// Two healthy polls close the outage and the class returns to healthy.
	for i := 0; i < 2; i++ {
		*wall = wall.Add(time.Second)
		f.Controller.pollOnce()
	}
	if c := f.Controller.Class(victim); c != ClassHealthy {
		t.Fatalf("class after recovery = %v, want healthy", c)
	}
}

// Both replicas down classifies dead immediately (no upward debounce —
// every request is failing) and remediates with a drain + restart.
func TestControllerRestartsDeadMember(t *testing.T) {
	dir := t.TempDir()
	f, wall, simNow := testFleet(t, 2, ControllerConfig{
		DegradedPolls: 2, HealthyPolls: 1, SyncEvery: -1,
		MinActionGap: time.Millisecond, SnapshotDir: dir,
	})
	feedFleet(t, f, simNow, "path-a", "path-b", "path-c", "path-d")

	victim := 1
	m := f.Members[victim]
	before := m.Primary().Export()
	if err := m.SaveSnapshot(dir); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	m.KillBackup()
	m.KillPrimary()

	f.Controller.pollOnce() // dead: no debounce, but MinActionGap=1ms admits at once
	*wall = wall.Add(time.Second)
	f.Controller.pollOnce()

	got := auditActions(f.Controller, victim)
	if len(got) == 0 || got[0] != "restart" {
		t.Fatalf("actions = %v, want restart first", got)
	}
	if m.Primary().Down() || m.Backup().Down() {
		t.Fatal("both replicas should be up after remediation")
	}
	// Restart rehydrated from the snapshot, not from zero.
	if err := EquivalentStates(m.Primary().Export(), before, true); err != nil {
		t.Fatalf("restarted primary state: %v", err)
	}
}

// Per-member MinActionGap defers a second action inside the window; the
// deferral is audited, not silently dropped.
func TestControllerRateLimitsActions(t *testing.T) {
	f, wall, simNow := testFleet(t, 1, ControllerConfig{
		DegradedPolls: 1, HealthyPolls: 1, SyncEvery: -1, MinActionGap: time.Hour,
	})
	feedFleet(t, f, simNow, "path-a")

	m := f.Members[0]
	m.KillPrimary()
	f.Controller.pollOnce() // promote (first action is admitted)

	m.KillPrimary() // the new primary dies too
	*wall = wall.Add(time.Second)
	f.Controller.pollOnce() // inside MinActionGap: must defer

	st := f.Controller.Status(0)
	if st.ActionsOK != 1 {
		t.Fatalf("ActionsOK = %d, want 1", st.ActionsOK)
	}
	if st.ActionsDeferred == 0 {
		t.Fatal("second action inside MinActionGap should be deferred")
	}
	deferred := false
	for _, e := range st.Audit {
		if e.Outcome == "deferred: per-member action gap" {
			deferred = true
		}
	}
	if !deferred {
		t.Fatalf("no deferred audit entry: %+v", st.Audit)
	}
}

// The global budget bounds fleet-wide actions per minute, so a
// correlated failure cannot become a restart storm.
func TestControllerGlobalRateLimit(t *testing.T) {
	f, _, simNow := testFleet(t, 4, ControllerConfig{
		DegradedPolls: 1, HealthyPolls: 1, SyncEvery: -1,
		MinActionGap: time.Millisecond, MaxActionsPerMinute: 2,
	})
	feedFleet(t, f, simNow, "path-a", "path-b", "path-c", "path-d", "path-e", "path-f")
	for _, m := range f.Members {
		m.KillPrimary()
	}
	f.Controller.pollOnce()
	st := f.Controller.Status(0)
	if st.ActionsOK > 2 {
		t.Fatalf("ActionsOK = %d, want <= 2 (global budget)", st.ActionsOK)
	}
	if st.ActionsDeferred == 0 {
		t.Fatal("over-budget actions should be deferred")
	}
}

// Maintenance syncs are admitted at half the global budget, so an
// aggressive SyncEvery cadence can never starve fault remediation of
// action slots (the failure mode: sync demand above MaxActionsPerMinute
// fills the trailing-minute window and every promote gets deferred).
func TestMaintenanceSyncsDoNotStarveRemediation(t *testing.T) {
	f, wall, simNow := testFleet(t, 2, ControllerConfig{
		DegradedPolls: 1, HealthyPolls: 1,
		SyncEvery: time.Second, MinActionGap: time.Millisecond,
		MaxActionsPerMinute: 2,
	})
	feedFleet(t, f, simNow, "path-a", "path-b", "path-c", "path-d")

	// Drive the sync cadence hard: every poll is past SyncEvery, so both
	// members want a periodic sync each time. At maintenance priority
	// (half of 2 = 1 slot) the trailing-minute window holds exactly one
	// sync and stays saturated for maintenance.
	for i := 0; i < 3; i++ {
		*wall = wall.Add(2 * time.Second)
		f.Controller.pollOnce()
	}

	// A fault arrives with the maintenance slot full: remediation must
	// still be admitted from the reserved headroom.
	f.Members[0].KillPrimary()
	*wall = wall.Add(2 * time.Second)
	f.Controller.pollOnce()

	if got := auditActions(f.Controller, 0); len(got) == 0 || got[len(got)-1] != "promote" {
		t.Fatalf("actions for shard 0 = %v, want promote admitted despite sync load", got)
	}
	for _, e := range f.Controller.Status(0).Audit {
		if e.Action == "promote" && e.Outcome == "deferred: global rate limit" {
			t.Fatalf("promote was starved by maintenance syncs: %+v", e)
		}
	}
}

// A frontend breaker held open against a healthy member is released.
func TestControllerResetsLingeringBreaker(t *testing.T) {
	f, wall, simNow := testFleet(t, 2, ControllerConfig{
		DegradedPolls: 2, HealthyPolls: 1, SyncEvery: -1, MinActionGap: time.Millisecond,
	})
	feedFleet(t, f, simNow, "path-a", "path-b")

	f.Frontend.Quarantine(0, time.Hour)
	if !f.Frontend.ShardDown(0) {
		t.Fatal("precondition: breaker should be open")
	}
	for i := 0; i < 2; i++ {
		*wall = wall.Add(time.Second)
		f.Controller.pollOnce()
	}
	if got := auditActions(f.Controller, 0); len(got) != 1 || got[0] != "reset_breaker" {
		t.Fatalf("actions = %v, want [reset_breaker]", got)
	}
	if f.Frontend.ShardDown(0) {
		t.Fatal("breaker should be closed after remediation")
	}
}

// Healthy members get a periodic anti-drift full sync on the SyncEvery
// cadence.
func TestControllerPeriodicSync(t *testing.T) {
	f, wall, simNow := testFleet(t, 1, ControllerConfig{
		DegradedPolls: 1, HealthyPolls: 1, SyncEvery: 10 * time.Second, MinActionGap: time.Millisecond,
	})
	feedFleet(t, f, simNow, "path-a")

	f.Controller.pollOnce() // lastSync is zero, so the first poll syncs
	syncs0 := f.Members[0].Status().Syncs
	if syncs0 == 0 {
		t.Fatal("first poll should run the initial sync")
	}
	*wall = wall.Add(time.Second)
	f.Controller.pollOnce() // inside the cadence: no new sync
	if got := f.Members[0].Status().Syncs; got != syncs0 {
		t.Fatalf("sync ran inside the cadence: %d -> %d", syncs0, got)
	}
	*wall = wall.Add(11 * time.Second)
	f.Controller.pollOnce()
	if got := f.Members[0].Status().Syncs; got != syncs0+1 {
		t.Fatalf("syncs = %d, want %d after the cadence elapsed", got, syncs0+1)
	}
}

// The metric surface wires up end to end: polls, actions, promotions,
// remediation timer.
func TestControllerMetrics(t *testing.T) {
	f, wall, simNow := testFleet(t, 2, ControllerConfig{
		DegradedPolls: 1, HealthyPolls: 1, SyncEvery: -1, MinActionGap: time.Millisecond,
	})
	reg := telemetry.NewRegistry()
	f.Instrument(reg)
	feedFleet(t, f, simNow, "path-a", "path-b", "path-c")

	f.Members[0].KillPrimary()
	f.Controller.pollOnce() // detect + promote
	*wall = wall.Add(time.Second)
	f.Controller.pollOnce() // healthy again: closes the remediation timer

	fm := f.Controller.metrics
	if fm.Polls.Value() != 2 {
		t.Fatalf("polls = %d, want 2", fm.Polls.Value())
	}
	if fm.Actions["promote"].Value() != 1 {
		t.Fatalf("promote actions = %d, want 1", fm.Actions["promote"].Value())
	}
	if fm.Promotions.Value() != 1 {
		t.Fatalf("promotions = %d, want 1", fm.Promotions.Value())
	}
	if fm.Mirrored.Value() == 0 {
		t.Fatal("mirrored reports should be counted")
	}
	if fm.RemediateSeconds.Count() != 1 {
		t.Fatalf("remediate observations = %d, want 1", fm.RemediateSeconds.Count())
	}
}

// Frontend integration: with a member's primary dead, requests routed by
// the ring are answered by the backup and the frontend sees no failure —
// the replication layer sits below ring-level failover.
func TestFrontendSeesNoFailureWhilePrimaryDown(t *testing.T) {
	f, _, simNow := testFleet(t, 2, ControllerConfig{SyncEvery: -1})
	feedFleet(t, f, simNow, "path-a", "path-b", "path-c", "path-d")

	for i := range f.Members {
		f.Members[i].KillPrimary()
	}
	// Every member's primary is dead; every path must still resolve.
	for _, p := range []phi.PathKey{"path-a", "path-b", "path-c", "path-d"} {
		if _, err := f.Frontend.Lookup(p); err != nil {
			t.Fatalf("Lookup(%s) with all primaries down: %v", p, err)
		}
	}
	st := f.Frontend.Stats()
	if st.Failovers != 0 || st.Degraded != 0 {
		t.Fatalf("frontend saw failures: %+v", st)
	}
}
