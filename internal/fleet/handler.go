package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// FleetStatus is the whole-fleet view served at /debug/fleet.
type FleetStatus struct {
	Now        time.Time        `json:"now"`
	Members    []MemberView     `json:"members"`
	Controller ControllerStatus `json:"controller"`
}

// MemberView pairs a member's replication status with the controller's
// debounced classification and the frontend breaker state.
type MemberView struct {
	MemberStatus
	Class       string `json:"class"`
	BreakerOpen bool   `json:"breaker_open"`
}

// Status snapshots the fleet (members + controller, audit tail bounded
// to auditN entries; <= 0 means all).
func (f *Fleet) Status(auditN int) FleetStatus {
	st := FleetStatus{
		Now:        time.Now(),
		Controller: f.Controller.Status(auditN),
	}
	for i, m := range f.Members {
		mv := MemberView{
			MemberStatus: m.Status(),
			Class:        f.Controller.Class(i).String(),
		}
		if f.Frontend != nil {
			mv.BreakerOpen = f.Frontend.ShardDown(i)
		}
		st.Members = append(st.Members, mv)
	}
	return st
}

// Handler serves the fleet state at /debug/fleet as JSON (default) or a
// terminal-friendly text summary (?format=text), and accepts chaos /
// operator actions via ?op=...&shard=N:
//
//	kill         crash the member's current primary
//	kill-backup  crash the member's current backup
//	promote      promote the live backup to primary
//	sync         force a full-state backup sync
//	restart      restart a dead primary (from SnapshotDir if configured)
//
// Ops exist for fault drills and the phi-load chaos harness; routine
// repair is the controller's job.
func (f *Fleet) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if op := r.URL.Query().Get("op"); op != "" {
			f.serveOp(w, r, op)
			return
		}
		st := f.Status(32)
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeFleetText(w, &st)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}

func (f *Fleet) serveOp(w http.ResponseWriter, r *http.Request, op string) {
	id, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil || id < 0 || id >= len(f.Members) {
		http.Error(w, fmt.Sprintf("bad shard (want 0..%d)", len(f.Members)-1), http.StatusBadRequest)
		return
	}
	m := f.Members[id]
	var opErr error
	switch op {
	case "kill":
		m.KillPrimary()
	case "kill-backup":
		m.KillBackup()
	case "promote":
		opErr = m.Promote()
	case "sync":
		opErr = m.SyncBackup()
	case "restart":
		_, opErr = m.RestartPrimary(f.Controller.cfg.SnapshotDir)
	default:
		http.Error(w, "op must be kill, kill-backup, promote, sync, or restart", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	resp := struct {
		Shard  int          `json:"shard"`
		Op     string       `json:"op"`
		Error  string       `json:"error,omitempty"`
		Member MemberStatus `json:"member"`
	}{Shard: id, Op: op, Member: m.Status()}
	if opErr != nil {
		resp.Error = opErr.Error()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func writeFleetText(w interface{ Write([]byte) (int, error) }, st *FleetStatus) {
	c := &st.Controller
	fmt.Fprintf(w, "fleet: %d members  controller: %d polls, %d actions ok, %d failed, %d deferred\n",
		len(st.Members), c.Polls, c.ActionsOK, c.ActionsFailed, c.ActionsDeferred)
	for _, m := range st.Members {
		primary, backup := "up", "up"
		if !m.PrimaryUp {
			primary = "DOWN"
		}
		if !m.BackupUp {
			backup = "DOWN"
		} else if !m.BackupLive {
			backup = "behind"
		}
		breaker := ""
		if m.BreakerOpen {
			breaker = "  breaker OPEN"
		}
		sync := "never"
		if m.LastSyncAgeS >= 0 {
			sync = fmt.Sprintf("%.0fs ago", m.LastSyncAgeS)
		}
		fmt.Fprintf(w, "member %d [%s]: primary %s (%d paths), backup %s (%d paths), synced %s%s\n",
			m.Index, m.Class, primary, m.PrimaryPaths, backup, m.BackupPaths, sync, breaker)
		fmt.Fprintf(w, "  mirrored %d (errs %d), replayed %d (pending %d, dropped %d), promotions %d, backup served %d, syncs %d\n",
			m.Mirrored, m.MirrorErrors, m.Replayed, m.PendingReplay, m.ReplayDropped,
			m.Promotions, m.BackupServed, m.Syncs)
	}
	if len(c.Audit) > 0 {
		fmt.Fprintf(w, "audit (last %d):\n", len(c.Audit))
		for _, e := range c.Audit {
			fmt.Fprintf(w, "  #%d %s shard %d [%s] %s (%s) -> %s\n",
				e.Seq, e.Time.Format(time.RFC3339), e.Shard, e.Class, e.Action, e.Reason, e.Outcome)
		}
	}
}
