package fleet

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/phi"
	"repro/internal/sim"
)

// feedMember pushes a deterministic workload at one path through the
// member's Conn surface, advancing the frozen clock.
func feedMember(t *testing.T, m *Member, path phi.PathKey, now *sim.Time, rounds int) {
	t.Helper()
	m.RegisterPath(path, 10_000_000)
	for i := 0; i < rounds; i++ {
		*now += 100 * sim.Millisecond
		if err := m.ReportStart(path); err != nil {
			t.Fatalf("ReportStart: %v", err)
		}
		*now += 200 * sim.Millisecond
		if err := m.ReportEnd(path, phi.Report{
			Bytes:  50_000,
			AvgRTT: 120 * sim.Millisecond,
			MinRTT: 100 * sim.Millisecond,
		}); err != nil {
			t.Fatalf("ReportEnd: %v", err)
		}
	}
}

func newTestMember() (*Member, *sim.Time) {
	now := new(sim.Time)
	return NewMember(0, func() sim.Time { return *now }, phi.ServerConfig{}, 0), now
}

// Under a frozen clock, synchronous mirroring keeps the backup
// bit-identical to the primary: the replication invariant the promotion
// protocol rests on.
func TestMirroredBackupExactEquivalence(t *testing.T) {
	m, now := newTestMember()
	feedMember(t, m, "path-a", now, 5)
	feedMember(t, m, "path-b", now, 3)

	if err := EquivalentStates(m.Primary().Export(), m.Backup().Export(), true); err != nil {
		t.Fatalf("mirrored backup diverged: %v", err)
	}
	st := m.Status()
	if st.Mirrored == 0 || st.MirrorErrors != 0 {
		t.Fatalf("mirroring counters off: %+v", st)
	}
}

// A dead primary costs nothing at the member surface: the live backup
// answers lookups and absorbs reports until the controller promotes it.
func TestBackupServesWhilePrimaryDown(t *testing.T) {
	m, now := newTestMember()
	feedMember(t, m, "path-a", now, 5)

	before, err := m.Lookup("path-a")
	if err != nil {
		t.Fatalf("Lookup before crash: %v", err)
	}

	m.KillPrimary()
	got, err := m.Lookup("path-a")
	if err != nil {
		t.Fatalf("Lookup with primary down: %v", err)
	}
	if got != before {
		t.Fatalf("backup served %+v, primary had %+v", got, before)
	}
	*now += 100 * sim.Millisecond
	if err := m.ReportStart("path-a"); err != nil {
		t.Fatalf("ReportStart with primary down: %v", err)
	}
	if st := m.Status(); st.BackupServed < 2 {
		t.Fatalf("BackupServed = %d, want >= 2", st.BackupServed)
	}
}

// Promotion swaps the caught-up backup in as primary; a subsequent sync
// reseeds the dead ex-primary and restores exact equivalence.
func TestPromoteThenResync(t *testing.T) {
	m, now := newTestMember()
	feedMember(t, m, "path-a", now, 5)
	want := m.Backup().Export() // the state the promoted replica carries

	m.KillPrimary()
	if err := m.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if m.Primary().Down() {
		t.Fatal("promoted primary should be up")
	}
	if err := EquivalentStates(m.Primary().Export(), want, true); err != nil {
		t.Fatalf("promoted primary lost state: %v", err)
	}

	// The new backup (dead ex-primary) catches up via snapshot transfer.
	if err := m.SyncBackup(); err != nil {
		t.Fatalf("SyncBackup: %v", err)
	}
	if err := EquivalentStates(m.Primary().Export(), m.Backup().Export(), true); err != nil {
		t.Fatalf("reseeded backup diverged: %v", err)
	}

	// Replication is live again: new reports mirror to the new backup.
	feedMember(t, m, "path-a", now, 2)
	if err := EquivalentStates(m.Primary().Export(), m.Backup().Export(), true); err != nil {
		t.Fatalf("post-promotion mirroring diverged: %v", err)
	}
	if st := m.Status(); st.Promotions != 1 || st.Syncs == 0 {
		t.Fatalf("counters: %+v", st)
	}
}

// Promoting a stale or dead backup must refuse: serving wrong context
// silently is worse than degrading loudly.
func TestPromoteRefusesDeadBackup(t *testing.T) {
	m, now := newTestMember()
	feedMember(t, m, "path-a", now, 2)
	m.KillBackup()
	// The backup dies silently; the next mirrored report discovers it.
	feedMember(t, m, "path-a", now, 1)
	if err := m.Promote(); !errors.Is(err, ErrNoLiveBackup) {
		t.Fatalf("Promote with dead backup: err = %v, want ErrNoLiveBackup", err)
	}
}

// When a mirror fails, reports buffer; a full sync replays them and the
// replicas converge exactly (the snapshot covers everything up to the
// sync point, the replay covers the rest).
func TestMirrorFailureBuffersAndReplays(t *testing.T) {
	m, now := newTestMember()
	feedMember(t, m, "path-a", now, 3)

	m.KillBackup()
	feedMember(t, m, "path-a", now, 4) // first report discovers the dead backup
	st := m.Status()
	if st.MirrorErrors != 1 {
		t.Fatalf("MirrorErrors = %d, want 1", st.MirrorErrors)
	}
	if st.BackupLive {
		t.Fatal("backup should be demoted after a mirror failure")
	}
	if st.PendingReplay == 0 {
		t.Fatal("reports should buffer while the backup is down")
	}

	if err := m.SyncBackup(); err != nil {
		t.Fatalf("SyncBackup: %v", err)
	}
	if err := EquivalentStates(m.Primary().Export(), m.Backup().Export(), true); err != nil {
		t.Fatalf("backup diverged after catch-up: %v", err)
	}
	st = m.Status()
	if !st.BackupLive || st.Syncs != 1 {
		t.Fatalf("post-sync status: %+v", st)
	}
}

// The replay buffer is bounded: overflow drops the oldest records and
// counts them, and a full sync clears the debt.
func TestReplayBufferBounded(t *testing.T) {
	now := new(sim.Time)
	m := NewMember(0, func() sim.Time { return *now }, phi.ServerConfig{}, 4)
	m.KillBackup()
	feedMember(t, m, "path-a", now, 6) // 12 reports against a cap of 4
	st := m.Status()
	if st.PendingReplay != 4 {
		t.Fatalf("PendingReplay = %d, want the cap (4)", st.PendingReplay)
	}
	if st.ReplayDropped == 0 {
		t.Fatal("overflow should count dropped records")
	}
	if err := m.SyncBackup(); err != nil {
		t.Fatalf("SyncBackup: %v", err)
	}
	// The sync snapshots the primary at the current seq, so the dropped
	// records are inside the snapshot and the replicas still converge.
	if err := EquivalentStates(m.Primary().Export(), m.Backup().Export(), true); err != nil {
		t.Fatalf("backup diverged despite drops: %v", err)
	}
}

// Both replicas down is a real outage: the member surfaces ErrShardDown
// so the frontend's ring-level degradation (fallback, then policy
// defaults) takes over.
func TestMemberDeadSurfacesShardDown(t *testing.T) {
	m, now := newTestMember()
	feedMember(t, m, "path-a", now, 2)
	m.KillBackup()
	m.KillPrimary()
	if _, err := m.Lookup("path-a"); !errors.Is(err, cluster.ErrShardDown) {
		t.Fatalf("dead member lookup err = %v, want ErrShardDown", err)
	}
	if err := m.ReportStart("path-a"); !errors.Is(err, cluster.ErrShardDown) {
		t.Fatalf("dead member report err = %v, want ErrShardDown", err)
	}
}

// RestartPrimary rehydrates from the newest on-disk snapshot when one
// exists, and the follow-up sync rebuilds the backup from it.
func TestRestartPrimaryFromSnapshot(t *testing.T) {
	m, now := newTestMember()
	feedMember(t, m, "path-a", now, 5)
	before, _ := m.Lookup("path-a")

	dir := t.TempDir()
	if err := m.SaveSnapshot(dir); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}

	m.KillBackup()
	m.KillPrimary()
	restored, err := m.RestartPrimary(dir)
	if err != nil || !restored {
		t.Fatalf("RestartPrimary: restored=%v err=%v", restored, err)
	}
	got, err := m.Lookup("path-a")
	if err != nil {
		t.Fatalf("Lookup after restart: %v", err)
	}
	if got != before {
		t.Fatalf("restored context %+v != pre-crash %+v", got, before)
	}
	if err := m.SyncBackup(); err != nil {
		t.Fatalf("SyncBackup: %v", err)
	}
	if err := EquivalentStates(m.Primary().Export(), m.Backup().Export(), true); err != nil {
		t.Fatalf("backup diverged after restart: %v", err)
	}
}
