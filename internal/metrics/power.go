// Package metrics provides the evaluation metrics the Phi paper uses —
// the network power metric and its loss-extended and logarithmic variants —
// plus general summary statistics: quantiles, CDFs, EWMAs, and online
// mean/variance accumulators.
package metrics

import "math"

// Power is the classic network power metric P = r/d (Giessler et al.,
// cited by the paper), with throughput r in Mbit/s and delay d in seconds.
// Non-positive delay yields 0 rather than an infinity.
func Power(throughputMbps, delaySeconds float64) float64 {
	if delaySeconds <= 0 {
		return 0
	}
	return throughputMbps / delaySeconds
}

// LossPower is the paper's extension P_l = r(1-l)/d incorporating the
// packet loss rate l in [0, 1]. It is the objective the Cubic parameter
// sweeps optimize.
func LossPower(throughputMbps, lossRate, delaySeconds float64) float64 {
	if lossRate < 0 {
		lossRate = 0
	}
	if lossRate > 1 {
		lossRate = 1
	}
	return Power(throughputMbps, delaySeconds) * (1 - lossRate)
}

// LogPower is ln(P), the Remy objective the paper optimizes for Table 3
// ("log(P) in the case of Remy, in line with [45]"). Non-positive power
// maps to -Inf so it always loses comparisons.
func LogPower(throughputMbps, delaySeconds float64) float64 {
	p := Power(throughputMbps, delaySeconds)
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}
