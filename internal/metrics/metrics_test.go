package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPower(t *testing.T) {
	if got := Power(10, 0.1); got != 100 {
		t.Errorf("Power(10, 0.1) = %v, want 100", got)
	}
	if got := Power(10, 0); got != 0 {
		t.Errorf("Power with zero delay = %v, want 0", got)
	}
	if got := Power(10, -1); got != 0 {
		t.Errorf("Power with negative delay = %v, want 0", got)
	}
}

func TestLossPower(t *testing.T) {
	if got := LossPower(10, 0.5, 0.1); got != 50 {
		t.Errorf("LossPower = %v, want 50", got)
	}
	if got := LossPower(10, 0, 0.1); got != 100 {
		t.Errorf("lossless LossPower = %v, want 100", got)
	}
	// Clamping.
	if got := LossPower(10, -0.5, 0.1); got != 100 {
		t.Errorf("negative loss clamps to 0: got %v", got)
	}
	if got := LossPower(10, 2, 0.1); got != 0 {
		t.Errorf("loss > 1 clamps to 1: got %v", got)
	}
}

func TestLogPowerMatchesPaperTable3(t *testing.T) {
	// Table 3, Remy-Phi-practical: 1.93 Mbps at ~155.6 ms total delay
	// gives an objective near 2.52.
	got := LogPower(1.93, 0.1556)
	if math.Abs(got-2.52) > 0.02 {
		t.Errorf("LogPower(1.93, 0.1556) = %v, want ~2.52", got)
	}
	if !math.IsInf(LogPower(0, 1), -1) {
		t.Error("LogPower of zero throughput should be -Inf")
	}
}

func TestMeanMedianQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Mean(xs) != 3 {
		t.Errorf("Mean = %v, want 3", Mean(xs))
	}
	if Median(xs) != 3 {
		t.Errorf("Median = %v, want 3", Median(xs))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Error("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("Q25 = %v, want 2", got)
	}
	// Even length: median interpolates.
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Error("empty-slice metrics should be 0")
	}
	// Quantile must not mutate its input.
	orig := []float64{3, 1, 2}
	Quantile(orig, 0.5)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	got := StdDev(xs)
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("single sample StdDev should be 0")
	}
}

func TestSummaryMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2, 7, 0, 3.25, 9, -4}
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	if s.Count() != int64(len(xs)) {
		t.Errorf("Count = %d", s.Count())
	}
	if math.Abs(s.Mean()-Mean(xs)) > 1e-12 {
		t.Errorf("Mean = %v, want %v", s.Mean(), Mean(xs))
	}
	if math.Abs(s.StdDev()-StdDev(xs)) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev(), StdDev(xs))
	}
	if s.Min() != -4 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	var empty Summary
	if empty.Mean() != 0 || empty.Var() != 0 || empty.Count() != 0 {
		t.Error("zero-value Summary not zero")
	}
}

// Property: Summary mean/stddev agree with the batch formulas.
func TestSummaryProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		var s Summary
		for _, x := range clean {
			s.Add(x)
		}
		if len(clean) == 0 {
			return s.Count() == 0
		}
		return math.Abs(s.Mean()-Mean(clean)) < 1e-6 &&
			math.Abs(s.StdDev()-StdDev(clean)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Error("fresh EWMA claims initialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Errorf("first sample = %v, want 10", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Errorf("after second sample = %v, want 15", e.Value())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewEWMA(0) did not panic")
			}
		}()
		NewEWMA(0)
	}()
}

// Property: an EWMA stays within the min/max envelope of its inputs.
func TestEWMABoundedProperty(t *testing.T) {
	f := func(xs []float64, alphaRaw uint8) bool {
		alpha := (float64(alphaRaw%100) + 1) / 101
		e := NewEWMA(alpha)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			e.Add(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCDFFractions(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	if got := c.FractionAtMost(2); got != 0.6 {
		t.Errorf("P(X<=2) = %v, want 0.6", got)
	}
	if got := c.FractionAtLeast(2); got != 0.8 {
		t.Errorf("P(X>=2) = %v, want 0.8", got)
	}
	if got := c.FractionAtLeast(100); got != 0 {
		t.Errorf("P(X>=100) = %v, want 0", got)
	}
	if got := c.FractionAtMost(0); got != 0 {
		t.Errorf("P(X<=0) = %v, want 0", got)
	}
	if c.Len() != 5 {
		t.Errorf("Len = %d", c.Len())
	}
	empty := NewCDF(nil)
	if empty.FractionAtMost(1) != 0 || empty.FractionAtLeast(1) != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty CDF should return zeros")
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	c := NewCDF([]float64{5, 3, 8, 1, 9, 2, 7})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points, want 5", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].P < pts[i-1].P {
			t.Fatalf("points not monotone: %+v", pts)
		}
	}
	if pts[len(pts)-1].P != 1 {
		t.Errorf("last point P = %v, want 1", pts[len(pts)-1].P)
	}
	if NewCDF(nil).Points(5) != nil {
		t.Error("empty CDF Points should be nil")
	}
}

// Property: FractionAtMost is a valid, monotone CDF consistent with a
// direct count.
func TestCDFProperty(t *testing.T) {
	f := func(raw []int8, probe int8) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		c := NewCDF(xs)
		x := float64(probe)
		count := 0
		for _, v := range xs {
			if v <= x {
				count++
			}
		}
		var want float64
		if len(xs) > 0 {
			want = float64(count) / float64(len(xs))
		}
		if math.Abs(c.FractionAtMost(x)-want) > 1e-12 {
			return false
		}
		// Complementarity at a point not in the sample set: P(<=x)+P(>x)=1.
		sort.Float64s(xs)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantileExtremesAndSingle(t *testing.T) {
	single := []float64{7}
	for _, q := range []float64{0, 0.5, 1} {
		if got := Quantile(single, q); got != 7 {
			t.Errorf("single-sample Q%.1f = %v", q, got)
		}
	}
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, -0.5); got != 1 {
		t.Errorf("negative q = %v, want min", got)
	}
	if got := Quantile(xs, 1.5); got != 5 {
		t.Errorf("q>1 = %v, want max", got)
	}
}

// Property: Quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			if xs[i] < lo {
				lo = xs[i]
			}
			if xs[i] > hi {
				hi = xs[i]
			}
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 || v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCDFQuantileAgreesWithQuantile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	c := NewCDF(xs)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got, want := c.Quantile(q), Quantile(xs, q); got != want {
			t.Errorf("CDF quantile %v = %v, direct = %v", q, got, want)
		}
	}
}

func TestJainFairness(t *testing.T) {
	if got := JainFairness([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares index = %v, want 1", got)
	}
	if got := JainFairness([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single hog index = %v, want 0.25", got)
	}
	if JainFairness(nil) != 0 || JainFairness([]float64{0, 0}) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

// Property: the index is scale invariant and bounded by (0, 1].
func TestJainFairnessProperty(t *testing.T) {
	f := func(raw []uint8, scaleRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		nonzero := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return JainFairness(xs) == 0
		}
		idx := JainFairness(xs)
		if idx <= 0 || idx > 1+1e-12 {
			return false
		}
		scale := float64(scaleRaw%9) + 1
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * scale
		}
		return math.Abs(JainFairness(scaled)-idx) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
