package metrics

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the middle value of xs (averaging the two central values
// for even lengths), or 0 for an empty slice.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two samples exist.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Summary accumulates count, mean, and variance online (Welford's
// algorithm) along with min and max. The zero value is ready to use.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Count returns the number of samples added.
func (s *Summary) Count() int64 { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the sample variance (0 with fewer than two samples).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]: larger alpha weights recent samples more. The zero
// value is unusable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. Alpha outside
// (0, 1] panics.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("metrics: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Add folds x in; the first sample initializes the average.
func (e *EWMA) Add(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether any sample has been added.
func (e *EWMA) Initialized() bool { return e.init }

// JainFairness is Jain's fairness index over per-flow allocations:
// (sum x)^2 / (n * sum x^2), in (0, 1], 1 when all allocations are equal,
// approaching 1/n when one flow takes everything. The standard check that
// a congestion-control scheme shares a bottleneck equitably.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
