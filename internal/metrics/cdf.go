package metrics

import "sort"

// CDF is an empirical cumulative distribution over a fixed sample set,
// used for the Section 2.1 flow-sharing analysis ("50% of flows share the
// WAN path with at least 5 other flows").
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied, then sorted).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// FractionAtMost returns P(X <= x).
func (c *CDF) FractionAtMost(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, x)
	// Advance over equal values to count them as <= x.
	for idx < len(c.sorted) && c.sorted[idx] <= x {
		idx++
	}
	return float64(idx) / float64(len(c.sorted))
}

// FractionAtLeast returns P(X >= x), the paper's "share with at least k
// other flows" form.
func (c *CDF) FractionAtLeast(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, x)
	return float64(len(c.sorted)-idx) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the samples.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return quantileSorted(c.sorted, q)
}

// Point is one (x, P(X <= x)) coordinate of a rendered CDF curve.
type Point struct {
	X float64
	P float64
}

// Points renders the CDF as at most n evenly spaced points for plotting
// or textual output.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(n-1, 1)
		pts = append(pts, Point{X: c.sorted[idx], P: float64(idx+1) / float64(len(c.sorted))})
	}
	return pts
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
