package workload_test

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

// A complete experiment in one call: the paper's on/off workload over the
// Figure 1 dumbbell, measured on the power metric.
func Example() {
	res := workload.Run(workload.Scenario{
		Dumbbell:    sim.DefaultDumbbell(4),
		MeanOnBytes: 100_000,               // exp-distributed transfer sizes
		MeanOffTime: 500 * sim.Millisecond, // exp-distributed idle times
		Duration:    30 * sim.Second,
		Warmup:      3 * sim.Second,
		Seed:        1,
		CC: func(sender int) func() tcp.CongestionControl {
			return func() tcp.CongestionControl {
				return tcp.NewCubic(tcp.DefaultCubicParams())
			}
		},
	})
	fmt.Println("flows ran:", len(res.Flows) > 50)
	fmt.Println("utilization in (0,1]:", res.Utilization > 0 && res.Utilization <= 1)
	fmt.Println("power positive:", res.LossPower() > 0)
	// Output:
	// flows ran: true
	// utilization in (0,1]: true
	// power positive: true
}
