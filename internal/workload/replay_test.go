package workload

import (
	"net/netip"
	"testing"

	"repro/internal/ipfix"
	"repro/internal/sim"
	"repro/internal/tcp"
)

func replayRecord(start uint32, octets uint64, port uint16) ipfix.FlowRecord {
	return ipfix.FlowRecord{
		Key: ipfix.FlowKey{
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("100.1.2.3"),
			SrcPort: 443, DstPort: port,
		},
		Octets: octets, Packets: octets / 1500, Start: start, End: start + 5,
	}
}

func TestReplayRunsEveryRecord(t *testing.T) {
	records := []ipfix.FlowRecord{
		replayRecord(100, 50_000, 1),
		replayRecord(101, 80_000, 2),
		replayRecord(103, 20_000, 3),
		replayRecord(100, 40_000, 4),
	}
	res := Replay(ReplayConfig{
		Dumbbell: sim.DefaultDumbbell(2),
		Records:  records,
		CC: func() tcp.CongestionControl {
			return tcp.NewCubic(tcp.DefaultCubicParams())
		},
	})
	if len(res.Flows) != 4 {
		t.Fatalf("replayed %d flows, want 4", len(res.Flows))
	}
	var total int64
	for i := range res.Flows {
		if !res.Flows[i].Completed {
			t.Errorf("flow %d incomplete", i)
		}
		total += res.Flows[i].BytesAcked
	}
	if total != 190_000 {
		t.Errorf("delivered %d bytes, want 190000", total)
	}
	if res.Utilization <= 0 {
		t.Error("no utilization measured")
	}
}

func TestReplayRebasesStartTimes(t *testing.T) {
	// Trace starting at t=5000s must not make the sim wait 5000s.
	records := []ipfix.FlowRecord{replayRecord(5000, 10_000, 1)}
	res := Replay(ReplayConfig{
		Dumbbell: sim.DefaultDumbbell(1),
		Records:  records,
		CC:       func() tcp.CongestionControl { return tcp.NewCubic(tcp.DefaultCubicParams()) },
	})
	if len(res.Flows) != 1 || !res.Flows[0].Completed {
		t.Fatal("rebased flow did not run")
	}
	if res.Flows[0].Start > sim.Second {
		t.Errorf("flow started at %v, want near 0 after rebase", res.Flows[0].Start)
	}
}

func TestReplaySamplingCorrection(t *testing.T) {
	// A sampled record of 1500 octets at 1:4096 replays as ~6.1 MB.
	records := []ipfix.FlowRecord{replayRecord(0, 1500, 1)}
	res := Replay(ReplayConfig{
		Dumbbell: sim.DefaultDumbbell(1),
		Records:  records,
		SampleN:  4096,
		Horizon:  600 * sim.Second,
		CC:       func() tcp.CongestionControl { return tcp.NewCubic(tcp.DefaultCubicParams()) },
	})
	if len(res.Flows) != 1 {
		t.Fatal("flow missing")
	}
	if got := res.Flows[0].BytesAcked; got != 1500*4096 {
		t.Errorf("delivered %d, want %d", got, 1500*4096)
	}
}

func TestReplayMaxFlowsAndHorizon(t *testing.T) {
	var records []ipfix.FlowRecord
	for i := 0; i < 20; i++ {
		records = append(records, replayRecord(uint32(i), 10_000, uint16(i+1)))
	}
	res := Replay(ReplayConfig{
		Dumbbell: sim.DefaultDumbbell(4),
		Records:  records,
		MaxFlows: 5,
		Horizon:  120 * sim.Second,
		CC:       func() tcp.CongestionControl { return tcp.NewCubic(tcp.DefaultCubicParams()) },
	})
	if len(res.Flows) != 5 {
		t.Errorf("replayed %d flows, want capped 5", len(res.Flows))
	}
}

func TestReplayFromGeneratedTrace(t *testing.T) {
	// The full pipeline: synthesize an egress trace, collect it through
	// the codec, replay the first flows of the busiest minute.
	cfg := ipfix.DefaultSynthConfig()
	cfg.Flows = 5000
	records := ipfix.Generate(cfg, ipfix.DefaultSamplingRate)
	res := Replay(ReplayConfig{
		Dumbbell: sim.DefaultDumbbell(8),
		Records:  records,
		MaxFlows: 40,
		CC:       func() tcp.CongestionControl { return tcp.NewCubic(tcp.DefaultCubicParams()) },
	})
	if len(res.Flows) != 40 {
		t.Fatalf("replayed %d flows", len(res.Flows))
	}
	completed := 0
	for i := range res.Flows {
		if res.Flows[i].Completed {
			completed++
		}
	}
	if completed < 35 {
		t.Errorf("only %d/40 trace flows completed", completed)
	}
}

func TestReplayRequiresCC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("missing CC did not panic")
		}
	}()
	Replay(ReplayConfig{Dumbbell: sim.DefaultDumbbell(1)})
}

func TestReplayEmptyTrace(t *testing.T) {
	res := Replay(ReplayConfig{
		Dumbbell: sim.DefaultDumbbell(1),
		Horizon:  sim.Second,
		CC:       func() tcp.CongestionControl { return tcp.NewCubic(tcp.DefaultCubicParams()) },
	})
	if len(res.Flows) != 0 {
		t.Errorf("empty trace produced %d flows", len(res.Flows))
	}
	if res.Utilization != 0 {
		t.Errorf("utilization = %v", res.Utilization)
	}
}
