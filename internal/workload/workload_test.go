package workload

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/tcp"
)

func cubicFactory() func() tcp.CongestionControl {
	return func() tcp.CongestionControl { return tcp.NewCubic(tcp.DefaultCubicParams()) }
}

func TestIDGenUnique(t *testing.T) {
	g := NewIDGen()
	seen := map[sim.FlowID]bool{}
	for i := 0; i < 1000; i++ {
		id := g.Next()
		if seen[id] {
			t.Fatalf("duplicate flow id %d", id)
		}
		seen[id] = true
	}
}

func TestOnOffSourceRunsSequentialConnections(t *testing.T) {
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, sim.DefaultDumbbell(1))
	var started, ended int
	src := NewOnOffSource(eng, sim.NewRNG(1), NewIDGen(), d.Senders[0], d.Receivers[0], SourceConfig{
		MeanOnBytes: 50_000,
		MeanOffTime: 500 * sim.Millisecond,
		CC:          cubicFactory(),
		OnStart:     func(sim.FlowID) { started++ },
		OnEnd:       func(*tcp.FlowStats) { ended++ },
	})
	src.Start()
	eng.RunUntil(60 * sim.Second)
	src.Stop()
	if src.Launched < 10 {
		t.Errorf("launched %d connections in 60s, want >= 10", src.Launched)
	}
	if started != src.Launched {
		t.Errorf("OnStart fired %d times, launched %d", started, src.Launched)
	}
	if ended < started-1 || ended > started {
		t.Errorf("OnEnd fired %d times for %d starts", ended, started)
	}
	// Connections must be sequential: each completed flow started after
	// the previous one ended.
	for i := 1; i < len(src.Completed); i++ {
		if src.Completed[i].Start < src.Completed[i-1].End {
			t.Fatalf("connections overlap: #%d starts %v before #%d ends %v",
				i, src.Completed[i].Start, i-1, src.Completed[i-1].End)
		}
	}
	for i := range src.Completed {
		if !src.Completed[i].Completed {
			t.Errorf("flow %d not completed", i)
		}
	}
}

func TestOnOffSourceStopAbortsCurrent(t *testing.T) {
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, sim.DefaultDumbbell(1))
	src := NewOnOffSource(eng, sim.NewRNG(2), NewIDGen(), d.Senders[0], d.Receivers[0], SourceConfig{
		MeanOnBytes: 100_000_000, // huge: still in flight at stop
		MeanOffTime: sim.Second,
		CC:          cubicFactory(),
	})
	src.Start()
	eng.RunUntil(2 * sim.Second)
	src.Stop()
	eng.RunUntil(3 * sim.Second)
	if len(src.Completed) != 1 {
		t.Fatalf("expected 1 aborted flow recorded, got %d", len(src.Completed))
	}
	if src.Completed[0].Completed {
		t.Error("aborted flow marked completed")
	}
	if src.Launched != 1 {
		t.Errorf("launched %d after stop, want 1", src.Launched)
	}
}

func TestPersistentSourceStreamsUntilStopped(t *testing.T) {
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, sim.DefaultDumbbell(1))
	p := NewPersistentSource(eng, NewIDGen(), d.Senders[0], d.Receivers[0], SourceConfig{
		CC: cubicFactory(),
	})
	p.Start()
	eng.RunUntil(10 * sim.Second)
	p.Stop()
	if len(p.Completed) != 1 {
		t.Fatalf("stats not recorded on stop")
	}
	if p.Completed[0].BytesAcked < 1_000_000 {
		t.Errorf("persistent flow moved only %d bytes in 10s", p.Completed[0].BytesAcked)
	}
}

func TestSourceRequiresCC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("missing CC did not panic")
		}
	}()
	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, sim.DefaultDumbbell(1))
	NewOnOffSource(eng, sim.NewRNG(1), NewIDGen(), d.Senders[0], d.Receivers[0], SourceConfig{})
}

func baseScenario(senders int, seed int64) Scenario {
	return Scenario{
		Dumbbell:    sim.DefaultDumbbell(senders),
		MeanOnBytes: 500_000,
		MeanOffTime: 2 * sim.Second,
		Duration:    60 * sim.Second,
		Warmup:      5 * sim.Second,
		Seed:        seed,
		CC:          func(int) func() tcp.CongestionControl { return cubicFactory() },
	}
}

func TestScenarioRunProducesFlows(t *testing.T) {
	res := Run(baseScenario(4, 1))
	if len(res.Flows) < 20 {
		t.Fatalf("only %d flows in 60s with 4 senders", len(res.Flows))
	}
	if res.Utilization <= 0 || res.Utilization > 1.01 {
		t.Errorf("utilization = %v", res.Utilization)
	}
	if res.CompletedFlows() == 0 {
		t.Error("no completed flows")
	}
	if len(res.SenderOf) != len(res.Flows) {
		t.Error("SenderOf misaligned")
	}
	if res.AggThroughputMbps() <= 0 {
		t.Error("aggregate throughput zero")
	}
	if res.MeanRTT() < res.PropRTT {
		t.Errorf("mean RTT %v below propagation %v", res.MeanRTT(), res.PropRTT)
	}
	if res.LossPower() <= 0 {
		t.Error("loss power should be positive")
	}
}

func TestScenarioDeterministicUnderSeed(t *testing.T) {
	a := Run(baseScenario(3, 42))
	b := Run(baseScenario(3, 42))
	if len(a.Flows) != len(b.Flows) {
		t.Fatalf("flow counts differ: %d vs %d", len(a.Flows), len(b.Flows))
	}
	if a.Utilization != b.Utilization || a.LinkLossRate != b.LinkLossRate {
		t.Error("link metrics differ under same seed")
	}
	for i := range a.Flows {
		if a.Flows[i].BytesAcked != b.Flows[i].BytesAcked || a.Flows[i].End != b.Flows[i].End {
			t.Fatalf("flow %d differs under same seed", i)
		}
	}
	c := Run(baseScenario(3, 43))
	if len(a.Flows) == len(c.Flows) && a.Utilization == c.Utilization {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestScenarioMoreSendersMoreUtilization(t *testing.T) {
	lo := Run(baseScenario(2, 7))
	hi := Run(baseScenario(16, 7))
	if hi.Utilization <= lo.Utilization {
		t.Errorf("utilization did not rise with load: %v (2 senders) vs %v (16)",
			lo.Utilization, hi.Utilization)
	}
}

func TestScenarioLongRunning(t *testing.T) {
	sc := baseScenario(8, 3)
	sc.LongRunning = true
	sc.Duration = 30 * sim.Second
	res := Run(sc)
	if len(res.Flows) != 8 {
		t.Fatalf("%d flows, want 8 persistent", len(res.Flows))
	}
	if res.Utilization < 0.9 {
		t.Errorf("8 persistent flows should saturate: util = %v", res.Utilization)
	}
	for i := range res.Flows {
		if res.Flows[i].Completed {
			t.Error("persistent flow marked completed")
		}
	}
}

func TestScenarioPerSenderCC(t *testing.T) {
	sc := baseScenario(2, 5)
	var counts [2]int
	sc.CC = func(i int) func() tcp.CongestionControl {
		return func() tcp.CongestionControl {
			counts[i]++
			return tcp.NewCubic(tcp.DefaultCubicParams())
		}
	}
	Run(sc)
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("per-sender CC factories not exercised: %v", counts)
	}
}

func TestScenarioHooks(t *testing.T) {
	sc := baseScenario(2, 9)
	sc.Duration = 20 * sim.Second
	starts := map[int]int{}
	ends := map[int]int{}
	sc.OnStart = func(sender int, flow sim.FlowID) { starts[sender]++ }
	sc.OnEnd = func(sender int, st *tcp.FlowStats) { ends[sender]++ }
	res := Run(sc)
	if len(starts) != 2 {
		t.Errorf("OnStart saw %d senders, want 2", len(starts))
	}
	total := 0
	for _, n := range ends {
		total += n
	}
	if total != len(res.Flows) {
		t.Errorf("OnEnd fired %d times for %d flows", total, len(res.Flows))
	}
}

func TestResultMedianHelpers(t *testing.T) {
	res := Run(baseScenario(4, 11))
	med := res.MedianThroughputMbps()
	if med <= 0 {
		t.Error("median throughput zero")
	}
	if res.MedianQueueingDelayMs() < 0 {
		t.Error("median queueing delay negative")
	}
	if res.MeanQueueingDelayMs() < 0 {
		t.Error("mean queueing delay negative")
	}
	if res.SenderLossRate() < 0 || res.SenderLossRate() > 1 {
		t.Errorf("sender loss rate = %v", res.SenderLossRate())
	}
}

func TestScenarioDelayAcksPlumbing(t *testing.T) {
	sc := baseScenario(2, 21)
	sc.Duration = 20 * sim.Second
	sc.DelayAcks = true
	res := Run(sc)
	if len(res.Flows) == 0 {
		t.Fatal("no flows with delayed acks")
	}
	if res.CompletedFlows() == 0 {
		t.Error("no completed flows with delayed acks")
	}
	// Persistent variant too.
	sc.LongRunning = true
	res = Run(sc)
	if len(res.Flows) != 2 {
		t.Fatalf("persistent delack flows = %d", len(res.Flows))
	}
	for i := range res.Flows {
		if res.Flows[i].BytesAcked == 0 {
			t.Error("persistent delack flow moved no data")
		}
	}
}
