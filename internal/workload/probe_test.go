package workload

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/tcp"
)

func probedScenario(interval sim.Time) Scenario {
	return Scenario{
		Dumbbell:      sim.DefaultDumbbell(3),
		LongRunning:   true,
		Duration:      20 * sim.Second,
		Warmup:        2 * sim.Second,
		Seed:          42,
		CC:            func(int) func() tcp.CongestionControl { return cubicFactory() },
		ProbeInterval: interval,
	}
}

func TestScenarioProbeSeries(t *testing.T) {
	res := Run(probedScenario(100 * sim.Millisecond))
	if res.Probe == nil {
		t.Fatal("ProbeInterval set but Result.Probe is nil")
	}
	d := res.Probe.Dump()
	if len(d.Links) != 1 || d.Links[0].Name != "bottleneck" {
		t.Fatalf("want one bottleneck link series, got %+v", d.Links)
	}
	if len(d.Flows) != 3 {
		t.Fatalf("long-running scenario with 3 senders: want 3 flow series, got %d", len(d.Flows))
	}
	bn := d.Links[0]
	if len(bn.Samples) != 200 {
		t.Fatalf("20s at 100ms: want 200 samples, got %d", len(bn.Samples))
	}
	// Persistent Cubic flows saturate the bottleneck: late-run sampled
	// utilization should be high and cwnd/RTT series non-trivial.
	if u := bn.UtilizationQuantile(0.5); u < 0.5 {
		t.Errorf("median sampled utilization %v, want >= 0.5 under saturation", u)
	}
	late := d.Flows[0].Samples[len(d.Flows[0].Samples)-1]
	if late.CwndBytes <= 0 || late.SRTT <= 0 {
		t.Errorf("flow sample missing congestion state: %+v", late)
	}
}

func TestScenarioProbeDeterministic(t *testing.T) {
	a := Run(probedScenario(100 * sim.Millisecond))
	b := Run(probedScenario(100 * sim.Millisecond))
	if !reflect.DeepEqual(a.Probe.Dump(), b.Probe.Dump()) {
		t.Fatal("same seed produced different probe series")
	}
}

// TestScenarioProbePassive pins that attaching a probe does not perturb
// the simulation: the measured results of a probed run are identical to
// the unprobed run — the probe only reads monitor counters and adds its
// own events, which never touch packets. (The <5% wall-clock overhead
// claim is pinned separately by sim.BenchmarkProbeOverhead and
// `make bench-sim`.)
func TestScenarioProbePassive(t *testing.T) {
	probed := Run(probedScenario(100 * sim.Millisecond))
	probed.Probe = nil
	bare := Run(probedScenario(0))
	if !reflect.DeepEqual(probed, bare) {
		t.Fatalf("probe perturbed the run:\nprobed %+v\nbare   %+v", probed, bare)
	}
}
