// Package workload generates the traffic models of the Phi paper's
// evaluation: senders alternating between exponentially distributed "on"
// transfers and exponentially distributed "off" idle periods (Section 2.2),
// plus persistent long-running flows (Figure 2c). It also provides the
// Scenario runner that wires workloads onto a dumbbell topology and
// collects the per-flow and per-link measurements the experiments consume.
package workload

import (
	"repro/internal/sim"
	"repro/internal/tcp"
)

// IDGen allocates unique flow IDs within one simulation.
type IDGen struct{ next sim.FlowID }

// NewIDGen returns a generator starting at 1.
func NewIDGen() *IDGen { return &IDGen{next: 1} }

// Next returns a fresh flow ID.
func (g *IDGen) Next() sim.FlowID {
	id := g.next
	g.next++
	return id
}

// SourceConfig parameterizes one on/off traffic source.
type SourceConfig struct {
	// MeanOnBytes is the mean of the exponential transfer-size
	// distribution (e.g. 500 KB for Figure 2, 100 KB for Table 3).
	MeanOnBytes int64
	// MeanOffTime is the mean of the exponential idle-period distribution.
	MeanOffTime sim.Time
	// CC constructs the congestion controller for each new connection.
	// It is consulted per connection, which is where Phi plugs in
	// context-dependent parameter choices.
	CC func() tcp.CongestionControl
	// TCP carries per-connection transport tunables.
	TCP tcp.Config
	// DelayAcks enables RFC 1122 delayed acknowledgments at receivers.
	DelayAcks bool
	// OnStart, if set, fires when a connection begins (Phi lookup point).
	OnStart func(flow sim.FlowID)
	// OnEnd, if set, fires when a connection completes (Phi report point).
	OnEnd func(st *tcp.FlowStats)
	// StartJitter delays the first connection by a uniform random amount
	// to desynchronize sources.
	StartJitter sim.Time
}

// Source drives sequential connections between one sender/receiver pair:
// transfer, idle, transfer, ... until stopped.
type Source struct {
	eng  *sim.Engine
	rng  *sim.RNG
	ids  *IDGen
	src  *sim.Node
	dst  *sim.Node
	cfg  SourceConfig
	cur  *tcp.Sender
	done bool

	// Completed holds the stats of finished connections.
	Completed []tcp.FlowStats
	// Launched counts connections started.
	Launched int
}

// NewOnOffSource creates a source between src and dst. Call Start.
func NewOnOffSource(eng *sim.Engine, rng *sim.RNG, ids *IDGen, src, dst *sim.Node, cfg SourceConfig) *Source {
	if cfg.CC == nil {
		panic("workload: SourceConfig.CC is required")
	}
	return &Source{eng: eng, rng: rng, ids: ids, src: src, dst: dst, cfg: cfg}
}

// Start schedules the first connection.
func (s *Source) Start() {
	s.eng.After(s.rng.Jitter(s.cfg.StartJitter), s.launch)
}

// Stop prevents further connections from starting and aborts the current
// transfer (its partial stats are still recorded).
func (s *Source) Stop() {
	s.done = true
	if s.cur != nil && !s.cur.Done() {
		s.cur.Stop()
	}
}

func (s *Source) launch() {
	if s.done {
		return
	}
	size := s.rng.ExpBytes(s.cfg.MeanOnBytes)
	flow := s.ids.Next()
	cfg := s.cfg.TCP
	cfg.OnComplete = s.onComplete
	snd, rcv := tcp.Connect(s.eng, flow, s.src, s.dst, size, s.cfg.CC(), cfg)
	rcv.DelayAcks = s.cfg.DelayAcks
	s.cur = snd
	s.Launched++
	if s.cfg.OnStart != nil {
		s.cfg.OnStart(flow)
	}
	snd.Start()
}

func (s *Source) onComplete(st *tcp.FlowStats) {
	s.Completed = append(s.Completed, *st)
	s.cur = nil
	if s.cfg.OnEnd != nil {
		s.cfg.OnEnd(st)
	}
	if s.done {
		return
	}
	off := s.rng.ExpDuration(s.cfg.MeanOffTime)
	s.eng.After(off, s.launch)
}

// PersistentSource drives a single long-running connection (Figure 2c's
// workload) that streams until stopped.
type PersistentSource struct {
	Sender   *tcp.Sender
	Receiver *tcp.Receiver
	cfg      SourceConfig

	// Completed holds the final stats after Stop.
	Completed []tcp.FlowStats
}

// NewPersistentSource creates and attaches an unbounded transfer.
func NewPersistentSource(eng *sim.Engine, ids *IDGen, src, dst *sim.Node, cfg SourceConfig) *PersistentSource {
	if cfg.CC == nil {
		panic("workload: SourceConfig.CC is required")
	}
	p := &PersistentSource{cfg: cfg}
	flow := ids.Next()
	tcpCfg := cfg.TCP
	tcpCfg.OnComplete = func(st *tcp.FlowStats) {
		p.Completed = append(p.Completed, *st)
		if cfg.OnEnd != nil {
			cfg.OnEnd(st)
		}
	}
	p.Sender, p.Receiver = tcp.Connect(eng, flow, src, dst, 0, cfg.CC(), tcpCfg)
	p.Receiver.DelayAcks = cfg.DelayAcks
	return p
}

// Start begins streaming.
func (p *PersistentSource) Start() {
	if p.cfg.OnStart != nil {
		p.cfg.OnStart(p.Sender.Stats().Flow)
	}
	p.Sender.Start()
}

// Stop ends the stream, finalizing stats.
func (p *PersistentSource) Stop() { p.Sender.Stop() }
