package workload

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// Scenario describes one complete dumbbell experiment: topology, traffic
// model, congestion control per sender, and measurement horizon. It is the
// unit of execution for every figure and table in the paper's evaluation.
type Scenario struct {
	// Dumbbell is the topology (Figure 1).
	Dumbbell sim.DumbbellConfig
	// MeanOnBytes / MeanOffTime parameterize the on/off traffic model.
	// Ignored when LongRunning is set.
	MeanOnBytes int64
	MeanOffTime sim.Time
	// LongRunning replaces on/off sources with one persistent flow per
	// sender (Figure 2c's workload).
	LongRunning bool
	// Duration is the simulated horizon; Warmup excludes the initial
	// transient from link-level measurements.
	Duration sim.Time
	Warmup   sim.Time
	// Seed makes the run reproducible.
	Seed int64
	// CC returns the congestion-controller factory for sender i. This is
	// where Phi-modified and unmodified senders are mixed (Figure 4).
	CC func(sender int) func() tcp.CongestionControl
	// TCP carries shared transport tunables.
	TCP tcp.Config
	// DelayAcks enables delayed acknowledgments at every receiver.
	DelayAcks bool
	// OnStart / OnEnd observe connection lifecycles (Phi's lookup and
	// report points).
	OnStart func(sender int, flow sim.FlowID)
	// OnEnd fires when any connection finishes.
	OnEnd func(sender int, st *tcp.FlowStats)
	// OnTopology fires once after the dumbbell is built and its monitor
	// attached, before any traffic starts — the hook through which
	// oracle-style controllers (Remy-Phi-ideal) reach the bottleneck.
	OnTopology func(eng *sim.Engine, d *sim.Dumbbell)
	// ProbeInterval, when positive, attaches a sim.Probe to the run: the
	// bottleneck link is sampled on this virtual-time cadence (and, for
	// long-running scenarios, every persistent sender's flow), and the
	// collected series are returned in Result.Probe — the live
	// utilization/queue/cwnd dynamics of the paper's Figures 1-3.
	ProbeInterval sim.Time
	// ProbeCap bounds each probe series (ring-buffer eviction beyond it);
	// 0 uses the probe default.
	ProbeCap int
}

// Result aggregates one scenario run.
type Result struct {
	// Flows holds per-connection stats, including partially completed
	// connections aborted at the horizon.
	Flows []tcp.FlowStats
	// SenderOf maps the index in Flows to the sender that ran it.
	SenderOf []int

	// Link-level measurements over the post-warmup interval.
	Utilization    float64
	LinkLossRate   float64
	MeanQueueDelay sim.Time

	// PropRTT is the topology's propagation round-trip time.
	PropRTT sim.Time
	// Duration is the measured horizon.
	Duration sim.Time

	// Probe holds the sampled time series when Scenario.ProbeInterval was
	// set (nil otherwise).
	Probe *sim.Probe
}

// Run executes the scenario and returns its measurements.
func Run(sc Scenario) Result {
	if sc.CC == nil {
		panic("workload: Scenario.CC is required")
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(sc.Seed)
	d := sim.NewDumbbell(eng, sc.Dumbbell)
	mon := d.Bottleneck.Monitor()
	ids := NewIDGen()
	if sc.OnTopology != nil {
		sc.OnTopology(eng, d)
	}

	res := Result{PropRTT: sc.Dumbbell.RTT, Duration: sc.Duration}
	var probe *sim.Probe
	if sc.ProbeInterval > 0 {
		probe = sim.NewProbe(eng, sim.ProbeConfig{Interval: sc.ProbeInterval, MaxSamples: sc.ProbeCap})
		probe.WatchLink("bottleneck", d.Bottleneck)
		res.Probe = probe
	}
	record := func(sender int) func(*tcp.FlowStats) {
		return func(st *tcp.FlowStats) {
			res.Flows = append(res.Flows, *st)
			res.SenderOf = append(res.SenderOf, sender)
			if sc.OnEnd != nil {
				sc.OnEnd(sender, st)
			}
		}
	}

	var stops []func()
	for i := 0; i < sc.Dumbbell.Senders; i++ {
		i := i
		cfg := SourceConfig{
			MeanOnBytes: sc.MeanOnBytes,
			MeanOffTime: sc.MeanOffTime,
			CC:          sc.CC(i),
			TCP:         sc.TCP,
			DelayAcks:   sc.DelayAcks,
			OnEnd:       record(i),
			StartJitter: sc.Dumbbell.RTT,
		}
		if sc.OnStart != nil {
			cfg.OnStart = func(flow sim.FlowID) { sc.OnStart(i, flow) }
		}
		if sc.LongRunning {
			src := NewPersistentSource(eng, ids, d.Senders[i], d.Receivers[i], cfg)
			if probe != nil {
				probe.WatchFlow(fmt.Sprintf("sender-%d", i), src.Sender)
			}
			src.Start()
			stops = append(stops, src.Stop)
		} else {
			src := NewOnOffSource(eng, rng.Fork(), ids, d.Senders[i], d.Receivers[i], cfg)
			src.Start()
			stops = append(stops, src.Stop)
		}
	}

	if sc.Warmup > 0 {
		eng.At(sc.Warmup, mon.Reset)
	}
	eng.RunUntil(sc.Duration)
	for _, stop := range stops {
		stop()
	}

	res.Utilization = mon.Utilization()
	res.LinkLossRate = mon.LossRate()
	res.MeanQueueDelay = mon.MeanQueueDelay()
	return res
}

// usable reports whether a flow moved data and has a measurable duration.
func usable(f *tcp.FlowStats) bool {
	return f.BytesAcked > 0 && f.Duration() > 0
}

// ThroughputsMbps returns per-flow throughputs in Mbit/s.
func (r *Result) ThroughputsMbps() []float64 {
	var out []float64
	for i := range r.Flows {
		if f := &r.Flows[i]; usable(f) {
			out = append(out, f.ThroughputBps()/1e6)
		}
	}
	return out
}

// QueueingDelaysMs returns per-flow average queueing delays (RTT above
// propagation) in milliseconds.
func (r *Result) QueueingDelaysMs() []float64 {
	var out []float64
	for i := range r.Flows {
		if f := &r.Flows[i]; usable(f) && f.RTTCount > 0 {
			out = append(out, f.QueueingDelay(r.PropRTT).Milliseconds())
		}
	}
	return out
}

// AggThroughputMbps is total delivered bits over total on-time, the
// paper's "throughput = bits transferred / ontime".
func (r *Result) AggThroughputMbps() float64 {
	var bits, secs float64
	for i := range r.Flows {
		if f := &r.Flows[i]; usable(f) {
			bits += float64(f.BytesAcked) * 8
			secs += f.Duration().Seconds()
		}
	}
	if secs == 0 {
		return 0
	}
	return bits / secs / 1e6
}

// MeanRTT returns the sample-weighted mean RTT across flows.
func (r *Result) MeanRTT() sim.Time {
	var sum sim.Time
	var n int64
	for i := range r.Flows {
		sum += r.Flows[i].RTTSum
		n += r.Flows[i].RTTCount
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Time(n)
}

// MeanQueueingDelayMs is the mean RTT in excess of propagation, in ms.
func (r *Result) MeanQueueingDelayMs() float64 {
	q := r.MeanRTT() - r.PropRTT
	if q < 0 {
		q = 0
	}
	return q.Milliseconds()
}

// SenderLossRate is total retransmissions over total data packets sent.
func (r *Result) SenderLossRate() float64 {
	var rex, sent int64
	for i := range r.Flows {
		rex += r.Flows[i].Retransmits
		sent += r.Flows[i].PacketsSent
	}
	if sent == 0 {
		return 0
	}
	return float64(rex) / float64(sent)
}

// LossPower evaluates the paper's objective P_l = r(1-l)/d over this run:
// aggregate throughput (Mbit/s), link loss rate, and mean RTT (seconds).
func (r *Result) LossPower() float64 {
	return metrics.LossPower(r.AggThroughputMbps(), r.LinkLossRate, r.MeanRTT().Seconds())
}

// LogPower evaluates Remy's objective ln(throughput/delay) over this run.
func (r *Result) LogPower() float64 {
	return metrics.LogPower(r.AggThroughputMbps(), r.MeanRTT().Seconds())
}

// MedianThroughputMbps returns the median per-flow throughput.
func (r *Result) MedianThroughputMbps() float64 {
	return metrics.Median(r.ThroughputsMbps())
}

// MedianQueueingDelayMs returns the median per-flow queueing delay.
func (r *Result) MedianQueueingDelayMs() float64 {
	return metrics.Median(r.QueueingDelaysMs())
}

// CompletedFlows counts connections that delivered all their bytes.
func (r *Result) CompletedFlows() int {
	n := 0
	for i := range r.Flows {
		if r.Flows[i].Completed {
			n++
		}
	}
	return n
}
