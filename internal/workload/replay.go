package workload

import (
	"sort"

	"repro/internal/ipfix"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// Trace-driven replay: instead of a synthetic on/off model, drive the
// dumbbell with the flows of an IPFIX export — each record becomes one
// transfer of its (sampling-corrected) size at its recorded start time.
// This closes the loop between the Section 2.1 measurement pipeline and
// the Section 2.2 simulations: the same records a collector gathered can
// be replayed under any congestion-control scheme.

// ReplayConfig parameterizes a replay run.
type ReplayConfig struct {
	// Dumbbell is the topology; senders are assigned to flows round-robin.
	Dumbbell sim.DumbbellConfig
	// Records are the flows to replay (start times are taken from
	// FlowRecord.Start, rebased so the earliest starts at zero).
	Records []ipfix.FlowRecord
	// SampleN scales record octet counts back up (records gathered under
	// 1-in-N sampling carry ~1/N of the true bytes); 0 or 1 replays as-is.
	SampleN int
	// MaxFlows bounds the replay (0 = all).
	MaxFlows int
	// Horizon bounds the simulation; 0 derives it from the trace span
	// plus a drain margin.
	Horizon sim.Time
	// CC constructs a controller per flow (required).
	CC func() tcp.CongestionControl
	// TCP carries transport tunables.
	TCP tcp.Config
}

// Replay runs the trace and returns the usual scenario result.
func Replay(cfg ReplayConfig) Result {
	if cfg.CC == nil {
		panic("workload: ReplayConfig.CC is required")
	}
	records := cfg.Records
	if cfg.MaxFlows > 0 && len(records) > cfg.MaxFlows {
		records = records[:cfg.MaxFlows]
	}
	ordered := make([]ipfix.FlowRecord, len(records))
	copy(ordered, records)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Start < ordered[j].Start })

	eng := sim.NewEngine()
	d := sim.NewDumbbell(eng, cfg.Dumbbell)
	mon := d.Bottleneck.Monitor()

	res := Result{PropRTT: cfg.Dumbbell.RTT}
	scale := int64(1)
	if cfg.SampleN > 1 {
		scale = int64(cfg.SampleN)
	}

	var base uint32
	if len(ordered) > 0 {
		base = ordered[0].Start
	}
	var lastStart sim.Time
	var senders []*tcp.Sender
	for i := range ordered {
		rec := &ordered[i]
		sender := i % cfg.Dumbbell.Senders
		bytes := int64(rec.Octets) * scale
		if bytes < 1 {
			bytes = 1
		}
		at := sim.Time(rec.Start-base) * sim.Second
		if at > lastStart {
			lastStart = at
		}
		flow := sim.FlowID(i + 1)
		i := i
		eng.At(at, func() {
			tcpCfg := cfg.TCP
			tcpCfg.OnComplete = func(st *tcp.FlowStats) {
				res.Flows = append(res.Flows, *st)
				res.SenderOf = append(res.SenderOf, i%cfg.Dumbbell.Senders)
			}
			snd, _ := tcp.Connect(eng, flow, d.Senders[sender], d.Receivers[sender],
				bytes, cfg.CC(), tcpCfg)
			senders = append(senders, snd)
			snd.Start()
		})
	}

	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = lastStart + 60*sim.Second
	}
	eng.RunUntil(horizon)
	for _, s := range senders {
		if !s.Done() {
			s.Stop()
		}
	}
	res.Duration = horizon
	res.Utilization = mon.Utilization()
	res.LinkLossRate = mon.LossRate()
	res.MeanQueueDelay = mon.MeanQueueDelay()
	return res
}
