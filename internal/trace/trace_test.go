package trace

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	opRoot  = Name("test.root")
	opChild = Name("test.child")
	opNote  = Name("failover")
)

// keepAll retains every trace via sampling, so tests can assert on what
// was recorded without racing the slow-heap floor.
func keepAll() Config { return Config{SampleEvery: 1} }

// retained merges every retention class (an unfilled slow-heap claims
// traces before the sampler sees them).
func retained(c *Collector) []*Trace {
	var out []*Trace
	out = append(out, c.Errors()...)
	out = append(out, c.Slowest()...)
	out = append(out, c.Sampled()...)
	return out
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(SpanContext{}, opRoot)
	if sp.Context().Valid() {
		t.Fatal("nil tracer produced a valid span context")
	}
	sp.Note(opNote)
	sp.SetShard(3)
	sp.End(errors.New("boom")) // must not panic
	if tr.Collector() != nil {
		t.Fatal("nil tracer has a collector")
	}
	if got := tr.Collector().Slowest(); got != nil {
		t.Fatalf("nil collector returned traces: %v", got)
	}
}

func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(SpanContext{}, opRoot)
		child := tr.Start(sp.Context(), opChild)
		child.End(nil)
		sp.End(nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %v times per span pair, want 0", allocs)
	}
}

func TestSpanParenting(t *testing.T) {
	tr := NewTracer(keepAll())
	root := tr.Start(SpanContext{}, opRoot)
	child := tr.Start(root.Context(), opChild)
	if child.Context().Trace != root.Context().Trace {
		t.Fatal("child span left the trace")
	}
	if child.Context().Span == root.Context().Span {
		t.Fatal("child reused the root span ID")
	}
	child.End(nil)
	root.End(nil)

	all := retained(tr.Collector())
	if len(all) != 1 {
		t.Fatalf("retained %d traces, want 1", len(all))
	}
	got := all[0]
	if got.Root != "test.root" || len(got.Spans) != 2 {
		t.Fatalf("trace = %+v", got)
	}
	var childInfo *SpanInfo
	for i := range got.Spans {
		if got.Spans[i].Name == "test.child" {
			childInfo = &got.Spans[i]
		}
	}
	if childInfo == nil {
		t.Fatal("child span not assembled")
	}
	if childInfo.Parent == "" {
		t.Fatal("child span lost its parent link")
	}
}

func TestErrorTraceAlwaysKept(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: -1}) // sampling off: only tail rules
	for i := 0; i < 10; i++ {
		sp := tr.Start(SpanContext{}, opRoot)
		sp.End(nil)
	}
	sp := tr.Start(SpanContext{}, opRoot)
	sp.End(errors.New("shard down"))

	errs := tr.Collector().Errors()
	if len(errs) != 1 {
		t.Fatalf("retained %d error traces, want 1", len(errs))
	}
	if errs[0].Err != "shard down" {
		t.Fatalf("error message = %q", errs[0].Err)
	}
}

func TestChildErrorMarksTraceInteresting(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: -1})
	root := tr.Start(SpanContext{}, opRoot)
	child := tr.Start(root.Context(), opChild)
	child.End(errors.New("owner failed"))
	root.End(nil) // root succeeded (failover), but the trace is interesting

	errs := tr.Collector().Errors()
	if len(errs) != 1 {
		t.Fatalf("retained %d traces, want 1 (child error must retain the trace)", len(errs))
	}
	found := false
	for _, sp := range errs[0].Spans {
		if sp.Err == "owner failed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("child error lost in assembly: %+v", errs[0].Spans)
	}
}

func TestNoteMarksTraceInteresting(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: -1})
	root := tr.Start(SpanContext{}, opRoot)
	child := tr.Start(root.Context(), opChild)
	child.Note(opNote)
	child.End(nil)
	root.End(nil)

	errs := tr.Collector().Errors()
	if len(errs) != 1 {
		t.Fatalf("noted trace not retained (got %d)", len(errs))
	}
	found := false
	for _, sp := range errs[0].Spans {
		if sp.Note == "failover" {
			found = true
		}
	}
	if !found {
		t.Fatalf("note lost in assembly: %+v", errs[0].Spans)
	}
}

func TestSlowestRetention(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: -1, KeepSlowest: 2})
	for _, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 3 * time.Millisecond, time.Microsecond} {
		sp := tr.Start(SpanContext{}, opRoot)
		sp.start = sp.start.Add(-d) // backdate instead of sleeping
		sp.End(nil)
	}
	slow := tr.Collector().Slowest()
	if len(slow) != 2 {
		t.Fatalf("retained %d slow traces, want 2", len(slow))
	}
	if slow[0].DurUs < slow[1].DurUs {
		t.Fatal("slowest not sorted descending")
	}
	if slow[0].DurUs < 4500 || slow[1].DurUs < 2500 {
		t.Fatalf("kept the wrong traces: %v, %v us", slow[0].DurUs, slow[1].DurUs)
	}
}

func TestStartRemoteAdoptsTrace(t *testing.T) {
	client := NewTracer(keepAll())
	server := NewTracer(keepAll())

	csp := client.Start(SpanContext{}, opRoot)
	ssp := server.StartRemote(csp.Context(), opChild)
	if ssp.Context().Trace != csp.Context().Trace {
		t.Fatal("remote span did not adopt the wire trace ID")
	}
	ssp.End(nil)
	csp.End(nil)

	st := retained(server.Collector())
	ct := retained(client.Collector())
	if len(st) != 1 || len(ct) != 1 {
		t.Fatalf("server retained %d, client %d; want 1 and 1", len(st), len(ct))
	}
	if st[0].ID != ct[0].ID {
		t.Fatalf("trace IDs diverged: server %s client %s", st[0].ID, ct[0].ID)
	}
	if !st[0].Spans[0].Remote {
		t.Fatal("server root span not marked remote-parent")
	}
}

func TestStartRemoteInvalidContextFallsBack(t *testing.T) {
	tr := NewTracer(keepAll())
	sp := tr.StartRemote(SpanContext{}, opRoot)
	if !sp.Context().Valid() {
		t.Fatal("StartRemote with invalid parent must start a fresh trace")
	}
	sp.End(nil)
	if got := retained(tr.Collector()); len(got) != 1 {
		t.Fatalf("retained %d traces, want 1", len(got))
	}
}

func TestConcurrentSpansRaceClean(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 4, RingSize: 256, Rings: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				root := tr.Start(SpanContext{}, opRoot)
				child := tr.Start(root.Context(), opChild)
				child.SetShard(g)
				if i%97 == 0 {
					child.End(errors.New("spurious"))
				} else {
					child.End(nil)
				}
				root.End(nil)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tr.Collector().Slowest()
			tr.Collector().Errors()
			tr.Collector().Sampled()
		}
	}()
	wg.Wait()
	<-done
	finished, _ := tr.Collector().Stats()
	if finished != 8*500 {
		t.Fatalf("finished = %d, want %d", finished, 8*500)
	}
}

func TestHandlerJSONAndText(t *testing.T) {
	tr := NewTracer(keepAll())
	root := tr.Start(SpanContext{}, opRoot)
	child := tr.Start(root.Context(), opChild)
	child.SetShard(2)
	child.Note(opNote)
	child.End(nil)
	root.End(nil)

	h := tr.Collector().Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var out map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	for _, key := range []string{"slowest", "errors", "sampled", "stats"} {
		if _, ok := out[key]; !ok {
			t.Fatalf("JSON missing %q: %s", key, rec.Body.String())
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=text", nil))
	text := rec.Body.String()
	if !strings.Contains(text, "test.root") || !strings.Contains(text, "note=failover") {
		t.Fatalf("text view missing spans:\n%s", text)
	}

	// format=text must respect view. The noted trace is retained as an
	// error-class trace, so view=errors shows it (with no section headers)
	// and view=slowest renders empty instead of falling back to the
	// default two-section layout.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?view=errors&format=text", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "test.root") || strings.Contains(body, "== slowest traces ==") {
		t.Fatalf("view=errors text wrong:\n%s", body)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?view=slowest&format=text", nil))
	if body := rec.Body.String(); strings.Contains(body, "test.root") {
		t.Fatalf("view=slowest text rendered non-slow traces:\n%s", body)
	}

	// A nil collector must serve an empty-but-valid response.
	rec = httptest.NewRecorder()
	(*Collector)(nil).Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("nil collector handler status = %d", rec.Code)
	}
}

func TestInternOverflowCollapses(t *testing.T) {
	// Exhausting the intern table must degrade, not grow without bound.
	for i := 0; i < maxInterned+100; i++ {
		Name("overflow-test-" + string(rune('a'+i%26)) + "-" + time.Now().String())
	}
	r := Name("definitely-new-after-overflow")
	if got := lookupRef(r); got != "<overflow>" && got != "definitely-new-after-overflow" {
		t.Fatalf("overflow ref resolved to %q", got)
	}
}
