package trace

import (
	"container/heap"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the collector. Zero values select the defaults.
type Config struct {
	// Rings is the number of span ring buffers (rounded up to a power of
	// two; default: NumCPU rounded up). Spans of one trace always land in
	// the same ring, so assembly is a single-ring scan.
	Rings int
	// RingSize is the slot count per ring (rounded up to a power of two;
	// default 2048).
	RingSize int
	// KeepSlowest is how many slowest-root traces are retained (default 32).
	KeepSlowest int
	// KeepErrors is how many error/interesting traces are retained,
	// newest-wins (default 64).
	KeepErrors int
	// SampleEvery probabilistically retains one in every SampleEvery
	// otherwise-boring traces (default 128; negative disables sampling).
	SampleEvery int
	// MaxSpans bounds the spans assembled per retained trace (default 64).
	MaxSpans int
}

func (c Config) withDefaults() Config {
	if c.Rings <= 0 {
		c.Rings = runtime.NumCPU()
	}
	c.Rings = 1 << bits.Len(uint(c.Rings-1)) // next power of two
	if c.RingSize <= 0 {
		c.RingSize = 2048
	}
	c.RingSize = 1 << bits.Len(uint(c.RingSize-1))
	if c.KeepSlowest <= 0 {
		c.KeepSlowest = 32
	}
	if c.KeepErrors <= 0 {
		c.KeepErrors = 64
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 128
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 64
	}
	return c
}

// spanRecord is the fixed-size form of a finished span.
type spanRecord struct {
	trace  TraceID
	span   SpanID
	parent SpanID
	name   Ref
	note   Ref
	errRef Ref
	shard  int32
	flags  uint8
	start  int64 // unix nanos
	dur    int64 // nanos
}

// slot holds one spanRecord entirely in atomics, guarded by a per-slot
// seqlock: the writer makes seq odd, stores the fields, and makes it
// even; a reader accepts a copy only if it saw the same even seq before
// and after. All accesses are atomic, so the collector is clean under
// the race detector while staying lock-free.
type slot struct {
	seq    atomic.Uint64
	trace  atomic.Uint64
	span   atomic.Uint64
	parent atomic.Uint64
	// meta packs name(16) | note(16) | errRef(16) | flags(8) | spare(8).
	meta  atomic.Uint64
	shard atomic.Int64
	start atomic.Int64
	dur   atomic.Int64
}

func packMeta(name, note, errRef Ref, flags uint8) uint64 {
	return uint64(name)<<48 | uint64(note)<<32 | uint64(errRef)<<16 | uint64(flags)<<8
}

func unpackMeta(m uint64) (name, note, errRef Ref, flags uint8) {
	return Ref(m >> 48), Ref(m >> 32), Ref(m >> 16), uint8(m >> 8)
}

func (s *slot) store(rec *spanRecord) {
	s.seq.Add(1) // odd: write in progress
	s.trace.Store(uint64(rec.trace))
	s.span.Store(uint64(rec.span))
	s.parent.Store(uint64(rec.parent))
	s.meta.Store(packMeta(rec.name, rec.note, rec.errRef, rec.flags))
	s.shard.Store(int64(rec.shard))
	s.start.Store(rec.start)
	s.dur.Store(rec.dur)
	s.seq.Add(1) // even: stable
}

// load copies the slot into rec, reporting whether the copy is
// consistent (no concurrent writer touched it mid-read).
func (s *slot) load(rec *spanRecord) bool {
	s1 := s.seq.Load()
	if s1 == 0 || s1%2 == 1 {
		return false
	}
	rec.trace = TraceID(s.trace.Load())
	rec.span = SpanID(s.span.Load())
	rec.parent = SpanID(s.parent.Load())
	rec.name, rec.note, rec.errRef, rec.flags = unpackMeta(s.meta.Load())
	rec.shard = int32(s.shard.Load())
	rec.start = s.start.Load()
	rec.dur = s.dur.Load()
	return s.seq.Load() == s1
}

// ring is one lock-free span buffer: writers claim slots with an atomic
// head increment and overwrite the oldest records when full.
type ring struct {
	head  atomic.Uint64
	slots []slot
}

func (r *ring) put(rec *spanRecord) {
	i := r.head.Add(1) - 1
	r.slots[i&uint64(len(r.slots)-1)].store(rec)
}

// scan collects consistent records matching trace id, up to max.
func (r *ring) scan(id TraceID, max int) []spanRecord {
	var out []spanRecord
	var rec spanRecord
	for i := range r.slots {
		if !r.slots[i].load(&rec) || rec.trace != id {
			continue
		}
		out = append(out, rec)
		if len(out) >= max {
			break
		}
	}
	return out
}

// SpanInfo is the assembled, human-consumable form of one span.
type SpanInfo struct {
	ID       string  `json:"id"`
	Parent   string  `json:"parent,omitempty"`
	Name     string  `json:"name"`
	Note     string  `json:"note,omitempty"`
	Shard    int     `json:"shard"` // NoShard (-1) when not shard-bound
	Remote   bool    `json:"remote_parent,omitempty"`
	OffsetUs float64 `json:"offset_us"` // start relative to the trace's first span
	DurUs    float64 `json:"dur_us"`
	Err      string  `json:"err,omitempty"`
}

// Trace is one retained trace: the locally observed spans of a request.
type Trace struct {
	ID    string     `json:"id"`
	Root  string     `json:"root"`
	Start time.Time  `json:"start"`
	DurUs float64    `json:"dur_us"`
	Err   string     `json:"err,omitempty"`
	Kept  string     `json:"kept"` // "error" | "slow" | "sampled"
	Spans []SpanInfo `json:"spans"`
}

// Collector receives finished spans and applies tail-based retention.
type Collector struct {
	cfg      Config
	rings    []ring
	ringMask uint64

	// interesting is a small lossy set of trace IDs flagged mid-flight
	// (child error, failover note, …) so the root-end decision can keep
	// them even when the root itself looks healthy.
	interesting [512]atomic.Uint64

	// stages, when attached, receives every finished span's (name, dur)
	// for per-stage latency decomposition. Detached costs one pointer
	// load per span end.
	stages atomic.Pointer[StageAggregator]

	sampleCtr atomic.Uint64
	dropped   atomic.Uint64 // local roots that were not retained
	finished  atomic.Uint64 // local roots observed

	// slowFloor caches the smallest retained slow-trace duration so the
	// common case (not slow enough) skips the lock entirely.
	slowFloor atomic.Int64

	mu      sync.Mutex
	slow    slowHeap // min-heap by duration, capacity KeepSlowest
	errs    []*Trace // newest-wins ring, capacity KeepErrors
	errsIdx int
	sampled []*Trace // newest-wins ring, capacity KeepErrors
	sampIdx int
}

// NewCollector creates a collector per cfg.
func NewCollector(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{cfg: cfg, rings: make([]ring, cfg.Rings), ringMask: uint64(cfg.Rings - 1)}
	for i := range c.rings {
		c.rings[i].slots = make([]slot, cfg.RingSize)
	}
	c.slowFloor.Store(-1) // heap not full: everything qualifies
	return c
}

// ringFor shards by trace ID so one trace's spans colocate: assembly is
// a single-ring scan, and concurrent traces spread across rings, which
// bounds contention like a per-core buffer would.
func (c *Collector) ringFor(id TraceID) *ring {
	return &c.rings[splitmix64(uint64(id))&c.ringMask]
}

func (c *Collector) record(rec *spanRecord) {
	c.ringFor(rec.trace).put(rec)
	if a := c.stages.Load(); a != nil {
		a.observe(rec.name, rec.dur)
	}
}

// AttachStages attaches (or, with nil, detaches) a stage aggregator:
// from now on every finished span also lands in the aggregator's
// per-stage histogram. Safe to call while spans are being recorded and
// on a nil collector.
func (c *Collector) AttachStages(a *StageAggregator) {
	if c == nil {
		return
	}
	c.stages.Store(a)
}

// Stages returns the attached aggregator (nil when detached or on a nil
// collector).
func (c *Collector) Stages() *StageAggregator {
	if c == nil {
		return nil
	}
	return c.stages.Load()
}

func (c *Collector) markInteresting(id TraceID) {
	if id == 0 {
		return
	}
	c.interesting[uint64(id)&511].Store(uint64(id))
}

// MarkInteresting flags a trace for tail retention from outside the span
// API — the health monitor uses it to pin the evidence traces of a slice
// whose volume just went anomalous, so the requests around an incident
// survive sampling. Safe on a nil collector; a no-op for traces whose
// local root already ended (retention is decided at root end).
func (c *Collector) MarkInteresting(id TraceID) {
	if c == nil {
		return
	}
	c.markInteresting(id)
}

func (c *Collector) isInteresting(id TraceID) bool {
	return c.interesting[uint64(id)&511].Load() == uint64(id)
}

// finishTrace runs the tail-retention decision when a local root ends:
// always keep error/interesting traces, always keep the slowest N, and
// sample one in SampleEvery of the rest. Only kept traces are assembled.
func (c *Collector) finishTrace(root *spanRecord, err error) {
	c.finished.Add(1)
	switch {
	case err != nil || root.flags&flagError != 0 || c.isInteresting(root.trace):
		c.retain(c.assemble(root), "error")
	case c.qualifiesSlow(root.dur):
		c.retain(c.assemble(root), "slow")
	case c.cfg.SampleEvery > 0 && c.sampleCtr.Add(1)%uint64(c.cfg.SampleEvery) == 0:
		c.retain(c.assemble(root), "sampled")
	default:
		c.dropped.Add(1)
	}
}

func (c *Collector) qualifiesSlow(dur int64) bool {
	return dur > c.slowFloor.Load()
}

// assemble scans the trace's ring and builds the retained form. This is
// the expensive path; it runs only for retained traces.
func (c *Collector) assemble(root *spanRecord) *Trace {
	recs := c.ringFor(root.trace).scan(root.trace, c.cfg.MaxSpans)
	sort.Slice(recs, func(i, j int) bool { return recs[i].start < recs[j].start })
	t0 := root.start
	if len(recs) > 0 && recs[0].start < t0 {
		t0 = recs[0].start
	}
	tr := &Trace{
		ID:    hex64(uint64(root.trace)),
		Root:  lookupRef(root.name),
		Start: time.Unix(0, t0),
		DurUs: float64(root.dur) / 1e3,
		Err:   lookupRef(root.errRef),
		Spans: make([]SpanInfo, 0, len(recs)),
	}
	for i := range recs {
		r := &recs[i]
		tr.Spans = append(tr.Spans, SpanInfo{
			ID:       hex64(uint64(r.span)),
			Parent:   hexOrEmpty(uint64(r.parent)),
			Name:     lookupRef(r.name),
			Note:     lookupRef(r.note),
			Shard:    int(r.shard),
			Remote:   r.flags&flagRemote != 0,
			OffsetUs: float64(r.start-t0) / 1e3,
			DurUs:    float64(r.dur) / 1e3,
			Err:      lookupRef(r.errRef),
		})
	}
	return tr
}

func (c *Collector) retain(tr *Trace, why string) {
	tr.Kept = why
	c.mu.Lock()
	defer c.mu.Unlock()
	switch why {
	case "error":
		if len(c.errs) < c.cfg.KeepErrors {
			c.errs = append(c.errs, tr)
		} else {
			c.errs[c.errsIdx%len(c.errs)] = tr
			c.errsIdx++
		}
	case "slow":
		if len(c.slow) < c.cfg.KeepSlowest {
			heap.Push(&c.slow, tr)
		} else if tr.DurUs > c.slow[0].DurUs {
			c.slow[0] = tr
			heap.Fix(&c.slow, 0)
		}
		if len(c.slow) == c.cfg.KeepSlowest {
			c.slowFloor.Store(int64(c.slow[0].DurUs * 1e3))
		}
	case "sampled":
		if len(c.sampled) < c.cfg.KeepErrors {
			c.sampled = append(c.sampled, tr)
		} else {
			c.sampled[c.sampIdx%len(c.sampled)] = tr
			c.sampIdx++
		}
	}
}

// Slowest returns the retained slowest traces, slowest first.
func (c *Collector) Slowest() []*Trace {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]*Trace, len(c.slow))
	copy(out, c.slow)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurUs > out[j].DurUs })
	return out
}

// Errors returns the retained error/interesting traces, newest last.
func (c *Collector) Errors() []*Trace {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Trace(nil), c.errs...)
}

// Sampled returns the probabilistically retained traces, newest last.
func (c *Collector) Sampled() []*Trace {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Trace(nil), c.sampled...)
}

// Stats reports how many local traces finished and how many were
// dropped by the sampler.
func (c *Collector) Stats() (finished, dropped uint64) {
	if c == nil {
		return 0, 0
	}
	return c.finished.Load(), c.dropped.Load()
}

// slowHeap is a min-heap of traces by duration (root = fastest retained,
// the next eviction candidate).
type slowHeap []*Trace

func (h slowHeap) Len() int           { return len(h) }
func (h slowHeap) Less(i, j int) bool { return h[i].DurUs < h[j].DurUs }
func (h slowHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slowHeap) Push(x any)        { *h = append(*h, x.(*Trace)) }
func (h *slowHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

const hexDigits = "0123456789abcdef"

// hex64 formats an ID as 16 hex digits without fmt.
func hex64(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

func hexOrEmpty(v uint64) string {
	if v == 0 {
		return ""
	}
	return hex64(v)
}
