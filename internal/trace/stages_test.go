package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageAggregatorNilSafety(t *testing.T) {
	var a *StageAggregator
	a.Observe(Name("whatever"), time.Millisecond) // must not panic
	if s := a.Snapshot(); s != nil {
		t.Fatalf("nil aggregator snapshot: got %v, want nil", s)
	}
	rec := httptest.NewRecorder()
	a.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/stages", nil))
	var doc struct {
		Stages []StageSummary `json:"stages"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("nil aggregator handler did not serve JSON: %v", err)
	}
	if len(doc.Stages) != 0 {
		t.Fatalf("nil aggregator served stages: %v", doc.Stages)
	}
}

func TestStagesFedBySpanEnds(t *testing.T) {
	tr := NewTracer(Config{})
	agg := NewStageAggregator()
	tr.Collector().AttachStages(agg)
	if tr.Stages() != agg {
		t.Fatal("Tracer.Stages did not return the attached aggregator")
	}

	stage := Name("test.stage")
	root := tr.Start(SpanContext{}, stage)
	time.Sleep(time.Millisecond)
	root.End(nil)

	snaps := agg.Snapshot()
	s, ok := snaps["test.stage"]
	if !ok {
		t.Fatalf("span end did not feed the aggregator: %v", snaps)
	}
	if s.Count != 1 {
		t.Fatalf("stage count %d, want 1", s.Count)
	}
	if s.Max() < int64(time.Millisecond)/2 {
		t.Fatalf("stage duration %dns implausibly small for a 1ms span", s.Max())
	}
}

func TestStagesDirectObserveAndSummaries(t *testing.T) {
	agg := NewStageAggregator()
	fast, slow := Name("stage.fast"), Name("stage.slow")
	for i := 0; i < 100; i++ {
		agg.Observe(fast, 10*time.Microsecond)
	}
	agg.Observe(slow, 5*time.Millisecond)
	agg.Observe(0, time.Second)         // unnamed ref: ignored
	agg.Observe(Ref(2000), time.Second) // past maxInterned: ignored
	sums := agg.Summaries()
	if len(sums) != 2 {
		t.Fatalf("got %d stages, want 2: %v", len(sums), sums)
	}
	if sums[0].Stage != "stage.fast" || sums[0].Count != 100 {
		t.Fatalf("busiest-first ordering broken: %v", sums)
	}
	if sums[1].P99Us < 4000 {
		t.Fatalf("slow stage p99 %vus, want ~5000us", sums[1].P99Us)
	}
}

func TestStagesConcurrentObserve(t *testing.T) {
	agg := NewStageAggregator()
	refs := []Ref{Name("c.a"), Name("c.b"), Name("c.c")}
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				agg.Observe(refs[i%len(refs)], time.Duration(i)*time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, s := range agg.Snapshot() {
		total += s.Count
	}
	if total != writers*per {
		t.Fatalf("lost observations under concurrency: got %d, want %d", total, writers*per)
	}
}

func TestStagesHandlerTextFormat(t *testing.T) {
	agg := NewStageAggregator()
	agg.Observe(Name("text.stage"), time.Millisecond)
	rec := httptest.NewRecorder()
	agg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/stages?format=text", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "text.stage") || !strings.Contains(body, "p99_us") {
		t.Fatalf("text table missing stage or header:\n%s", body)
	}
}

func BenchmarkStageAggregatorObserve(b *testing.B) {
	agg := NewStageAggregator()
	ref := Name("bench.stage")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		agg.Observe(ref, time.Microsecond)
	}
}
