// Package trace is lightweight per-request span tracing for the
// context-server data path: trace/span IDs minted at the client,
// propagated over the phiwire protocol, and recorded at every layer the
// request crosses (client dial/request, frontend routing and failover,
// shard handling).
//
// The design follows the same always-cheap discipline as the telemetry
// package, in the spirit of Dapper-style production tracing:
//
//  1. A nil *Tracer is a complete no-op — Start returns a zero Span and
//     End returns immediately, with zero allocation, so an untraced
//     deployment pays one nil check per span site.
//  2. The record path is lock-free: finished spans are written into
//     per-core-count sharded ring buffers of fixed-size, atomics-only
//     slots (a seqlock per slot guards against torn reads). No maps, no
//     allocation, no formatting.
//  3. Retention is tail-based: the keep/drop decision is made when a
//     trace's local root span ends, so error traces and the slowest N
//     are always kept while the boring bulk is sampled probabilistically.
//     Only retained traces pay for assembly (a ring scan plus one
//     allocation) — the interesting tail is expensive, the common case
//     is not.
//
// Span names and notes are interned Refs registered at package init
// time, so the hot path stores small integers, never strings; error
// messages are interned lazily on the (rare) error path.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request; zero means "not traced".
// IDs are minted by the client that originates the request and
// propagated over the wire, so client- and server-side collectors can be
// joined on the ID.
type TraceID uint64

// SpanID identifies one span within a trace; zero means "none".
type SpanID uint64

// SpanContext is the propagated part of a span: enough to parent a child
// span locally or remotely. It is a small value, passed by copy.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context belongs to a live trace.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

// Ref is an interned span name or note. Register names at init time with
// Name; the zero Ref renders as "".
type Ref uint16

// refOverflow is returned once the intern table is full, so a
// pathological error storm cannot grow memory without bound.
const refOverflow Ref = 1

// baseNames seeds the intern table. It is a plain var (not an init
// func) so Name is safe to call from package-level var initializers in
// any package, including this one's tests — Go's initialization
// dependency analysis orders it before any such call.
var baseNames = []string{"", "<overflow>"}

// nameTable interns span names and notes (and, lazily, error strings).
// Reads on the hot path are index lookups into an append-only slice
// published through an atomic pointer; writes (registration, rare error
// interning) take a lock.
var nameTable = struct {
	mu    sync.Mutex
	index map[string]Ref
	names atomic.Pointer[[]string]
}{index: map[string]Ref{"": 0, "<overflow>": refOverflow}}

// loadNames returns the published intern slice (the seed table until
// the first registration stores a copy).
func loadNames() []string {
	if p := nameTable.names.Load(); p != nil {
		return *p
	}
	return baseNames
}

// maxInterned bounds the intern table; past it, new strings collapse to
// the overflow entry.
const maxInterned = 1024

// Name interns s and returns its Ref. Call from package-level var
// initializers, not hot paths.
func Name(s string) Ref {
	nameTable.mu.Lock()
	defer nameTable.mu.Unlock()
	if r, ok := nameTable.index[s]; ok {
		return r
	}
	cur := loadNames()
	if len(cur) >= maxInterned {
		return refOverflow
	}
	next := make([]string, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = s
	r := Ref(len(cur))
	nameTable.index[s] = r
	nameTable.names.Store(&next)
	return r
}

// lookupRef resolves a Ref to its string ("" for zero or unknown).
func lookupRef(r Ref) string {
	names := loadNames()
	if int(r) < len(names) {
		return names[r]
	}
	return ""
}

// internErr interns an error's message. Only called on error paths.
func internErr(err error) Ref {
	if err == nil {
		return 0
	}
	return Name(err.Error())
}

// Span flag bits.
const (
	flagError     = 1 << 0 // span ended with a non-nil error
	flagLocalRoot = 1 << 1 // ending this span completes the local trace
	flagRemote    = 1 << 2 // parent span lives in another process
)

// NoShard is the shard attribute of spans not tied to a shard.
const NoShard = -1

// Tracer mints IDs and records finished spans into its Collector. A nil
// *Tracer disables tracing entirely (zero-allocation no-ops).
type Tracer struct {
	col  *Collector
	seed uint64
	ctr  atomic.Uint64
}

// NewTracer creates a tracer with its own collector. cfg zero values
// select defaults.
func NewTracer(cfg Config) *Tracer {
	return &Tracer{
		col:  NewCollector(cfg),
		seed: uint64(time.Now().UnixNano()) | 1,
	}
}

// Collector returns the tracer's collector (nil on a nil tracer).
func (t *Tracer) Collector() *Collector {
	if t == nil {
		return nil
	}
	return t.col
}

// Stages returns the stage aggregator attached to the tracer's
// collector, or nil. Hot paths that time sub-span stages (wire encode,
// syscall write, request decode) branch on this before taking
// timestamps, so the two time.Now calls per stage are only paid when
// someone is aggregating.
func (t *Tracer) Stages() *StageAggregator {
	if t == nil {
		return nil
	}
	return t.col.Stages()
}

// splitmix64 is a fast, well-distributed 64-bit mixer; with a per-tracer
// seed and an atomic counter it yields unique-enough IDs with no locks
// and no global PRNG.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Tracer) nextID() uint64 {
	id := splitmix64(t.seed + t.ctr.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// Span is one timed operation within a trace. It is a value: starting a
// span allocates nothing, and End writes the finished record into the
// collector. The zero Span (from a nil tracer) no-ops everywhere.
type Span struct {
	t      *Tracer
	sc     SpanContext
	parent SpanID
	start  time.Time
	name   Ref
	note   Ref
	shard  int32
	flags  uint8
}

// Start begins a span. An invalid parent starts a new trace whose local
// root this span is; a valid parent starts a child span in the parent's
// trace. On a nil tracer it returns the zero Span.
func (t *Tracer) Start(parent SpanContext, name Ref) Span {
	if t == nil {
		return Span{}
	}
	sp := Span{t: t, name: name, shard: NoShard, start: time.Now()}
	if parent.Valid() {
		sp.sc = SpanContext{Trace: parent.Trace, Span: SpanID(t.nextID())}
		sp.parent = parent.Span
	} else {
		sp.sc = SpanContext{Trace: TraceID(t.nextID()), Span: SpanID(t.nextID())}
		sp.flags = flagLocalRoot
	}
	return sp
}

// StartRemote begins the local root span of a trace that originated in
// another process: the trace ID is adopted from the wire and the remote
// span becomes the parent, but ending this span completes the *local*
// trace and triggers the retention decision. An invalid context falls
// back to starting a fresh local trace (a server can trace requests from
// clients that do not).
func (t *Tracer) StartRemote(parent SpanContext, name Ref) Span {
	if t == nil {
		return Span{}
	}
	if !parent.Valid() {
		return t.Start(SpanContext{}, name)
	}
	return Span{
		t:      t,
		sc:     SpanContext{Trace: parent.Trace, Span: SpanID(t.nextID())},
		parent: parent.Span,
		name:   name,
		shard:  NoShard,
		flags:  flagLocalRoot | flagRemote,
		start:  time.Now(),
	}
}

// Context returns the span's propagation context (zero on a no-op span),
// used both to parent local children and as the wire trace header.
func (s *Span) Context() SpanContext { return s.sc }

// Note attaches an interned annotation (e.g. "failover") to the span and
// marks the trace interesting, so tail retention keeps it even if the
// root span itself succeeds quickly.
func (s *Span) Note(note Ref) {
	if s.t == nil {
		return
	}
	s.note = note
	s.t.col.markInteresting(s.sc.Trace)
}

// SetShard attaches a shard id attribute.
func (s *Span) SetShard(shard int) {
	if s.t == nil {
		return
	}
	s.shard = int32(shard)
}

// End finishes the span, recording it (and err, if any) into the
// collector. Ending a local root span triggers the tail-based retention
// decision for the whole locally observed trace.
func (s *Span) End(err error) {
	if s.t == nil {
		return
	}
	col := s.t.col
	rec := spanRecord{
		trace:  s.sc.Trace,
		span:   s.sc.Span,
		parent: s.parent,
		name:   s.name,
		note:   s.note,
		shard:  s.shard,
		flags:  s.flags,
		start:  s.start.UnixNano(),
		dur:    time.Since(s.start).Nanoseconds(),
	}
	if err != nil {
		rec.flags |= flagError
		rec.errRef = internErr(err)
		if rec.flags&flagLocalRoot == 0 {
			col.markInteresting(s.sc.Trace)
		}
	}
	col.record(&rec)
	if rec.flags&flagLocalRoot != 0 {
		col.finishTrace(&rec, err)
	}
}
