package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// StageAggregator folds every finished span (and a handful of direct
// sub-span measurements on the wire hot path) into one mergeable
// telemetry histogram per stage, keyed by the span's interned name Ref.
// It answers "where did the microseconds go" live, at any load level:
// the per-stage latency decomposition of the serving path — client
// queue-wait, encode, syscall write, server decode, frontend routing,
// shard handle — without retaining or assembling a single trace.
//
// The cost discipline matches the rest of the package:
//
//   - Detached (the default), the only cost is one atomic pointer load
//     per span end — the same "~zero when off" budget as an
//     unregistered metric.
//   - Attached, each observation is one array index plus a histogram
//     Record (~19ns, lock-free); histograms are allocated lazily per
//     stage on first touch, so the table of 1024 possible Refs costs
//     pointers, not buckets.
//
// Aggregation is by name Ref, so the table is fixed-size (Refs are
// bounded by maxInterned) and the hot path never hashes a string.
type StageAggregator struct {
	hists [maxInterned]atomic.Pointer[telemetry.Histogram]
}

// NewStageAggregator returns an empty aggregator, ready to attach with
// Collector.AttachStages.
func NewStageAggregator() *StageAggregator { return &StageAggregator{} }

// Observe records one duration under the stage named by ref. Nil-safe
// and safe for unlimited concurrency.
func (a *StageAggregator) Observe(ref Ref, d time.Duration) {
	if a == nil || ref == 0 || int(ref) >= maxInterned {
		return
	}
	a.observe(ref, int64(d))
}

func (a *StageAggregator) observe(ref Ref, ns int64) {
	h := a.hists[ref].Load()
	if h == nil {
		h = telemetry.NewHistogram()
		if !a.hists[ref].CompareAndSwap(nil, h) {
			h = a.hists[ref].Load()
		}
	}
	h.Record(ns)
}

// Snapshot captures every stage's histogram, keyed by stage name. The
// snapshots are the standard mergeable/subtractable telemetry kind, so
// per-step deltas (saturation ramps) and cross-process merges both work.
func (a *StageAggregator) Snapshot() map[string]*telemetry.HistSnapshot {
	if a == nil {
		return nil
	}
	out := make(map[string]*telemetry.HistSnapshot)
	for i := range a.hists {
		h := a.hists[i].Load()
		if h == nil || h.Count() == 0 {
			continue
		}
		name := lookupRef(Ref(i))
		if name == "" {
			continue
		}
		out[name] = h.Snapshot()
	}
	return out
}

// StageSummary is the JSON form of one stage's latency distribution.
type StageSummary struct {
	Stage  string  `json:"stage"`
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// SummarizeStages reduces a stage snapshot map to sorted per-stage
// quantile summaries (busiest stage first), the form both /debug/stages
// and BENCH_saturation.json embed.
func SummarizeStages(snaps map[string]*telemetry.HistSnapshot) []StageSummary {
	out := make([]StageSummary, 0, len(snaps))
	for name, s := range snaps {
		us := func(ns int64) float64 { return float64(ns) / 1e3 }
		out = append(out, StageSummary{
			Stage:  name,
			Count:  s.Count,
			MeanUs: s.Mean() / 1e3,
			P50Us:  us(s.Quantile(0.50)),
			P90Us:  us(s.Quantile(0.90)),
			P99Us:  us(s.Quantile(0.99)),
			P999Us: us(s.Quantile(0.999)),
			MaxUs:  us(s.Max()),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// Summaries returns the aggregator's current per-stage summaries.
func (a *StageAggregator) Summaries() []StageSummary {
	return SummarizeStages(a.Snapshot())
}

// Handler serves the live decomposition:
//
//	GET /debug/stages              JSON {stages: [...], note}
//	GET /debug/stages?format=text  aligned table, busiest stage first
//
// A nil aggregator serves an empty list, so the endpoint can be mounted
// unconditionally.
func (a *StageAggregator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		sums := a.Summaries()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteStagesText(w, sums)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"stages": sums,
			"note":   "one histogram per span name plus direct wire sub-stages; durations nest (e.g. client.lookup contains client.write and the server round trip), so columns are a decomposition, not a sum",
		})
	})
}

// WriteStagesText renders summaries as an aligned table.
func WriteStagesText(w interface{ Write([]byte) (int, error) }, sums []StageSummary) {
	fmt.Fprintf(w, "%-28s %12s %10s %10s %10s %10s %10s %12s\n",
		"stage", "count", "mean_us", "p50_us", "p90_us", "p99_us", "p999_us", "max_us")
	for _, s := range sums {
		fmt.Fprintf(w, "%-28s %12d %10.1f %10.1f %10.1f %10.1f %10.1f %12.1f\n",
			s.Stage, s.Count, s.MeanUs, s.P50Us, s.P90Us, s.P99Us, s.P999Us, s.MaxUs)
	}
	if len(sums) == 0 {
		fmt.Fprintln(w, "(no stages recorded — is tracing on and load flowing?)")
	}
}
