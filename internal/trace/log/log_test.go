package log

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	return func() time.Time { return t0 }
}

func TestNilLoggerNoops(t *testing.T) {
	var l *Logger
	l.Info("ignored", "k", "v")
	l.Error("ignored")
	l.Printf("ignored %d", 1)
	if l.Component("x") != nil || l.With("k", "v") != nil {
		t.Fatal("nil logger derived a non-nil child")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
}

func TestLogfmtOutput(t *testing.T) {
	var buf strings.Builder
	l := New(&buf, LevelDebug, WithClock(fixedClock())).Component("cluster").With("shard", 3)
	l.Info("snapshot written", "path", "/var/lib/phi", "dur", 150*time.Millisecond)
	line := buf.String()
	for _, want := range []string{
		"ts=2026-08-06T12:00:00Z", "level=info", "component=cluster",
		"msg=\"snapshot written\"", "shard=3", "path=/var/lib/phi", "dur=150ms",
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("logfmt line missing %q:\n%s", want, line)
		}
	}
}

func TestLogfmtQuoting(t *testing.T) {
	var buf strings.Builder
	l := New(&buf, LevelDebug, WithClock(fixedClock()))
	l.Warn("a b", "k", `say "hi" = ok`)
	line := buf.String()
	if !strings.Contains(line, `msg="a b"`) || !strings.Contains(line, `k="say \"hi\" = ok"`) {
		t.Fatalf("quoting wrong:\n%s", line)
	}
}

func TestJSONOutput(t *testing.T) {
	var buf strings.Builder
	l := New(&buf, LevelDebug, WithJSON(), WithClock(fixedClock())).Component("phiwire")
	l.Error("read failed", "err", errors.New("conn reset"), "conns", 4)
	var rec map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &rec); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if rec["level"] != "error" || rec["component"] != "phiwire" ||
		rec["msg"] != "read failed" || rec["err"] != "conn reset" || rec["conns"] != float64(4) {
		t.Fatalf("record = %v", rec)
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf strings.Builder
	l := New(&buf, LevelWarn, WithClock(fixedClock()))
	l.Debug("no")
	l.Info("no")
	l.Warn("yes")
	l.Error("yes")
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("emitted %d lines, want 2:\n%s", got, buf.String())
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelWarn) {
		t.Fatal("Enabled disagrees with filtering")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

func TestPrintfAdapter(t *testing.T) {
	var buf strings.Builder
	l := New(&buf, LevelInfo, WithClock(fixedClock())).Component("phiwire")
	l.Printf("phiwire: read from %v: %v", "1.2.3.4:5", errors.New("eof"))
	line := buf.String()
	if !strings.Contains(line, "level=warn") || !strings.Contains(line, "1.2.3.4:5") {
		t.Fatalf("printf adapter line:\n%s", line)
	}
	// Below the sink minimum it must not even format.
	quiet := New(&buf, LevelError)
	before := buf.Len()
	quiet.Printf("dropped %d", 1)
	if buf.Len() != before {
		t.Fatal("Printf emitted below min level")
	}
}

func TestOddArgsPairing(t *testing.T) {
	var buf strings.Builder
	l := New(&buf, LevelDebug, WithClock(fixedClock()))
	l.Info("m", "lonely")
	if !strings.Contains(buf.String(), `lonely=(missing)`) {
		t.Fatalf("odd args not paired:\n%s", buf.String())
	}
}

func TestFatalExits(t *testing.T) {
	old := osExit
	defer func() { osExit = old }()
	var code int
	osExit = func(c int) { code = c }
	var buf strings.Builder
	l := New(&buf, LevelInfo, WithClock(fixedClock()))
	l.Fatal("boom", "err", "x")
	if code != 1 {
		t.Fatalf("Fatal exited with %d", code)
	}
	if !strings.Contains(buf.String(), "level=error") {
		t.Fatalf("Fatal line:\n%s", buf.String())
	}
}

func TestConcurrentWritesInterleaveByLine(t *testing.T) {
	var buf syncBuffer
	l := New(&buf, LevelDebug)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Info("line", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=line") {
			t.Fatalf("torn line: %q", line)
		}
	}
}

type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
