// Package log is the structured, leveled logging facade for the Phi
// daemons: logfmt or JSON lines on a shared sink, per-component child
// loggers, and a Printf adapter for the older logf-style hooks
// (phiwire.NewServer, snapshotters).
//
// It follows the repo's nil-safe idiom: every method on a nil *Logger is
// a no-op, so library code can hold a logger unconditionally. Levels
// below the sink's minimum return before formatting anything.
package log

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel parses a level name (debug, info, warn, error).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("log: unknown level %q (want debug|info|warn|error)", s)
	}
}

// sink is the shared output: one writer, one lock, one format.
type sink struct {
	mu   sync.Mutex
	w    io.Writer
	min  Level
	json bool
	now  func() time.Time // swappable in tests
}

// Logger emits structured records to its sink, stamped with a component
// name and any bound key/value fields. A nil *Logger discards
// everything.
type Logger struct {
	s         *sink
	component string
	bound     []kv // fields from With, rendered on every record
}

type kv struct {
	k string
	v any
}

// Option configures New.
type Option func(*sink)

// WithJSON switches the sink to JSON lines (default logfmt).
func WithJSON() Option { return func(s *sink) { s.json = true } }

// WithClock injects a clock (tests).
func WithClock(now func() time.Time) Option { return func(s *sink) { s.now = now } }

// New creates a root logger writing records at or above min to w.
func New(w io.Writer, min Level, opts ...Option) *Logger {
	s := &sink{w: w, min: min, now: time.Now}
	for _, o := range opts {
		o(s)
	}
	return &Logger{s: s}
}

// Default returns a logfmt logger on stderr at Info — the daemons'
// out-of-the-box configuration.
func Default() *Logger { return New(os.Stderr, LevelInfo) }

// Component derives a child logger stamped component=name.
func (l *Logger) Component(name string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s, component: name, bound: l.bound}
}

// With derives a child logger with extra key/value fields bound to every
// record. Args are alternating keys and values; a trailing key without a
// value is paired with "(missing)".
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	child := &Logger{s: l.s, component: l.component}
	child.bound = append(append([]kv(nil), l.bound...), pairs(args)...)
	return child
}

// Enabled reports whether records at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.s.min
}

// Debug logs at debug level; args are alternating keys and values.
func (l *Logger) Debug(msg string, args ...any) { l.log(LevelDebug, msg, args) }

// Info logs at info level.
func (l *Logger) Info(msg string, args ...any) { l.log(LevelInfo, msg, args) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, args ...any) { l.log(LevelWarn, msg, args) }

// Error logs at error level.
func (l *Logger) Error(msg string, args ...any) { l.log(LevelError, msg, args) }

// Fatal logs at error level and exits with status 1 — the daemon
// boot-error idiom. (On a nil logger it still exits.)
func (l *Logger) Fatal(msg string, args ...any) {
	l.log(LevelError, msg, args)
	osExit(1)
}

// osExit is swappable so tests can assert Fatal behavior.
var osExit = os.Exit

// Printf adapts the logger to the printf-style logf hooks used by
// phiwire.NewServer and the snapshotters; records land at warn level,
// since those hooks only report connection and snapshot errors.
func (l *Logger) Printf(format string, args ...any) {
	if l == nil || !l.Enabled(LevelWarn) {
		return
	}
	l.log(LevelWarn, fmt.Sprintf(format, args...), nil)
}

func pairs(args []any) []kv {
	if len(args) == 0 {
		return nil
	}
	out := make([]kv, 0, (len(args)+1)/2)
	for i := 0; i < len(args); i += 2 {
		k, ok := args[i].(string)
		if !ok {
			k = fmt.Sprint(args[i])
		}
		var v any = "(missing)"
		if i+1 < len(args) {
			v = args[i+1]
		}
		out = append(out, kv{k, v})
	}
	return out
}

func (l *Logger) log(level Level, msg string, args []any) {
	if l == nil || level < l.s.min {
		return
	}
	fields := pairs(args)
	s := l.s
	ts := s.now().UTC()
	var line []byte
	if s.json {
		line = renderJSON(ts, level, l.component, msg, l.bound, fields)
	} else {
		line = renderLogfmt(ts, level, l.component, msg, l.bound, fields)
	}
	s.mu.Lock()
	s.w.Write(line)
	s.mu.Unlock()
}

func renderLogfmt(ts time.Time, level Level, component, msg string, bound, fields []kv) []byte {
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(ts.Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(level.String())
	if component != "" {
		b.WriteString(" component=")
		writeValue(&b, component)
	}
	b.WriteString(" msg=")
	writeValue(&b, msg)
	for _, f := range bound {
		b.WriteByte(' ')
		b.WriteString(f.k)
		b.WriteByte('=')
		writeValue(&b, fmt.Sprint(f.v))
	}
	for _, f := range fields {
		b.WriteByte(' ')
		b.WriteString(f.k)
		b.WriteByte('=')
		writeValue(&b, fmt.Sprint(f.v))
	}
	b.WriteByte('\n')
	return []byte(b.String())
}

// writeValue writes a logfmt value, quoting only when needed.
func writeValue(b *strings.Builder, v string) {
	if v != "" && !strings.ContainsAny(v, " \t\n\"=") {
		b.WriteString(v)
		return
	}
	b.WriteString(strconv.Quote(v))
}

func renderJSON(ts time.Time, level Level, component, msg string, bound, fields []kv) []byte {
	rec := make(map[string]any, 4+len(bound)+len(fields))
	rec["ts"] = ts.Format(time.RFC3339Nano)
	rec["level"] = level.String()
	if component != "" {
		rec["component"] = component
	}
	rec["msg"] = msg
	for _, f := range bound {
		rec[f.k] = jsonValue(f.v)
	}
	for _, f := range fields {
		rec[f.k] = jsonValue(f.v)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		// Unmarshalable value: degrade to the message alone.
		line, _ = json.Marshal(map[string]any{"ts": rec["ts"], "level": rec["level"], "msg": msg})
	}
	return append(line, '\n')
}

// jsonValue keeps primitives as-is and stringifies everything else, so
// error values and durations render usefully.
func jsonValue(v any) any {
	switch v.(type) {
	case string, bool, int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64, float32, float64, nil:
		return v
	default:
		return fmt.Sprint(v)
	}
}
