package trace

import (
	"errors"
	"testing"
)

var (
	benchRoot  = Name("bench.root")
	benchChild = Name("bench.child")
)

// BenchmarkSpanDisabled is the cost of a span site with tracing off —
// the acceptance bar is zero allocations and a few nanoseconds.
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(SpanContext{}, benchRoot)
		sp.End(nil)
	}
}

// BenchmarkSpanEnabled is the per-span cost with tracing on (ID mint,
// two time reads, one ring write).
func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(Config{SampleEvery: -1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(SpanContext{}, benchRoot)
		sp.End(nil)
	}
}

// BenchmarkSpanEnabledChild measures a root+child pair, the common
// request shape.
func BenchmarkSpanEnabledChild(b *testing.B) {
	tr := NewTracer(Config{SampleEvery: -1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Start(SpanContext{}, benchRoot)
		child := tr.Start(root.Context(), benchChild)
		child.End(nil)
		root.End(nil)
	}
}

// BenchmarkSpanEnabledParallel hits the sharded rings from many
// goroutines.
func BenchmarkSpanEnabledParallel(b *testing.B) {
	tr := NewTracer(Config{SampleEvery: -1})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sp := tr.Start(SpanContext{}, benchRoot)
			sp.End(nil)
		}
	})
}

// BenchmarkSpanError is the rare error path (interning plus the
// interesting-set store plus retention).
func BenchmarkSpanError(b *testing.B) {
	tr := NewTracer(Config{SampleEvery: -1, KeepErrors: 8})
	err := errors.New("bench error")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(SpanContext{}, benchRoot)
		sp.End(err)
	}
}
