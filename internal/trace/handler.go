package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Handler serves the collector's retained traces for debugging:
//
//	GET /debug/traces                 JSON {slowest, errors, sampled, stats}
//	GET /debug/traces?view=slowest    JSON, one retention class only
//	GET /debug/traces?format=text     human-readable slowest + error traces
//	                                  (combine with view= for one class)
//
// A nil collector serves empty results, so the endpoint can be mounted
// unconditionally.
func (c *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		view := req.URL.Query().Get("view")
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			switch view {
			case "slowest":
				WriteText(w, c.Slowest())
			case "errors":
				WriteText(w, c.Errors())
			case "sampled":
				WriteText(w, c.Sampled())
			default:
				fmt.Fprintf(w, "== slowest traces ==\n")
				WriteText(w, c.Slowest())
				fmt.Fprintf(w, "\n== error traces ==\n")
				WriteText(w, c.Errors())
			}
			return
		}
		finished, dropped := c.Stats()
		var out any
		switch view {
		case "slowest":
			out = c.Slowest()
		case "errors":
			out = c.Errors()
		case "sampled":
			out = c.Sampled()
		default:
			out = map[string]any{
				"stats": map[string]uint64{
					"finished": finished,
					"dropped":  dropped,
				},
				"slowest": c.Slowest(),
				"errors":  c.Errors(),
				"sampled": c.Sampled(),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}

// WriteText renders traces in a compact human-readable form: one header
// line per trace, one indented line per span with its offset, duration,
// shard, note, and error.
func WriteText(w io.Writer, traces []*Trace) {
	for _, tr := range traces {
		errStr := ""
		if tr.Err != "" {
			errStr = "  err=" + tr.Err
		}
		fmt.Fprintf(w, "trace %s  root=%s  dur=%.0fus  kept=%s%s\n",
			tr.ID, tr.Root, tr.DurUs, tr.Kept, errStr)
		for _, sp := range tr.Spans {
			var attrs strings.Builder
			if sp.Shard != NoShard {
				fmt.Fprintf(&attrs, "  shard=%d", sp.Shard)
			}
			if sp.Note != "" {
				fmt.Fprintf(&attrs, "  note=%s", sp.Note)
			}
			if sp.Err != "" {
				fmt.Fprintf(&attrs, "  err=%s", sp.Err)
			}
			if sp.Remote {
				attrs.WriteString("  remote-parent")
			}
			fmt.Fprintf(w, "  %10.0fus %10.0fus  %s%s\n",
				sp.OffsetUs, sp.DurUs, sp.Name, attrs.String())
		}
	}
}
