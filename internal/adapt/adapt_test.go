package adapt

import (
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/tcp"
)

func TestJitterAdvisorQuantile(t *testing.T) {
	a := NewJitterAdvisor(0)
	for i := 1; i <= 100; i++ {
		a.Report(sim.Time(i) * sim.Millisecond)
	}
	if a.Samples() != 100 {
		t.Fatalf("samples = %d", a.Samples())
	}
	b := a.Buffer(0.95, 0)
	if b < 90*sim.Millisecond || b > 100*sim.Millisecond {
		t.Errorf("p95 buffer = %v, want ~95ms", b)
	}
	// Floor applies.
	if got := a.Buffer(0.01, 50*sim.Millisecond); got != 50*sim.Millisecond {
		t.Errorf("floored buffer = %v", got)
	}
}

func TestJitterAdvisorNoHistoryReturnsFloor(t *testing.T) {
	a := NewJitterAdvisor(0)
	if got := a.Buffer(0.95, 20*sim.Millisecond); got != 20*sim.Millisecond {
		t.Errorf("empty advisor buffer = %v, want floor", got)
	}
	a.Report(-sim.Second) // invalid, ignored
	if a.Samples() != 0 {
		t.Error("negative spread recorded")
	}
}

func TestJitterAdvisorEvictsOldest(t *testing.T) {
	a := NewJitterAdvisor(10)
	for i := 0; i < 50; i++ {
		a.Report(sim.Millisecond)
	}
	if a.Samples() != 10 {
		t.Errorf("samples = %d, want capped 10", a.Samples())
	}
}

func TestReorderAdvisorThresholdRange(t *testing.T) {
	a := NewReorderAdvisor()
	if a.Threshold() != 3 {
		t.Errorf("uninformed threshold = %d, want 3 (RFC default)", a.Threshold())
	}
	// Clean path: stays at 3.
	for i := 0; i < 20; i++ {
		a.Report(0)
	}
	if a.Threshold() != 3 {
		t.Errorf("clean-path threshold = %d", a.Threshold())
	}
	// Heavy reordering: rises toward the cap.
	for i := 0; i < 20; i++ {
		a.Report(1)
	}
	if a.Threshold() != 8 {
		t.Errorf("reordering-path threshold = %d, want 8", a.Threshold())
	}
	// Clamping of inputs.
	a.Report(5)
	a.Report(-5)
	if f := a.SpuriousFraction(); f < 0 || f > 1 {
		t.Errorf("spurious fraction = %v", f)
	}
}

func TestAdvisorsConcurrentUse(t *testing.T) {
	j := NewJitterAdvisor(100)
	r := NewReorderAdvisor()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Report(sim.Millisecond)
				j.Buffer(0.9, 0)
				r.Report(0.5)
				r.Threshold()
			}
		}()
	}
	wg.Wait()
}

// reorderPath wires sender -> link -> impairment -> receiver node plus a
// clean reverse path, and runs one transfer with the given threshold.
func runOverReorderingPath(t *testing.T, threshold int, seed int64) (spuriousFrac float64, st tcp.FlowStats, dups int64) {
	t.Helper()
	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	snd := sim.NewNode(eng, 1, "snd")
	rcv := sim.NewNode(eng, 2, "rcv")

	imp := sim.NewImpairedLink(eng, rng, rcv, sim.Impairments{
		ReorderRate:  0.05,
		ReorderDelay: 10 * sim.Millisecond,
	})
	fwd := sim.NewLink(eng, "fwd", 10_000_000, 20*sim.Millisecond, 1<<20, imp)
	rev := sim.NewLink(eng, "rev", 10_000_000, 20*sim.Millisecond, 1<<20, snd)
	snd.SetDefaultRoute(fwd)
	rcv.SetDefaultRoute(rev)

	sender, receiver := tcp.Connect(eng, 1, snd, rcv, 3_000_000, tcp.NewCubic(tcp.DefaultCubicParams()),
		tcp.Config{DupAckThreshold: threshold})
	sender.Start()
	eng.RunUntil(120 * sim.Second)
	st = sender.Stats()
	if !sender.Done() || st.BytesAcked != 3_000_000 {
		t.Fatalf("threshold %d: transfer incomplete (%d bytes)", threshold, st.BytesAcked)
	}
	if st.Retransmits > 0 {
		spuriousFrac = float64(receiver.Duplicates) / float64(st.Retransmits)
		if spuriousFrac > 1 {
			spuriousFrac = 1
		}
	}
	return spuriousFrac, st, receiver.Duplicates
}

// TestInformedDupAckAdaptation is the Section 3.2 reproduction: on a path
// with prevalent reordering, connections using the shared-experience
// threshold retransmit spuriously far less than RFC-default connections,
// without losing goodput.
func TestInformedDupAckAdaptation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	advisor := NewReorderAdvisor()

	// A first cohort of default connections discovers the problem.
	var defaultDups int64
	var defaultStats tcp.FlowStats
	for i := 0; i < 3; i++ {
		frac, st, dups := runOverReorderingPath(t, 3, int64(100+i))
		advisor.Report(frac)
		defaultDups += dups
		defaultStats = st
	}
	if defaultDups == 0 {
		t.Fatal("reordering path produced no spurious retransmissions at threshold 3")
	}
	rec := advisor.Threshold()
	if rec <= 3 {
		t.Fatalf("advisor did not raise the threshold: %d (spurious %.2f)",
			rec, advisor.SpuriousFraction())
	}

	// New connections adopt the shared recommendation.
	var informedDups int64
	var informedStats tcp.FlowStats
	for i := 0; i < 3; i++ {
		_, st, dups := runOverReorderingPath(t, rec, int64(100+i))
		informedDups += dups
		informedStats = st
	}
	t.Logf("threshold 3: %d spurious rexmits, %.2f Mbps; threshold %d: %d spurious, %.2f Mbps",
		defaultDups, defaultStats.ThroughputBps()/1e6, rec, informedDups, informedStats.ThroughputBps()/1e6)
	if informedDups >= defaultDups {
		t.Errorf("informed threshold %d did not reduce spurious retransmissions: %d vs %d",
			rec, informedDups, defaultDups)
	}
	if informedStats.ThroughputBps() < 0.7*defaultStats.ThroughputBps() {
		t.Errorf("informed threshold cost too much throughput: %.2f vs %.2f Mbps",
			informedStats.ThroughputBps()/1e6, defaultStats.ThroughputBps()/1e6)
	}
}
