package adapt_test

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/sim"
)

// Cohort experience raises the fast-retransmit threshold on a path with
// prevalent reordering (Section 3.2).
func ExampleReorderAdvisor() {
	advisor := adapt.NewReorderAdvisor()
	fmt.Println("before:", advisor.Threshold())
	for i := 0; i < 10; i++ {
		advisor.Report(0.8) // 80% of retransmissions were spurious
	}
	fmt.Println("after:", advisor.Threshold())
	// Output:
	// before: 3
	// after: 7
}

// Size a jitter buffer from the cohort's observed delay variation.
func ExampleJitterAdvisor() {
	advisor := adapt.NewJitterAdvisor(0)
	for i := 1; i <= 100; i++ {
		advisor.Report(sim.Time(i) * sim.Millisecond)
	}
	fmt.Println("p95 buffer:", advisor.Buffer(0.95, 20*sim.Millisecond))
	// Output:
	// p95 buffer: 95.05ms
}
