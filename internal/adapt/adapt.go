// Package adapt implements Section 3.2, "Benefits of Sharing without
// Cooperation": even when the majority of senders do not cooperate (so
// the congestion state of FIFO-queued paths cannot be improved), a
// minority that shares information can still adapt itself better. The
// paper gives two concrete examples, both built here:
//
//   - jitter buffers for audio/video "initialized and updated over time
//     based on the shared information" — JitterAdvisor aggregates delay
//     observations across a cohort's connections and recommends an
//     initial playout buffer;
//   - "the threshold of 3 duplicate ACKs typically used to trigger TCP
//     fast retransmission could be adjusted if the experience of other
//     connections suggests that reordering is prevalent" —
//     ReorderAdvisor aggregates spurious-retransmission observations and
//     recommends a dupack threshold.
package adapt

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// JitterAdvisor aggregates delay-variation observations from a cohort's
// flows (each flow reports its RTT spread) and recommends a jitter-buffer
// size for new streams, so the first seconds of a call are neither choppy
// (buffer too small) nor needlessly laggy (too large).
//
// Safe for concurrent use: many hosts of one entity report into it.
type JitterAdvisor struct {
	mu      sync.Mutex
	cap     int
	spreads []float64 // observed delay variation, nanoseconds
}

// NewJitterAdvisor keeps the most recent capSamples observations
// (default 4096).
func NewJitterAdvisor(capSamples int) *JitterAdvisor {
	if capSamples <= 0 {
		capSamples = 4096
	}
	return &JitterAdvisor{cap: capSamples}
}

// Report records a flow's observed delay variation (e.g. maxRTT-minRTT,
// or per-packet jitter if available).
func (a *JitterAdvisor) Report(spread sim.Time) {
	if spread < 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spreads = append(a.spreads, float64(spread))
	if len(a.spreads) > a.cap {
		a.spreads = a.spreads[len(a.spreads)-a.cap:]
	}
}

// Samples returns the number of observations held.
func (a *JitterAdvisor) Samples() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.spreads)
}

// Buffer recommends a playout buffer: the q-quantile of the cohort's
// observed delay variation (q = 0.95 is a sensible default), floored at
// min. With no history it returns min — a fresh stream without shared
// information is no worse off than today.
func (a *JitterAdvisor) Buffer(q float64, min sim.Time) sim.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.spreads) == 0 {
		return min
	}
	b := sim.Time(metrics.Quantile(a.spreads, q))
	if b < min {
		return min
	}
	return b
}

// ReorderAdvisor aggregates evidence of packet reordering — the fraction
// of retransmissions that turned out to be spurious (the receiver already
// had the data) — and recommends the fast-retransmit duplicate-ack
// threshold for new connections on the path.
type ReorderAdvisor struct {
	mu sync.Mutex
	// EWMA of the spurious-retransmission fraction.
	ewma *metrics.EWMA
	// MinThreshold / MaxThreshold bound the recommendation (3..8 by
	// default: never below the RFC value, never so high that real loss
	// recovery stalls into timeouts).
	MinThreshold, MaxThreshold int
}

// NewReorderAdvisor returns an advisor with the default 3..8 range and an
// EWMA gain of 0.25.
func NewReorderAdvisor() *ReorderAdvisor {
	return &ReorderAdvisor{ewma: metrics.NewEWMA(0.25), MinThreshold: 3, MaxThreshold: 8}
}

// Report records one connection's spurious-retransmission fraction:
// spurious / total retransmissions (0 when there were none).
func (a *ReorderAdvisor) Report(spuriousFrac float64) {
	if spuriousFrac < 0 {
		spuriousFrac = 0
	}
	if spuriousFrac > 1 {
		spuriousFrac = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ewma.Add(spuriousFrac)
}

// SpuriousFraction returns the current aggregate estimate.
func (a *ReorderAdvisor) SpuriousFraction() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ewma.Value()
}

// Threshold recommends the dupack threshold: 3 when retransmissions are
// almost always genuine, rising linearly to MaxThreshold as the cohort's
// spurious fraction approaches 1 (heavy reordering).
func (a *ReorderAdvisor) Threshold() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.ewma.Initialized() {
		return a.MinThreshold
	}
	span := float64(a.MaxThreshold - a.MinThreshold)
	t := a.MinThreshold + int(a.ewma.Value()*span+0.5)
	if t < a.MinThreshold {
		t = a.MinThreshold
	}
	if t > a.MaxThreshold {
		t = a.MaxThreshold
	}
	return t
}
