// Package aggregate implements the privacy-preserving aggregation
// Section 3.1 leans on for sharing across mutually-competing entities:
// "The information to be shared between providers, to establish a common
// barometer on the network weather, would be minimal (e.g. the level of
// congestion in a particular part of the network). Work on secure
// multiparty computation and anonymous aggregation could be leveraged to
// further shield such information sharing."
//
// The scheme is additive secret sharing over Z_2^64 (the SEPIA /
// Roughan-Zhang construction the paper cites): each provider splits its
// private measurement into one share per participant, uniformly random
// but summing (mod 2^64) to the value. Every participant only ever sees
// one share of each peer's value — individually uniform noise — yet the
// sum of everything reconstructs the exact total, from which the cohort
// learns the aggregate "network weather" and nothing else.
package aggregate

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Split divides value into n shares summing to value mod 2^64. Each of
// the first n-1 shares is independently uniform; the last absorbs the
// difference. n must be at least 1.
func Split(value uint64, n int) ([]uint64, error) {
	if n < 1 {
		return nil, errors.New("aggregate: need at least one share")
	}
	shares := make([]uint64, n)
	var sum uint64
	for i := 0; i < n-1; i++ {
		r, err := randomUint64()
		if err != nil {
			return nil, err
		}
		shares[i] = r
		sum += r
	}
	shares[n-1] = value - sum // wraps mod 2^64
	return shares, nil
}

// Combine sums shares mod 2^64.
func Combine(shares []uint64) uint64 {
	var sum uint64
	for _, s := range shares {
		sum += s
	}
	return sum
}

func randomUint64() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// FractionScale is the fixed-point scale for encoding fractions (e.g.
// utilization or loss rates) as integers: six decimal digits.
const FractionScale = 1_000_000

// EncodeFraction turns a fraction in [0, ~18e12] into fixed point.
func EncodeFraction(f float64) uint64 {
	if f < 0 {
		f = 0
	}
	return uint64(f*FractionScale + 0.5)
}

// DecodeFraction reverses EncodeFraction.
func DecodeFraction(v uint64) float64 {
	return float64(v) / FractionScale
}

// Session runs one aggregation round among n parties, in the standard
// two-phase dance:
//
//  1. every party i splits its private value into n shares and sends
//     share j to party j (Contribute);
//  2. every party j sums the shares it received into a partial sum and
//     publishes it (PartialSum);
//  3. anyone sums the n partial sums to obtain the exact total (Total).
//
// The Session plays all mailbox roles in-process; a deployment would put
// each mailbox on a different provider. It is safe for concurrent use —
// parties contribute from separate goroutines.
type Session struct {
	n int

	mu          sync.Mutex
	mailbox     [][]uint64 // mailbox[j] = shares received by party j
	contributed map[int]bool
}

// NewSession creates a round for n parties (n >= 2: with a single party
// there is nothing to hide from).
func NewSession(n int) (*Session, error) {
	if n < 2 {
		return nil, errors.New("aggregate: need at least two parties")
	}
	return &Session{n: n, mailbox: make([][]uint64, n), contributed: make(map[int]bool)}, nil
}

// Parties returns the party count.
func (s *Session) Parties() int { return s.n }

// Contribute splits party's private value and distributes the shares.
// Each party may contribute exactly once per session.
func (s *Session) Contribute(party int, value uint64) error {
	if party < 0 || party >= s.n {
		return fmt.Errorf("aggregate: party %d out of range", party)
	}
	shares, err := Split(value, s.n)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.contributed[party] {
		return fmt.Errorf("aggregate: party %d already contributed", party)
	}
	s.contributed[party] = true
	for j, share := range shares {
		s.mailbox[j] = append(s.mailbox[j], share)
	}
	return nil
}

// Complete reports whether every party has contributed.
func (s *Session) Complete() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.contributed) == s.n
}

// PartialSum returns party j's published partial: the sum of the shares
// in its mailbox. Calling before the round is complete returns an error —
// publishing early would leak information about the stragglers.
func (s *Session) PartialSum(party int) (uint64, error) {
	if party < 0 || party >= s.n {
		return 0, fmt.Errorf("aggregate: party %d out of range", party)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.contributed) != s.n {
		return 0, errors.New("aggregate: round incomplete")
	}
	return Combine(s.mailbox[party]), nil
}

// Total reconstructs the exact sum of all private values.
func (s *Session) Total() (uint64, error) {
	s.mu.Lock()
	if len(s.contributed) != s.n {
		s.mu.Unlock()
		return 0, errors.New("aggregate: round incomplete")
	}
	partials := make([]uint64, s.n)
	for j := range s.mailbox {
		partials[j] = Combine(s.mailbox[j])
	}
	s.mu.Unlock()
	return Combine(partials), nil
}

// Barometer is the application of Session to the paper's use case: a
// cohort of providers periodically aggregates per-path congestion levels
// ("the network weather") without any provider revealing its own.
type Barometer struct {
	parties int
}

// NewBarometer creates a barometer for the given cohort size.
func NewBarometer(parties int) (*Barometer, error) {
	if parties < 2 {
		return nil, errors.New("aggregate: a barometer needs at least two providers")
	}
	return &Barometer{parties: parties}, nil
}

// MeanCongestion runs one round: each provider's private congestion level
// (a fraction) goes in; the cohort mean comes out.
func (b *Barometer) MeanCongestion(levels []float64) (float64, error) {
	if len(levels) != b.parties {
		return 0, fmt.Errorf("aggregate: got %d levels for %d providers", len(levels), b.parties)
	}
	s, err := NewSession(b.parties)
	if err != nil {
		return 0, err
	}
	for i, l := range levels {
		if err := s.Contribute(i, EncodeFraction(l)); err != nil {
			return 0, err
		}
	}
	total, err := s.Total()
	if err != nil {
		return 0, err
	}
	return DecodeFraction(total) / float64(b.parties), nil
}
