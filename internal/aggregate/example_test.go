package aggregate_test

import (
	"fmt"

	"repro/internal/aggregate"
)

// Three competing providers establish their common congestion barometer
// without any of them revealing its own level (Section 3.1).
func ExampleBarometer_MeanCongestion() {
	b, _ := aggregate.NewBarometer(3)
	mean, _ := b.MeanCongestion([]float64{0.8, 0.2, 0.5})
	fmt.Printf("network weather: %.2f\n", mean)
	// Output:
	// network weather: 0.50
}

// The underlying primitive: additive shares reconstruct the value, each
// share alone reveals nothing.
func ExampleSplit() {
	shares, _ := aggregate.Split(1234, 4)
	fmt.Println("shares:", len(shares))
	fmt.Println("combined:", aggregate.Combine(shares))
	// Output:
	// shares: 4
	// combined: 1234
}
