package aggregate

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestSplitCombineRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10} {
		shares, err := Split(12345, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(shares) != n {
			t.Fatalf("%d shares for n=%d", len(shares), n)
		}
		if got := Combine(shares); got != 12345 {
			t.Errorf("n=%d: combined = %d", n, got)
		}
	}
	if _, err := Split(1, 0); err == nil {
		t.Error("Split with 0 parties succeeded")
	}
}

// Property: splitting any value into any number of shares reconstructs
// exactly, including across mod-2^64 wraparound.
func TestSplitCombineProperty(t *testing.T) {
	f := func(value uint64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		shares, err := Split(value, n)
		if err != nil {
			return false
		}
		return Combine(shares) == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSharesLookNothingLikeTheValue(t *testing.T) {
	// Individual shares are uniformly random: across many rounds, the
	// first share should essentially never equal the (small) value.
	const value = 42
	hits := 0
	for i := 0; i < 1000; i++ {
		shares, err := Split(value, 3)
		if err != nil {
			t.Fatal(err)
		}
		if shares[0] == value || shares[1] == value {
			hits++
		}
	}
	if hits > 2 {
		t.Errorf("random shares matched the value %d/1000 times", hits)
	}
}

func TestSessionProtocol(t *testing.T) {
	s, err := NewSession(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Parties() != 3 {
		t.Errorf("parties = %d", s.Parties())
	}
	values := []uint64{100, 200, 300}
	for i, v := range values {
		if err := s.Contribute(i, v); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Complete() {
		t.Fatal("round should be complete")
	}
	total, err := s.Total()
	if err != nil {
		t.Fatal(err)
	}
	if total != 600 {
		t.Errorf("total = %d, want 600", total)
	}
	// Partials also reconstruct.
	var sum uint64
	for j := 0; j < 3; j++ {
		p, err := s.PartialSum(j)
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	if sum != 600 {
		t.Errorf("partials sum = %d", sum)
	}
}

func TestSessionGuards(t *testing.T) {
	if _, err := NewSession(1); err == nil {
		t.Error("single-party session allowed")
	}
	s, _ := NewSession(2)
	if err := s.Contribute(5, 1); err == nil {
		t.Error("out-of-range party accepted")
	}
	if err := s.Contribute(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Contribute(0, 2); err == nil {
		t.Error("double contribution accepted")
	}
	// Early publication refused (would leak stragglers' absence).
	if _, err := s.Total(); err == nil {
		t.Error("incomplete total returned")
	}
	if _, err := s.PartialSum(0); err == nil {
		t.Error("incomplete partial returned")
	}
	if _, err := s.PartialSum(9); err == nil {
		t.Error("out-of-range partial accepted")
	}
	if s.Complete() {
		t.Error("incomplete round reported complete")
	}
}

func TestSessionConcurrentContributions(t *testing.T) {
	const n = 16
	s, _ := NewSession(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Contribute(i, uint64(i)); err != nil {
				t.Errorf("party %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	total, err := s.Total()
	if err != nil {
		t.Fatal(err)
	}
	if total != n*(n-1)/2 {
		t.Errorf("total = %d, want %d", total, n*(n-1)/2)
	}
}

func TestFractionFixedPoint(t *testing.T) {
	for _, f := range []float64{0, 0.25, 0.731, 1, 99.5} {
		got := DecodeFraction(EncodeFraction(f))
		if math.Abs(got-f) > 1.0/FractionScale {
			t.Errorf("round trip %v -> %v", f, got)
		}
	}
	if EncodeFraction(-1) != 0 {
		t.Error("negative fraction should clamp to 0")
	}
}

func TestBarometerMeanCongestion(t *testing.T) {
	// The paper's scenario: competing providers establish a common
	// barometer without revealing their individual congestion levels.
	b, err := NewBarometer(4)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := b.MeanCongestion([]float64{0.9, 0.1, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-0.5) > 1e-5 {
		t.Errorf("mean = %v, want 0.5", mean)
	}
	if _, err := b.MeanCongestion([]float64{0.5}); err == nil {
		t.Error("wrong cohort size accepted")
	}
	if _, err := NewBarometer(1); err == nil {
		t.Error("single-provider barometer allowed")
	}
}
