package diagnosis

import (
	"fmt"
	"sort"
	"strings"
)

// Finding is an event detected on one scoped aggregate of the cube, e.g.
// "isp=isp-3 metro=seattle" — the paper's "sliced along various
// dimensions".
type Finding struct {
	// Scope maps dimension name to the value the aggregate was
	// restricted to.
	Scope map[string]string
	Event Event
}

func (f Finding) String() string {
	dims := make([]string, 0, len(f.Scope))
	for d := range f.Scope {
		dims = append(dims, d)
	}
	sort.Strings(dims)
	var parts []string
	for _, d := range dims {
		parts = append(parts, fmt.Sprintf("%s=%s", d, f.Scope[d]))
	}
	return fmt.Sprintf("%s: minutes [%d, %d) depth %.2f",
		strings.Join(parts, " "), f.Event.Start, f.Event.End, f.Event.Depth)
}

// Scan detects events on every single-dimension aggregate and every
// ISP x metro pair aggregate (the unreachability footprint unit of the
// Figure 5 example). Findings whose scope is a superset of an already
// triggered narrower scope are still reported; callers typically feed the
// narrowest finding to Localize for confirmation.
func Scan(store *Store, cfg DetectConfig) []Finding {
	var out []Finding
	add := func(scope map[string]string, series []float64) {
		for _, ev := range Detect(series, cfg) {
			out = append(out, Finding{Scope: scope, Event: ev})
		}
	}
	for _, dim := range []string{DimService, DimISP, DimMetro} {
		for _, val := range store.Values(dim) {
			dim, val := dim, val
			add(map[string]string{dim: val},
				store.TotalWhere(func(sl Slice) bool { return sl.value(dim) == val }))
		}
	}
	for _, isp := range store.Values(DimISP) {
		for _, metro := range store.Values(DimMetro) {
			isp, metro := isp, metro
			add(map[string]string{DimISP: isp, DimMetro: metro},
				store.TotalWhere(func(sl Slice) bool { return sl.ISP == isp && sl.Metro == metro }))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Event.Start != out[j].Event.Start {
			return out[i].Event.Start < out[j].Event.Start
		}
		return len(out[i].Scope) > len(out[j].Scope)
	})
	return out
}

// Narrowest returns the finding with the most specific scope (ties broken
// by depth), or nil if none.
func Narrowest(findings []Finding) *Finding {
	var best *Finding
	for i := range findings {
		f := &findings[i]
		if best == nil || len(f.Scope) > len(best.Scope) ||
			(len(f.Scope) == len(best.Scope) && f.Event.Depth > best.Event.Depth) {
			best = f
		}
	}
	return best
}
