package diagnosis

import (
	"fmt"
	"sort"
	"strings"
)

// Localization attributes an event to dimension values: for each
// dimension whose top value explains most of the missing volume, the
// value is pinned. An event confined to one ISP in one metro (Figure 5)
// pins both; a service-wide outage pins only the service.
type Localization struct {
	// Pinned maps dimension name to the value that explains the deficit.
	Pinned map[string]string
	// Coverage maps dimension name to the fraction of the total deficit
	// its top value accounts for (including unpinned dimensions).
	Coverage map[string]float64
	// TotalDeficit is the volume missing during the event.
	TotalDeficit float64
}

// String renders e.g. "isp=ISP-3 metro=seattle (coverage 0.97/0.95)".
func (l Localization) String() string {
	if len(l.Pinned) == 0 {
		return "unlocalized"
	}
	dims := make([]string, 0, len(l.Pinned))
	for d := range l.Pinned {
		dims = append(dims, d)
	}
	sort.Strings(dims)
	var parts []string
	for _, d := range dims {
		parts = append(parts, fmt.Sprintf("%s=%s", d, l.Pinned[d]))
	}
	return strings.Join(parts, " ")
}

// LocalizeConfig tunes localization.
type LocalizeConfig struct {
	// PinThreshold is the deficit share above which a dimension's top
	// value is pinned (default 0.8).
	PinThreshold float64
	// Period is the seasonal period for the per-slice baselines.
	Period int
}

func (c LocalizeConfig) withDefaults() LocalizeConfig {
	if c.PinThreshold == 0 {
		c.PinThreshold = 0.8
	}
	if c.Period == 0 {
		c.Period = minutesPerDay
	}
	return c
}

// Localize attributes the event's missing volume across each dimension of
// the store. For every dimension value it sums (expected - observed) over
// the event window using the value's aggregate baseline, then pins the
// dimensions whose top value dominates the deficit.
func Localize(store *Store, ev Event, cfg LocalizeConfig) Localization {
	cfg = cfg.withDefaults()
	out := Localization{Pinned: map[string]string{}, Coverage: map[string]float64{}}

	total := deficitOf(store.Total(), ev, cfg.Period)
	out.TotalDeficit = total
	if total <= 0 {
		return out
	}
	for _, dim := range []string{DimService, DimISP, DimMetro} {
		bestVal, bestDef := "", 0.0
		for _, val := range store.Values(dim) {
			val := val
			series := store.TotalWhere(func(sl Slice) bool { return sl.value(dim) == val })
			d := deficitOf(series, ev, cfg.Period)
			if d > bestDef {
				bestDef, bestVal = d, val
			}
		}
		share := bestDef / total
		out.Coverage[dim] = share
		if share >= cfg.PinThreshold {
			out.Pinned[dim] = bestVal
		}
	}
	return out
}

// deficitOf sums max(0, expected-observed) over the event window.
func deficitOf(series []float64, ev Event, period int) float64 {
	base := NewBaseline(series, period)
	var sum float64
	for t := ev.Start; t < ev.End && t < len(series); t++ {
		if d := base.Expected(t) - series[t]; d > 0 {
			sum += d
		}
	}
	return sum
}
