package diagnosis_test

import (
	"fmt"

	"repro/internal/diagnosis"
)

// Inject the Figure 5 outage, detect it, localize it.
func Example() {
	cfg := diagnosis.DefaultGenConfig()
	cfg.Outage = &diagnosis.Outage{
		ISP: "isp-3", Metro: "seattle",
		StartMinute: 2*24*60 + 9*60, DurationMin: 120, Severity: 0.9,
	}
	store := diagnosis.Generate(cfg)

	findings := diagnosis.Scan(store, diagnosis.DetectConfig{})
	best := diagnosis.Narrowest(findings)
	fmt.Println("scope:", best.Scope["isp"], best.Scope["metro"])
	fmt.Println("duration (min):", best.Event.Duration())

	loc := diagnosis.Localize(store, best.Event, diagnosis.LocalizeConfig{})
	fmt.Println("localized:", loc)
	// Output:
	// scope: isp-3 seattle
	// duration (min): 120
	// localized: isp=isp-3 metro=seattle
}
