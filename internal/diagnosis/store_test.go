package diagnosis

import "testing"

// TestStoreSlidesWindow pins the online contract: adds past the horizon
// evict the oldest minutes instead of being dropped, Start tracks the
// eviction, and in-window history is preserved at shifted indexes.
func TestStoreSlidesWindow(t *testing.T) {
	sl := Slice{Service: "s", ISP: "i", Metro: "m"}
	st := NewStore(4)
	for minute := 0; minute < 4; minute++ {
		st.Add(sl, minute, float64(minute+1)) // [1 2 3 4]
	}
	if st.Start() != 0 {
		t.Fatalf("window slid during in-range adds: start=%d", st.Start())
	}

	// Minute 5 is two past the end: evict minutes 0 and 1.
	st.Add(sl, 5, 6)
	if st.Start() != 2 {
		t.Fatalf("start=%d after sliding to minute 5, want 2", st.Start())
	}
	want := []float64{3, 4, 0, 6}
	got := st.Series(sl)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("series after slide = %v, want %v", got, want)
		}
	}

	// An add before the window is an eviction no-op, not a corruption.
	st.Add(sl, 1, 99)
	if got := st.Series(sl); got[0] != 3 {
		t.Fatalf("pre-window add mutated the series: %v", got)
	}

	// A jump far past the horizon zeroes everything cleanly.
	st.Add(sl, 100, 7)
	if st.Start() != 97 {
		t.Fatalf("start=%d after jump to minute 100, want 97", st.Start())
	}
	want = []float64{0, 0, 0, 7}
	got = st.Series(sl)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("series after jump = %v, want %v", got, want)
		}
	}
}

// TestStoreSlideCoversAllSlices ensures eviction is applied to every
// slice, including ones not touched by the triggering Add.
func TestStoreSlideCoversAllSlices(t *testing.T) {
	a := Slice{Service: "a"}
	b := Slice{Service: "b"}
	st := NewStore(3)
	st.Add(a, 0, 10)
	st.Add(b, 0, 20)
	st.Add(b, 2, 22)

	st.Add(a, 3, 13) // slides by one; b is not mentioned but must shift too
	if got := st.Series(b); got[0] != 0 || got[1] != 22 || got[2] != 0 {
		t.Fatalf("untouched slice not slid: %v", got)
	}
	if got := st.Series(a); got[2] != 13 {
		t.Fatalf("triggering slice misplaced: %v", got)
	}

	// Aggregations keep working on the slid window.
	total := st.Total()
	if total[1] != 22 || total[2] != 13 {
		t.Fatalf("total on slid window = %v", total)
	}
}
