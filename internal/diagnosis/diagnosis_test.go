package diagnosis

import (
	"math"
	"math/rand"
	"testing"
)

func TestStoreAccumulates(t *testing.T) {
	s := NewStore(10)
	sl := Slice{Service: "video", ISP: "isp-1", Metro: "seattle"}
	s.Add(sl, 3, 5)
	s.Add(sl, 3, 2)
	s.Add(sl, -1, 100) // before the window: ignored
	if got := s.Series(sl)[3]; got != 7 {
		t.Errorf("series[3] = %v, want 7", got)
	}
	if got := s.Total()[3]; got != 7 {
		t.Errorf("total[3] = %v, want 7", got)
	}
	s.Add(sl, 10, 100) // one past the end: slides the window by one
	if s.Start() != 1 {
		t.Errorf("start = %d after sliding add, want 1", s.Start())
	}
	if got := s.Series(sl)[2]; got != 7 {
		t.Errorf("minute 3 after slide = %v, want 7", got)
	}
	if got := s.Series(sl)[9]; got != 100 {
		t.Errorf("minute 10 after slide = %v, want 100", got)
	}
	if len(s.Slices()) != 1 {
		t.Errorf("slices = %d", len(s.Slices()))
	}
	if s.Minutes() != 10 {
		t.Errorf("minutes = %d", s.Minutes())
	}
}

func TestStoreDimensionHelpers(t *testing.T) {
	s := NewStore(5)
	s.Add(Slice{"video", "a", "x"}, 0, 1)
	s.Add(Slice{"voip", "b", "x"}, 0, 2)
	if got := len(s.Values(DimService)); got != 2 {
		t.Errorf("services = %d", got)
	}
	if got := len(s.Values(DimMetro)); got != 1 {
		t.Errorf("metros = %d", got)
	}
	sub := s.TotalWhere(func(sl Slice) bool { return sl.ISP == "b" })
	if sub[0] != 2 {
		t.Errorf("filtered total = %v", sub[0])
	}
	if (Slice{"a", "b", "c"}).value("bogus") != "" {
		t.Error("unknown dimension should be empty")
	}
}

func TestBaselineSeasonalMedian(t *testing.T) {
	// Period 3; history at phase 0: values 10, 20, 30.
	series := []float64{10, 1, 2, 20, 1, 2, 30, 1, 2, 99, 1, 2}
	b := NewBaseline(series, 3)
	if got := b.Expected(9); got != 20 {
		t.Errorf("expected at t=9 = %v, want median(10,20,30)=20", got)
	}
	if got := b.Expected(3); got != 10 {
		t.Errorf("expected at t=3 = %v, want 10", got)
	}
	// First period: falls back to the observation.
	if got := b.Expected(1); got != 1 {
		t.Errorf("first-period expected = %v, want 1", got)
	}
	// Even history: average of middle two.
	series2 := []float64{10, 20, 30, 40, 0}
	b2 := NewBaseline(series2, 1)
	if got := b2.Expected(4); got != 25 {
		t.Errorf("even-history median = %v, want 25", got)
	}
}

func TestDetectFindsSustainedDrop(t *testing.T) {
	period := 60
	series := make([]float64, period*4)
	for i := range series {
		series[i] = 100
	}
	// 30-minute blackout in the third period.
	for i := period*2 + 10; i < period*2+40; i++ {
		series[i] = 10
	}
	events := Detect(series, DetectConfig{Period: period, Ratio: 0.7, MinLen: 10})
	if len(events) != 1 {
		t.Fatalf("%d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Start != period*2+10 || ev.End != period*2+40 {
		t.Errorf("event window [%d, %d), want [130, 160)", ev.Start, ev.End)
	}
	if ev.Duration() != 30 {
		t.Errorf("duration = %d", ev.Duration())
	}
	if math.Abs(ev.Depth-0.9) > 0.01 {
		t.Errorf("depth = %v, want ~0.9", ev.Depth)
	}
}

func TestDetectIgnoresShortBlips(t *testing.T) {
	period := 60
	series := make([]float64, period*3)
	for i := range series {
		series[i] = 100
	}
	for i := period*2 + 5; i < period*2+9; i++ { // 4-minute blip
		series[i] = 0
	}
	if events := Detect(series, DetectConfig{Period: period, MinLen: 10}); len(events) != 0 {
		t.Errorf("short blip detected as event: %+v", events)
	}
}

func TestDetectNothingOnCleanSeries(t *testing.T) {
	cfg := DefaultGenConfig()
	store := Generate(cfg)
	events := Detect(store.Total(), DetectConfig{})
	if len(events) != 0 {
		t.Errorf("clean telemetry produced %d events", len(events))
	}
}

func TestDetectEventAtEndOfSeries(t *testing.T) {
	period := 60
	series := make([]float64, period*3)
	for i := range series {
		series[i] = 100
	}
	for i := period*3 - 20; i < period*3; i++ {
		series[i] = 0
	}
	events := Detect(series, DetectConfig{Period: period, MinLen: 10})
	if len(events) != 1 || events[0].End != period*3 {
		t.Errorf("open-ended event not flushed: %+v", events)
	}
}

// TestFigure5Scenario is the headline reproduction: inject a ~2 hour
// outage confined to one ISP in one metro, detect it by scanning sliced
// aggregates, and localize it to exactly that ISP and metro.
func TestFigure5Scenario(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Outage = &Outage{
		ISP: "isp-3", Metro: "seattle",
		StartMinute: 2*minutesPerDay + 9*60, // day 3, 09:00
		DurationMin: 120,
		Severity:    0.9,
	}
	store := Generate(cfg)

	findings := Scan(store, DetectConfig{})
	if len(findings) == 0 {
		t.Fatal("outage not detected")
	}
	best := Narrowest(findings)
	if best.Scope[DimISP] != "isp-3" || best.Scope[DimMetro] != "seattle" {
		t.Fatalf("narrowest finding scope = %v, want isp-3/seattle", best.Scope)
	}
	// Duration ~2 hours.
	if d := best.Event.Duration(); d < 110 || d > 130 {
		t.Errorf("event duration = %d minutes, want ~120", d)
	}
	if best.Event.Start < cfg.Outage.StartMinute-5 || best.Event.Start > cfg.Outage.StartMinute+5 {
		t.Errorf("event start = %d, want ~%d", best.Event.Start, cfg.Outage.StartMinute)
	}

	loc := Localize(store, best.Event, LocalizeConfig{})
	if loc.Pinned[DimISP] != "isp-3" {
		t.Errorf("localization ISP = %q, want isp-3 (%v)", loc.Pinned[DimISP], loc.Coverage)
	}
	if loc.Pinned[DimMetro] != "seattle" {
		t.Errorf("localization metro = %q, want seattle (%v)", loc.Pinned[DimMetro], loc.Coverage)
	}
	if _, pinned := loc.Pinned[DimService]; pinned {
		t.Errorf("service should not be pinned for an all-service outage: %v", loc)
	}
	if loc.TotalDeficit <= 0 {
		t.Error("no deficit computed")
	}
	if loc.String() == "unlocalized" {
		t.Error("localization string empty")
	}
}

func TestServiceScopedOutagePinsService(t *testing.T) {
	// The paper's motivating example: VoIP unreliable, file hosting fine
	// -> a VoIP-specific issue.
	cfg := DefaultGenConfig()
	cfg.Outage = &Outage{
		ISP: "isp-2", Metro: "london",
		StartMinute:   2*minutesPerDay + 12*60,
		DurationMin:   90,
		Severity:      0.95,
		ServiceScoped: "voip",
	}
	store := Generate(cfg)
	findings := Scan(store, DetectConfig{Ratio: 0.8})
	if len(findings) == 0 {
		t.Skip("service-scoped outage too small for pair aggregates at this ratio")
	}
	best := Narrowest(findings)
	loc := Localize(store, best.Event, LocalizeConfig{PinThreshold: 0.7})
	if loc.Pinned[DimService] != "voip" {
		t.Errorf("service pin = %q, want voip (coverage %v)", loc.Pinned[DimService], loc.Coverage)
	}
}

func TestLocalizeNoDeficit(t *testing.T) {
	store := Generate(DefaultGenConfig())
	loc := Localize(store, Event{Start: 0, End: 10}, LocalizeConfig{})
	if len(loc.Pinned) != 0 {
		t.Errorf("clean window localized: %v", loc)
	}
	if loc.String() != "unlocalized" {
		t.Errorf("String = %q", loc.String())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultGenConfig()).Total()
	b := Generate(DefaultGenConfig()).Total()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Scope: map[string]string{DimISP: "x", DimMetro: "y"},
		Event: Event{Start: 10, End: 20, Depth: 0.5}}
	if f.String() == "" {
		t.Error("empty finding string")
	}
	if Narrowest(nil) != nil {
		t.Error("Narrowest(nil) should be nil")
	}
}

func TestStorePanicsOnBadHorizon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewStore(0)
}

func TestExpNeg(t *testing.T) {
	cases := map[float64]float64{0: 1, 1: 0.367879, 5: 0.0067379, 20: 2.061e-9}
	for x, want := range cases {
		got := expNeg(x)
		if got < want*0.999 || got > want*1.001 {
			t.Errorf("expNeg(%v) = %v, want ~%v", x, got, want)
		}
	}
}

func TestPoissonDrawMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(poissonDraw(rng, 2.5))
	}
	if mean := sum / n; mean < 2.4 || mean > 2.6 {
		t.Errorf("poisson mean = %v, want ~2.5", mean)
	}
	if poissonDraw(rng, 0) != 0 {
		t.Error("zero lambda should draw 0")
	}
}

func TestDetectCrowd(t *testing.T) {
	series := []float64{0, 1, 0, 5, 6, 7, 2, 0}
	if at := DetectCrowd(series, 5, 3); at != 3 {
		t.Errorf("detected at %d, want 3", at)
	}
	if at := DetectCrowd(series, 5, 4); at != -1 {
		t.Errorf("4-sustain should fail, got %d", at)
	}
	if at := DetectCrowd(series, 100, 0); at != -1 {
		t.Errorf("unreachable threshold detected at %d", at)
	}
}

// TestProviderBeatsDownDetector is the Section 3.4 comparison: on the
// same outage, the provider-side detector localizes the event and reacts
// at telemetry granularity, while the crowdsourced signal needs annoyed
// humans to accumulate — and with a realistically small affected
// population it lags or never fires.
func TestProviderBeatsDownDetector(t *testing.T) {
	cfg := DefaultGenConfig()
	outage := Outage{
		ISP: "isp-3", Metro: "seattle",
		StartMinute: 2*minutesPerDay + 9*60, DurationMin: 120, Severity: 0.9,
	}
	cfg.Outage = &outage
	store := Generate(cfg)

	// A well-populated crowd eventually fires...
	big := DefaultCrowdConfig()
	cmp := CompareWithCrowd(store, outage, big)
	if cmp.ProviderLatency < 0 {
		t.Fatal("provider did not detect")
	}
	if !cmp.ProviderLocalized {
		t.Error("provider did not localize")
	}
	if cmp.CrowdLatency >= 0 && cmp.CrowdLatency < cmp.ProviderLatency {
		t.Errorf("crowd (%d min) beat provider (%d min)", cmp.CrowdLatency, cmp.ProviderLatency)
	}

	// ...but a small affected population never clears the noise floor,
	// while the provider still sees the outage in its own telemetry.
	small := big
	small.AffectedUsers = 500
	cmp2 := CompareWithCrowd(store, outage, small)
	if cmp2.CrowdLatency != -1 {
		t.Errorf("tiny-population crowd detected at %d, expected never", cmp2.CrowdLatency)
	}
	if cmp2.ProviderLatency < 0 || !cmp2.ProviderLocalized {
		t.Error("provider detection should be independent of crowd size")
	}
}
