// Package diagnosis implements the problem-diagnosis application of
// Section 3.4: a cloud provider models the volume of requests it receives,
// sliced along dimensions (service, client ISP, metro), looks for
// anomalous departures to detect unreachability events, and localizes an
// event to the slice that explains the missing volume — reproducing the
// Figure 5 scenario (an event localized to one ISP in one metro, lasting
// about two hours).
package diagnosis

import (
	"fmt"
	"sort"
)

// Slice identifies one cell of the request-volume cube.
type Slice struct {
	Service string
	ISP     string
	Metro   string
}

func (s Slice) String() string {
	return fmt.Sprintf("service=%s isp=%s metro=%s", s.Service, s.ISP, s.Metro)
}

// Dimension names, in the order Localize reports them.
const (
	DimService = "service"
	DimISP     = "isp"
	DimMetro   = "metro"
)

// value returns the slice's value along a dimension.
func (s Slice) value(dim string) string {
	switch dim {
	case DimService:
		return s.Service
	case DimISP:
		return s.ISP
	case DimMetro:
		return s.Metro
	default:
		return ""
	}
}

// Store holds minute-granularity request counts per slice over a bounded
// horizon. The horizon slides: adding at a minute past the end evicts the
// oldest minutes, so a long-running feeder (the live health monitor) can
// Add forever while the store stays a fixed-size rolling window. Offline
// batch use is unchanged — minutes [0, Minutes) never slide.
//
// Store is NOT safe for concurrent use. Online feeders must confine it to
// one goroutine (internal/health owns its store from the rotation
// goroutine and copies under its own lock for snapshots); the offline
// experiments build it single-threaded before analysis.
type Store struct {
	minutes int
	start   int // absolute index of the window's first minute
	series  map[Slice][]float64
}

// NewStore creates a store spanning the given number of minutes.
func NewStore(minutes int) *Store {
	if minutes <= 0 {
		panic("diagnosis: store needs a positive horizon")
	}
	return &Store{minutes: minutes, series: make(map[Slice][]float64)}
}

// Minutes returns the horizon length.
func (s *Store) Minutes() int { return s.minutes }

// Start returns the absolute minute index of the window's first bucket:
// 0 until the window has slid, then it grows as old minutes are evicted.
// Series()[i] holds minute Start()+i.
func (s *Store) Start() int { return s.start }

// Add accumulates count requests for the slice at the given (absolute)
// minute. A minute before the window is ignored (already evicted); a
// minute at or past the window's end slides the window forward, evicting
// the oldest minutes from every slice.
func (s *Store) Add(sl Slice, minute int, count float64) {
	if minute < s.start {
		return
	}
	if minute >= s.start+s.minutes {
		s.slide(minute - (s.start + s.minutes) + 1)
	}
	series, ok := s.series[sl]
	if !ok {
		series = make([]float64, s.minutes)
		s.series[sl] = series
	}
	series[minute-s.start] += count
}

// slide advances the window by n minutes, evicting the oldest n buckets
// of every slice. Eviction is a bounded in-place shift (no allocation);
// it runs at most once per wall-clock bucket, off every hot path.
func (s *Store) slide(n int) {
	if n >= s.minutes {
		for _, series := range s.series {
			for i := range series {
				series[i] = 0
			}
		}
		s.start += n
		return
	}
	for _, series := range s.series {
		copy(series, series[n:])
		for i := s.minutes - n; i < s.minutes; i++ {
			series[i] = 0
		}
	}
	s.start += n
}

// Slices returns the populated slices in a stable (sorted) order, so
// aggregations are bit-reproducible despite floating-point addition being
// order dependent.
func (s *Store) Slices() []Slice {
	out := make([]Slice, 0, len(s.series))
	for sl := range s.series {
		out = append(out, sl)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Service != b.Service {
			return a.Service < b.Service
		}
		if a.ISP != b.ISP {
			return a.ISP < b.ISP
		}
		return a.Metro < b.Metro
	})
	return out
}

// Series returns the slice's series (nil if absent). The returned slice
// is the store's backing array; callers must not modify it.
func (s *Store) Series(sl Slice) []float64 { return s.series[sl] }

// Total returns the aggregate series across all slices.
func (s *Store) Total() []float64 {
	return s.TotalWhere(func(Slice) bool { return true })
}

// TotalWhere aggregates the slices for which keep returns true, in a
// stable order.
func (s *Store) TotalWhere(keep func(Slice) bool) []float64 {
	total := make([]float64, s.minutes)
	for _, sl := range s.Slices() {
		if !keep(sl) {
			continue
		}
		for i, v := range s.series[sl] {
			total[i] += v
		}
	}
	return total
}

// Values returns the distinct values of a dimension, sorted.
func (s *Store) Values(dim string) []string {
	seen := map[string]bool{}
	var out []string
	for sl := range s.series {
		v := sl.value(dim)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}
