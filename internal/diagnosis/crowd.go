package diagnosis

import "math/rand"

// Crowd models today's alternative to provider-side diagnosis, which the
// paper calls out: "individual clients, or users, are left with manually-
// driven processes such as Down Detector". Affected users occasionally
// file a report; a crowdsourced detector watches the report volume. The
// comparison the paper implies — and the tests make — is that the
// provider-side detector sees every affected request immediately, while
// the crowd signal needs enough annoyed humans to accumulate, reports
// nothing about unaffected dimensions, and cannot localize beyond "users
// are complaining".

// CrowdConfig parameterizes the report model.
type CrowdConfig struct {
	// AffectedUsers is the population hit by the outage.
	AffectedUsers int
	// ReportRatePerUserHour is the rate at which an affected user files a
	// report (humans mostly do not: a fraction of a report per hour).
	ReportRatePerUserHour float64
	// BackgroundPerMinute is the baseline noise report rate (misclicks,
	// unrelated gripes).
	BackgroundPerMinute float64
	// Seed makes the simulation reproducible.
	Seed int64
}

// DefaultCrowdConfig models a mid-size outage: 20000 affected users, one
// report per 200 user-hours, 0.2 noise reports per minute.
func DefaultCrowdConfig() CrowdConfig {
	return CrowdConfig{
		AffectedUsers:         20000,
		ReportRatePerUserHour: 1.0 / 200,
		BackgroundPerMinute:   0.2,
		Seed:                  1,
	}
}

// SimulateCrowdReports produces a per-minute report-count series of the
// given length with the outage window [start, start+duration) active.
func SimulateCrowdReports(cfg CrowdConfig, minutes, start, duration int) []float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	outageRate := float64(cfg.AffectedUsers) * cfg.ReportRatePerUserHour / 60
	out := make([]float64, minutes)
	for t := 0; t < minutes; t++ {
		lambda := cfg.BackgroundPerMinute
		if t >= start && t < start+duration {
			lambda += outageRate
		}
		out[t] = float64(poissonDraw(rng, lambda))
	}
	return out
}

// poissonDraw is a Knuth Poisson sampler (lambdas here are small).
func poissonDraw(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := expNeg(lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// expNeg computes e^-x without importing math for one call site.
func expNeg(x float64) float64 {
	// Simple series is inadequate for large x; split into halves.
	if x > 10 {
		h := expNeg(x / 2)
		return h * h
	}
	// Taylor with enough terms for x <= 10.
	term, sum := 1.0, 1.0
	for i := 1; i < 60; i++ {
		term *= -x / float64(i)
		sum += term
	}
	if sum < 0 {
		return 0
	}
	return sum
}

// DetectCrowd finds the first minute at which the report volume clears a
// threshold for sustain consecutive minutes (the way a Down-Detector-like
// site raises its banner). Returns -1 if never.
func DetectCrowd(reports []float64, threshold float64, sustain int) int {
	if sustain < 1 {
		sustain = 1
	}
	run := 0
	for t, v := range reports {
		if v >= threshold {
			run++
			if run >= sustain {
				return t - sustain + 1
			}
		} else {
			run = 0
		}
	}
	return -1
}

// CrowdComparison is the provider-vs-crowd detection summary.
type CrowdComparison struct {
	// OutageStart is the injected onset minute.
	OutageStart int
	// ProviderLatency is minutes from onset to the provider-side
	// detector's event start (DetectConfig.MinLen bounds this).
	ProviderLatency int
	// CrowdLatency is minutes from onset to the crowd threshold crossing
	// (-1 = never detected).
	CrowdLatency int
	// ProviderLocalized reports whether the provider pinned ISP and metro.
	ProviderLocalized bool
}

// CompareWithCrowd runs both detectors on the same injected outage: the
// provider-side pipeline on the telemetry store, and the crowd model on
// simulated user reports.
func CompareWithCrowd(store *Store, outage Outage, crowd CrowdConfig) CrowdComparison {
	out := CrowdComparison{OutageStart: outage.StartMinute, ProviderLatency: -1, CrowdLatency: -1}

	findings := Scan(store, DetectConfig{})
	if best := Narrowest(findings); best != nil {
		out.ProviderLatency = best.Event.Start - outage.StartMinute
		loc := Localize(store, best.Event, LocalizeConfig{})
		out.ProviderLocalized = loc.Pinned[DimISP] == outage.ISP && loc.Pinned[DimMetro] == outage.Metro
	}

	reports := SimulateCrowdReports(crowd, store.Minutes(), outage.StartMinute, outage.DurationMin)
	// Threshold: clearly above background (5x), sustained 5 minutes.
	threshold := crowd.BackgroundPerMinute*5 + 1
	if at := DetectCrowd(reports, threshold, 5); at >= 0 {
		out.CrowdLatency = at - outage.StartMinute
	}
	return out
}
