package diagnosis

import (
	"math"
	"math/rand"
)

// Outage describes an injected unreachability event: requests from one
// ISP in one metro drop by Severity for the given window — the Figure 5
// scenario ("an unreachability event localized to an ISP network in a
// metro that lasted for around 2 hours").
type Outage struct {
	ISP           string
	Metro         string
	StartMinute   int
	DurationMin   int
	Severity      float64 // fraction of volume lost, 1 = blackout
	ServiceScoped string  // if set, only this service is affected
}

// GenConfig parameterizes the synthetic telemetry generator.
type GenConfig struct {
	Days     int
	Services []string
	ISPs     []string
	Metros   []string
	// BaseRate is the mean requests/minute of an average slice at the
	// diurnal peak.
	BaseRate float64
	// Noise is the multiplicative noise amplitude (default 0.05).
	Noise float64
	Seed  int64
	// Outage, if non-nil, is injected.
	Outage *Outage
}

// DefaultGenConfig returns a 3-day, 3-service x 8-ISP x 6-metro cube.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Days:     3,
		Services: []string{"video", "storage", "voip"},
		ISPs:     []string{"isp-1", "isp-2", "isp-3", "isp-4", "isp-5", "isp-6", "isp-7", "isp-8"},
		Metros:   []string{"seattle", "london", "tokyo", "sydney", "paris", "saopaulo"},
		BaseRate: 1000,
		Noise:    0.05,
		Seed:     1,
	}
}

// Generate builds the store: every (service, isp, metro) slice carries a
// diurnal sinusoid scaled by a deterministic per-slice weight, with
// multiplicative noise, and the configured outage carved out.
func Generate(cfg GenConfig) *Store {
	if cfg.Days <= 0 {
		cfg.Days = 3
	}
	if cfg.Noise == 0 {
		cfg.Noise = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	minutes := cfg.Days * minutesPerDay
	store := NewStore(minutes)

	for _, svc := range cfg.Services {
		for _, isp := range cfg.ISPs {
			for _, metro := range cfg.Metros {
				sl := Slice{Service: svc, ISP: isp, Metro: metro}
				weight := 0.3 + rng.Float64() // stable per-slice popularity
				phase := rng.Float64() * 2 * math.Pi / 24
				for t := 0; t < minutes; t++ {
					// Diurnal pattern: trough at 40% of peak.
					day := float64(t%minutesPerDay) / minutesPerDay
					diurnal := 0.7 + 0.3*math.Sin(2*math.Pi*day+phase)
					v := cfg.BaseRate * weight * diurnal
					v *= 1 + cfg.Noise*(rng.Float64()*2-1)
					if o := cfg.Outage; o != nil && o.applies(sl, t) {
						v *= 1 - o.Severity
					}
					store.Add(sl, t, v)
				}
			}
		}
	}
	return store
}

func (o *Outage) applies(sl Slice, minute int) bool {
	if minute < o.StartMinute || minute >= o.StartMinute+o.DurationMin {
		return false
	}
	if sl.ISP != o.ISP || sl.Metro != o.Metro {
		return false
	}
	if o.ServiceScoped != "" && sl.Service != o.ServiceScoped {
		return false
	}
	return true
}
