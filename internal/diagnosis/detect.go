package diagnosis

import (
	"sort"
)

// minutesPerDay is the seasonal period of the baseline model.
const minutesPerDay = 24 * 60

// Baseline is a seasonal (time-of-day) model of a request-volume series:
// the expectation for minute t is the median of the same minute-of-day on
// previous days — robust to a single anomalous day.
type Baseline struct {
	series []float64
	period int
}

// NewBaseline models the series with the given seasonal period in
// minutes (0 selects a day).
func NewBaseline(series []float64, period int) *Baseline {
	if period <= 0 {
		period = minutesPerDay
	}
	return &Baseline{series: series, period: period}
}

// Expected returns the modeled volume at minute t: the median of prior
// same-phase observations. During the first period, where no history
// exists, it falls back to the observation itself (no anomaly signal).
func (b *Baseline) Expected(t int) float64 {
	var prior []float64
	for u := t - b.period; u >= 0; u -= b.period {
		prior = append(prior, b.series[u])
	}
	if len(prior) == 0 {
		return b.series[t]
	}
	sort.Float64s(prior)
	mid := len(prior) / 2
	if len(prior)%2 == 1 {
		return prior[mid]
	}
	return (prior[mid-1] + prior[mid]) / 2
}

// Event is a detected unreachability episode: a sustained interval where
// the observed volume fell well below the baseline.
type Event struct {
	// Start and End are minute indexes (End exclusive).
	Start, End int
	// Depth is the mean fractional volume deficit over the event
	// (1 = complete blackout).
	Depth float64
}

// Duration returns the event length in minutes.
func (e Event) Duration() int { return e.End - e.Start }

// DetectConfig tunes the detector.
type DetectConfig struct {
	// Ratio flags minute t when observed < Ratio * expected (default 0.7).
	Ratio float64
	// MinLen is the minimum sustained length in minutes (default 10):
	// short blips are noise, unreachability events persist.
	MinLen int
	// Period is the seasonal period (default one day).
	Period int
}

func (c DetectConfig) withDefaults() DetectConfig {
	if c.Ratio == 0 {
		c.Ratio = 0.7
	}
	if c.MinLen == 0 {
		c.MinLen = 10
	}
	if c.Period == 0 {
		c.Period = minutesPerDay
	}
	return c
}

// Detect finds sustained negative anomalies in the series.
func Detect(series []float64, cfg DetectConfig) []Event {
	cfg = cfg.withDefaults()
	base := NewBaseline(series, cfg.Period)
	var events []Event
	start := -1
	var deficit, expectedSum float64
	flush := func(end int) {
		if start >= 0 && end-start >= cfg.MinLen {
			depth := 0.0
			if expectedSum > 0 {
				depth = deficit / expectedSum
			}
			events = append(events, Event{Start: start, End: end, Depth: depth})
		}
		start, deficit, expectedSum = -1, 0, 0
	}
	for t := cfg.Period; t < len(series); t++ {
		exp := base.Expected(t)
		if exp > 0 && series[t] < cfg.Ratio*exp {
			if start < 0 {
				start = t
			}
			deficit += exp - series[t]
			expectedSum += exp
		} else {
			flush(t)
		}
	}
	flush(len(series))
	return events
}
