package phiwire

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	healthmon "repro/internal/health"
	"repro/internal/obs"
	"repro/internal/phi"
	"repro/internal/trace"
)

// Backend is what the wire server needs from the state plane: lookups,
// the start/end report pair, and mid-connection progress reports. Both
// the monolithic phi.Server and the sharded cluster.Frontend satisfy it,
// so one wire server fronts either deployment.
type Backend interface {
	phi.ContextSource
	phi.Reporter
	ReportProgress(path phi.PathKey, r phi.Report) error
}

// TracedBackend is the optional span-propagating facet of a Backend.
// When the backend implements it and the request carries a trace
// context, the server calls these variants so routing and shard spans
// join the request's trace; otherwise it falls back to the plain
// methods. Both phi.Server and cluster.Frontend implement it.
type TracedBackend interface {
	LookupSpan(sc trace.SpanContext, path phi.PathKey) (phi.Context, error)
	ReportStartSpan(sc trace.SpanContext, path phi.PathKey) error
	ReportEndSpan(sc trace.SpanContext, path phi.PathKey, r phi.Report) error
	ReportProgressSpan(sc trace.SpanContext, path phi.PathKey, r phi.Report) error
}

// Server-side span names.
var (
	opServerLookup   = trace.Name("server.lookup")
	opServerStart    = trace.Name("server.report_start")
	opServerEnd      = trace.Name("server.report_end")
	opServerProgress = trace.Name("server.report_progress")
	opServerPolicy   = trace.Name("server.get_policy")
)

// Server-side sub-span stage names for the /debug/stages decomposition
// (measured only when a StageAggregator is attached; see
// trace.StageAggregator). The read syscall is deliberately absent: on a
// blocking request/response connection, time in readFrame is
// indistinguishable from client idle time between requests.
var (
	stServerDecode = trace.Name("server.decode") // trace-header peel + request parse
	stServerWrite  = trace.Name("server.write")  // response frame write syscall
)

// Server serves the Phi wire protocol over TCP, backed by any Backend
// (which must be safe for concurrent use). One goroutine per connection.
// If a policy is set, clients may also fetch it at startup, so the
// context server is the single distribution point for both the shared
// state and the parameter mapping.
type Server struct {
	backend Backend
	// tbackend is backend's traced facet, resolved once at construction
	// (nil if unimplemented).
	tbackend TracedBackend

	mu     sync.Mutex
	policy []byte // serialized policy, nil if none
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	logf   func(format string, args ...any)

	// handled counts requests served, rejected counts malformed frames.
	// They are atomics so Stats is safe to call while serving.
	handled  atomic.Uint64
	rejected atomic.Uint64

	// metrics is the optional telemetry surface (nil = uninstrumented).
	// Set before Serve: the field is read without synchronization.
	metrics *ServerMetrics

	// tracer records per-request spans (nil = untraced). Set before
	// Serve: the field is read without synchronization. Traced request
	// frames are understood and answered regardless — the tracer only
	// controls whether this process records spans of its own.
	tracer *trace.Tracer

	// health feeds connection churn and trace-evidence pointers to the
	// live health monitor (nil = unmonitored; Record methods are
	// nil-safe). Set before Serve.
	health *healthmon.Monitor

	// wire aggregates resource attribution across all connections:
	// frames, conn Read/Write calls (≈ syscalls), and bytes (nil =
	// unaccounted). Guarded by mu — each connection captures it once at
	// accept, so attaching counters on a serving server is safe and
	// takes effect for connections accepted after the call.
	wire *obs.WireCounters
}

// SetMetrics attaches (or detaches, with nil) the telemetry surface.
// Call before Serve.
func (s *Server) SetMetrics(m *ServerMetrics) { s.metrics = m }

// SetTracer attaches (or detaches, with nil) the span tracer. Call
// before Serve. With a tracer set, every request gets a handling span:
// requests carrying a wire trace header join the client's trace, the
// rest start server-local traces.
func (s *Server) SetTracer(t *trace.Tracer) { s.tracer = t }

// SetHealth attaches (or detaches, with nil) the live health monitor.
// Call before Serve.
func (s *Server) SetHealth(m *healthmon.Monitor) { s.health = m }

// SetWire attaches (or detaches, with nil) the wire accounting counters,
// aggregated over every connection accepted after the call.
func (s *Server) SetWire(w *obs.WireCounters) {
	s.mu.Lock()
	s.wire = w
	s.mu.Unlock()
}

// Wire returns the attached wire counters (nil if unaccounted).
func (s *Server) Wire() *obs.WireCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wire
}

// NewServer wraps backend for network service. logf, if non-nil, receives
// connection-level errors; nil discards them.
func NewServer(backend Backend, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	tb, _ := backend.(TracedBackend)
	return &Server{backend: backend, tbackend: tb, conns: make(map[net.Conn]struct{}), logf: logf}
}

// SetPolicy publishes a parameter policy for clients to fetch; nil
// unpublishes it.
func (s *Server) SetPolicy(p *phi.Policy) error {
	if p == nil {
		s.mu.Lock()
		s.policy = nil
		s.mu.Unlock()
		return nil
	}
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.policy = data
	s.mu.Unlock()
	return nil
}

// Serve accepts connections on ln until Close. It always returns a non-nil
// error (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	m := s.metrics
	if m != nil {
		m.OpenConns.Add(1)
	}
	s.health.RecordConn(1)
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if m != nil {
			m.OpenConns.Add(-1)
		}
		s.health.RecordConn(-1)
		s.wg.Done()
	}()
	// rw is the accounted view of the connection (conn itself when no
	// wire counters are attached); close/bookkeeping stays on conn. The
	// counters are captured once per connection, so the per-frame bumps
	// below never touch the mu-guarded field.
	s.mu.Lock()
	wire := s.wire
	s.mu.Unlock()
	rw := obs.CountConn(conn, wire)
	// Per-connection frame-serialization scratch, reused across responses
	// so each frame is one Write and steady state allocates nothing.
	var wbuf []byte
	for {
		payload, err := readFrame(rw)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("phiwire: read from %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		wire.FrameRead()
		var start time.Time
		if m != nil {
			start = time.Now()
		}
		resp, tid := s.handle(payload)
		if m != nil {
			m.HandleSeconds.ObserveExemplar(time.Since(start), uint64(tid))
		}
		st := s.tracer.Stages()
		var w0 time.Time
		if st != nil {
			w0 = time.Now()
		}
		if err := writeFrameBuf(rw, resp, &wbuf); err != nil {
			s.logf("phiwire: write to %v: %v", conn.RemoteAddr(), err)
			return
		}
		wire.FrameWritten()
		if st != nil {
			st.Observe(stServerWrite, time.Since(w0))
		}
	}
}

// handle processes one request payload and returns the response payload
// plus the trace ID of the span recorded for it (zero when untraced).
func (s *Server) handle(payload []byte) ([]byte, trace.TraceID) {
	m := s.metrics
	st := s.tracer.Stages()
	var d0 time.Time
	if st != nil {
		d0 = time.Now()
	}
	if len(payload) == 0 {
		s.bumpRejected()
		return encodeError("empty frame"), 0
	}
	typ, body := payload[0], payload[1:]
	// Requests (high bit clear) may carry a trace header; peel it off
	// before dispatch. Traced frames are accepted whether or not this
	// server records spans of its own.
	var sc trace.SpanContext
	if typ&0x80 == 0 && typ&TraceFlag != 0 {
		var err error
		sc, body, err = readSpanContext(body)
		if err != nil {
			s.bumpRejected()
			return encodeError("malformed trace header"), 0
		}
		typ &^= TraceFlag
	}
	switch typ {
	case MsgHello:
		if _, _, err := decodeHello(body); err != nil {
			s.bumpRejected()
			return encodeError("malformed hello"), 0
		}
		s.bumpHandled()
		return encodeHello(MsgHelloAck, ProtocolVersion, CapTrace), 0
	case MsgLookup:
		path, _, err := readString(body)
		if err != nil {
			s.bumpRejected()
			return encodeError("malformed lookup"), 0
		}
		if len(path) > MaxPathLen {
			s.bumpRejected()
			return encodeError("path key too long"), 0
		}
		if st != nil {
			st.Observe(stServerDecode, time.Since(d0))
		}
		sp := s.startSpan(sc, opServerLookup)
		ctx, err := s.backendLookup(sp.Context(), phi.PathKey(path))
		sp.End(err)
		if err != nil {
			return s.encodeBackendError(err), sp.Context().Trace
		}
		s.bumpHandled()
		if m != nil {
			m.Lookups.Inc()
		}
		// Hand the monitor the trace-evidence pointer: the last trace ID
		// seen per slice is what gets marked interesting on an anomaly.
		s.health.RecordTrace(path, uint64(sp.Context().Trace))
		return encodeContext(ctx), sp.Context().Trace
	case MsgReportStart:
		path, _, err := readString(body)
		if err != nil {
			s.bumpRejected()
			return encodeError("malformed report-start"), 0
		}
		if len(path) > MaxPathLen {
			s.bumpRejected()
			return encodeError("path key too long"), 0
		}
		if st != nil {
			st.Observe(stServerDecode, time.Since(d0))
		}
		sp := s.startSpan(sc, opServerStart)
		err = s.backendReportStart(sp.Context(), phi.PathKey(path))
		sp.End(err)
		if err != nil {
			return s.encodeBackendError(err), sp.Context().Trace
		}
		s.bumpHandled()
		if m != nil {
			m.Starts.Inc()
		}
		return []byte{MsgOK}, sp.Context().Trace
	case MsgGetPolicy:
		s.mu.Lock()
		policy := s.policy
		s.mu.Unlock()
		sp := s.startSpan(sc, opServerPolicy)
		if policy == nil {
			err := errors.New("no policy published")
			sp.End(err)
			return s.encodeBackendError(err), sp.Context().Trace
		}
		sp.End(nil)
		s.bumpHandled()
		if m != nil {
			m.Policies.Inc()
		}
		return append([]byte{MsgPolicy}, policy...), sp.Context().Trace
	case MsgReportEnd, MsgProgress:
		path, report, err := decodeReportEnd(body)
		if err != nil {
			s.bumpRejected()
			return encodeError("malformed report"), 0
		}
		if len(path) > MaxPathLen {
			s.bumpRejected()
			return encodeError("path key too long"), 0
		}
		if st != nil {
			st.Observe(stServerDecode, time.Since(d0))
		}
		name := opServerEnd
		if typ == MsgProgress {
			name = opServerProgress
		}
		sp := s.startSpan(sc, name)
		var herr error
		if typ == MsgProgress {
			herr = s.backendReportProgress(sp.Context(), path, report)
		} else {
			herr = s.backendReportEnd(sp.Context(), path, report)
		}
		sp.End(herr)
		if herr != nil {
			return s.encodeBackendError(herr), sp.Context().Trace
		}
		s.bumpHandled()
		if m != nil {
			if typ == MsgProgress {
				m.Progresses.Inc()
			} else {
				m.Ends.Inc()
			}
		}
		return []byte{MsgOK}, sp.Context().Trace
	default:
		s.bumpRejected()
		return encodeError("unknown message type"), 0
	}
}

// startSpan opens the handling span for a request: joining the wire
// trace when the client sent one, starting a server-local trace
// otherwise. With no tracer it returns a no-op span.
func (s *Server) startSpan(sc trace.SpanContext, name trace.Ref) trace.Span {
	if sc.Valid() {
		return s.tracer.StartRemote(sc, name)
	}
	return s.tracer.Start(trace.SpanContext{}, name)
}

// backendLookup and friends dispatch to the traced backend facet when
// both a traced backend and a live span context exist, and to the plain
// Backend methods otherwise.
func (s *Server) backendLookup(sc trace.SpanContext, path phi.PathKey) (phi.Context, error) {
	if s.tbackend != nil && sc.Valid() {
		return s.tbackend.LookupSpan(sc, path)
	}
	return s.backend.Lookup(path)
}

func (s *Server) backendReportStart(sc trace.SpanContext, path phi.PathKey) error {
	if s.tbackend != nil && sc.Valid() {
		return s.tbackend.ReportStartSpan(sc, path)
	}
	return s.backend.ReportStart(path)
}

func (s *Server) backendReportEnd(sc trace.SpanContext, path phi.PathKey, r phi.Report) error {
	if s.tbackend != nil && sc.Valid() {
		return s.tbackend.ReportEndSpan(sc, path, r)
	}
	return s.backend.ReportEnd(path, r)
}

func (s *Server) backendReportProgress(sc trace.SpanContext, path phi.PathKey, r phi.Report) error {
	if s.tbackend != nil && sc.Valid() {
		return s.tbackend.ReportProgressSpan(sc, path, r)
	}
	return s.backend.ReportProgress(path, r)
}

// encodeBackendError counts and encodes an application-level error (the
// backend refused the request — e.g. a degraded cluster — as opposed to
// a malformed frame).
func (s *Server) encodeBackendError(err error) []byte {
	if m := s.metrics; m != nil {
		m.Errors.Inc()
	}
	return encodeError(err.Error())
}

func (s *Server) bumpHandled() { s.handled.Add(1) }

func (s *Server) bumpRejected() {
	s.rejected.Add(1)
	if m := s.metrics; m != nil {
		m.Rejected.Inc()
	}
}

// Stats returns handled/rejected counters. It is safe to call while the
// server is serving.
func (s *Server) Stats() (handled, rejected uint64) {
	return s.handled.Load(), s.rejected.Load()
}
