package phiwire

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/phi"
)

// Backend is what the wire server needs from the state plane: lookups,
// the start/end report pair, and mid-connection progress reports. Both
// the monolithic phi.Server and the sharded cluster.Frontend satisfy it,
// so one wire server fronts either deployment.
type Backend interface {
	phi.ContextSource
	phi.Reporter
	ReportProgress(path phi.PathKey, r phi.Report) error
}

// Server serves the Phi wire protocol over TCP, backed by any Backend
// (which must be safe for concurrent use). One goroutine per connection.
// If a policy is set, clients may also fetch it at startup, so the
// context server is the single distribution point for both the shared
// state and the parameter mapping.
type Server struct {
	backend Backend

	mu     sync.Mutex
	policy []byte // serialized policy, nil if none
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	logf   func(format string, args ...any)

	// handled counts requests served, rejected counts malformed frames.
	// They are atomics so Stats is safe to call while serving.
	handled  atomic.Uint64
	rejected atomic.Uint64

	// metrics is the optional telemetry surface (nil = uninstrumented).
	// Set before Serve: the field is read without synchronization.
	metrics *ServerMetrics
}

// SetMetrics attaches (or detaches, with nil) the telemetry surface.
// Call before Serve.
func (s *Server) SetMetrics(m *ServerMetrics) { s.metrics = m }

// NewServer wraps backend for network service. logf, if non-nil, receives
// connection-level errors; nil discards them.
func NewServer(backend Backend, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{backend: backend, conns: make(map[net.Conn]struct{}), logf: logf}
}

// SetPolicy publishes a parameter policy for clients to fetch; nil
// unpublishes it.
func (s *Server) SetPolicy(p *phi.Policy) error {
	if p == nil {
		s.mu.Lock()
		s.policy = nil
		s.mu.Unlock()
		return nil
	}
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.policy = data
	s.mu.Unlock()
	return nil
}

// Serve accepts connections on ln until Close. It always returns a non-nil
// error (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	m := s.metrics
	if m != nil {
		m.OpenConns.Add(1)
	}
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if m != nil {
			m.OpenConns.Add(-1)
		}
		s.wg.Done()
	}()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("phiwire: read from %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		var start time.Time
		if m != nil {
			start = time.Now()
		}
		resp := s.handle(payload)
		if m != nil {
			m.HandleSeconds.Observe(time.Since(start))
		}
		if err := writeFrame(conn, resp); err != nil {
			s.logf("phiwire: write to %v: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// handle processes one request payload and returns the response payload.
func (s *Server) handle(payload []byte) []byte {
	m := s.metrics
	if len(payload) == 0 {
		s.bumpRejected()
		return encodeError("empty frame")
	}
	typ, body := payload[0], payload[1:]
	switch typ {
	case MsgLookup:
		path, _, err := readString(body)
		if err != nil {
			s.bumpRejected()
			return encodeError("malformed lookup")
		}
		ctx, err := s.backend.Lookup(phi.PathKey(path))
		if err != nil {
			return s.encodeBackendError(err)
		}
		s.bumpHandled()
		if m != nil {
			m.Lookups.Inc()
		}
		return encodeContext(ctx)
	case MsgReportStart:
		path, _, err := readString(body)
		if err != nil {
			s.bumpRejected()
			return encodeError("malformed report-start")
		}
		if err := s.backend.ReportStart(phi.PathKey(path)); err != nil {
			return s.encodeBackendError(err)
		}
		s.bumpHandled()
		if m != nil {
			m.Starts.Inc()
		}
		return []byte{MsgOK}
	case MsgGetPolicy:
		s.mu.Lock()
		policy := s.policy
		s.mu.Unlock()
		if policy == nil {
			return s.encodeBackendError(errors.New("no policy published"))
		}
		s.bumpHandled()
		if m != nil {
			m.Policies.Inc()
		}
		return append([]byte{MsgPolicy}, policy...)
	case MsgReportEnd, MsgProgress:
		path, report, err := decodeReportEnd(body)
		if err != nil {
			s.bumpRejected()
			return encodeError("malformed report")
		}
		var herr error
		if typ == MsgProgress {
			herr = s.backend.ReportProgress(path, report)
		} else {
			herr = s.backend.ReportEnd(path, report)
		}
		if herr != nil {
			return s.encodeBackendError(herr)
		}
		s.bumpHandled()
		if m != nil {
			if typ == MsgProgress {
				m.Progresses.Inc()
			} else {
				m.Ends.Inc()
			}
		}
		return []byte{MsgOK}
	default:
		s.bumpRejected()
		return encodeError("unknown message type")
	}
}

// encodeBackendError counts and encodes an application-level error (the
// backend refused the request — e.g. a degraded cluster — as opposed to
// a malformed frame).
func (s *Server) encodeBackendError(err error) []byte {
	if m := s.metrics; m != nil {
		m.Errors.Inc()
	}
	return encodeError(err.Error())
}

func (s *Server) bumpHandled() { s.handled.Add(1) }

func (s *Server) bumpRejected() {
	s.rejected.Add(1)
	if m := s.metrics; m != nil {
		m.Rejected.Inc()
	}
}

// Stats returns handled/rejected counters. It is safe to call while the
// server is serving.
func (s *Server) Stats() (handled, rejected uint64) {
	return s.handled.Load(), s.rejected.Load()
}
