package phiwire

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/phi"
	"repro/internal/trace"
)

// Client-side span names.
var (
	opClientDial     = trace.Name("client.dial")
	opClientLookup   = trace.Name("client.lookup")
	opClientStart    = trace.Name("client.report_start")
	opClientEnd      = trace.Name("client.report_end")
	opClientProgress = trace.Name("client.report_progress")
)

// Client-side sub-span stage names: finer-grained than spans (no ring
// writes, no IDs), they exist purely for the /debug/stages latency
// decomposition. Only measured when a StageAggregator is attached to
// the client tracer's collector.
var (
	stClientEncode = trace.Name("client.encode") // request serialization
	stClientWrite  = trace.Name("client.write")  // frame write syscall
	stClientAwait  = trace.Name("client.await")  // write done -> response read (network + server)
)

// ServerError is an application-level error returned by the server (the
// request was delivered and refused — e.g. a degraded cluster), as
// opposed to a transport failure. Callers distinguish the two with
// errors.As: transport errors mean retry/reconnect, server errors mean
// the control plane answered and said no.
type ServerError string

func (e ServerError) Error() string { return "phiwire: server error: " + string(e) }

// Client is a phi.Station over TCP. It holds one connection, serializes
// requests over it, reconnects lazily after failures, and applies a
// per-request deadline. All methods are safe for concurrent use.
//
// Errors are returned rather than retried: the phi.Client fallback policy
// (use defaults when the control plane is unreachable) is the intended
// consumer.
//
// After Close, all requests fail with net.ErrClosed: a closed client
// never re-dials, so it cannot leak a connection nobody will close.
type Client struct {
	addr    string
	timeout time.Duration

	// dial establishes the connection; tests inject failures and count
	// connections through it.
	dial func(addr string, timeout time.Duration) (net.Conn, error)

	// metrics is the optional telemetry surface (nil = uninstrumented).
	// Set before first use.
	metrics *ClientMetrics

	// tracer records per-request spans (nil = untraced). Set before
	// first use. With a tracer set the client also negotiates the trace
	// capability at dial time (see connTraced).
	tracer *trace.Tracer

	// wire is the optional resource-attribution surface: frames, conn
	// Read/Write calls (≈ syscalls), and bytes (nil = unaccounted). Set
	// before first use; connections dialed afterwards are counted.
	wire *obs.WireCounters

	mu     sync.Mutex
	conn   net.Conn
	closed bool

	// wbuf is the frame-serialization scratch buffer, reused across
	// requests so each frame goes out in one Write without a per-request
	// allocation. Guarded by mu.
	wbuf []byte

	// connTraced records whether the current connection's peer
	// acknowledged CapTrace in the Hello exchange; only then do request
	// frames carry trace headers. Reset on every reconnect, so the
	// client adapts if it is pointed at an older server. Guarded by mu.
	connTraced bool
}

// DefaultTimeout bounds each request round trip.
const DefaultTimeout = 2 * time.Second

// Dial creates a client for the server at addr. The connection itself is
// established lazily on first use. timeout <= 0 selects DefaultTimeout.
func Dial(addr string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Client{
		addr:    addr,
		timeout: timeout,
		dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		},
	}
}

// SetMetrics attaches (or detaches, with nil) the telemetry surface.
// Call before the client is shared across goroutines.
func (c *Client) SetMetrics(m *ClientMetrics) { c.metrics = m }

// SetTracer attaches (or detaches, with nil) the span tracer. Call
// before the client is shared across goroutines.
func (c *Client) SetTracer(t *trace.Tracer) { c.tracer = t }

// SetWire attaches (or detaches, with nil) the wire accounting counters.
// Call before the client is shared across goroutines. One counter set
// may be shared by many clients to account a whole pool.
func (c *Client) SetWire(w *obs.WireCounters) { c.wire = w }

// Close tears down the connection and marks the client closed; any
// later request fails with net.ErrClosed instead of reconnecting.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// roundTrip sends one request and reads one response, holding the
// connection lock for the duration (requests are small; the protocol is
// strictly request/response). Every failure path closes and forgets the
// connection before returning, so repeated failures churn through at
// most one live connection.
func (c *Client) roundTrip(sc trace.SpanContext, req []byte) ([]byte, error) {
	m := c.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	resp, err := c.lockedRoundTrip(sc, req)
	if m != nil {
		m.RTTSeconds.ObserveExemplar(time.Since(start), uint64(sc.Trace))
		if err != nil {
			m.Errors.Inc()
		}
	}
	return resp, err
}

func (c *Client) lockedRoundTrip(sc trace.SpanContext, req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, net.ErrClosed
	}
	if c.conn == nil {
		dsp := c.tracer.Start(sc, opClientDial)
		conn, err := c.dial(c.addr, c.timeout)
		if err != nil {
			dsp.End(err)
			return nil, err
		}
		c.conn = obs.CountConn(conn, c.wire)
		c.metrics.DialsInc()
		if c.tracer != nil {
			if err := c.negotiate(); err != nil {
				dsp.End(err)
				c.drop()
				return nil, err
			}
		}
		dsp.End(nil)
	}
	deadline := time.Now().Add(c.timeout)
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.drop()
		return nil, err
	}
	st := c.tracer.Stages()
	var t0 time.Time
	if st != nil {
		t0 = time.Now()
	}
	var werr error
	if c.connTraced && sc.Valid() && len(req) > 0 && req[0]&0x80 == 0 {
		werr = writeTracedFrameBuf(c.conn, req, sc, &c.wbuf)
	} else {
		werr = writeFrameBuf(c.conn, req, &c.wbuf)
	}
	if werr != nil {
		c.drop()
		return nil, werr
	}
	c.wire.FrameWritten()
	if st != nil {
		now := time.Now()
		st.Observe(stClientWrite, now.Sub(t0))
		t0 = now
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		c.drop()
		return nil, err
	}
	c.wire.FrameRead()
	if st != nil {
		st.Observe(stClientAwait, time.Since(t0))
	}
	return resp, nil
}

// negotiate runs the Hello exchange on a fresh connection (mu held).
// Any HelloAck carrying CapTrace turns trace headers on for this
// connection; an error reply means an old (version 1) peer, which is not
// a failure — the client just stays on plain frames. Only transport
// errors propagate.
func (c *Client) negotiate() error {
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return err
	}
	if err := writeFrameBuf(c.conn, encodeHello(MsgHello, ProtocolVersion, CapTrace), &c.wbuf); err != nil {
		return err
	}
	c.wire.FrameWritten()
	resp, err := readFrame(c.conn)
	if err != nil {
		return err
	}
	c.wire.FrameRead()
	if len(resp) > 0 && resp[0] == MsgHelloAck {
		if _, caps, derr := decodeHello(resp[1:]); derr == nil && caps&CapTrace != 0 {
			c.connTraced = true
			return nil
		}
	}
	c.connTraced = false
	return nil
}

// DialsInc is a nil-safe dial-counter bump.
func (m *ClientMetrics) DialsInc() {
	if m == nil {
		return
	}
	m.Dials.Inc()
}

func (c *Client) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.connTraced = false
}

// errFromResponse converts an error response into a Go error.
func errFromResponse(resp []byte) error {
	if len(resp) == 0 {
		return ErrMalformed
	}
	if resp[0] != MsgError {
		return nil
	}
	msg, _, err := readString(resp[1:])
	if err != nil {
		return ErrMalformed
	}
	return ServerError(msg)
}

// Lookup implements phi.ContextSource.
func (c *Client) Lookup(path phi.PathKey) (phi.Context, error) {
	return c.LookupSpan(trace.SpanContext{}, path)
}

// LookupSpan is Lookup joined to a caller's trace: the client span it
// records (and propagates on the wire) is a child of parent. With no
// tracer attached, the parent context itself is forwarded, so an
// untraced relay still preserves the caller's trace across processes.
func (c *Client) LookupSpan(parent trace.SpanContext, path phi.PathKey) (phi.Context, error) {
	st := c.tracer.Stages()
	var t0 time.Time
	if st != nil {
		t0 = time.Now()
	}
	req, err := encodeLookup(path)
	if st != nil {
		st.Observe(stClientEncode, time.Since(t0))
	}
	if err != nil {
		return phi.Context{}, err
	}
	sp := c.tracer.Start(parent, opClientLookup)
	resp, err := c.roundTrip(wireContext(sp, parent), req)
	if err == nil {
		err = errFromResponse(resp)
	}
	var ctx phi.Context
	if err == nil {
		if resp[0] != MsgContext {
			err = ErrMalformed
		} else {
			ctx, err = decodeContext(resp[1:])
		}
	}
	sp.End(err)
	return ctx, err
}

// ReportStart implements phi.Reporter.
func (c *Client) ReportStart(path phi.PathKey) error {
	return c.ReportStartSpan(trace.SpanContext{}, path)
}

// ReportStartSpan is ReportStart joined to a caller's trace.
func (c *Client) ReportStartSpan(parent trace.SpanContext, path phi.PathKey) error {
	st := c.tracer.Stages()
	var t0 time.Time
	if st != nil {
		t0 = time.Now()
	}
	req, err := encodeReportStart(path)
	if st != nil {
		st.Observe(stClientEncode, time.Since(t0))
	}
	if err != nil {
		return err
	}
	return c.expectOK(parent, opClientStart, req)
}

// ReportEnd implements phi.Reporter.
func (c *Client) ReportEnd(path phi.PathKey, r phi.Report) error {
	return c.ReportEndSpan(trace.SpanContext{}, path, r)
}

// ReportEndSpan is ReportEnd joined to a caller's trace.
func (c *Client) ReportEndSpan(parent trace.SpanContext, path phi.PathKey, r phi.Report) error {
	st := c.tracer.Stages()
	var t0 time.Time
	if st != nil {
		t0 = time.Now()
	}
	req, err := encodeReport(MsgReportEnd, path, r)
	if st != nil {
		st.Observe(stClientEncode, time.Since(t0))
	}
	if err != nil {
		return err
	}
	return c.expectOK(parent, opClientEnd, req)
}

// ReportProgress sends a mid-connection report (long flows, Section
// 2.2.2's multiple-communications refinement).
func (c *Client) ReportProgress(path phi.PathKey, r phi.Report) error {
	return c.ReportProgressSpan(trace.SpanContext{}, path, r)
}

// ReportProgressSpan is ReportProgress joined to a caller's trace.
func (c *Client) ReportProgressSpan(parent trace.SpanContext, path phi.PathKey, r phi.Report) error {
	st := c.tracer.Stages()
	var t0 time.Time
	if st != nil {
		t0 = time.Now()
	}
	req, err := encodeReport(MsgProgress, path, r)
	if st != nil {
		st.Observe(stClientEncode, time.Since(t0))
	}
	if err != nil {
		return err
	}
	return c.expectOK(parent, opClientProgress, req)
}

func (c *Client) expectOK(parent trace.SpanContext, name trace.Ref, req []byte) error {
	sp := c.tracer.Start(parent, name)
	resp, err := c.roundTrip(wireContext(sp, parent), req)
	if err == nil {
		err = errFromResponse(resp)
	}
	if err == nil && (len(resp) == 0 || resp[0] != MsgOK) {
		err = ErrMalformed
	}
	sp.End(err)
	return err
}

// wireContext picks the span context to put on the wire: the client's
// own span when it has a tracer, the caller's otherwise.
func wireContext(sp trace.Span, parent trace.SpanContext) trace.SpanContext {
	if sc := sp.Context(); sc.Valid() {
		return sc
	}
	return parent
}

// FetchPolicy retrieves the server's published parameter policy, so a
// freshly booted sender needs to be configured with nothing but the
// context server's address.
func (c *Client) FetchPolicy() (*phi.Policy, error) {
	resp, err := c.roundTrip(trace.SpanContext{}, []byte{MsgGetPolicy})
	if err != nil {
		return nil, err
	}
	if err := errFromResponse(resp); err != nil {
		return nil, err
	}
	if resp[0] != MsgPolicy {
		return nil, ErrMalformed
	}
	var p phi.Policy
	if err := json.Unmarshal(resp[1:], &p); err != nil {
		return nil, fmt.Errorf("phiwire: bad policy payload: %w", err)
	}
	return &p, nil
}

// statically assert the interface.
var _ phi.Station = (*Client)(nil)
