package phiwire

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/phi"
)

// ServerError is an application-level error returned by the server (the
// request was delivered and refused — e.g. a degraded cluster), as
// opposed to a transport failure. Callers distinguish the two with
// errors.As: transport errors mean retry/reconnect, server errors mean
// the control plane answered and said no.
type ServerError string

func (e ServerError) Error() string { return "phiwire: server error: " + string(e) }

// Client is a phi.Station over TCP. It holds one connection, serializes
// requests over it, reconnects lazily after failures, and applies a
// per-request deadline. All methods are safe for concurrent use.
//
// Errors are returned rather than retried: the phi.Client fallback policy
// (use defaults when the control plane is unreachable) is the intended
// consumer.
//
// After Close, all requests fail with net.ErrClosed: a closed client
// never re-dials, so it cannot leak a connection nobody will close.
type Client struct {
	addr    string
	timeout time.Duration

	// dial establishes the connection; tests inject failures and count
	// connections through it.
	dial func(addr string, timeout time.Duration) (net.Conn, error)

	// metrics is the optional telemetry surface (nil = uninstrumented).
	// Set before first use.
	metrics *ClientMetrics

	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// DefaultTimeout bounds each request round trip.
const DefaultTimeout = 2 * time.Second

// Dial creates a client for the server at addr. The connection itself is
// established lazily on first use. timeout <= 0 selects DefaultTimeout.
func Dial(addr string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Client{
		addr:    addr,
		timeout: timeout,
		dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		},
	}
}

// SetMetrics attaches (or detaches, with nil) the telemetry surface.
// Call before the client is shared across goroutines.
func (c *Client) SetMetrics(m *ClientMetrics) { c.metrics = m }

// Close tears down the connection and marks the client closed; any
// later request fails with net.ErrClosed instead of reconnecting.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// roundTrip sends one request and reads one response, holding the
// connection lock for the duration (requests are small; the protocol is
// strictly request/response). Every failure path closes and forgets the
// connection before returning, so repeated failures churn through at
// most one live connection.
func (c *Client) roundTrip(req []byte) ([]byte, error) {
	m := c.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	resp, err := c.lockedRoundTrip(req)
	if m != nil {
		m.RTTSeconds.Observe(time.Since(start))
		if err != nil {
			m.Errors.Inc()
		}
	}
	return resp, err
}

func (c *Client) lockedRoundTrip(req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, net.ErrClosed
	}
	if c.conn == nil {
		conn, err := c.dial(c.addr, c.timeout)
		if err != nil {
			return nil, err
		}
		c.conn = conn
		c.metrics.DialsInc()
	}
	deadline := time.Now().Add(c.timeout)
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.drop()
		return nil, err
	}
	if err := writeFrame(c.conn, req); err != nil {
		c.drop()
		return nil, err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		c.drop()
		return nil, err
	}
	return resp, nil
}

// DialsInc is a nil-safe dial-counter bump.
func (m *ClientMetrics) DialsInc() {
	if m == nil {
		return
	}
	m.Dials.Inc()
}

func (c *Client) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// errFromResponse converts an error response into a Go error.
func errFromResponse(resp []byte) error {
	if len(resp) == 0 {
		return ErrMalformed
	}
	if resp[0] != MsgError {
		return nil
	}
	msg, _, err := readString(resp[1:])
	if err != nil {
		return ErrMalformed
	}
	return ServerError(msg)
}

// Lookup implements phi.ContextSource.
func (c *Client) Lookup(path phi.PathKey) (phi.Context, error) {
	req, err := encodeLookup(path)
	if err != nil {
		return phi.Context{}, err
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return phi.Context{}, err
	}
	if err := errFromResponse(resp); err != nil {
		return phi.Context{}, err
	}
	if resp[0] != MsgContext {
		return phi.Context{}, ErrMalformed
	}
	return decodeContext(resp[1:])
}

// ReportStart implements phi.Reporter.
func (c *Client) ReportStart(path phi.PathKey) error {
	req, err := encodeReportStart(path)
	if err != nil {
		return err
	}
	return c.expectOK(req)
}

// ReportEnd implements phi.Reporter.
func (c *Client) ReportEnd(path phi.PathKey, r phi.Report) error {
	req, err := encodeReport(MsgReportEnd, path, r)
	if err != nil {
		return err
	}
	return c.expectOK(req)
}

// ReportProgress sends a mid-connection report (long flows, Section
// 2.2.2's multiple-communications refinement).
func (c *Client) ReportProgress(path phi.PathKey, r phi.Report) error {
	req, err := encodeReport(MsgProgress, path, r)
	if err != nil {
		return err
	}
	return c.expectOK(req)
}

func (c *Client) expectOK(req []byte) error {
	resp, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	if err := errFromResponse(resp); err != nil {
		return err
	}
	if len(resp) == 0 || resp[0] != MsgOK {
		return ErrMalformed
	}
	return nil
}

// FetchPolicy retrieves the server's published parameter policy, so a
// freshly booted sender needs to be configured with nothing but the
// context server's address.
func (c *Client) FetchPolicy() (*phi.Policy, error) {
	resp, err := c.roundTrip([]byte{MsgGetPolicy})
	if err != nil {
		return nil, err
	}
	if err := errFromResponse(resp); err != nil {
		return nil, err
	}
	if resp[0] != MsgPolicy {
		return nil, ErrMalformed
	}
	var p phi.Policy
	if err := json.Unmarshal(resp[1:], &p); err != nil {
		return nil, fmt.Errorf("phiwire: bad policy payload: %w", err)
	}
	return &p, nil
}

// statically assert the interface.
var _ phi.Station = (*Client)(nil)
