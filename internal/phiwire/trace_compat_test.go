package phiwire

import (
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/phi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// startV1Server runs a protocol-version-1 server: a frame loop that
// predates Hello and TraceFlag, answering any unknown type byte with an
// error frame (exactly what the v1 dispatch did). It counts frames whose
// type byte carries TraceFlag, so tests can assert a well-behaved new
// client never sends the extension to an old peer.
func startV1Server(t *testing.T) (addr string, flagged *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	flagged = new(atomic.Int64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					payload, err := readFrame(conn)
					if err != nil {
						return
					}
					var resp []byte
					switch {
					case len(payload) == 0:
						resp = encodeError("empty frame")
					case payload[0]&TraceFlag != 0 && payload[0]&0x80 == 0:
						flagged.Add(1)
						resp = encodeError("unknown message type")
					case payload[0] == MsgLookup:
						resp = encodeContext(phi.Context{U: 0.5, Q: 10, N: 3})
					case payload[0] == MsgReportStart, payload[0] == MsgReportEnd, payload[0] == MsgProgress:
						resp = []byte{MsgOK}
					default:
						// v1 has no Hello: it lands here.
						resp = encodeError("unknown message type")
					}
					if err := writeFrame(conn, resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), flagged
}

// retained merges every retention class of a collector.
func retained(c *trace.Collector) []*trace.Trace {
	var all []*trace.Trace
	all = append(all, c.Errors()...)
	all = append(all, c.Slowest()...)
	all = append(all, c.Sampled()...)
	return all
}

// TestTracedClientAgainstV1Server: a new client with tracing enabled
// pointed at an old server must keep working — the Hello probe is
// refused, the client stays on plain frames (never sending TraceFlag),
// and its local spans still record the calls.
func TestTracedClientAgainstV1Server(t *testing.T) {
	addr, flagged := startV1Server(t)
	tr := trace.NewTracer(trace.Config{SampleEvery: 1})
	c := Dial(addr, time.Second)
	defer c.Close()
	c.SetTracer(tr)

	ctx, err := c.Lookup("p")
	if err != nil {
		t.Fatalf("lookup via v1 server: %v", err)
	}
	if ctx.U != 0.5 || ctx.N != 3 {
		t.Fatalf("bad context %+v", ctx)
	}
	if err := c.ReportEnd("p", phi.Report{Bytes: 1, Duration: sim.Time(time.Millisecond)}); err != nil {
		t.Fatalf("report via v1 server: %v", err)
	}
	if n := flagged.Load(); n != 0 {
		t.Fatalf("client sent %d TraceFlag frames to a v1 server", n)
	}
	// The client still traces locally even though nothing crossed the wire.
	var names []string
	for _, tc := range retained(tr.Collector()) {
		for _, sp := range tc.Spans {
			names = append(names, sp.Name)
		}
	}
	want := map[string]bool{"client.dial": false, "client.lookup": false, "client.report_end": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("span %q missing from local traces (got %v)", n, names)
		}
	}
}

// TestUntracedClientAgainstTracedServer: an old-style client (no
// tracer, so no Hello, plain frames only) against a new tracing server.
// Requests succeed and the server records server-local root spans —
// none marked as joining a remote trace.
func TestUntracedClientAgainstTracedServer(t *testing.T) {
	srv, backend, addr := startServer(t)
	backend.RegisterPath("p", 1_000_000)
	str := trace.NewTracer(trace.Config{SampleEvery: 1})
	srv.SetTracer(str)

	c := Dial(addr, time.Second)
	defer c.Close()
	if _, err := c.Lookup("p"); err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if err := c.ReportStart("p"); err != nil {
		t.Fatalf("report-start: %v", err)
	}

	traces := retained(str.Collector())
	if len(traces) == 0 {
		t.Fatal("traced server retained no traces from an untraced client")
	}
	for _, tc := range traces {
		for _, sp := range tc.Spans {
			if sp.Remote {
				t.Fatalf("server span %q claims a remote parent with an untraced client", sp.Name)
			}
		}
	}
}

// TestTracedClientAgainstTracedServer: both ends new. The Hello
// exchange upgrades the connection, the lookup's trace ID crosses the
// wire, and the server's handling span joins the client's trace: same
// trace ID on both collectors, server span marked remote.
func TestTracedClientAgainstTracedServer(t *testing.T) {
	srv, backend, addr := startServer(t)
	backend.RegisterPath("p", 1_000_000)
	str := trace.NewTracer(trace.Config{SampleEvery: 1})
	srv.SetTracer(str)

	ctr := trace.NewTracer(trace.Config{SampleEvery: 1})
	c := Dial(addr, time.Second)
	defer c.Close()
	c.SetTracer(ctr)

	if _, err := c.Lookup("p"); err != nil {
		t.Fatalf("lookup: %v", err)
	}

	clientIDs := make(map[string]bool)
	for _, tc := range retained(ctr.Collector()) {
		clientIDs[tc.ID] = true
	}
	if len(clientIDs) == 0 {
		t.Fatal("client retained no traces")
	}
	joined := false
	for _, tc := range retained(str.Collector()) {
		if !clientIDs[tc.ID] {
			continue
		}
		for _, sp := range tc.Spans {
			if sp.Name == "server.lookup" && sp.Remote {
				joined = true
			}
		}
	}
	if !joined {
		t.Fatalf("no server trace joined a client trace ID (client IDs %v)", clientIDs)
	}
}

// TestReconnectRenegotiates: the trace capability is per connection.
// After the server side drops the connection, the client's next request
// re-dials and re-runs Hello, and trace headers resume.
func TestReconnectRenegotiates(t *testing.T) {
	srv, backend, addr := startServer(t)
	backend.RegisterPath("p", 1_000_000)
	str := trace.NewTracer(trace.Config{SampleEvery: 1})
	srv.SetTracer(str)

	ctr := trace.NewTracer(trace.Config{SampleEvery: 1})
	c := Dial(addr, time.Second)
	defer c.Close()
	c.SetTracer(ctr)

	if _, err := c.Lookup("p"); err != nil {
		t.Fatalf("first lookup: %v", err)
	}
	c.mu.Lock()
	if !c.connTraced {
		t.Fatal("connection not upgraded after Hello")
	}
	// Sever the connection out from under the client.
	c.conn.Close()
	c.mu.Unlock()

	// The first request after the break may fail (the client discovers
	// the dead connection), but a retry must reconnect and renegotiate.
	var err error
	for i := 0; i < 3; i++ {
		if _, err = c.Lookup("p"); err == nil {
			break
		}
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			continue
		}
		var ne net.Error
		if errors.As(err, &ne) {
			continue
		}
		t.Fatalf("unexpected error after reconnect: %v", err)
	}
	if err != nil {
		t.Fatalf("lookup never recovered: %v", err)
	}
	c.mu.Lock()
	traced := c.connTraced
	c.mu.Unlock()
	if !traced {
		t.Fatal("reconnected connection lost the trace capability")
	}
}
