// Package phiwire exposes the Phi context server over real TCP, so the
// shared-state protocol of Section 2.2.2 runs between actual hosts rather
// than only inside the simulator.
//
// The protocol is deliberately minimal — one lookup at connection start,
// one report at connection end — because that is the paper's entire point
// about overhead. Frames are length-prefixed binary:
//
//	uint32  frame length (payload only, big endian)
//	uint8   message type
//	...     message fields, big endian, strings as uint16 length + bytes
//
// Requests carry a path key; responses carry either a context, an OK, or
// an error string. One request yields exactly one response, in order, so
// a single connection may be shared by a mutex-holding client.
package phiwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/phi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Message types.
const (
	MsgLookup      = 0x01
	MsgReportStart = 0x02
	MsgReportEnd   = 0x03
	MsgGetPolicy   = 0x04
	MsgProgress    = 0x05
	MsgHello       = 0x06
	MsgContext     = 0x81
	MsgOK          = 0x82
	MsgPolicy      = 0x83
	MsgHelloAck    = 0x84
	MsgError       = 0xFF
)

// TraceFlag, set on a request type byte, marks an optional 16-byte trace
// header (trace ID + parent span ID) between the type byte and the
// normal body. The flag occupies an otherwise unused bit of the request
// type space (responses use 0x80), so untraced frames are byte-for-byte
// identical to protocol version 1 — an old client against a new server
// never sees the extension. A client only sets the flag after a
// Hello/HelloAck capability exchange proved the server understands it,
// so a new client against an old server falls back to plain frames.
const TraceFlag = 0x40

// ProtocolVersion is the version advertised in Hello frames. Version 1
// predates Hello (old peers answer it with an error frame, which new
// clients treat as "no capabilities").
const ProtocolVersion = 2

// Capability bits exchanged in Hello/HelloAck.
const (
	// CapTrace: the peer understands TraceFlag trace headers.
	CapTrace = 1 << 0
)

// MaxFrame bounds frame payloads; anything larger is a protocol violation.
const MaxFrame = 64 * 1024

// MaxPathLen bounds path keys.
const MaxPathLen = 1024

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("phiwire: frame exceeds MaxFrame")
	ErrMalformed     = errors.New("phiwire: malformed message")
)

// writeFrame writes a length-prefixed payload as a single Write. This
// convenience form allocates its own buffer; hot paths hold a reusable
// scratch buffer across frames and call writeFrameBuf directly.
func writeFrame(w io.Writer, payload []byte) error {
	var scratch []byte
	return writeFrameBuf(w, payload, &scratch)
}

// writeFrameBuf serializes the 4-byte length header and the payload into
// *scratch (grown on demand, reused across calls) and hands the whole
// frame to the writer in ONE Write — one syscall on a raw connection,
// where a header write followed by a payload write cost two. Per-frame
// syscalls dominate the wire layer's cost at the saturation knee, so the
// copy (tens of bytes for protocol frames) buys half the syscalls.
func writeFrameBuf(w io.Writer, payload []byte, scratch *[]byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	b := append((*scratch)[:0], 0, 0, 0, 0)
	binary.BigEndian.PutUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	*scratch = b
	_, err := w.Write(b)
	return err
}

// readFrame reads one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, ErrMalformed
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, ErrMalformed
	}
	return string(b[:n]), b[n:], nil
}

func appendFloat(b []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
}

func readFloat(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrMalformed
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), b[8:], nil
}

func appendInt64(b []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(b, uint64(v))
}

func readInt64(b []byte) (int64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrMalformed
	}
	return int64(binary.BigEndian.Uint64(b)), b[8:], nil
}

// encodeHello builds a Hello (or HelloAck) frame: version then
// capability bits.
func encodeHello(msgType byte, version uint16, caps uint32) []byte {
	b := binary.BigEndian.AppendUint16([]byte{msgType}, version)
	return binary.BigEndian.AppendUint32(b, caps)
}

// decodeHello parses a Hello/HelloAck payload (after the type byte).
func decodeHello(b []byte) (version uint16, caps uint32, err error) {
	if len(b) < 6 {
		return 0, 0, ErrMalformed
	}
	return binary.BigEndian.Uint16(b), binary.BigEndian.Uint32(b[2:]), nil
}

// traceHeaderLen is the wire size of a span context.
const traceHeaderLen = 16

// readSpanContext parses the 16-byte trace header that follows a
// TraceFlag type byte.
func readSpanContext(b []byte) (trace.SpanContext, []byte, error) {
	if len(b) < traceHeaderLen {
		return trace.SpanContext{}, nil, ErrMalformed
	}
	sc := trace.SpanContext{
		Trace: trace.TraceID(binary.BigEndian.Uint64(b)),
		Span:  trace.SpanID(binary.BigEndian.Uint64(b[8:])),
	}
	return sc, b[traceHeaderLen:], nil
}

// writeTracedFrame writes payload as a traced frame: the type byte gains
// TraceFlag and the span context is spliced in after it. Convenience
// form of writeTracedFrameBuf with a throwaway buffer.
func writeTracedFrame(w io.Writer, payload []byte, sc trace.SpanContext) error {
	var scratch []byte
	return writeTracedFrameBuf(w, payload, sc, &scratch)
}

// writeTracedFrameBuf is writeFrameBuf's traced sibling: frame header,
// flagged type byte, trace header, and body are serialized into *scratch
// and written with a single Write.
func writeTracedFrameBuf(w io.Writer, payload []byte, sc trace.SpanContext, scratch *[]byte) error {
	if len(payload) == 0 {
		return ErrMalformed
	}
	n := len(payload) + traceHeaderLen
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	b := append((*scratch)[:0], 0, 0, 0, 0)
	binary.BigEndian.PutUint32(b, uint32(n))
	b = append(b, payload[0]|TraceFlag)
	b = binary.BigEndian.AppendUint64(b, uint64(sc.Trace))
	b = binary.BigEndian.AppendUint64(b, uint64(sc.Span))
	b = append(b, payload[1:]...)
	*scratch = b
	_, err := w.Write(b)
	return err
}

// encodeLookup builds a lookup request.
func encodeLookup(path phi.PathKey) ([]byte, error) {
	if len(path) > MaxPathLen {
		return nil, fmt.Errorf("phiwire: path key too long (%d bytes)", len(path))
	}
	return appendString([]byte{MsgLookup}, string(path)), nil
}

// encodeReportStart builds a start report.
func encodeReportStart(path phi.PathKey) ([]byte, error) {
	if len(path) > MaxPathLen {
		return nil, fmt.Errorf("phiwire: path key too long (%d bytes)", len(path))
	}
	return appendString([]byte{MsgReportStart}, string(path)), nil
}

// encodeReport builds an end or progress report (same payload layout).
func encodeReport(msgType byte, path phi.PathKey, r phi.Report) ([]byte, error) {
	if len(path) > MaxPathLen {
		return nil, fmt.Errorf("phiwire: path key too long (%d bytes)", len(path))
	}
	b := appendString([]byte{msgType}, string(path))
	b = appendInt64(b, r.Bytes)
	b = appendInt64(b, int64(r.Duration))
	b = appendInt64(b, int64(r.AvgRTT))
	b = appendInt64(b, int64(r.MinRTT))
	b = appendFloat(b, r.LossRate)
	return b, nil
}

// encodeContext builds a context response.
func encodeContext(c phi.Context) []byte {
	b := appendFloat([]byte{MsgContext}, c.U)
	b = appendInt64(b, int64(c.Q))
	b = appendInt64(b, int64(c.N))
	return b
}

// encodeError builds an error response.
func encodeError(msg string) []byte {
	if len(msg) > 512 {
		msg = msg[:512]
	}
	return appendString([]byte{MsgError}, msg)
}

// decodeContext parses a context response payload (after the type byte).
func decodeContext(b []byte) (phi.Context, error) {
	u, b, err := readFloat(b)
	if err != nil {
		return phi.Context{}, err
	}
	q, b, err := readInt64(b)
	if err != nil {
		return phi.Context{}, err
	}
	n, _, err := readInt64(b)
	if err != nil {
		return phi.Context{}, err
	}
	return phi.Context{U: u, Q: sim.Time(q), N: int(n)}, nil
}

// decodeReportEnd parses an end report payload (after the type byte).
func decodeReportEnd(b []byte) (phi.PathKey, phi.Report, error) {
	path, b, err := readString(b)
	if err != nil {
		return "", phi.Report{}, err
	}
	var r phi.Report
	if r.Bytes, b, err = readInt64(b); err != nil {
		return "", phi.Report{}, err
	}
	var v int64
	if v, b, err = readInt64(b); err != nil {
		return "", phi.Report{}, err
	}
	r.Duration = sim.Time(v)
	if v, b, err = readInt64(b); err != nil {
		return "", phi.Report{}, err
	}
	r.AvgRTT = sim.Time(v)
	if v, b, err = readInt64(b); err != nil {
		return "", phi.Report{}, err
	}
	r.MinRTT = sim.Time(v)
	if r.LossRate, _, err = readFloat(b); err != nil {
		return "", phi.Report{}, err
	}
	return phi.PathKey(path), r, nil
}
