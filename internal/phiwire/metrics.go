package phiwire

import "repro/internal/telemetry"

// ServerMetrics is the wire server's telemetry surface: per-message-type
// request counters, whole-request handling latency, and the live
// connection count. A nil *ServerMetrics disables instrumentation; the
// hot path then pays one branch per request.
type ServerMetrics struct {
	// Per-type accepted-request counters.
	Lookups    *telemetry.Counter
	Starts     *telemetry.Counter
	Ends       *telemetry.Counter
	Progresses *telemetry.Counter
	Policies   *telemetry.Counter
	// Rejected counts malformed or unknown frames; Errors counts backend
	// errors returned to clients (e.g. degrades under shard loss).
	Rejected *telemetry.Counter
	Errors   *telemetry.Counter
	// HandleSeconds times decode + backend call + encode per request
	// (excluding socket reads/writes).
	HandleSeconds *telemetry.Histogram
	// OpenConns tracks currently connected clients.
	OpenConns *telemetry.Gauge
}

// NewServerMetrics registers the wire-server metric set. A nil registry
// yields nil, so callers can wire unconditionally.
func NewServerMetrics(reg *telemetry.Registry) *ServerMetrics {
	if reg == nil {
		return nil
	}
	typ := func(t string) telemetry.Labels { return telemetry.Labels{"type": t} }
	return &ServerMetrics{
		Lookups:       reg.Counter("phiwire_server_requests_total", "requests accepted by type", typ("lookup")),
		Starts:        reg.Counter("phiwire_server_requests_total", "requests accepted by type", typ("report_start")),
		Ends:          reg.Counter("phiwire_server_requests_total", "requests accepted by type", typ("report_end")),
		Progresses:    reg.Counter("phiwire_server_requests_total", "requests accepted by type", typ("report_progress")),
		Policies:      reg.Counter("phiwire_server_requests_total", "requests accepted by type", typ("get_policy")),
		Rejected:      reg.Counter("phiwire_server_rejected_total", "malformed or unknown frames", nil),
		Errors:        reg.Counter("phiwire_server_errors_total", "backend errors returned to clients", nil),
		HandleSeconds: reg.Histogram("phiwire_server_handle_seconds", "request handling latency (decode+backend+encode)", nil),
		OpenConns:     reg.Gauge("phiwire_server_open_conns", "currently connected clients", nil),
	}
}

// ClientMetrics is the wire client's telemetry surface: dials (the first
// connection and every reconnect after a failure), transport errors, and
// request round-trip latency.
type ClientMetrics struct {
	Dials      *telemetry.Counter
	Errors     *telemetry.Counter
	RTTSeconds *telemetry.Histogram
}

// NewClientMetrics registers the wire-client metric set. A nil registry
// yields nil.
func NewClientMetrics(reg *telemetry.Registry) *ClientMetrics {
	if reg == nil {
		return nil
	}
	return &ClientMetrics{
		Dials:      reg.Counter("phiwire_client_dials_total", "connections established (first dial and reconnects)", nil),
		Errors:     reg.Counter("phiwire_client_errors_total", "transport-level request failures", nil),
		RTTSeconds: reg.Histogram("phiwire_client_rtt_seconds", "request round-trip latency", nil),
	}
}
