package phiwire

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/phi"
	"repro/internal/sim"
)

func wallClock() sim.Time { return sim.Time(time.Now().UnixNano()) }

// startServer runs a wire server over a loopback listener.
func startServer(t *testing.T) (*Server, *phi.Server, string) {
	t.Helper()
	backend := phi.NewServer(wallClock, phi.ServerConfig{})
	srv := NewServer(backend, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // returns on Close
	t.Cleanup(func() { srv.Close() })
	return srv, backend, ln.Addr().String()
}

func TestWireLookupRoundTrip(t *testing.T) {
	_, backend, addr := startServer(t)
	backend.RegisterPath("p", 1_000_000)
	for i := 0; i < 3; i++ {
		if err := backend.ReportStart("p"); err != nil {
			t.Fatal(err)
		}
	}
	c := Dial(addr, time.Second)
	defer c.Close()
	ctx, err := c.Lookup("p")
	if err != nil {
		t.Fatal(err)
	}
	if ctx.N != 3 {
		t.Errorf("N = %d, want 3", ctx.N)
	}
}

func TestWireReportsUpdateBackend(t *testing.T) {
	_, backend, addr := startServer(t)
	c := Dial(addr, time.Second)
	defer c.Close()
	if err := c.ReportStart("edge"); err != nil {
		t.Fatal(err)
	}
	if got := backend.ActiveSenders("edge"); got != 1 {
		t.Errorf("active = %d, want 1", got)
	}
	err := c.ReportEnd("edge", phi.Report{
		Bytes: 1 << 20, Duration: sim.Second,
		AvgRTT: 180 * sim.Millisecond, MinRTT: 150 * sim.Millisecond,
		LossRate: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := backend.ActiveSenders("edge"); got != 0 {
		t.Errorf("active after end = %d, want 0", got)
	}
	ctx, err := c.Lookup("edge")
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Q <= 0 {
		t.Errorf("queue estimate = %v, want > 0", ctx.Q)
	}
}

func TestWireClientIsPhiStation(t *testing.T) {
	_, _, addr := startServer(t)
	c := Dial(addr, time.Second)
	defer c.Close()
	// The full phi.Client stack over the wire.
	pc := &phi.Client{Source: c, Reporter: c, Policy: phi.DefaultPolicy(), Path: "wire-path"}
	params := pc.ParamsForNewConnection()
	if !params.Valid() {
		t.Errorf("invalid params via wire: %v", params)
	}
	if pc.Fallbacks != 0 {
		t.Errorf("unexpected fallback: %d", pc.Fallbacks)
	}
}

func TestWireConcurrentClients(t *testing.T) {
	srv, backend, addr := startServer(t)
	const clients = 8
	const reqs = 50
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := Dial(addr, 2*time.Second)
			defer c.Close()
			for j := 0; j < reqs; j++ {
				if err := c.ReportStart("shared"); err != nil {
					t.Errorf("ReportStart: %v", err)
					return
				}
				if _, err := c.Lookup("shared"); err != nil {
					t.Errorf("Lookup: %v", err)
					return
				}
				if err := c.ReportEnd("shared", phi.Report{Bytes: 100}); err != nil {
					t.Errorf("ReportEnd: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := backend.ActiveSenders("shared"); got != 0 {
		t.Errorf("active after all ends = %d, want 0", got)
	}
	handled, rejected := srv.Stats()
	if handled != clients*reqs*3 {
		t.Errorf("handled = %d, want %d", handled, clients*reqs*3)
	}
	if rejected != 0 {
		t.Errorf("rejected = %d, want 0", rejected)
	}
}

func TestWireClientFailsFastWhenServerDown(t *testing.T) {
	// Reserve a port, then close it so nothing is listening.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	c := Dial(addr, 200*time.Millisecond)
	defer c.Close()
	if _, err := c.Lookup("p"); err == nil {
		t.Fatal("lookup against dead server succeeded")
	}
	// The phi.Client must fall back, not fail.
	pc := &phi.Client{Source: c, Policy: phi.DefaultPolicy(), Path: "p"}
	params := pc.ParamsForNewConnection()
	if !params.Valid() || pc.Fallbacks != 1 {
		t.Errorf("fallback broken: params=%v fallbacks=%d", params, pc.Fallbacks)
	}
}

func TestWireClientRecoversAfterServerRestart(t *testing.T) {
	backend := phi.NewServer(wallClock, phi.ServerConfig{})
	srv := NewServer(backend, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln) //nolint:errcheck
	c := Dial(addr, 500*time.Millisecond)
	defer c.Close()
	if _, err := c.Lookup("p"); err != nil {
		t.Fatalf("first lookup: %v", err)
	}
	srv.Close()
	if _, err := c.Lookup("p"); err == nil {
		t.Fatal("lookup against closed server succeeded")
	}
	// Restart on the same address; client reconnects lazily.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv2 := NewServer(backend, nil)
	go srv2.Serve(ln2) //nolint:errcheck
	defer srv2.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Lookup("p"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client did not recover after restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWireServerRejectsMalformedFrames(t *testing.T) {
	srv, _, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Unknown type.
	if err := writeFrame(conn, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] != MsgError {
		t.Errorf("unknown type answered %x, want error", resp[0])
	}
	// Truncated lookup.
	if err := writeFrame(conn, []byte{MsgLookup, 0xFF}); err != nil {
		t.Fatal(err)
	}
	resp, err = readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] != MsgError {
		t.Errorf("truncated lookup answered %x, want error", resp[0])
	}
	// Empty frame.
	if err := writeFrame(conn, nil); err != nil {
		t.Fatal(err)
	}
	if resp, err = readFrame(conn); err != nil || resp[0] != MsgError {
		t.Errorf("empty frame: resp=%x err=%v", resp, err)
	}
	if _, rejected := srv.Stats(); rejected != 3 {
		t.Errorf("rejected = %d, want 3", rejected)
	}
}

func TestWireOversizeFrameClosesConnection(t *testing.T) {
	_, _, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	hdr[0] = 0xFF // 4 GB frame: protocol violation
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server kept talking after oversize frame")
	}
}

func TestWirePathKeyTooLong(t *testing.T) {
	c := Dial("127.0.0.1:1", time.Second)
	defer c.Close()
	long := phi.PathKey(strings.Repeat("x", MaxPathLen+1))
	if _, err := c.Lookup(long); err == nil {
		t.Error("oversize path key accepted")
	}
	if err := c.ReportStart(long); err == nil {
		t.Error("oversize path key accepted in report")
	}
	if err := c.ReportEnd(long, phi.Report{}); err == nil {
		t.Error("oversize path key accepted in end report")
	}
}

// Property: report-end encoding round-trips for arbitrary values.
func TestReportEndRoundTripProperty(t *testing.T) {
	f := func(pathRaw []byte, bytes, dur, avg, min int64, loss float64) bool {
		if len(pathRaw) > 64 {
			pathRaw = pathRaw[:64]
		}
		path := phi.PathKey(pathRaw)
		r := phi.Report{Bytes: bytes, Duration: sim.Time(dur),
			AvgRTT: sim.Time(avg), MinRTT: sim.Time(min), LossRate: loss}
		enc, err := encodeReport(MsgReportEnd, path, r)
		if err != nil {
			return false
		}
		gotPath, gotR, err := decodeReportEnd(enc[1:])
		if err != nil {
			return false
		}
		if gotPath != path {
			return false
		}
		// NaN != NaN; compare bit patterns via equality special case.
		if gotR.LossRate != r.LossRate && !(gotR.LossRate != gotR.LossRate && r.LossRate != r.LossRate) {
			return false
		}
		gotR.LossRate, r.LossRate = 0, 0
		return gotR == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: context encoding round-trips.
func TestContextRoundTripProperty(t *testing.T) {
	f := func(u float64, q int64, n int32) bool {
		c := phi.Context{U: u, Q: sim.Time(q), N: int(n)}
		dec, err := decodeContext(encodeContext(c)[1:])
		if err != nil {
			return false
		}
		if dec.U != c.U && !(dec.U != dec.U && c.U != c.U) {
			return false
		}
		return dec.Q == c.Q && dec.N == c.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFrameCodec(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello phi")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("round trip = %q", got)
	}
	// Oversize write is refused.
	if err := writeFrame(&buf, make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Errorf("oversize write err = %v", err)
	}
	// Truncated read fails cleanly.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 'x'})
	if _, err := readFrame(&buf); err == nil {
		t.Error("truncated frame read succeeded")
	}
}

func TestListenAndServeAndAddr(t *testing.T) {
	backend := phi.NewServer(wallClock, phi.ServerConfig{})
	srv := NewServer(backend, nil)
	if srv.Addr() != nil {
		t.Error("Addr before serve should be nil")
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	// Wait for the listener to come up.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("server never bound")
		}
		time.Sleep(time.Millisecond)
	}
	c := Dial(srv.Addr().String(), time.Second)
	defer c.Close()
	if _, err := c.Lookup("p"); err != nil {
		t.Fatalf("lookup via ListenAndServe: %v", err)
	}
	srv.Close()
	if err := <-done; err == nil {
		t.Error("Serve should return an error after Close")
	}
	// Serving again after close is refused.
	if err := srv.ListenAndServe("127.0.0.1:0"); err == nil {
		t.Error("serve after close succeeded")
	}
	// Bad address errors immediately.
	if err := NewServer(backend, nil).ListenAndServe("256.0.0.1:bad"); err == nil {
		t.Error("bad address accepted")
	}
}

func TestErrFromResponse(t *testing.T) {
	if errFromResponse(nil) == nil {
		t.Error("empty response should error")
	}
	if errFromResponse([]byte{MsgOK}) != nil {
		t.Error("OK response misread as error")
	}
	// Well-formed error message.
	resp := encodeError("boom")
	err := errFromResponse(resp)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
	// Truncated error payload.
	if errFromResponse([]byte{MsgError, 0xFF}) == nil {
		t.Error("truncated error accepted")
	}
	// Oversize messages are trimmed on encode.
	long := encodeError(strings.Repeat("x", 2000))
	if len(long) > 600 {
		t.Errorf("error encoding not trimmed: %d bytes", len(long))
	}
}

func TestDecodeTruncatedPayloads(t *testing.T) {
	if _, err := decodeContext([]byte{1, 2}); err == nil {
		t.Error("short context accepted")
	}
	if _, err := decodeContext(make([]byte, 8)); err == nil {
		t.Error("context missing q accepted")
	}
	if _, err := decodeContext(make([]byte, 16)); err == nil {
		t.Error("context missing n accepted")
	}
	// Report-end truncated at every field boundary.
	full, _ := encodeReport(MsgReportEnd, "p", phi.Report{Bytes: 1})
	for cut := 1; cut < len(full)-1; cut += 3 {
		if _, _, err := decodeReportEnd(full[1:cut]); err == nil && cut < len(full)-1 {
			// Only the complete payload may parse.
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestWireServerErrorResponsePath(t *testing.T) {
	// A client issuing a lookup against a server whose response is an
	// error must surface it (exercised via expectOK on a lookup reply).
	_, _, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// ReportStart with malformed body yields MsgError; a client that sent
	// it via expectOK would see the error. Simulate by raw frames.
	if err := writeFrame(conn, []byte{MsgReportStart}); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn)
	if err != nil || resp[0] != MsgError {
		t.Fatalf("resp=%x err=%v", resp, err)
	}
	if e := errFromResponse(resp); e == nil {
		t.Error("error response not converted")
	}
}

func TestPolicyDistribution(t *testing.T) {
	srv, _, addr := startServer(t)
	c := Dial(addr, time.Second)
	defer c.Close()

	// Before publication: a clean error, and the phi.Client default path.
	if _, err := c.FetchPolicy(); err == nil {
		t.Error("fetch with no policy published succeeded")
	}
	if err := srv.SetPolicy(phi.DefaultPolicy()); err != nil {
		t.Fatal(err)
	}
	got, err := c.FetchPolicy()
	if err != nil {
		t.Fatal(err)
	}
	want := phi.DefaultPolicy()
	if len(got.Rules) != len(want.Rules) || got.Default != want.Default {
		t.Errorf("fetched policy differs: %d rules", len(got.Rules))
	}
	// The fetched policy drives decisions identically.
	for _, u := range []float64{0.1, 0.5, 0.9} {
		if got.Params(phi.Context{U: u}) != want.Params(phi.Context{U: u}) {
			t.Errorf("decision differs at u=%v", u)
		}
	}
	// A complete zero-config sender bootstrap: fetch policy, then use it.
	pc := &phi.Client{Source: c, Reporter: c, Policy: got, Path: "p"}
	if !pc.ParamsForNewConnection().Valid() {
		t.Error("bootstrap params invalid")
	}
	// Unpublish.
	if err := srv.SetPolicy(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchPolicy(); err == nil {
		t.Error("fetch after unpublish succeeded")
	}
}

// Property: the server's request handler never panics on arbitrary
// payloads — every input yields some response frame.
func TestServerHandleNeverPanicsProperty(t *testing.T) {
	backend := phi.NewServer(wallClock, phi.ServerConfig{})
	srv := NewServer(backend, nil)
	_ = srv.SetPolicy(phi.DefaultPolicy())
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("handle panicked on %x: %v", raw, r)
			}
		}()
		resp, _ := srv.handle(raw)
		return len(resp) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWireProgressReports(t *testing.T) {
	_, backend, addr := startServer(t)
	backend.RegisterPath("long", 8_000_000)
	c := Dial(addr, time.Second)
	defer c.Close()
	if err := c.ReportStart("long"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.ReportProgress("long", phi.Report{Bytes: 1_000_000,
			AvgRTT: 200 * sim.Millisecond, MinRTT: 150 * sim.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	// Progress keeps the sender registered.
	if got := backend.ActiveSenders("long"); got != 1 {
		t.Errorf("active = %d, want 1", got)
	}
	ctx, err := c.Lookup("long")
	if err != nil {
		t.Fatal(err)
	}
	if ctx.N != 1 || ctx.U <= 0 {
		t.Errorf("ctx = %v", ctx)
	}
	if err := c.ReportEnd("long", phi.Report{Bytes: 100}); err != nil {
		t.Fatal(err)
	}
	if got := backend.ActiveSenders("long"); got != 0 {
		t.Errorf("active after end = %d", got)
	}
}
