package phiwire

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/phi"
	"repro/internal/trace"
)

// FuzzHandle throws arbitrary request payloads at the server's dispatch
// loop. Whatever arrives, the server must answer with a well-formed
// response frame (high type bit set) and never panic — a malformed or
// hostile peer can degrade only itself.
func FuzzHandle(f *testing.F) {
	backend := phi.NewServer(wallClock, phi.ServerConfig{})
	backend.RegisterPath("p", 1_000_000)
	srv := NewServer(backend, nil)
	if err := srv.SetPolicy(phi.DefaultPolicy()); err != nil {
		f.Fatal(err)
	}

	lookup, _ := encodeLookup("p")
	report, _ := encodeReport(MsgReportEnd, "p", phi.Report{Bytes: 1 << 20})
	var traced bytes.Buffer
	if err := writeTracedFrame(&traced, lookup, trace.SpanContext{Trace: 7, Span: 9}); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte{MsgLookup})
	f.Add(lookup)
	f.Add(report)
	f.Add(encodeHello(MsgHello, ProtocolVersion, CapTrace))
	f.Add(traced.Bytes()[4:]) // payload of a traced lookup frame
	f.Add([]byte{MsgLookup | TraceFlag, 0, 0, 0})
	f.Add([]byte{MsgContext, 1, 2, 3}) // response type as a request

	f.Fuzz(func(t *testing.T, payload []byte) {
		resp, _ := srv.handle(payload)
		if len(resp) == 0 {
			t.Fatalf("empty response for payload %x", payload)
		}
		if resp[0]&0x80 == 0 {
			t.Fatalf("response type %#x has request bit for payload %x", resp[0], payload)
		}
	})
}

// FuzzDecodeReportEnd checks the report codec: decoding must never
// panic, and anything that decodes cleanly must survive an
// encode/decode round trip bit-for-bit.
func FuzzDecodeReportEnd(f *testing.F) {
	good, _ := encodeReport(MsgReportEnd, "path-a", phi.Report{
		Bytes: 123, Duration: 456, AvgRTT: 789, MinRTT: 12, LossRate: 0.25,
	})
	f.Add(good[1:])
	f.Add([]byte{})
	f.Add([]byte{0, 1, 'x'})

	f.Fuzz(func(t *testing.T, b []byte) {
		path, r, err := decodeReportEnd(b)
		if err != nil {
			return
		}
		if len(path) > MaxPathLen {
			// Legal at this layer (the length prefix allows 64 KiB); the
			// server rejects it at dispatch. Encode refuses to produce it.
			if _, encErr := encodeReport(MsgReportEnd, path, r); encErr == nil {
				t.Fatalf("encodeReport accepted %d-byte path", len(path))
			}
			return
		}
		enc, err := encodeReport(MsgReportEnd, path, r)
		if err != nil {
			t.Fatalf("re-encode of decoded report failed: %v", err)
		}
		path2, r2, err := decodeReportEnd(enc[1:])
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		// Compare loss rates by bit pattern so NaN inputs round-trip too.
		if path2 != path || r2.Bytes != r.Bytes || r2.Duration != r.Duration ||
			r2.AvgRTT != r.AvgRTT || r2.MinRTT != r.MinRTT ||
			math.Float64bits(r2.LossRate) != math.Float64bits(r.LossRate) {
			t.Fatalf("round trip changed report: %q %+v -> %q %+v", path, r, path2, r2)
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the frame reader. It
// must never panic or allocate beyond MaxFrame, and any frame it
// accepts must round-trip through writeFrame.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte{MsgOK}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // length far beyond MaxFrame

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > MaxFrame {
			t.Fatalf("readFrame returned %d bytes > MaxFrame", len(payload))
		}
		var out bytes.Buffer
		if err := writeFrame(&out, payload); err != nil {
			t.Fatalf("writeFrame rejected accepted payload: %v", err)
		}
		back, err := readFrame(&out)
		if err != nil || !bytes.Equal(back, payload) {
			t.Fatalf("frame round trip failed: %v", err)
		}
	})
}

// FuzzReadString checks the length-prefixed string codec against
// arbitrary input: no panics, and decoded strings re-encode to the
// bytes they came from.
func FuzzReadString(f *testing.F) {
	f.Add(appendString(nil, "hello"))
	f.Add([]byte{})
	f.Add([]byte{0, 5, 'a'}) // length prefix longer than the body

	f.Fuzz(func(t *testing.T, b []byte) {
		s, rest, err := readString(b)
		if err != nil {
			return
		}
		if len(s)+len(rest)+2 != len(b) {
			t.Fatalf("readString lost bytes: %d string + %d rest + 2 != %d", len(s), len(rest), len(b))
		}
		if enc := appendString(nil, s); !bytes.Equal(enc, b[:len(enc)]) {
			t.Fatalf("re-encode mismatch for %q", s)
		}
	})
}

// TestHandleRejectsOversizedPath is the regression test for the issue
// the fuzzers surfaced: the client-side encoders cap path keys at
// MaxPathLen, but the string codec admits anything up to 64 KiB, so a
// hand-rolled frame could push an arbitrarily long key into the backend
// (and into every per-path map behind it). The server must refuse such
// requests at dispatch.
func TestHandleRejectsOversizedPath(t *testing.T) {
	backend := phi.NewServer(wallClock, phi.ServerConfig{})
	srv := NewServer(backend, nil)
	long := strings.Repeat("x", MaxPathLen+1)

	for _, msgType := range []byte{MsgLookup, MsgReportStart} {
		resp, _ := srv.handle(appendString([]byte{msgType}, long))
		if resp[0] != MsgError {
			t.Fatalf("type %#x: oversized path accepted: %x", msgType, resp)
		}
		if msg, _, _ := readString(resp[1:]); !strings.Contains(msg, "too long") {
			t.Fatalf("type %#x: unexpected error %q", msgType, msg)
		}
	}
	for _, msgType := range []byte{MsgReportEnd, MsgProgress} {
		b := appendString([]byte{msgType}, long)
		b = appendInt64(b, 1)
		b = appendInt64(b, 1)
		b = appendInt64(b, 1)
		b = appendInt64(b, 1)
		b = appendFloat(b, 0)
		resp, _ := srv.handle(b)
		if resp[0] != MsgError {
			t.Fatalf("type %#x: oversized path accepted: %x", msgType, resp)
		}
	}
	if _, rejected := srv.Stats(); rejected != 4 {
		t.Fatalf("rejected = %d, want 4", rejected)
	}
	// A key at exactly MaxPathLen is legal.
	edge := strings.Repeat("y", MaxPathLen)
	backend.RegisterPath(phi.PathKey(edge), 1_000_000)
	resp, _ := srv.handle(appendString([]byte{MsgLookup}, edge))
	if resp[0] != MsgContext {
		t.Fatalf("MaxPathLen key rejected: %x", resp)
	}
}
