package phiwire

// Regression tests for the client's connection lifecycle under repeated
// failures: every failed round trip must close the connection it used,
// and a closed client must never re-dial (the use-after-Close leak).

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/phi"
)

// countedConn tracks Close calls on the wrapped connection.
type countedConn struct {
	net.Conn
	closed *atomic.Int64
	once   atomic.Bool
}

func (c *countedConn) Close() error {
	if c.once.CompareAndSwap(false, true) {
		c.closed.Add(1)
	}
	return c.Conn.Close()
}

// countingDialer wraps the real dialer, counting opens and closes.
type countingDialer struct {
	opened atomic.Int64
	closed atomic.Int64
}

func (d *countingDialer) dial(addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	d.opened.Add(1)
	return &countedConn{Conn: conn, closed: &d.closed}, nil
}

// TestClientNoLeakUnderRepeatedFailures drives many failing round trips
// against a server that accepts and immediately closes every connection.
// Each attempt dials a fresh connection; all but the live one must have
// been closed.
func TestClientNoLeakUnderRepeatedFailures(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close() // slam the door: every request will fail mid-flight
		}
	}()

	c := Dial(ln.Addr().String(), 200*time.Millisecond)
	d := &countingDialer{}
	c.dial = d.dial
	defer c.Close()

	const attempts = 50
	for i := 0; i < attempts; i++ {
		if _, err := c.Lookup("p"); err == nil {
			t.Fatal("lookup unexpectedly succeeded against a slamming server")
		}
	}
	if leaked := d.opened.Load() - d.closed.Load(); leaked > 1 {
		t.Errorf("leaked %d connections after %d failed round trips (opened %d, closed %d)",
			leaked, attempts, d.opened.Load(), d.closed.Load())
	}
}

// TestClientUseAfterCloseDoesNotReconnect: Close is final. A request on
// a closed client fails with net.ErrClosed and must not dial.
func TestClientUseAfterCloseDoesNotReconnect(t *testing.T) {
	srv, _, addr := startServer(t)
	defer srv.Close()

	c := Dial(addr, time.Second)
	d := &countingDialer{}
	c.dial = d.dial
	if err := c.ReportStart("p"); err != nil {
		t.Fatal(err)
	}
	dialsBefore := d.opened.Load()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("p"); !errors.Is(err, net.ErrClosed) {
		t.Errorf("lookup after Close: err = %v, want net.ErrClosed", err)
	}
	if err := c.ReportEnd("p", phi.Report{Bytes: 1}); !errors.Is(err, net.ErrClosed) {
		t.Errorf("report after Close: err = %v, want net.ErrClosed", err)
	}
	if d.opened.Load() != dialsBefore {
		t.Errorf("closed client re-dialed: %d dials after close", d.opened.Load()-dialsBefore)
	}
	if leaked := d.opened.Load() - d.closed.Load(); leaked != 0 {
		t.Errorf("%d connections alive after Close", leaked)
	}
	// Idempotent close.
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestClientServerErrorKeepsConnection: an application-level error
// response must not churn the connection (the transport is healthy).
func TestClientServerErrorKeepsConnection(t *testing.T) {
	srv, _, addr := startServer(t)
	defer srv.Close()

	c := Dial(addr, time.Second)
	d := &countingDialer{}
	c.dial = d.dial
	defer c.Close()

	// No policy published: FetchPolicy yields a ServerError.
	for i := 0; i < 5; i++ {
		_, err := c.FetchPolicy()
		var se ServerError
		if !errors.As(err, &se) {
			t.Fatalf("err = %v, want ServerError", err)
		}
	}
	if d.opened.Load() != 1 {
		t.Errorf("server errors churned connections: %d dials, want 1", d.opened.Load())
	}
}
