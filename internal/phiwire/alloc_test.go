package phiwire

import (
	"testing"

	"repro/internal/phi"
	"repro/internal/sim"
)

// Allocation regression gates for the wire codec: the measured starting
// line for the zero-alloc drive the ROADMAP names. Each pin is a
// ceiling — beating it is progress (tighten the pin when you do),
// exceeding it fails CI via the alloc-gate step.
//
// Starting line (go1.24, this container):
//
//	encodeLookup       3 allocs/op
//	encodeReportStart  3
//	encodeReport       5
//	encodeContext      2
//	decodeReportEnd    1 (the path-string copy)
//	decodeContext      0
func TestAllocsCodec(t *testing.T) {
	report := benchReport
	ctx := phi.Context{U: 0.73, Q: 9 * sim.Millisecond, N: 17}
	reportPayload, err := encodeReport(MsgReportEnd, "us-east/eu-west", report)
	if err != nil {
		t.Fatal(err)
	}
	ctxPayload := encodeContext(ctx)

	cases := []struct {
		name string
		max  float64
		fn   func()
	}{
		{"encodeLookup", 3, func() { encodeLookup("us-east/eu-west") }},
		{"encodeReportStart", 3, func() { encodeReportStart("us-east/eu-west") }},
		{"encodeReport", 5, func() { encodeReport(MsgReportEnd, "us-east/eu-west", report) }},
		{"encodeContext", 2, func() { encodeContext(ctx) }},
		{"decodeReportEnd", 1, func() { decodeReportEnd(reportPayload[1:]) }},
		{"decodeContext", 0, func() { decodeContext(ctxPayload[1:]) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := testing.AllocsPerRun(500, tc.fn)
			if got > tc.max {
				t.Errorf("%s = %.1f allocs/op, pinned max %.0f — efficiency regression", tc.name, got, tc.max)
			}
			t.Logf("%s: %.1f allocs/op (pin %.0f)", tc.name, got, tc.max)
		})
	}
}
