package phiwire

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/phi"
	"repro/internal/sim"
)

// TestWireAccounting pins the wire-resource model end to end: with
// counters attached on both halves, N lifecycles account exactly 3N
// frames each way, and the coalesced writeFrameBuf (header + payload
// serialized into one buffer, one Write) yields a batching ratio of
// exactly 1.0 frames per write syscall on both sides — up from the 0.5
// the original two-write frame encoder measured.
func TestWireAccounting(t *testing.T) {
	srv, backend, addr := startServer(t)
	backend.RegisterPath("p", 1_000_000)
	sw := obs.NewWireCounters()
	srv.SetWire(sw)
	if srv.Wire() != sw {
		t.Fatal("Wire() should return the attached counters")
	}

	cw := obs.NewWireCounters()
	c := Dial(addr, time.Second)
	c.SetWire(cw)
	defer c.Close()

	const lifecycles = 5
	for i := 0; i < lifecycles; i++ {
		if err := c.ReportStart("p"); err != nil {
			t.Fatal(err)
		}
		if err := c.ReportEnd("p", phi.Report{Bytes: 1 << 16, Duration: sim.Second, AvgRTT: 40 * sim.Millisecond, MinRTT: 30 * sim.Millisecond}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Lookup("p"); err != nil {
			t.Fatal(err)
		}
	}

	cs := cw.Snapshot()
	wantFrames := uint64(3 * lifecycles)
	if cs.FramesWritten != wantFrames || cs.FramesRead != wantFrames {
		t.Errorf("client frames w/r = %d/%d, want %d/%d", cs.FramesWritten, cs.FramesRead, wantFrames, wantFrames)
	}
	if cs.WriteSyscalls != wantFrames {
		t.Errorf("client write syscalls = %d, want %d (1 per frame, coalesced)", cs.WriteSyscalls, wantFrames)
	}
	if cs.FramesPerWriteSyscall != 1.0 {
		t.Errorf("client batching ratio = %v, want 1.0", cs.FramesPerWriteSyscall)
	}
	if cs.BytesWritten == 0 || cs.BytesRead == 0 {
		t.Errorf("client bytes w/r = %d/%d, want > 0", cs.BytesWritten, cs.BytesRead)
	}

	// The server handler runs async of the client's last read; the
	// response write completes before the client sees the frame, so by
	// the time Lookup returned everything is accounted — but give the
	// final FrameWritten bump (after writeFrame returns) a moment.
	deadline := time.Now().Add(2 * time.Second)
	var ss obs.WireSnapshot
	for time.Now().Before(deadline) {
		ss = sw.Snapshot()
		if ss.FramesWritten == wantFrames {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ss.FramesRead != wantFrames || ss.FramesWritten != wantFrames {
		t.Errorf("server frames r/w = %d/%d, want %d/%d", ss.FramesRead, ss.FramesWritten, wantFrames, wantFrames)
	}
	if ss.WriteSyscalls != wantFrames {
		t.Errorf("server write syscalls = %d, want %d (1 per frame, coalesced)", ss.WriteSyscalls, wantFrames)
	}
	if ss.FramesPerWriteSyscall != 1.0 {
		t.Errorf("server batching ratio = %v, want 1.0", ss.FramesPerWriteSyscall)
	}
	// Conservation: what the client put on the wire is what the server
	// took off it, byte for byte.
	if ss.BytesRead != cs.BytesWritten || cs.BytesRead != ss.BytesWritten {
		t.Errorf("byte conservation: server read %d vs client wrote %d; client read %d vs server wrote %d",
			ss.BytesRead, cs.BytesWritten, cs.BytesRead, ss.BytesWritten)
	}
}

// TestWireAccountingOffByDefault: with no counters attached nothing is
// accounted and nothing breaks — the nil path is the production default.
func TestWireAccountingOffByDefault(t *testing.T) {
	srv, backend, addr := startServer(t)
	backend.RegisterPath("p", 1_000_000)
	c := Dial(addr, time.Second)
	defer c.Close()
	if _, err := c.Lookup("p"); err != nil {
		t.Fatal(err)
	}
	if srv.Wire() != nil {
		t.Fatal("wire counters attached by default")
	}
}
