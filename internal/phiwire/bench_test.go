package phiwire

// Microbenchmarks for the wire codec hot path (every request crosses
// encode/decode twice) and for a full in-process handle() round trip,
// instrumented vs not — backing the claim that telemetry adds well under
// 100ns per operation.

import (
	"testing"
	"time"

	"repro/internal/phi"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

var benchReport = phi.Report{
	Bytes:    1 << 20,
	Duration: 1200 * sim.Millisecond,
	AvgRTT:   40 * sim.Millisecond,
	MinRTT:   31 * sim.Millisecond,
	LossRate: 0.002,
}

func BenchmarkEncodeLookup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := encodeLookup("us-east/eu-west"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeReportEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := encodeReport(MsgReportEnd, "us-east/eu-west", benchReport); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeReportEnd(b *testing.B) {
	payload, err := encodeReport(MsgReportEnd, "us-east/eu-west", benchReport)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := decodeReportEnd(payload[1:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecodeContext(b *testing.B) {
	ctx := phi.Context{U: 0.73, Q: 9 * sim.Millisecond, N: 17}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload := encodeContext(ctx)
		if _, err := decodeContext(payload[1:]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchHandle measures the server's whole in-process request path
// (decode + backend + encode), with or without telemetry attached. The
// difference between the two is the true instrumentation overhead.
func benchHandle(b *testing.B, instrument bool) {
	backend := phi.NewServer(func() sim.Time { return sim.Time(time.Now().UnixNano()) }, phi.ServerConfig{})
	srv := NewServer(backend, nil)
	if instrument {
		reg := telemetry.NewRegistry()
		srv.SetMetrics(NewServerMetrics(reg))
		backend.SetMetrics(phi.NewServerMetrics(reg, nil))
	}
	req, err := encodeLookup("bench-path")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, _ := srv.handle(req)
		if resp[0] != MsgContext {
			b.Fatalf("resp type %x", resp[0])
		}
	}
}

func BenchmarkServerHandleLookup(b *testing.B)             { benchHandle(b, false) }
func BenchmarkServerHandleLookupInstrumented(b *testing.B) { benchHandle(b, true) }
