package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/tcp"
	"repro/internal/telemetry"
)

// slowestKept bounds the slowest-combo leaderboard in snapshots.
const slowestKept = 8

// Progress is the live view of an experiment-harness run: which
// experiment is executing, how many grid points have completed out of
// how many announced, an ETA extrapolated from the observed point rate,
// and the slowest parameter combinations so far. It also feeds the
// counters and wall-time histograms into a telemetry.Registry, so a
// `-status-addr` run exposes phi_experiments_* series on /metrics
// alongside the /debug/experiments snapshot.
//
// All methods are safe for concurrent use and no-ops on a nil receiver,
// so experiments can report unconditionally.
type Progress struct {
	mu        sync.Mutex
	startedAt time.Time
	phase     string
	exps      []ExperimentProgress
	total     int
	done      int
	slowest   []SlowPoint // sorted by wall, descending

	// telemetry handles (nil when no registry was given)
	cPoints *telemetry.Counter
	gTotal  *telemetry.Gauge
	gDone   *telemetry.Gauge
	hPoint  *telemetry.Histogram
	hExp    *telemetry.Histogram
}

// ExperimentProgress is one experiment's harness state.
type ExperimentProgress struct {
	Name string `json:"name"`
	// State is pending | running | done.
	State       string  `json:"state"`
	WallSeconds float64 `json:"wall_s"`
}

// SlowPoint is one grid point on the slowest leaderboard.
type SlowPoint struct {
	Experiment  string  `json:"experiment"`
	Point       string  `json:"point"`
	WallSeconds float64 `json:"wall_s"`
}

// NewProgress creates a Progress, registering its metrics on reg (which
// may be nil for an unexposed run).
func NewProgress(reg *telemetry.Registry) *Progress {
	return &Progress{
		startedAt: time.Now(),
		cPoints:   reg.Counter("phi_experiments_points_completed_total", "Grid points completed across all experiments.", nil),
		gTotal:    reg.Gauge("phi_experiments_points_total", "Grid points announced so far (grows as experiments start).", nil),
		gDone:     reg.Gauge("phi_experiments_points_done", "Grid points completed (gauge twin of the counter, for ratio panels).", nil),
		hPoint:    reg.Histogram("phi_experiments_point_seconds", "Wall time per grid point.", nil),
		hExp:      reg.Histogram("phi_experiments_experiment_seconds", "Wall time per experiment.", nil),
	}
}

// Plan announces the experiments the harness will run, in order.
func (p *Progress) Plan(names []string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.startedAt = time.Now()
	p.exps = p.exps[:0]
	for _, n := range names {
		p.exps = append(p.exps, ExperimentProgress{Name: n, State: "pending"})
	}
}

// StartExperiment marks an experiment running; subsequent grid points
// are attributed to it.
func (p *Progress) StartExperiment(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.phase = name
	for i := range p.exps {
		if p.exps[i].Name == name {
			p.exps[i].State = "running"
			return
		}
	}
	p.exps = append(p.exps, ExperimentProgress{Name: name, State: "running"})
}

// FinishExperiment marks an experiment done and records its wall time.
func (p *Progress) FinishExperiment(name string, wall time.Duration) {
	if p == nil {
		return
	}
	p.hExp.Observe(wall)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.phase == name {
		p.phase = ""
	}
	for i := range p.exps {
		if p.exps[i].Name == name {
			p.exps[i].State = "done"
			p.exps[i].WallSeconds = wall.Seconds()
			return
		}
	}
}

// AddPoints announces n more grid points (phi.SweepConfig.OnStart shape).
func (p *Progress) AddPoints(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total += n
	total := p.total
	p.mu.Unlock()
	p.gTotal.Set(float64(total))
}

// PointDone records one completed grid point with a display label.
func (p *Progress) PointDone(label string, wall time.Duration) {
	if p == nil {
		return
	}
	p.cPoints.Inc()
	p.hPoint.Observe(wall)
	p.mu.Lock()
	p.done++
	p.gDone.Set(float64(p.done))
	sp := SlowPoint{Experiment: p.phase, Point: label, WallSeconds: wall.Seconds()}
	i := sort.Search(len(p.slowest), func(i int) bool { return p.slowest[i].WallSeconds < sp.WallSeconds })
	if i < slowestKept {
		p.slowest = append(p.slowest, SlowPoint{})
		copy(p.slowest[i+1:], p.slowest[i:])
		p.slowest[i] = sp
		if len(p.slowest) > slowestKept {
			p.slowest = p.slowest[:slowestKept]
		}
	}
	p.mu.Unlock()
}

// SweepPoint adapts PointDone to phi.SweepConfig.OnPoint.
func (p *Progress) SweepPoint(params tcp.CubicParams, wall time.Duration) {
	p.PointDone(params.String(), wall)
}

// Snapshot is the /debug/experiments payload.
type Snapshot struct {
	// Phase is the currently running experiment ("" between experiments
	// or after the run).
	Phase       string               `json:"phase"`
	Experiments []ExperimentProgress `json:"experiments"`
	// Grid progress: completed/total announced points, elapsed wall
	// time, observed rate, and the extrapolated time to completion.
	Completed    int         `json:"completed"`
	Total        int         `json:"total"`
	ElapsedS     float64     `json:"elapsed_s"`
	PointsPerSec float64     `json:"points_per_sec"`
	EtaS         float64     `json:"eta_s"`
	Slowest      []SlowPoint `json:"slowest,omitempty"`
}

// Snapshot returns the current state (zero value on nil).
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Snapshot{
		Phase:       p.phase,
		Experiments: append([]ExperimentProgress(nil), p.exps...),
		Completed:   p.done,
		Total:       p.total,
		ElapsedS:    time.Since(p.startedAt).Seconds(),
		Slowest:     append([]SlowPoint(nil), p.slowest...),
	}
	if s.ElapsedS > 0 && s.Completed > 0 {
		s.PointsPerSec = float64(s.Completed) / s.ElapsedS
		if s.Total > s.Completed {
			s.EtaS = float64(s.Total-s.Completed) / s.PointsPerSec
		}
	}
	return s
}

// String renders the snapshot as the text form of /debug/experiments.
func (s Snapshot) String() string {
	var b []byte
	app := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	phase := s.Phase
	if phase == "" {
		phase = "-"
	}
	app("experiments run: phase=%s grid %d/%d elapsed %.1fs", phase, s.Completed, s.Total, s.ElapsedS)
	if s.PointsPerSec > 0 {
		app(" (%.1f pts/s", s.PointsPerSec)
		if s.EtaS > 0 {
			app(", eta %.0fs", s.EtaS)
		}
		app(")")
	}
	app("\n\n%-22s %-8s %10s\n", "experiment", "state", "wall s")
	for _, e := range s.Experiments {
		wall := "-"
		if e.State == "done" {
			wall = fmt.Sprintf("%.2f", e.WallSeconds)
		}
		app("%-22s %-8s %10s\n", e.Name, e.State, wall)
	}
	if len(s.Slowest) > 0 {
		app("\nslowest grid points:\n")
		for _, sp := range s.Slowest {
			app("  %8.2fs  %-14s %s\n", sp.WallSeconds, sp.Experiment, sp.Point)
		}
	}
	return string(b)
}

// Handler serves the snapshot: JSON by default, aligned text with
// ?format=text.
func (p *Progress) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := p.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, s.String())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s)
	})
}
